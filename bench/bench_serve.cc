// Serving-layer benchmark: solve -> persist -> query throughput/latency.
//
// Solves APSP on an integer-weight graph, persists the result (distance +
// successor planes) as a disk-backed block store, then drives the
// DistanceService with ~1M-query workloads: uniform, and the hot-vertex
// Zipf skew real query traffic shows (a few landmark vertices absorb most
// lookups). The cache cap is set to a quarter of the persisted payload, so
// the uniform sweep churns the LRU while the Zipf sweep mostly hits — the
// two regimes bound a production mix.
//
// In-binary correctness gates (exit non-zero on violation):
//   * every served distance of the full n^2 sweep is bitwise-equal to the
//     scalar Floyd-Warshall oracle (integer weights: exact path sums);
//   * reconstructed paths are genuine edge walks of exactly oracle length;
//   * resident bytes stay under the configured cache cap after each sweep,
//     with evictions actually observed (the cap is meant to bind).
//
// Machine-readable results go to BENCH_serve.json (override via
// APSPARK_BENCH_JSON), one JSON object per line so check_regression.sh can
// grep the tracked record: the "serve" section's Zipf-workload "qps"
// (higher is better).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "apsp/api.h"
#include "apsp/persist.h"
#include "bench_util.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/time_utils.h"
#include "graph/generators.h"
#include "graph/path_reconstruction.h"
#include "linalg/kernels.h"
#include "store/distance_service.h"

namespace {

using namespace apspark;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kN = 512;
constexpr std::int64_t kSolveBlock = 128;
constexpr std::int64_t kStoreBlock = 64;
constexpr std::int64_t kQueriesPerWorkload = 1'000'000;
constexpr std::int64_t kLatencySample = 200'000;
constexpr double kZipfTheta = 0.99;
constexpr std::uint64_t kSeed = 42;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct WorkloadResult {
  std::string name;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t evictions = 0;
};

std::vector<store::DistanceService::Query> MakeQueries(
    std::int64_t count, bool zipf, Xoshiro256& rng) {
  std::vector<store::DistanceService::Query> queries;
  queries.reserve(static_cast<std::size_t>(count));
  if (zipf) {
    ZipfSampler sampler(kN, kZipfTheta);
    for (std::int64_t i = 0; i < count; ++i) {
      queries.push_back(
          {static_cast<graph::VertexId>(sampler.Sample(rng)),
           static_cast<graph::VertexId>(sampler.Sample(rng))});
    }
  } else {
    for (std::int64_t i = 0; i < count; ++i) {
      queries.push_back({static_cast<graph::VertexId>(rng.NextBounded(kN)),
                         static_cast<graph::VertexId>(rng.NextBounded(kN))});
    }
  }
  return queries;
}

}  // namespace

int main() {
  bench::PrintHeader("serving layer: disk-backed store query throughput");
  bool ok = true;

  // ---------------------------------------------------------------- solve
  graph::Graph g_real =
      graph::ErdosRenyi(kN, graph::PaperEdgeProbability(kN), {1.0, 10.0},
                        kSeed);
  graph::Graph g(kN, false);
  for (const auto& e : g_real.edges()) {
    g.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  linalg::DenseBlock oracle = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(oracle);

  apsp::SolveRequest request;
  request.options.block_size = kSolveBlock;
  auto report = apsp::Solve(g, request);
  if (!report.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // -------------------------------------------------------------- persist
  const std::string dir =
      (std::filesystem::temp_directory_path() / "apspark_bench_serve")
          .string();
  std::filesystem::remove_all(dir);
  auto persist_start = Clock::now();
  apsp::PersistOptions popts;
  popts.block_size = kStoreBlock;
  auto persisted = apsp::PersistSolve(dir, *report.distances(), &g, false,
                                      linalg::SemiringId::kMinPlus, popts);
  const double persist_seconds = Seconds(persist_start);
  if (!persisted.ok()) {
    std::fprintf(stderr, "persist failed: %s\n", persisted.ToString().c_str());
    return 1;
  }

  store::DistanceService::Options sopts;
  auto probe = store::BlockStore::Open(dir);
  if (!probe.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 probe.status().ToString().c_str());
    return 1;
  }
  const std::uint64_t payload_bytes = (*probe)->total_payload_bytes();
  probe->reset();
  // A quarter of the payload: uniform sweeps churn, Zipf sweeps mostly hit.
  sopts.store_options.cache_capacity_bytes = payload_bytes / 4;
  auto service = store::DistanceService::Open(dir, sopts);
  if (!service.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  store::DistanceService& svc = **service;
  std::printf("persisted n = %lld as %zu blocks (%s) in %s; cache cap %s\n",
              static_cast<long long>(kN),
              svc.store().manifest().entries.size(),
              FormatBytes(payload_bytes).c_str(),
              FormatDuration(persist_seconds).c_str(),
              FormatBytes(sopts.store_options.cache_capacity_bytes).c_str());

  // -------------------------------------------- correctness: full n^2 sweep
  {
    std::vector<store::DistanceService::Query> all;
    all.reserve(static_cast<std::size_t>(kN * kN));
    for (std::int64_t s = 0; s < kN; ++s) {
      for (std::int64_t t = 0; t < kN; ++t) all.push_back({s, t});
    }
    auto answers = svc.DistanceBatch(all);
    if (!answers.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   answers.status().ToString().c_str());
      return 1;
    }
    std::int64_t mismatches = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      const double expected = oracle.At(all[i].s, all[i].t);
      if (std::memcmp(&(*answers)[i], &expected, sizeof(double)) != 0) {
        ++mismatches;
      }
    }
    ok &= mismatches == 0;
    std::printf("correctness: full n^2 sweep %s the scalar oracle\n",
                mismatches == 0 ? "bitwise-equal to"
                                : "DIVERGES from");

    Xoshiro256 prng(kSeed + 7);
    linalg::DenseBlock adjacency = g.ToDenseAdjacency();
    for (int probe_i = 0; probe_i < 256 && ok; ++probe_i) {
      const auto s =
          static_cast<graph::VertexId>(prng.NextBounded(kN));
      const auto t =
          static_cast<graph::VertexId>(prng.NextBounded(kN));
      auto path = svc.Path(s, t);
      if (std::isinf(oracle.At(s, t))) {
        ok &= path.status().code() == StatusCode::kNotFound;
        continue;
      }
      if (!path.ok()) {
        ok = false;
        break;
      }
      double total = 0;
      ok &= path->front() == s && path->back() == t;
      for (std::size_t hop = 0; hop + 1 < path->size(); ++hop) {
        const double w = adjacency.At((*path)[hop], (*path)[hop + 1]);
        ok &= !std::isinf(w);
        total += w;
      }
      ok &= total == oracle.At(s, t);
    }
    std::printf("correctness: reconstructed paths %s\n",
                ok ? "are exact shortest walks" : "FAILED");
  }

  // ------------------------------------------------------------ workloads
  std::vector<WorkloadResult> results;
  for (const bool zipf : {false, true}) {
    Xoshiro256 rng(kSeed + (zipf ? 1 : 2));
    const auto queries = MakeQueries(kQueriesPerWorkload, zipf, rng);

    const auto before = svc.store().stats();
    auto start = Clock::now();
    auto answers = svc.DistanceBatch(queries);
    const double elapsed = Seconds(start);
    if (!answers.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   answers.status().ToString().c_str());
      return 1;
    }
    const auto after = svc.store().stats();

    // Residency must respect the cap once the batch's pins are released.
    ok &= svc.store().resident_bytes() <=
          sopts.store_options.cache_capacity_bytes;

    // Per-query latency percentiles from a timed single-threaded sample of
    // the same distribution (batched timing hides per-call cost).
    const auto sample = MakeQueries(kLatencySample, zipf, rng);
    std::vector<double> latencies_us;
    latencies_us.reserve(sample.size());
    for (const auto& q : sample) {
      const auto t0 = Clock::now();
      auto d = svc.Distance(q.s, q.t);
      const double us = Seconds(t0) * 1e6;
      if (!d.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     d.status().ToString().c_str());
        return 1;
      }
      latencies_us.push_back(us);
    }
    std::sort(latencies_us.begin(), latencies_us.end());

    WorkloadResult r;
    r.name = zipf ? "zipf" : "uniform";
    r.qps = static_cast<double>(kQueriesPerWorkload) / elapsed;
    r.p50_us = latencies_us[latencies_us.size() / 2];
    r.p99_us = latencies_us[latencies_us.size() * 99 / 100];
    r.cache_hits = after.hits - before.hits;
    r.cache_misses = after.misses - before.misses;
    r.evictions = after.evictions - before.evictions;
    results.push_back(r);

    std::printf(
        "%-8s %lld queries in %s: %.0f qps, p50 %.2f us, p99 %.2f us "
        "(%llu hits, %llu misses, %llu evictions)\n",
        r.name.c_str(), static_cast<long long>(kQueriesPerWorkload),
        FormatDuration(elapsed).c_str(), r.qps, r.p50_us, r.p99_us,
        static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.cache_misses),
        static_cast<unsigned long long>(r.evictions));
  }

  // The cap is meant to bind: the full-sweep + uniform phases must have
  // forced churn (a cap nobody hits gates nothing).
  const auto final_stats = svc.store().stats();
  ok &= final_stats.evictions > 0;
  ok &= final_stats.resident_bytes <= sopts.store_options.cache_capacity_bytes;
  std::printf(
      "cache: %llu total evictions, resident %s <= cap %s, peak %s\n",
      static_cast<unsigned long long>(final_stats.evictions),
      FormatBytes(final_stats.resident_bytes).c_str(),
      FormatBytes(sopts.store_options.cache_capacity_bytes).c_str(),
      FormatBytes(final_stats.peak_resident_bytes).c_str());

  // ------------------------------------------------------------------ JSON
  const char* json_path = std::getenv("APSPARK_BENCH_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_serve.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"benchmark\": \"bench_serve\",\n");
    std::fprintf(f, "  \"results\": [\n");
    std::fprintf(f,
                 "    {\"section\": \"store\", \"n\": %lld, \"b\": %lld, "
                 "\"blocks\": %zu, \"payload_bytes\": %llu, "
                 "\"cache_capacity_bytes\": %llu, "
                 "\"persist_seconds\": %.6f},\n",
                 static_cast<long long>(kN),
                 static_cast<long long>(kStoreBlock),
                 svc.store().manifest().entries.size(),
                 static_cast<unsigned long long>(payload_bytes),
                 static_cast<unsigned long long>(
                     sopts.store_options.cache_capacity_bytes),
                 persist_seconds);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"section\": \"serve\", \"workload\": \"%s\", "
                   "\"queries\": %lld, \"qps\": %.1f, \"p50_us\": %.3f, "
                   "\"p99_us\": %.3f, \"cache_hits\": %llu, "
                   "\"cache_misses\": %llu, \"evictions\": %llu, "
                   "\"bitwise_equal_to_reference\": %s}%s\n",
                   r.name.c_str(),
                   static_cast<long long>(kQueriesPerWorkload), r.qps,
                   r.p50_us, r.p99_us,
                   static_cast<unsigned long long>(r.cache_hits),
                   static_cast<unsigned long long>(r.cache_misses),
                   static_cast<unsigned long long>(r.evictions),
                   ok ? "true" : "false",
                   i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nresults written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }

  std::filesystem::remove_all(dir);
  if (!ok) {
    std::fprintf(stderr,
                 "\nFAIL: serving correctness or cache-cap invariant "
                 "violated\n");
    return 1;
  }
  std::printf("\nall serving invariants hold\n");
  return 0;
}
