// Batched k-source shortest paths — kernel and end-to-end benchmark.
//
// Section 1 races the rectangular frontier kernel (MinPlusUpdateRect: a
// b x b pivot block folded into a b x k frontier panel) across the registry
// variants, checking bitwise equality against the scalar reference. This is
// the hot inner operation of the KSSP sweep; the panel micro-kernel's win
// over the naive loop comes from touching each C row once per reduction
// instead of once per k step.
//
// Section 2 times a full Ksource-Blocked solve (host compute, real blocks)
// per variant and validates the panel against the scalar Floyd-Warshall
// oracle.
//
// Machine-readable results go to BENCH_ksource.json (override via
// APSPARK_BENCH_JSON). The bench exits non-zero if any variant loses bitwise
// equality or if the tiled kernel drops below the naive baseline's
// throughput (gate overridable via APSPARK_GATE_MIN_SPEEDUP).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apsp/solvers/ksource_blocked.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/time_utils.h"
#include "graph/generators.h"
#include "linalg/dense_block.h"
#include "linalg/kernels.h"

namespace {

using namespace apspark;

linalg::DenseBlock RandomBlock(std::int64_t rows, std::int64_t cols,
                               std::uint64_t seed, double inf_density = 0.0) {
  Xoshiro256 rng(seed);
  linalg::DenseBlock block(rows, cols, 0.0);
  for (std::int64_t i = 0; i < block.size(); ++i) {
    block.mutable_data()[i] = rng.NextDouble() < inf_density
                                  ? linalg::kInf
                                  : rng.NextDouble(1.0, 100.0);
  }
  return block;
}

bool BitwiseEqual(const linalg::DenseBlock& a, const linalg::DenseBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(double)) == 0;
}

template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    const double s = t.ElapsedSeconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

struct KsResult {
  std::string section;  // "rect_kernel", "solve", or "fault"
  std::string variant;
  std::string data_plane = "none";  // solve section: "staged" | "shuffle"
  std::int64_t b = 0;  // block / pivot size (or solve block size)
  std::int64_t k = 0;  // panel width (source count)
  double seconds = 0;
  double gops = 0;         // min-plus ops / 1e9 / seconds
  double speedup = 1.0;    // vs naive at the same shape
  bool bitwise_equal = true;
  /// Driver live-bytes high water of the modelled run (solve section only) —
  /// a deterministic byte count, gated by check_regression.sh --metric peak.
  std::uint64_t driver_peak_bytes = 0;
  /// Fault-injection section: the recovery trajectory of a solve with an
  /// injected executor loss (deterministic modelled quantities).
  double recovery_seconds = 0;
  std::uint64_t recomputed_tasks = 0;
  std::uint64_t task_retries = 0;
  std::uint64_t job_restarts = 0;
};

void WriteJson(const std::vector<KsResult>& results, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_ksource\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KsResult& r = results[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"variant\": \"%s\", "
                 "\"data_plane\": \"%s\", \"b\": %lld, "
                 "\"k\": %lld, \"seconds\": %.6f, \"gops\": %.3f, "
                 "\"speedup_vs_naive\": %.2f, "
                 "\"driver_peak_bytes\": %llu, "
                 "\"recovery_seconds\": %.6f, \"recomputed_tasks\": %llu, "
                 "\"task_retries\": %llu, \"job_restarts\": %llu, "
                 "\"bitwise_equal_to_reference\": %s}%s\n",
                 r.section.c_str(), r.variant.c_str(), r.data_plane.c_str(),
                 static_cast<long long>(r.b), static_cast<long long>(r.k),
                 r.seconds, r.gops, r.speedup,
                 static_cast<unsigned long long>(r.driver_peak_bytes),
                 r.recovery_seconds,
                 static_cast<unsigned long long>(r.recomputed_tasks),
                 static_cast<unsigned long long>(r.task_retries),
                 static_cast<unsigned long long>(r.job_restarts),
                 r.bitwise_equal ? "true" : "false",
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nresults written to %s\n", path.c_str());
}

constexpr linalg::KernelVariant kVariants[] = {
    linalg::KernelVariant::kNaive, linalg::KernelVariant::kTiled,
    linalg::KernelVariant::kTiledParallel};

std::vector<KsResult> RunRectKernelRace(std::int64_t max_b) {
  bench::PrintHeader(
      "Rectangular frontier kernel — C[b x k] = min(C, A[b x b] \xe2\x8a\x97 "
      "P[b x k])\n(naive scalar vs panel-tiled vs panel-tiled+parallel)");
  std::vector<KsResult> results;
  std::printf("%8s %6s %16s %16s %10s %10s  %s\n", "b", "k", "variant", "time",
              "Gops", "speedup", "exact");
  for (std::int64_t b : {256, 512, 1024}) {
    if (b > max_b) continue;
    for (std::int64_t k : {8, 32, 64}) {
      const int reps = b >= 1024 ? 3 : 5;
      // ~20% infinite entries: the sweep's panels are inf-heavy early on.
      const linalg::DenseBlock pivot = RandomBlock(b, b, 2, 0.2);
      const linalg::DenseBlock panel = RandomBlock(b, k, 3, 0.2);
      const linalg::DenseBlock base = RandomBlock(b, k, 4, 0.2);
      const double ops = static_cast<double>(b) * b * k;

      linalg::DenseBlock reference = base;
      linalg::MinPlusAccumulateRawNaive(b, k, b, pivot.data(), b, panel.data(),
                                        k, reference.mutable_data(), k);
      double naive_seconds = 0;
      for (linalg::KernelVariant v : kVariants) {
        linalg::ScopedKernelVariant scope(v);
        KsResult r;
        r.section = "rect_kernel";
        r.variant = linalg::KernelVariantName(v);
        r.b = b;
        r.k = k;
        linalg::DenseBlock out(0, 0);
        r.seconds = BestOf(reps, [&] {
          linalg::DenseBlock c = base;
          linalg::MinPlusUpdateRect(pivot, panel, c);
          out = std::move(c);
        });
        if (v == linalg::KernelVariant::kNaive) naive_seconds = r.seconds;
        r.gops = ops / r.seconds / 1e9;
        r.speedup = naive_seconds / r.seconds;
        r.bitwise_equal = BitwiseEqual(out, reference);
        std::printf("%8lld %6lld %16s %16s %10.3f %9.2fx  %s\n",
                    static_cast<long long>(b), static_cast<long long>(k),
                    r.variant.c_str(), FormatSeconds(r.seconds, 3).c_str(),
                    r.gops, r.speedup, r.bitwise_equal ? "yes" : "NO");
        results.push_back(r);
      }
    }
  }
  return results;
}

std::vector<KsResult> RunSolveRace() {
  bench::PrintHeader(
      "End-to-end Ksource-Blocked solve (host wall time, n = 512, k = 16,"
      " b = 128)\nstaged data plane per kernel variant + the pure"
      " shuffle-replicated plane;\ndriver-peak = modelled driver live-bytes"
      " high water (zero-copy record plane)");
  std::vector<KsResult> results;
  const std::int64_t n = 512;
  const std::int64_t k = 16;
  const std::int64_t b = 128;
  const graph::Graph g = graph::PaperErdosRenyi(n, /*seed=*/7);
  std::vector<graph::VertexId> sources;
  for (std::int64_t j = 0; j < k; ++j) sources.push_back(j * n / k);

  linalg::DenseBlock oracle = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(oracle);

  // (kernel variant, data plane) runs: the kernel race on the staged plane,
  // plus the pure shuffle-replicated plane on the tiled kernel.
  struct Combo {
    linalg::KernelVariant kernel;
    apsp::KsourceVariant plane;
  };
  std::vector<Combo> combos;
  for (linalg::KernelVariant v : kVariants) {
    combos.push_back({v, apsp::KsourceVariant::kStagedStorage});
  }
  combos.push_back(
      {linalg::KernelVariant::kTiled, apsp::KsourceVariant::kShuffleReplicated});

  std::printf("%16s %8s %16s %10s %14s  %s\n", "variant", "plane", "time",
              "speedup", "driver-peak", "valid");
  double naive_seconds = 0;
  for (const Combo& combo : combos) {
    apsp::KsourceOptions opts;
    opts.block_size = b;
    opts.variant = combo.plane;
    auto cluster = sparklet::ClusterConfig::TinyTest();
    cluster.local_storage_bytes = 16ULL * kGiB;
    cluster.kernel_variant = combo.kernel;
    apsp::KsourceBlockedSolver solver;
    KsResult r;
    r.section = "solve";
    r.variant = linalg::KernelVariantName(combo.kernel);
    r.data_plane = apsp::KsourceVariantName(combo.plane);
    r.b = b;
    r.k = k;
    apsp::KsourceResult solve_result;
    r.seconds = BestOf(2, [&] {
      solve_result = solver.SolveGraph(g, sources, opts, cluster);
    });
    if (combo.kernel == linalg::KernelVariant::kNaive) {
      naive_seconds = r.seconds;
    }
    r.speedup = naive_seconds / r.seconds;
    r.gops = static_cast<double>(n) * n * (n + k) / r.seconds / 1e9;
    r.driver_peak_bytes = solve_result.metrics.driver_peak_bytes;
    bool valid = solve_result.status.ok() &&
                 solve_result.distances.has_value();
    if (valid) {
      const auto& panel = *solve_result.distances;
      for (std::int64_t vtx = 0; vtx < n && valid; ++vtx) {
        for (std::int64_t j = 0; j < k && valid; ++j) {
          const double got = panel.At(vtx, j);
          const double want = oracle.At(sources[static_cast<std::size_t>(j)],
                                        vtx);
          if (std::isinf(got) != std::isinf(want) ||
              (!std::isinf(got) && std::fabs(got - want) > 1e-9)) {
            valid = false;
          }
        }
      }
    }
    r.bitwise_equal = valid;  // tolerance-validated for the e2e section
    std::printf("%16s %8s %16s %9.2fx %13.1fKiB  %s\n", r.variant.c_str(),
                r.data_plane.c_str(), FormatSeconds(r.seconds, 3).c_str(),
                r.speedup,
                static_cast<double>(r.driver_peak_bytes) / 1024.0,
                valid ? "yes" : "NO");
    if (!valid) {
      std::fprintf(stderr,
                   "FAIL: ksource solve (%s, %s plane) diverged from oracle\n",
                   r.variant.c_str(), r.data_plane.c_str());
      std::exit(1);
    }
    results.push_back(r);
  }
  return results;
}

std::vector<KsResult> RunFaultRecoveryRace() {
  bench::PrintHeader(
      "Fault injection — executor loss mid-solve (modelled recovery cost)\n"
      "staged plane restarts from its checkpoint, the pure shuffle plane\n"
      "recovers in place through lineage; both must match the oracle");
  std::vector<KsResult> results;
  const std::int64_t n = 256;
  const std::int64_t k = 8;
  const std::int64_t b = 64;
  const graph::Graph g = graph::PaperErdosRenyi(n, /*seed=*/11);
  std::vector<graph::VertexId> sources;
  for (std::int64_t j = 0; j < k; ++j) sources.push_back(j * n / k);
  linalg::DenseBlock oracle = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(oracle);

  std::printf("%8s %12s %10s %12s %10s %10s  %s\n", "plane", "redone", "tasks",
              "retried-maps", "restarts", "loss-hit", "valid");
  for (const apsp::KsourceVariant plane :
       {apsp::KsourceVariant::kStagedStorage,
        apsp::KsourceVariant::kShuffleReplicated}) {
    apsp::KsourceOptions opts;
    opts.block_size = b;
    opts.variant = plane;
    opts.fail_nodes = {{1, 10}};
    if (plane == apsp::KsourceVariant::kStagedStorage) {
      opts.checkpoint_every = 1;
    }
    auto cluster = sparklet::ClusterConfig::TinyTest();
    cluster.local_storage_bytes = 16ULL * kGiB;
    apsp::KsourceBlockedSolver solver;
    WallTimer timer;
    auto solve_result = solver.SolveGraph(g, sources, opts, cluster);
    KsResult r;
    r.section = "fault";
    r.variant = "tiled";
    r.data_plane = apsp::KsourceVariantName(plane);
    r.b = b;
    r.k = k;
    r.seconds = timer.ElapsedSeconds();
    r.driver_peak_bytes = solve_result.metrics.driver_peak_bytes;
    r.recovery_seconds = solve_result.metrics.recovery_seconds;
    r.recomputed_tasks = solve_result.metrics.recomputed_tasks;
    r.task_retries = solve_result.metrics.task_retries;
    r.job_restarts = solve_result.metrics.job_restarts;
    const bool loss_fired = solve_result.metrics.executor_failures > 0;
    bool valid = solve_result.status.ok() &&
                 solve_result.distances.has_value() && loss_fired;
    if (valid) {
      const auto& panel = *solve_result.distances;
      for (std::int64_t vtx = 0; vtx < n && valid; ++vtx) {
        for (std::int64_t j = 0; j < k && valid; ++j) {
          const double got = panel.At(vtx, j);
          const double want =
              oracle.At(sources[static_cast<std::size_t>(j)], vtx);
          if (std::isinf(got) != std::isinf(want) ||
              (!std::isinf(got) && std::fabs(got - want) > 1e-9)) {
            valid = false;
          }
        }
      }
    }
    r.bitwise_equal = valid;
    std::printf("%8s %12s %10llu %12llu %10llu %10s  %s\n",
                r.data_plane.c_str(),
                FormatSeconds(r.recovery_seconds, 3).c_str(),
                static_cast<unsigned long long>(r.recomputed_tasks),
                static_cast<unsigned long long>(r.task_retries),
                static_cast<unsigned long long>(r.job_restarts),
                loss_fired ? "yes" : "NO", valid ? "yes" : "NO");
    if (!valid) {
      std::fprintf(stderr,
                   "FAIL: fault-injected ksource solve (%s plane) did not "
                   "recover to the oracle\n",
                   r.data_plane.c_str());
      std::exit(1);
    }
    results.push_back(r);
  }
  return results;
}

}  // namespace

int main() {
  std::int64_t max_b = 1024;
  if (const char* env = std::getenv("APSPARK_KSOURCE_MAX_B")) {
    max_b = std::atoll(env);
  }
  auto results = RunRectKernelRace(max_b);
  const auto solve_results = RunSolveRace();
  results.insert(results.end(), solve_results.begin(), solve_results.end());
  const auto fault_results = RunFaultRecoveryRace();
  results.insert(results.end(), fault_results.begin(), fault_results.end());

  const char* json_path = std::getenv("APSPARK_BENCH_JSON");
  WriteJson(results, json_path != nullptr ? json_path : "BENCH_ksource.json");

  // Gate: the tiled rect kernel must not lose bitwise equality and must at
  // least match naive throughput at the largest measured shape (ISSUE 2
  // acceptance: tiled >= naive). Override for noisy shared runners via env.
  double min_speedup = 1.0;
  if (const char* env = std::getenv("APSPARK_GATE_MIN_SPEEDUP")) {
    min_speedup = std::atof(env);
  }
  std::int64_t largest_b = 0;
  for (const KsResult& r : results) {
    if (r.section == "rect_kernel") largest_b = std::max(largest_b, r.b);
  }
  bool gate_evaluated = false;
  for (const KsResult& r : results) {
    if (r.section == "rect_kernel" && !r.bitwise_equal) {
      std::fprintf(stderr, "FAIL: %s b=%lld k=%lld not bitwise equal\n",
                   r.variant.c_str(), static_cast<long long>(r.b),
                   static_cast<long long>(r.k));
      return 1;
    }
    if (r.section == "rect_kernel" && r.variant == "tiled" &&
        r.b == largest_b && r.k == 64) {
      gate_evaluated = true;
      if (r.speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: tiled rect kernel speedup %.2fx < %.2fx "
                     "(b=%lld, k=64)\n",
                     r.speedup, min_speedup, static_cast<long long>(r.b));
        return 1;
      }
    }
  }
  if (!gate_evaluated) {
    std::printf("note: perf gate NOT evaluated (APSPARK_KSOURCE_MAX_B=%lld)\n",
                static_cast<long long>(max_b));
  }
  return 0;
}
