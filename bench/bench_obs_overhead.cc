// Observability overhead gate: the tracer must be free when off and cheap
// when on.
//
// Three measurements, emitted as one-record-per-line JSON (the
// check_regression.sh idiom) and self-gated:
//
//   1. hook_ns — ns/op of a disabled RealSpanScope (the hook every traced
//      call site pays when no capture is active: two relaxed atomic loads).
//   2. overhead_disabled — that hook cost scaled by the number of hook
//      sites a real solve passes through (measured as the enabled run's
//      event count), relative to the solve's wall time. Gate: <= 1%.
//   3. overhead — wall-time ratio of the same solve with tracing on vs
//      off, min-of-reps on both sides. Gate: <= 5%.
//
// The solve is also checked bitwise: the distance matrix with tracing on
// must equal the tracing-off run bit for bit (tracing never feeds back
// into simulation state).
#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>

#include "apsp/api.h"
#include "bench_util.h"
#include "common/time_utils.h"
#include "graph/generators.h"
#include "obs/trace.h"

namespace {

using namespace apspark;

/// FNV-1a over the raw bit patterns of every distance entry — bitwise, not
/// approximate, equality.
std::uint64_t ChecksumDistances(const linalg::DenseBlock& d) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t i = 0; i < d.rows(); ++i) {
    for (std::int64_t j = 0; j < d.cols(); ++j) {
      std::uint64_t bits = std::bit_cast<std::uint64_t>(d.At(i, j));
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (bits >> (8 * byte)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
  }
  return h;
}

apsp::SolveRequest MakeRequest() {
  apsp::SolveRequest request;
  request.solver = apsp::SolverKind::kBlockedCollectBroadcast;
  request.options.block_size = 64;
  request.cluster.nodes = 4;
  request.cluster.cores_per_node = 2;
  request.cluster.local_storage_bytes = 64ULL * kGiB;
  return request;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Observability overhead — disabled-hook cost and traced-solve "
      "wall-time ratio");

  // --- 1. The disabled hook -----------------------------------------------
  // What every traced call site costs when no capture is active. The loop
  // body is a full RealSpanScope lifetime plus a volatile side effect so
  // the scope cannot be hoisted.
  const std::int64_t hook_iters = 20'000'000;
  volatile std::uint64_t sink = 0;
  WallTimer hook_timer;
  for (std::int64_t i = 0; i < hook_iters; ++i) {
    obs::RealSpanScope span("hook");
    sink = sink + 1;
  }
  const double hook_ns =
      hook_timer.ElapsedSeconds() * 1e9 / static_cast<double>(hook_iters);
  std::printf("disabled hook: %.2f ns/op (%lld iterations)\n", hook_ns,
              static_cast<long long>(hook_iters));

  // --- 2 + 3. The same solve, tracing off vs on ---------------------------
  const graph::Graph g = graph::PaperErdosRenyi(512, 7);
  const apsp::SolveRequest request = MakeRequest();
  const int reps = 5;

  double off_seconds = 0;
  std::uint64_t off_checksum = 0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    const auto report = apsp::Solve(g, request);
    const double elapsed = t.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    off_checksum = ChecksumDistances(*report.distances());
    if (r == 0 || elapsed < off_seconds) off_seconds = elapsed;
  }

  double on_seconds = 0;
  std::uint64_t on_checksum = 0;
  std::size_t trace_events = 0;
  for (int r = 0; r < reps; ++r) {
    obs::Tracer::Get().Start();
    WallTimer t;
    const auto report = apsp::Solve(g, request);
    const double elapsed = t.ElapsedSeconds();
    obs::Tracer::Get().Stop();
    if (!report.ok()) {
      std::fprintf(stderr, "traced solve failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    on_checksum = ChecksumDistances(*report.distances());
    trace_events = obs::Tracer::Get().EventCount();
    if (r == 0 || elapsed < on_seconds) on_seconds = elapsed;
  }

  const bool bitwise_equal = off_checksum == on_checksum;
  const double overhead = on_seconds / off_seconds - 1.0;
  // Every recorded event is one enabled hook firing; with tracing off the
  // same sites each cost hook_ns. That product over the solve's wall time
  // bounds what the hooks add to an untraced run.
  const double overhead_disabled =
      static_cast<double>(trace_events) * hook_ns * 1e-9 / off_seconds;

  std::printf("solve (n = 512, cb): off %s, on %s -> overhead %.2f%%\n",
              FormatSeconds(off_seconds, 4).c_str(),
              FormatSeconds(on_seconds, 4).c_str(), overhead * 100.0);
  std::printf("disabled-path estimate: %zu hook sites x %.2f ns = %.4f%% "
              "of the untraced solve\n",
              trace_events, hook_ns, overhead_disabled * 100.0);
  std::printf("bitwise distances (tracing on vs off): %s\n",
              bitwise_equal ? "identical" : "DIFFER");

  std::printf("\nJSON: {\"benchmark\": \"bench_obs_overhead\", \"results\": "
              "[\n");
  std::printf("    {\"section\": \"obs\", \"hook_ns\": %.3f, "
              "\"solve_off_seconds\": %.6f, \"solve_on_seconds\": %.6f, "
              "\"overhead\": %.6f, \"overhead_disabled\": %.6f, "
              "\"trace_events\": %zu, \"bitwise_equal\": %s}\n",
              hook_ns, off_seconds, on_seconds,
              overhead < 0 ? 0.0 : overhead, overhead_disabled, trace_events,
              bitwise_equal ? "true" : "false");
  std::printf("]}\n");

  // Self-gate. The enabled-path gate uses min-of-reps on both sides, so a
  // single noisy rep cannot fail it; the disabled gate is an analytic
  // bound, effectively noise-free.
  int rc = 0;
  if (!bitwise_equal) {
    std::fprintf(stderr, "FAIL: tracing changed the solve result\n");
    rc = 1;
  }
  if (overhead_disabled > 0.01) {
    std::fprintf(stderr,
                 "FAIL: disabled-path overhead %.4f%% exceeds the 1%% gate\n",
                 overhead_disabled * 100.0);
    rc = 1;
  }
  if (overhead > 0.05) {
    std::fprintf(stderr,
                 "FAIL: enabled tracing overhead %.2f%% exceeds the 5%% "
                 "gate\n",
                 overhead * 100.0);
    rc = 1;
  }
  if (rc == 0) std::printf("\nOK: all observability overhead gates pass\n");
  return rc;
}
