// Multi-tenant fair scheduling under membership churn — end-to-end bench.
//
// Two KSSP tenants share one elastic cluster: job A sweeps the frontier on
// the impure staged-storage plane (checkpointed), job B on the pure
// shuffle-replicated plane. Each tenant first runs SOLO on a 4-node,
// 2-rack cluster that loses a whole rack mid-sweep and receives a
// replacement node a few stages later; the solo run must stay bitwise-equal
// to the scalar Floyd-Warshall oracle (integer weights: exact path sums)
// while its stage trace is recorded. The FairScheduler then replays both
// traces onto the shared cluster twice: once with memory headroom (pure
// fair slot sharing — the gated record) and once with the admission budget
// squeezed below the fattest stage peak, so admission waits and
// force-admit spill fire deterministically from the modelled numbers.
//
// Machine-readable results go to BENCH_multitenant.json (override via
// APSPARK_BENCH_JSON), one JSON object per line so check_regression.sh can
// grep the tracked record: the "multitenant" section's
// fair_makespan_seconds (lower is better — the schedule quality gate).
// Exits non-zero if any tenant loses bitwise equality, if fairness
// accounting is inconsistent, or if the fair makespan exceeds the serial
// baseline (fair sharing must never be worse than running the jobs back to
// back).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apsp/solvers/ksource_blocked.h"
#include "bench_util.h"
#include "common/time_utils.h"
#include "graph/generators.h"
#include "linalg/dense_block.h"
#include "linalg/kernels.h"
#include "sparklet/fair_scheduler.h"
#include "sparklet/rdd.h"

namespace {

using namespace apspark;
using apsp::BlockLayout;
using apsp::KsourceBlockedSolver;
using apsp::KsourceOptions;
using apsp::KsourceVariant;
using linalg::DenseBlock;
using sparklet::ClusterConfig;
using sparklet::FairScheduler;
using sparklet::SparkletContext;
using sparklet::TenantJob;

constexpr std::int64_t kN = 96;
constexpr std::int64_t kBlock = 16;
constexpr std::int64_t kSources = 8;

/// The shared elastic cluster both tenants see: 4 nodes over 2 racks.
ClusterConfig TenantCluster() {
  auto cfg = ClusterConfig::TinyTest();
  cfg.nodes = 4;
  cfg.racks = 2;
  cfg.local_storage_bytes = 16ULL * kGiB;
  return cfg;
}

struct SoloRun {
  std::string plane;
  bool bitwise_equal = true;
  double sim_seconds = 0;
  std::uint64_t executor_failures = 0;
  std::uint64_t node_joins = 0;
  std::uint64_t migrated_partitions = 0;
  std::uint64_t migration_bytes = 0;
  TenantJob job;
};

/// Solo tenant run under a rack loss + replacement join, stage trace on.
/// Mirrors KsourceBlockedSolver::SolveGraph, which owns its context — the
/// trace needs a caller-owned one.
SoloRun RunSolo(const graph::Graph& g,
                const std::vector<graph::VertexId>& sources,
                KsourceVariant variant, const DenseBlock& oracle) {
  SoloRun run;
  run.plane = apsp::KsourceVariantName(variant);
  KsourceOptions opts;
  opts.block_size = kBlock;
  opts.variant = variant;
  opts.fail_racks = {{0, 12}};
  opts.add_nodes = {16};
  if (!KsourceBlockedSolver::Pure(variant)) opts.checkpoint_every = 2;

  const BlockLayout layout(g.num_vertices(), opts.block_size, g.directed());
  const DenseBlock frontier = linalg::FrontierPanel(
      g.num_vertices(),
      std::vector<std::int64_t>(sources.begin(), sources.end()));
  SparkletContext ctx(TenantCluster());
  ctx.cluster().EnableStageTrace();
  KsourceBlockedSolver solver;
  auto result =
      solver.Solve(ctx, layout, layout.Decompose(g.ToDenseAdjacency()),
                   apsp::DecomposeFrontier(layout, frontier), opts);
  if (!result.status.ok()) {
    std::fprintf(stderr, "%s solo run failed: %s\n", run.plane.c_str(),
                 result.status.ToString().c_str());
    run.bitwise_equal = false;
    return run;
  }
  const DenseBlock& panel = *result.distances;
  run.bitwise_equal =
      panel.rows() == oracle.rows() && panel.cols() == oracle.cols() &&
      std::memcmp(panel.data(), oracle.data(),
                  static_cast<std::size_t>(panel.size()) * sizeof(double)) ==
          0;
  run.sim_seconds = result.sim_seconds;
  run.executor_failures = result.metrics.executor_failures;
  run.node_joins = result.metrics.node_joins;
  run.migrated_partitions = result.metrics.migrated_partitions;
  run.migration_bytes = result.metrics.migration_bytes;
  run.job = {run.plane, ctx.cluster().stage_trace()};
  return run;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Multi-tenant KSSP under rack loss: solo traces, bitwise lock, "
      "fair-share replay with memory admission");

  const graph::Graph raw = graph::PaperErdosRenyi(kN, 41);
  graph::Graph g(raw.num_vertices(), raw.directed());
  for (const auto& e : raw.edges()) {
    g.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  std::vector<graph::VertexId> sources;
  for (std::int64_t j = 0; j < kSources; ++j) {
    sources.push_back(j * kN / kSources);
  }
  DenseBlock all = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(all);
  DenseBlock oracle(kN, kSources, linalg::kInf);
  for (std::int64_t v = 0; v < kN; ++v) {
    for (std::int64_t j = 0; j < kSources; ++j) {
      oracle.Set(v, j, all.At(sources[static_cast<std::size_t>(j)], v));
    }
  }

  std::printf("%10s %10s %8s %8s %10s %8s\n", "plane", "solo-time", "losses",
              "joins", "migrated", "exact");
  std::vector<SoloRun> solos;
  bool ok = true;
  for (const KsourceVariant variant : {KsourceVariant::kStagedStorage,
                                       KsourceVariant::kShuffleReplicated}) {
    SoloRun run = RunSolo(g, sources, variant, oracle);
    std::printf("%10s %10s %8llu %8llu %10llu %8s\n", run.plane.c_str(),
                FormatDuration(run.sim_seconds).c_str(),
                static_cast<unsigned long long>(run.executor_failures),
                static_cast<unsigned long long>(run.node_joins),
                static_cast<unsigned long long>(run.migrated_partitions),
                run.bitwise_equal ? "yes" : "NO");
    ok &= run.bitwise_equal;
    ok &= run.executor_failures == 2 && run.node_joins == 1;
    solos.push_back(std::move(run));
  }

  // The tenants' stage peaks come from the modelled accountant, so both
  // replay scenarios are fully deterministic. "fair" gives memory headroom
  // (2x the fattest stage peak): pure slot sharing, the makespan the
  // regression gate tracks. "tight" halves the fattest peak: peak stages
  // block each other (admission waits) and oversized loners force-admit
  // with spill — the memory-pressure path, surfaced via SimMetrics.
  std::uint64_t max_peak = 0;
  for (const SoloRun& run : solos) {
    for (const auto& stage : run.job.stages) {
      max_peak = std::max(max_peak, stage.node_peak_bytes);
    }
  }

  auto replay = [&](const char* label, std::uint64_t budget,
                    sparklet::SimMetrics* metrics) {
    auto shared = TenantCluster();
    shared.executor_memory_bytes = budget;
    FairScheduler scheduler(shared);
    const auto report = scheduler.Run({solos[0].job, solos[1].job}, metrics);
    bench::PrintHeader(std::string("Fair-share replay (") + label +
                       " budget: " + FormatBytes(budget) + ")");
    std::printf("fair makespan:   %s\n",
                FormatDuration(report.makespan_seconds).c_str());
    std::printf("serial baseline: %s\n",
                FormatDuration(report.serial_seconds).c_str());
    std::printf("admission wait:  %s   spilled: %s\n",
                FormatDuration(report.admission_wait_seconds).c_str(),
                FormatBytes(report.spilled_bytes).c_str());
    for (std::size_t j = 0; j < solos.size(); ++j) {
      std::printf("  %10s: finish %s, waited %s, min slots %d\n",
                  solos[j].plane.c_str(),
                  FormatDuration(report.job_finish_seconds[j]).c_str(),
                  FormatDuration(report.job_admission_wait_seconds[j]).c_str(),
                  report.job_min_slots[j]);
    }
    return report;
  };

  sparklet::SimMetrics metrics;
  const auto report = replay("fair", 2 * max_peak, &metrics);
  const auto tight = replay("tight", max_peak / 2, &metrics);
  std::printf("engine: %s\n", metrics.Summary().c_str());

  // With headroom, fair sharing is work-conserving: never slower than
  // back-to-back, and every tenant both finishes and is accounted.
  ok &= report.makespan_seconds <= report.serial_seconds + 1e-9;
  ok &= report.makespan_seconds > 0;
  ok &= report.spilled_bytes == 0;
  for (const double finish : report.job_finish_seconds) ok &= finish > 0;
  // Under pressure, the admission path must actually fire: waits accrue,
  // oversized stages spill, and the run still terminates.
  ok &= tight.admission_wait_seconds > 0;
  ok &= tight.spilled_bytes > 0;
  ok &= tight.makespan_seconds >= report.makespan_seconds;

  const char* json_path = std::getenv("APSPARK_BENCH_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_multitenant.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"benchmark\": \"bench_multitenant\",\n");
    std::fprintf(f, "  \"results\": [\n");
    for (const SoloRun& run : solos) {
      std::fprintf(f,
                   "    {\"section\": \"solo\", \"plane\": \"%s\", "
                   "\"sim_seconds\": %.6f, \"executor_failures\": %llu, "
                   "\"node_joins\": %llu, \"migrated_partitions\": %llu, "
                   "\"migration_bytes\": %llu, "
                   "\"bitwise_equal_to_reference\": %s},\n",
                   run.plane.c_str(), run.sim_seconds,
                   static_cast<unsigned long long>(run.executor_failures),
                   static_cast<unsigned long long>(run.node_joins),
                   static_cast<unsigned long long>(run.migrated_partitions),
                   static_cast<unsigned long long>(run.migration_bytes),
                   run.bitwise_equal ? "true" : "false");
    }
    std::fprintf(f,
                 "    {\"section\": \"multitenant\", \"tenants\": 2, "
                 "\"fair_makespan_seconds\": %.6f, "
                 "\"serial_seconds\": %.6f, "
                 "\"admission_wait_seconds\": %.6f, "
                 "\"spilled_bytes\": %llu, "
                 "\"bitwise_equal_to_reference\": %s},\n",
                 report.makespan_seconds, report.serial_seconds,
                 report.admission_wait_seconds,
                 static_cast<unsigned long long>(report.spilled_bytes),
                 ok ? "true" : "false");
    std::fprintf(f,
                 "    {\"section\": \"multitenant_tight\", \"tenants\": 2, "
                 "\"tight_makespan_seconds\": %.6f, "
                 "\"admission_wait_seconds\": %.6f, "
                 "\"spilled_bytes\": %llu}\n",
                 tight.makespan_seconds, tight.admission_wait_seconds,
                 static_cast<unsigned long long>(tight.spilled_bytes));
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nresults written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }

  if (!ok) {
    std::fprintf(stderr,
                 "\nFAIL: bitwise lock or fairness invariant violated\n");
    return 1;
  }
  std::printf("\nall multi-tenant invariants hold\n");
  return 0;
}
