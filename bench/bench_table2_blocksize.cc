// Table 2: the effect of block size and partitioner on execution time of
// all four solvers, n = 262144, p = 1024, B = 2.
//
// Methodology mirrors the paper: a small number of rounds is executed in
// the calibrated simulation (phantom blocks, full engine control path) and
// the total is projected from the per-round time ("Single" and "Projected"
// columns). Shapes to reproduce:
//   * Repeated Squaring / 2D Floyd-Warshall project into *days* (infeasible);
//   * 2D-FW per-iteration time is nearly independent of b;
//   * blocked methods land in hours with a sweet spot near b = 1024-2048;
//   * MD beats PH at large b, the gap closes at small b.
#include <cstdio>
#include <cstdlib>

#include "apsp/api.h"
#include "bench_util.h"
#include "common/time_utils.h"

int main() {
  using namespace apspark;
  using apsp::PartitionerKind;
  using apsp::SolverKind;

  bench::TraceGuard trace;  // APSPARK_TRACE_JSON=FILE captures the run
  const std::int64_t n = 262144;
  const auto cluster = sparklet::ClusterConfig::Paper();  // 1024 cores

  bench::PrintHeader(
      "Table 2 — effect of block size on execution time\n"
      "n = 262144, p = 1024, B = 2 (simulated; projected from executed "
      "rounds)");

  // Rounds simulated per solver (enough for a stable per-round average
  // while keeping the harness fast).
  auto rounds_for = [](SolverKind kind, std::int64_t b) -> std::int64_t {
    switch (kind) {
      case SolverKind::kRepeatedSquaring:
        return 1;  // one column sweep
      case SolverKind::kFloydWarshall2d:
        return b >= 1024 ? 4 : 2;  // k-steps (small q => cheap rounds)
      default:
        return 1;  // one diagonal iteration
    }
  };

  std::printf("%-18s %-4s %6s %12s %12s %14s %10s\n", "Method", "Part.", "b",
              "Iterations", "Single", "Projected", "Spill/node");
  for (SolverKind kind : apsp::AllSolverKinds()) {
    for (PartitionerKind part : {PartitionerKind::kMultiDiagonal,
                                 PartitionerKind::kPortableHash}) {
      for (std::int64_t b : {256LL, 512LL, 1024LL, 2048LL, 4096LL}) {
        apsp::SolveRequest request;
        request.solver = kind;
        request.cluster = cluster;
        request.options.block_size = b;
        request.options.partitioner = part;
        request.options.partitions_per_core = 2;
        request.options.max_rounds = rounds_for(kind, b);
        const auto report = apsp::SolveModel(n, request);
        const auto& result = report.run;
        std::string projected = FormatDuration(result.projected_seconds);
        if (!report.ok() || result.projected_storage_exceeded) {
          projected += " (storage!)";
        }
        std::printf("%-18s %-4s %6lld %12lld %12s %14s %10s\n",
                    report.solver_name.c_str(), bench::PartitionerLabel(part),
                    static_cast<long long>(b),
                    static_cast<long long>(result.rounds_total),
                    FormatDuration(result.SecondsPerRound()).c_str(),
                    projected.c_str(),
                    FormatBytes(static_cast<std::uint64_t>(
                                    result.projected_spill_bytes))
                        .c_str());
        std::fflush(stdout);
      }
    }
  }

  std::printf(
      "\nPaper reference (MD): RS b=256 45s/iter -> 9d16h; 2D-FW ~17-21s/iter"
      " -> 50-65d;\nBlocked-IM b=2048 3m44s -> 7h59m; Blocked-CB b=2048 3m18s"
      " -> 7h4m.\n");
  return 0;
}
