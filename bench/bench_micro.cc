// Micro-benchmarks: kernels, partitioners, generators, serialization, and a
// small end-to-end solve. These are ablation probes for the design choices
// DESIGN.md calls out rather than paper figures — quick relative numbers,
// not gated records (the gated records live in bench_fig2_kernels).
//
// Self-contained timing (best-of-N wall time via WallTimer); no external
// benchmark framework so the target always builds and run_benches.sh can
// include it unconditionally.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apsp/api.h"
#include "apsp/partitioners.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/time_utils.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "linalg/kernel_registry.h"
#include "linalg/kernels.h"
#include "sparklet/virtual_cluster.h"

namespace {

using namespace apspark;

linalg::DenseBlock RandomBlock(std::int64_t b, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  linalg::DenseBlock block(b, b, 0.0);
  for (std::int64_t i = 0; i < block.size(); ++i) {
    block.mutable_data()[i] = rng.NextDouble(1.0, 100.0);
  }
  return block;
}

template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    const double s = t.ElapsedSeconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

void PrintRow(const std::string& name, const std::string& config,
              double seconds, double items_per_sec, const char* unit) {
  std::printf("%-28s %-18s %10.3f ms %12.2f %s\n", name.c_str(),
              config.c_str(), seconds * 1e3, items_per_sec, unit);
}

/// Fused min-plus update across registry variants, then across SIMD ISAs at
/// the tiled variant — the micro view of the fig2 races.
void KernelProbes() {
  bench::PrintHeader("micro: kernels (b = 256, best of 5)");
  const std::int64_t b = 256;
  const auto lhs = RandomBlock(b, 1);
  const auto rhs = RandomBlock(b, 2);
  const double ops = static_cast<double>(b) * b * b;
  for (linalg::KernelVariant variant :
       {linalg::KernelVariant::kNaive, linalg::KernelVariant::kTiled,
        linalg::KernelVariant::kTiledParallel}) {
    linalg::ScopedKernelVariant scope(variant);
    linalg::ScopedSimdIsa isa(linalg::SimdIsa::kScalar);
    const double s = BestOf(5, [&] {
      linalg::DenseBlock c = lhs;
      linalg::MinPlusUpdate(lhs, rhs, c);
    });
    PrintRow("minplus_update",
             std::string("variant=") + linalg::KernelVariantName(variant), s,
             ops / s / 1e9, "Gops");
  }
  for (linalg::SimdIsa isa :
       {linalg::SimdIsa::kScalar, linalg::SimdIsa::kAvx2,
        linalg::SimdIsa::kAvx512}) {
    if (!linalg::SimdIsaAvailable(isa)) continue;
    linalg::ScopedKernelVariant scope(linalg::KernelVariant::kTiled);
    linalg::ScopedSimdIsa isa_scope(isa);
    const double s = BestOf(5, [&] {
      linalg::DenseBlock c = lhs;
      linalg::MinPlusUpdate(lhs, rhs, c);
    });
    PrintRow("minplus_update",
             std::string("isa=") + linalg::SimdIsaName(isa), s, ops / s / 1e9,
             "Gops");
  }
  {
    linalg::ScopedKernelVariant scope(linalg::KernelVariant::kTiled);
    const auto block = RandomBlock(b, 3);
    const double s = BestOf(5, [&] {
      linalg::DenseBlock copy = block;
      linalg::BlockedFloydWarshall(copy,
                                   linalg::GetKernelTuning().fw_block);
    });
    PrintRow("blocked_floyd_warshall", "variant=tiled", s, ops / s / 1e9,
             "Gops");
  }
  {
    const auto block = RandomBlock(1024, 5);
    const double s = BestOf(5, [&] { (void)block.Transposed(); });
    PrintRow("transpose", "b=1024", s,
             1024.0 * 1024.0 * 8 / s / 1e9, "GB/s");
  }
}

void PartitionerProbes() {
  bench::PrintHeader("micro: partitioners (n = 65536, b = 512, 2048 parts)");
  const apsp::BlockLayout layout(65536, 512);
  const auto keys = layout.StoredKeys();
  for (apsp::PartitionerKind kind : {apsp::PartitionerKind::kPortableHash,
                                     apsp::PartitionerKind::kMultiDiagonal}) {
    auto part = apsp::MakeBlockPartitioner(kind, layout, 2048);
    volatile int sink = 0;
    const double s = BestOf(5, [&] {
      int acc = 0;
      for (const auto& key : keys) acc += part->PartitionOf(key);
      sink = acc;
    });
    (void)sink;
    PrintRow("partition_of", bench::PartitionerLabel(kind), s,
             static_cast<double>(keys.size()) / s / 1e6, "Mkeys/s");
  }
}

void SerializationProbes() {
  bench::PrintHeader("micro: serialization and generation");
  {
    const auto block = RandomBlock(512, 6);
    const double s = BestOf(5, [&] {
      BinaryWriter writer;
      block.Serialize(writer);
      BinaryReader reader(writer.buffer());
      (void)linalg::DenseBlock::Deserialize(reader);
    });
    PrintRow("block_serialize_roundtrip", "b=512", s,
             static_cast<double>(block.size()) * 8 / s / 1e9, "GB/s");
  }
  {
    std::uint64_t seed = 0;
    const double s = BestOf(3, [&] { (void)graph::PaperErdosRenyi(8192, ++seed); });
    PrintRow("erdos_renyi_generate", "n=8192", s, 8192.0 / s / 1e6,
             "Mverts/s");
  }
  {
    Xoshiro256 rng(7);
    std::vector<double> tasks(16384);
    for (auto& t : tasks) t = rng.NextDouble(0.1, 2.0);
    const double s = BestOf(5, [&] {
      auto copy = tasks;
      (void)sparklet::ListScheduleMakespan(copy, 1024);
    });
    PrintRow("list_schedule_makespan", "16384 tasks", s,
             static_cast<double>(tasks.size()) / s / 1e6, "Mtasks/s");
  }
}

void EndToEndProbe() {
  bench::PrintHeader("micro: end-to-end blocked CB solve (n = 128, b = 32)");
  const auto g = graph::PaperErdosRenyi(128, 5);
  const double s = BestOf(3, [&] {
    apsp::SolveRequest request;
    request.options.block_size = 32;
    (void)apsp::Solve(g, request);
  });
  PrintRow("solve_blocked_cb", "n=128 b=32", s, 1.0 / s, "solves/s");
}

}  // namespace

int main() {
  std::printf("kernels: %s\n",
              linalg::DescribeKernelTuning(linalg::GetKernelTuning()).c_str());
  KernelProbes();
  PartitionerProbes();
  SerializationProbes();
  EndToEndProbe();
  return 0;
}
