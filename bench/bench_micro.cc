// Micro-benchmarks (google-benchmark): kernels, partitioners, generators,
// serialization, and small end-to-end solves. These are ablation probes for
// the design choices DESIGN.md calls out rather than paper figures.
#include <benchmark/benchmark.h>

#include "apsp/partitioners.h"
#include "apsp/solver.h"
#include "common/rng.h"
#include "common/serial.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "linalg/kernels.h"
#include "sparklet/virtual_cluster.h"

namespace {

using namespace apspark;

linalg::DenseBlock RandomBlock(std::int64_t b, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  linalg::DenseBlock block(b, b, 0.0);
  for (std::int64_t i = 0; i < block.size(); ++i) {
    block.mutable_data()[i] = rng.NextDouble(1.0, 100.0);
  }
  return block;
}

linalg::ScopedKernelVariant ScopedVariant(std::int64_t v) {
  return linalg::ScopedKernelVariant(static_cast<linalg::KernelVariant>(v));
}

void SetVariantLabel(benchmark::State& state) {
  state.SetLabel(linalg::KernelVariantName(
      static_cast<linalg::KernelVariant>(state.range(1))));
}

void BM_MinPlusProduct(benchmark::State& state) {
  const std::int64_t b = state.range(0);
  const auto variant = ScopedVariant(state.range(1));
  SetVariantLabel(state);
  const auto lhs = RandomBlock(b, 1);
  const auto rhs = RandomBlock(b, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MinPlusProduct(lhs, rhs));
  }
  state.SetItemsProcessed(state.iterations() * b * b * b);
}
BENCHMARK(BM_MinPlusProduct)
    ->ArgsProduct({{64, 128, 256}, {0, 1, 2}});

void BM_MinPlusFusedUpdate(benchmark::State& state) {
  const std::int64_t b = state.range(0);
  const auto variant = ScopedVariant(state.range(1));
  SetVariantLabel(state);
  const auto lhs = RandomBlock(b, 1);
  const auto rhs = RandomBlock(b, 2);
  for (auto _ : state) {
    linalg::DenseBlock c = lhs;
    linalg::MinPlusUpdate(lhs, rhs, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * b * b * b);
}
BENCHMARK(BM_MinPlusFusedUpdate)
    ->ArgsProduct({{128, 256, 512}, {0, 1, 2}});

void BM_FloydWarshallKernel(benchmark::State& state) {
  const std::int64_t b = state.range(0);
  const auto variant = ScopedVariant(state.range(1));
  SetVariantLabel(state);
  const auto block = RandomBlock(b, 3);
  for (auto _ : state) {
    linalg::DenseBlock copy = block;
    linalg::FloydWarshallInPlace(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * b * b * b);
}
BENCHMARK(BM_FloydWarshallKernel)
    ->ArgsProduct({{64, 128, 256}, {0, 1, 2}});

void BM_BlockedFloydWarshall(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto variant = ScopedVariant(state.range(1));
  SetVariantLabel(state);
  const auto block = RandomBlock(n, 4);
  for (auto _ : state) {
    linalg::DenseBlock copy = block;
    linalg::BlockedFloydWarshall(copy, 64);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_BlockedFloydWarshall)
    ->ArgsProduct({{128, 256}, {0, 1, 2}});

void BM_Transpose(benchmark::State& state) {
  const auto block = RandomBlock(state.range(0), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.Transposed());
  }
}
BENCHMARK(BM_Transpose)->Arg(256)->Arg(1024);

void BM_PortableHashPartitioner(benchmark::State& state) {
  const apsp::BlockLayout layout(65536, 512);
  auto part = apsp::MakeBlockPartitioner(apsp::PartitionerKind::kPortableHash,
                                         layout, 2048);
  const auto keys = layout.StoredKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part->PartitionOf(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_PortableHashPartitioner);

void BM_MultiDiagonalPartitioner(benchmark::State& state) {
  const apsp::BlockLayout layout(65536, 512);
  auto part = apsp::MakeBlockPartitioner(
      apsp::PartitionerKind::kMultiDiagonal, layout, 2048);
  const auto keys = layout.StoredKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part->PartitionOf(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_MultiDiagonalPartitioner);

void BM_ErdosRenyiGeneration(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::PaperErdosRenyi(n, ++seed));
  }
}
BENCHMARK(BM_ErdosRenyiGeneration)->Arg(1024)->Arg(8192);

void BM_BlockSerializeRoundtrip(benchmark::State& state) {
  const auto block = RandomBlock(state.range(0), 6);
  for (auto _ : state) {
    BinaryWriter writer;
    block.Serialize(writer);
    BinaryReader reader(writer.buffer());
    auto copy = linalg::DenseBlock::Deserialize(reader);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_BlockSerializeRoundtrip)->Arg(256)->Arg(512);

void BM_ListScheduleMakespan(benchmark::State& state) {
  Xoshiro256 rng(7);
  std::vector<double> tasks(static_cast<std::size_t>(state.range(0)));
  for (auto& t : tasks) t = rng.NextDouble(0.1, 2.0);
  for (auto _ : state) {
    auto copy = tasks;
    benchmark::DoNotOptimize(sparklet::ListScheduleMakespan(copy, 1024));
  }
}
BENCHMARK(BM_ListScheduleMakespan)->Arg(2048)->Arg(16384);

void BM_EndToEndBlockedCB(benchmark::State& state) {
  const auto g = graph::PaperErdosRenyi(128, 5);
  for (auto _ : state) {
    apsp::ApspOptions opts;
    opts.block_size = 32;
    auto solver = apsp::MakeSolver(apsp::SolverKind::kBlockedCollectBroadcast);
    auto result =
        solver->SolveGraph(g, opts, sparklet::ClusterConfig::TinyTest());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EndToEndBlockedCB);

void BM_DijkstraAllPairs(benchmark::State& state) {
  const auto g = graph::PaperErdosRenyi(state.range(0), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::DijkstraAllPairs(g));
  }
}
BENCHMARK(BM_DijkstraAllPairs)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
