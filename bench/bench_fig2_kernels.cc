// Figure 2: effect of block size on the execution time of the sequential
// building blocks — FloydWarshall, and MatProd combined with MatMin
// ("MinPlus" in the figure) — plus the kernel-engine comparison that tracks
// this repository's perf trajectory.
//
// Section 1 reproduces the paper figure: host-measured time next to the
// paper-calibrated cost model's prediction (0.762 Gops sequential FW with an
// L3 knee around b = 1810). The paper's shape to reproduce: ~b^3 growth,
// fast below the cache knee, rapidly growing past it.
//
// Section 2 races the kernel variants (naive scalar loops vs tiled+fused vs
// tiled+parallel) on the MinPlus and FloydWarshall building blocks, checks
// the min-plus results are bitwise-identical to the scalar reference, and
// writes machine-readable results to BENCH_kernels.json (path overridable
// via APSPARK_BENCH_JSON) so every future PR is measured against this one.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

// Section 3 races the work-stealing block-task scheduler on one task
// batch's worth of independent block updates (q^2 updates at b = 128, the
// small-block layout that row striping alone cannot scale) and gates the
// speedup on multi-core hosts.
// Section 4 races the semiring engine: the fused closure in each algebra
// (one generic engine, four instantiations), and the headline bit-packed
// boolean record — word-parallel or/and closure vs the dense-double boolean
// closure at the same b. The bit-packed record is the tracked headline in
// BENCH_kernels.json and is gated by check_regression.sh.
#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "linalg/cost_model.h"
#include "linalg/dense_block.h"
#include "linalg/kernel_registry.h"
#include "linalg/kernels.h"
#include "linalg/semiring.h"

namespace {

using namespace apspark;

linalg::DenseBlock RandomBlock(std::int64_t b, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  linalg::DenseBlock block(b, b, 0.0);
  for (std::int64_t i = 0; i < block.size(); ++i) {
    block.mutable_data()[i] = rng.NextDouble(1.0, 100.0);
  }
  return block;
}

bool BitwiseEqual(const linalg::DenseBlock& a, const linalg::DenseBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(double)) == 0;
}

struct KernelResult {
  std::string kernel;   // "minplus" or "floyd_warshall"
  std::string variant;  // registry variant name
  std::int64_t b = 0;
  double seconds = 0;
  double gops = 0;          // b^3 / seconds / 1e9
  double speedup = 1.0;     // vs the naive variant at the same b
  bool bitwise_equal = true;  // vs the scalar reference result
};

/// Times fn() `reps` times and returns the best (minimum) wall time.
template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    const double s = t.ElapsedSeconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

void WriteJson(const std::vector<KernelResult>& results,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_fig2_kernels\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"variant\": \"%s\", \"b\": %lld, "
                 "\"seconds\": %.6f, \"gops\": %.3f, \"speedup_vs_naive\": "
                 "%.2f, \"bitwise_equal_to_reference\": %s}%s\n",
                 r.kernel.c_str(), r.variant.c_str(),
                 static_cast<long long>(r.b), r.seconds, r.gops, r.speedup,
                 r.bitwise_equal ? "true" : "false",
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nresults written to %s\n", path.c_str());
}

/// Section 2: the kernel-engine race. Returns all measurements.
std::vector<KernelResult> RunKernelComparison(std::int64_t max_b) {
  bench::PrintHeader(
      "Kernel engine — naive scalar vs tiled+fused vs tiled+parallel\n"
      "(MinPlus = min(A, A \xe2\x8a\x97 B); naive is the seed's "
      "product+element-min path)");
  std::vector<KernelResult> results;
  // This section races *variants* (loop structure), so the micro-kernel ISA
  // is pinned to scalar: the tiled/naive/parallel records keep meaning what
  // they always meant. Section 5 races the ISAs against each other.
  linalg::ScopedSimdIsa isa_scope(linalg::SimdIsa::kScalar);
  const linalg::KernelVariant variants[] = {
      linalg::KernelVariant::kNaive, linalg::KernelVariant::kTiled,
      linalg::KernelVariant::kTiledParallel};

  std::printf("%16s %8s %16s %16s %10s %10s  %s\n", "kernel", "b", "variant",
              "time", "Gops", "speedup", "exact");
  for (std::int64_t b : {256, 512, 1024}) {
    if (b > max_b) continue;
    const int reps = b >= 1024 ? 2 : 3;
    const linalg::DenseBlock lhs = RandomBlock(b, 2);
    const linalg::DenseBlock rhs = RandomBlock(b, 3);
    const double ops = static_cast<double>(b) * b * b;

    // --- MinPlus building block -------------------------------------
    linalg::DenseBlock reference(0, 0);
    double naive_seconds = 0;
    for (linalg::KernelVariant v : variants) {
      linalg::ScopedKernelVariant scope(v);
      KernelResult r;
      r.kernel = "minplus";
      r.variant = linalg::KernelVariantName(v);
      r.b = b;
      linalg::DenseBlock out(0, 0);
      if (v == linalg::KernelVariant::kNaive) {
        // The seed's unfused path: materialize the product, then a second
        // element-min pass against the resident block.
        r.seconds = BestOf(reps, [&] {
          linalg::DenseBlock prod = linalg::MinPlusProduct(lhs, rhs);
          linalg::ElementMinInPlace(prod, lhs);
          out = std::move(prod);
        });
        naive_seconds = r.seconds;
        reference = out;
      } else {
        // The fused path the engine now runs: one pass, no product block.
        r.seconds = BestOf(reps, [&] {
          linalg::DenseBlock c = lhs;
          linalg::MinPlusUpdate(lhs, rhs, c);
          out = std::move(c);
        });
      }
      r.gops = ops / r.seconds / 1e9;
      r.speedup = naive_seconds / r.seconds;
      r.bitwise_equal = BitwiseEqual(out, reference);
      std::printf("%16s %8lld %16s %16s %10.3f %9.2fx  %s\n", "minplus",
                  static_cast<long long>(b), r.variant.c_str(),
                  FormatSeconds(r.seconds, 3).c_str(), r.gops, r.speedup,
                  r.bitwise_equal ? "yes" : "NO");
      results.push_back(r);
    }

    // --- FloydWarshall building block -------------------------------
    const linalg::DenseBlock adj = [&] {
      linalg::DenseBlock m = RandomBlock(b, 4);
      for (std::int64_t i = 0; i < b; ++i) m.Set(i, i, 0.0);
      return m;
    }();
    linalg::DenseBlock fw_reference = adj;
    linalg::ReferenceFloydWarshall(fw_reference);
    double fw_naive_seconds = 0;
    for (linalg::KernelVariant v : variants) {
      linalg::ScopedKernelVariant scope(v);
      KernelResult r;
      r.kernel = "floyd_warshall";
      r.variant = linalg::KernelVariantName(v);
      r.b = b;
      linalg::DenseBlock out(0, 0);
      r.seconds = BestOf(reps, [&] {
        linalg::DenseBlock m = adj;
        linalg::FloydWarshallInPlace(m);
        out = std::move(m);
      });
      if (v == linalg::KernelVariant::kNaive) fw_naive_seconds = r.seconds;
      r.gops = ops / r.seconds / 1e9;
      r.speedup = fw_naive_seconds / r.seconds;
      // Blocked FW reorders relaxations; allow last-ulp differences but
      // report whether the result is in fact bit-identical.
      r.bitwise_equal = BitwiseEqual(out, fw_reference);
      if (!out.ApproxEquals(fw_reference, 1e-9)) {
        std::fprintf(stderr, "FW variant %s DIVERGED from reference!\n",
                     r.variant.c_str());
        std::exit(1);
      }
      std::printf("%16s %8lld %16s %16s %10.3f %9.2fx  %s\n",
                  "floyd_warshall", static_cast<long long>(b),
                  r.variant.c_str(), FormatSeconds(r.seconds, 3).c_str(),
                  r.gops, r.speedup, r.bitwise_equal ? "yes" : "~ulp");
      results.push_back(r);
    }
  }
  return results;
}

/// Section 3: one sparklet task batch's independent block updates
/// C_uv = min(C_uv, A_u (min,+) B_v) — q^2 updates at a small block size.
/// "row_stripe" runs the updates sequentially with only each update's rows
/// striped over the pool (the pre-scheduler behavior); "work_steal" makes
/// every block update a stealable task (the production path of the batch
/// unpackers). Both run under kTiledParallel and must stay bitwise-equal to
/// the sequential scalar loop.
std::vector<KernelResult> RunSchedulerComparison() {
  constexpr std::int64_t kB = 128;
  constexpr std::int64_t kQ = 8;
  bench::PrintHeader(
      "Block-task scheduler — 64 independent 128x128 block updates\n"
      "(row striping within one update vs work-stealing across updates)");
  std::vector<KernelResult> results;

  std::vector<linalg::DenseBlock> lhs;
  std::vector<linalg::DenseBlock> rhs;
  std::vector<linalg::DenseBlock> base;
  for (std::int64_t i = 0; i < kQ; ++i) {
    lhs.push_back(RandomBlock(kB, 100 + static_cast<std::uint64_t>(i)));
    rhs.push_back(RandomBlock(kB, 200 + static_cast<std::uint64_t>(i)));
  }
  for (std::int64_t u = 0; u < kQ * kQ; ++u) {
    base.push_back(RandomBlock(kB, 300 + static_cast<std::uint64_t>(u)));
  }
  // Scalar oracle, sequential.
  std::vector<linalg::DenseBlock> reference = base;
  for (std::int64_t u = 0; u < kQ * kQ; ++u) {
    linalg::MinPlusAccumulateRawNaive(
        kB, kB, kB, lhs[static_cast<std::size_t>(u / kQ)].data(), kB,
        rhs[static_cast<std::size_t>(u % kQ)].data(), kB,
        reference[static_cast<std::size_t>(u)].mutable_data(), kB);
  }

  const double ops = static_cast<double>(kQ) * kQ * kB * kB * kB;
  linalg::ScopedKernelVariant scope(linalg::KernelVariant::kTiledParallel);
  auto run_update = [&](std::vector<linalg::DenseBlock>& out, std::size_t u) {
    linalg::MinPlusUpdate(lhs[u / static_cast<std::size_t>(kQ)],
                          rhs[u % static_cast<std::size_t>(kQ)], out[u]);
  };

  std::printf("%16s %8s %16s %10s %10s  %s\n", "mode", "b", "time", "Gops",
              "speedup", "exact");
  double stripe_seconds = 0;
  for (const char* mode : {"row_stripe", "work_steal"}) {
    std::vector<linalg::DenseBlock> out;
    KernelResult r;
    r.kernel = "sched_batch";
    r.variant = mode;
    r.b = kB;
    r.seconds = BestOf(7, [&] {
      out = base;
      if (std::string(mode) == "row_stripe") {
        for (std::size_t u = 0; u < static_cast<std::size_t>(kQ * kQ); ++u) {
          run_update(out, u);
        }
      } else {
        linalg::KernelThreadPool().ParallelForTasks(
            static_cast<std::size_t>(kQ * kQ),
            [&](std::size_t u) { run_update(out, u); });
      }
    });
    if (std::string(mode) == "row_stripe") stripe_seconds = r.seconds;
    r.gops = ops / r.seconds / 1e9;
    r.speedup = stripe_seconds / r.seconds;
    r.bitwise_equal = true;
    for (std::size_t u = 0; u < static_cast<std::size_t>(kQ * kQ); ++u) {
      r.bitwise_equal =
          r.bitwise_equal && BitwiseEqual(out[u], reference[u]);
    }
    std::printf("%16s %8lld %16s %10.3f %9.2fx  %s\n", r.variant.c_str(),
                static_cast<long long>(r.b),
                FormatSeconds(r.seconds, 3).c_str(), r.gops, r.speedup,
                r.bitwise_equal ? "yes" : "NO");
    results.push_back(r);
  }
  return results;
}

/// Section 4: the semiring engine. One record per semiring (fused tiled
/// closure vs the naive variant of the same algebra), plus the headline
/// "boolean_packed"/"bitpacked" record: the word-parallel bit plane against
/// the dense-double boolean closure. Bitwise equality is against the scalar
/// oracle of each semiring (SemiringClosureDispatch).
std::vector<KernelResult> RunSemiringComparison(std::int64_t max_b) {
  constexpr std::int64_t kB = 1024;
  std::vector<KernelResult> results;
  if (kB > max_b) return results;
  // Variant comparison again — ISA pinned to scalar (see Section 2 note).
  linalg::ScopedSimdIsa isa_scope(linalg::SimdIsa::kScalar);
  bench::PrintHeader(
      "Semiring engine — fused closure per algebra at b = 1024\n"
      "(one generic kernel engine; boolean additionally runs the bit-packed "
      "64-per-word plane)");

  // A min-plus adjacency with ~30% missing edges; each semiring ingests its
  // own image of it, so every algebra sees the same reachability structure.
  const linalg::DenseBlock minplus_adj = [&] {
    Xoshiro256 rng(11);
    linalg::DenseBlock m(kB, kB, linalg::kInf);
    for (std::int64_t i = 0; i < kB; ++i) {
      for (std::int64_t j = 0; j < kB; ++j) {
        if (i == j) {
          m.Set(i, j, 0.0);
        } else if (rng.NextDouble() < 0.7) {
          m.Set(i, j, std::floor(rng.NextDouble(1.0, 10.0)));
        }
      }
    }
    return m;
  }();

  const linalg::SemiringId semirings[] = {
      linalg::SemiringId::kMinPlus, linalg::SemiringId::kBoolean,
      linalg::SemiringId::kMaxMin, linalg::SemiringId::kMaxTimes};
  std::printf("%16s %8s %16s %16s %10s %10s  %s\n", "kernel", "b", "variant",
              "time", "Gops", "speedup", "exact");
  const double ops = static_cast<double>(kB) * kB * kB;

  double boolean_dense_seconds = 0;
  for (const linalg::SemiringId id : semirings) {
    const linalg::DenseBlock base =
        linalg::SemiringAdjacency(minplus_adj, id);
    linalg::DenseBlock oracle = base;
    linalg::SemiringClosureDispatch(id, oracle);
    const std::string name = std::string("semiring_") +
                             linalg::SemiringName(id);
    double naive_seconds = 0;
    for (const linalg::KernelVariant v :
         {linalg::KernelVariant::kNaive, linalg::KernelVariant::kTiled}) {
      linalg::ScopedKernelVariant kernel_scope(v);
      linalg::ScopedSemiring semiring_scope(id);
      KernelResult r;
      r.kernel = name;
      r.variant = linalg::KernelVariantName(v);
      r.b = kB;
      linalg::DenseBlock out(0, 0);
      r.seconds = BestOf(1, [&] {
        linalg::DenseBlock m = base;
        linalg::FloydWarshallInPlace(m);
        out = std::move(m);
      });
      if (v == linalg::KernelVariant::kNaive) naive_seconds = r.seconds;
      if (id == linalg::SemiringId::kBoolean &&
          v == linalg::KernelVariant::kTiled) {
        boolean_dense_seconds = r.seconds;
      }
      r.gops = ops / r.seconds / 1e9;
      r.speedup = naive_seconds / r.seconds;
      r.bitwise_equal = BitwiseEqual(out, oracle);
      std::printf("%16s %8lld %16s %16s %10.3f %9.2fx  %s\n",
                  r.kernel.c_str(), static_cast<long long>(r.b),
                  r.variant.c_str(), FormatSeconds(r.seconds, 3).c_str(),
                  r.gops, r.speedup, r.bitwise_equal ? "yes" : "~ulp");
      results.push_back(r);
    }
  }

  // --- Headline: the bit-packed boolean plane. speedup_vs_naive is the
  // packed closure against the *dense tiled* boolean closure — the fair
  // same-variant comparison the memory plane replaces.
  {
    linalg::ScopedSemiring semiring_scope(linalg::SemiringId::kBoolean);
    const linalg::DenseBlock dense_base =
        linalg::SemiringAdjacency(minplus_adj, linalg::SemiringId::kBoolean);
    linalg::DenseBlock oracle = dense_base;
    linalg::SemiringClosureDispatch(linalg::SemiringId::kBoolean, oracle);
    const linalg::DenseBlock packed_base = dense_base.BitPacked();
    KernelResult r;
    r.kernel = "boolean_packed";
    r.variant = "bitpacked";
    r.b = kB;
    linalg::DenseBlock out(0, 0);
    r.seconds = BestOf(3, [&] {
      linalg::DenseBlock m = packed_base;
      linalg::FloydWarshallInPlace(m);
      out = std::move(m);
    });
    r.gops = ops / r.seconds / 1e9;
    r.speedup = boolean_dense_seconds / r.seconds;
    r.bitwise_equal = BitwiseEqual(out.Unpacked(), oracle);
    std::printf("%16s %8lld %16s %16s %10.3f %9.2fx  %s\n", r.kernel.c_str(),
                static_cast<long long>(r.b), r.variant.c_str(),
                FormatSeconds(r.seconds, 3).c_str(), r.gops, r.speedup,
                r.bitwise_equal ? "yes" : "NO");
    results.push_back(r);
  }
  return results;
}

/// Section 5: the SIMD micro-kernel race. Forced-scalar tiled dispatch vs
/// every SIMD backend this host can execute, on the fused min-plus update at
/// the headline block size. Records carry kernel="minplus_simd" and
/// variant=<isa name>; speedup_vs_naive is actually vs the forced-*scalar*
/// tiled run at the same b (1.00 for the scalar record itself), and bitwise
/// equality is vs that scalar result — the lock the register micro-tile
/// must never break.
std::vector<KernelResult> RunSimdComparison(std::int64_t max_b) {
  std::vector<KernelResult> results;
  std::int64_t b = 0;
  for (const std::int64_t candidate : {256, 512, 1024}) {
    if (candidate <= max_b) b = candidate;
  }
  if (b == 0) return results;
  bench::PrintHeader(
      "SIMD micro-kernel — forced-scalar vs runtime-dispatched backends\n"
      "(2x4 register micro-tile; min-plus fused update, tiled variant)");
  std::printf("detected host ISA: %s\n",
              linalg::SimdIsaName(linalg::DetectSimdIsa()));

  const linalg::DenseBlock lhs = RandomBlock(b, 21);
  const linalg::DenseBlock rhs = RandomBlock(b, 22);
  const double ops = static_cast<double>(b) * b * b;
  const int reps = b >= 1024 ? 3 : 5;
  linalg::ScopedKernelVariant variant_scope(linalg::KernelVariant::kTiled);

  std::vector<linalg::SimdIsa> isas = {linalg::SimdIsa::kScalar};
  if (linalg::SimdIsaAvailable(linalg::SimdIsa::kAvx2)) {
    isas.push_back(linalg::SimdIsa::kAvx2);
  }
  if (linalg::SimdIsaAvailable(linalg::SimdIsa::kAvx512)) {
    isas.push_back(linalg::SimdIsa::kAvx512);
  }

  std::printf("%16s %8s %16s %16s %10s %10s  %s\n", "kernel", "b", "isa",
              "time", "Gops", "speedup", "exact");
  double scalar_seconds = 0;
  linalg::DenseBlock scalar_out(0, 0);
  for (const linalg::SimdIsa isa : isas) {
    linalg::ScopedSimdIsa isa_scope(isa);
    KernelResult r;
    r.kernel = "minplus_simd";
    r.variant = linalg::SimdIsaName(isa);
    r.b = b;
    linalg::DenseBlock out(0, 0);
    r.seconds = BestOf(reps, [&] {
      linalg::DenseBlock c = lhs;
      linalg::MinPlusUpdate(lhs, rhs, c);
      out = std::move(c);
    });
    if (isa == linalg::SimdIsa::kScalar) {
      scalar_seconds = r.seconds;
      scalar_out = out;
    }
    r.gops = ops / r.seconds / 1e9;
    r.speedup = scalar_seconds / r.seconds;
    r.bitwise_equal = BitwiseEqual(out, scalar_out);
    std::printf("%16s %8lld %16s %16s %10.3f %9.2fx  %s\n", r.kernel.c_str(),
                static_cast<long long>(r.b), r.variant.c_str(),
                FormatSeconds(r.seconds, 3).c_str(), r.gops, r.speedup,
                r.bitwise_equal ? "yes" : "NO");
    results.push_back(r);
  }
  return results;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 2 — sequential kernel time vs block size b\n"
      "(host-measured up to the feasible size; model curve to b = 10000)");

  const linalg::CostModel model;  // paper-calibrated defaults

  std::int64_t max_measured = 1024;
  if (const char* env = std::getenv("APSPARK_FIG2_MAX_B")) {
    max_measured = std::atoll(env);
  }

  std::printf("%8s %16s %16s %16s %16s\n", "b", "FW measured", "FW model",
              "MinPlus measured", "MinPlus model");
  // The model columns are calibrated against the sequential *scalar* kernels
  // (0.762 Gops, L3 knee at b = 1810): pin the naive variant so measured and
  // model compare like with like. Section 2 below races the tiled engine.
  linalg::ScopedKernelVariant figure_scope(linalg::KernelVariant::kNaive);
  const std::int64_t sizes[] = {128,  256,  384,  512,  768, 1024,
                                1536, 2048, 3072, 4096, 6144, 8192, 10000};
  for (std::int64_t b : sizes) {
    const double fw_model = model.FloydWarshallSeconds(b);
    const double mp_model =
        model.MinPlusSeconds(b, b, b) +
        model.ElementwiseSeconds(b * b);
    std::string fw_meas = "-";
    std::string mp_meas = "-";
    if (b <= max_measured) {
      linalg::DenseBlock fw = RandomBlock(b, 1);
      WallTimer t1;
      linalg::FloydWarshallInPlace(fw);
      fw_meas = FormatSeconds(t1.ElapsedSeconds(), 3);

      const linalg::DenseBlock lhs = RandomBlock(b, 2);
      const linalg::DenseBlock rhs = RandomBlock(b, 3);
      WallTimer t2;
      linalg::DenseBlock prod = lhs;
      linalg::MinPlusUpdate(lhs, rhs, prod);
      mp_meas = FormatSeconds(t2.ElapsedSeconds(), 3);
    }
    std::printf("%8lld %16s %16s %16s %16s\n",
                static_cast<long long>(b), fw_meas.c_str(),
                FormatSeconds(fw_model, 3).c_str(), mp_meas.c_str(),
                FormatSeconds(mp_model, 3).c_str());
  }

  std::printf(
      "\nPaper reference points: T1(n=256) = 0.022s (0.762 Gops); cache knee"
      " near b = 1810;\nb = 10000 Floyd-Warshall runs into ~1.3e3 s (Fig. 2"
      " top of scale ~1.4e3 s).\n");
  std::printf("Model check: FW(256) = %s, FW(10000) = %s\n",
              FormatSeconds(model.FloydWarshallSeconds(256), 3).c_str(),
              FormatDuration(model.FloydWarshallSeconds(10000)).c_str());

  auto results = RunKernelComparison(max_measured);
  const auto sched_results = RunSchedulerComparison();
  results.insert(results.end(), sched_results.begin(), sched_results.end());
  const auto semiring_results = RunSemiringComparison(max_measured);
  results.insert(results.end(), semiring_results.begin(),
                 semiring_results.end());
  const auto simd_results = RunSimdComparison(max_measured);
  results.insert(results.end(), simd_results.begin(), simd_results.end());
  const char* json_path = std::getenv("APSPARK_BENCH_JSON");
  WriteJson(results, json_path != nullptr ? json_path : "BENCH_kernels.json");

  // Fail loudly if the tiled engine regressed below the 2x bar this PR set,
  // or if any min-plus variant stopped being bit-exact. Shared CI runners
  // are noisy (2 reps, no -march=native), so the threshold can be relaxed
  // via APSPARK_GATE_MIN_SPEEDUP there; the default is the local bar.
  double min_speedup = 2.0;
  if (const char* env = std::getenv("APSPARK_GATE_MIN_SPEEDUP")) {
    min_speedup = std::atof(env);
  }
  bool gate_evaluated = false;
  for (const KernelResult& r : results) {
    if (r.kernel == "minplus" && !r.bitwise_equal) {
      std::fprintf(stderr, "FAIL: %s %s b=%lld not bitwise equal\n",
                   r.kernel.c_str(), r.variant.c_str(),
                   static_cast<long long>(r.b));
      return 1;
    }
    if (r.kernel == "minplus" && r.variant == "tiled" && r.b == 1024) {
      gate_evaluated = true;
      if (r.speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: tiled minplus speedup %.2fx < %.2fx at b=1024\n",
                     r.speedup, min_speedup);
        return 1;
      }
    }
  }
  if (!gate_evaluated) {
    std::printf("note: perf gate NOT evaluated (b=1024 not measured; "
                "APSPARK_FIG2_MAX_B=%lld)\n",
                static_cast<long long>(max_measured));
  }

  // Scheduler gate (ISSUE 3 acceptance): work stealing across a task
  // batch's block updates must beat row-striping-only at b = 128, q >= 8 on
  // a multi-core host — on a single-core host both modes degenerate to the
  // same sequential execution and the ratio is meaningless. Bitwise
  // equality is gated unconditionally.
  double sched_min_speedup = 1.3;
  if (const char* env = std::getenv("APSPARK_GATE_SCHED_SPEEDUP")) {
    sched_min_speedup = std::atof(env);
  }
  for (const KernelResult& r : results) {
    if (r.kernel != "sched_batch") continue;
    if (!r.bitwise_equal) {
      std::fprintf(stderr, "FAIL: sched_batch %s b=%lld not bitwise equal\n",
                   r.variant.c_str(), static_cast<long long>(r.b));
      return 1;
    }
    if (r.variant != "work_steal") continue;
    if (linalg::KernelThreadPool().num_threads() <= 1) {
      std::printf("note: scheduler gate NOT evaluated (single-core host)\n");
    } else if (r.speedup < sched_min_speedup) {
      std::fprintf(stderr,
                   "FAIL: work-stealing speedup %.2fx < %.2fx over "
                   "row striping (b=%lld, q=8)\n",
                   r.speedup, sched_min_speedup,
                   static_cast<long long>(r.b));
      return 1;
    }
  }

  // Semiring-engine gate: every algebra's fused closure must stay bit-exact
  // against its scalar oracle, and the headline bit-packed boolean closure
  // must beat the dense boolean plane (word-parallel or/and retires 64 lanes
  // per op; 2x is a deliberately loose floor for noisy shared runners,
  // overridable via APSPARK_GATE_BITPACK_SPEEDUP).
  double bitpack_min_speedup = 2.0;
  if (const char* env = std::getenv("APSPARK_GATE_BITPACK_SPEEDUP")) {
    bitpack_min_speedup = std::atof(env);
  }
  bool bitpack_gate_evaluated = false;
  for (const KernelResult& r : results) {
    const bool semiring_record =
        r.kernel.rfind("semiring_", 0) == 0 || r.kernel == "boolean_packed";
    if (!semiring_record) continue;
    if (!r.bitwise_equal) {
      std::fprintf(stderr, "FAIL: %s %s b=%lld not bitwise equal to its "
                   "scalar oracle\n",
                   r.kernel.c_str(), r.variant.c_str(),
                   static_cast<long long>(r.b));
      return 1;
    }
    if (r.kernel == "boolean_packed" && r.variant == "bitpacked" &&
        r.b == 1024) {
      bitpack_gate_evaluated = true;
      if (r.speedup < bitpack_min_speedup) {
        std::fprintf(stderr,
                     "FAIL: bit-packed boolean closure speedup %.2fx < %.2fx "
                     "vs dense at b=1024\n",
                     r.speedup, bitpack_min_speedup);
        return 1;
      }
    }
  }
  if (!bitpack_gate_evaluated && max_measured >= 1024) {
    std::fprintf(stderr, "FAIL: bit-packed boolean record missing\n");
    return 1;
  }

  // SIMD micro-kernel gate: every ISA record must be bitwise-equal to the
  // forced-scalar run (unconditional), and the host's best SIMD backend must
  // beat forced-scalar tiled by 1.3x at b = 1024 (the micro-tile acceptance
  // bar; overridable via APSPARK_GATE_SIMD_SPEEDUP for noisy shared
  // runners). Hosts whose best ISA is scalar skip the speed half — the
  // record set degenerates to the scalar baseline alone.
  double simd_min_speedup = 1.3;
  if (const char* env = std::getenv("APSPARK_GATE_SIMD_SPEEDUP")) {
    simd_min_speedup = std::atof(env);
  }
  const char* best_isa_name = linalg::SimdIsaName(linalg::DetectSimdIsa());
  bool simd_gate_evaluated = false;
  for (const KernelResult& r : results) {
    if (r.kernel != "minplus_simd") continue;
    if (!r.bitwise_equal) {
      std::fprintf(stderr,
                   "FAIL: minplus_simd %s b=%lld not bitwise equal to "
                   "forced-scalar dispatch\n",
                   r.variant.c_str(), static_cast<long long>(r.b));
      return 1;
    }
    if (r.variant == best_isa_name && r.variant != std::string("scalar") &&
        r.b >= 1024) {
      simd_gate_evaluated = true;
      if (r.speedup < simd_min_speedup) {
        std::fprintf(stderr,
                     "FAIL: SIMD (%s) minplus speedup %.2fx < %.2fx vs "
                     "forced-scalar tiled at b=%lld\n",
                     r.variant.c_str(), r.speedup, simd_min_speedup,
                     static_cast<long long>(r.b));
        return 1;
      }
    }
  }
  if (!simd_gate_evaluated) {
    std::printf("note: SIMD gate NOT evaluated (%s)\n",
                linalg::DetectSimdIsa() == linalg::SimdIsa::kScalar
                    ? "host best ISA is scalar"
                    : "b=1024 not measured");
  }
  return 0;
}
