// Figure 2: effect of block size on the execution time of the sequential
// building blocks — FloydWarshall, and MatProd combined with MatMin
// ("MinPlus" in the figure).
//
// Two series are printed per kernel: the time measured on this host, and
// the paper-calibrated cost model's prediction (0.762 Gops sequential FW
// with an L3 knee around b = 1810). The paper's shape to reproduce: ~b^3
// growth, fast below the cache knee, rapidly growing past it.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/rng.h"
#include "common/time_utils.h"
#include "linalg/cost_model.h"
#include "linalg/dense_block.h"
#include "linalg/kernels.h"

namespace {

apspark::linalg::DenseBlock RandomBlock(std::int64_t b, std::uint64_t seed) {
  apspark::Xoshiro256 rng(seed);
  apspark::linalg::DenseBlock block(b, b, 0.0);
  for (std::int64_t i = 0; i < block.size(); ++i) {
    block.mutable_data()[i] = rng.NextDouble(1.0, 100.0);
  }
  return block;
}

}  // namespace

int main() {
  using namespace apspark;
  bench::PrintHeader(
      "Figure 2 — sequential kernel time vs block size b\n"
      "(host-measured up to the feasible size; model curve to b = 10000)");

  const linalg::CostModel model;  // paper-calibrated defaults

  std::int64_t max_measured = 1024;
  if (const char* env = std::getenv("APSPARK_FIG2_MAX_B")) {
    max_measured = std::atoll(env);
  }

  std::printf("%8s %16s %16s %16s %16s\n", "b", "FW measured", "FW model",
              "MinPlus measured", "MinPlus model");
  const std::int64_t sizes[] = {128,  256,  384,  512,  768, 1024,
                                1536, 2048, 3072, 4096, 6144, 8192, 10000};
  for (std::int64_t b : sizes) {
    const double fw_model = model.FloydWarshallSeconds(b);
    const double mp_model =
        model.MinPlusSeconds(b, b, b) +
        model.ElementwiseSeconds(b * b);
    std::string fw_meas = "-";
    std::string mp_meas = "-";
    if (b <= max_measured) {
      linalg::DenseBlock fw = RandomBlock(b, 1);
      WallTimer t1;
      linalg::FloydWarshallInPlace(fw);
      fw_meas = FormatSeconds(t1.ElapsedSeconds(), 3);

      const linalg::DenseBlock lhs = RandomBlock(b, 2);
      const linalg::DenseBlock rhs = RandomBlock(b, 3);
      WallTimer t2;
      linalg::DenseBlock prod = linalg::MinPlusProduct(lhs, rhs);
      linalg::ElementMinInPlace(prod, lhs);
      mp_meas = FormatSeconds(t2.ElapsedSeconds(), 3);
    }
    std::printf("%8lld %16s %16s %16s %16s\n",
                static_cast<long long>(b), fw_meas.c_str(),
                FormatSeconds(fw_model, 3).c_str(), mp_meas.c_str(),
                FormatSeconds(mp_model, 3).c_str());
  }

  std::printf(
      "\nPaper reference points: T1(n=256) = 0.022s (0.762 Gops); cache knee"
      " near b = 1810;\nb = 10000 Floyd-Warshall runs into ~1.3e3 s (Fig. 2"
      " top of scale ~1.4e3 s).\n");
  std::printf("Model check: FW(256) = %s, FW(10000) = %s\n",
              FormatSeconds(model.FloydWarshallSeconds(256), 3).c_str(),
              FormatDuration(model.FloydWarshallSeconds(10000)).c_str());
  return 0;
}
