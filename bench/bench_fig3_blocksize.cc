// Figure 3: effect of block size, partitioner, and over-decomposition
// factor B on the blocked solvers, n = 131072, p = 1024.
//
//   Top/middle panels: total execution time of Blocked In-Memory (IM) and
//   Blocked Collect/Broadcast (CB) vs b, for the default Spark partitioner
//   (PH) and the multi-diagonal partitioner (MD), B in {1, 2}.
//   Bottom panel: the distribution of RDD partition sizes each partitioner
//   induces (B = 2).
//
// Shapes to reproduce: U-shaped time-vs-b curves; IM infeasible for small b
// (local storage exhausted by shuffle spill); CB < IM; MD <= PH with the gap
// widening at large b; PH partition sizes skewed, MD flat.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "apsp/partitioners.h"
#include "bench_util.h"
#include "common/time_utils.h"

int main() {
  using namespace apspark;
  using apsp::ApspOptions;
  using apsp::PartitionerKind;
  using apsp::SolverKind;

  const std::int64_t n = 131072;
  auto cluster = sparklet::ClusterConfig::Paper();
  const std::vector<std::int64_t> block_sizes = {512,  768,  1024, 1280,
                                                 1536, 1792, 2048};

  bench::PrintHeader(
      "Figure 3 (top/middle) — Blocked-IM and Blocked-CB time vs block size\n"
      "n = 131072, p = 1024 (simulated, projected from one iteration)");

  std::printf("%-10s %-4s %-3s", "b", "Part", "B");
  std::printf(" %14s %14s\n", "IM total", "CB total");
  for (PartitionerKind part : {PartitionerKind::kPortableHash,
                               PartitionerKind::kMultiDiagonal}) {
    for (int B : {1, 2}) {
      for (std::int64_t b : block_sizes) {
        std::string cells[2];
        int idx = 0;
        for (SolverKind kind : {SolverKind::kBlockedInMemory,
                                SolverKind::kBlockedCollectBroadcast}) {
          ApspOptions opts;
          opts.block_size = b;
          opts.partitioner = part;
          opts.partitions_per_core = B;
          opts.max_rounds = 1;
          auto solver = apsp::MakeSolver(kind);
          auto result = solver->SolveModel(n, opts, cluster);
          if (!result.status.ok() || result.projected_storage_exceeded) {
            cells[idx++] = "FAIL(storage)";
          } else {
            cells[idx++] = FormatDuration(result.projected_seconds);
          }
        }
        std::printf("%-10lld %-4s %-3d %14s %14s\n",
                    static_cast<long long>(b), bench::PartitionerLabel(part),
                    B, cells[0].c_str(), cells[1].c_str());
        std::fflush(stdout);
      }
    }
  }

  bench::PrintHeader(
      "Figure 3 (bottom) — RDD partition-size distribution, B = 2");
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "b", "PH min",
              "PH max", "PH stdev", "MD min", "MD max", "MD stdev");
  const int p = cluster.total_cores();
  for (std::int64_t b : block_sizes) {
    const apsp::BlockLayout layout(n, b);
    double stats[2][3];  // [PH, MD] x [min, max, stdev]
    int idx = 0;
    for (PartitionerKind part : {PartitionerKind::kPortableHash,
                                 PartitionerKind::kMultiDiagonal}) {
      auto partitioner = apsp::MakeBlockPartitioner(part, layout, 2 * p);
      auto histogram = apsp::PartitionSizeHistogram(layout, *partitioner);
      const auto [mn, mx] =
          std::minmax_element(histogram.begin(), histogram.end());
      double mean = 0;
      for (auto h : histogram) mean += static_cast<double>(h);
      mean /= static_cast<double>(histogram.size());
      double var = 0;
      for (auto h : histogram) {
        const double d = static_cast<double>(h) - mean;
        var += d * d;
      }
      var /= static_cast<double>(histogram.size());
      stats[idx][0] = static_cast<double>(*mn);
      stats[idx][1] = static_cast<double>(*mx);
      stats[idx][2] = var > 0 ? std::sqrt(var) : 0.0;
      ++idx;
    }
    std::printf("%-10lld %12.0f %12.0f %12.2f %12.0f %12.0f %12.2f\n",
                static_cast<long long>(b), stats[0][0], stats[0][1],
                stats[0][2], stats[1][0], stats[1][1], stats[1][2]);
  }
  std::printf(
      "\nPaper reference: IM fails for b < 1024 (storage); MD partition sizes"
      " are flat\nwhile PH skews badly on upper-triangular keys (Fig. 3 "
      "bottom).\n");
  return 0;
}
