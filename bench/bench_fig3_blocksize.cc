// Figure 3: effect of block size, partitioner, and over-decomposition
// factor B on the blocked solvers, n = 131072, p = 1024.
//
//   Top/middle panels: total execution time of Blocked In-Memory (IM) and
//   Blocked Collect/Broadcast (CB) vs b, for the default Spark partitioner
//   (PH) and the multi-diagonal partitioner (MD), B in {1, 2}.
//   Bottom panel: the distribution of RDD partition sizes each partitioner
//   induces (B = 2).
//
// Shapes to reproduce: U-shaped time-vs-b curves; IM infeasible for small b
// (local storage exhausted by shuffle spill); CB < IM; MD <= PH with the gap
// widening at large b; PH partition sizes skewed, MD flat.
//
// Runs through the consolidated apsp::SolveRequest / SolveModel surface and
// the kernel registry (the projected per-block kernel cost follows the
// resolved KernelTuning), and writes one JSON record per (solver,
// partitioner, B, b) cell to BENCH_fig3.json (APSPARK_BENCH_JSON overrides)
// so check_regression.sh --bench fig3 can gate the tracked CB/MD record.
// Model times are virtual (deterministic cost projections), so the gate is
// stable across hosts.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apsp/api.h"
#include "apsp/partitioners.h"
#include "bench_util.h"
#include "common/time_utils.h"
#include "linalg/kernel_registry.h"

namespace {

using namespace apspark;
using apsp::PartitionerKind;
using apsp::SolverKind;

struct CellResult {
  std::string solver;       // "im" or "cb"
  std::string partitioner;  // "PH" or "MD"
  int over_decomposition = 1;
  std::int64_t b = 0;
  double model_seconds = 0;  // projected virtual time (0 when infeasible)
  bool storage_ok = true;
};

void WriteJson(const std::vector<CellResult>& results,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_fig3_blocksize\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"section\": \"fig3\", \"solver\": \"%s\", "
                 "\"partitioner\": \"%s\", \"B\": %d, \"b\": %lld, "
                 "\"model_seconds\": %.6f, \"storage_ok\": %s}%s\n",
                 r.solver.c_str(), r.partitioner.c_str(),
                 r.over_decomposition, static_cast<long long>(r.b),
                 r.model_seconds, r.storage_ok ? "true" : "false",
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nresults written to %s\n", path.c_str());
}

}  // namespace

int main() {
  const std::int64_t n = 131072;
  auto cluster = sparklet::ClusterConfig::Paper();
  const std::vector<std::int64_t> block_sizes = {512,  768,  1024, 1280,
                                                 1536, 1792, 2048};
  std::vector<CellResult> results;

  bench::PrintHeader(
      "Figure 3 (top/middle) — Blocked-IM and Blocked-CB time vs block size\n"
      "n = 131072, p = 1024 (simulated, projected from one iteration)");
  std::printf("kernels: %s\n\n",
              linalg::DescribeKernelTuning(linalg::GetKernelTuning()).c_str());

  std::printf("%-10s %-4s %-3s", "b", "Part", "B");
  std::printf(" %14s %14s\n", "IM total", "CB total");
  for (PartitionerKind part : {PartitionerKind::kPortableHash,
                               PartitionerKind::kMultiDiagonal}) {
    for (int B : {1, 2}) {
      for (std::int64_t b : block_sizes) {
        std::string cells[2];
        int idx = 0;
        for (SolverKind kind : {SolverKind::kBlockedInMemory,
                                SolverKind::kBlockedCollectBroadcast}) {
          apsp::SolveRequest request;
          request.solver = kind;
          request.options.block_size = b;
          request.options.partitioner = part;
          request.options.partitions_per_core = B;
          request.options.max_rounds = 1;
          request.cluster = cluster;
          const auto report = apsp::SolveModel(n, request);
          CellResult cell;
          cell.solver =
              kind == SolverKind::kBlockedInMemory ? "im" : "cb";
          cell.partitioner = bench::PartitionerLabel(part);
          cell.over_decomposition = B;
          cell.b = b;
          if (!report.ok() || report.run.projected_storage_exceeded) {
            cell.storage_ok = false;
            cells[idx++] = "FAIL(storage)";
          } else {
            cell.model_seconds = report.run.projected_seconds;
            cells[idx++] = FormatDuration(report.run.projected_seconds);
          }
          results.push_back(cell);
        }
        std::printf("%-10lld %-4s %-3d %14s %14s\n",
                    static_cast<long long>(b), bench::PartitionerLabel(part),
                    B, cells[0].c_str(), cells[1].c_str());
        std::fflush(stdout);
      }
    }
  }

  bench::PrintHeader(
      "Figure 3 (bottom) — RDD partition-size distribution, B = 2");
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "b", "PH min",
              "PH max", "PH stdev", "MD min", "MD max", "MD stdev");
  const int p = cluster.total_cores();
  for (std::int64_t b : block_sizes) {
    const apsp::BlockLayout layout(n, b);
    double stats[2][3];  // [PH, MD] x [min, max, stdev]
    int idx = 0;
    for (PartitionerKind part : {PartitionerKind::kPortableHash,
                                 PartitionerKind::kMultiDiagonal}) {
      auto partitioner = apsp::MakeBlockPartitioner(part, layout, 2 * p);
      auto histogram = apsp::PartitionSizeHistogram(layout, *partitioner);
      const auto [mn, mx] =
          std::minmax_element(histogram.begin(), histogram.end());
      double mean = 0;
      for (auto h : histogram) mean += static_cast<double>(h);
      mean /= static_cast<double>(histogram.size());
      double var = 0;
      for (auto h : histogram) {
        const double d = static_cast<double>(h) - mean;
        var += d * d;
      }
      var /= static_cast<double>(histogram.size());
      stats[idx][0] = static_cast<double>(*mn);
      stats[idx][1] = static_cast<double>(*mx);
      stats[idx][2] = var > 0 ? std::sqrt(var) : 0.0;
      ++idx;
    }
    std::printf("%-10lld %12.0f %12.0f %12.2f %12.0f %12.0f %12.2f\n",
                static_cast<long long>(b), stats[0][0], stats[0][1],
                stats[0][2], stats[1][0], stats[1][1], stats[1][2]);
  }
  std::printf(
      "\nPaper reference: IM fails for b < 1024 (storage); MD partition sizes"
      " are flat\nwhile PH skews badly on upper-triangular keys (Fig. 3 "
      "bottom).\n");

  const char* json_path = std::getenv("APSPARK_BENCH_JSON");
  WriteJson(results, json_path != nullptr ? json_path : "BENCH_fig3.json");

  // Sanity gate: the paper's tracked cell — Blocked-CB with the
  // multi-diagonal partitioner, B = 2, b = 1024 — must be feasible.
  for (const CellResult& r : results) {
    if (r.solver == "cb" && r.partitioner == "MD" &&
        r.over_decomposition == 2 && r.b == 1024) {
      if (!r.storage_ok || r.model_seconds <= 0) {
        std::fprintf(stderr, "FAIL: tracked CB/MD/B=2/b=1024 cell infeasible\n");
        return 1;
      }
      return 0;
    }
  }
  std::fprintf(stderr, "FAIL: tracked CB/MD/B=2/b=1024 cell missing\n");
  return 1;
}
