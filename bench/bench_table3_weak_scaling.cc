// Table 3 + Figure 5: weak scaling of the blocked methods against the MPI
// reference solvers, n / p = 256.
//
// Shapes to reproduce:
//   * Blocked-CB outperforms Blocked-IM; IM dies at p = 1024 (storage);
//   * both saturate around p >= 256 at a large fraction of the sequential
//     Gops/core (paper: CB reaches 78% at p = 1024);
//   * naive FW-2D-GbE loses to CB at scale; optimized DC-GbE wins by ~2-3x.
#include <cstdio>
#include <map>

#include "apsp/api.h"
#include "bench_util.h"
#include "common/time_utils.h"
#include "linalg/cost_model.h"
#include "mpisim/mpi_solvers.h"

int main() {
  using namespace apspark;
  using apsp::PartitionerKind;
  using apsp::SolverKind;

  bench::TraceGuard trace;  // APSPARK_TRACE_JSON=FILE captures the run

  const linalg::CostModel model;
  const double t1 = model.FloydWarshallSeconds(256);
  bench::PrintHeader("Table 3 / Figure 5 — weak scaling, n/p = 256");
  std::printf("T1 (sequential FW, n = 256): %s  -> %.3f Gops\n",
              FormatSeconds(t1, 3).c_str(), bench::GopsPerCore(256, t1, 1));

  // Block sizes per scale, following Table 3.
  const std::map<int, std::int64_t> im_b = {
      {64, 1024}, {128, 1024}, {256, 1536}, {512, 2048}, {1024, 2048}};
  const std::map<int, std::int64_t> cb_b = {
      {64, 1024}, {128, 1280}, {256, 1536}, {512, 2048}, {1024, 2560}};

  std::printf("\n%-14s", "Method / p");
  for (int p : {64, 128, 256, 512, 1024}) std::printf(" %15d", p);
  std::printf("\n");

  // --- Spark-style blocked solvers ---------------------------------------
  for (SolverKind kind : {SolverKind::kBlockedInMemory,
                          SolverKind::kBlockedCollectBroadcast}) {
    std::printf("%-14s", apsp::SolverKindName(kind));
    std::string gops_row;
    for (int p : {64, 128, 256, 512, 1024}) {
      const std::int64_t n = 256LL * p;
      apsp::SolveRequest request;
      request.solver = kind;
      request.options.block_size =
          (kind == SolverKind::kBlockedInMemory ? im_b : cb_b).at(p);
      request.options.partitioner = PartitionerKind::kMultiDiagonal;
      request.options.partitions_per_core = 2;
      request.options.max_rounds = 1;
      request.cluster = sparklet::ClusterConfig::PaperWithCores(p);
      const auto report = apsp::SolveModel(n, request);
      const auto& result = report.run;
      if (!report.ok() || result.projected_storage_exceeded) {
        std::printf(" %15s", "- (storage)");
        gops_row += "              -";
      } else {
        std::printf(" %15s",
                    FormatDuration(result.projected_seconds).c_str());
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %14.3f",
                      bench::GopsPerCore(n, result.projected_seconds, p));
        gops_row += buf;
      }
      std::fflush(stdout);
    }
    std::printf("\n%-14s%s\n", "  Gops/core", gops_row.c_str());
  }

  // --- MPI reference solvers (square process grids only) ------------------
  {
    mpisim::Fw2dMpiSolver fw2d;
    mpisim::DcMpiSolver dc;
    std::printf("%-14s", "FW-2D-GbE");
    for (int p : {64, 128, 256, 512, 1024}) {
      if (!mpisim::IsSquareProcessCount(p)) {
        std::printf(" %15s", "-");
        continue;
      }
      auto r = fw2d.Model(256LL * p, p);
      std::printf(" %15s", FormatDuration(r.seconds).c_str());
    }
    std::printf("\n%-14s", "DC-GbE");
    for (int p : {64, 128, 256, 512, 1024}) {
      if (!mpisim::IsSquareProcessCount(p)) {
        std::printf(" %15s", "-");
        continue;
      }
      auto r = dc.Model(256LL * p, p);
      std::printf(" %15s", FormatDuration(r.seconds).c_str());
    }
    std::printf("\n%-14s", "  DC Gops/core");
    for (int p : {64, 128, 256, 512, 1024}) {
      if (!mpisim::IsSquareProcessCount(p)) {
        std::printf(" %15s", "-");
        continue;
      }
      auto r = dc.Model(256LL * p, p);
      std::printf(" %15.3f", bench::GopsPerCore(256LL * p, r.seconds, p));
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper reference: IM 4m2s/14m20s/35m33s/2h17m/- ; CB 2m50s/11m0s/"
      "34m16s/2h11m/8h9m;\nFW-2D 2m3s/-/37m2s/-/11h51m; DC 1m15s/-/18m54s/-/"
      "2h52m. CB ~0.59 Gops/core at p=1024\n(78%% of sequential); DC beats CB"
      " by >2.8x at p = 1024.\n");
  return 0;
}
