// The §2 baseline: GraphX/GraphFrames-style Pregel shortest paths.
//
// "These algorithms are simple extensions of the single source shortest
//  paths solver in the Pregel/BSP model, and are not designed with APSP in
//  mind. [...] in the initial tests GraphX was unable to handle any
//  reasonable problem size, prompting us to investigate alternative
//  approaches." (paper §2)
//
// This harness quantifies that: per-superstep cost of landmark-APSP in the
// Pregel model vs one full iteration of Blocked-CB, on the paper cluster.
// The Pregel message volume is Theta(m * n) per superstep — at n = 262144
// that is hundreds of TB of shuffle per superstep, versus the blocked
// solver's a-few-hundred-GB per iteration.
#include <cmath>
#include <cstdio>

#include "apsp/api.h"
#include "bench_util.h"
#include "common/time_utils.h"
#include "graph/generators.h"
#include "linalg/cost_model.h"
#include "pregel/pregel_sssp.h"

int main() {
  using namespace apspark;
  bench::TraceGuard trace;  // APSPARK_TRACE_JSON=FILE captures the run
  auto cluster = sparklet::ClusterConfig::Paper();
  const linalg::CostModel model;

  bench::PrintHeader(
      "GraphX/Pregel landmark-APSP baseline vs blocked decomposition\n"
      "(why the paper abandons the Pregel model, §2)");

  // Small-scale measured comparison: real engine runs.
  std::printf("measured on the engine (test scale, full runs):\n");
  std::printf("%8s %22s %22s\n", "n", "Pregel APSP shuffle", "Blocked-CB shuffle");
  for (std::int64_t n : {64LL, 128LL, 256LL}) {
    const graph::Graph g = graph::PaperErdosRenyi(n, 77);
    auto tiny = sparklet::ClusterConfig::TinyTest();
    tiny.local_storage_bytes = 64ULL * kGiB;
    auto pregel_run = pregel::AllPairs(g, {}, tiny);
    apsp::SolveRequest request;
    request.solver = apsp::SolverKind::kBlockedCollectBroadcast;
    request.options.block_size = n / 4;
    request.cluster = tiny;
    const auto cb = apsp::Solve(g, request);
    std::printf("%8lld %22s %22s\n", static_cast<long long>(n),
                pregel_run.status.ok()
                    ? FormatBytes(pregel_run.metrics.shuffle_bytes).c_str()
                    : "failed",
                cb.ok() ? FormatBytes(cb.metrics().shuffle_bytes).c_str()
                        : "failed");
  }

  // Paper-scale model: per-superstep / per-iteration cost.
  std::printf("\nmodelled at paper scale (p = 1024, ER average degree "
              "~ 1.1 ln n):\n");
  std::printf("%10s %20s %24s\n", "n", "Pregel per-superstep",
              "Blocked-CB per-iteration");
  for (std::int64_t n : {16384LL, 65536LL, 262144LL}) {
    const double avg_degree =
        1.1 * std::log(static_cast<double>(n));
    const double pregel_step =
        pregel::ModelSuperstepSeconds(n, avg_degree, cluster, model);
    apsp::SolveRequest request;
    request.solver = apsp::SolverKind::kBlockedCollectBroadcast;
    request.options.block_size = std::min<std::int64_t>(2048, n / 8);
    request.options.max_rounds = 1;
    request.cluster = cluster;
    const auto cb = apsp::SolveModel(n, request);
    std::printf("%10lld %20s %24s\n", static_cast<long long>(n),
                FormatDuration(pregel_step).c_str(),
                FormatDuration(cb.run.SecondsPerRound()).c_str());
  }
  std::printf(
      "\nPregel needs ~diameter supersteps of Theta(m*n) messages; the "
      "blocked methods need\nq = n/b iterations of Theta(n^2) traffic — the "
      "decomposition is what makes APSP viable\non Spark, which is the "
      "paper's central design decision.\n");
  return 0;
}
