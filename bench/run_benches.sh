#!/usr/bin/env sh
# Builds (if needed) and runs the gated benchmarks, producing the
# machine-readable perf-trajectory files BENCH_kernels.json and
# BENCH_fig3.json at the repo root, then runs the ungated micro probes.
#
# Usage: bench/run_benches.sh [build-dir]   (default: build)
set -e

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)" \
  --target bench_fig2_kernels bench_fig3_blocksize bench_micro

APSPARK_BENCH_JSON="$(pwd)/BENCH_kernels.json" \
  "$BUILD_DIR/bench_fig2_kernels"
echo "wrote $(pwd)/BENCH_kernels.json"

APSPARK_BENCH_JSON="$(pwd)/BENCH_fig3.json" \
  "$BUILD_DIR/bench_fig3_blocksize"
echo "wrote $(pwd)/BENCH_fig3.json"

"$BUILD_DIR/bench_micro"
