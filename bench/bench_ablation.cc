// Ablation probes for the design choices DESIGN.md calls out: how sensitive
// are the headline results to the simulation's tunable constants?
//
//   1. Shuffle compression ratio — moves the Blocked-IM storage cliff.
//   2. Straggler spread — drives the value of over-decomposition (B).
//   3. Per-task scheduler overhead — dominates 2D Floyd-Warshall.
//   4. Shared-FS bandwidth — dominates Blocked-CB's Phase 3 reads.
//   5. Symmetric (upper-triangular) vs full (directed) block storage.
#include <cstdio>

#include "bench_util.h"
#include "common/time_utils.h"

int main() {
  using namespace apspark;
  using apsp::ApspOptions;
  using apsp::SolverKind;

  const std::int64_t n = 131072;

  bench::PrintHeader(
      "Ablation 1 — shuffle compression vs Blocked-IM storage cliff\n"
      "n = 131072, p = 1024, spill/node projected over all iterations");
  std::printf("%-14s", "compression");
  for (std::int64_t b : {512LL, 768LL, 1024LL, 2048LL}) {
    std::printf(" %14s", ("b=" + std::to_string(b)).c_str());
  }
  std::printf("\n");
  for (double compression : {0.25, 0.5, 0.75, 1.0}) {
    std::printf("%-14.2f", compression);
    for (std::int64_t b : {512LL, 768LL, 1024LL, 2048LL}) {
      auto cluster = sparklet::ClusterConfig::Paper();
      cluster.shuffle_compression = compression;
      ApspOptions opts;
      opts.block_size = b;
      opts.max_rounds = 1;
      auto result = apsp::MakeSolver(SolverKind::kBlockedInMemory)
                        ->SolveModel(n, opts, cluster);
      const bool dead =
          !result.status.ok() || result.projected_storage_exceeded;
      std::printf(" %14s",
                  dead ? "FAIL"
                       : FormatBytes(static_cast<std::uint64_t>(
                                         result.projected_spill_bytes))
                             .c_str());
    }
    std::printf("\n");
  }

  bench::PrintHeader(
      "Ablation 2 — straggler spread vs over-decomposition factor B\n"
      "Blocked-CB, n = 131072, b = 1536, MD");
  std::printf("%-14s %14s %14s %14s\n", "spread", "B=1", "B=2", "B=4");
  for (double spread : {0.0, 0.35, 0.7, 1.4}) {
    std::printf("%-14.2f", spread);
    for (int B : {1, 2, 4}) {
      auto cluster = sparklet::ClusterConfig::Paper();
      cluster.straggler_spread = spread;
      ApspOptions opts;
      opts.block_size = 1536;
      opts.partitions_per_core = B;
      opts.max_rounds = 1;
      auto result = apsp::MakeSolver(SolverKind::kBlockedCollectBroadcast)
                        ->SolveModel(n, opts, cluster);
      std::printf(" %14s", FormatDuration(result.projected_seconds).c_str());
    }
    std::printf("\n");
  }

  bench::PrintHeader(
      "Ablation 3 — per-task overhead vs 2D Floyd-Warshall iteration time\n"
      "n = 131072 (the solver's per-round time is pure scheduling)");
  std::printf("%-18s %14s %14s\n", "task overhead", "per-round",
              "projected total");
  for (double overhead : {0.5e-3, 1e-3, 2.5e-3, 5e-3, 10e-3}) {
    auto cluster = sparklet::ClusterConfig::Paper();
    cluster.task_overhead_seconds = overhead;
    ApspOptions opts;
    opts.block_size = 1024;
    opts.max_rounds = 2;
    auto result = apsp::MakeSolver(SolverKind::kFloydWarshall2d)
                      ->SolveModel(n, opts, cluster);
    std::printf("%-18s %14s %14s\n",
                (std::to_string(overhead * 1e3) + "ms").c_str(),
                FormatDuration(result.SecondsPerRound()).c_str(),
                FormatDuration(result.projected_seconds).c_str());
  }

  bench::PrintHeader(
      "Ablation 4 — shared-FS bandwidth vs Blocked-CB (impure side channel)");
  std::printf("%-18s %14s\n", "GPFS aggregate", "CB projected");
  for (double bw : {2e9, 8e9, 16e9, 64e9}) {
    auto cluster = sparklet::ClusterConfig::Paper();
    cluster.shared_fs.aggregate_bandwidth_bytes_per_sec = bw;
    ApspOptions opts;
    opts.block_size = 1536;
    opts.max_rounds = 1;
    auto result = apsp::MakeSolver(SolverKind::kBlockedCollectBroadcast)
                      ->SolveModel(n, opts, cluster);
    std::printf("%-18s %14s\n", FormatRate(bw).c_str(),
                FormatDuration(result.projected_seconds).c_str());
  }

  bench::PrintHeader(
      "Ablation 5 — symmetric (upper-triangular) vs full block storage\n"
      "Blocked-CB, n = 65536, b = 1024: shuffle volume and time");
  for (bool directed : {false, true}) {
    ApspOptions opts;
    opts.block_size = 1024;
    opts.directed = directed;
    opts.max_rounds = 1;
    auto result = apsp::MakeSolver(SolverKind::kBlockedCollectBroadcast)
                      ->SolveModel(65536, opts, sparklet::ClusterConfig::Paper());
    std::printf("%-22s shuffle=%s per-round=%s\n",
                directed ? "full (directed)" : "upper-triangular",
                FormatBytes(result.metrics.shuffle_bytes).c_str(),
                FormatDuration(result.SecondsPerRound()).c_str());
  }
  std::printf(
      "\nThe paper's symmetric storage halves the shuffled volume at the "
      "cost of on-demand\ntransposition (§4), and adapting to digraphs "
      "simply reverts to full storage.\n");
  return 0;
}
