// Ablation probes for the design choices DESIGN.md calls out: how sensitive
// are the headline results to the simulation's tunable constants?
//
//   1. Shuffle compression ratio — moves the Blocked-IM storage cliff.
//   2. Straggler spread — drives the value of over-decomposition (B).
//   3. Per-task scheduler overhead — dominates 2D Floyd-Warshall.
//   4. Shared-FS bandwidth — dominates Blocked-CB's Phase 3 reads.
//   5. Symmetric (upper-triangular) vs full (directed) block storage.
#include <cstdio>

#include "apsp/api.h"
#include "bench_util.h"
#include "common/time_utils.h"

int main() {
  using namespace apspark;
  using apsp::SolverKind;

  bench::TraceGuard trace;  // APSPARK_TRACE_JSON=FILE captures the run
  const std::int64_t n = 131072;

  bench::PrintHeader(
      "Ablation 1 — shuffle compression vs Blocked-IM storage cliff\n"
      "n = 131072, p = 1024, spill/node projected over all iterations");
  std::printf("%-14s", "compression");
  for (std::int64_t b : {512LL, 768LL, 1024LL, 2048LL}) {
    std::printf(" %14s", ("b=" + std::to_string(b)).c_str());
  }
  std::printf("\n");
  for (double compression : {0.25, 0.5, 0.75, 1.0}) {
    std::printf("%-14.2f", compression);
    for (std::int64_t b : {512LL, 768LL, 1024LL, 2048LL}) {
      apsp::SolveRequest request;
      request.solver = SolverKind::kBlockedInMemory;
      request.cluster = sparklet::ClusterConfig::Paper();
      request.cluster.shuffle_compression = compression;
      request.options.block_size = b;
      request.options.max_rounds = 1;
      const auto report = apsp::SolveModel(n, request);
      const auto& result = report.run;
      const bool dead = !report.ok() || result.projected_storage_exceeded;
      std::printf(" %14s",
                  dead ? "FAIL"
                       : FormatBytes(static_cast<std::uint64_t>(
                                         result.projected_spill_bytes))
                             .c_str());
    }
    std::printf("\n");
  }

  bench::PrintHeader(
      "Ablation 2 — straggler spread vs over-decomposition factor B\n"
      "Blocked-CB, n = 131072, b = 1536, MD");
  std::printf("%-14s %14s %14s %14s\n", "spread", "B=1", "B=2", "B=4");
  for (double spread : {0.0, 0.35, 0.7, 1.4}) {
    std::printf("%-14.2f", spread);
    for (int B : {1, 2, 4}) {
      apsp::SolveRequest request;
      request.solver = SolverKind::kBlockedCollectBroadcast;
      request.cluster = sparklet::ClusterConfig::Paper();
      request.cluster.straggler_spread = spread;
      request.options.block_size = 1536;
      request.options.partitions_per_core = B;
      request.options.max_rounds = 1;
      const auto report = apsp::SolveModel(n, request);
      std::printf(" %14s",
                  FormatDuration(report.run.projected_seconds).c_str());
    }
    std::printf("\n");
  }

  bench::PrintHeader(
      "Ablation 3 — per-task overhead vs 2D Floyd-Warshall iteration time\n"
      "n = 131072 (the solver's per-round time is pure scheduling)");
  std::printf("%-18s %14s %14s\n", "task overhead", "per-round",
              "projected total");
  for (double overhead : {0.5e-3, 1e-3, 2.5e-3, 5e-3, 10e-3}) {
    apsp::SolveRequest request;
    request.solver = SolverKind::kFloydWarshall2d;
    request.cluster = sparklet::ClusterConfig::Paper();
    request.cluster.task_overhead_seconds = overhead;
    request.options.block_size = 1024;
    request.options.max_rounds = 2;
    const auto report = apsp::SolveModel(n, request);
    std::printf("%-18s %14s %14s\n",
                (std::to_string(overhead * 1e3) + "ms").c_str(),
                FormatDuration(report.run.SecondsPerRound()).c_str(),
                FormatDuration(report.run.projected_seconds).c_str());
  }

  bench::PrintHeader(
      "Ablation 4 — shared-FS bandwidth vs Blocked-CB (impure side channel)");
  std::printf("%-18s %14s\n", "GPFS aggregate", "CB projected");
  for (double bw : {2e9, 8e9, 16e9, 64e9}) {
    apsp::SolveRequest request;
    request.solver = SolverKind::kBlockedCollectBroadcast;
    request.cluster = sparklet::ClusterConfig::Paper();
    request.cluster.shared_fs.aggregate_bandwidth_bytes_per_sec = bw;
    request.options.block_size = 1536;
    request.options.max_rounds = 1;
    const auto report = apsp::SolveModel(n, request);
    std::printf("%-18s %14s\n", FormatRate(bw).c_str(),
                FormatDuration(report.run.projected_seconds).c_str());
  }

  bench::PrintHeader(
      "Ablation 5 — symmetric (upper-triangular) vs full block storage\n"
      "Blocked-CB, n = 65536, b = 1024: shuffle volume and time");
  for (bool directed : {false, true}) {
    apsp::SolveRequest request;
    request.solver = SolverKind::kBlockedCollectBroadcast;
    request.cluster = sparklet::ClusterConfig::Paper();
    request.options.block_size = 1024;
    request.options.directed = directed;
    request.options.max_rounds = 1;
    const auto report = apsp::SolveModel(65536, request);
    std::printf("%-22s shuffle=%s per-round=%s\n",
                directed ? "full (directed)" : "upper-triangular",
                FormatBytes(report.metrics().shuffle_bytes).c_str(),
                FormatDuration(report.run.SecondsPerRound()).c_str());
  }
  std::printf(
      "\nThe paper's symmetric storage halves the shuffled volume at the "
      "cost of on-demand\ntransposition (§4), and adapting to digraphs "
      "simply reverts to full storage.\n");
  return 0;
}
