#!/usr/bin/env bash
# Bench-regression gate: compares a fresh bench_fig2_kernels run against the
# committed BENCH_kernels.json and fails on a tiled min-plus regression at
# b = 1024 (the ROADMAP perf-trajectory tracker).
#
# Usage: check_regression.sh <measured.json> <baseline.json> [--metric M]
#   M = gops     absolute tiled min-plus Gops (default; meaningful when the
#                baseline was produced on comparable hardware)
#   M = speedup  tiled speedup over naive measured in the same run — the
#                machine-normalized metric CI uses, since hosted runners
#                differ from the machine that produced the committed file
#
# Env: APSPARK_BENCH_TOLERANCE  allowed fractional regression (default 0.10)
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <measured.json> <baseline.json> [--metric gops|speedup]" >&2
  exit 2
fi
measured="$1"
baseline="$2"
metric="gops"
if [[ "${3:-}" == "--metric" ]]; then
  metric="${4:?--metric needs a value}"
fi
case "$metric" in
  gops) field="gops" ;;
  speedup) field="speedup_vs_naive" ;;
  *) echo "unknown metric '$metric'" >&2; exit 2 ;;
esac
tolerance="${APSPARK_BENCH_TOLERANCE:-0.10}"

# The bench writes one result object per line, so the tiled min-plus b=1024
# record is greppable without a JSON parser. The '|| true' keeps a missing
# record from tripping set -e inside the command substitution, so the
# explicit FAIL diagnostic below can fire.
extract() {
  { grep '"kernel": "minplus"' "$1" \
      | grep '"variant": "tiled"' \
      | grep '"b": 1024' \
      | grep -oE "\"$field\": [0-9.eE+-]+" \
      | head -1 | awk '{print $2}'; } || true
}

measured_value="$(extract "$measured")"
baseline_value="$(extract "$baseline")"
if [[ -z "$measured_value" || -z "$baseline_value" ]]; then
  echo "FAIL: tiled minplus b=1024 record missing" \
       "(measured='$measured_value' baseline='$baseline_value')" >&2
  exit 1
fi

echo "tiled minplus b=1024 $metric: measured $measured_value," \
     "baseline $baseline_value, tolerance $tolerance"
if awk -v m="$measured_value" -v b="$baseline_value" -v t="$tolerance" \
     'BEGIN { exit !(m >= b * (1 - t)) }'; then
  echo "OK: within tolerance"
else
  echo "FAIL: tiled minplus $metric regressed more than ${tolerance} vs" \
       "committed baseline" >&2
  exit 1
fi
