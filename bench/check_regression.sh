#!/usr/bin/env bash
# Bench-regression gate: compares a fresh bench run against the committed
# baseline JSON and fails on a regression of the tracked record (the ROADMAP
# perf-trajectory tracker).
#
# Usage: check_regression.sh <measured.json> <baseline.json>
#                            [--metric M] [--bench B]
#   M = model    projected virtual seconds (model_seconds) of the tracked
#                Fig. 3 cell — Blocked-CB, multi-diagonal partitioner,
#                B = 2, b = 1024. Deterministic cost-model output, so any
#                growth is a real cost/placement regression; LOWER is
#                better, same rule as peak/makespan.
#   M = gops     absolute Gops of the tracked record (default; meaningful
#                when the baseline was produced on comparable hardware)
#   M = speedup  speedup over naive measured in the same run — the
#                machine-normalized metric CI uses, since hosted runners
#                differ from the machine that produced the committed file
#   M = peak     driver live-bytes high water (driver_peak_bytes) of the
#                pure shuffle-replicated ksource solve — a deterministic
#                byte count; LOWER is better, the gate fails when the
#                measured peak exceeds baseline * (1 + tolerance). Guards
#                the zero-copy data plane against copy regressions.
#   M = makespan fair-share makespan (fair_makespan_seconds) of the
#                two-tenant replay under memory headroom — modelled virtual
#                time, so deterministic; LOWER is better, same rule as
#                peak. Guards the fair scheduler against packing
#                regressions.
#   B = fig2     tracked record: tiled min-plus at b = 1024 from
#                bench_fig2_kernels / BENCH_kernels.json (default). With
#                --metric speedup the bit-packed boolean closure record
#                (boolean_packed / bitpacked / b = 1024 — the semiring
#                engine's headline, speedup vs the dense boolean plane) and
#                the SIMD micro-kernel record (minplus_simd / avx2 /
#                b = 1024, speedup vs the forced-scalar tiled path in the
#                same run) are gated in the same run; the SIMD check is
#                skipped with a note when the measured host lacks AVX2.
#   B = fig3     tracked record: the Blocked-CB / MD / B=2 / b=1024 model
#                cell from bench_fig3_blocksize / BENCH_fig3.json
#                (--metric model only)
#   B = obs      tracked record: traced-solve wall-time ratio from
#                bench_obs_overhead / BENCH_obs.json (--metric overhead
#                only). Gated against the fixed 5% ceiling rather than
#                baseline*(1+tol): the metric is a noisy ratio near zero,
#                where a multiplicative band is meaninglessly tight. The
#                record's bitwise_equal flag must also be true — tracing
#                must never change a solve.
#   B = ksource  tracked record: tiled rect kernel at b = 1024, k = 64 from
#                bench_ksource / BENCH_ksource.json (gops/speedup), or the
#                tiled solve on the shuffle data plane (peak)
#   B = multitenant  tracked record: two-tenant fair-share replay from
#                bench_multitenant / BENCH_multitenant.json (makespan)
#   B = serve    tracked record: Zipf hot-vertex query workload from
#                bench_serve / BENCH_serve.json (qps)
#   M = qps      serving throughput of the Zipf workload — queries per
#                second through the disk-backed DistanceService; HIGHER is
#                better. Machine-dependent, so CI runs it with a generous
#                tolerance; the gate mainly guards against the cache/pin
#                path growing lock contention or losing its hit fast path.
#
# Env: APSPARK_BENCH_TOLERANCE  allowed fractional regression (default 0.10)
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <measured.json> <baseline.json>" \
       "[--metric gops|speedup|peak|makespan|qps]" \
       "[--bench fig2|ksource|multitenant|serve]" >&2
  exit 2
fi
measured="$1"
baseline="$2"
shift 2
metric="gops"
bench="fig2"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --metric) metric="${2:?--metric needs a value}"; shift 2 ;;
    --bench) bench="${2:?--bench needs a value}"; shift 2 ;;
    *) echo "unknown argument '$1'" >&2; exit 2 ;;
  esac
done
case "$metric" in
  gops) field="gops" ;;
  speedup) field="speedup_vs_naive" ;;
  peak) field="driver_peak_bytes" ;;
  makespan) field="fair_makespan_seconds" ;;
  qps) field="qps" ;;
  model) field="model_seconds" ;;
  overhead) field="overhead" ;;
  *) echo "unknown metric '$metric'" >&2; exit 2 ;;
esac
if [[ "$metric" == "qps" && "$bench" != "serve" ]]; then
  echo "--metric qps is only tracked for --bench serve" >&2
  exit 2
fi
if [[ "$bench" == "serve" && "$metric" != "qps" ]]; then
  echo "--bench serve only tracks --metric qps" >&2
  exit 2
fi
if [[ "$metric" == "peak" && "$bench" != "ksource" ]]; then
  echo "--metric peak is only tracked for --bench ksource" >&2
  exit 2
fi
if [[ "$metric" == "makespan" && "$bench" != "multitenant" ]]; then
  echo "--metric makespan is only tracked for --bench multitenant" >&2
  exit 2
fi
if [[ "$bench" == "multitenant" && "$metric" != "makespan" ]]; then
  echo "--bench multitenant only tracks --metric makespan" >&2
  exit 2
fi
if [[ "$metric" == "model" && "$bench" != "fig3" ]]; then
  echo "--metric model is only tracked for --bench fig3" >&2
  exit 2
fi
if [[ "$bench" == "fig3" && "$metric" != "model" ]]; then
  echo "--bench fig3 only tracks --metric model" >&2
  exit 2
fi
if [[ "$metric" == "overhead" && "$bench" != "obs" ]]; then
  echo "--metric overhead is only tracked for --bench obs" >&2
  exit 2
fi
if [[ "$bench" == "obs" && "$metric" != "overhead" ]]; then
  echo "--bench obs only tracks --metric overhead" >&2
  exit 2
fi
case "$bench" in
  fig2) what="tiled minplus b=1024" ;;
  ksource)
    if [[ "$metric" == "peak" ]]; then
      what="tiled ksource solve (shuffle plane) driver peak"
    else
      what="tiled rect_kernel b=1024 k=64"
    fi ;;
  multitenant) what="two-tenant fair-share makespan" ;;
  serve) what="serving-layer zipf workload" ;;
  fig3) what="blocked-CB MD B=2 b=1024 model time" ;;
  obs) what="traced-solve observability overhead" ;;
  *) echo "unknown bench '$bench'" >&2; exit 2 ;;
esac
tolerance="${APSPARK_BENCH_TOLERANCE:-0.10}"

# The benches write one result object per line, so the tracked record is
# greppable without a JSON parser. The '|| true' keeps a missing record from
# tripping set -e inside the command substitution, so the explicit FAIL
# diagnostic below can fire.
extract() {
  if [[ "$bench" == "obs" ]]; then
    { grep '"section": "obs"' "$1" \
        | grep -oE "\"$field\": [0-9.eE+-]+" \
        | head -1 | awk '{print $2}'; } || true
  elif [[ "$bench" == "serve" ]]; then
    { grep '"section": "serve"' "$1" \
        | grep '"workload": "zipf"' \
        | grep -oE "\"$field\": [0-9.eE+-]+" \
        | head -1 | awk '{print $2}'; } || true
  elif [[ "$bench" == "multitenant" ]]; then
    { grep '"section": "multitenant"' "$1" \
        | grep -v '"section": "multitenant_tight"' \
        | grep -oE "\"$field\": [0-9.eE+-]+" \
        | head -1 | awk '{print $2}'; } || true
  elif [[ "$bench" == "fig3" ]]; then
    { grep '"section": "fig3"' "$1" \
        | grep '"solver": "cb"' \
        | grep '"partitioner": "MD"' \
        | grep '"B": 2' \
        | grep '"b": 1024' \
        | grep -oE "\"$field\": [0-9.eE+-]+" \
        | head -1 | awk '{print $2}'; } || true
  elif [[ "$bench" == "fig2" ]]; then
    { grep '"kernel": "minplus"' "$1" \
        | grep '"variant": "tiled"' \
        | grep '"b": 1024' \
        | grep -oE "\"$field\": [0-9.eE+-]+" \
        | head -1 | awk '{print $2}'; } || true
  elif [[ "$metric" == "peak" ]]; then
    { grep '"section": "solve"' "$1" \
        | grep '"variant": "tiled"' \
        | grep '"data_plane": "shuffle"' \
        | grep -oE "\"$field\": [0-9.eE+-]+" \
        | head -1 | awk '{print $2}'; } || true
  else
    { grep '"section": "rect_kernel"' "$1" \
        | grep '"variant": "tiled"' \
        | grep '"b": 1024' \
        | grep '"k": 64' \
        | grep -oE "\"$field\": [0-9.eE+-]+" \
        | head -1 | awk '{print $2}'; } || true
  fi
}

measured_value="$(extract "$measured")"
baseline_value="$(extract "$baseline")"
if [[ -z "$measured_value" || -z "$baseline_value" ]]; then
  echo "FAIL: $what record missing" \
       "(measured='$measured_value' baseline='$baseline_value')" >&2
  exit 1
fi

echo "$what $metric: measured $measured_value," \
     "baseline $baseline_value, tolerance $tolerance"
if [[ "$metric" == "overhead" ]]; then
  # Fixed ceiling, not baseline-relative (see the obs note above): enabled
  # tracing must stay under 5% end-to-end, and the measured run must report
  # bitwise-identical solves.
  ceiling="${APSPARK_OBS_OVERHEAD_CEILING:-0.05}"
  if ! awk -v m="$measured_value" -v c="$ceiling" \
       'BEGIN { exit !(m <= c) }'; then
    echo "FAIL: enabled tracing overhead $measured_value exceeds the" \
         "$ceiling ceiling" >&2
    exit 1
  fi
  if ! grep '"section": "obs"' "$measured" \
      | grep -q '"bitwise_equal": true'; then
    echo "FAIL: traced solve is not bitwise-identical to the untraced" \
         "run" >&2
    exit 1
  fi
  echo "OK: overhead under the $ceiling ceiling, solves bitwise-identical"
  exit 0
fi
if [[ "$metric" == "peak" || "$metric" == "makespan" \
      || "$metric" == "model" ]]; then
  # Lower is better: fail when the measured high water grew beyond the
  # tolerance (a zero-copy regression re-materializing payloads, a
  # fair-scheduler packing regression stretching the makespan, or a cost
  # model / placement regression inflating the projected Fig. 3 time).
  if awk -v m="$measured_value" -v b="$baseline_value" -v t="$tolerance" \
       'BEGIN { exit !(m <= b * (1 + t)) }'; then
    echo "OK: within tolerance"
  else
    echo "FAIL: $what $metric regressed (grew) more than ${tolerance} vs" \
         "committed baseline" >&2
    exit 1
  fi
elif awk -v m="$measured_value" -v b="$baseline_value" -v t="$tolerance" \
     'BEGIN { exit !(m >= b * (1 - t)) }'; then
  echo "OK: within tolerance"
else
  echo "FAIL: $what $metric regressed more than ${tolerance} vs" \
       "committed baseline" >&2
  exit 1
fi

# The semiring engine's tracked headline rides the fig2 speedup gate: the
# bit-packed boolean closure (word-parallel or/and, 64 vertices per word)
# must keep its speedup over the dense boolean plane. Speedup is a same-run
# ratio, so it is machine-normalized like the min-plus record above.
if [[ "$bench" == "fig2" && "$metric" == "speedup" ]]; then
  extract_packed() {
    { grep '"kernel": "boolean_packed"' "$1" \
        | grep '"variant": "bitpacked"' \
        | grep '"b": 1024' \
        | grep -oE "\"$field\": [0-9.eE+-]+" \
        | head -1 | awk '{print $2}'; } || true
  }
  packed_measured="$(extract_packed "$measured")"
  packed_baseline="$(extract_packed "$baseline")"
  if [[ -z "$packed_measured" || -z "$packed_baseline" ]]; then
    echo "FAIL: bit-packed boolean b=1024 record missing" \
         "(measured='$packed_measured' baseline='$packed_baseline')" >&2
    exit 1
  fi
  echo "bit-packed boolean b=1024 $metric: measured $packed_measured," \
       "baseline $packed_baseline, tolerance $tolerance"
  if awk -v m="$packed_measured" -v b="$packed_baseline" -v t="$tolerance" \
       'BEGIN { exit !(m >= b * (1 - t)) }'; then
    echo "OK: within tolerance"
  else
    echo "FAIL: bit-packed boolean closure speedup regressed more than" \
         "${tolerance} vs committed baseline" >&2
    exit 1
  fi

  # The SIMD micro-kernel's tracked record also rides this gate: the AVX2
  # backend (the lowest common denominator of x86 CI runners) must keep its
  # speedup over the forced-scalar tiled path measured in the same run. The
  # AVX2 record is gated rather than the host-best one so the gate compares
  # like with like across runners; a host without AVX2 (or a non-x86 build)
  # emits no record, and the check is skipped with a note.
  extract_simd() {
    { grep '"kernel": "minplus_simd"' "$1" \
        | grep '"variant": "avx2"' \
        | grep '"b": 1024' \
        | grep -oE "\"$field\": [0-9.eE+-]+" \
        | head -1 | awk '{print $2}'; } || true
  }
  simd_measured="$(extract_simd "$measured")"
  simd_baseline="$(extract_simd "$baseline")"
  if [[ -z "$simd_measured" ]]; then
    echo "note: SIMD minplus_simd/avx2 gate skipped (no AVX2 record in" \
         "measured run — host lacks AVX2?)"
  elif [[ -z "$simd_baseline" ]]; then
    echo "FAIL: SIMD minplus_simd/avx2 b=1024 record missing from" \
         "baseline" >&2
    exit 1
  else
    echo "SIMD minplus_simd/avx2 b=1024 $metric: measured $simd_measured," \
         "baseline $simd_baseline, tolerance $tolerance"
    if awk -v m="$simd_measured" -v b="$simd_baseline" -v t="$tolerance" \
         'BEGIN { exit !(m >= b * (1 - t)) }'; then
      echo "OK: within tolerance"
    else
      echo "FAIL: SIMD micro-kernel speedup regressed more than" \
           "${tolerance} vs committed baseline" >&2
      exit 1
    fi
  fi
fi
