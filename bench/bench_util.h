// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "apsp/solver.h"
#include "common/time_utils.h"

namespace apspark::bench {

/// n^3 / (seconds * cores) in Gops — the paper's weak-scaling metric
/// (§5.4), normalized per core.
inline double GopsPerCore(std::int64_t n, double seconds, int cores) {
  if (seconds <= 0) return 0;
  const double nd = static_cast<double>(n);
  return nd * nd * nd / seconds / static_cast<double>(cores) / 1e9;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline const char* PartitionerLabel(apsp::PartitionerKind kind) {
  return kind == apsp::PartitionerKind::kMultiDiagonal ? "MD" : "PH";
}

}  // namespace apspark::bench
