// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apsp/solver.h"
#include "common/time_utils.h"
#include "obs/trace.h"

namespace apspark::bench {

/// Honours APSPARK_TRACE_JSON: when the variable names a path, the whole
/// harness run is captured as a Chrome trace-event file written there on
/// destruction. Unset (the default, and every regression-gated run) leaves
/// tracing disabled, so the published numbers never include tracer cost.
class TraceGuard {
 public:
  TraceGuard() {
    const char* path = std::getenv("APSPARK_TRACE_JSON");
    if (path != nullptr && *path != '\0') {
      path_ = path;
      obs::Tracer::Get().Start();
    }
  }
  ~TraceGuard() {
    if (path_.empty()) return;
    auto& tracer = obs::Tracer::Get();
    tracer.Stop();
    if (tracer.WriteChromeJson(path_)) {
      std::fprintf(stderr, "trace: %zu events written to %s\n",
                   tracer.EventCount(), path_.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", path_.c_str());
    }
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  std::string path_;
};

/// n^3 / (seconds * cores) in Gops — the paper's weak-scaling metric
/// (§5.4), normalized per core.
inline double GopsPerCore(std::int64_t n, double seconds, int cores) {
  if (seconds <= 0) return 0;
  const double nd = static_cast<double>(n);
  return nd * nd * nd / seconds / static_cast<double>(cores) / 1e9;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline const char* PartitionerLabel(apsp::PartitionerKind kind) {
  return kind == apsp::PartitionerKind::kMultiDiagonal ? "MD" : "PH";
}

}  // namespace apspark::bench
