// apspark — command-line driver for the library.
//
// Explicit subcommands, each with its own flag set and --help:
//
//   apspark solve   solve APSP (or k-source) on real data; optionally
//                   persist the result as a disk-backed block store
//   apspark plan    recommend a solver/block-size configuration
//   apspark model   paper-scale phantom run, projected time + metrics
//   apspark serve   answer distance/path queries from a persisted store
//
// Flags that do not apply to the chosen subcommand are rejected with a
// pointer to that subcommand's --help. Errors from the library surface
// uniformly as "apspark: <STATUS>: <message>".
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "apsp/api.h"
#include "apsp/persist.h"
#include "apsp/solver.h"
#include "apsp/solvers/ksource_blocked.h"
#include "apsp/tuner.h"
#include "common/rng.h"
#include "common/time_utils.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "linalg/kernel_registry.h"
#include "obs/exporters.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "store/distance_service.h"

namespace {

using namespace apspark;

// ------------------------------------------------------------ subcommands

enum Cmd : unsigned {
  kSolve = 1u << 0,
  kPlan = 1u << 1,
  kModel = 1u << 2,
  kServe = 1u << 3,
};

struct CmdSpec {
  const char* name;
  Cmd bit;
};

constexpr CmdSpec kCommands[] = {
    {"solve", kSolve}, {"plan", kPlan}, {"model", kModel}, {"serve", kServe}};

/// Which subcommands accept each flag; parsing rejects a flag whose mask
/// does not include the chosen subcommand.
struct FlagSpec {
  const char* name;
  bool takes_value;
  unsigned mask;
};

constexpr FlagSpec kFlags[] = {
    {"--er", true, kSolve},
    {"--n", true, kSolve | kPlan | kModel},
    {"--seed", true, kSolve | kServe},
    {"--input", true, kSolve},
    {"--output", true, kSolve | kServe},
    {"--solver", true, kSolve | kModel},
    {"--partitioner", true, kSolve},
    {"--block", true, kSolve | kModel},
    {"--cores", true, kSolve | kPlan | kModel},
    {"--rounds", true, kModel},
    {"--sources", true, kSolve | kModel},
    {"--checkpoint-every", true, kSolve | kModel},
    {"--intra-task-cores", true, kSolve | kModel},
    {"--kernel", true, kSolve},
    {"--isa", true, kSolve | kPlan | kModel},
    {"--autotune", false, kSolve | kPlan | kModel},
    {"--semiring", true, kSolve | kModel},
    {"--no-bitpack", false, kSolve | kModel},
    {"--ksource-variant", true, kSolve | kModel},
    {"--no-early-exit", false, kSolve | kModel},
    {"--fail-node", true, kSolve | kModel},
    {"--fail-rack", true, kSolve | kModel},
    {"--add-node", true, kSolve | kModel},
    {"--racks", true, kSolve | kModel},
    {"--straggler-factor", true, kSolve | kModel},
    {"--straggler-every", true, kSolve | kModel},
    {"--speculate", false, kSolve | kModel},
    {"--directed", false, kSolve | kModel},
    {"--fault-tolerant", false, kSolve | kPlan | kModel},
    {"--persist", true, kSolve},
    {"--no-paths", false, kSolve},
    {"--store", true, kServe},
    {"--queries", true, kServe},
    {"--random", true, kServe},
    {"--zipf", true, kServe},
    {"--threads", true, kServe},
    {"--cache-mb", true, kServe},
    {"--path", true, kServe},
    {"--stats-every", true, kServe},
    {"--trace", true, kSolve | kPlan | kModel | kServe},
    {"--metrics-out", true, kSolve | kModel | kServe},
    {"--help", false, kSolve | kPlan | kModel | kServe},
};

struct Args {
  Cmd command = kSolve;
  std::string command_name;
  std::int64_t n = 0;
  std::uint64_t seed = 1;
  std::string input;
  std::string output;
  std::string solver = "cb";
  std::string partitioner = "md";
  std::int64_t block = 0;  // 0 = auto
  int cores = 4;
  std::int64_t rounds = 0;
  std::int64_t sources = 0;  // > 0 selects the batched k-source workload
  std::int64_t checkpoint_every = 0;
  int intra_task_cores = 1;
  bool directed = false;
  bool fault_tolerant = false;
  std::string kernel = "tiled";
  /// Micro-kernel ISA: scalar|avx2|avx512|auto (auto = CPUID-detected best,
  /// or APSPARK_FORCE_ISA). Pin `--isa scalar` when bisecting a kernel bug.
  std::string isa = "auto";
  /// Probe the host caches and self-tune the kernel tile geometry.
  bool autotune = false;
  std::string semiring = "minplus";
  bool no_bitpack = false;
  std::string ksource_variant = "staged";
  bool no_early_exit = false;
  /// Injected executor losses: --fail-node N@S (repeatable).
  std::vector<sparklet::NodeFailurePlan> fail_nodes;
  /// Correlated failures: --fail-rack R@S kills every node of rack R.
  std::vector<sparklet::RackFailurePlan> fail_racks;
  /// Elastic membership: --add-node @S joins a replacement node.
  std::vector<std::int64_t> add_nodes;
  /// Rack count for failure-domain mapping (--racks R).
  int racks = 1;
  double straggler_factor = 1.0;
  int straggler_every = 8;
  bool speculate = false;
  // solve: persistence
  std::string persist;
  bool no_paths = false;
  // serve
  std::string store_dir;
  std::string queries_file;
  std::int64_t random_queries = 0;
  double zipf_theta = 0.0;  // 0 = uniform
  std::size_t threads = 0;
  std::uint64_t cache_mb = 256;
  std::vector<std::pair<graph::VertexId, graph::VertexId>> path_queries;
  /// serve --random: print a progress/latency line every N queries (0 = off).
  std::int64_t stats_every = 0;
  /// Chrome trace-event JSON capture (all subcommands; empty = off).
  std::string trace_file;
  /// Metrics registry dump: JSON, or Prometheus text when FILE ends ".prom".
  std::string metrics_out;
  bool help = false;
};

void UsageSolve() {
  std::fprintf(
      stderr,
      "usage: apspark solve --er N [--seed S] | --input FILE\n"
      "  [--solver rs|fw2d|im|cb] [--block B]\n"
      "  [--partitioner md|ph] [--cores C] [--directed]\n"
      "  [--output FILE] [--checkpoint-every K]\n"
      "  [--persist DIR]  write the solved result as a disk-backed block\n"
      "          store DIR that `apspark serve` answers queries from\n"
      "  [--no-paths]  persist distances only (skip the successor plane)\n"
      "  [--sources K]  k-source mode (n x K frontier)\n"
      "  [--ksource-variant staged|shuffle|auto]  pivot data plane:\n"
      "          shared-storage staging (impure) or pure\n"
      "          shuffle-replicated panels\n"
      "  [--no-early-exit]  disable the all-infinite pivot\n"
      "          early-exit sweep (k-source mode)\n"
      "  [--kernel naive|tiled|tiled_parallel]\n"
      "  [--isa scalar|avx2|avx512|auto]  micro-kernel instruction set\n"
      "          (auto = CPUID-detected best; all choices are bitwise-\n"
      "          identical — pin scalar when bisecting a kernel bug)\n"
      "  [--autotune]  probe host caches, self-tune the tile geometry\n"
      "  [--semiring minplus|boolean|maxmin|maxtimes]\n"
      "          algebra the solve evaluates: shortest path,\n"
      "          reachability, bottleneck capacity, or widest path\n"
      "  [--no-bitpack]  keep boolean solves on dense doubles\n"
      "  [--intra-task-cores C]  modelled cores per task\n"
      "  [--fail-node N@S] [--fail-rack R@S] [--add-node @S] [--racks R]\n"
      "          injected failures / elastic membership (repeatable)\n"
      "  [--straggler-factor F] [--straggler-every K] [--speculate]\n"
      "  [--trace FILE]  capture a dual-clock Chrome trace-event JSON\n"
      "          (load in Perfetto / chrome://tracing)\n"
      "  [--metrics-out FILE]  dump the metrics registry after the run\n"
      "          (JSON, or Prometheus text when FILE ends in .prom)\n");
}

void UsagePlan() {
  std::fprintf(stderr,
               "usage: apspark plan --n N [--cores C] [--fault-tolerant]\n"
               "  [--isa scalar|avx2|avx512|auto] [--autotune] [--trace FILE]\n"
               "  also prints the resolved kernel tuning (detected ISA,\n"
               "  tile geometry, auto-tuned vs default)\n");
}

void UsageModel() {
  std::fprintf(
      stderr,
      "usage: apspark model --n N [--cores C] [--solver rs|fw2d|im|cb]\n"
      "  [--block B] [--rounds R] [--sources K] [--ksource-variant V]\n"
      "  [--semiring S] [--no-bitpack] [--intra-task-cores C]\n"
      "  [--isa scalar|avx2|avx512|auto] [--autotune]\n"
      "  [--fail-node N@S] [--fail-rack R@S] [--add-node @S] [--racks R]\n"
      "  [--checkpoint-every K] [--straggler-factor F]\n"
      "  [--straggler-every K] [--speculate] [--directed]\n"
      "  [--trace FILE] [--metrics-out FILE]\n"
      "  --sources K with --ksource-variant auto picks the cheaper\n"
      "  modelled data plane (staged vs shuffle)\n");
}

void UsageServe() {
  std::fprintf(
      stderr,
      "usage: apspark serve --store DIR [options]\n"
      "  --queries FILE   answer one \"s t\" query per line\n"
      "  --random N       answer N random queries and report QPS\n"
      "  --zipf THETA     skew the random workload: vertices drawn\n"
      "                   Zipf(THETA) (hot-vertex traffic; 0 = uniform)\n"
      "  --path S:T       print a shortest S->T vertex path (repeatable)\n"
      "  --threads T      lookup worker threads (0 = hardware)\n"
      "  --cache-mb MB    resident block-cache cap (default 256)\n"
      "  --seed S         RNG seed for --random\n"
      "  --output FILE    write per-query answers here instead of stdout\n"
      "  --stats-every N  print a progress + latency-percentile line every\n"
      "                   N random queries (0 = only the final report)\n"
      "  --trace FILE     capture a Chrome trace-event JSON of the serve run\n"
      "  --metrics-out FILE  dump serve-path latency histograms and cache\n"
      "                   counters (JSON, or Prometheus when FILE ends .prom)\n");
}

int Usage(const Args& args) {
  switch (args.command) {
    case kSolve:
      UsageSolve();
      break;
    case kPlan:
      UsagePlan();
      break;
    case kModel:
      UsageModel();
      break;
    case kServe:
      UsageServe();
      break;
  }
  return args.help ? 0 : 2;
}

int UsageTop() {
  std::fprintf(stderr,
               "usage: apspark solve|plan|model|serve [options]\n"
               "  solve   solve APSP / k-source on real data ([--persist DIR]\n"
               "          writes a serving store)\n"
               "  plan    recommend a solver configuration\n"
               "  model   paper-scale phantom run\n"
               "  serve   answer distance/path queries from a store\n"
               "run `apspark <command> --help` for that command's flags\n");
  return 2;
}

/// Resolves --isa / --autotune into the process-global kernel tuning before
/// a run (solvers pick it up through the registry). Returns false, after
/// printing an error, on an unknown ISA name.
bool ApplyKernelTuningFlags(const Args& args) {
  const auto isa = linalg::ParseSimdIsa(args.isa);
  if (!isa.has_value()) {
    std::fprintf(stderr,
                 "apspark: unknown --isa '%s' (want scalar|avx2|avx512|auto)\n",
                 args.isa.c_str());
    return false;
  }
  linalg::KernelTuning tuning = args.autotune
                                    ? linalg::KernelTuning::AutoTune()
                                    : linalg::GetKernelTuning();
  tuning.isa = *isa;
  linalg::SetKernelTuning(tuning);
  return true;
}

/// The solve-banner / plan line recording what geometry and ISA actually
/// ran. `variant` overrides the registry variant in the rendering when the
/// caller selects one per run (--kernel), which solvers apply at solve time.
void PrintKernelTuning(
    std::optional<linalg::KernelVariant> variant = std::nullopt) {
  linalg::KernelTuning tuning = linalg::GetKernelTuning();
  if (variant.has_value()) tuning.variant = *variant;
  std::printf("kernels: %s\n", linalg::DescribeKernelTuning(tuning).c_str());
}

/// Uniform error surface: every library Status prints the same way.
int Fail(const Status& status) {
  std::fprintf(stderr, "apspark: %s\n", status.ToString().c_str());
  return status.code() == StatusCode::kInvalidArgument ? 2 : 1;
}

/// --metrics-out: dumps the global registry. The format follows the file
/// name — Prometheus text exposition for ".prom", JSON otherwise — so the
/// same flag feeds both jq pipelines and a node-exporter textfile collector.
bool WriteMetricsFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "apspark: cannot write metrics to %s\n", path.c_str());
    return false;
  }
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  out << (prometheus ? obs::Registry::Global().ToPrometheus()
                     : obs::Registry::Global().ToJson());
  if (!prometheus) out << '\n';
  std::printf("metrics written to %s\n", path.c_str());
  return true;
}

/// Publishes a finished run's SimMetrics into the registry and honours
/// --metrics-out. Returns false only on a write failure.
bool EmitRunMetrics(const Args& args, const sparklet::SimMetrics& metrics) {
  if (args.metrics_out.empty()) return true;
  obs::ExportSimMetrics(metrics);
  return WriteMetricsFile(args.metrics_out);
}

/// Serve latencies live in the ns..ms range FormatDuration (built for the
/// paper's minutes-scale tables) floors to "0ms"; render adaptively.
std::string FormatLatency(double seconds) {
  char buf[32];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  }
  return buf;
}

/// One serve-path latency line per histogram that actually saw traffic:
/// real measured percentiles from the always-on log-bucketed histograms.
void PrintServeLatency(const store::DistanceService& svc) {
  const struct {
    const char* what;
    store::DistanceService::LatencySnapshot snap;
  } rows[] = {{"point", svc.PointLatency()},
              {"batch", svc.BatchLatency()},
              {"path", svc.PathLatency()}};
  for (const auto& row : rows) {
    if (row.snap.count == 0) continue;
    std::printf("latency[%s]: p50 %s, p95 %s, p99 %s, p99.9 %s (%llu ops)\n",
                row.what, FormatLatency(row.snap.p50_seconds).c_str(),
                FormatLatency(row.snap.p95_seconds).c_str(),
                FormatLatency(row.snap.p99_seconds).c_str(),
                FormatLatency(row.snap.p999_seconds).c_str(),
                static_cast<unsigned long long>(row.snap.count));
  }
}

const FlagSpec* FindFlag(const std::string& flag) {
  for (const auto& spec : kFlags) {
    if (flag == spec.name) return &spec;
  }
  return nullptr;
}

bool ParseArgs(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  const std::string cmd = argv[1];
  bool known_command = false;
  for (const auto& spec : kCommands) {
    if (cmd == spec.name) {
      args.command = spec.bit;
      args.command_name = spec.name;
      known_command = true;
      break;
    }
  }
  if (!known_command) {
    if (cmd != "--help" && cmd != "-h") {
      std::fprintf(stderr, "apspark: unknown command '%s'\n", cmd.c_str());
    }
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const FlagSpec* spec = FindFlag(flag);
    if (spec == nullptr) {
      std::fprintf(stderr, "apspark: unknown flag %s\n", flag.c_str());
      std::fprintf(stderr, "see `apspark %s --help`\n",
                   args.command_name.c_str());
      return false;
    }
    if ((spec->mask & args.command) == 0) {
      std::fprintf(stderr, "apspark: %s does not apply to '%s'\n",
                   flag.c_str(), args.command_name.c_str());
      std::fprintf(stderr, "see `apspark %s --help`\n",
                   args.command_name.c_str());
      return false;
    }
    const char* v = nullptr;
    if (spec->takes_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "apspark: %s expects a value\n", flag.c_str());
        return false;
      }
      v = argv[++i];
    }
    if (flag == "--er" || flag == "--n") {
      args.n = std::atoll(v);
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--input") {
      args.input = v;
    } else if (flag == "--output") {
      args.output = v;
    } else if (flag == "--solver") {
      args.solver = v;
    } else if (flag == "--partitioner") {
      args.partitioner = v;
    } else if (flag == "--block") {
      args.block = std::atoll(v);
    } else if (flag == "--cores") {
      args.cores = std::atoi(v);
    } else if (flag == "--rounds") {
      args.rounds = std::atoll(v);
    } else if (flag == "--sources") {
      args.sources = std::atoll(v);
    } else if (flag == "--checkpoint-every") {
      args.checkpoint_every = std::atoll(v);
    } else if (flag == "--intra-task-cores") {
      args.intra_task_cores = std::atoi(v);
      if (args.intra_task_cores < 1) {
        std::fprintf(stderr, "--intra-task-cores must be >= 1\n");
        return false;
      }
    } else if (flag == "--kernel") {
      args.kernel = v;
    } else if (flag == "--isa") {
      args.isa = v;
    } else if (flag == "--autotune") {
      args.autotune = true;
    } else if (flag == "--semiring") {
      args.semiring = v;
    } else if (flag == "--no-bitpack") {
      args.no_bitpack = true;
    } else if (flag == "--ksource-variant") {
      args.ksource_variant = v;
    } else if (flag == "--no-early-exit") {
      args.no_early_exit = true;
    } else if (flag == "--fail-node") {
      const char* at = std::strchr(v, '@');
      if (at == nullptr) {
        std::fprintf(stderr, "--fail-node expects NODE@STAGE, got '%s'\n", v);
        return false;
      }
      sparklet::NodeFailurePlan plan;
      plan.node = std::atoi(v);
      plan.at_stage = std::atoll(at + 1);
      if (plan.node < 0) {
        std::fprintf(stderr, "--fail-node: node must be >= 0, got %d\n",
                     plan.node);
        return false;
      }
      if (plan.at_stage < 0) {
        std::fprintf(stderr, "--fail-node: stage must be >= 0, got %lld\n",
                     static_cast<long long>(plan.at_stage));
        return false;
      }
      args.fail_nodes.push_back(plan);
    } else if (flag == "--fail-rack") {
      const char* at = std::strchr(v, '@');
      if (at == nullptr) {
        std::fprintf(stderr, "--fail-rack expects RACK@STAGE, got '%s'\n", v);
        return false;
      }
      sparklet::RackFailurePlan plan;
      plan.rack = std::atoi(v);
      plan.at_stage = std::atoll(at + 1);
      if (plan.rack < 0) {
        std::fprintf(stderr, "--fail-rack: rack must be >= 0, got %d\n",
                     plan.rack);
        return false;
      }
      if (plan.at_stage < 0) {
        std::fprintf(stderr, "--fail-rack: stage must be >= 0, got %lld\n",
                     static_cast<long long>(plan.at_stage));
        return false;
      }
      args.fail_racks.push_back(plan);
    } else if (flag == "--add-node") {
      if (v[0] != '@') {
        std::fprintf(stderr, "--add-node expects @STAGE, got '%s'\n", v);
        return false;
      }
      const std::int64_t at_stage = std::atoll(v + 1);
      if (at_stage < 0) {
        std::fprintf(stderr, "--add-node: stage must be >= 0, got %lld\n",
                     static_cast<long long>(at_stage));
        return false;
      }
      args.add_nodes.push_back(at_stage);
    } else if (flag == "--racks") {
      args.racks = std::atoi(v);
      if (args.racks < 1) {
        std::fprintf(stderr, "--racks must be >= 1\n");
        return false;
      }
    } else if (flag == "--straggler-factor") {
      args.straggler_factor = std::atof(v);
      if (args.straggler_factor < 1.0) {
        std::fprintf(stderr, "--straggler-factor must be >= 1\n");
        return false;
      }
    } else if (flag == "--straggler-every") {
      args.straggler_every = std::atoi(v);
      if (args.straggler_every < 1) {
        std::fprintf(stderr, "--straggler-every must be >= 1\n");
        return false;
      }
    } else if (flag == "--speculate") {
      args.speculate = true;
    } else if (flag == "--directed") {
      args.directed = true;
    } else if (flag == "--fault-tolerant") {
      args.fault_tolerant = true;
    } else if (flag == "--persist") {
      args.persist = v;
    } else if (flag == "--no-paths") {
      args.no_paths = true;
    } else if (flag == "--store") {
      args.store_dir = v;
    } else if (flag == "--queries") {
      args.queries_file = v;
    } else if (flag == "--random") {
      args.random_queries = std::atoll(v);
    } else if (flag == "--zipf") {
      args.zipf_theta = std::atof(v);
    } else if (flag == "--threads") {
      args.threads = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--cache-mb") {
      args.cache_mb = static_cast<std::uint64_t>(std::atoll(v));
      if (args.cache_mb == 0) {
        std::fprintf(stderr, "--cache-mb must be >= 1\n");
        return false;
      }
    } else if (flag == "--path") {
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) {
        std::fprintf(stderr, "--path expects S:T, got '%s'\n", v);
        return false;
      }
      args.path_queries.emplace_back(std::atoll(v), std::atoll(colon + 1));
    } else if (flag == "--stats-every") {
      args.stats_every = std::atoll(v);
      if (args.stats_every < 0) {
        std::fprintf(stderr, "--stats-every must be >= 0\n");
        return false;
      }
    } else if (flag == "--trace") {
      args.trace_file = v;
    } else if (flag == "--metrics-out") {
      args.metrics_out = v;
    } else if (flag == "--help") {
      args.help = true;
      return false;  // routes to the subcommand usage, exit 0
    }
  }
  return true;
}

/// Writes a matrix/panel as whitespace-separated rows with full double
/// precision (the --output format of both the APSP and k-source modes).
bool WriteDenseBlock(const std::string& path, const linalg::DenseBlock& d) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out.precision(17);
  for (std::int64_t i = 0; i < d.rows(); ++i) {
    for (std::int64_t j = 0; j < d.cols(); ++j) {
      out << d.At(i, j) << (j + 1 == d.cols() ? '\n' : ' ');
    }
  }
  return true;
}

/// Deterministic source set for --sources K: evenly spread over the vertex
/// range (duplicates appear when K > n, which the solver permits).
std::vector<graph::VertexId> PickSources(std::int64_t n, std::int64_t k) {
  std::vector<graph::VertexId> sources;
  sources.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = 0; j < k; ++j) sources.push_back(j * n / k);
  return sources;
}

Result<apsp::SolverKind> ParseSolver(const std::string& name) {
  if (name == "rs") return apsp::SolverKind::kRepeatedSquaring;
  if (name == "fw2d") return apsp::SolverKind::kFloydWarshall2d;
  if (name == "im") return apsp::SolverKind::kBlockedInMemory;
  if (name == "cb") return apsp::SolverKind::kBlockedCollectBroadcast;
  return InvalidArgumentError("unknown solver '" + name + "'");
}

/// The durability/fault/membership schedule all workloads share — assigned
/// into both ApspOptions and KsourceOptions through their RunPlan base.
apsp::RunPlan BuildRunPlan(const Args& args) {
  apsp::RunPlan plan;
  plan.checkpoint_every = args.checkpoint_every;
  plan.fail_nodes = args.fail_nodes;
  plan.fail_racks = args.fail_racks;
  plan.add_nodes = args.add_nodes;
  return plan;
}

/// Membership plans that parse fine can still be nonsense for the actual
/// cluster: a node or rack id past the config, or the same plan armed twice
/// at one stage boundary (it would silently be a no-op — the second loss
/// finds the node already dead). Rejected here with a clear error instead.
bool ValidateMembershipPlans(const Args& args,
                             const sparklet::ClusterConfig& cluster) {
  for (std::size_t i = 0; i < args.fail_nodes.size(); ++i) {
    const auto& plan = args.fail_nodes[i];
    if (plan.node >= cluster.nodes) {
      std::fprintf(stderr,
                   "--fail-node %d@%lld: node out of range for a %d-node "
                   "cluster (valid: 0..%d)\n",
                   plan.node, static_cast<long long>(plan.at_stage),
                   cluster.nodes, cluster.nodes - 1);
      return false;
    }
    for (std::size_t j = i + 1; j < args.fail_nodes.size(); ++j) {
      if (args.fail_nodes[j].node == plan.node &&
          args.fail_nodes[j].at_stage == plan.at_stage) {
        std::fprintf(stderr,
                     "--fail-node %d@%lld given twice: a node dies once per "
                     "stage boundary\n",
                     plan.node, static_cast<long long>(plan.at_stage));
        return false;
      }
    }
  }
  for (std::size_t i = 0; i < args.fail_racks.size(); ++i) {
    const auto& plan = args.fail_racks[i];
    if (plan.rack >= args.racks) {
      std::fprintf(stderr,
                   "--fail-rack %d@%lld: rack out of range for --racks %d "
                   "(valid: 0..%d)\n",
                   plan.rack, static_cast<long long>(plan.at_stage),
                   args.racks, args.racks - 1);
      return false;
    }
    for (std::size_t j = i + 1; j < args.fail_racks.size(); ++j) {
      if (args.fail_racks[j].rack == plan.rack &&
          args.fail_racks[j].at_stage == plan.at_stage) {
        std::fprintf(stderr,
                     "--fail-rack %d@%lld given twice: a rack dies once per "
                     "stage boundary\n",
                     plan.rack, static_cast<long long>(plan.at_stage));
        return false;
      }
    }
  }
  return true;
}

/// Fault-tolerance report: printed whenever the run saw failures, replays,
/// restarts, speculation, or membership churn.
void PrintRecovery(const sparklet::SimMetrics& m) {
  if (m.executor_failures == 0 && m.recomputed_tasks == 0 &&
      m.task_retries == 0 && m.job_restarts == 0 &&
      m.speculative_tasks == 0 && m.migrated_partitions == 0 &&
      m.node_joins == 0) {
    return;
  }
  std::printf(
      "recovery: %llu executor losses, %llu recomputed tasks, "
      "%llu task retries, %llu checkpoint restarts, %llu speculative "
      "copies, %s of redone work\n",
      static_cast<unsigned long long>(m.executor_failures),
      static_cast<unsigned long long>(m.recomputed_tasks),
      static_cast<unsigned long long>(m.task_retries),
      static_cast<unsigned long long>(m.job_restarts),
      static_cast<unsigned long long>(m.speculative_tasks),
      FormatDuration(m.recovery_seconds).c_str());
  if (m.migrated_partitions > 0 || m.node_joins > 0) {
    std::printf(
        "rebalance: %llu node joins, %llu partitions rehomed, %s migrated "
        "in %s\n",
        static_cast<unsigned long long>(m.node_joins),
        static_cast<unsigned long long>(m.migrated_partitions),
        FormatBytes(m.migration_bytes).c_str(),
        FormatDuration(m.rebalance_seconds).c_str());
  }
}

/// Resolves --ksource-variant, including the adaptive "auto" choice from
/// the modelled staged-vs-shuffle cost (apsp/tuner.h).
Result<apsp::KsourceVariant> ResolveKsourceVariant(
    const Args& args, std::int64_t n, std::int64_t block_size,
    const sparklet::ClusterConfig& cluster) {
  if (args.ksource_variant == "auto") {
    apsp::KsourceTuneRequest request;
    request.n = n;
    request.num_sources = args.sources;
    request.block_size = block_size;
    request.cluster = cluster;
    request.directed = args.directed;
    request.require_fault_tolerance = args.fault_tolerant;
    auto chosen = apsp::ChooseKsourceVariant(request);
    if (chosen.ok()) {
      std::printf("auto-selected ksource data plane: %s\n",
                  apsp::KsourceVariantName(*chosen));
    }
    return chosen;
  }
  const auto variant = apsp::ParseKsourceVariant(args.ksource_variant);
  if (!variant.has_value()) {
    return InvalidArgumentError("unknown ksource variant '" +
                                args.ksource_variant + "'");
  }
  return *variant;
}

int RunSolve(const Args& args) {
  graph::Graph g(0);
  if (!args.input.empty()) {
    auto loaded = graph::ReadEdgeListTextFile(args.input);
    if (!loaded.ok()) return Fail(loaded.status());
    g = *loaded;
  } else if (args.n > 0) {
    g = graph::ErdosRenyi(args.n, graph::PaperEdgeProbability(args.n),
                          {1.0, 10.0}, args.seed, args.directed);
  } else {
    return Usage(args);
  }
  auto kind = ParseSolver(args.solver);
  if (!kind.ok()) return Fail(kind.status());
  const auto semiring = linalg::ParseSemiring(args.semiring);
  if (!semiring.has_value()) {
    return Fail(InvalidArgumentError("unknown semiring '" + args.semiring +
                                     "'"));
  }

  apsp::SolveRequest request;
  request.solver = *kind;
  auto& options = request.options;
  options.semiring = *semiring;
  options.bitpack_boolean = !args.no_bitpack;
  options.block_size =
      args.block > 0 ? args.block
                     : std::max<std::int64_t>(1, g.num_vertices() / 4);
  options.partitioner = args.partitioner == "ph"
                            ? apsp::PartitionerKind::kPortableHash
                            : apsp::PartitionerKind::kMultiDiagonal;
  options.directed = args.directed;
  static_cast<apsp::RunPlan&>(options) = BuildRunPlan(args);
  auto& cluster = request.cluster;
  cluster.nodes = std::max(1, args.cores / 2);
  cluster.cores_per_node = 2;
  cluster.local_storage_bytes = 64ULL * kGiB;
  const auto kernel = linalg::ParseKernelVariant(args.kernel);
  if (!kernel.has_value()) {
    return Fail(InvalidArgumentError("unknown kernel variant '" + args.kernel +
                                     "'"));
  }
  cluster.kernel_variant = *kernel;
  cluster.intra_task_cores = args.intra_task_cores;
  cluster.straggler_factor = args.straggler_factor;
  cluster.straggler_every = args.straggler_every;
  cluster.speculation = args.speculate;
  cluster.racks = args.racks;
  if (!ValidateMembershipPlans(args, cluster)) return 2;

  if (args.sources > 0) {
    // Batched k-source mode: rectangular n x K frontier on the kernel
    // registry instead of the full APSP matrix.
    apsp::KsourceOptions kopts;
    static_cast<apsp::RunPlan&>(kopts) = BuildRunPlan(args);
    kopts.block_size = options.block_size;
    kopts.semiring = options.semiring;
    kopts.partitioner = options.partitioner;
    kopts.directed = args.directed;
    kopts.early_exit_infinite = !args.no_early_exit;
    const auto variant = ResolveKsourceVariant(
        args, g.num_vertices(), kopts.block_size, cluster);
    if (!variant.ok()) return Fail(variant.status());
    kopts.variant = *variant;
    apsp::KsourceBlockedSolver ksolver;
    const auto sources = PickSources(g.num_vertices(), args.sources);
    std::printf(
        "solving %s k-source (k = %lld) with %s [%s%s] (b = %lld, %s)\n",
        g.Summary().c_str(), static_cast<long long>(args.sources),
        ksolver.name().c_str(), apsp::KsourceVariantName(kopts.variant),
        apsp::KsourceBlockedSolver::Pure(kopts.variant) ? ", pure"
                                                        : ", impure",
        static_cast<long long>(kopts.block_size),
        linalg::SemiringName(kopts.semiring));
    PrintKernelTuning(*kernel);
    auto kresult = ksolver.SolveGraph(g, sources, kopts, cluster);
    if (!kresult.status.ok()) return Fail(kresult.status);
    std::printf("done: %lld pivots, simulated cluster time %s\n",
                static_cast<long long>(kresult.rounds_executed),
                FormatDuration(kresult.sim_seconds).c_str());
    std::printf("engine: %s\n", kresult.metrics.Summary().c_str());
    std::printf("memory: driver high-water %s, node high-water %s\n",
                FormatBytes(kresult.metrics.driver_peak_bytes).c_str(),
                FormatBytes(kresult.metrics.node_peak_bytes).c_str());
    PrintRecovery(kresult.metrics);
    if (!EmitRunMetrics(args, kresult.metrics)) return 1;
    if (!args.output.empty()) {
      if (!WriteDenseBlock(args.output, *kresult.distances)) return 1;
      std::printf("distance panel (n x k) written to %s\n",
                  args.output.c_str());
    }
    return 0;
  }

  auto report = apsp::Solve(g, request);
  std::printf("solving %s with %s (b = %lld%s, %s%s)\n", g.Summary().c_str(),
              report.solver_name.c_str(),
              static_cast<long long>(options.block_size),
              report.pure ? ", pure" : ", impure",
              linalg::SemiringName(options.semiring),
              options.semiring == linalg::SemiringId::kBoolean &&
                      options.bitpack_boolean
                  ? " bit-packed"
                  : "");
  PrintKernelTuning(*kernel);
  if (!report.ok()) return Fail(report.status());
  std::printf("done: %lld rounds, simulated cluster time %s\n",
              static_cast<long long>(report.run.rounds_executed),
              FormatDuration(report.run.sim_seconds).c_str());
  std::printf("engine: %s\n", report.metrics().Summary().c_str());
  PrintRecovery(report.metrics());
  if (!EmitRunMetrics(args, report.metrics())) return 1;
  if (!args.output.empty()) {
    if (!WriteDenseBlock(args.output, *report.distances())) return 1;
    std::printf("distances written to %s\n", args.output.c_str());
  }
  if (!args.persist.empty()) {
    apsp::PersistOptions popts;
    popts.block_size = options.block_size;
    popts.with_paths = !args.no_paths;
    auto status = apsp::PersistSolve(args.persist, *report.distances(), &g,
                                     args.directed, options.semiring, popts);
    if (!status.ok()) return Fail(status);
    auto opened = store::BlockStore::Open(args.persist);
    if (!opened.ok()) return Fail(opened.status());
    std::printf("persisted %zu blocks (%s) to %s%s\n",
                (*opened)->manifest().entries.size(),
                FormatBytes((*opened)->total_payload_bytes()).c_str(),
                args.persist.c_str(),
                (*opened)->manifest().has_paths ? " with successor plane"
                                                : "");
  }
  return 0;
}

int RunPlan(const Args& args) {
  if (args.n <= 1) return Usage(args);
  apsp::TuneRequest request;
  request.n = args.n;
  request.cluster = sparklet::ClusterConfig::PaperWithCores(args.cores);
  request.require_fault_tolerance = args.fault_tolerant;
  auto choice = apsp::TuneConfiguration(request);
  if (!choice.ok()) return Fail(choice.status());
  PrintKernelTuning();
  std::printf("recommended: %s, b = %lld, %s partitioner -> ~%s\n",
              apsp::SolverKindName(choice->solver),
              static_cast<long long>(choice->block_size),
              apsp::PartitionerKindName(choice->partitioner),
              FormatDuration(choice->projected_seconds).c_str());
  return 0;
}

int RunModel(const Args& args) {
  if (args.n <= 1) return Usage(args);
  const auto semiring = linalg::ParseSemiring(args.semiring);
  if (!semiring.has_value()) {
    return Fail(InvalidArgumentError("unknown semiring '" + args.semiring +
                                     "'"));
  }
  if (args.sources > 0) {
    apsp::KsourceOptions kopts;
    static_cast<apsp::RunPlan&>(kopts) = BuildRunPlan(args);
    kopts.block_size = args.block > 0 ? args.block : 1024;
    kopts.semiring = *semiring;
    kopts.max_rounds = args.rounds > 0 ? args.rounds : 1;
    kopts.directed = args.directed;
    kopts.early_exit_infinite = !args.no_early_exit;
    auto cluster = sparklet::ClusterConfig::PaperWithCores(
        args.cores > 4 ? args.cores : 1024);
    cluster.intra_task_cores = args.intra_task_cores;
    cluster.straggler_factor = args.straggler_factor;
    cluster.straggler_every = args.straggler_every;
    cluster.speculation = args.speculate;
    cluster.racks = args.racks;
    if (!ValidateMembershipPlans(args, cluster)) return 2;
    const auto variant =
        ResolveKsourceVariant(args, args.n, kopts.block_size, cluster);
    if (!variant.ok()) return Fail(variant.status());
    kopts.variant = *variant;
    apsp::KsourceBlockedSolver solver;
    auto result =
        solver.SolveModel(args.n, args.sources, kopts, cluster);
    std::printf("%s [%s], n = %lld, k = %lld, b = %lld on %s\n",
                solver.name().c_str(),
                apsp::KsourceVariantName(kopts.variant),
                static_cast<long long>(args.n),
                static_cast<long long>(args.sources),
                static_cast<long long>(kopts.block_size),
                cluster.Summary().c_str());
    std::printf("pivots: %lld of %lld, projected %s\n",
                static_cast<long long>(result.rounds_executed),
                static_cast<long long>(result.rounds_total),
                FormatDuration(result.projected_seconds).c_str());
    std::printf("engine: %s\n", result.metrics.Summary().c_str());
    std::printf("memory: driver high-water %s, node high-water %s\n",
                FormatBytes(result.metrics.driver_peak_bytes).c_str(),
                FormatBytes(result.metrics.node_peak_bytes).c_str());
    PrintRecovery(result.metrics);
    if (!EmitRunMetrics(args, result.metrics)) return 1;
    return result.status.ok() ? 0 : 1;
  }
  auto kind = ParseSolver(args.solver);
  if (!kind.ok()) return Fail(kind.status());

  apsp::SolveRequest request;
  request.solver = *kind;
  auto& options = request.options;
  static_cast<apsp::RunPlan&>(options) = BuildRunPlan(args);
  options.block_size = args.block > 0 ? args.block : 1024;
  options.semiring = *semiring;
  options.bitpack_boolean = !args.no_bitpack;
  options.max_rounds = args.rounds > 0 ? args.rounds : 1;
  request.cluster = sparklet::ClusterConfig::PaperWithCores(
      args.cores > 4 ? args.cores : 1024);
  auto& cluster = request.cluster;
  cluster.intra_task_cores = args.intra_task_cores;
  cluster.straggler_factor = args.straggler_factor;
  cluster.straggler_every = args.straggler_every;
  cluster.speculation = args.speculate;
  cluster.racks = args.racks;
  if (!ValidateMembershipPlans(args, cluster)) return 2;
  auto report = apsp::SolveModel(args.n, request);
  const auto& result = report.run;
  std::printf("%s, n = %lld, b = %lld, %s%s on %s\n",
              report.solver_name.c_str(), static_cast<long long>(args.n),
              static_cast<long long>(options.block_size),
              linalg::SemiringName(options.semiring),
              options.semiring == linalg::SemiringId::kBoolean &&
                      options.bitpack_boolean
                  ? " bit-packed"
                  : "",
              cluster.Summary().c_str());
  std::printf("rounds: %lld of %lld, per-round %s, projected %s%s\n",
              static_cast<long long>(result.rounds_executed),
              static_cast<long long>(result.rounds_total),
              FormatDuration(result.SecondsPerRound()).c_str(),
              FormatDuration(result.projected_seconds).c_str(),
              result.projected_storage_exceeded ? "  [would exhaust storage]"
                                                : "");
  std::printf("engine: %s\n", report.metrics().Summary().c_str());
  PrintRecovery(report.metrics());
  if (!EmitRunMetrics(args, report.metrics())) return 1;
  return 0;
}

int RunServe(const Args& args) {
  if (args.store_dir.empty()) return Usage(args);

  store::DistanceService::Options options;
  options.num_threads = args.threads;
  options.store_options.cache_capacity_bytes = args.cache_mb << 20;
  auto service = store::DistanceService::Open(args.store_dir, options);
  if (!service.ok()) return Fail(service.status());
  store::DistanceService& svc = **service;
  const auto& manifest = svc.store().manifest();
  std::printf("serving %s: n = %lld, b = %lld, %s, %zu blocks (%s)%s\n",
              args.store_dir.c_str(), static_cast<long long>(manifest.n),
              static_cast<long long>(manifest.block_size),
              manifest.directed ? "directed" : "undirected",
              manifest.entries.size(),
              FormatBytes(svc.store().total_payload_bytes()).c_str(),
              manifest.has_paths ? ", with paths" : "");

  std::ofstream out_file;
  std::FILE* out = stdout;
  if (!args.output.empty()) {
    out_file.open(args.output);
    if (!out_file) {
      return Fail(InternalError("cannot write " + args.output));
    }
  }
  auto emit = [&](const std::string& line) {
    if (out_file.is_open()) {
      out_file << line << '\n';
    } else {
      std::fprintf(out, "%s\n", line.c_str());
    }
  };

  if (!args.queries_file.empty()) {
    std::ifstream in(args.queries_file);
    if (!in) {
      return Fail(NotFoundError("cannot read " + args.queries_file));
    }
    std::vector<store::DistanceService::Query> queries;
    graph::VertexId s = 0, t = 0;
    while (in >> s >> t) queries.push_back({s, t});
    auto answers = svc.DistanceBatch(queries);
    if (!answers.ok()) return Fail(answers.status());
    char line[96];
    for (std::size_t i = 0; i < queries.size(); ++i) {
      std::snprintf(line, sizeof line, "%lld %lld %.17g",
                    static_cast<long long>(queries[i].s),
                    static_cast<long long>(queries[i].t), (*answers)[i]);
      emit(line);
    }
  }

  if (args.random_queries > 0) {
    Xoshiro256 rng(args.seed);
    const auto nn = static_cast<std::uint64_t>(svc.n());
    std::vector<store::DistanceService::Query> queries;
    queries.reserve(static_cast<std::size_t>(args.random_queries));
    if (args.zipf_theta > 0) {
      ZipfSampler zipf(nn, args.zipf_theta);
      for (std::int64_t i = 0; i < args.random_queries; ++i) {
        queries.push_back(
            {static_cast<graph::VertexId>(zipf.Sample(rng)),
             static_cast<graph::VertexId>(zipf.Sample(rng))});
      }
    } else {
      for (std::int64_t i = 0; i < args.random_queries; ++i) {
        queries.push_back({static_cast<graph::VertexId>(rng.NextBounded(nn)),
                           static_cast<graph::VertexId>(rng.NextBounded(nn))});
      }
    }
    // --stats-every N slices the workload so a progress + live-percentile
    // line appears mid-run; N = 0 keeps the original single batch (and the
    // exact same answers/checksum either way — slicing only changes when
    // the batch-level histogram samples land).
    const std::int64_t chunk =
        args.stats_every > 0 ? args.stats_every : args.random_queries;
    double sum = 0;
    std::int64_t reachable = 0;
    std::int64_t done = 0;
    const auto start = std::chrono::steady_clock::now();
    while (done < args.random_queries) {
      const std::int64_t take =
          std::min(chunk, args.random_queries - done);
      const std::vector<store::DistanceService::Query> slice(
          queries.begin() + done, queries.begin() + done + take);
      auto answers = svc.DistanceBatch(slice);
      if (!answers.ok()) return Fail(answers.status());
      for (double d : *answers) {
        if (d < std::numeric_limits<double>::infinity()) {
          sum += d;
          ++reachable;
        }
      }
      done += take;
      if (args.stats_every > 0 && done < args.random_queries) {
        const double so_far = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
        const auto p = svc.PointLatency();
        std::printf("progress: %lld/%lld queries, %.0f qps, point p50 %s "
                    "p99 %s\n",
                    static_cast<long long>(done),
                    static_cast<long long>(args.random_queries),
                    static_cast<double>(done) / so_far,
                    FormatLatency(p.p50_seconds).c_str(),
                    FormatLatency(p.p99_seconds).c_str());
      }
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const auto stats = svc.store().stats();
    std::printf(
        "%lld queries (%s) in %s: %.0f qps; %lld reachable, checksum "
        "%.17g\n",
        static_cast<long long>(args.random_queries),
        args.zipf_theta > 0 ? "zipf" : "uniform",
        FormatDuration(elapsed).c_str(),
        static_cast<double>(args.random_queries) / elapsed,
        static_cast<long long>(reachable), sum);
    std::printf(
        "cache: %llu hits, %llu misses, %llu evictions, resident %s "
        "(peak %s, cap %s)\n",
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.evictions),
        FormatBytes(stats.resident_bytes).c_str(),
        FormatBytes(stats.peak_resident_bytes).c_str(),
        FormatBytes(options.store_options.cache_capacity_bytes).c_str());
  }

  for (const auto& [s, t] : args.path_queries) {
    auto path = svc.Path(s, t);
    if (!path.ok()) return Fail(path.status());
    std::string line = "path " + std::to_string(s) + "->" + std::to_string(t) +
                       ":";
    for (auto v : *path) line += " " + std::to_string(v);
    emit(line);
  }

  if (args.queries_file.empty() && args.random_queries == 0 &&
      args.path_queries.empty()) {
    std::fprintf(stderr,
                 "nothing to do: give --queries, --random, or --path\n");
    return 2;
  }
  PrintServeLatency(svc);
  if (!args.metrics_out.empty()) {
    obs::ExportStoreStats(svc.store().stats());
    if (!WriteMetricsFile(args.metrics_out)) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    if (args.command_name.empty()) return UsageTop();
    return Usage(args);
  }
  if (args.command != kServe && !ApplyKernelTuningFlags(args)) return 2;
  if (!args.trace_file.empty()) obs::Tracer::Get().Start();
  int rc = 2;
  switch (args.command) {
    case kSolve:
      rc = RunSolve(args);
      break;
    case kPlan:
      rc = RunPlan(args);
      break;
    case kModel:
      rc = RunModel(args);
      break;
    case kServe:
      rc = RunServe(args);
      break;
  }
  if (!args.trace_file.empty()) {
    auto& tracer = obs::Tracer::Get();
    tracer.Stop();
    if (!tracer.WriteChromeJson(args.trace_file)) {
      std::fprintf(stderr, "apspark: cannot write trace to %s\n",
                   args.trace_file.c_str());
      if (rc == 0) rc = 1;
    } else {
      std::printf("trace: %zu events written to %s\n", tracer.EventCount(),
                  args.trace_file.c_str());
    }
  }
  return rc;
}
