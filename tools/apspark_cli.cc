// apspark — command-line driver for the library.
//
//   apspark solve  --er <n> [--seed S] | --input <file>   solve APSP
//                  [--solver rs|fw2d|im|cb] [--block B] [--partitioner md|ph]
//                  [--cores C] [--directed] [--output <distances.txt>]
//                  [--checkpoint-every K]
//                  [--sources K]  batched k-source mode: sweep a rectangular
//                                 n x K frontier instead of full APSP
//                  [--kernel naive|tiled|tiled_parallel]  host kernel engine
//                  [--intra-task-cores C]  model C cores of one executor
//                                 cooperating on one task's blocks
//   apspark plan   --n N [--cores C] [--fault-tolerant]   recommend a config
//   apspark model  --n N [--cores C] [--solver ...] [--block B] [--rounds R]
//                  [--sources K] [--intra-task-cores C]
//                  paper-scale phantom run, projected time + metrics
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "apsp/solver.h"
#include "apsp/solvers/ksource_blocked.h"
#include "apsp/tuner.h"
#include "common/time_utils.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "linalg/kernel_registry.h"

namespace {

using namespace apspark;

struct Args {
  std::string command;
  std::int64_t n = 0;
  std::uint64_t seed = 1;
  std::string input;
  std::string output;
  std::string solver = "cb";
  std::string partitioner = "md";
  std::int64_t block = 0;  // 0 = auto
  int cores = 4;
  std::int64_t rounds = 0;
  std::int64_t sources = 0;  // > 0 selects the batched k-source workload
  std::int64_t checkpoint_every = 0;
  int intra_task_cores = 1;
  bool directed = false;
  bool fault_tolerant = false;
  std::string kernel = "tiled";
  std::string semiring = "minplus";
  bool no_bitpack = false;
  std::string ksource_variant = "staged";
  bool no_early_exit = false;
  /// Injected executor losses: --fail-node N@S (repeatable).
  std::vector<sparklet::NodeFailurePlan> fail_nodes;
  /// Correlated failures: --fail-rack R@S kills every node of rack R.
  std::vector<sparklet::RackFailurePlan> fail_racks;
  /// Elastic membership: --add-node @S joins a replacement node.
  std::vector<std::int64_t> add_nodes;
  /// Rack count for failure-domain mapping (--racks R).
  int racks = 1;
  double straggler_factor = 1.0;
  int straggler_every = 8;
  bool speculate = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: apspark solve|plan|model [options]\n"
               "  solve --er N [--seed S] | --input FILE\n"
               "        [--solver rs|fw2d|im|cb] [--block B]\n"
               "        [--partitioner md|ph] [--cores C] [--directed]\n"
               "        [--output FILE] [--checkpoint-every K]\n"
               "        [--sources K]  k-source mode (n x K frontier)\n"
               "        [--ksource-variant staged|shuffle]  pivot data plane:\n"
               "                shared-storage staging (impure) or pure\n"
               "                shuffle-replicated panels\n"
               "        [--no-early-exit]  disable the all-infinite pivot\n"
               "                early-exit sweep (k-source mode)\n"
               "        [--kernel naive|tiled|tiled_parallel]\n"
               "        [--semiring minplus|boolean|maxmin|maxtimes]\n"
               "                algebra the solve evaluates: shortest path,\n"
               "                reachability, bottleneck capacity, or widest\n"
               "                (most reliable, 2^-w) path\n"
               "        [--no-bitpack]  keep boolean solves on dense doubles\n"
               "                instead of the bit-packed (64/word) plane\n"
               "        [--intra-task-cores C]  modelled cores per task\n"
               "        [--fail-node N@S]  inject loss of executor node N at\n"
               "                stage S (repeatable; pure solvers recover by\n"
               "                lineage, impure ones restart from the last\n"
               "                checkpoint — combine with --checkpoint-every)\n"
               "        [--racks R]  spread the executors over R failure\n"
               "                domains (contiguous, balanced)\n"
               "        [--fail-rack R@S]  correlated failure: every live\n"
               "                node of rack R dies at stage S (repeatable)\n"
               "        [--add-node @S]  a replacement node joins at stage S\n"
               "                and steals partitions from the most-loaded\n"
               "                survivors (repeatable)\n"
               "        [--straggler-factor F] [--straggler-every K]\n"
               "                every K-th task runs F x slower\n"
               "        [--speculate]  speculative re-execution of stragglers\n"
               "  plan  --n N [--cores C] [--fault-tolerant]\n"
               "  model --n N [--cores C] [--solver ...] [--block B]"
               " [--rounds R] [--sources K] [--ksource-variant V]"
               " [--semiring S] [--no-bitpack]"
               " [--intra-task-cores C] [--fail-node N@S] [--fail-rack R@S]"
               " [--add-node @S] [--racks R]\n"
               "        --sources K with --ksource-variant auto picks the\n"
               "        cheaper modelled data plane (staged vs shuffle)\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--er" || flag == "--n") {
      const char* v = next();
      if (!v) return false;
      args.n = std::atoll(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--input") {
      const char* v = next();
      if (!v) return false;
      args.input = v;
    } else if (flag == "--output") {
      const char* v = next();
      if (!v) return false;
      args.output = v;
    } else if (flag == "--solver") {
      const char* v = next();
      if (!v) return false;
      args.solver = v;
    } else if (flag == "--partitioner") {
      const char* v = next();
      if (!v) return false;
      args.partitioner = v;
    } else if (flag == "--block") {
      const char* v = next();
      if (!v) return false;
      args.block = std::atoll(v);
    } else if (flag == "--cores") {
      const char* v = next();
      if (!v) return false;
      args.cores = std::atoi(v);
    } else if (flag == "--rounds") {
      const char* v = next();
      if (!v) return false;
      args.rounds = std::atoll(v);
    } else if (flag == "--sources") {
      const char* v = next();
      if (!v) return false;
      args.sources = std::atoll(v);
    } else if (flag == "--checkpoint-every") {
      const char* v = next();
      if (!v) return false;
      args.checkpoint_every = std::atoll(v);
    } else if (flag == "--intra-task-cores") {
      const char* v = next();
      if (!v) return false;
      args.intra_task_cores = std::atoi(v);
      if (args.intra_task_cores < 1) {
        std::fprintf(stderr, "--intra-task-cores must be >= 1\n");
        return false;
      }
    } else if (flag == "--kernel") {
      const char* v = next();
      if (!v) return false;
      args.kernel = v;
    } else if (flag == "--semiring") {
      const char* v = next();
      if (!v) return false;
      args.semiring = v;
    } else if (flag == "--no-bitpack") {
      args.no_bitpack = true;
    } else if (flag == "--ksource-variant") {
      const char* v = next();
      if (!v) return false;
      args.ksource_variant = v;
    } else if (flag == "--no-early-exit") {
      args.no_early_exit = true;
    } else if (flag == "--fail-node") {
      const char* v = next();
      if (!v) return false;
      const char* at = std::strchr(v, '@');
      if (at == nullptr) {
        std::fprintf(stderr, "--fail-node expects NODE@STAGE, got '%s'\n", v);
        return false;
      }
      sparklet::NodeFailurePlan plan;
      plan.node = std::atoi(v);
      plan.at_stage = std::atoll(at + 1);
      if (plan.node < 0) {
        std::fprintf(stderr, "--fail-node: node must be >= 0, got %d\n",
                     plan.node);
        return false;
      }
      if (plan.at_stage < 0) {
        std::fprintf(stderr, "--fail-node: stage must be >= 0, got %lld\n",
                     static_cast<long long>(plan.at_stage));
        return false;
      }
      args.fail_nodes.push_back(plan);
    } else if (flag == "--fail-rack") {
      const char* v = next();
      if (!v) return false;
      const char* at = std::strchr(v, '@');
      if (at == nullptr) {
        std::fprintf(stderr, "--fail-rack expects RACK@STAGE, got '%s'\n", v);
        return false;
      }
      sparklet::RackFailurePlan plan;
      plan.rack = std::atoi(v);
      plan.at_stage = std::atoll(at + 1);
      if (plan.rack < 0) {
        std::fprintf(stderr, "--fail-rack: rack must be >= 0, got %d\n",
                     plan.rack);
        return false;
      }
      if (plan.at_stage < 0) {
        std::fprintf(stderr, "--fail-rack: stage must be >= 0, got %lld\n",
                     static_cast<long long>(plan.at_stage));
        return false;
      }
      args.fail_racks.push_back(plan);
    } else if (flag == "--add-node") {
      const char* v = next();
      if (!v) return false;
      if (v[0] != '@') {
        std::fprintf(stderr, "--add-node expects @STAGE, got '%s'\n", v);
        return false;
      }
      const std::int64_t at_stage = std::atoll(v + 1);
      if (at_stage < 0) {
        std::fprintf(stderr, "--add-node: stage must be >= 0, got %lld\n",
                     static_cast<long long>(at_stage));
        return false;
      }
      args.add_nodes.push_back(at_stage);
    } else if (flag == "--racks") {
      const char* v = next();
      if (!v) return false;
      args.racks = std::atoi(v);
      if (args.racks < 1) {
        std::fprintf(stderr, "--racks must be >= 1\n");
        return false;
      }
    } else if (flag == "--straggler-factor") {
      const char* v = next();
      if (!v) return false;
      args.straggler_factor = std::atof(v);
      if (args.straggler_factor < 1.0) {
        std::fprintf(stderr, "--straggler-factor must be >= 1\n");
        return false;
      }
    } else if (flag == "--straggler-every") {
      const char* v = next();
      if (!v) return false;
      args.straggler_every = std::atoi(v);
      if (args.straggler_every < 1) {
        std::fprintf(stderr, "--straggler-every must be >= 1\n");
        return false;
      }
    } else if (flag == "--speculate") {
      args.speculate = true;
    } else if (flag == "--directed") {
      args.directed = true;
    } else if (flag == "--fault-tolerant") {
      args.fault_tolerant = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

/// Writes a matrix/panel as whitespace-separated rows with full double
/// precision (the --output format of both the APSP and k-source modes).
bool WriteDenseBlock(const std::string& path, const linalg::DenseBlock& d) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out.precision(17);
  for (std::int64_t i = 0; i < d.rows(); ++i) {
    for (std::int64_t j = 0; j < d.cols(); ++j) {
      out << d.At(i, j) << (j + 1 == d.cols() ? '\n' : ' ');
    }
  }
  return true;
}

/// Deterministic source set for --sources K: evenly spread over the vertex
/// range (duplicates appear when K > n, which the solver permits).
std::vector<graph::VertexId> PickSources(std::int64_t n, std::int64_t k) {
  std::vector<graph::VertexId> sources;
  sources.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = 0; j < k; ++j) sources.push_back(j * n / k);
  return sources;
}

Result<apsp::SolverKind> ParseSolver(const std::string& name) {
  if (name == "rs") return apsp::SolverKind::kRepeatedSquaring;
  if (name == "fw2d") return apsp::SolverKind::kFloydWarshall2d;
  if (name == "im") return apsp::SolverKind::kBlockedInMemory;
  if (name == "cb") return apsp::SolverKind::kBlockedCollectBroadcast;
  return InvalidArgumentError("unknown solver '" + name + "'");
}

/// Membership plans that parse fine can still be nonsense for the actual
/// cluster: a node or rack id past the config, or the same plan armed twice
/// at one stage boundary (it would silently be a no-op — the second loss
/// finds the node already dead). Rejected here with a clear error instead.
bool ValidateMembershipPlans(const Args& args,
                             const sparklet::ClusterConfig& cluster) {
  for (std::size_t i = 0; i < args.fail_nodes.size(); ++i) {
    const auto& plan = args.fail_nodes[i];
    if (plan.node >= cluster.nodes) {
      std::fprintf(stderr,
                   "--fail-node %d@%lld: node out of range for a %d-node "
                   "cluster (valid: 0..%d)\n",
                   plan.node, static_cast<long long>(plan.at_stage),
                   cluster.nodes, cluster.nodes - 1);
      return false;
    }
    for (std::size_t j = i + 1; j < args.fail_nodes.size(); ++j) {
      if (args.fail_nodes[j].node == plan.node &&
          args.fail_nodes[j].at_stage == plan.at_stage) {
        std::fprintf(stderr,
                     "--fail-node %d@%lld given twice: a node dies once per "
                     "stage boundary\n",
                     plan.node, static_cast<long long>(plan.at_stage));
        return false;
      }
    }
  }
  for (std::size_t i = 0; i < args.fail_racks.size(); ++i) {
    const auto& plan = args.fail_racks[i];
    if (plan.rack >= args.racks) {
      std::fprintf(stderr,
                   "--fail-rack %d@%lld: rack out of range for --racks %d "
                   "(valid: 0..%d)\n",
                   plan.rack, static_cast<long long>(plan.at_stage),
                   args.racks, args.racks - 1);
      return false;
    }
    for (std::size_t j = i + 1; j < args.fail_racks.size(); ++j) {
      if (args.fail_racks[j].rack == plan.rack &&
          args.fail_racks[j].at_stage == plan.at_stage) {
        std::fprintf(stderr,
                     "--fail-rack %d@%lld given twice: a rack dies once per "
                     "stage boundary\n",
                     plan.rack, static_cast<long long>(plan.at_stage));
        return false;
      }
    }
  }
  return true;
}

/// Fault-tolerance report: printed whenever the run saw failures, replays,
/// restarts, speculation, or membership churn.
void PrintRecovery(const sparklet::SimMetrics& m) {
  if (m.executor_failures == 0 && m.recomputed_tasks == 0 &&
      m.task_retries == 0 && m.job_restarts == 0 &&
      m.speculative_tasks == 0 && m.migrated_partitions == 0 &&
      m.node_joins == 0) {
    return;
  }
  std::printf(
      "recovery: %llu executor losses, %llu recomputed tasks, "
      "%llu task retries, %llu checkpoint restarts, %llu speculative "
      "copies, %s of redone work\n",
      static_cast<unsigned long long>(m.executor_failures),
      static_cast<unsigned long long>(m.recomputed_tasks),
      static_cast<unsigned long long>(m.task_retries),
      static_cast<unsigned long long>(m.job_restarts),
      static_cast<unsigned long long>(m.speculative_tasks),
      FormatDuration(m.recovery_seconds).c_str());
  if (m.migrated_partitions > 0 || m.node_joins > 0) {
    std::printf(
        "rebalance: %llu node joins, %llu partitions rehomed, %s migrated "
        "in %s\n",
        static_cast<unsigned long long>(m.node_joins),
        static_cast<unsigned long long>(m.migrated_partitions),
        FormatBytes(m.migration_bytes).c_str(),
        FormatDuration(m.rebalance_seconds).c_str());
  }
}

/// Resolves --ksource-variant, including the adaptive "auto" choice from
/// the modelled staged-vs-shuffle cost (apsp/tuner.h).
Result<apsp::KsourceVariant> ResolveKsourceVariant(
    const Args& args, std::int64_t n, std::int64_t block_size,
    const sparklet::ClusterConfig& cluster) {
  if (args.ksource_variant == "auto") {
    apsp::KsourceTuneRequest request;
    request.n = n;
    request.num_sources = args.sources;
    request.block_size = block_size;
    request.cluster = cluster;
    request.directed = args.directed;
    request.require_fault_tolerance = args.fault_tolerant;
    auto chosen = apsp::ChooseKsourceVariant(request);
    if (chosen.ok()) {
      std::printf("auto-selected ksource data plane: %s\n",
                  apsp::KsourceVariantName(*chosen));
    }
    return chosen;
  }
  const auto variant = apsp::ParseKsourceVariant(args.ksource_variant);
  if (!variant.has_value()) {
    return InvalidArgumentError("unknown ksource variant '" +
                                args.ksource_variant + "'");
  }
  return *variant;
}

int RunSolve(const Args& args) {
  graph::Graph g(0);
  if (!args.input.empty()) {
    auto loaded = graph::ReadEdgeListTextFile(args.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    g = *loaded;
  } else if (args.n > 0) {
    g = graph::ErdosRenyi(args.n, graph::PaperEdgeProbability(args.n),
                          {1.0, 10.0}, args.seed, args.directed);
  } else {
    return Usage();
  }
  auto kind = ParseSolver(args.solver);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  apsp::ApspOptions options;
  const auto semiring = linalg::ParseSemiring(args.semiring);
  if (!semiring.has_value()) {
    std::fprintf(stderr, "unknown semiring '%s'\n", args.semiring.c_str());
    return 1;
  }
  options.semiring = *semiring;
  options.bitpack_boolean = !args.no_bitpack;
  options.block_size =
      args.block > 0 ? args.block
                     : std::max<std::int64_t>(1, g.num_vertices() / 4);
  options.partitioner = args.partitioner == "ph"
                            ? apsp::PartitionerKind::kPortableHash
                            : apsp::PartitionerKind::kMultiDiagonal;
  options.directed = args.directed;
  options.checkpoint_every = args.checkpoint_every;
  auto cluster = sparklet::ClusterConfig::TinyTest();
  cluster.nodes = std::max(1, args.cores / 2);
  cluster.cores_per_node = 2;
  cluster.local_storage_bytes = 64ULL * kGiB;
  const auto kernel = linalg::ParseKernelVariant(args.kernel);
  if (!kernel.has_value()) {
    std::fprintf(stderr, "unknown kernel variant '%s'\n", args.kernel.c_str());
    return 1;
  }
  cluster.kernel_variant = *kernel;
  cluster.intra_task_cores = args.intra_task_cores;
  cluster.straggler_factor = args.straggler_factor;
  cluster.straggler_every = args.straggler_every;
  cluster.speculation = args.speculate;
  cluster.racks = args.racks;
  if (!ValidateMembershipPlans(args, cluster)) return 2;

  if (args.sources > 0) {
    // Batched k-source mode: rectangular n x K frontier on the kernel
    // registry instead of the full APSP matrix.
    apsp::KsourceOptions kopts;
    kopts.block_size = options.block_size;
    kopts.semiring = options.semiring;
    kopts.partitioner = options.partitioner;
    kopts.directed = args.directed;
    kopts.early_exit_infinite = !args.no_early_exit;
    kopts.checkpoint_every = args.checkpoint_every;
    kopts.fail_nodes = args.fail_nodes;
    kopts.fail_racks = args.fail_racks;
    kopts.add_nodes = args.add_nodes;
    const auto variant = ResolveKsourceVariant(
        args, g.num_vertices(), kopts.block_size, cluster);
    if (!variant.ok()) {
      std::fprintf(stderr, "%s\n", variant.status().ToString().c_str());
      return 1;
    }
    kopts.variant = *variant;
    apsp::KsourceBlockedSolver ksolver;
    const auto sources = PickSources(g.num_vertices(), args.sources);
    std::printf(
        "solving %s k-source (k = %lld) with %s [%s%s] (b = %lld, %s)\n",
        g.Summary().c_str(), static_cast<long long>(args.sources),
        ksolver.name().c_str(), apsp::KsourceVariantName(kopts.variant),
        apsp::KsourceBlockedSolver::Pure(kopts.variant) ? ", pure"
                                                        : ", impure",
        static_cast<long long>(kopts.block_size),
        linalg::SemiringName(kopts.semiring));
    auto kresult = ksolver.SolveGraph(g, sources, kopts, cluster);
    if (!kresult.status.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   kresult.status.ToString().c_str());
      return 1;
    }
    std::printf("done: %lld pivots, simulated cluster time %s\n",
                static_cast<long long>(kresult.rounds_executed),
                FormatDuration(kresult.sim_seconds).c_str());
    std::printf("engine: %s\n", kresult.metrics.Summary().c_str());
    std::printf("memory: driver high-water %s, node high-water %s\n",
                FormatBytes(kresult.metrics.driver_peak_bytes).c_str(),
                FormatBytes(kresult.metrics.node_peak_bytes).c_str());
    PrintRecovery(kresult.metrics);
    if (!args.output.empty()) {
      if (!WriteDenseBlock(args.output, *kresult.distances)) return 1;
      std::printf("distance panel (n x k) written to %s\n",
                  args.output.c_str());
    }
    return 0;
  }

  auto solver = apsp::MakeSolver(*kind);
  options.fail_nodes = args.fail_nodes;
  options.fail_racks = args.fail_racks;
  options.add_nodes = args.add_nodes;
  std::printf("solving %s with %s (b = %lld%s, %s%s)\n", g.Summary().c_str(),
              solver->name().c_str(),
              static_cast<long long>(options.block_size),
              solver->pure() ? ", pure" : ", impure",
              linalg::SemiringName(options.semiring),
              options.semiring == linalg::SemiringId::kBoolean &&
                      options.bitpack_boolean
                  ? " bit-packed"
                  : "");
  auto result = solver->SolveGraph(g, options, cluster);
  if (!result.status.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status.ToString().c_str());
    return 1;
  }
  std::printf("done: %lld rounds, simulated cluster time %s\n",
              static_cast<long long>(result.rounds_executed),
              FormatDuration(result.sim_seconds).c_str());
  std::printf("engine: %s\n", result.metrics.Summary().c_str());
  PrintRecovery(result.metrics);
  if (!args.output.empty()) {
    if (!WriteDenseBlock(args.output, *result.distances)) return 1;
    std::printf("distances written to %s\n", args.output.c_str());
  }
  return 0;
}

int RunPlan(const Args& args) {
  if (args.n <= 1) return Usage();
  apsp::TuneRequest request;
  request.n = args.n;
  request.cluster = sparklet::ClusterConfig::PaperWithCores(args.cores);
  request.require_fault_tolerance = args.fault_tolerant;
  auto choice = apsp::TuneConfiguration(request);
  if (!choice.ok()) {
    std::fprintf(stderr, "%s\n", choice.status().ToString().c_str());
    return 1;
  }
  std::printf("recommended: %s, b = %lld, %s partitioner -> ~%s\n",
              apsp::SolverKindName(choice->solver),
              static_cast<long long>(choice->block_size),
              apsp::PartitionerKindName(choice->partitioner),
              FormatDuration(choice->projected_seconds).c_str());
  return 0;
}

int RunModel(const Args& args) {
  if (args.n <= 1) return Usage();
  const auto semiring = linalg::ParseSemiring(args.semiring);
  if (!semiring.has_value()) {
    std::fprintf(stderr, "unknown semiring '%s'\n", args.semiring.c_str());
    return 1;
  }
  if (args.sources > 0) {
    apsp::KsourceOptions kopts;
    kopts.block_size = args.block > 0 ? args.block : 1024;
    kopts.semiring = *semiring;
    kopts.max_rounds = args.rounds > 0 ? args.rounds : 1;
    kopts.directed = args.directed;
    kopts.early_exit_infinite = !args.no_early_exit;
    kopts.checkpoint_every = args.checkpoint_every;
    kopts.fail_nodes = args.fail_nodes;
    kopts.fail_racks = args.fail_racks;
    kopts.add_nodes = args.add_nodes;
    auto cluster = sparklet::ClusterConfig::PaperWithCores(
        args.cores > 4 ? args.cores : 1024);
    cluster.intra_task_cores = args.intra_task_cores;
    cluster.straggler_factor = args.straggler_factor;
    cluster.straggler_every = args.straggler_every;
    cluster.speculation = args.speculate;
    cluster.racks = args.racks;
    if (!ValidateMembershipPlans(args, cluster)) return 2;
    const auto variant =
        ResolveKsourceVariant(args, args.n, kopts.block_size, cluster);
    if (!variant.ok()) {
      std::fprintf(stderr, "%s\n", variant.status().ToString().c_str());
      return 1;
    }
    kopts.variant = *variant;
    apsp::KsourceBlockedSolver solver;
    auto result =
        solver.SolveModel(args.n, args.sources, kopts, cluster);
    std::printf("%s [%s], n = %lld, k = %lld, b = %lld on %s\n",
                solver.name().c_str(),
                apsp::KsourceVariantName(kopts.variant),
                static_cast<long long>(args.n),
                static_cast<long long>(args.sources),
                static_cast<long long>(kopts.block_size),
                cluster.Summary().c_str());
    std::printf("pivots: %lld of %lld, projected %s\n",
                static_cast<long long>(result.rounds_executed),
                static_cast<long long>(result.rounds_total),
                FormatDuration(result.projected_seconds).c_str());
    std::printf("engine: %s\n", result.metrics.Summary().c_str());
    std::printf("memory: driver high-water %s, node high-water %s\n",
                FormatBytes(result.metrics.driver_peak_bytes).c_str(),
                FormatBytes(result.metrics.node_peak_bytes).c_str());
    PrintRecovery(result.metrics);
    return result.status.ok() ? 0 : 1;
  }
  auto kind = ParseSolver(args.solver);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  apsp::ApspOptions options;
  options.block_size = args.block > 0 ? args.block : 1024;
  options.semiring = *semiring;
  options.bitpack_boolean = !args.no_bitpack;
  options.max_rounds = args.rounds > 0 ? args.rounds : 1;
  options.checkpoint_every = args.checkpoint_every;
  options.fail_nodes = args.fail_nodes;
  options.fail_racks = args.fail_racks;
  options.add_nodes = args.add_nodes;
  auto cluster = sparklet::ClusterConfig::PaperWithCores(
      args.cores > 4 ? args.cores : 1024);
  cluster.intra_task_cores = args.intra_task_cores;
  cluster.straggler_factor = args.straggler_factor;
  cluster.straggler_every = args.straggler_every;
  cluster.speculation = args.speculate;
  cluster.racks = args.racks;
  if (!ValidateMembershipPlans(args, cluster)) return 2;
  auto solver = apsp::MakeSolver(*kind);
  auto result = solver->SolveModel(args.n, options, cluster);
  std::printf("%s, n = %lld, b = %lld, %s%s on %s\n", solver->name().c_str(),
              static_cast<long long>(args.n),
              static_cast<long long>(options.block_size),
              linalg::SemiringName(options.semiring),
              options.semiring == linalg::SemiringId::kBoolean &&
                      options.bitpack_boolean
                  ? " bit-packed"
                  : "",
              cluster.Summary().c_str());
  std::printf("rounds: %lld of %lld, per-round %s, projected %s%s\n",
              static_cast<long long>(result.rounds_executed),
              static_cast<long long>(result.rounds_total),
              FormatDuration(result.SecondsPerRound()).c_str(),
              FormatDuration(result.projected_seconds).c_str(),
              result.projected_storage_exceeded ? "  [would exhaust storage]"
                                                : "");
  std::printf("engine: %s\n", result.metrics.Summary().c_str());
  PrintRecovery(result.metrics);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) return Usage();
  if (args.command == "solve") return RunSolve(args);
  if (args.command == "plan") return RunPlan(args);
  if (args.command == "model") return RunModel(args);
  return Usage();
}
