// Property and consistency tests across the solver suite: metric axioms on
// the outputs, equivalence across configurations, phantom/real timing
// consistency, projection consistency, fault tolerance of pure solvers, and
// resource-failure behaviour.
#include <gtest/gtest.h>

#include "apsp/solver.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "test_support.h"

namespace apspark {
namespace {

using apsp::ApspOptions;
using apsp::BlockLayout;
using apsp::MakeSolver;
using apsp::PartitionerKind;
using apsp::SolverKind;
using test::TestCluster;

TEST(SolverMeta, PurityFlagsMatchPaper) {
  EXPECT_FALSE(MakeSolver(SolverKind::kRepeatedSquaring)->pure());
  EXPECT_TRUE(MakeSolver(SolverKind::kFloydWarshall2d)->pure());
  EXPECT_TRUE(MakeSolver(SolverKind::kBlockedInMemory)->pure());
  EXPECT_FALSE(MakeSolver(SolverKind::kBlockedCollectBroadcast)->pure());
}

TEST(SolverMeta, IterationCountsMatchTable2) {
  // n = 262144, p = 1024, B = 2 — the iteration counts in Table 2.
  const std::int64_t n = 262144;
  EXPECT_EQ(MakeSolver(SolverKind::kRepeatedSquaring)
                ->TotalRounds(BlockLayout(n, 256)),
            18432);
  EXPECT_EQ(MakeSolver(SolverKind::kRepeatedSquaring)
                ->TotalRounds(BlockLayout(n, 4096)),
            1152);
  EXPECT_EQ(MakeSolver(SolverKind::kFloydWarshall2d)
                ->TotalRounds(BlockLayout(n, 1024)),
            262144);
  EXPECT_EQ(MakeSolver(SolverKind::kBlockedInMemory)
                ->TotalRounds(BlockLayout(n, 1024)),
            256);
  EXPECT_EQ(MakeSolver(SolverKind::kBlockedCollectBroadcast)
                ->TotalRounds(BlockLayout(n, 4096)),
            64);
}

struct PropertyCase {
  SolverKind solver;
  std::int64_t n;
  std::int64_t b;
  std::uint64_t seed;
};

class SolverProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SolverProperties, OutputIsAMetricAndMatchesReference) {
  const auto c = GetParam();
  APSPARK_SEEDED_CASE(c.seed);
  const graph::Graph g = graph::PaperErdosRenyi(c.n, c.seed);
  ApspOptions opts;
  opts.block_size = c.b;
  auto result = MakeSolver(c.solver)->SolveGraph(g, opts, TestCluster());
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.distances.has_value());
  const auto& d = *result.distances;
  // Metric axioms on the connected component(s).
  for (std::int64_t i = 0; i < c.n; ++i) {
    EXPECT_EQ(d.At(i, i), 0.0);
    for (std::int64_t j = i + 1; j < c.n; ++j) {
      EXPECT_EQ(d.At(i, j), d.At(j, i));
    }
  }
  // Triangle inequality on a deterministic sample of triples.
  Xoshiro256 rng(c.seed * 7 + 1);
  for (int t = 0; t < 200; ++t) {
    const auto i = static_cast<std::int64_t>(rng.NextBounded(
        static_cast<std::uint64_t>(c.n)));
    const auto j = static_cast<std::int64_t>(rng.NextBounded(
        static_cast<std::uint64_t>(c.n)));
    const auto k = static_cast<std::int64_t>(rng.NextBounded(
        static_cast<std::uint64_t>(c.n)));
    EXPECT_LE(d.At(i, j), d.At(i, k) + d.At(k, j) + 1e-9);
  }
  EXPECT_TRUE(d.ApproxEquals(graph::DijkstraAllPairs(g), 1e-9));
  // Timing/accounting sanity.
  EXPECT_GT(result.sim_seconds, 0.0);
  EXPECT_EQ(result.rounds_executed, result.rounds_total);
  EXPECT_DOUBLE_EQ(result.projected_seconds, result.sim_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverProperties,
    ::testing::Values(
        PropertyCase{SolverKind::kRepeatedSquaring, 48, 12, 1},
        PropertyCase{SolverKind::kFloydWarshall2d, 48, 12, 2},
        PropertyCase{SolverKind::kBlockedInMemory, 48, 12, 3},
        PropertyCase{SolverKind::kBlockedCollectBroadcast, 48, 12, 4},
        PropertyCase{SolverKind::kBlockedInMemory, 70, 16, 5},
        PropertyCase{SolverKind::kBlockedCollectBroadcast, 70, 32, 6}),
    [](const auto& info) {
      return std::string(1, "RFIC"[static_cast<int>(info.param.solver)]) +
             "_n" + std::to_string(info.param.n) + "_b" +
             std::to_string(info.param.b);
    });

TEST(SolverEquivalence, AllBlockSizesAgree) {
  const graph::Graph g = graph::PaperErdosRenyi(60, 9);
  const auto truth = graph::DijkstraAllPairs(g);
  for (SolverKind kind : apsp::AllSolverKinds()) {
    for (std::int64_t b : {1, 5, 20, 60, 100}) {
      ApspOptions opts;
      opts.block_size = b;
      auto result = MakeSolver(kind)->SolveGraph(g, opts, TestCluster());
      ASSERT_TRUE(result.status.ok())
          << SolverKindName(kind) << " b=" << b << ": "
          << result.status.ToString();
      EXPECT_TRUE(result.distances->ApproxEquals(truth, 1e-9))
          << SolverKindName(kind) << " b=" << b;
    }
  }
}

TEST(SolverConsistency, PhantomRunChargesSameTimeAsRealRun) {
  // The virtual clock must not depend on whether payloads are materialized:
  // a phantom (model) run of the same shape reports identical time. This is
  // the invariant that justifies paper-scale projections.
  const std::int64_t n = 64;
  for (SolverKind kind : apsp::AllSolverKinds()) {
    ApspOptions opts;
    opts.block_size = 16;
    opts.max_rounds = 2;
    auto solver = MakeSolver(kind);
    const graph::Graph g = graph::PaperErdosRenyi(n, 13);
    auto real = solver->SolveGraph(g, opts, TestCluster());
    auto phantom = solver->SolveModel(n, opts, TestCluster());
    ASSERT_TRUE(real.status.ok()) << SolverKindName(kind);
    ASSERT_TRUE(phantom.status.ok()) << SolverKindName(kind);
    EXPECT_NEAR(real.sim_seconds, phantom.sim_seconds,
                real.sim_seconds * 1e-9 + 1e-12)
        << SolverKindName(kind);
    EXPECT_EQ(real.metrics.shuffle_bytes, phantom.metrics.shuffle_bytes)
        << SolverKindName(kind);
    EXPECT_EQ(real.metrics.tasks, phantom.metrics.tasks)
        << SolverKindName(kind);
  }
}

TEST(SolverConsistency, ProjectionApproximatesFullRun) {
  // For the uniform-round solvers, projecting from a prefix of rounds must
  // land near the full-run simulated time.
  const std::int64_t n = 96;
  for (SolverKind kind : {SolverKind::kFloydWarshall2d,
                          SolverKind::kBlockedCollectBroadcast,
                          SolverKind::kBlockedInMemory}) {
    ApspOptions full_opts;
    full_opts.block_size = 16;
    auto solver = MakeSolver(kind);
    auto full = solver->SolveModel(n, full_opts, TestCluster());
    ASSERT_TRUE(full.status.ok());
    ApspOptions partial_opts = full_opts;
    partial_opts.max_rounds = std::max<std::int64_t>(1, full.rounds_total / 3);
    auto partial = solver->SolveModel(n, partial_opts, TestCluster());
    ASSERT_TRUE(partial.status.ok());
    EXPECT_NEAR(partial.projected_seconds, full.sim_seconds,
                full.sim_seconds * 0.25)
        << SolverKindName(kind);
  }
}

TEST(SolverFaults, PureSolversSurviveInjectedTaskFailures) {
  const graph::Graph g = graph::PaperErdosRenyi(40, 21);
  const auto truth = graph::DijkstraAllPairs(g);
  for (SolverKind kind : {SolverKind::kFloydWarshall2d,
                          SolverKind::kBlockedInMemory}) {
    auto solver = MakeSolver(kind);
    ASSERT_TRUE(solver->pure());
    const BlockLayout layout(40, 10);
    sparklet::SparkletContext ctx(TestCluster());
    // Fail assorted tasks of the per-iteration operators a few times.
    const char* stage = kind == SolverKind::kFloydWarshall2d
                            ? "fw2d-update"
                            : "im-phase3-unpack";
    for (int partition = 0; partition < 4; ++partition) {
      ctx.fault_injector().FailTask(stage, partition, 1);
    }
    ApspOptions opts;
    opts.block_size = 10;
    auto result = solver->Solve(
        ctx, layout, layout.Decompose(g.ToDenseAdjacency()), opts);
    ASSERT_TRUE(result.status.ok()) << SolverKindName(kind);
    EXPECT_GT(ctx.metrics().task_failures, 0u) << "no failure injected";
    ASSERT_TRUE(result.distances.has_value());
    EXPECT_TRUE(result.distances->ApproxEquals(truth, 1e-9))
        << SolverKindName(kind);
  }
}

TEST(SolverFaults, BlockedInMemoryDiesWhenLocalStorageTooSmall) {
  // The paper's §5.2 failure mode: shuffle spill grows every iteration and
  // eventually exceeds per-node local storage.
  auto cfg = sparklet::ClusterConfig::TinyTest();
  cfg.local_storage_bytes = 200 * kKiB;
  const graph::Graph g = graph::PaperErdosRenyi(64, 33);
  ApspOptions opts;
  opts.block_size = 8;
  auto result = MakeSolver(SolverKind::kBlockedInMemory)
                    ->SolveGraph(g, opts, cfg);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(result.distances.has_value());
  // Blocked-CB on the same budget survives: it shuffles far less data.
  auto cb = MakeSolver(SolverKind::kBlockedCollectBroadcast)
                ->SolveGraph(g, opts, cfg);
  EXPECT_TRUE(cb.status.ok()) << cb.status.ToString();
}

TEST(SolverFaults, ImpureSolverBreaksIfSideChannelCleared) {
  // Demonstrates why the paper calls CB "impure": its correctness depends
  // on out-of-lineage state. Clearing the shared storage mid-run (as a lost
  // scratch directory would) aborts the solve rather than recovering.
  const graph::Graph g = graph::PaperErdosRenyi(32, 41);
  const BlockLayout layout(32, 8);
  sparklet::SparkletContext ctx(TestCluster());
  // Run one round, then clear storage and observe a later read fail when a
  // dropped partition forces recomputation against missing files.
  ApspOptions opts;
  opts.block_size = 8;
  auto solver = MakeSolver(SolverKind::kBlockedCollectBroadcast);
  auto result = solver->Solve(ctx, layout,
                              layout.Decompose(g.ToDenseAdjacency()), opts);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(ctx.shared_storage().object_count(), 0u);
  ctx.shared_storage().Clear();
  // The already-produced result is fine; the point is the dependency.
  EXPECT_TRUE(result.distances.has_value());
}

TEST(SolverScaling, LargeProblemsBenefitFromMoreCores) {
  // On a compute-heavy configuration, 16x the cores must cut the simulated
  // round time substantially. (On problems too small for the partition
  // count, extra cores can *hurt* via task overhead — the p < 256 dip the
  // paper mentions in §5.4 — so this intentionally uses a large n.)
  for (SolverKind kind : {SolverKind::kBlockedCollectBroadcast,
                          SolverKind::kBlockedInMemory}) {
    ApspOptions opts;
    opts.block_size = 2048;
    opts.max_rounds = 1;
    auto solver = MakeSolver(kind);
    auto small = solver->SolveModel(
        65536, opts, sparklet::ClusterConfig::PaperWithCores(64));
    auto large = solver->SolveModel(
        65536, opts, sparklet::ClusterConfig::PaperWithCores(1024));
    ASSERT_TRUE(small.status.ok());
    ASSERT_TRUE(large.status.ok());
    EXPECT_LT(large.sim_seconds, small.sim_seconds * 0.5)
        << SolverKindName(kind);
  }
}

TEST(SolverDegenerate, SingleVertexAndSingleBlock) {
  graph::Graph g(1);
  for (SolverKind kind : apsp::AllSolverKinds()) {
    ApspOptions opts;
    opts.block_size = 4;
    auto result = MakeSolver(kind)->SolveGraph(g, opts, TestCluster());
    ASSERT_TRUE(result.status.ok()) << SolverKindName(kind);
    ASSERT_TRUE(result.distances.has_value());
    EXPECT_EQ(result.distances->At(0, 0), 0.0);
  }
}

TEST(SolverDegenerate, BlockSizeLargerThanMatrix) {
  const graph::Graph g = graph::PathGraph(10, 3.0);
  for (SolverKind kind : apsp::AllSolverKinds()) {
    ApspOptions opts;
    opts.block_size = 64;  // single block
    auto result = MakeSolver(kind)->SolveGraph(g, opts, TestCluster());
    ASSERT_TRUE(result.status.ok()) << SolverKindName(kind);
    EXPECT_EQ(result.distances->At(0, 9), 27.0);
  }
}

TEST(SolverStructured, KnownDistancesOnFamilies) {
  // Cycle: d(0, k) = min(k, n-k) * w; star: 2w between leaves.
  const graph::Graph cycle = graph::CycleGraph(12, 2.0);
  const graph::Graph star = graph::StarGraph(9, 1.5);
  for (SolverKind kind : apsp::AllSolverKinds()) {
    ApspOptions opts;
    opts.block_size = 5;
    auto rc = MakeSolver(kind)->SolveGraph(cycle, opts, TestCluster());
    ASSERT_TRUE(rc.status.ok());
    EXPECT_EQ(rc.distances->At(0, 6), 12.0);
    EXPECT_EQ(rc.distances->At(0, 11), 2.0);
    auto rs = MakeSolver(kind)->SolveGraph(star, opts, TestCluster());
    ASSERT_TRUE(rs.status.ok());
    EXPECT_EQ(rs.distances->At(3, 7), 3.0);
    EXPECT_EQ(rs.distances->At(0, 8), 1.5);
  }
}

}  // namespace
}  // namespace apspark
