// Batched k-source shortest paths: every kernel variant's n x k panel is
// locked to the scalar oracle (columns of ReferenceFloydWarshall).
//
// Oracle strategy: the randomized sweeps draw graphs with *integer* weights,
// where every path sum is exact in double precision — so the blocked frontier
// sweep must agree with the textbook Floyd-Warshall not just approximately
// but bit for bit, in all three registry variants. A separate suite with
// fractional weights checks the registry's cross-variant bitwise guarantee
// plus tolerance-level agreement with the oracle (different algorithms may
// associate FP sums differently in the last ulp).
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "apsp/solvers/ksource_blocked.h"
#include "common/rng.h"
#include "graph/shortest_paths.h"
#include "linalg/kernels.h"
#include "test_support.h"

namespace apspark {
namespace {

using apsp::KsourceBlockedSolver;
using apsp::KsourceOptions;
using graph::Graph;
using graph::VertexId;
using linalg::DenseBlock;
using linalg::KernelVariant;
using linalg::kInf;
using test::ExpectBitwiseEqual;
using test::RandomGraphOptions;
using test::RandomTestGraph;
using test::TestCluster;

constexpr KernelVariant kVariants[] = {KernelVariant::kNaive,
                                       KernelVariant::kTiled,
                                       KernelVariant::kTiledParallel};

/// Scalar oracle: full textbook Floyd-Warshall, then the k-source panel is
/// read off as oracle(v, j) = dist(sources[j] -> v).
DenseBlock OraclePanel(const Graph& g, const std::vector<VertexId>& sources) {
  DenseBlock d = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(d);
  DenseBlock out(g.num_vertices(), static_cast<std::int64_t>(sources.size()),
                 kInf);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    for (std::size_t j = 0; j < sources.size(); ++j) {
      out.Set(v, static_cast<std::int64_t>(j), d.At(sources[j], v));
    }
  }
  return out;
}

apsp::KsourceResult RunKsource(
    const Graph& g, const std::vector<VertexId>& sources,
    std::int64_t block_size, KernelVariant variant,
    apsp::KsourceVariant data_plane = apsp::KsourceVariant::kStagedStorage) {
  KsourceOptions opts;
  opts.block_size = block_size;
  opts.variant = data_plane;
  auto cluster = TestCluster();
  cluster.kernel_variant = variant;
  KsourceBlockedSolver solver;
  return solver.SolveGraph(g, sources, opts, cluster);
}

// --- rectangular kernel, all variants ------------------------------------

TEST(KsourceKernel, RectUpdateBitwiseAcrossVariantsRandomized) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed);
    const std::int64_t m = 1 + static_cast<std::int64_t>(rng.NextBounded(90));
    const std::int64_t kk = 1 + static_cast<std::int64_t>(rng.NextBounded(90));
    // Panel widths straddle the accumulator width (32) and the narrow/wide
    // crossover (64), including non-multiples of both.
    const std::int64_t w = 1 + static_cast<std::int64_t>(rng.NextBounded(100));
    DenseBlock a(m, kk, 0.0);
    DenseBlock p(kk, w, 0.0);
    DenseBlock base(m, w, 0.0);
    for (double& v : a) v = rng.NextDouble() < 0.25 ? kInf : rng.NextDouble(0, 9);
    for (double& v : p) v = rng.NextDouble() < 0.25 ? kInf : rng.NextDouble(0, 9);
    for (double& v : base) {
      v = rng.NextDouble() < 0.25 ? kInf : rng.NextDouble(0, 20);
    }

    DenseBlock reference = base;
    linalg::MinPlusAccumulateRawNaive(m, w, kk, a.data(), kk, p.data(), w,
                                      reference.mutable_data(), w);
    for (KernelVariant variant : kVariants) {
      linalg::ScopedKernelVariant scope(variant);
      DenseBlock c = base;
      linalg::MinPlusUpdateRect(a, p, c);
      ExpectBitwiseEqual(c, reference,
                         std::string("variant ") +
                             linalg::KernelVariantName(variant) + " m=" +
                             std::to_string(m) + " k=" + std::to_string(kk) +
                             " w=" + std::to_string(w));
    }
  }
}

TEST(KsourceKernel, RectUpdatePropagatesPhantoms) {
  const DenseBlock a = DenseBlock::Phantom(8, 8);
  const DenseBlock p(8, 3, 1.0);
  DenseBlock c(8, 3, 2.0);
  linalg::MinPlusUpdateRect(a, p, c);
  EXPECT_TRUE(c.is_phantom());
  EXPECT_EQ(c.rows(), 8);
  EXPECT_EQ(c.cols(), 3);
}

// --- solver vs scalar oracle, randomized ----------------------------------

TEST(KsourceSolver, MatchesOracleBitwiseOnRandomizedIntegerGraphs) {
  // >= 20 randomized graph/k combinations x all three variants, bitwise.
  RandomGraphOptions graph_opts;
  graph_opts.integer_weights = true;
  graph_opts.max_vertices = 72;
  int combos = 0;
  for (std::uint64_t seed = 100; seed < 122; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed);
    const Graph g = RandomTestGraph(rng, graph_opts);
    const std::int64_t n = g.num_vertices();
    // k spans 1 .. beyond n (duplicate sources), deliberately including
    // widths that are not multiples of the panel tile width.
    const std::int64_t k =
        1 + static_cast<std::int64_t>(rng.NextBounded(
                static_cast<std::uint64_t>(n + n / 2 + 2)));
    std::vector<VertexId> sources;
    sources.reserve(static_cast<std::size_t>(k));
    for (std::int64_t j = 0; j < k; ++j) {
      sources.push_back(
          static_cast<VertexId>(rng.NextBounded(static_cast<std::uint64_t>(n))));
    }
    const std::int64_t block_size =
        1 + static_cast<std::int64_t>(rng.NextBounded(
                static_cast<std::uint64_t>(n + 4)));
    const DenseBlock oracle = OraclePanel(g, sources);
    for (KernelVariant variant : kVariants) {
      auto result = RunKsource(g, sources, block_size, variant);
      ASSERT_TRUE(result.status.ok())
          << linalg::KernelVariantName(variant) << ": "
          << result.status.ToString();
      ASSERT_TRUE(result.distances.has_value());
      ExpectBitwiseEqual(*result.distances, oracle,
                         std::string(linalg::KernelVariantName(variant)) +
                             " n=" + std::to_string(n) + " k=" +
                             std::to_string(k) + " b=" +
                             std::to_string(block_size) +
                             (g.directed() ? " directed" : " undirected"));
    }
    ++combos;
  }
  EXPECT_GE(combos, 20);
}

TEST(KsourceSolver, FractionalWeightsVariantsAgreeBitwiseAndMatchOracle) {
  // With fractional weights different algorithms may differ in the last ulp
  // from the oracle, but the three registry variants must still be bitwise
  // identical to each other (block_size <= fw_block keeps the diagonal close
  // on the identical scalar path in every variant).
  RandomGraphOptions graph_opts;
  graph_opts.integer_weights = false;
  graph_opts.max_vertices = 64;
  for (std::uint64_t seed = 300; seed < 306; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed);
    const Graph g = RandomTestGraph(rng, graph_opts);
    const std::int64_t n = g.num_vertices();
    const std::int64_t k =
        1 + static_cast<std::int64_t>(rng.NextBounded(
                static_cast<std::uint64_t>(n)));
    std::vector<VertexId> sources;
    for (std::int64_t j = 0; j < k; ++j) {
      sources.push_back(
          static_cast<VertexId>(rng.NextBounded(static_cast<std::uint64_t>(n))));
    }
    const std::int64_t block_size =
        1 + static_cast<std::int64_t>(rng.NextBounded(24));
    const DenseBlock oracle = OraclePanel(g, sources);
    std::optional<DenseBlock> naive_panel;
    for (KernelVariant variant : kVariants) {
      auto result = RunKsource(g, sources, block_size, variant);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      ASSERT_TRUE(result.distances.has_value());
      EXPECT_TRUE(result.distances->ApproxEquals(oracle, 1e-9))
          << linalg::KernelVariantName(variant) << ": max diff "
          << result.distances->MaxAbsDiff(oracle);
      if (!naive_panel.has_value()) {
        naive_panel = *result.distances;
      } else {
        ExpectBitwiseEqual(*result.distances, *naive_panel,
                           linalg::KernelVariantName(variant));
      }
    }
  }
}

// --- deliberate edge shapes ------------------------------------------------

TEST(KsourceSolver, SingleSourceMatchesDijkstra) {
  // Dijkstra associates FP path sums differently, so compare within
  // tolerance (the bitwise suites above pin the exact-arithmetic cases).
  const Graph g = graph::PaperErdosRenyi(60, 17);
  const auto truth = graph::DijkstraAllPairs(g);
  for (KernelVariant variant : kVariants) {
    auto result = RunKsource(g, {42}, 16, variant);
    ASSERT_TRUE(result.status.ok());
    const DenseBlock& panel = *result.distances;
    ASSERT_EQ(panel.cols(), 1);
    for (std::int64_t v = 0; v < 60; ++v) {
      if (std::isinf(truth.At(42, v))) {
        EXPECT_TRUE(std::isinf(panel.At(v, 0))) << "v=" << v;
      } else {
        EXPECT_NEAR(panel.At(v, 0), truth.At(42, v), 1e-9) << "v=" << v;
      }
    }
  }
}

TEST(KsourceSolver, MoreSourcesThanVerticesWithDuplicates) {
  const Graph g = graph::CycleGraph(6, 2.0);
  std::vector<VertexId> sources = {0, 1, 2, 3, 4, 5, 0, 3, 3};  // k = 9 > n
  const DenseBlock oracle = OraclePanel(g, sources);
  for (KernelVariant variant : kVariants) {
    auto result = RunKsource(g, sources, 4, variant);
    ASSERT_TRUE(result.status.ok());
    ExpectBitwiseEqual(*result.distances, oracle,
                       linalg::KernelVariantName(variant));
  }
}

TEST(KsourceSolver, PanelWidthNotDivisibleByTileWidth) {
  // 33 columns straddles the 32-wide accumulator; 65 straddles the
  // narrow/wide crossover at 64. Integer weights keep the oracle bitwise.
  RandomGraphOptions graph_opts;
  graph_opts.integer_weights = true;
  graph_opts.allow_directed = false;
  graph_opts.min_vertices = 70;
  graph_opts.max_vertices = 70;
  for (std::int64_t k : {33, 65}) {
    Xoshiro256 rng(static_cast<std::uint64_t>(k) * 31 + 7);
    const Graph g = RandomTestGraph(rng, graph_opts);
    std::vector<VertexId> sources;
    for (std::int64_t j = 0; j < k; ++j) {
      sources.push_back(static_cast<VertexId>(
          rng.NextBounded(static_cast<std::uint64_t>(g.num_vertices()))));
    }
    const DenseBlock oracle = OraclePanel(g, sources);
    for (KernelVariant variant : kVariants) {
      auto result = RunKsource(g, sources, 16, variant);
      ASSERT_TRUE(result.status.ok());
      ExpectBitwiseEqual(*result.distances, oracle,
                         std::string(linalg::KernelVariantName(variant)) +
                             " k=" + std::to_string(k));
    }
  }
}

TEST(KsourceSolver, SingleNodeGraph) {
  const Graph g(1);
  for (KernelVariant variant : kVariants) {
    auto result = RunKsource(g, {0, 0, 0}, 4, variant);
    ASSERT_TRUE(result.status.ok());
    const DenseBlock& panel = *result.distances;
    EXPECT_EQ(panel.rows(), 1);
    EXPECT_EQ(panel.cols(), 3);
    for (std::int64_t j = 0; j < 3; ++j) EXPECT_EQ(panel.At(0, j), 0.0);
  }
}

TEST(KsourceSolver, DirectedDistancesAreSourceRooted) {
  // 0 -> 1 -> 2 -> 3 path digraph: distances from 0 grow along the chain;
  // nothing reaches 0 back.
  Graph g(4, /*directed=*/true);
  g.AddEdge(0, 1, 1.0).CheckOk();
  g.AddEdge(1, 2, 1.0).CheckOk();
  g.AddEdge(2, 3, 1.0).CheckOk();
  for (KernelVariant variant : kVariants) {
    auto result = RunKsource(g, {0, 3}, 2, variant);
    ASSERT_TRUE(result.status.ok());
    const DenseBlock& panel = *result.distances;
    EXPECT_EQ(panel.At(0, 0), 0.0);
    EXPECT_EQ(panel.At(1, 0), 1.0);
    EXPECT_EQ(panel.At(2, 0), 2.0);
    EXPECT_EQ(panel.At(3, 0), 3.0);
    EXPECT_TRUE(std::isinf(panel.At(0, 1)));  // 3 reaches nothing
    EXPECT_TRUE(std::isinf(panel.At(2, 1)));
    EXPECT_EQ(panel.At(3, 1), 0.0);
  }
}

TEST(KsourceSolver, DisconnectedPairsStayInfinite) {
  const Graph g = test::TwoComponentGraph(16, 5, 6);
  std::vector<VertexId> sources = {0, 20};
  const DenseBlock oracle = OraclePanel(g, sources);
  auto result = RunKsource(g, sources, 8, KernelVariant::kTiled);
  ASSERT_TRUE(result.status.ok());
  const DenseBlock& panel = *result.distances;
  EXPECT_TRUE(panel.ApproxEquals(oracle, 1e-9));
  // Cross-component distances are +inf by construction.
  EXPECT_TRUE(std::isinf(panel.At(20, 0)));
  EXPECT_TRUE(std::isinf(panel.At(0, 1)));
}

// --- pure shuffle-replicated variant ---------------------------------------

TEST(KsourceShuffleVariant, MatchesOracleBitwiseOnRandomizedIntegerGraphs) {
  // The pure variant replicates pivot factors through the shuffle instead of
  // shared storage; its panel must stay bitwise-locked to the scalar oracle
  // on the same regimes the staged variant is locked on (directed,
  // disconnected, duplicate sources, ragged block sizes).
  RandomGraphOptions graph_opts;
  graph_opts.integer_weights = true;
  graph_opts.max_vertices = 64;
  for (std::uint64_t seed = 500; seed < 510; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed);
    const Graph g = RandomTestGraph(rng, graph_opts);
    const std::int64_t n = g.num_vertices();
    const std::int64_t k =
        1 + static_cast<std::int64_t>(rng.NextBounded(
                static_cast<std::uint64_t>(n + 2)));
    std::vector<VertexId> sources;
    for (std::int64_t j = 0; j < k; ++j) {
      sources.push_back(
          static_cast<VertexId>(rng.NextBounded(static_cast<std::uint64_t>(n))));
    }
    const std::int64_t block_size =
        1 + static_cast<std::int64_t>(rng.NextBounded(
                static_cast<std::uint64_t>(n + 4)));
    const DenseBlock oracle = OraclePanel(g, sources);
    for (KernelVariant variant : kVariants) {
      auto result = RunKsource(g, sources, block_size, variant,
                               apsp::KsourceVariant::kShuffleReplicated);
      ASSERT_TRUE(result.status.ok())
          << linalg::KernelVariantName(variant) << ": "
          << result.status.ToString();
      ASSERT_TRUE(result.distances.has_value());
      ExpectBitwiseEqual(*result.distances, oracle,
                         std::string("shuffle variant, kernel ") +
                             linalg::KernelVariantName(variant) + " n=" +
                             std::to_string(n) + " k=" + std::to_string(k) +
                             " b=" + std::to_string(block_size));
    }
  }
}

TEST(KsourceShuffleVariant, UsesNoSharedStorageAndAgreesWithStaged) {
  const Graph g = graph::PaperErdosRenyi(72, 19);
  const std::vector<VertexId> sources = {3, 17, 41, 66};
  auto staged = RunKsource(g, sources, 16, KernelVariant::kTiled,
                           apsp::KsourceVariant::kStagedStorage);
  auto shuffle = RunKsource(g, sources, 16, KernelVariant::kTiled,
                            apsp::KsourceVariant::kShuffleReplicated);
  ASSERT_TRUE(staged.status.ok());
  ASSERT_TRUE(shuffle.status.ok());
  ExpectBitwiseEqual(*shuffle.distances, *staged.distances,
                     "shuffle vs staged");
  // Pure in the paper's sense: nothing moved through the side channel.
  EXPECT_EQ(shuffle.metrics.shared_fs_written_bytes, 0u);
  EXPECT_EQ(shuffle.metrics.shared_fs_read_bytes, 0u);
  EXPECT_GT(staged.metrics.shared_fs_written_bytes, 0u);
  // And it pays for that purity through the shuffle instead.
  EXPECT_GT(shuffle.metrics.shuffle_bytes, staged.metrics.shuffle_bytes);
  EXPECT_TRUE(apsp::KsourceBlockedSolver::Pure(
      apsp::KsourceVariant::kShuffleReplicated));
  EXPECT_FALSE(apsp::KsourceBlockedSolver::Pure(
      apsp::KsourceVariant::kStagedStorage));
}

// --- early-exit pivot sweep -------------------------------------------------

/// TwoComponentGraph with weights floored to integers, so the scalar oracle
/// comparison can be bitwise (exact path sums).
Graph IntegerTwoComponentGraph(VertexId n_each, std::uint64_t seed_a,
                               std::uint64_t seed_b) {
  const Graph g = test::TwoComponentGraph(n_each, seed_a, seed_b);
  Graph gi(g.num_vertices(), g.directed());
  for (const auto& e : g.edges()) {
    gi.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  return gi;
}

TEST(KsourceEarlyExit, DisconnectedGraphOutputIdenticalWithAndWithoutSkip) {
  // Property: on TwoComponentGraph inputs the all-infinite-cross early exit
  // must change nothing but the work done. Both data-plane variants, several
  // layouts (aligned and misaligned with the component boundary), bitwise.
  for (std::uint64_t seed = 700; seed < 704; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    const Graph g = IntegerTwoComponentGraph(16, seed, seed + 50);  // n = 32
    const std::vector<VertexId> sources = {0, 5, 17, 31};
    const DenseBlock oracle = OraclePanel(g, sources);
    for (auto data_plane : {apsp::KsourceVariant::kStagedStorage,
                            apsp::KsourceVariant::kShuffleReplicated}) {
      // b = 16 aligns each component with exactly one block (every pivot
      // cross is all-infinite: the skip fires on all pivots); b = 6 leaves
      // blocks straddling the cut (the skip never fires). Identical output
      // either way is the property under test.
      for (std::int64_t b : {6, 16}) {
        KsourceOptions with_skip;
        with_skip.block_size = b;
        with_skip.variant = data_plane;
        KsourceOptions without_skip = with_skip;
        without_skip.early_exit_infinite = false;
        KsourceBlockedSolver solver;
        auto on = solver.SolveGraph(g, sources, with_skip, TestCluster());
        auto off = solver.SolveGraph(g, sources, without_skip, TestCluster());
        ASSERT_TRUE(on.status.ok());
        ASSERT_TRUE(off.status.ok());
        const std::string label =
            std::string(apsp::KsourceVariantName(data_plane)) + " b=" +
            std::to_string(b);
        ExpectBitwiseEqual(*on.distances, *off.distances, label);
        ExpectBitwiseEqual(*on.distances, oracle, label + " vs oracle");
        if (b == 16) {
          // Every pivot skipped: phases 2/3 and the factor sweep never ran,
          // so the modelled kernel time must drop despite the added scan.
          EXPECT_LT(on.metrics.compute_seconds, off.metrics.compute_seconds)
              << label;
        }
      }
    }
  }
}

TEST(KsourceEarlyExit, ConnectedGraphNeverSkips) {
  // On a connected graph no pivot cross is all-infinite, so the early exit
  // must add only the detection scan — same stage structure either way.
  const Graph g = graph::PaperErdosRenyi(48, 29);
  const std::vector<VertexId> sources = {1, 30};
  KsourceOptions on;
  on.block_size = 12;
  KsourceOptions off = on;
  off.early_exit_infinite = false;
  KsourceBlockedSolver solver;
  auto run_on = solver.SolveGraph(g, sources, on, TestCluster());
  auto run_off = solver.SolveGraph(g, sources, off, TestCluster());
  ASSERT_TRUE(run_on.status.ok());
  ASSERT_TRUE(run_off.status.ok());
  ExpectBitwiseEqual(*run_on.distances, *run_off.distances, "on vs off");
  // Detection adds exactly one scan stage (a collect) per pivot.
  EXPECT_EQ(run_on.metrics.stages,
            run_off.metrics.stages + run_on.rounds_executed);
}

// --- engine-level properties ----------------------------------------------

TEST(KsourceSolver, PhantomRunChargesSameTimeAsRealRun) {
  // The virtual clock must not depend on payload materialization, the same
  // invariant the APSP solvers keep (it justifies paper-scale projections).
  const Graph g = graph::PaperErdosRenyi(48, 23);
  KsourceOptions opts;
  opts.block_size = 12;
  std::vector<VertexId> sources = {1, 9, 17, 33, 41};
  KsourceBlockedSolver solver;
  auto real = solver.SolveGraph(g, sources, opts, TestCluster());
  auto phantom = solver.SolveModel(
      48, static_cast<std::int64_t>(sources.size()), opts, TestCluster());
  ASSERT_TRUE(real.status.ok());
  ASSERT_TRUE(phantom.status.ok());
  EXPECT_FALSE(phantom.distances.has_value());
  EXPECT_NEAR(real.sim_seconds, phantom.sim_seconds,
              real.sim_seconds * 1e-9 + 1e-12);
  EXPECT_EQ(real.metrics.shuffle_bytes, phantom.metrics.shuffle_bytes);
  EXPECT_EQ(real.metrics.tasks, phantom.metrics.tasks);
}

TEST(KsourceSolver, ProjectionApproximatesFullRun) {
  KsourceOptions full_opts;
  full_opts.block_size = 16;
  KsourceBlockedSolver solver;
  auto full = solver.SolveModel(96, 8, full_opts, TestCluster());
  ASSERT_TRUE(full.status.ok());
  EXPECT_EQ(full.rounds_executed, full.rounds_total);
  KsourceOptions partial_opts = full_opts;
  partial_opts.max_rounds = 2;
  auto partial = solver.SolveModel(96, 8, partial_opts, TestCluster());
  ASSERT_TRUE(partial.status.ok());
  EXPECT_EQ(partial.rounds_executed, 2);
  EXPECT_NEAR(partial.projected_seconds, full.sim_seconds,
              full.sim_seconds * 0.25);
}

TEST(KsourceSolver, RejectsInvalidSources) {
  const Graph g = graph::PathGraph(5);
  KsourceBlockedSolver solver;
  KsourceOptions opts;
  opts.block_size = 2;
  EXPECT_EQ(solver.SolveGraph(g, {}, opts, TestCluster()).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(solver.SolveGraph(g, {5}, opts, TestCluster()).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(solver.SolveGraph(g, {-1}, opts, TestCluster()).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(solver.SolveModel(5, 0, opts, TestCluster()).status.code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace apspark
