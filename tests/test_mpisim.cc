// Tests for the MPI reference solvers: the real Kleene divide-and-conquer
// algorithm, the FW-2D baseline, grid validation, and cost-model shape.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "mpisim/mpi_solvers.h"

namespace apspark::mpisim {
namespace {

TEST(ProcessGrid, SquareCounts) {
  EXPECT_TRUE(IsSquareProcessCount(64));
  EXPECT_TRUE(IsSquareProcessCount(1024));
  EXPECT_FALSE(IsSquareProcessCount(128));
  EXPECT_FALSE(IsSquareProcessCount(0));
  EXPECT_FALSE(IsSquareProcessCount(-4));
}

TEST(Kleene, MatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const graph::Graph g = graph::PaperErdosRenyi(90, seed + 50);
    linalg::DenseBlock a = g.ToDenseAdjacency();
    DcMpiSolver::KleeneApsp(a);
    EXPECT_TRUE(a.ApproxEquals(graph::DijkstraAllPairs(g), 1e-9));
  }
}

TEST(Kleene, HandlesOddSizesAndBaseCaseBoundary) {
  for (std::int64_t n : {1, 2, 31, 32, 33, 65}) {
    const graph::Graph g =
        graph::PaperErdosRenyi(n, static_cast<std::uint64_t>(n));
    linalg::DenseBlock a = g.ToDenseAdjacency();
    DcMpiSolver::KleeneApsp(a);
    EXPECT_TRUE(a.ApproxEquals(graph::DijkstraAllPairs(g), 1e-9)) << n;
  }
}

TEST(Kleene, DirectedGraph) {
  const graph::Graph g =
      graph::ErdosRenyi(60, 0.15, {1, 5}, 7, /*directed=*/true);
  linalg::DenseBlock a = g.ToDenseAdjacency();
  DcMpiSolver::KleeneApsp(a);
  auto truth = graph::JohnsonAllPairs(g);
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(a.ApproxEquals(*truth, 1e-9));
}

TEST(Fw2dMpi, SolvesAndCharges) {
  const graph::Graph g = graph::PaperErdosRenyi(64, 3);
  Fw2dMpiSolver solver;
  auto result = solver.Solve(g.ToDenseAdjacency(), 4);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.distances->ApproxEquals(graph::DijkstraAllPairs(g),
                                             1e-9));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_EQ(result.metrics.supersteps, 64);
}

TEST(Fw2dMpi, RejectsNonSquareGrid) {
  Fw2dMpiSolver solver;
  EXPECT_EQ(solver.Model(1024, 48).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(DcMpi, SolveMatchesReference) {
  const graph::Graph g = graph::PaperErdosRenyi(64, 4);
  DcMpiSolver solver;
  auto result = solver.Solve(g.ToDenseAdjacency(), 16);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.distances->ApproxEquals(graph::DijkstraAllPairs(g),
                                             1e-9));
}

TEST(MpiModel, WeakScalingShape) {
  // The shape the paper's Table 3 shows: the optimized DC solver beats the
  // naive FW-2D everywhere, and the gap grows with scale.
  Fw2dMpiSolver fw;
  DcMpiSolver dc;
  double prev_ratio = 0;
  for (int p : {64, 256, 1024}) {
    const std::int64_t n = 256LL * p;
    const double t_fw = fw.Model(n, p).seconds;
    const double t_dc = dc.Model(n, p).seconds;
    EXPECT_GT(t_fw, t_dc) << "p=" << p;
    const double ratio = t_fw / t_dc;
    EXPECT_GE(ratio, prev_ratio * 0.8) << "p=" << p;
    prev_ratio = ratio;
  }
}

TEST(MpiModel, BroadcastGrowsWithRanksAndBytes) {
  MpiTuning tuning;
  EXPECT_GT(tuning.BroadcastSeconds(1 * kMiB, 32),
            tuning.BroadcastSeconds(1 * kMiB, 4));
  EXPECT_GT(tuning.BroadcastSeconds(8 * kMiB, 8),
            tuning.BroadcastSeconds(1 * kMiB, 8));
}

TEST(MpiModel, Fw2dTimeGrowsSuperlinearlyInN) {
  // FW-2D runs n supersteps of O(n^2/p) work plus per-step broadcasts, so
  // doubling n multiplies time by 2x (latency-bound) to 8x (compute-bound).
  Fw2dMpiSolver fw;
  const auto r1 = fw.Model(4096, 64);
  const auto r2 = fw.Model(8192, 64);
  EXPECT_GT(r2.seconds, r1.seconds * 2);
  EXPECT_LT(r2.seconds, r1.seconds * 8);
  // At large n the update term dominates and the growth approaches cubic.
  const auto r3 = fw.Model(65536, 64);
  const auto r4 = fw.Model(131072, 64);
  EXPECT_GT(r4.seconds, r3.seconds * 6);
}

}  // namespace
}  // namespace apspark::mpisim
