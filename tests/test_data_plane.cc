// Zero-copy data plane: BlockRef sharing, the DenseBlock copy accounting,
// the shared-storage block store, and the memory accountant.
//
// The lock this suite provides: whole solves — shuffle solvers, staged
// solvers, both KSSP variants — must finish with ZERO unsanctioned deep
// copies of block payloads. Every payload duplication in the engine is an
// explicit copy-on-write mutation site (a kernel copying its base block
// before updating in place) or a durability re-materialization (checkpoint
// load), both under CowScope. Shuffle buckets, cached partitions, staged
// reads, and driver collects move refs only.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apsp/solver.h"
#include "apsp/solvers/ksource_blocked.h"
#include "graph/generators.h"
#include "linalg/block_ref.h"
#include "sparklet/memory_accountant.h"
#include "sparklet/rdd.h"
#include "test_support.h"

namespace apspark {
namespace {

using apsp::ApspOptions;
using apsp::KsourceBlockedSolver;
using apsp::KsourceOptions;
using apsp::KsourceVariant;
using apsp::MakeSolver;
using apsp::SolverKind;
using linalg::BlockCopyStats;
using linalg::BlockRef;
using linalg::CowScope;
using linalg::DenseBlock;
using sparklet::MemoryAccountant;
using test::TestCluster;

// --- BlockRef ---------------------------------------------------------------

TEST(BlockRef, WrapsSharedPayloadAndCachesSerializedSize) {
  BlockRef ref = linalg::MakeRef(DenseBlock(4, 6, 1.5));
  EXPECT_EQ(ref->rows(), 4);
  EXPECT_EQ(ref->cols(), 6);
  EXPECT_EQ(ref.serialized_bytes(), ref->SerializedBytes());
  BlockRef copy = ref;  // ref-count bump, shared payload
  EXPECT_EQ(copy.get(), ref.get());
  EXPECT_GE(ref.use_count(), 2);
}

TEST(BlockRef, MutableCopyIsSanctioned) {
  const BlockRef ref = linalg::MakeRef(DenseBlock(8, 8, 2.0));
  const std::uint64_t unsanctioned = BlockCopyStats::UnsanctionedCopies();
  DenseBlock mut = ref.MutableCopy();
  mut.Set(0, 0, 7.0);
  EXPECT_EQ(BlockCopyStats::UnsanctionedCopies(), unsanctioned);
  EXPECT_EQ(ref->At(0, 0), 2.0);  // the shared original is untouched
}

// --- copy accounting --------------------------------------------------------

TEST(BlockCopyStats, CountsPlainCopiesAndSanctionsCowScopes) {
  const DenseBlock block(16, 16, 3.0);
  const std::uint64_t total0 = BlockCopyStats::TotalCopies();
  const std::uint64_t unsanctioned0 = BlockCopyStats::UnsanctionedCopies();
  DenseBlock plain_copy = block;  // counted, unsanctioned
  EXPECT_EQ(BlockCopyStats::TotalCopies(), total0 + 1);
  EXPECT_EQ(BlockCopyStats::UnsanctionedCopies(), unsanctioned0 + 1);
  {
    CowScope cow;
    DenseBlock cow_copy = block;  // counted, sanctioned
    EXPECT_EQ(BlockCopyStats::TotalCopies(), total0 + 2);
    EXPECT_EQ(BlockCopyStats::UnsanctionedCopies(), unsanctioned0 + 1);
    (void)cow_copy;
  }
  (void)plain_copy;
}

TEST(BlockCopyStats, PhantomAndMoveAreFree) {
  const std::uint64_t total0 = BlockCopyStats::TotalCopies();
  DenseBlock phantom = DenseBlock::Phantom(1024, 1024);
  DenseBlock phantom_copy = phantom;               // no payload: free
  DenseBlock moved = DenseBlock(32, 32, 1.0);      // construction: free
  DenseBlock moved_again = std::move(moved);       // move: free
  (void)phantom_copy;
  (void)moved_again;
  EXPECT_EQ(BlockCopyStats::TotalCopies(), total0);
}

// --- whole-solve zero-copy locks -------------------------------------------

/// Runs `fn` and returns how many unsanctioned deep copies it made.
template <typename Fn>
std::uint64_t UnsanctionedCopiesDuring(Fn&& fn) {
  const std::uint64_t before = BlockCopyStats::UnsanctionedCopies();
  fn();
  return BlockCopyStats::UnsanctionedCopies() - before;
}

TEST(ZeroCopyDataPlane, ShuffleSolverMakesNoUnsanctionedCopies) {
  // Blocked In-Memory: everything travels through combineByKey shuffles.
  // Pre-refactor regression target: reduce-side bucket duplication.
  const graph::Graph g = graph::PaperErdosRenyi(48, 3);
  const std::uint64_t copies = UnsanctionedCopiesDuring([&] {
    ApspOptions opts;
    opts.block_size = 12;
    auto result = MakeSolver(SolverKind::kBlockedInMemory)
                      ->SolveGraph(g, opts, TestCluster());
    ASSERT_TRUE(result.status.ok());
  });
  EXPECT_EQ(copies, 0u);
}

TEST(ZeroCopyDataPlane, StagedSolverMakesNoUnsanctionedCopies) {
  // Blocked Collect/Broadcast: pre-refactor, every staged read deserialized
  // a fresh payload per task — counted as a deep copy today.
  const graph::Graph g = graph::PaperErdosRenyi(48, 4);
  const std::uint64_t copies = UnsanctionedCopiesDuring([&] {
    ApspOptions opts;
    opts.block_size = 12;
    auto result = MakeSolver(SolverKind::kBlockedCollectBroadcast)
                      ->SolveGraph(g, opts, TestCluster());
    ASSERT_TRUE(result.status.ok());
  });
  EXPECT_EQ(copies, 0u);
}

TEST(ZeroCopyDataPlane, BothKsourceVariantsMakeNoUnsanctionedCopies) {
  const graph::Graph g = graph::PaperErdosRenyi(60, 5);
  const std::vector<graph::VertexId> sources = {0, 7, 31, 59};
  for (KsourceVariant variant :
       {KsourceVariant::kStagedStorage, KsourceVariant::kShuffleReplicated}) {
    const std::uint64_t copies = UnsanctionedCopiesDuring([&] {
      KsourceOptions opts;
      opts.block_size = 16;
      opts.variant = variant;
      KsourceBlockedSolver solver;
      auto result = solver.SolveGraph(g, sources, opts, TestCluster());
      ASSERT_TRUE(result.status.ok());
    });
    EXPECT_EQ(copies, 0u) << apsp::KsourceVariantName(variant);
  }
}

// --- shared-storage block store ---------------------------------------------

TEST(SharedStorageBlocks, GetBlockReturnsTheSharedRef) {
  sparklet::SharedStorage storage;
  BlockRef ref = linalg::MakeRef(DenseBlock(8, 8, 1.0));
  const DenseBlock* payload = ref.get();
  storage.PutBlock("k", ref);
  auto got = storage.GetBlock("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), payload);  // the very same allocation, no copy
  EXPECT_EQ(storage.total_logical_bytes(), ref.serialized_bytes());
}

TEST(SharedStorageBlocks, ByteAndBlockObjectsKeepTheirKinds) {
  sparklet::SharedStorage storage;
  storage.Put("bytes", {1, 2, 3}, 3);
  storage.PutBlock("block", linalg::MakeRef(DenseBlock(2, 2, 0.0)));
  // Kind guards are symmetric: each accessor serves only its own kind, so
  // no caller can ever see an ok Object with a null payload.
  EXPECT_FALSE(storage.GetBlock("bytes").ok());
  EXPECT_FALSE(storage.Get("block").ok());
  EXPECT_FALSE(storage.GetBlock("missing").ok());
  EXPECT_TRUE(storage.Get("bytes").ok());
  // Overwriting a block with bytes replaces the kind and the accounting.
  storage.Put("block", {9}, 1);
  EXPECT_FALSE(storage.GetBlock("block").ok());
  EXPECT_TRUE(storage.Get("block").ok());
  EXPECT_EQ(storage.total_logical_bytes(), 3u + 1u);
}

// --- memory accountant ------------------------------------------------------

TEST(MemoryAccountantTest, TracksLiveAndPeakPerSite) {
  MemoryAccountant acct(2);
  acct.ChargeDriver(100);
  acct.ChargeNode(0, 40);
  acct.ChargeNode(1, 60);
  acct.TouchDriver(50);  // transient spike on top of the live 100
  EXPECT_EQ(acct.driver_live_bytes(), 100u);
  EXPECT_EQ(acct.driver_peak_bytes(), 150u);
  EXPECT_EQ(acct.node_peak_bytes(), 60u);
  acct.ReleaseDriver(100);
  acct.ReleaseNode(1, 60);
  EXPECT_EQ(acct.driver_live_bytes(), 0u);
  EXPECT_EQ(acct.node_live_bytes(1), 0u);
  EXPECT_EQ(acct.driver_peak_bytes(), 150u);  // peaks never decrease
  acct.ReleaseNode(0, 1000);                  // over-release clamps
  EXPECT_EQ(acct.node_live_bytes(0), 0u);
}

TEST(MemoryAccountantTest, StageWindowsRecordPerStagePeaks) {
  MemoryAccountant acct(1);
  acct.ChargeNode(0, 10);
  acct.EndStage("alpha");
  acct.EndStage("idle");  // no activity: not recorded
  acct.TouchDriver(25);
  acct.EndStage("beta");
  ASSERT_EQ(acct.stage_peaks().size(), 2u);
  EXPECT_EQ(acct.stage_peaks()[0].stage, "alpha");
  EXPECT_EQ(acct.stage_peaks()[0].node_peak_bytes, 10u);
  EXPECT_EQ(acct.stage_peaks()[1].stage, "beta");
  EXPECT_EQ(acct.stage_peaks()[1].driver_peak_bytes, 25u);
}

TEST(MemoryAccountantTest, ResetPeaksRestartsFromTheLiveSet) {
  MemoryAccountant acct(1);
  acct.ChargeDriver(70);
  acct.TouchDriver(1000);
  acct.ResetPeaks();
  EXPECT_EQ(acct.driver_peak_bytes(), 70u);  // live survives, spike forgotten
}

TEST(MemoryAccountantTest, CachedPartitionsChargeAndReleaseNodes) {
  sparklet::SparkletContext ctx(TestCluster());
  auto& acct = ctx.cluster().accountant();
  const std::uint64_t base =
      acct.node_live_bytes(0) + acct.node_live_bytes(1);
  auto rdd = ctx.Parallelize<std::int64_t>("ints", {1, 2, 3, 4, 5, 6}, 3);
  const std::uint64_t live =
      acct.node_live_bytes(0) + acct.node_live_bytes(1);
  EXPECT_EQ(live - base, 6u * sizeof(std::int64_t));
  rdd->Unpersist();
  EXPECT_EQ(acct.node_live_bytes(0) + acct.node_live_bytes(1), base);
}

// --- deterministic solver high-water ----------------------------------------

TEST(MemoryHighWater, CollectBroadcastVsShuffleSolversOnFixedLayout) {
  // n = 64, b = 16: q = 4. The shuffle solver never touches the driver
  // during its rounds; collect/broadcast funnels the phase-2-updated cross
  // (q-1 canonical blocks of 16 + 17 + b^2*8 bytes each) through it every
  // round. These are byte counts, not timings — exact and reproducible.
  const graph::Graph g = graph::PaperErdosRenyi(64, 9);
  ApspOptions opts;
  opts.block_size = 16;
  auto im = MakeSolver(SolverKind::kBlockedInMemory)
                ->SolveGraph(g, opts, TestCluster());
  auto cb = MakeSolver(SolverKind::kBlockedCollectBroadcast)
                ->SolveGraph(g, opts, TestCluster());
  ASSERT_TRUE(im.status.ok());
  ASSERT_TRUE(cb.status.ok());

  EXPECT_EQ(im.metrics.driver_peak_bytes, 0u);
  const std::uint64_t record_bytes = 16 + (17 + 16 * 16 * 8);
  EXPECT_EQ(cb.metrics.driver_peak_bytes, 3 * record_bytes);
  EXPECT_GT(im.metrics.node_peak_bytes, 0u);
  EXPECT_GT(cb.metrics.node_peak_bytes, 0u);

  // Determinism: an identical run reports identical high water.
  auto cb2 = MakeSolver(SolverKind::kBlockedCollectBroadcast)
                 ->SolveGraph(g, opts, TestCluster());
  EXPECT_EQ(cb2.metrics.driver_peak_bytes, cb.metrics.driver_peak_bytes);
  EXPECT_EQ(cb2.metrics.node_peak_bytes, cb.metrics.node_peak_bytes);
}

TEST(MemoryHighWater, PureKsourceVariantKeepsTheDriverQuiet) {
  // The staged variant collects the updated cross every pivot; the pure
  // shuffle-replicated variant's only driver spike is the final panel
  // assembly — its high water must sit strictly below the staged one.
  const graph::Graph g = graph::PaperErdosRenyi(96, 11);
  const std::vector<graph::VertexId> sources = {0, 13, 55};
  KsourceOptions staged;
  staged.block_size = 16;
  KsourceOptions shuffle = staged;
  shuffle.variant = KsourceVariant::kShuffleReplicated;
  KsourceBlockedSolver solver;
  auto staged_run = solver.SolveGraph(g, sources, staged, TestCluster());
  auto shuffle_run = solver.SolveGraph(g, sources, shuffle, TestCluster());
  ASSERT_TRUE(staged_run.status.ok());
  ASSERT_TRUE(shuffle_run.status.ok());
  EXPECT_GT(shuffle_run.metrics.driver_peak_bytes, 0u);  // final assembly
  EXPECT_LT(shuffle_run.metrics.driver_peak_bytes,
            staged_run.metrics.driver_peak_bytes);
}

}  // namespace
}  // namespace apspark
