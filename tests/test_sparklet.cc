// Engine tests for sparklet: RDD semantics (laziness, fusion, union,
// shuffles), partitioners (including the pySpark portable_hash replica),
// virtual-cluster accounting, fault injection and lineage recomputation,
// shared storage, and the discrete-event scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sparklet/rdd.h"

namespace apspark::sparklet {
namespace {

using IntPair = std::pair<std::int64_t, std::int64_t>;

SparkletContext MakeCtx() { return SparkletContext(ClusterConfig::TinyTest()); }

std::vector<std::int64_t> Iota(std::int64_t n) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// --- portable hash -------------------------------------------------------

TEST(PortableHash, MatchesCPython2Golden) {
  // Golden values computed with the CPython 2 int/tuple hash algorithm,
  // which pyspark.rdd.portable_hash implements for (I, J) keys.
  EXPECT_EQ(PortableHashTuple2(0, 0), 3713080549408328131LL);
  EXPECT_EQ(PortableHashTuple2(0, 1), 3713080549409410656LL);
  EXPECT_EQ(PortableHashTuple2(1, 0), 3713081631936575706LL);
  EXPECT_EQ(PortableHashTuple2(3, 7), 3713083796998483481LL);
  EXPECT_EQ(PortableHashTuple2(127, 511), 3712958223254113981LL);
  EXPECT_EQ(PortableHashTuple2(-1, -1), 3713082714462658231LL);
}

TEST(PortableHash, IntHashMatchesCPython2) {
  EXPECT_EQ(PortableHashInt(5), 5);
  EXPECT_EQ(PortableHashInt(0), 0);
  EXPECT_EQ(PortableHashInt(-1), -2);  // CPython reserves -1 for errors
}

TEST(PortableHash, NonNegativeMod) {
  EXPECT_EQ(NonNegativeMod(7, 4), 3);
  EXPECT_EQ(NonNegativeMod(-7, 4), 1);
  EXPECT_EQ(NonNegativeMod(-4, 4), 0);
  for (std::int64_t h : {-100LL, -1LL, 0LL, 99999LL}) {
    const int m = NonNegativeMod(h, 7);
    EXPECT_GE(m, 0);
    EXPECT_LT(m, 7);
  }
}

// --- RDD semantics ---------------------------------------------------------

TEST(Rdd, ParallelizeAndCollectPreservesData) {
  auto ctx = MakeCtx();
  auto rdd = ctx.Parallelize("data", Iota(100), 7);
  EXPECT_EQ(rdd->num_partitions(), 7);
  auto out = rdd->Collect();
  EXPECT_EQ(out, Iota(100));
}

TEST(Rdd, MapAndFilterCompose) {
  auto ctx = MakeCtx();
  auto rdd = ctx.Parallelize("data", Iota(10), 3);
  auto result = rdd->Map("x2",
                         [](const std::int64_t& x, TaskContext&) {
                           return x * 2;
                         })
                    ->Filter("gt8", [](const std::int64_t& x) { return x > 8; })
                    ->Collect();
  EXPECT_EQ(result, (std::vector<std::int64_t>{10, 12, 14, 16, 18}));
}

TEST(Rdd, FlatMapExpands) {
  auto ctx = MakeCtx();
  auto rdd = ctx.Parallelize("data", Iota(3), 2);
  auto result = rdd->FlatMap<std::int64_t>(
                       "dup",
                       [](const std::int64_t& x, TaskContext&,
                          std::vector<std::int64_t>& out) {
                         out.push_back(x);
                         out.push_back(x + 100);
                       })
                    ->Collect();
  EXPECT_EQ(result.size(), 6u);
}

TEST(Rdd, MapPartitionsSeesWholePartition) {
  auto ctx = MakeCtx();
  auto rdd = ctx.Parallelize("data", Iota(10), 2);
  auto sums = rdd->MapPartitions<std::int64_t>(
                     "sum",
                     [](std::vector<std::int64_t>&& part, TaskContext&) {
                       std::int64_t s = 0;
                       for (auto x : part) s += x;
                       return std::vector<std::int64_t>{s};
                     })
                  ->Collect();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0] + sums[1], 45);
}

TEST(Rdd, UnionConcatenatesPartitions) {
  auto ctx = MakeCtx();
  auto a = ctx.Parallelize("a", Iota(4), 2);
  auto b = ctx.Parallelize("b", Iota(6), 3);
  auto u = ctx.Union("u", {a, b});
  // Spark semantics: union preserves component partitioning (the partition
  // blow-up the paper discusses in §5.2).
  EXPECT_EQ(u->num_partitions(), 5);
  EXPECT_EQ(u->Count(), 10);
}

TEST(Rdd, CountMatchesCollectSize) {
  auto ctx = MakeCtx();
  auto rdd = ctx.Parallelize("data", Iota(37), 4);
  EXPECT_EQ(rdd->Count(), 37);
}

TEST(Rdd, LazinessTransformationsRunOnlyOnAction) {
  auto ctx = MakeCtx();
  int calls = 0;
  auto rdd = ctx.Parallelize("data", Iota(5), 1)
                 ->Map("count-calls", [&calls](const std::int64_t& x,
                                               TaskContext&) {
                   ++calls;
                   return x;
                 });
  EXPECT_EQ(calls, 0);  // nothing ran yet
  rdd->Collect();
  EXPECT_EQ(calls, 5);
}

TEST(Rdd, UnpersistedChainRecomputesPersistedDoesNot) {
  auto ctx = MakeCtx();
  int calls = 0;
  auto mapped = ctx.Parallelize("data", Iota(4), 1)
                    ->Map("count", [&calls](const std::int64_t& x,
                                            TaskContext&) {
                      ++calls;
                      return x;
                    });
  mapped->Collect();
  mapped->Collect();
  EXPECT_EQ(calls, 8);  // recomputed per action, like un-cached Spark RDDs

  calls = 0;
  mapped->Persist();
  mapped->Collect();
  mapped->Collect();
  EXPECT_EQ(calls, 4);  // materialized once
}

// --- shuffles ----------------------------------------------------------

TEST(Shuffle, ReduceByKeyAggregates) {
  auto ctx = MakeCtx();
  std::vector<IntPair> data;
  for (std::int64_t i = 0; i < 20; ++i) data.push_back({i % 4, 1});
  auto rdd = ctx.Parallelize("pairs", data, 3);
  auto reduced = ReduceByKey(
      rdd, MakePortableHash<std::int64_t>(4), "sum",
      [](const std::int64_t& a, const std::int64_t& b, TaskContext&) {
        return a + b;
      });
  auto out = reduced->Collect();
  ASSERT_EQ(out.size(), 4u);
  for (const auto& [k, v] : out) EXPECT_EQ(v, 5);
}

TEST(Shuffle, PartitionByPlacesKeysPerPartitioner) {
  auto ctx = MakeCtx();
  std::vector<IntPair> data;
  for (std::int64_t i = 0; i < 16; ++i) data.push_back({i, i});
  auto part = MakePortableHash<std::int64_t>(4);
  auto shuffled = PartitionBy(ctx.Parallelize("pairs", data, 2), part);
  shuffled->EnsureMaterialized();
  TaskContext tc = ctx.MakeTaskContext();
  for (int p = 0; p < 4; ++p) {
    for (const auto& [k, v] : shuffled->ComputeOrRead(p, tc)) {
      EXPECT_EQ(part->PartitionOf(k), p);
    }
  }
  EXPECT_EQ(shuffled->Count(), 16);
}

TEST(Shuffle, CombineByKeyBuildsLists) {
  auto ctx = MakeCtx();
  std::vector<IntPair> data{{1, 10}, {1, 11}, {2, 20}, {1, 12}};
  auto combined = CombineByKey<std::int64_t, std::int64_t,
                               std::vector<std::int64_t>>(
      ctx.Parallelize("pairs", data, 2),
      MakePortableHash<std::int64_t>(3), "lists",
      [](std::int64_t&& v) { return std::vector<std::int64_t>{v}; },
      [](std::vector<std::int64_t>& list, std::int64_t&& v, TaskContext&) {
        list.push_back(v);
      },
      [](std::vector<std::int64_t>& list, std::vector<std::int64_t>&& other,
         TaskContext&) {
        for (auto v : other) list.push_back(v);
      });
  auto out = combined->Collect();
  ASSERT_EQ(out.size(), 2u);
  for (auto& [k, list] : out) {
    std::sort(list.begin(), list.end());
    if (k == 1) {
      EXPECT_EQ(list, (std::vector<std::int64_t>{10, 11, 12}));
    } else {
      EXPECT_EQ(list, (std::vector<std::int64_t>{20}));
    }
  }
}

TEST(Shuffle, AccountsBytesAndStages) {
  auto ctx = MakeCtx();
  std::vector<IntPair> data;
  for (std::int64_t i = 0; i < 100; ++i) data.push_back({i, i});
  auto shuffled =
      PartitionBy(ctx.Parallelize("pairs", data, 4),
                  MakePortableHash<std::int64_t>(4));
  shuffled->EnsureMaterialized();
  const SimMetrics& m = ctx.metrics();
  EXPECT_GT(m.shuffle_bytes, 0u);
  EXPECT_GT(m.stages, 0u);
  EXPECT_GT(m.tasks, 0u);
  EXPECT_GT(ctx.now_seconds(), 0.0);
}

TEST(Shuffle, LocalStorageExhaustionAborts) {
  auto cfg = ClusterConfig::TinyTest();
  cfg.local_storage_bytes = 64;  // absurdly small
  SparkletContext ctx(cfg);
  std::vector<IntPair> data;
  for (std::int64_t i = 0; i < 1000; ++i) data.push_back({i, i});
  auto shuffled = PartitionBy(ctx.Parallelize("pairs", data, 4),
                              MakePortableHash<std::int64_t>(4));
  try {
    shuffled->EnsureMaterialized();
    FAIL() << "expected SparkletAbort";
  } catch (const SparkletAbort& abort) {
    EXPECT_EQ(abort.status().code(), StatusCode::kResourceExhausted);
  }
}

// --- fault injection / lineage ------------------------------------------

TEST(Fault, TaskRetrySucceedsWithinBudget) {
  auto ctx = MakeCtx();
  auto rdd = ctx.Parallelize("data", Iota(10), 2)
                 ->Map("slow", [](const std::int64_t& x, TaskContext&) {
                   return x + 1;
                 });
  ctx.fault_injector().FailTask("slow", 0, 2);
  auto out = rdd->Collect();
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(ctx.metrics().task_failures, 2u);
  EXPECT_EQ(ctx.metrics().task_retries, 2u);
}

TEST(Fault, ExceedingMaxFailuresAborts) {
  auto cfg = ClusterConfig::TinyTest();
  cfg.max_task_failures = 3;
  SparkletContext ctx(cfg);
  auto rdd = ctx.Parallelize("data", Iota(4), 1)
                 ->Map("doomed", [](const std::int64_t& x, TaskContext&) {
                   return x;
                 });
  ctx.fault_injector().FailTask("doomed", 0, 10);
  try {
    rdd->Collect();
    FAIL() << "expected SparkletAbort";
  } catch (const SparkletAbort& abort) {
    EXPECT_EQ(abort.status().code(), StatusCode::kAborted);
  }
}

TEST(Fault, DroppedShufflePartitionRecomputesFromShuffleFiles) {
  auto ctx = MakeCtx();
  std::vector<IntPair> data;
  for (std::int64_t i = 0; i < 50; ++i) data.push_back({i, i * i});
  auto shuffled = PartitionBy(ctx.Parallelize("pairs", data, 4),
                              MakePortableHash<std::int64_t>(4));
  auto before = shuffled->Collect();
  shuffled->DropPartition(2);  // simulated executor loss
  auto after = shuffled->Collect();
  auto key_sorted = [](std::vector<IntPair> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(key_sorted(before), key_sorted(after));
}

// --- shared storage ----------------------------------------------------

TEST(SharedStorage, PutGetAndAccounting) {
  SharedStorage storage;
  storage.Put("a", {1, 2, 3}, 1000);
  EXPECT_TRUE(storage.Contains("a"));
  EXPECT_EQ(storage.total_logical_bytes(), 1000u);
  auto obj = storage.Get("a");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->payload->size(), 3u);
  EXPECT_EQ(obj->logical_bytes, 1000u);
  storage.Put("a", {9}, 500);  // overwrite adjusts accounting
  EXPECT_EQ(storage.total_logical_bytes(), 500u);
  EXPECT_FALSE(storage.Get("missing").ok());
}

TEST(SharedStorage, ErasePrefix) {
  SharedStorage storage;
  storage.Put("rs/0/1", {1}, 10);
  storage.Put("rs/0/2", {1}, 10);
  storage.Put("cb/0", {1}, 10);
  EXPECT_EQ(storage.ErasePrefix("rs/"), 2u);
  EXPECT_EQ(storage.object_count(), 1u);
  EXPECT_EQ(storage.total_logical_bytes(), 10u);
}

TEST(SharedStorage, TaskReadsChargeTime) {
  auto ctx = MakeCtx();
  ctx.DriverWriteShared("blob", std::vector<std::uint8_t>(16, 1),
                        1 * kMiB);
  TaskContext tc = ctx.MakeTaskContext();
  tc.SetStageConcurrency(1);
  auto obj = tc.ReadShared("blob");
  ASSERT_TRUE(obj.ok());
  EXPECT_GT(tc.task_seconds(), 0.0);
  EXPECT_EQ(tc.shared_read_bytes(), 1 * kMiB);
  EXPECT_GT(ctx.metrics().shared_fs_written_bytes, 0u);
}

// --- scheduler / cluster model -------------------------------------------

TEST(Scheduler, ListScheduleMakespanBasics) {
  EXPECT_EQ(ListScheduleMakespan({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(ListScheduleMakespan({1, 2, 3}, 1), 6.0);
  // 4 unit tasks on 2 machines -> 2 rounds.
  EXPECT_DOUBLE_EQ(ListScheduleMakespan({1, 1, 1, 1}, 2), 2.0);
  // LPT: {3, 2, 2} on 2 machines -> max(3+0, 2+2) ... LPT gives 4.
  EXPECT_DOUBLE_EQ(ListScheduleMakespan({2, 3, 2}, 2), 4.0);
  // Makespan is at least the largest task.
  EXPECT_DOUBLE_EQ(ListScheduleMakespan({10, 0.1, 0.1}, 8), 10.0);
}

TEST(Scheduler, StageTimeDeterministic) {
  VirtualCluster a(ClusterConfig::TinyTest());
  VirtualCluster b(ClusterConfig::TinyTest());
  const std::vector<double> tasks(16, 0.5);
  a.RunStage(tasks);
  b.RunStage(tasks);
  EXPECT_DOUBLE_EQ(a.now_seconds(), b.now_seconds());
}

TEST(Scheduler, StragglerJitterBoundsStageTime) {
  auto cfg = ClusterConfig::TinyTest();
  cfg.straggler_spread = 0.5;
  cfg.stage_overhead_seconds = 0;
  cfg.task_overhead_seconds = 0;
  VirtualCluster cluster(cfg);
  cluster.RunStage(std::vector<double>(4, 1.0));  // 4 tasks on 4 cores
  EXPECT_GE(cluster.now_seconds(), 1.0);
  EXPECT_LE(cluster.now_seconds(), 1.5);
}

TEST(Scheduler, IntraTaskCoresShrinkSlots) {
  auto cfg = ClusterConfig::TinyTest();  // 2 nodes x 2 cores = 4 cores
  EXPECT_EQ(cfg.concurrent_task_slots(), 4);
  cfg.intra_task_cores = 2;
  EXPECT_EQ(cfg.concurrent_task_slots(), 2);
  cfg.intra_task_cores = 64;  // more than the cluster has: one slot, never 0
  EXPECT_EQ(cfg.concurrent_task_slots(), 1);
  cfg.intra_task_cores = 2;
  EXPECT_NE(cfg.Summary().find("cores/task"), std::string::npos);
}

TEST(Scheduler, IntraTaskCoresTradeSlotsForTaskSpeed) {
  // Same per-task seconds, half the slots: the stage makespan doubles. The
  // win must come from the per-task charges shrinking (the cost model's
  // intra-task schedule), not from free parallelism.
  auto cfg = ClusterConfig::TinyTest();
  cfg.straggler_spread = 0.0;
  cfg.stage_overhead_seconds = 0;
  cfg.task_overhead_seconds = 0;
  VirtualCluster four_slots(cfg);
  cfg.intra_task_cores = 2;
  VirtualCluster two_slots(cfg);
  const std::vector<double> tasks(4, 1.0);
  four_slots.RunStage(tasks);
  two_slots.RunStage(tasks);
  EXPECT_DOUBLE_EQ(four_slots.now_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(two_slots.now_seconds(), 2.0);
}

TEST(Cluster, BroadcastAndCollectCharges) {
  VirtualCluster cluster(ClusterConfig::Paper());
  cluster.ChargeBroadcast(10 * kMiB);
  const double after_bcast = cluster.now_seconds();
  EXPECT_GT(after_bcast, 0.0);
  cluster.ChargeCollect(100 * kMiB, 64);
  EXPECT_GT(cluster.now_seconds(), after_bcast);
  EXPECT_EQ(cluster.metrics().broadcast_bytes, 10 * kMiB);
  EXPECT_EQ(cluster.metrics().collect_bytes, 100 * kMiB);
}

TEST(Cluster, ShuffleSpillAccumulatesAcrossCalls) {
  VirtualCluster cluster(ClusterConfig::TinyTest());
  const std::vector<std::uint64_t> per_part(4, 1 * kMiB);
  ASSERT_TRUE(cluster.ChargeShuffle(per_part).ok());
  const auto first = cluster.MaxLocalStorageUsed();
  ASSERT_TRUE(cluster.ChargeShuffle(per_part).ok());
  EXPECT_EQ(cluster.MaxLocalStorageUsed(), 2 * first);
}

TEST(Cluster, ConfigSummaries) {
  EXPECT_FALSE(ClusterConfig::Paper().Summary().empty());
  EXPECT_EQ(ClusterConfig::Paper().total_cores(), 1024);
  EXPECT_EQ(ClusterConfig::PaperWithCores(256).nodes, 8);
  SimMetrics m;
  m.compute_seconds = 1;
  EXPECT_FALSE(m.Summary().empty());
}

}  // namespace
}  // namespace apspark::sparklet
