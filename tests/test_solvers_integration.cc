// End-to-end validation: every Spark-style solver must produce distances
// identical (up to FP tolerance) to the Dijkstra ground truth, across graph
// families, block sizes, partitioners and cluster shapes.
#include <gtest/gtest.h>

#include "apsp/solver.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "test_support.h"

namespace apspark {
namespace {

using apsp::ApspOptions;
using apsp::ApspRunResult;
using apsp::MakeSolver;
using apsp::PartitionerKind;
using apsp::SolverKind;
using graph::Graph;
using test::TestCluster;

void ExpectMatchesDijkstra(const Graph& g, const ApspRunResult& result,
                           const std::string& label) {
  ASSERT_TRUE(result.status.ok()) << label << ": " << result.status.ToString();
  ASSERT_TRUE(result.distances.has_value()) << label;
  const linalg::DenseBlock truth = graph::DijkstraAllPairs(g);
  EXPECT_TRUE(result.distances->ApproxEquals(truth, 1e-9))
      << label << ": max diff " << result.distances->MaxAbsDiff(truth);
}

struct Case {
  SolverKind solver;
  std::int64_t block_size;
  PartitionerKind partitioner;
};

class SolverCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(SolverCorrectness, ErdosRenyi) {
  const Case c = GetParam();
  const Graph g = graph::PaperErdosRenyi(64, /*seed=*/7);
  ApspOptions opts;
  opts.block_size = c.block_size;
  opts.partitioner = c.partitioner;
  auto solver = MakeSolver(c.solver);
  auto result = solver->SolveGraph(g, opts, TestCluster());
  ExpectMatchesDijkstra(g, result, solver->name());
}

TEST_P(SolverCorrectness, DisconnectedGraph) {
  const Case c = GetParam();
  // Two ER components with no inter-component edges: distances across must
  // stay +inf.
  const Graph g = test::TwoComponentGraph(20, /*seed_a=*/3, /*seed_b=*/4);
  ApspOptions opts;
  opts.block_size = c.block_size;
  opts.partitioner = c.partitioner;
  auto solver = MakeSolver(c.solver);
  auto result = solver->SolveGraph(g, opts, TestCluster());
  ExpectMatchesDijkstra(g, result, solver->name());
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, SolverCorrectness,
    ::testing::Values(
        Case{SolverKind::kRepeatedSquaring, 16, PartitionerKind::kMultiDiagonal},
        Case{SolverKind::kRepeatedSquaring, 17, PartitionerKind::kPortableHash},
        Case{SolverKind::kFloydWarshall2d, 16, PartitionerKind::kMultiDiagonal},
        Case{SolverKind::kFloydWarshall2d, 13, PartitionerKind::kPortableHash},
        Case{SolverKind::kBlockedInMemory, 16, PartitionerKind::kMultiDiagonal},
        Case{SolverKind::kBlockedInMemory, 11, PartitionerKind::kPortableHash},
        Case{SolverKind::kBlockedCollectBroadcast, 16,
             PartitionerKind::kMultiDiagonal},
        Case{SolverKind::kBlockedCollectBroadcast, 9,
             PartitionerKind::kPortableHash}),
    [](const auto& info) {
      const Case& c = info.param;
      std::string name;
      switch (c.solver) {
        case SolverKind::kRepeatedSquaring: name = "RS"; break;
        case SolverKind::kFloydWarshall2d: name = "FW2D"; break;
        case SolverKind::kBlockedInMemory: name = "IM"; break;
        case SolverKind::kBlockedCollectBroadcast: name = "CB"; break;
      }
      name += "_b" + std::to_string(c.block_size);
      name += c.partitioner == PartitionerKind::kMultiDiagonal ? "_MD" : "_PH";
      return name;
    });

TEST(SolverDirected, AllSolversMatchJohnsonOnDigraph) {
  const Graph g = graph::ErdosRenyi(48, 0.15, {1.0, 5.0}, /*seed=*/11,
                                    /*directed=*/true);
  auto truth = graph::JohnsonAllPairs(g);
  ASSERT_TRUE(truth.ok());
  for (SolverKind kind : apsp::AllSolverKinds()) {
    ApspOptions opts;
    opts.block_size = 16;
    opts.directed = true;
    auto solver = MakeSolver(kind);
    auto result = solver->SolveGraph(g, opts, TestCluster());
    ASSERT_TRUE(result.status.ok()) << solver->name();
    ASSERT_TRUE(result.distances.has_value()) << solver->name();
    EXPECT_TRUE(result.distances->ApproxEquals(*truth, 1e-9))
        << solver->name() << ": max diff "
        << result.distances->MaxAbsDiff(*truth);
  }
}

}  // namespace
}  // namespace apspark
