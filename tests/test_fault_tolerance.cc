// Fault-tolerance subsystem: executor-loss simulation, lineage-driven
// recovery, checkpoint restart, and the seeded chaos harness.
//
// The paper's qualitative claim (§3, §4.5) is demonstrated end to end here:
// solvers built purely from RDD transformations (2D Floyd-Warshall,
// Blocked-IM, the shuffle-replicated KSSP plane) survive an injected
// executor loss by lineage recomputation — in place, no restart — while
// solvers that smuggle pivot data through shared persistent storage
// (Blocked-CB, Repeated Squaring, staged KSSP) abort with DATA_LOSS and
// complete through a checkpoint restart instead. Either way the result must
// be *bitwise* identical to the no-failure run and to the scalar oracle
// (integer weights make every path sum exact).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apsp/checkpoint.h"
#include "apsp/solver.h"
#include "apsp/solvers/ksource_blocked.h"
#include "apsp/tuner.h"
#include "graph/generators.h"
#include "linalg/kernels.h"
#include "sparklet/rdd.h"
#include "test_support.h"

namespace apspark {
namespace {

using apsp::ApspOptions;
using apsp::BlockLayout;
using apsp::KsourceBlockedSolver;
using apsp::KsourceOptions;
using apsp::KsourceVariant;
using apsp::MakeSolver;
using apsp::SolverKind;
using apsp::SolverKindName;
using graph::Graph;
using graph::VertexId;
using linalg::DenseBlock;
using sparklet::ClusterConfig;
using sparklet::FaultInjector;
using sparklet::SparkletAbort;
using sparklet::SparkletContext;
using sparklet::StageKind;
using test::ExpectBitwiseEqual;
using test::RandomTestGraph;
using test::TestCluster;

using IntPair = std::pair<std::int64_t, std::int64_t>;

std::vector<std::int64_t> Iota(std::int64_t n) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

/// Integer-weight random graph: bitwise-exact oracle comparisons.
Graph IntegerGraph(Xoshiro256& rng) {
  test::RandomGraphOptions opts;
  opts.min_vertices = 16;
  opts.max_vertices = 48;
  opts.integer_weights = true;
  return RandomTestGraph(rng, opts);
}

DenseBlock Oracle(const Graph& g) {
  DenseBlock d = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(d);
  return d;
}

// ---------------------------------------------------------------------------
// FaultInjector node plans
// ---------------------------------------------------------------------------

TEST(FaultInjectorNodePlans, FiresOnceAtArmedStage) {
  FaultInjector injector;
  injector.FailNode(1, 5);
  injector.FailNode(0, 7);
  EXPECT_FALSE(injector.empty());
  EXPECT_TRUE(injector.TakeNodeFailuresAt(4).empty());
  const auto at5 = injector.TakeNodeFailuresAt(5);
  ASSERT_EQ(at5.size(), 1u);
  EXPECT_EQ(at5[0], 1);
  // Consumed: the same boundary yields nothing more.
  EXPECT_TRUE(injector.TakeNodeFailuresAt(5).empty());
  const auto at9 = injector.TakeNodeFailuresAt(9);
  ASSERT_EQ(at9.size(), 1u);
  EXPECT_EQ(at9[0], 0);
  EXPECT_TRUE(injector.empty());
  EXPECT_EQ(injector.injected_node_count(), 2u);
}

TEST(FaultInjectorNodePlans, LatePlansFireAtNextBoundary) {
  FaultInjector injector;
  injector.FailNode(0, 3);  // armed for a stage that already passed
  const auto fired = injector.TakeNodeFailuresAt(10);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0);
}

TEST(FaultInjectorNodePlans, ClearDropsNodePlans) {
  FaultInjector injector;
  injector.FailNode(1, 2);
  injector.FailTask("x", 0);
  injector.Clear();
  EXPECT_TRUE(injector.empty());
  EXPECT_TRUE(injector.TakeNodeFailuresAt(100).empty());
}

TEST(FaultInjectorNodePlans, SameNodeMayFailRepeatedly) {
  FaultInjector injector;
  injector.FailNode(1, 2);
  injector.FailNode(1, 6);
  EXPECT_EQ(injector.TakeNodeFailuresAt(2).size(), 1u);
  EXPECT_EQ(injector.TakeNodeFailuresAt(6).size(), 1u);
}

// ---------------------------------------------------------------------------
// Engine-level recovery
// ---------------------------------------------------------------------------

TEST(NodeLoss, DropsCachedPartitionsAndRecomputesThroughLineage) {
  SparkletContext ctx(TestCluster());
  auto rdd = ctx.Parallelize("data", Iota(40), 4)
                 ->Map("double",
                       [](const std::int64_t& x, sparklet::TaskContext&) {
                         return 2 * x;
                       })
                 ->Persist();
  rdd->EnsureMaterialized();
  const auto before = rdd->Collect();
  // Partitions 1 and 3 live on node 1 of the 2-node test cluster.
  EXPECT_GT(ctx.cluster().accountant().node_live_bytes(1), 0u);

  ctx.fault_injector().FailNode(1, ctx.metrics().stages);
  ctx.cluster().RunStage({0.0}, "tick");  // boundary: the loss fires
  EXPECT_EQ(ctx.metrics().executor_failures, 1u);
  EXPECT_EQ(ctx.cluster().accountant().node_live_bytes(1), 0u);
  EXPECT_EQ(ctx.cluster().LocalStorageUsed(1), 0u);
  // Elastic membership: the dead node leaves the cluster for good and its
  // slots rebalance onto the survivor.
  EXPECT_FALSE(ctx.cluster().placement().alive(1));
  EXPECT_EQ(ctx.cluster().live_nodes(), 1);
  EXPECT_EQ(ctx.metrics().migrated_partitions, 2u);  // slots 1 and 3 moved

  const auto after = rdd->Collect();
  EXPECT_EQ(before, after);
  EXPECT_GE(ctx.metrics().recomputed_tasks, 2u);  // partitions 1 and 3
  EXPECT_GT(ctx.metrics().recovery_seconds, 0.0);
  // Recomputed and re-cached on the surviving node: no partition maps to
  // the dead node afterwards, and the dead node's ledger stays empty.
  EXPECT_EQ(ctx.cluster().accountant().node_live_bytes(1), 0u);
  EXPECT_GT(ctx.cluster().accountant().node_live_bytes(0), 0u);
  for (std::int64_t p = 0; p < 4; ++p) {
    EXPECT_EQ(ctx.cluster().NodeOfPartition(p), 0) << "partition " << p;
  }
}

TEST(NodeLoss, LostMapOutputsReplayBeforeReduceRecompute) {
  SparkletContext ctx(TestCluster());
  std::vector<IntPair> data;
  for (std::int64_t i = 0; i < 60; ++i) data.push_back({i, i * 3});
  auto shuffled =
      PartitionBy(ctx.Parallelize("pairs", data, 4),
                  sparklet::MakePortableHash<std::int64_t>(4));
  shuffled->EnsureMaterialized();
  const auto stages_before = ctx.metrics().stages;
  auto before = shuffled->Collect();

  ctx.fault_injector().FailNode(0, ctx.metrics().stages);
  ctx.cluster().RunStage({0.0}, "tick");
  ASSERT_EQ(ctx.metrics().executor_failures, 1u);

  // The reduce partitions on node 0 were dropped; recomputing them finds
  // the map outputs from node 0 lost as well and replays those map tasks
  // first (a recovery stage), then rebuilds the reduce partitions from the
  // repaired files.
  auto after = shuffled->Collect();
  auto key_sorted = [](std::vector<IntPair> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(key_sorted(before), key_sorted(after));
  EXPECT_GT(ctx.metrics().stages, stages_before);
  EXPECT_GT(ctx.metrics().recomputed_tasks, 0u);
  EXPECT_GT(ctx.metrics().recovery_seconds, 0.0);
}

TEST(NodeLoss, LossAtReplayBoundaryForcesSecondReplay) {
  // Elastic membership makes a dead node stay dead, so the mid-recovery
  // second hit comes from a DIFFERENT node: node 0 dies at the next
  // boundary, node 1 at the boundary right after — which is the replay
  // stage itself. The second loss destroys outputs the first replay just
  // rebuilt (the slots had rebalanced onto node 1); they must stay lost
  // (loss epochs) and a second replay round must run before the reduce
  // side reads the files.
  auto cfg = TestCluster();
  cfg.nodes = 3;
  SparkletContext ctx(cfg);
  std::vector<IntPair> data;
  for (std::int64_t i = 0; i < 60; ++i) data.push_back({i, i * 5});
  auto shuffled =
      PartitionBy(ctx.Parallelize("pairs", data, 4),
                  sparklet::MakePortableHash<std::int64_t>(4));
  shuffled->EnsureMaterialized();
  auto before = shuffled->Collect();

  const auto s = static_cast<std::int64_t>(ctx.metrics().stages);
  ctx.fault_injector().FailNode(0, s);
  ctx.fault_injector().FailNode(1, s + 1);
  ctx.cluster().RunStage({0.0}, "tick");
  ASSERT_EQ(ctx.metrics().executor_failures, 1u);

  auto after = shuffled->Collect();
  auto key_sorted = [](std::vector<IntPair> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(key_sorted(before), key_sorted(after));
  EXPECT_EQ(ctx.metrics().executor_failures, 2u);
  // Node 0 held map partitions 0 and 3; the second loss re-destroys the
  // rebalanced replays plus node 1's own partition, so at least two replay
  // rounds run, and the dropped reduce partitions recompute on top.
  EXPECT_GE(ctx.metrics().recomputed_tasks, 4u);
  // Everything ends on the sole survivor.
  EXPECT_EQ(ctx.cluster().live_nodes(), 1);
  for (std::int64_t p = 0; p < 4; ++p) {
    EXPECT_EQ(ctx.cluster().NodeOfPartition(p), 2) << "partition " << p;
  }
}

TEST(NodeLoss, BackToBackSameNodeLossesSecondIsNoOp) {
  // Elastic membership: a node dies once. A second plan for the same node
  // at the very next boundary finds it already dead and must be a no-op —
  // no double-counted failure, no double rebalance.
  auto cfg = TestCluster();
  cfg.nodes = 3;
  SparkletContext ctx(cfg);
  auto rdd = ctx.Parallelize("data", Iota(30), 6)->Persist();
  rdd->EnsureMaterialized();
  const auto before = rdd->Collect();

  const auto s = static_cast<std::int64_t>(ctx.metrics().stages);
  ctx.fault_injector().FailNode(1, s);
  ctx.fault_injector().FailNode(1, s + 1);
  ctx.cluster().RunStage({0.0}, "tick");
  EXPECT_EQ(ctx.metrics().executor_failures, 1u);
  const auto moved_once = ctx.metrics().migrated_partitions;
  ctx.cluster().RunStage({0.0}, "tick");  // second plan fires into a corpse
  EXPECT_EQ(ctx.metrics().executor_failures, 1u);
  EXPECT_EQ(ctx.metrics().migrated_partitions, moved_once);
  EXPECT_EQ(ctx.cluster().live_nodes(), 2);

  EXPECT_EQ(rdd->Collect(), before);
}

TEST(NodeLoss, ImpureMapSideAbortsWithDataLoss) {
  SparkletContext ctx(TestCluster());
  ctx.DriverWriteShared("side-channel", std::vector<std::uint8_t>(8, 1),
                        1024);
  std::vector<IntPair> data;
  for (std::int64_t i = 0; i < 20; ++i) data.push_back({i, i});
  // The map side of this shuffle reads the side channel: replaying it after
  // an executor loss is not sound, so recovery must refuse.
  auto tainted = ctx.Parallelize("pairs", data, 4)
                     ->Map("read-side",
                           [](const IntPair& rec, sparklet::TaskContext& tc) {
                             auto obj = tc.ReadShared("side-channel");
                             EXPECT_TRUE(obj.ok());
                             return rec;
                           });
  auto shuffled =
      PartitionBy(tainted, sparklet::MakePortableHash<std::int64_t>(4),
                  "tainted-by");
  shuffled->EnsureMaterialized();

  ctx.fault_injector().FailNode(0, ctx.metrics().stages);
  ctx.cluster().RunStage({0.0}, "tick");
  try {
    shuffled->Collect();
    FAIL() << "expected SparkletAbort(DATA_LOSS)";
  } catch (const SparkletAbort& abort) {
    EXPECT_EQ(abort.status().code(), StatusCode::kDataLoss);
  }
}

TEST(NodeLoss, LostCachedPartitionWithSideChannelReadsAbortsWithDataLoss) {
  SparkletContext ctx(TestCluster());
  ctx.DriverWriteShared("side-channel", std::vector<std::uint8_t>(8, 1),
                        1024);
  auto rdd = ctx.Parallelize("data", Iota(20), 4)
                 ->Map("read-side",
                       [](const std::int64_t& x, sparklet::TaskContext& tc) {
                         auto obj = tc.ReadShared("side-channel");
                         EXPECT_TRUE(obj.ok());
                         return x + 1;
                       })
                 ->Persist();
  rdd->EnsureMaterialized();
  ctx.fault_injector().FailNode(1, ctx.metrics().stages);
  ctx.cluster().RunStage({0.0}, "tick");
  try {
    rdd->Collect();
    FAIL() << "expected SparkletAbort(DATA_LOSS)";
  } catch (const SparkletAbort& abort) {
    EXPECT_EQ(abort.status().code(), StatusCode::kDataLoss);
  }
}

TEST(NodeLoss, PreservedShuffleBucketsAccountedToOwningNode) {
  SparkletContext ctx(TestCluster());
  std::vector<IntPair> data;
  for (std::int64_t i = 0; i < 60; ++i) data.push_back({i, i});
  const auto live0_before = ctx.cluster().accountant().node_live_bytes(0);
  auto shuffled =
      PartitionBy(ctx.Parallelize("pairs", data, 4),
                  sparklet::MakePortableHash<std::int64_t>(4));
  shuffled->EnsureMaterialized();
  // Map partitions 0 and 2 ran on node 0: their preserved output bytes are
  // resident there (block-manager accounting), on top of cached partitions.
  const auto live0_after = ctx.cluster().accountant().node_live_bytes(0);
  EXPECT_GT(live0_after, live0_before);

  // Node loss releases the node's share of the preserved buckets (and its
  // cached partitions) without touching the other node's residency.
  const auto live1 = ctx.cluster().accountant().node_live_bytes(1);
  ctx.fault_injector().FailNode(0, ctx.metrics().stages);
  ctx.cluster().RunStage({0.0}, "tick");
  EXPECT_EQ(ctx.cluster().accountant().node_live_bytes(0), 0u);
  EXPECT_EQ(ctx.cluster().accountant().node_live_bytes(1), live1);
}

TEST(StageKeys, RecoveryRerunsGetDistinctStageKeys) {
  SparkletContext ctx(TestCluster());
  auto rdd = ctx.Parallelize("data", Iota(24), 4)
                 ->Map("stamp",
                       [](const std::int64_t& x, sparklet::TaskContext& tc) {
                         tc.ChargeCompute(1e-6);
                         return x;
                       })
                 ->Persist();
  rdd->EnsureMaterialized();
  rdd->DropPartition(1);
  rdd->EnsureMaterialized();
  rdd->DropPartition(2);
  rdd->EnsureMaterialized();
  // Each re-materialization suffixes the retry attempt, so per-stage
  // metrics and the accountant's peak windows never collide.
  std::vector<std::string> names;
  for (const auto& peak : ctx.cluster().accountant().stage_peaks()) {
    names.push_back(peak.stage);
  }
  int base = 0, r1 = 0, r2 = 0;
  for (const auto& name : names) {
    if (name == "stamp") ++base;
    if (name == "stamp#r1") ++r1;
    if (name == "stamp#r2") ++r2;
  }
  EXPECT_EQ(base, 1) << "original stage key must appear exactly once";
  EXPECT_EQ(r1, 1) << "first re-run must be suffixed #r1";
  EXPECT_EQ(r2, 1) << "second re-run must be suffixed #r2";
}

TEST(Stragglers, SpeculationBoundsHardStragglerTail) {
  auto cfg = ClusterConfig::TinyTest();
  cfg.straggler_spread = 0.0;
  cfg.straggler_factor = 20.0;
  cfg.straggler_every = 4;
  const std::vector<double> tasks(16, 1.0);

  sparklet::VirtualCluster plain(cfg);
  plain.RunStage(tasks, "stage");

  cfg.speculation = true;
  cfg.speculation_multiplier = 1.5;
  sparklet::VirtualCluster speculating(cfg);
  speculating.RunStage(tasks, "stage");

  EXPECT_GT(speculating.metrics().speculative_tasks, 0u);
  EXPECT_LT(speculating.now_seconds(), plain.now_seconds());
  // Deterministic: the same configuration reproduces the same stage time.
  sparklet::VirtualCluster again(cfg);
  again.RunStage(tasks, "stage");
  EXPECT_DOUBLE_EQ(again.now_seconds(), speculating.now_seconds());
}

TEST(Stragglers, SpeculationAppliesToRecoveryStages) {
  // Speculative re-execution is not reserved for normal stages: a lineage
  // replay is a stage like any other, and a hard straggler in it stretches
  // exactly the window where the job is already degraded. The same
  // configuration must bound the recovery stage's tail too.
  auto cfg = ClusterConfig::TinyTest();
  cfg.straggler_spread = 0.0;
  cfg.straggler_factor = 20.0;
  cfg.straggler_every = 4;
  const std::vector<double> replay(16, 1.0);

  sparklet::VirtualCluster plain(cfg);
  plain.RunStage(replay, "recover", StageKind::kRecovery);

  cfg.speculation = true;
  cfg.speculation_multiplier = 1.5;
  sparklet::VirtualCluster speculating(cfg);
  speculating.RunStage(replay, "recover", StageKind::kRecovery);

  EXPECT_GT(speculating.metrics().speculative_tasks, 0u);
  EXPECT_LT(speculating.now_seconds(), plain.now_seconds());
}

TEST(Stragglers, PlaceholderTasksDoNotTriggerSpeculation) {
  // Stages routinely carry zero-cost placeholders (surviving partitions of
  // a recovery re-run, non-lost entries of a replay plan). The speculation
  // median must ignore them — otherwise every real task looks like a
  // straggler and collapses to ~zero modelled time.
  auto cfg = ClusterConfig::TinyTest();
  cfg.straggler_spread = 0.0;
  cfg.speculation = true;
  sparklet::VirtualCluster cluster(cfg);
  std::vector<double> tasks(16, 0.0);
  tasks[3] = 1.0;  // the one partition actually recomputed
  cluster.RunStage(tasks, "recovery-like");
  EXPECT_EQ(cluster.metrics().speculative_tasks, 0u);
  EXPECT_GE(cluster.now_seconds(), 1.0);  // the real task runs in full
}

TEST(Checkpoint, RoundTripsFrontierPanels) {
  const Graph g = graph::PaperErdosRenyi(24, 7);
  const BlockLayout layout(24, 8);
  SparkletContext ctx(TestCluster());
  const auto blocks = layout.Decompose(g.ToDenseAdjacency());
  std::vector<apsp::PanelRecord> panels;
  for (std::int64_t i = 0; i < layout.q(); ++i) {
    DenseBlock p(layout.BlockDim(i), 3, 1.5 * static_cast<double>(i + 1));
    panels.push_back({i, linalg::MakeRef(std::move(p))});
  }
  apsp::SaveCheckpoint(ctx, layout, blocks, 2, panels);
  auto loaded = apsp::LoadCheckpoint(ctx, layout);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->next_round, 2);
  ASSERT_EQ(loaded->panels.size(), panels.size());
  for (std::size_t i = 0; i < panels.size(); ++i) {
    EXPECT_EQ(loaded->panels[i].first, panels[i].first);
    ExpectBitwiseEqual(*loaded->panels[i].second, *panels[i].second,
                       "panel " + std::to_string(i));
  }
  EXPECT_GT(ctx.metrics().shared_fs_read_bytes, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: the purity dichotomy
// ---------------------------------------------------------------------------

struct SolverRun {
  apsp::ApspRunResult result;
  sparklet::SimMetrics metrics;
};

SolverRun RunApsp(SolverKind kind, const Graph& g, std::int64_t block,
                  const std::vector<sparklet::NodeFailurePlan>& failures,
                  std::int64_t checkpoint_every, int nodes = 2) {
  const BlockLayout layout(g.num_vertices(), block, g.directed());
  auto cfg = TestCluster();
  cfg.nodes = nodes;
  SparkletContext ctx(cfg);
  ApspOptions opts;
  opts.block_size = block;
  opts.directed = g.directed();
  opts.checkpoint_every = checkpoint_every;
  opts.fail_nodes = failures;
  auto solver = MakeSolver(kind);
  SolverRun run;
  run.result = solver->Solve(ctx, layout,
                             layout.Decompose(g.ToDenseAdjacency()), opts);
  run.metrics = ctx.metrics();
  return run;
}

TEST(EndToEnd, PureSolversRecoverInPlaceBitwise) {
  const Graph g = graph::PaperErdosRenyi(40, 11);
  Graph gi(g.num_vertices(), g.directed());
  for (const auto& e : g.edges()) {
    gi.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  const DenseBlock oracle = Oracle(gi);
  for (SolverKind kind : {SolverKind::kFloydWarshall2d,
                          SolverKind::kBlockedInMemory}) {
    // 4 nodes: both planned losses fire with survivors to rebalance onto
    // (the elastic cluster refuses to kill its last live node).
    auto clean = RunApsp(kind, gi, 10, {}, 0, /*nodes=*/4);
    ASSERT_TRUE(clean.result.status.ok()) << SolverKindName(kind);
    auto faulty = RunApsp(kind, gi, 10, {{1, 12}, {0, 25}}, 0, /*nodes=*/4);
    ASSERT_TRUE(faulty.result.status.ok())
        << SolverKindName(kind) << ": " << faulty.result.status.ToString();
    ASSERT_TRUE(faulty.result.distances.has_value());
    ExpectBitwiseEqual(*faulty.result.distances, oracle,
                       std::string(SolverKindName(kind)) + " vs oracle");
    ExpectBitwiseEqual(*faulty.result.distances, *clean.result.distances,
                       std::string(SolverKindName(kind)) + " vs clean run");
    EXPECT_EQ(faulty.metrics.executor_failures, 2u) << SolverKindName(kind);
    EXPECT_GT(faulty.metrics.recomputed_tasks, 0u) << SolverKindName(kind);
    EXPECT_GT(faulty.metrics.recovery_seconds, 0.0) << SolverKindName(kind);
    // Pure: lineage recovery, never a job restart.
    EXPECT_EQ(faulty.metrics.job_restarts, 0u) << SolverKindName(kind);
  }
}

TEST(EndToEnd, LossAtStageZeroBeforeAnyCache) {
  // The loss fires at the very first stage boundary, before any partition
  // was ever cached or shuffled: recovery has next to nothing to recompute,
  // the placement just rebalances, and the run proceeds bitwise-normally.
  const Graph g = graph::PaperErdosRenyi(32, 29);
  Graph gi(g.num_vertices(), g.directed());
  for (const auto& e : g.edges()) {
    gi.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  const DenseBlock oracle = Oracle(gi);
  auto clean = RunApsp(SolverKind::kFloydWarshall2d, gi, 8, {}, 0);
  auto faulty = RunApsp(SolverKind::kFloydWarshall2d, gi, 8, {{1, 0}}, 0);
  ASSERT_TRUE(faulty.result.status.ok()) << faulty.result.status.ToString();
  ASSERT_TRUE(faulty.result.distances.has_value());
  ExpectBitwiseEqual(*faulty.result.distances, oracle, "loss at stage 0");
  ExpectBitwiseEqual(*faulty.result.distances, *clean.result.distances,
                     "loss at stage 0 vs clean");
  EXPECT_EQ(faulty.metrics.executor_failures, 1u);
  EXPECT_EQ(faulty.metrics.job_restarts, 0u);
}

TEST(EndToEnd, ImpureSolversRestartFromCheckpointBitwise) {
  const Graph g = graph::PaperErdosRenyi(40, 13);
  Graph gi(g.num_vertices(), g.directed());
  for (const auto& e : g.edges()) {
    gi.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  const DenseBlock oracle = Oracle(gi);
  for (SolverKind kind : {SolverKind::kBlockedCollectBroadcast,
                          SolverKind::kRepeatedSquaring}) {
    auto clean = RunApsp(kind, gi, 10, {}, 0);
    ASSERT_TRUE(clean.result.status.ok()) << SolverKindName(kind);
    auto faulty = RunApsp(kind, gi, 10, {{1, 14}}, /*checkpoint_every=*/1);
    ASSERT_TRUE(faulty.result.status.ok())
        << SolverKindName(kind) << ": " << faulty.result.status.ToString();
    ASSERT_TRUE(faulty.result.distances.has_value());
    ExpectBitwiseEqual(*faulty.result.distances, oracle,
                       std::string(SolverKindName(kind)) + " vs oracle");
    ExpectBitwiseEqual(*faulty.result.distances, *clean.result.distances,
                       std::string(SolverKindName(kind)) + " vs clean run");
    EXPECT_EQ(faulty.metrics.executor_failures, 1u) << SolverKindName(kind);
    EXPECT_GE(faulty.metrics.job_restarts, 1u) << SolverKindName(kind);
    EXPECT_GT(faulty.metrics.recovery_seconds, 0.0) << SolverKindName(kind);
    EXPECT_GT(faulty.metrics.recomputed_tasks, 0u) << SolverKindName(kind);
  }
}

TEST(EndToEnd, ImpureSolverWithoutCheckpointRestartsFromScratch) {
  // Whether a given loss forces the impure path depends on where in the
  // round it lands (a loss before the first repartition materializes can
  // recover purely — the root RDD re-reads stable input and narrow chains
  // replay staged data that still exists). Sweep a window of stage
  // ordinals: every run must stay bitwise-correct, and the sweep must hit
  // at least one schedule that forces a restart-from-scratch.
  const Graph g = graph::PaperErdosRenyi(32, 17);
  Graph gi(g.num_vertices(), g.directed());
  for (const auto& e : g.edges()) {
    gi.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  const DenseBlock oracle = Oracle(gi);
  std::uint64_t restarts_seen = 0;
  // Step 1, covering full rounds: CB runs ~4 stages per round, and only
  // some boundaries (e.g. a loss right after a repartition the next round
  // still needs) force the impure path.
  for (std::int64_t stage = 8; stage <= 15; ++stage) {
    auto faulty = RunApsp(SolverKind::kBlockedCollectBroadcast, gi, 8,
                          {{0, stage}}, /*checkpoint_every=*/0);
    ASSERT_TRUE(faulty.result.status.ok())
        << "stage " << stage << ": " << faulty.result.status.ToString();
    ASSERT_TRUE(faulty.result.distances.has_value()) << "stage " << stage;
    ExpectBitwiseEqual(*faulty.result.distances, oracle,
                       "cb scratch restart, loss at stage " +
                           std::to_string(stage));
    restarts_seen += faulty.metrics.job_restarts;
  }
  EXPECT_GE(restarts_seen, 1u)
      << "no schedule in the sweep forced a restart";
}

TEST(EndToEnd, RestartBudgetExhaustionSurfacesDataLoss) {
  // Same sweep as above with a zero restart budget: wherever the impure
  // path fires, the job must surface DATA_LOSS instead of restarting.
  const Graph g = graph::PaperErdosRenyi(32, 17);
  const BlockLayout layout(32, 8);
  int data_loss_seen = 0;
  for (std::int64_t stage = 8; stage <= 15; ++stage) {
    SparkletContext ctx(TestCluster());
    ApspOptions opts;
    opts.block_size = 8;
    opts.max_restarts = 0;  // no budget: the first impure loss is fatal
    opts.fail_nodes = {{0, stage}};
    auto solver = MakeSolver(SolverKind::kBlockedCollectBroadcast);
    auto result = solver->Solve(ctx, layout,
                                layout.Decompose(g.ToDenseAdjacency()), opts);
    if (result.status.code() == StatusCode::kDataLoss) {
      ++data_loss_seen;
      EXPECT_FALSE(result.distances.has_value()) << "stage " << stage;
    }
  }
  EXPECT_GE(data_loss_seen, 1)
      << "no schedule in the sweep hit the impure path";
}

DenseBlock KsourceOracle(const Graph& g, const std::vector<VertexId>& sources) {
  DenseBlock d = Oracle(g);
  DenseBlock out(g.num_vertices(), static_cast<std::int64_t>(sources.size()),
                 linalg::kInf);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    for (std::size_t j = 0; j < sources.size(); ++j) {
      out.Set(v, static_cast<std::int64_t>(j), d.At(sources[j], v));
    }
  }
  return out;
}

TEST(EndToEnd, KsourceStagedRestartsShuffleRecoversBitwise) {
  const Graph g = graph::PaperErdosRenyi(40, 23);
  Graph gi(g.num_vertices(), g.directed());
  for (const auto& e : g.edges()) {
    gi.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  const std::vector<VertexId> sources = {0, 7, 19, 33};
  const DenseBlock oracle = KsourceOracle(gi, sources);
  for (const KsourceVariant variant : {KsourceVariant::kStagedStorage,
                                       KsourceVariant::kShuffleReplicated}) {
    KsourceOptions opts;
    opts.block_size = 10;
    opts.variant = variant;
    opts.fail_nodes = {{1, 18}};
    if (variant == KsourceVariant::kStagedStorage) opts.checkpoint_every = 2;
    KsourceBlockedSolver solver;
    auto result = solver.SolveGraph(gi, sources, opts, TestCluster());
    ASSERT_TRUE(result.status.ok())
        << apsp::KsourceVariantName(variant) << ": "
        << result.status.ToString();
    ASSERT_TRUE(result.distances.has_value());
    ExpectBitwiseEqual(*result.distances, oracle,
                       apsp::KsourceVariantName(variant));
    EXPECT_EQ(result.metrics.executor_failures, 1u);
    EXPECT_GT(result.metrics.recovery_seconds, 0.0);
    if (KsourceBlockedSolver::Pure(variant)) {
      EXPECT_EQ(result.metrics.job_restarts, 0u)
          << "pure variant must recover in place";
    } else {
      EXPECT_GE(result.metrics.job_restarts, 1u)
          << "staged variant must checkpoint-restart";
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded chaos property suite
// ---------------------------------------------------------------------------

TEST(Chaos, SeededRandomFailureSchedulesAllSolversBitwise) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed * 7919);
    const Graph g = IntegerGraph(rng);
    const DenseBlock oracle = Oracle(g);
    const std::int64_t block =
        4 + static_cast<std::int64_t>(rng.NextBounded(13));  // 4..16

    // 1-2 losses at random early stage boundaries on random nodes.
    std::vector<sparklet::NodeFailurePlan> schedule;
    const int failures = 1 + static_cast<int>(rng.NextBounded(2));
    for (int i = 0; i < failures; ++i) {
      schedule.push_back(
          {static_cast<int>(rng.NextBounded(2)),
           static_cast<std::int64_t>(rng.NextBounded(40))});
    }

    for (SolverKind kind :
         {SolverKind::kRepeatedSquaring, SolverKind::kFloydWarshall2d,
          SolverKind::kBlockedInMemory,
          SolverKind::kBlockedCollectBroadcast}) {
      const bool pure = MakeSolver(kind)->pure();
      auto run = RunApsp(kind, g, block, schedule,
                         /*checkpoint_every=*/pure ? 0 : 1);
      ASSERT_TRUE(run.result.status.ok())
          << SolverKindName(kind) << " seed " << seed << ": "
          << run.result.status.ToString();
      ASSERT_TRUE(run.result.distances.has_value());
      ExpectBitwiseEqual(*run.result.distances, oracle,
                         std::string(SolverKindName(kind)) + " seed " +
                             std::to_string(seed));
      if (pure) {
        EXPECT_EQ(run.metrics.job_restarts, 0u) << SolverKindName(kind);
      }
    }
  }
}

TEST(Chaos, SeededKsourceSchedules) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed * 104729);
    const Graph g = IntegerGraph(rng);
    const std::int64_t n = g.num_vertices();
    std::vector<VertexId> sources;
    const int k = 1 + static_cast<int>(rng.NextBounded(5));
    for (int j = 0; j < k; ++j) {
      sources.push_back(static_cast<VertexId>(
          rng.NextBounded(static_cast<std::uint64_t>(n))));
    }
    const DenseBlock oracle = KsourceOracle(g, sources);
    std::vector<sparklet::NodeFailurePlan> schedule = {
        {static_cast<int>(rng.NextBounded(2)),
         static_cast<std::int64_t>(rng.NextBounded(30))}};
    for (const KsourceVariant variant : {KsourceVariant::kStagedStorage,
                                         KsourceVariant::kShuffleReplicated}) {
      KsourceOptions opts;
      opts.block_size = 4 + static_cast<std::int64_t>(rng.NextBounded(13));
      opts.variant = variant;
      opts.directed = g.directed();
      opts.fail_nodes = schedule;
      if (!KsourceBlockedSolver::Pure(variant)) opts.checkpoint_every = 1;
      KsourceBlockedSolver solver;
      auto result = solver.SolveGraph(g, sources, opts, TestCluster());
      ASSERT_TRUE(result.status.ok())
          << apsp::KsourceVariantName(variant) << " seed " << seed << ": "
          << result.status.ToString();
      ASSERT_TRUE(result.distances.has_value());
      ExpectBitwiseEqual(*result.distances, oracle,
                         std::string(apsp::KsourceVariantName(variant)) +
                             " seed " + std::to_string(seed));
    }
  }
}

// ---------------------------------------------------------------------------
// Adaptive KSSP variant chooser
// ---------------------------------------------------------------------------

TEST(KsourceTuner, PrefersStagedOnFatSharedFs) {
  // The paper's testbed: GPFS sustains 16 GB/s aggregate while the GbE
  // fabric moves ~125 MB/s per node — staging through the shared FS wins.
  apsp::KsourceTuneRequest request;
  request.n = 16384;
  request.num_sources = 64;
  request.block_size = 1024;
  request.cluster = ClusterConfig::Paper();
  auto choice = apsp::ChooseKsourceVariant(request);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(*choice, KsourceVariant::kStagedStorage);
}

TEST(KsourceTuner, PrefersShuffleWhenSharedFsSlow) {
  // Starve the shared FS (an overloaded NFS appliance): per-file overhead
  // and low aggregate bandwidth make staging the bottleneck, so the
  // shuffle-replicated plane wins.
  apsp::KsourceTuneRequest request;
  request.n = 16384;
  request.num_sources = 64;
  request.block_size = 1024;
  request.cluster = ClusterConfig::Paper();
  request.cluster.shared_fs.aggregate_bandwidth_bytes_per_sec = 20.0e6;
  request.cluster.shared_fs.file_overhead_seconds = 0.25;
  auto choice = apsp::ChooseKsourceVariant(request);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(*choice, KsourceVariant::kShuffleReplicated);
}

TEST(KsourceTuner, FaultToleranceConstraintForcesShuffle) {
  apsp::KsourceTuneRequest request;
  request.n = 16384;
  request.num_sources = 64;
  request.block_size = 1024;
  request.cluster = ClusterConfig::Paper();
  request.require_fault_tolerance = true;
  auto choice = apsp::ChooseKsourceVariant(request);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(*choice, KsourceVariant::kShuffleReplicated);
}

TEST(KsourceTuner, RejectsInvalidRequests) {
  apsp::KsourceTuneRequest request;
  request.n = 1;
  request.num_sources = 4;
  EXPECT_FALSE(apsp::ChooseKsourceVariant(request).ok());
  request.n = 1024;
  request.num_sources = 0;
  EXPECT_FALSE(apsp::ChooseKsourceVariant(request).ok());
  request.num_sources = 4;
  request.block_size = 0;
  EXPECT_FALSE(apsp::ChooseKsourceVariant(request).ok());
}

}  // namespace
}  // namespace apspark
