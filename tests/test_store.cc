// Disk-backed block store + distance service.
//
// Round-trips (dense and bit-packed planes), ref-count/eviction invariants
// under a byte cap, corruption and truncation rejection, concurrent reader
// stress, and the end-to-end contract: a solve persisted through
// apsp::PersistSolve must answer every distance query bitwise-equal to the
// in-memory reference solve, and every reconstructed path must be a real
// path of that exact length.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "apsp/api.h"
#include "apsp/persist.h"
#include "graph/path_reconstruction.h"
#include "linalg/kernels.h"
#include "sparklet/memory_accountant.h"
#include "store/block_store.h"
#include "store/distance_service.h"
#include "test_support.h"

namespace apspark {
namespace {

namespace fs = std::filesystem;

/// Fresh store directory under the test temp dir, removed on destruction.
class TempStoreDir {
 public:
  explicit TempStoreDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("apspark_store_" + tag + "_" +
                std::to_string(static_cast<unsigned long long>(::getpid()))))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempStoreDir() { fs::remove_all(path_); }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

linalg::DenseBlock RandomDense(Xoshiro256& rng, std::int64_t rows,
                               std::int64_t cols) {
  linalg::DenseBlock block(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      block.Set(r, c, rng.NextDouble(0.0, 100.0));
    }
  }
  return block;
}

store::StoreManifest TinyManifest(std::int64_t n = 8, std::int64_t b = 4) {
  store::StoreManifest manifest;
  manifest.n = n;
  manifest.block_size = b;
  return manifest;
}

TEST(BlockStore, RoundTripsDenseAndPackedBlocks) {
  const std::uint64_t seed = 0xb10cULL;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  TempStoreDir dir("roundtrip");

  const auto dense = RandomDense(rng, 4, 4);
  auto packed = linalg::DenseBlock::PackedBoolean(4, 4, 0.0);
  packed.Set(0, 1, 1.0);
  packed.Set(3, 3, 1.0);
  ASSERT_TRUE(packed.is_packed());

  {
    auto writer = store::BlockStore::Create(dir.path(), TinyManifest());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(
        (*writer)->Put(store::Plane::kDistance, 0, 0, dense).ok());
    ASSERT_TRUE(
        (*writer)->Put(store::Plane::kDistance, 0, 1, packed).ok());
    ASSERT_TRUE((*writer)->Seal().ok());
  }

  auto reader = store::BlockStore::Open(dir.path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->manifest().n, 8);
  EXPECT_EQ((*reader)->manifest().entries.size(), 2u);

  auto got_dense = (*reader)->Fetch(store::Plane::kDistance, 0, 0);
  ASSERT_TRUE(got_dense.ok()) << got_dense.status().ToString();
  test::ExpectBitwiseEqual(got_dense->block(), dense, "dense round-trip");

  auto got_packed = (*reader)->Fetch(store::Plane::kDistance, 0, 1);
  ASSERT_TRUE(got_packed.ok()) << got_packed.status().ToString();
  EXPECT_TRUE(got_packed->block().is_packed())
      << "bit-packed plane must persist packed, not densified";
  test::ExpectBitwiseEqual(got_packed->block(), packed, "packed round-trip");
}

TEST(BlockStore, WriterProtocolRejectsMisuse) {
  TempStoreDir dir("misuse");
  auto writer = store::BlockStore::Create(dir.path(), TinyManifest());
  ASSERT_TRUE(writer.ok());
  store::BlockStore& bs = **writer;

  const auto phantom = linalg::DenseBlock::Phantom(4, 4);
  EXPECT_EQ(bs.Put(store::Plane::kDistance, 0, 0, phantom).code(),
            StatusCode::kFailedPrecondition);

  linalg::DenseBlock block(4, 4, 1.0);
  EXPECT_EQ(bs.Put(store::Plane::kDistance, 7, 0, block).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(bs.Put(store::Plane::kDistance, 0, 0, block).ok());
  EXPECT_EQ(bs.Put(store::Plane::kDistance, 0, 0, block).code(),
            StatusCode::kFailedPrecondition)
      << "double Put of one block key";

  // Fetch is the reader protocol; a writer store refuses it.
  EXPECT_EQ(bs.Fetch(store::Plane::kDistance, 0, 0).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(bs.Seal().ok());
  EXPECT_EQ(bs.Seal().code(), StatusCode::kFailedPrecondition);

  // A sealed directory refuses a second Create.
  EXPECT_EQ(store::BlockStore::Create(dir.path(), TinyManifest())
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(BlockStore, MissingBlockIsNotFound) {
  TempStoreDir dir("notfound");
  {
    auto writer = store::BlockStore::Create(dir.path(), TinyManifest());
    ASSERT_TRUE(writer.ok());
    linalg::DenseBlock block(4, 4, 1.0);
    ASSERT_TRUE((*writer)->Put(store::Plane::kDistance, 0, 0, block).ok());
    ASSERT_TRUE((*writer)->Seal().ok());
  }
  auto reader = store::BlockStore::Open(dir.path());
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE((*reader)->Contains(store::Plane::kDistance, 1, 1));
  EXPECT_EQ((*reader)->Fetch(store::Plane::kDistance, 1, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*reader)->Fetch(store::Plane::kNext, 0, 0).status().code(),
            StatusCode::kNotFound)
      << "store persisted without a successor plane";
}

TEST(BlockStore, CorruptAndTruncatedFilesAreRejected) {
  const std::uint64_t seed = 0xc0de;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  TempStoreDir dir("corrupt");
  {
    auto writer = store::BlockStore::Create(dir.path(), TinyManifest());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)
                    ->Put(store::Plane::kDistance, 0, 0,
                          RandomDense(rng, 4, 4))
                    .ok());
    ASSERT_TRUE((*writer)
                    ->Put(store::Plane::kDistance, 1, 1,
                          RandomDense(rng, 4, 4))
                    .ok());
    ASSERT_TRUE((*writer)->Seal().ok());
  }
  const auto block_path = fs::path(dir.path()) / "d_0_0.blk";

  // Flip one payload byte: checksum must catch it.
  {
    std::fstream f(block_path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(40);  // inside the payload, past the header
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(40);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  {
    auto reader = store::BlockStore::Open(dir.path());
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(
        (*reader)->Fetch(store::Plane::kDistance, 0, 0).status().code(),
        StatusCode::kStoreCorrupt);
    // A failed load leaves the entry retryable and the healthy block fine.
    EXPECT_EQ(
        (*reader)->Fetch(store::Plane::kDistance, 0, 0).status().code(),
        StatusCode::kStoreCorrupt);
    EXPECT_TRUE((*reader)->Fetch(store::Plane::kDistance, 1, 1).ok());
  }

  // Truncate the file: size validation must reject the short read.
  fs::resize_file(block_path, 16);
  {
    auto reader = store::BlockStore::Open(dir.path());
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(
        (*reader)->Fetch(store::Plane::kDistance, 0, 0).status().code(),
        StatusCode::kStoreCorrupt);
  }

  // Corrupt the manifest itself: Open must fail, not limp along.
  {
    std::fstream f(fs::path(dir.path()) / "MANIFEST.bin",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    const char garbage = 0x5a;
    f.write(&garbage, 1);
  }
  EXPECT_EQ(store::BlockStore::Open(dir.path()).status().code(),
            StatusCode::kStoreCorrupt);
}

TEST(BlockStore, EvictionKeepsResidencyUnderCapAndBalancesAccountant) {
  const std::uint64_t seed = 0xe71c;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  TempStoreDir dir("evict");

  constexpr std::int64_t kB = 16;
  constexpr std::int64_t kQ = 4;
  const std::uint64_t block_bytes =
      linalg::DenseBlock(kB, kB).SerializedBytes();
  {
    auto writer =
        store::BlockStore::Create(dir.path(), TinyManifest(kB * kQ, kB));
    ASSERT_TRUE(writer.ok());
    for (std::int64_t I = 0; I < kQ; ++I) {
      for (std::int64_t J = I; J < kQ; ++J) {
        ASSERT_TRUE((*writer)
                        ->Put(store::Plane::kDistance, I, J,
                              RandomDense(rng, kB, kB))
                        .ok());
      }
    }
    ASSERT_TRUE((*writer)->Seal().ok());
  }

  sparklet::MemoryAccountant accountant;
  store::BlockStore::Options options;
  options.cache_capacity_bytes = 3 * block_bytes;  // 3 of 10 blocks fit
  options.accountant = &accountant;
  {
    auto reader = store::BlockStore::Open(dir.path(), options);
    ASSERT_TRUE(reader.ok());
    store::BlockStore& bs = **reader;

    // Touch every block twice; residency must never exceed the cap once the
    // pins are released (single-threaded: at most one pin live at a time).
    for (int pass = 0; pass < 2; ++pass) {
      for (std::int64_t I = 0; I < kQ; ++I) {
        for (std::int64_t J = I; J < kQ; ++J) {
          auto pin = bs.Fetch(store::Plane::kDistance, I, J);
          ASSERT_TRUE(pin.ok()) << pin.status().ToString();
          EXPECT_FALSE(pin->block().is_phantom());
        }
        EXPECT_LE(bs.resident_bytes(), options.cache_capacity_bytes);
      }
    }
    const auto stats = bs.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.misses, 10u) << "second pass must re-load evicted blocks";
    EXPECT_LE(stats.resident_bytes, options.cache_capacity_bytes);
    // The accountant's driver ledger mirrors residency exactly.
    EXPECT_EQ(accountant.driver_live_bytes(), stats.resident_bytes);
  }
  // Store destruction releases everything it still held.
  EXPECT_EQ(accountant.driver_live_bytes(), 0u);
}

TEST(BlockStore, PinnedBlocksSurviveEvictionPressure) {
  const std::uint64_t seed = 0x911;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  TempStoreDir dir("pinned");

  constexpr std::int64_t kB = 16;
  const std::uint64_t block_bytes =
      linalg::DenseBlock(kB, kB).SerializedBytes();
  linalg::DenseBlock first = RandomDense(rng, kB, kB);
  {
    auto writer =
        store::BlockStore::Create(dir.path(), TinyManifest(kB * 4, kB));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Put(store::Plane::kDistance, 0, 0, first).ok());
    for (std::int64_t J = 1; J < 4; ++J) {
      ASSERT_TRUE((*writer)
                      ->Put(store::Plane::kDistance, 0, J,
                            RandomDense(rng, kB, kB))
                      .ok());
    }
    ASSERT_TRUE((*writer)->Seal().ok());
  }

  store::BlockStore::Options options;
  options.cache_capacity_bytes = block_bytes;  // room for exactly one block
  auto reader = store::BlockStore::Open(dir.path(), options);
  ASSERT_TRUE(reader.ok());
  store::BlockStore& bs = **reader;

  auto pinned = bs.Fetch(store::Plane::kDistance, 0, 0);
  ASSERT_TRUE(pinned.ok());
  // Stream the other blocks through a cache that only fits one: the pinned
  // block must never be evicted even though residency exceeds the cap.
  for (std::int64_t J = 1; J < 4; ++J) {
    auto pin = bs.Fetch(store::Plane::kDistance, 0, J);
    ASSERT_TRUE(pin.ok());
  }
  test::ExpectBitwiseEqual(pinned->block(), first, "pinned block intact");
  const auto hit_again = bs.Fetch(store::Plane::kDistance, 0, 0);
  ASSERT_TRUE(hit_again.ok());
  const auto stats = bs.stats();
  EXPECT_EQ(stats.misses, 4u) << "the pinned block never reloads";

  pinned->Release();
  // With the pin gone, pressure trims residency back under the cap.
  auto churn = bs.Fetch(store::Plane::kDistance, 0, 3);
  ASSERT_TRUE(churn.ok());
  churn->Release();
  EXPECT_LE(bs.resident_bytes(), options.cache_capacity_bytes);
}

TEST(BlockStore, ConcurrentReadersAgreeAndNeverDoubleLoad) {
  const std::uint64_t seed = 0xc0c0;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  TempStoreDir dir("concurrent");

  constexpr std::int64_t kB = 8;
  constexpr std::int64_t kQ = 3;
  std::vector<linalg::DenseBlock> originals;
  {
    auto writer =
        store::BlockStore::Create(dir.path(), TinyManifest(kB * kQ, kB));
    ASSERT_TRUE(writer.ok());
    for (std::int64_t I = 0; I < kQ; ++I) {
      for (std::int64_t J = I; J < kQ; ++J) {
        originals.push_back(RandomDense(rng, kB, kB));
        ASSERT_TRUE((*writer)
                        ->Put(store::Plane::kDistance, I, J,
                              originals.back())
                        .ok());
      }
    }
    ASSERT_TRUE((*writer)->Seal().ok());
  }

  store::BlockStore::Options options;
  options.cache_capacity_bytes =
      2 * linalg::DenseBlock(kB, kB).SerializedBytes();  // heavy churn
  auto reader = store::BlockStore::Open(dir.path(), options);
  ASSERT_TRUE(reader.ok());
  store::BlockStore& bs = **reader;

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      Xoshiro256 trng(seed + static_cast<std::uint64_t>(tid) + 1);
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        std::size_t index = 0;
        std::int64_t I = 0, J = 0;
        const auto pick = trng.NextBounded(kQ * (kQ + 1) / 2);
        for (std::int64_t a = 0; a < kQ && index <= pick; ++a) {
          for (std::int64_t b = a; b < kQ && index <= pick; ++b) {
            I = a;
            J = b;
            ++index;
          }
        }
        auto pin = bs.Fetch(store::Plane::kDistance, I, J);
        if (!pin.ok()) {
          ++mismatches;
          continue;
        }
        const auto& expected = originals[pick];
        // Spot-check a few elements while holding the pin.
        for (int probe = 0; probe < 4; ++probe) {
          const auto r = static_cast<std::int64_t>(trng.NextBounded(kB));
          const auto c = static_cast<std::int64_t>(trng.NextBounded(kB));
          if (pin->block().At(r, c) != expected.At(r, c)) ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const auto stats = bs.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_LE(bs.resident_bytes(), options.cache_capacity_bytes);
}

TEST(DistanceService, EndToEndSolvePersistQueryMatchesOracle) {
  // Integer weights: every path sum is exact, so the persisted answers must
  // equal the reference Floyd-Warshall *bitwise* for every pair — both
  // orientations, both geometries (directed / undirected triangle).
  for (const bool directed : {false, true}) {
    const std::uint64_t seed = directed ? 0xd1f2ULL : 0xd1f1ULL;
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed);
    test::RandomGraphOptions gopts;
    gopts.min_vertices = 20;
    gopts.max_vertices = 60;
    gopts.allow_directed = false;
    gopts.integer_weights = true;
    graph::Graph g = test::RandomTestGraph(rng, gopts);
    if (directed) {
      graph::Graph gd(g.num_vertices(), /*directed=*/true);
      for (const auto& e : g.edges()) {
        gd.AddEdge(e.u, e.v, e.weight).CheckOk();
        if (rng.NextDouble() < 0.5) gd.AddEdge(e.v, e.u, e.weight).CheckOk();
      }
      g = gd;
    }
    const std::int64_t n = g.num_vertices();

    linalg::DenseBlock oracle = g.ToDenseAdjacency();
    linalg::ReferenceFloydWarshall(oracle);

    // Solve through the public API, persist, serve.
    apsp::SolveRequest request;
    request.options.block_size = std::max<std::int64_t>(1, n / 3);
    request.options.directed = directed;
    request.cluster = test::TestCluster();
    auto report = apsp::Solve(g, request);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    TempStoreDir dir(directed ? "e2e_dir" : "e2e_undir");
    apsp::PersistOptions popts;
    popts.block_size = 16;  // re-block on persist: different geometry
    auto persisted =
        apsp::PersistSolve(dir.path(), *report.distances(), &g, directed,
                           linalg::SemiringId::kMinPlus, popts);
    ASSERT_TRUE(persisted.ok()) << persisted.ToString();

    store::DistanceService::Options sopts;
    sopts.num_threads = 4;
    auto service = store::DistanceService::Open(dir.path(), sopts);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    store::DistanceService& svc = **service;

    // Every pair, batched: answers must be bitwise-identical to the oracle.
    std::vector<store::DistanceService::Query> queries;
    for (std::int64_t s = 0; s < n; ++s) {
      for (std::int64_t t = 0; t < n; ++t) queries.push_back({s, t});
    }
    auto answers = svc.DistanceBatch(queries);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const double expected = oracle.At(queries[i].s, queries[i].t);
      const double actual = (*answers)[i];
      ASSERT_EQ(std::memcmp(&actual, &expected, sizeof(double)), 0)
          << "dist(" << queries[i].s << ", " << queries[i].t
          << "): served " << actual << " vs oracle " << expected
          << (directed ? " (directed)" : " (undirected)");
    }

    // Paths: for a sample of pairs, the reconstructed sequence must be a
    // genuine walk over graph edges whose total weight equals the distance.
    linalg::DenseBlock adjacency = g.ToDenseAdjacency();
    for (int probe = 0; probe < 64; ++probe) {
      const auto s = static_cast<graph::VertexId>(
          rng.NextBounded(static_cast<std::uint64_t>(n)));
      const auto t = static_cast<graph::VertexId>(
          rng.NextBounded(static_cast<std::uint64_t>(n)));
      auto path = svc.Path(s, t);
      if (std::isinf(oracle.At(s, t))) {
        EXPECT_EQ(path.status().code(), StatusCode::kNotFound);
        continue;
      }
      ASSERT_TRUE(path.ok()) << path.status().ToString();
      ASSERT_EQ(path->front(), s);
      ASSERT_EQ(path->back(), t);
      double total = 0;
      for (std::size_t hop = 0; hop + 1 < path->size(); ++hop) {
        const double w = adjacency.At((*path)[hop], (*path)[hop + 1]);
        ASSERT_FALSE(std::isinf(w))
            << "path uses a non-edge " << (*path)[hop] << "->"
            << (*path)[hop + 1];
        total += w;
      }
      EXPECT_EQ(total, oracle.At(s, t))
          << "path " << s << "->" << t << " has wrong length";
    }

    // Point queries agree with the batch, and bad queries are rejected.
    auto single = svc.Distance(0, n - 1);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(*single, oracle.At(0, n - 1));
    EXPECT_EQ(svc.Distance(-1, 0).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(svc.Distance(0, n).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(DistanceService, ServesUnderTightCacheCap) {
  // Queries must stay correct when the cache only fits a sliver of the
  // store — the acceptance criterion for bounded-memory serving.
  const std::uint64_t seed = 0xcab;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  graph::Graph g = graph::ErdosRenyi(64, 0.2, {1.0, 10.0}, seed);
  apsp::SolveRequest request;
  request.options.block_size = 16;
  request.cluster = test::TestCluster();
  auto report = apsp::Solve(g, request);
  ASSERT_TRUE(report.ok());

  TempStoreDir dir("tightcap");
  apsp::PersistOptions popts;
  popts.block_size = 8;
  popts.with_paths = false;
  ASSERT_TRUE(apsp::PersistSolve(dir.path(), *report.distances(), nullptr,
                                 false, linalg::SemiringId::kMinPlus, popts)
                  .ok());

  store::DistanceService::Options sopts;
  sopts.num_threads = 4;
  sopts.store_options.cache_capacity_bytes =
      2 * linalg::DenseBlock(8, 8).SerializedBytes();
  auto service = store::DistanceService::Open(dir.path(), sopts);
  ASSERT_TRUE(service.ok());
  store::DistanceService& svc = **service;
  EXPECT_FALSE(svc.has_paths());
  EXPECT_EQ(svc.Path(0, 1).status().code(), StatusCode::kFailedPrecondition);

  std::vector<store::DistanceService::Query> queries;
  for (int i = 0; i < 4000; ++i) {
    queries.push_back({static_cast<graph::VertexId>(rng.NextBounded(64)),
                       static_cast<graph::VertexId>(rng.NextBounded(64))});
  }
  auto answers = svc.DistanceBatch(queries);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double expected =
        report.distances()->At(queries[i].s, queries[i].t);
    ASSERT_EQ((*answers)[i], expected)
        << "query " << i << " under cache pressure";
  }
  const auto stats = svc.store().stats();
  EXPECT_GT(stats.evictions, 0u) << "cap was meant to force churn";
  EXPECT_LE(svc.store().resident_bytes(),
            sopts.store_options.cache_capacity_bytes);
}

TEST(SuccessorsFromDistances, AgreesWithTrackedFloydWarshall) {
  // The derived successor plane must yield paths exactly as short as the
  // O(n^3)-tracked reference on every reachable pair.
  const std::uint64_t seed = 0x5cc;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  for (int round = 0; round < 6; ++round) {
    test::RandomGraphOptions gopts;
    gopts.max_vertices = 40;
    gopts.integer_weights = true;
    graph::Graph g = test::RandomTestGraph(rng, gopts);
    const std::int64_t n = g.num_vertices();

    auto tracked = graph::FloydWarshallWithPaths(g);
    linalg::DenseBlock next =
        graph::SuccessorsFromDistances(g, tracked.distances);
    linalg::DenseBlock adjacency = g.ToDenseAdjacency();

    for (std::int64_t s = 0; s < n; ++s) {
      for (std::int64_t t = 0; t < n; ++t) {
        auto derived = graph::ExtractPathWithLookup(
            n, s, t, [&next](graph::VertexId i, graph::VertexId target) {
              return static_cast<std::int64_t>(next.At(i, target));
            });
        auto reference = graph::ExtractPath(tracked, s, t);
        ASSERT_EQ(derived.ok(), reference.ok())
            << s << "->" << t << " reachability disagrees";
        if (!derived.ok()) continue;
        double total = 0;
        for (std::size_t hop = 0; hop + 1 < derived->size(); ++hop) {
          total += adjacency.At((*derived)[hop], (*derived)[hop + 1]);
        }
        EXPECT_EQ(total, tracked.distances.At(s, t))
            << "derived path " << s << "->" << t << " not shortest";
      }
    }
  }
}

TEST(ZipfSampler, IsSkewedAndInRange) {
  Xoshiro256 rng(7);
  ZipfSampler zipf(1000, 1.1);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = zipf.Sample(rng);
    ASSERT_LT(v, 1000u);
    ++counts[static_cast<std::size_t>(v)];
  }
  // Rank 0 must dominate, and the head must carry far more than its uniform
  // share (100 of 100k draws per rank if uniform).
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 5000);
  int head = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(head, 25000) << "top-1% of ranks should absorb >25% of draws";
}

}  // namespace
}  // namespace apspark
