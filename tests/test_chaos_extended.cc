// Extended membership chaos harness (ctest label: chaos-extended).
//
// Thirty seeded schedules mixing single-node losses, correlated rack
// losses, and elastic node joins — fired at random stage boundaries on
// random topologies — driven through all four APSP solvers and both KSSP
// data planes. Every run must stay bitwise-equal to the scalar oracle
// (integer weights make every path sum exact), pure solvers must never
// restart, and the final placement must never map a partition to a dead
// node. Schedules are free to be hostile: plans targeting already-dead
// nodes are no-ops and the engine refuses to kill its last live node, so
// any random schedule is survivable by construction — what is being tested
// is that survival is bitwise-invisible.
//
// Runs as a separate CI step: ctest -L chaos-extended. Each case reports
// its seed on failure (APSPARK_SEEDED_CASE) for local replay.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "apsp/solver.h"
#include "apsp/solvers/ksource_blocked.h"
#include "graph/generators.h"
#include "linalg/kernels.h"
#include "sparklet/rdd.h"
#include "test_support.h"

namespace apspark {
namespace {

using apsp::ApspOptions;
using apsp::BlockLayout;
using apsp::KsourceBlockedSolver;
using apsp::KsourceOptions;
using apsp::KsourceVariant;
using apsp::MakeSolver;
using apsp::SolverKind;
using apsp::SolverKindName;
using graph::Graph;
using graph::VertexId;
using linalg::DenseBlock;
using sparklet::ClusterConfig;
using sparklet::SparkletContext;
using test::ExpectBitwiseEqual;
using test::TestCluster;

Graph IntegerGraph(Xoshiro256& rng) {
  test::RandomGraphOptions opts;
  opts.min_vertices = 16;
  opts.max_vertices = 40;
  opts.integer_weights = true;
  return test::RandomTestGraph(rng, opts);
}

DenseBlock Oracle(const Graph& g) {
  DenseBlock d = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(d);
  return d;
}

/// One random membership schedule: the cluster shape and 2-4 events (node
/// loss, rack loss, or join) at random early stage boundaries.
struct MembershipSchedule {
  int nodes = 2;
  int racks = 1;
  std::vector<sparklet::NodeFailurePlan> fail_nodes;
  std::vector<sparklet::RackFailurePlan> fail_racks;
  std::vector<std::int64_t> add_nodes;
};

MembershipSchedule DrawSchedule(Xoshiro256& rng) {
  MembershipSchedule s;
  s.nodes = 3 + static_cast<int>(rng.NextBounded(3));  // 3..5
  s.racks = 1 + static_cast<int>(rng.NextBounded(
                    static_cast<std::uint64_t>(s.nodes / 2 + 1)));
  const int events = 2 + static_cast<int>(rng.NextBounded(3));  // 2..4
  for (int i = 0; i < events; ++i) {
    const auto at_stage = static_cast<std::int64_t>(rng.NextBounded(40));
    switch (rng.NextBounded(3)) {
      case 0:
        s.fail_nodes.push_back(
            {static_cast<int>(
                 rng.NextBounded(static_cast<std::uint64_t>(s.nodes))),
             at_stage});
        break;
      case 1:
        s.fail_racks.push_back(
            {static_cast<int>(
                 rng.NextBounded(static_cast<std::uint64_t>(s.racks))),
             at_stage});
        break;
      default:
        s.add_nodes.push_back(at_stage);
        break;
    }
  }
  return s;
}

ClusterConfig ChaosCluster(const MembershipSchedule& s) {
  auto cfg = TestCluster();
  cfg.nodes = s.nodes;
  cfg.racks = s.racks;
  return cfg;
}

TEST(ChaosExtended, SeededMembershipSchedulesAllApspSolversBitwise) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed * 15485863);
    const Graph g = IntegerGraph(rng);
    const DenseBlock oracle = Oracle(g);
    const std::int64_t block =
        4 + static_cast<std::int64_t>(rng.NextBounded(13));  // 4..16
    const MembershipSchedule schedule = DrawSchedule(rng);
    // One solver per seed keeps the 30-schedule sweep fast while the seeds
    // rotate through all four kinds.
    const auto kinds = apsp::AllSolverKinds();
    const SolverKind kind = kinds[(seed - 1) % kinds.size()];
    const bool pure = MakeSolver(kind)->pure();

    const BlockLayout layout(g.num_vertices(), block, g.directed());
    SparkletContext ctx(ChaosCluster(schedule));
    ApspOptions opts;
    opts.block_size = block;
    opts.directed = g.directed();
    opts.checkpoint_every = pure ? 0 : 1;
    opts.fail_nodes = schedule.fail_nodes;
    opts.fail_racks = schedule.fail_racks;
    opts.add_nodes = schedule.add_nodes;
    auto result = MakeSolver(kind)->Solve(
        ctx, layout, layout.Decompose(g.ToDenseAdjacency()), opts);
    ASSERT_TRUE(result.status.ok())
        << SolverKindName(kind) << " seed " << seed << ": "
        << result.status.ToString();
    ASSERT_TRUE(result.distances.has_value());
    ExpectBitwiseEqual(*result.distances, oracle,
                       std::string(SolverKindName(kind)) + " seed " +
                           std::to_string(seed));
    if (pure) {
      EXPECT_EQ(ctx.metrics().job_restarts, 0u)
          << SolverKindName(kind) << " seed " << seed;
    }
    // The rebalanced placement never points at a corpse, and dead nodes
    // hold no accounted bytes.
    const auto& placement = ctx.cluster().placement();
    for (std::int64_t p = 0; p < placement.known_partitions(); ++p) {
      ASSERT_TRUE(placement.alive(placement.NodeOf(p)))
          << "seed " << seed << ": partition " << p << " on a dead node";
    }
    for (int n = 0; n < placement.num_nodes(); ++n) {
      if (!placement.alive(n)) {
        EXPECT_EQ(ctx.cluster().accountant().node_live_bytes(n), 0u)
            << "seed " << seed << ": dead node " << n << " holds bytes";
      }
    }
  }
}

TEST(ChaosExtended, SeededMembershipSchedulesBothKsourcePlanesBitwise) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed * 32452843);
    const Graph g = IntegerGraph(rng);
    const std::int64_t n = g.num_vertices();
    std::vector<VertexId> sources;
    const int k = 1 + static_cast<int>(rng.NextBounded(5));
    for (int j = 0; j < k; ++j) {
      sources.push_back(static_cast<VertexId>(
          rng.NextBounded(static_cast<std::uint64_t>(n))));
    }
    DenseBlock full = Oracle(g);
    DenseBlock oracle(n, static_cast<std::int64_t>(sources.size()),
                      linalg::kInf);
    for (std::int64_t v = 0; v < n; ++v) {
      for (std::size_t j = 0; j < sources.size(); ++j) {
        oracle.Set(v, static_cast<std::int64_t>(j), full.At(sources[j], v));
      }
    }
    const MembershipSchedule schedule = DrawSchedule(rng);
    const KsourceVariant variant = seed % 2 == 0
                                       ? KsourceVariant::kStagedStorage
                                       : KsourceVariant::kShuffleReplicated;
    KsourceOptions opts;
    opts.block_size = 4 + static_cast<std::int64_t>(rng.NextBounded(13));
    opts.variant = variant;
    opts.directed = g.directed();
    opts.fail_nodes = schedule.fail_nodes;
    opts.fail_racks = schedule.fail_racks;
    opts.add_nodes = schedule.add_nodes;
    if (!KsourceBlockedSolver::Pure(variant)) opts.checkpoint_every = 1;
    KsourceBlockedSolver solver;
    auto result = solver.SolveGraph(g, sources, opts, ChaosCluster(schedule));
    ASSERT_TRUE(result.status.ok())
        << apsp::KsourceVariantName(variant) << " seed " << seed << ": "
        << result.status.ToString();
    ASSERT_TRUE(result.distances.has_value());
    ExpectBitwiseEqual(*result.distances, oracle,
                       std::string(apsp::KsourceVariantName(variant)) +
                           " seed " + std::to_string(seed));
    if (KsourceBlockedSolver::Pure(variant)) {
      EXPECT_EQ(result.metrics.job_restarts, 0u)
          << "seed " << seed << ": pure plane must recover in place";
    }
  }
}

}  // namespace
}  // namespace apspark
