// Shared test-support harness.
//
// Every randomized suite draws its inputs from the generators here with a
// fixed per-case seed, and reports that seed on failure (APSPARK_SEEDED_CASE)
// so any red CI run can be replayed locally from the log alone. The block
// comparator checks *bitwise* equality — the kernel registry's guarantee is
// that every variant applies (min, +) candidates in the same order, so
// matching within a tolerance would mask real divergence.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "linalg/dense_block.h"
#include "sparklet/config.h"

/// Prints the case's RNG seed on any assertion failure inside the enclosing
/// scope, so randomized suites are reproducible from CI logs.
#define APSPARK_SEEDED_CASE(seed) \
  SCOPED_TRACE(::testing::Message() << "rng seed = " << (seed))

namespace apspark::test {

/// Cluster the correctness suites run on: tiny topology for speed, ample
/// local storage so no test trips the exhaustion path by accident.
inline sparklet::ClusterConfig TestCluster() {
  auto cfg = sparklet::ClusterConfig::TinyTest();
  cfg.local_storage_bytes = 16ULL * kGiB;
  return cfg;
}

/// Bitwise block comparator: shapes, infinity patterns, and payload bit
/// patterns must match exactly. On mismatch, reports the first differing
/// element with full precision.
inline void ExpectBitwiseEqual(const linalg::DenseBlock& actual,
                               const linalg::DenseBlock& expected,
                               const std::string& label = "") {
  ASSERT_EQ(actual.rows(), expected.rows()) << label;
  ASSERT_EQ(actual.cols(), expected.cols()) << label;
  ASSERT_EQ(actual.is_phantom(), expected.is_phantom()) << label;
  if (actual.is_phantom()) return;
  // Bit-packed operands (boolean plane) compare element-wise through At(),
  // which reads packed and dense representations transparently — a packed
  // block must equal its dense 0/1 image exactly.
  if (!actual.is_packed() && !expected.is_packed()) {
    const std::size_t bytes =
        static_cast<std::size_t>(actual.size()) * sizeof(double);
    if (std::memcmp(actual.data(), expected.data(), bytes) == 0) return;
  }
  for (std::int64_t r = 0; r < actual.rows(); ++r) {
    for (std::int64_t c = 0; c < actual.cols(); ++c) {
      const double a = actual.At(r, c);
      const double e = expected.At(r, c);
      if (std::memcmp(&a, &e, sizeof(double)) != 0) {
        ADD_FAILURE() << label << ": first bitwise mismatch at (" << r << ", "
                      << c << "): actual "
                      << ::testing::PrintToString(a) << " vs expected "
                      << ::testing::PrintToString(e) << " (diff " << (a - e)
                      << ")";
        return;
      }
    }
  }
}

/// Two Erdős–Rényi components with no inter-component edges: distances
/// across the cut must stay +inf all the way through a solver.
inline graph::Graph TwoComponentGraph(graph::VertexId n_each,
                                      std::uint64_t seed_a,
                                      std::uint64_t seed_b,
                                      bool directed = false) {
  graph::Graph g(2 * n_each, directed);
  const graph::Graph a = graph::PaperErdosRenyi(n_each, seed_a);
  for (const auto& e : a.edges()) g.AddEdge(e.u, e.v, e.weight).CheckOk();
  const graph::Graph b = graph::PaperErdosRenyi(n_each, seed_b);
  for (const auto& e : b.edges()) {
    g.AddEdge(e.u + n_each, e.v + n_each, e.weight).CheckOk();
  }
  return g;
}

struct RandomGraphOptions {
  graph::VertexId min_vertices = 2;
  graph::VertexId max_vertices = 96;
  /// Draw directed graphs with probability ~0.3.
  bool allow_directed = true;
  /// Round weights to integers in [1, 10]. Integer weights make every path
  /// sum exact in double precision, so two algorithmically different solvers
  /// must agree *bitwise* — the strongest oracle a randomized suite can use.
  bool integer_weights = false;
};

/// Random test graph spanning the regimes the solvers must survive:
/// inf-heavy sparse (often naturally disconnected), paper-density, dense;
/// directed or undirected; occasionally forced into two disconnected
/// components. Weights are always positive (negative-free).
inline graph::Graph RandomTestGraph(Xoshiro256& rng,
                                    const RandomGraphOptions& opts = {}) {
  const graph::VertexId n =
      opts.min_vertices +
      static_cast<graph::VertexId>(rng.NextBounded(static_cast<std::uint64_t>(
          opts.max_vertices - opts.min_vertices + 1)));
  const bool directed = opts.allow_directed && rng.NextDouble() < 0.3;

  graph::Graph g(0);
  if (!directed && n >= 8 && rng.NextDouble() < 0.2) {
    g = TwoComponentGraph(n / 2, rng.Next(), rng.Next());
  } else {
    const double mode = rng.NextDouble();
    double p;
    if (mode < 0.3) {
      p = 1.5 / static_cast<double>(n);  // inf-heavy, usually disconnected
    } else if (mode < 0.6) {
      p = graph::PaperEdgeProbability(n);
    } else {
      p = 0.15 + 0.25 * rng.NextDouble();  // dense-ish
    }
    g = graph::ErdosRenyi(n, p, {1.0, 10.0}, rng.Next(), directed);
  }
  if (!opts.integer_weights) return g;

  graph::Graph gi(g.num_vertices(), g.directed());
  for (const auto& e : g.edges()) {
    gi.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  return gi;
}

}  // namespace apspark::test
