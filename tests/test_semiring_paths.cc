// Tests for the semiring generalization and path reconstruction extensions.
#include <gtest/gtest.h>

#include <cmath>

#include "apsp/solvers/ksource_blocked.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/path_reconstruction.h"
#include "graph/shortest_paths.h"
#include "linalg/kernels.h"
#include "linalg/semiring.h"
#include "test_support.h"

namespace apspark {
namespace {

using linalg::BooleanSemiring;
using linalg::DenseBlock;
using linalg::kInf;
using linalg::MinPlusSemiring;

TEST(Semiring, MinPlusInstantiationMatchesDedicatedKernel) {
  Xoshiro256 rng(1);
  DenseBlock a(7, 5, 0.0), b(5, 9, 0.0);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    a.mutable_data()[i] = rng.NextDouble() < 0.2 ? kInf : rng.NextDouble(0, 9);
  }
  for (std::int64_t i = 0; i < b.size(); ++i) {
    b.mutable_data()[i] = rng.NextDouble() < 0.2 ? kInf : rng.NextDouble(0, 9);
  }
  EXPECT_TRUE(linalg::SemiringProduct<MinPlusSemiring>(a, b).ApproxEquals(
      linalg::MinPlusProduct(a, b)));
}

TEST(Semiring, ClosureMatchesFloydWarshall) {
  const graph::Graph g = graph::PaperErdosRenyi(40, 2);
  DenseBlock a = g.ToDenseAdjacency();
  DenseBlock b = a;
  linalg::SemiringClosure<MinPlusSemiring>(a);
  linalg::FloydWarshallInPlace(b);
  EXPECT_TRUE(a.ApproxEquals(b));
}

TEST(Semiring, BooleanAlgebra) {
  EXPECT_EQ(BooleanSemiring::Add(0.0, 1.0), 1.0);
  EXPECT_EQ(BooleanSemiring::Add(0.0, 0.0), 0.0);
  EXPECT_EQ(BooleanSemiring::Multiply(1.0, 1.0), 1.0);
  EXPECT_EQ(BooleanSemiring::Multiply(1.0, 0.0), 0.0);
  EXPECT_EQ(BooleanSemiring::Zero(), 0.0);
  EXPECT_EQ(BooleanSemiring::One(), 1.0);
}

TEST(Semiring, TransitiveClosureMatchesReachability) {
  // Two components: 0-1-2 and 3-4.
  graph::Graph g(5);
  g.AddEdge(0, 1, 1.0).CheckOk();
  g.AddEdge(1, 2, 1.0).CheckOk();
  g.AddEdge(3, 4, 1.0).CheckOk();
  const DenseBlock reach = linalg::TransitiveClosure(g.ToDenseAdjacency());
  const DenseBlock dist = graph::DijkstraAllPairs(g);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_EQ(reach.At(i, j) != 0.0, !std::isinf(dist.At(i, j)))
          << i << "," << j;
    }
  }
}

TEST(Semiring, TransitiveClosureDirectedIsAsymmetric) {
  graph::Graph g(3, /*directed=*/true);
  g.AddEdge(0, 1, 1.0).CheckOk();
  g.AddEdge(1, 2, 1.0).CheckOk();
  const DenseBlock reach = linalg::TransitiveClosure(g.ToDenseAdjacency());
  EXPECT_EQ(reach.At(0, 2), 1.0);
  EXPECT_EQ(reach.At(2, 0), 0.0);
}

TEST(Paths, ReconstructedPathsAreShortestAndConsistent) {
  const graph::Graph g = graph::PaperErdosRenyi(60, 3);
  const auto apsp = graph::FloydWarshallWithPaths(g);
  const auto truth = graph::DijkstraAllPairs(g);
  EXPECT_TRUE(apsp.distances.ApproxEquals(truth, 1e-9));
  // Every reconstructed path must be a real walk whose edge weights sum to
  // the reported distance.
  const auto adjacency = g.ToDenseAdjacency();
  for (graph::VertexId s = 0; s < 60; s += 7) {
    for (graph::VertexId t = 0; t < 60; t += 5) {
      if (std::isinf(apsp.distances.At(s, t))) {
        EXPECT_FALSE(graph::ExtractPath(apsp, s, t).ok());
        continue;
      }
      auto path = graph::ExtractPath(apsp, s, t);
      ASSERT_TRUE(path.ok()) << s << "->" << t;
      ASSERT_GE(path->size(), 1u);
      EXPECT_EQ(path->front(), s);
      EXPECT_EQ(path->back(), t);
      double total = 0;
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        const double w = adjacency.At((*path)[i], (*path)[i + 1]);
        ASSERT_FALSE(std::isinf(w)) << "path uses a non-edge";
        total += w;
      }
      EXPECT_NEAR(total, apsp.distances.At(s, t), 1e-9);
    }
  }
}

TEST(Paths, KsourcePanelDistancesAreRealizedByReconstructedPaths) {
  // Distances computed by the batched k-source sweep must be *realizable*:
  // for every (source, target) pair, the successor-matrix reconstruction
  // yields an actual walk in the graph whose edge weights sum to the panel
  // entry. Ties the KSSP workload to the path-reconstruction extension.
  const std::uint64_t seed = 12;
  APSPARK_SEEDED_CASE(seed);
  const graph::Graph g = graph::PaperErdosRenyi(56, seed);
  const std::vector<graph::VertexId> sources = {0, 7, 23, 41, 55};
  apsp::KsourceOptions opts;
  opts.block_size = 16;
  apsp::KsourceBlockedSolver solver;
  auto result = solver.SolveGraph(g, sources, opts, test::TestCluster());
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_TRUE(result.distances.has_value());
  const auto& panel = *result.distances;

  const auto apsp = graph::FloydWarshallWithPaths(g);
  const auto adjacency = g.ToDenseAdjacency();
  for (std::size_t j = 0; j < sources.size(); ++j) {
    const graph::VertexId s = sources[j];
    for (graph::VertexId t = 0; t < g.num_vertices(); t += 3) {
      const double dist = panel.At(t, static_cast<std::int64_t>(j));
      if (std::isinf(dist)) {
        EXPECT_FALSE(graph::ExtractPath(apsp, s, t).ok());
        continue;
      }
      auto path = graph::ExtractPath(apsp, s, t);
      ASSERT_TRUE(path.ok()) << s << "->" << t;
      ASSERT_GE(path->size(), 1u);
      EXPECT_EQ(path->front(), s);
      EXPECT_EQ(path->back(), t);
      double total = 0;
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        const double w = adjacency.At((*path)[i], (*path)[i + 1]);
        ASSERT_FALSE(std::isinf(w)) << "path uses a non-edge";
        total += w;
      }
      EXPECT_NEAR(total, dist, 1e-9)
          << "source " << s << " -> " << t << " via panel column " << j;
    }
  }
}

TEST(Paths, DirectedKsourcePanelRealizedOnDigraph) {
  // Same realizability check on a digraph: panel columns are source-rooted
  // (dist(s -> v)), so reconstruction must follow edge orientation.
  const graph::Graph g = graph::ErdosRenyi(30, 0.2, {1.0, 5.0}, /*seed=*/9,
                                           /*directed=*/true);
  const std::vector<graph::VertexId> sources = {3, 11, 28};
  apsp::KsourceOptions opts;
  opts.block_size = 8;
  apsp::KsourceBlockedSolver solver;
  auto result = solver.SolveGraph(g, sources, opts, test::TestCluster());
  ASSERT_TRUE(result.status.ok());
  const auto& panel = *result.distances;
  const auto apsp = graph::FloydWarshallWithPaths(g);
  const auto adjacency = g.ToDenseAdjacency();
  for (std::size_t j = 0; j < sources.size(); ++j) {
    const graph::VertexId s = sources[j];
    for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
      const double dist = panel.At(t, static_cast<std::int64_t>(j));
      if (std::isinf(dist)) continue;
      auto path = graph::ExtractPath(apsp, s, t);
      ASSERT_TRUE(path.ok()) << s << "->" << t;
      double total = 0;
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        total += adjacency.At((*path)[i], (*path)[i + 1]);
      }
      EXPECT_NEAR(total, dist, 1e-9) << s << "->" << t;
    }
  }
}

TEST(Paths, TrivialAndDegenerateCases) {
  const graph::Graph g = graph::PathGraph(4, 2.0);
  const auto apsp = graph::FloydWarshallWithPaths(g);
  auto self = graph::ExtractPath(apsp, 2, 2);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(*self, (std::vector<graph::VertexId>{2}));
  auto full = graph::ExtractPath(apsp, 0, 3);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, (std::vector<graph::VertexId>{0, 1, 2, 3}));
  EXPECT_FALSE(graph::ExtractPath(apsp, 0, 9).ok());
}

TEST(Paths, DirectedPathsFollowEdgeOrientation) {
  graph::Graph g(4, /*directed=*/true);
  g.AddEdge(0, 1, 1.0).CheckOk();
  g.AddEdge(1, 2, 1.0).CheckOk();
  g.AddEdge(2, 3, 1.0).CheckOk();
  g.AddEdge(3, 0, 1.0).CheckOk();  // cycle
  const auto apsp = graph::FloydWarshallWithPaths(g);
  auto forward = graph::ExtractPath(apsp, 0, 3);
  ASSERT_TRUE(forward.ok());
  EXPECT_EQ(forward->size(), 4u);
  auto back = graph::ExtractPath(apsp, 3, 0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);  // direct edge 3->0
}

}  // namespace
}  // namespace apspark
