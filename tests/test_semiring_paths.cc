// Tests for the semiring generalization and path reconstruction extensions.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include "apsp/solver.h"
#include "apsp/solvers/ksource_blocked.h"
#include "common/rng.h"
#include "common/serial.h"
#include "graph/generators.h"
#include "graph/path_reconstruction.h"
#include "graph/shortest_paths.h"
#include "linalg/kernel_registry.h"
#include "linalg/kernels.h"
#include "linalg/semiring.h"
#include "test_support.h"

namespace apspark {
namespace {

using linalg::BooleanSemiring;
using linalg::DenseBlock;
using linalg::kInf;
using linalg::KernelVariant;
using linalg::MaxMinSemiring;
using linalg::MaxTimesSemiring;
using linalg::MinPlusSemiring;
using linalg::SemiringId;

constexpr SemiringId kAllSemirings[] = {SemiringId::kMinPlus,
                                        SemiringId::kBoolean,
                                        SemiringId::kMaxMin,
                                        SemiringId::kMaxTimes};
constexpr KernelVariant kAllVariants[] = {KernelVariant::kNaive,
                                          KernelVariant::kTiled,
                                          KernelVariant::kTiledParallel};

/// Scalar per-semiring oracle: ingest the min-plus adjacency into the
/// algebra and run the triple-loop closure. Everything the fused engine
/// produces is locked bitwise against this.
DenseBlock OracleClosure(const DenseBlock& minplus_adj, SemiringId id) {
  DenseBlock base = linalg::SemiringAdjacency(minplus_adj, id);
  linalg::SemiringClosureDispatch(id, base);
  return base;
}

DenseBlock OracleProduct(SemiringId id, const DenseBlock& a,
                         const DenseBlock& b) {
  std::optional<DenseBlock> out;
  linalg::WithSemiring(id, [&](auto s) {
    using S = decltype(s);
    out = linalg::SemiringProduct<S>(a, b);
  });
  return *out;
}

/// Random dense 0/1 matrix (for the bit-packed plane's equivalence tests).
DenseBlock RandomBooleanDense(Xoshiro256& rng, std::int64_t rows,
                              std::int64_t cols, double density = 0.3) {
  DenseBlock m(rows, cols, 0.0);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      if (rng.NextDouble() < density) m.Set(i, j, 1.0);
    }
  }
  return m;
}

TEST(Semiring, MinPlusInstantiationMatchesDedicatedKernel) {
  Xoshiro256 rng(1);
  DenseBlock a(7, 5, 0.0), b(5, 9, 0.0);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    a.mutable_data()[i] = rng.NextDouble() < 0.2 ? kInf : rng.NextDouble(0, 9);
  }
  for (std::int64_t i = 0; i < b.size(); ++i) {
    b.mutable_data()[i] = rng.NextDouble() < 0.2 ? kInf : rng.NextDouble(0, 9);
  }
  EXPECT_TRUE(linalg::SemiringProduct<MinPlusSemiring>(a, b).ApproxEquals(
      linalg::MinPlusProduct(a, b)));
}

TEST(Semiring, ClosureMatchesFloydWarshall) {
  const graph::Graph g = graph::PaperErdosRenyi(40, 2);
  DenseBlock a = g.ToDenseAdjacency();
  DenseBlock b = a;
  linalg::SemiringClosure<MinPlusSemiring>(a);
  linalg::FloydWarshallInPlace(b);
  EXPECT_TRUE(a.ApproxEquals(b));
}

TEST(Semiring, BooleanAlgebra) {
  EXPECT_EQ(BooleanSemiring::Add(0.0, 1.0), 1.0);
  EXPECT_EQ(BooleanSemiring::Add(0.0, 0.0), 0.0);
  EXPECT_EQ(BooleanSemiring::Multiply(1.0, 1.0), 1.0);
  EXPECT_EQ(BooleanSemiring::Multiply(1.0, 0.0), 0.0);
  EXPECT_EQ(BooleanSemiring::Zero(), 0.0);
  EXPECT_EQ(BooleanSemiring::One(), 1.0);
}

TEST(Semiring, TransitiveClosureMatchesReachability) {
  // Two components: 0-1-2 and 3-4.
  graph::Graph g(5);
  g.AddEdge(0, 1, 1.0).CheckOk();
  g.AddEdge(1, 2, 1.0).CheckOk();
  g.AddEdge(3, 4, 1.0).CheckOk();
  const DenseBlock reach = linalg::TransitiveClosure(g.ToDenseAdjacency());
  const DenseBlock dist = graph::DijkstraAllPairs(g);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_EQ(reach.At(i, j) != 0.0, !std::isinf(dist.At(i, j)))
          << i << "," << j;
    }
  }
}

TEST(Semiring, TransitiveClosureDirectedIsAsymmetric) {
  graph::Graph g(3, /*directed=*/true);
  g.AddEdge(0, 1, 1.0).CheckOk();
  g.AddEdge(1, 2, 1.0).CheckOk();
  const DenseBlock reach = linalg::TransitiveClosure(g.ToDenseAdjacency());
  EXPECT_EQ(reach.At(0, 2), 1.0);
  EXPECT_EQ(reach.At(2, 0), 0.0);
}

TEST(Paths, ReconstructedPathsAreShortestAndConsistent) {
  const graph::Graph g = graph::PaperErdosRenyi(60, 3);
  const auto apsp = graph::FloydWarshallWithPaths(g);
  const auto truth = graph::DijkstraAllPairs(g);
  EXPECT_TRUE(apsp.distances.ApproxEquals(truth, 1e-9));
  // Every reconstructed path must be a real walk whose edge weights sum to
  // the reported distance.
  const auto adjacency = g.ToDenseAdjacency();
  for (graph::VertexId s = 0; s < 60; s += 7) {
    for (graph::VertexId t = 0; t < 60; t += 5) {
      if (std::isinf(apsp.distances.At(s, t))) {
        EXPECT_FALSE(graph::ExtractPath(apsp, s, t).ok());
        continue;
      }
      auto path = graph::ExtractPath(apsp, s, t);
      ASSERT_TRUE(path.ok()) << s << "->" << t;
      ASSERT_GE(path->size(), 1u);
      EXPECT_EQ(path->front(), s);
      EXPECT_EQ(path->back(), t);
      double total = 0;
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        const double w = adjacency.At((*path)[i], (*path)[i + 1]);
        ASSERT_FALSE(std::isinf(w)) << "path uses a non-edge";
        total += w;
      }
      EXPECT_NEAR(total, apsp.distances.At(s, t), 1e-9);
    }
  }
}

TEST(Paths, KsourcePanelDistancesAreRealizedByReconstructedPaths) {
  // Distances computed by the batched k-source sweep must be *realizable*:
  // for every (source, target) pair, the successor-matrix reconstruction
  // yields an actual walk in the graph whose edge weights sum to the panel
  // entry. Ties the KSSP workload to the path-reconstruction extension.
  const std::uint64_t seed = 12;
  APSPARK_SEEDED_CASE(seed);
  const graph::Graph g = graph::PaperErdosRenyi(56, seed);
  const std::vector<graph::VertexId> sources = {0, 7, 23, 41, 55};
  apsp::KsourceOptions opts;
  opts.block_size = 16;
  apsp::KsourceBlockedSolver solver;
  auto result = solver.SolveGraph(g, sources, opts, test::TestCluster());
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_TRUE(result.distances.has_value());
  const auto& panel = *result.distances;

  const auto apsp = graph::FloydWarshallWithPaths(g);
  const auto adjacency = g.ToDenseAdjacency();
  for (std::size_t j = 0; j < sources.size(); ++j) {
    const graph::VertexId s = sources[j];
    for (graph::VertexId t = 0; t < g.num_vertices(); t += 3) {
      const double dist = panel.At(t, static_cast<std::int64_t>(j));
      if (std::isinf(dist)) {
        EXPECT_FALSE(graph::ExtractPath(apsp, s, t).ok());
        continue;
      }
      auto path = graph::ExtractPath(apsp, s, t);
      ASSERT_TRUE(path.ok()) << s << "->" << t;
      ASSERT_GE(path->size(), 1u);
      EXPECT_EQ(path->front(), s);
      EXPECT_EQ(path->back(), t);
      double total = 0;
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        const double w = adjacency.At((*path)[i], (*path)[i + 1]);
        ASSERT_FALSE(std::isinf(w)) << "path uses a non-edge";
        total += w;
      }
      EXPECT_NEAR(total, dist, 1e-9)
          << "source " << s << " -> " << t << " via panel column " << j;
    }
  }
}

TEST(Paths, DirectedKsourcePanelRealizedOnDigraph) {
  // Same realizability check on a digraph: panel columns are source-rooted
  // (dist(s -> v)), so reconstruction must follow edge orientation.
  const graph::Graph g = graph::ErdosRenyi(30, 0.2, {1.0, 5.0}, /*seed=*/9,
                                           /*directed=*/true);
  const std::vector<graph::VertexId> sources = {3, 11, 28};
  apsp::KsourceOptions opts;
  opts.block_size = 8;
  apsp::KsourceBlockedSolver solver;
  auto result = solver.SolveGraph(g, sources, opts, test::TestCluster());
  ASSERT_TRUE(result.status.ok());
  const auto& panel = *result.distances;
  const auto apsp = graph::FloydWarshallWithPaths(g);
  const auto adjacency = g.ToDenseAdjacency();
  for (std::size_t j = 0; j < sources.size(); ++j) {
    const graph::VertexId s = sources[j];
    for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
      const double dist = panel.At(t, static_cast<std::int64_t>(j));
      if (std::isinf(dist)) continue;
      auto path = graph::ExtractPath(apsp, s, t);
      ASSERT_TRUE(path.ok()) << s << "->" << t;
      double total = 0;
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        total += adjacency.At((*path)[i], (*path)[i + 1]);
      }
      EXPECT_NEAR(total, dist, 1e-9) << s << "->" << t;
    }
  }
}

TEST(Paths, TrivialAndDegenerateCases) {
  const graph::Graph g = graph::PathGraph(4, 2.0);
  const auto apsp = graph::FloydWarshallWithPaths(g);
  auto self = graph::ExtractPath(apsp, 2, 2);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(*self, (std::vector<graph::VertexId>{2}));
  auto full = graph::ExtractPath(apsp, 0, 3);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, (std::vector<graph::VertexId>{0, 1, 2, 3}));
  EXPECT_FALSE(graph::ExtractPath(apsp, 0, 9).ok());
}

TEST(Paths, DirectedPathsFollowEdgeOrientation) {
  graph::Graph g(4, /*directed=*/true);
  g.AddEdge(0, 1, 1.0).CheckOk();
  g.AddEdge(1, 2, 1.0).CheckOk();
  g.AddEdge(2, 3, 1.0).CheckOk();
  g.AddEdge(3, 0, 1.0).CheckOk();  // cycle
  const auto apsp = graph::FloydWarshallWithPaths(g);
  auto forward = graph::ExtractPath(apsp, 0, 3);
  ASSERT_TRUE(forward.ok());
  EXPECT_EQ(forward->size(), 4u);
  auto back = graph::ExtractPath(apsp, 3, 0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);  // direct edge 3->0
}

// ---------------------------------------------------------------------------
// Oracle bug regressions (dimension checks, annihilators, aliasing).
// ---------------------------------------------------------------------------

TEST(SemiringOracle, ProductChecksDimensionsBeforePhantomDiscard) {
  // Regression: the oracle used to discard phantom operands before looking
  // at shapes, so a phantom model run would silently "succeed" on operands
  // no real run could multiply.
  const DenseBlock a = DenseBlock::Phantom(4, 5);
  const DenseBlock bad_inner = DenseBlock::Phantom(6, 3);
  DenseBlock c(4, 3, kInf);
  EXPECT_THROW(linalg::SemiringProductAccumulate<MinPlusSemiring>(
                   a, bad_inner, c),
               std::invalid_argument);
  const DenseBlock b = DenseBlock::Phantom(5, 3);
  DenseBlock bad_out(4, 4, kInf);
  EXPECT_THROW(
      linalg::SemiringProductAccumulate<MinPlusSemiring>(a, b, bad_out),
      std::invalid_argument);
  // Real operands hit the same checks.
  const DenseBlock ra(4, 5, 0.0), rb(6, 3, 0.0);
  DenseBlock rc(4, 3, kInf);
  EXPECT_THROW(linalg::SemiringProductAccumulate<MinPlusSemiring>(ra, rb, rc),
               std::invalid_argument);
}

TEST(SemiringOracle, PhantomOperandsPropagateToPhantomResult) {
  const DenseBlock a = DenseBlock::Phantom(4, 5);
  const DenseBlock b(5, 3, 1.0);
  DenseBlock c(4, 3, kInf);
  linalg::SemiringProductAccumulate<MinPlusSemiring>(a, b, c);
  EXPECT_TRUE(c.is_phantom());
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 3);
}

TEST(SemiringOracle, IsZeroMatchesEachAnnihilator) {
  // Regression for the annihilator-guard divergence: the engine used to mix
  // `== Zero()` and `std::isinf` tests. IsZero is now the single authority.
  // min-plus documents the isinf guard (matches the fused kernels).
  EXPECT_TRUE(MinPlusSemiring::IsZero(kInf));
  EXPECT_FALSE(MinPlusSemiring::IsZero(0.0));
  EXPECT_TRUE(BooleanSemiring::IsZero(0.0));
  EXPECT_FALSE(BooleanSemiring::IsZero(1.0));
  // max-min's One is +inf — an isinf guard would treat a saturated
  // capacity as the annihilator. IsZero must separate the two infinities.
  EXPECT_TRUE(MaxMinSemiring::IsZero(-kInf));
  EXPECT_FALSE(MaxMinSemiring::IsZero(kInf));
  EXPECT_TRUE(MaxTimesSemiring::IsZero(0.0));
  EXPECT_FALSE(MaxTimesSemiring::IsZero(1.0));
  for (const SemiringId id : kAllSemirings) {
    EXPECT_TRUE(linalg::SemiringIsZeroValue(id, linalg::SemiringZeroValue(id)))
        << linalg::SemiringName(id);
    EXPECT_FALSE(linalg::SemiringIsZeroValue(id, linalg::SemiringOneValue(id)))
        << linalg::SemiringName(id);
  }
}

TEST(SemiringOracle, AddIsIdempotentInEverySemiring) {
  // SemiringClosure updates the pivot row in place, which is only sound for
  // idempotent Add; the trait is also enforced at compile time.
  static_assert(MinPlusSemiring::kIdempotentAdd);
  static_assert(BooleanSemiring::kIdempotentAdd);
  static_assert(MaxMinSemiring::kIdempotentAdd);
  static_assert(MaxTimesSemiring::kIdempotentAdd);
  Xoshiro256 rng(7);
  for (int i = 0; i < 64; ++i) {
    const double x = rng.NextDouble(0, 10);
    EXPECT_EQ(MinPlusSemiring::Add(x, x), x);
    EXPECT_EQ(MaxMinSemiring::Add(x, x), x);
    EXPECT_EQ(MaxTimesSemiring::Add(x, x), x);
  }
  EXPECT_EQ(BooleanSemiring::Add(1.0, 1.0), 1.0);
  EXPECT_EQ(BooleanSemiring::Add(0.0, 0.0), 0.0);
}

TEST(SemiringOracle, InPlaceClosureMatchesSnapshotReference) {
  // Regression for the pivot-row aliasing bug: the in-place closure reads
  // the pivot row while overwriting the matrix. With diagonal = One and
  // idempotent Add, pass k leaves row/column k invariant, so the in-place
  // sweep must equal a snapshot-per-pivot reference bitwise.
  const std::uint64_t seed = 21;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  test::RandomGraphOptions gopts;
  gopts.max_vertices = 28;
  gopts.integer_weights = true;
  for (int round = 0; round < 4; ++round) {
    const graph::Graph g = test::RandomTestGraph(rng, gopts);
    const DenseBlock adj = g.ToDenseAdjacency();
    for (const SemiringId id : kAllSemirings) {
      DenseBlock in_place = linalg::SemiringAdjacency(adj, id);
      const std::int64_t n = in_place.rows();
      DenseBlock snapshot_closure = in_place;
      for (std::int64_t k = 0; k < n; ++k) {
        const DenseBlock snap = snapshot_closure;
        for (std::int64_t i = 0; i < n; ++i) {
          for (std::int64_t j = 0; j < n; ++j) {
            linalg::WithSemiring(id, [&](auto s) {
              using S = decltype(s);
              if (S::IsZero(snap.At(i, k))) return;
              snapshot_closure.Set(
                  i, j,
                  S::Add(snap.At(i, j),
                         S::Multiply(snap.At(i, k), snap.At(k, j))));
            });
          }
        }
      }
      linalg::SemiringClosureDispatch(id, in_place);
      test::ExpectBitwiseEqual(in_place, snapshot_closure,
                               linalg::SemiringName(id));
    }
  }
}

// ---------------------------------------------------------------------------
// KSSP early-exit (BlockAllZero) regressions.
// ---------------------------------------------------------------------------

TEST(KsourceEarlyExit, BlockAllZeroSeparatesAnnihilatorFromOne) {
  // The historical scan hardwired isinf: under max-min that conflates the
  // annihilator (-inf) with One (+inf) and would skip a maximally-live
  // pivot cross, silently dropping paths.
  const DenseBlock all_one_capacity(6, 6, kInf);
  EXPECT_FALSE(linalg::BlockAllZero(all_one_capacity, SemiringId::kMaxMin));
  EXPECT_TRUE(linalg::BlockAllZero(all_one_capacity, SemiringId::kMinPlus));
  const DenseBlock no_capacity(6, 6, -kInf);
  EXPECT_TRUE(linalg::BlockAllZero(no_capacity, SemiringId::kMaxMin));
  const DenseBlock unreachable(6, 6, 0.0);
  EXPECT_TRUE(linalg::BlockAllZero(unreachable, SemiringId::kBoolean));
  EXPECT_TRUE(linalg::BlockAllZero(unreachable, SemiringId::kMaxTimes));
  EXPECT_FALSE(linalg::BlockAllZero(unreachable, SemiringId::kMinPlus));
  // Phantom structure is unknown: never claim all-zero (a model run must
  // charge the scan but can never skip).
  EXPECT_FALSE(linalg::BlockAllZero(DenseBlock::Phantom(6, 6),
                                    SemiringId::kMinPlus));
  EXPECT_FALSE(linalg::BlockAllZero(DenseBlock::PackedPhantom(6, 70),
                                    SemiringId::kBoolean));
  // Packed real blocks sweep words, including the non-divisible tail.
  DenseBlock packed = DenseBlock::PackedBoolean(5, 70);
  EXPECT_TRUE(linalg::BlockAllZero(packed, SemiringId::kBoolean));
  packed.SetBit(4, 69, true);
  EXPECT_FALSE(linalg::BlockAllZero(packed, SemiringId::kBoolean));
}

TEST(KsourceEarlyExit, SkipIsBitwiseNoOpInEverySemiring) {
  // On a disconnected graph the early exit actually fires; with it disabled
  // the full phases run. Both paths must produce bitwise-identical panels
  // in every algebra.
  const std::uint64_t seed = 33;
  APSPARK_SEEDED_CASE(seed);
  const graph::Graph g = test::TwoComponentGraph(18, 5, 6);
  const std::vector<graph::VertexId> sources = {0, 3, 20, 35};
  for (const SemiringId id : kAllSemirings) {
    apsp::KsourceOptions opts;
    opts.block_size = 9;
    opts.semiring = id;
    apsp::KsourceBlockedSolver solver;
    opts.early_exit_infinite = true;
    auto fast = solver.SolveGraph(g, sources, opts, test::TestCluster());
    opts.early_exit_infinite = false;
    auto full = solver.SolveGraph(g, sources, opts, test::TestCluster());
    ASSERT_TRUE(fast.status.ok()) << linalg::SemiringName(id);
    ASSERT_TRUE(full.status.ok()) << linalg::SemiringName(id);
    test::ExpectBitwiseEqual(*fast.distances, *full.distances,
                             linalg::SemiringName(id));
  }
}

// ---------------------------------------------------------------------------
// Per-semiring randomized property suites: every fused variant bitwise
// against the scalar oracle.
// ---------------------------------------------------------------------------

TEST(SemiringEngine, FusedProductMatchesOracleAcrossVariants) {
  const std::uint64_t seed = 101;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  test::RandomGraphOptions gopts;
  gopts.max_vertices = 60;
  gopts.integer_weights = true;
  for (int round = 0; round < 6; ++round) {
    const graph::Graph g = test::RandomTestGraph(rng, gopts);
    const DenseBlock adj = g.ToDenseAdjacency();
    for (const SemiringId id : kAllSemirings) {
      const DenseBlock base = linalg::SemiringAdjacency(adj, id);
      const DenseBlock expected = OracleProduct(id, base, base);
      for (const KernelVariant variant : kAllVariants) {
        linalg::ScopedKernelVariant kernel_scope(variant);
        linalg::ScopedSemiring semiring_scope(id);
        test::ExpectBitwiseEqual(
            linalg::MinPlusProduct(base, base), expected,
            std::string(linalg::SemiringName(id)) + "/" +
                linalg::KernelVariantName(variant));
      }
    }
  }
}

TEST(SemiringEngine, FusedClosureMatchesOracleAcrossVariants) {
  const std::uint64_t seed = 202;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  test::RandomGraphOptions gopts;
  gopts.max_vertices = 72;  // crosses fw_block-free and non-divisible sizes
  gopts.integer_weights = true;
  for (int round = 0; round < 6; ++round) {
    const graph::Graph g = test::RandomTestGraph(rng, gopts);
    const DenseBlock adj = g.ToDenseAdjacency();
    for (const SemiringId id : kAllSemirings) {
      const DenseBlock expected = OracleClosure(adj, id);
      for (const KernelVariant variant : kAllVariants) {
        linalg::ScopedKernelVariant kernel_scope(variant);
        linalg::ScopedSemiring semiring_scope(id);
        DenseBlock m = linalg::SemiringAdjacency(adj, id);
        linalg::FloydWarshallInPlace(m);
        test::ExpectBitwiseEqual(
            m, expected,
            std::string(linalg::SemiringName(id)) + "/" +
                linalg::KernelVariantName(variant));
      }
    }
  }
}

TEST(SemiringEngine, BlockedSolversMatchOracleAcrossVariants) {
  // Solver-level lock: the full blocked engine (decompose, shuffle, fused
  // phases, assemble) under every kernel variant reproduces the scalar
  // oracle bitwise in all four algebras. Block size 20 against n up to 66
  // keeps non-divisible edge tiles in play.
  const std::uint64_t seed = 303;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  test::RandomGraphOptions gopts;
  gopts.max_vertices = 66;
  gopts.integer_weights = true;
  for (int round = 0; round < 3; ++round) {
    const graph::Graph g = test::RandomTestGraph(rng, gopts);
    const DenseBlock expected_adj = g.ToDenseAdjacency();
    for (const SemiringId id : kAllSemirings) {
      const DenseBlock expected = OracleClosure(expected_adj, id);
      for (const KernelVariant variant : kAllVariants) {
        auto cluster = test::TestCluster();
        cluster.kernel_variant = variant;
        apsp::ApspOptions opts;
        opts.block_size = 20;
        opts.semiring = id;
        auto solver = apsp::MakeSolver(apsp::SolverKind::kBlockedInMemory);
        auto result = solver->SolveGraph(g, opts, cluster);
        ASSERT_TRUE(result.status.ok())
            << linalg::SemiringName(id) << ": " << result.status.ToString();
        test::ExpectBitwiseEqual(
            *result.distances, expected,
            std::string(linalg::SemiringName(id)) + "/" +
                linalg::KernelVariantName(variant));
      }
    }
  }
}

TEST(SemiringEngine, AllFourSolversAgreeWithOraclePerSemiring) {
  const std::uint64_t seed = 404;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  test::RandomGraphOptions gopts;
  gopts.max_vertices = 48;
  gopts.integer_weights = true;
  const graph::Graph g = test::RandomTestGraph(rng, gopts);
  const DenseBlock adj = g.ToDenseAdjacency();
  for (const SemiringId id : kAllSemirings) {
    const DenseBlock expected = OracleClosure(adj, id);
    for (const apsp::SolverKind kind : apsp::AllSolverKinds()) {
      apsp::ApspOptions opts;
      opts.block_size = 14;
      opts.semiring = id;
      auto solver = apsp::MakeSolver(kind);
      auto result = solver->SolveGraph(g, opts, test::TestCluster());
      ASSERT_TRUE(result.status.ok())
          << solver->name() << "/" << linalg::SemiringName(id);
      test::ExpectBitwiseEqual(*result.distances, expected,
                               solver->name() + "/" +
                                   linalg::SemiringName(id));
    }
  }
}

TEST(SemiringEngine, KsourcePanelsMatchOracleColumns) {
  // The rectangular frontier sweep must agree with the closure oracle
  // column-for-column: panel(v, j) == closure(sources[j], v).
  const std::uint64_t seed = 505;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  test::RandomGraphOptions gopts;
  gopts.max_vertices = 56;
  gopts.integer_weights = true;
  for (int round = 0; round < 3; ++round) {
    const graph::Graph g = test::RandomTestGraph(rng, gopts);
    const std::int64_t n = g.num_vertices();
    std::vector<graph::VertexId> sources;
    for (std::int64_t j = 0; j < std::min<std::int64_t>(5, n); ++j) {
      sources.push_back(static_cast<graph::VertexId>(
          rng.NextBounded(static_cast<std::uint64_t>(n))));
    }
    const DenseBlock adj = g.ToDenseAdjacency();
    for (const SemiringId id : kAllSemirings) {
      const DenseBlock closure = OracleClosure(adj, id);
      apsp::KsourceOptions opts;
      opts.block_size = 16;
      opts.semiring = id;
      opts.directed = g.directed();
      apsp::KsourceBlockedSolver solver;
      auto result = solver.SolveGraph(g, sources, opts, test::TestCluster());
      ASSERT_TRUE(result.status.ok()) << linalg::SemiringName(id);
      DenseBlock expected(n, static_cast<std::int64_t>(sources.size()), 0.0);
      for (std::size_t j = 0; j < sources.size(); ++j) {
        for (std::int64_t v = 0; v < n; ++v) {
          expected.Set(v, static_cast<std::int64_t>(j),
                       closure.At(sources[j], v));
        }
      }
      test::ExpectBitwiseEqual(*result.distances, expected,
                               linalg::SemiringName(id));
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-packed boolean plane.
// ---------------------------------------------------------------------------

TEST(BitpackedBoolean, KernelsMatchDenseImages) {
  const std::uint64_t seed = 606;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  linalg::ScopedSemiring semiring_scope(SemiringId::kBoolean);
  // Odd shapes exercise the tail-word masking (cols % 64 != 0).
  for (const std::int64_t n : {7LL, 64LL, 70LL, 129LL}) {
    const DenseBlock a = RandomBooleanDense(rng, n, n);
    const DenseBlock b = RandomBooleanDense(rng, n, n);
    const DenseBlock pa = a.BitPacked();
    const DenseBlock pb = b.BitPacked();
    // Product.
    const DenseBlock dense_prod = linalg::MinPlusProduct(a, b);
    const DenseBlock packed_prod = linalg::MinPlusProduct(pa, pb);
    EXPECT_TRUE(packed_prod.is_packed());
    test::ExpectBitwiseEqual(packed_prod.Unpacked(), dense_prod, "product");
    // Closure.
    DenseBlock dc = a;
    DenseBlock pc = pa;
    linalg::FloydWarshallInPlace(dc);
    linalg::FloydWarshallInPlace(pc);
    EXPECT_TRUE(pc.is_packed());
    test::ExpectBitwiseEqual(pc.Unpacked(), dc, "closure");
    // Element-wise or.
    test::ExpectBitwiseEqual(linalg::ElementMin(pa, pb).Unpacked(),
                             linalg::ElementMin(a, b), "element");
    // Round trips.
    test::ExpectBitwiseEqual(a.BitPacked().Unpacked(), a, "roundtrip");
  }
}

TEST(BitpackedBoolean, MixedRepresentationsAreRejected) {
  linalg::ScopedSemiring semiring_scope(SemiringId::kBoolean);
  const DenseBlock dense(8, 8, 0.0);
  const DenseBlock packed = DenseBlock::PackedBoolean(8, 8);
  EXPECT_THROW(linalg::MinPlusProduct(dense, packed), std::invalid_argument);
  // Packed blocks under a non-boolean semiring make no sense.
  linalg::SetActiveSemiring(SemiringId::kMaxMin);
  EXPECT_THROW(linalg::MinPlusProduct(packed, packed), std::invalid_argument);
}

TEST(BitpackedBoolean, SerializationIsAtLeast8xSmallerAndRoundTrips) {
  const std::uint64_t seed = 707;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  const DenseBlock dense = RandomBooleanDense(rng, 1024, 1024);
  const DenseBlock packed = dense.BitPacked();
  // 64 bits of reachability per word vs one double per entry: 64x payload;
  // the issue's floor is 8x.
  EXPECT_GE(static_cast<double>(dense.SerializedBytes()) /
                static_cast<double>(packed.SerializedBytes()),
            8.0);
  // Packed phantoms account identically to packed real blocks.
  EXPECT_EQ(DenseBlock::PackedPhantom(1024, 1024).SerializedBytes(),
            packed.SerializedBytes());
  BinaryWriter w;
  packed.Serialize(w);
  EXPECT_EQ(w.size(), packed.SerializedBytes());
  BinaryReader r(w.buffer());
  auto copy = DenseBlock::Deserialize(r);
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(copy->is_packed());
  test::ExpectBitwiseEqual(*copy, dense, "serialize roundtrip");
}

TEST(BitpackedBoolean, SolverPackedMatchesDenseAndOracle) {
  const std::uint64_t seed = 808;
  APSPARK_SEEDED_CASE(seed);
  Xoshiro256 rng(seed);
  test::RandomGraphOptions gopts;
  gopts.max_vertices = 70;
  for (int round = 0; round < 3; ++round) {
    const graph::Graph g = test::RandomTestGraph(rng, gopts);
    const DenseBlock expected = OracleClosure(g.ToDenseAdjacency(),
                                              SemiringId::kBoolean);
    apsp::ApspOptions opts;
    opts.block_size = 24;
    opts.semiring = SemiringId::kBoolean;
    auto solver = apsp::MakeSolver(apsp::SolverKind::kBlockedCollectBroadcast);
    opts.bitpack_boolean = true;
    auto packed = solver->SolveGraph(g, opts, test::TestCluster());
    opts.bitpack_boolean = false;
    auto dense = solver->SolveGraph(g, opts, test::TestCluster());
    ASSERT_TRUE(packed.status.ok());
    ASSERT_TRUE(dense.status.ok());
    EXPECT_TRUE(packed.distances->is_packed());
    test::ExpectBitwiseEqual(*packed.distances, expected, "packed vs oracle");
    test::ExpectBitwiseEqual(*dense.distances, expected, "dense vs oracle");
  }
}

TEST(BitpackedBoolean, ModelRunAccountsAtLeast8xLessMemory) {
  // Paper-scale phantom runs must *account* the packed plane: the node
  // memory high water of a bit-packed boolean model run is >= 8x below the
  // dense-double plane of the same geometry (the words are 64x denser; the
  // floor allows for layout overheads).
  apsp::ApspOptions opts;
  opts.block_size = 1024;
  opts.max_rounds = 2;
  auto solver = apsp::MakeSolver(apsp::SolverKind::kBlockedInMemory);
  opts.semiring = SemiringId::kMinPlus;
  auto dense = solver->SolveModel(8192, opts, test::TestCluster());
  opts.semiring = SemiringId::kBoolean;
  opts.bitpack_boolean = true;
  auto packed = solver->SolveModel(8192, opts, test::TestCluster());
  ASSERT_TRUE(dense.status.ok()) << dense.status.ToString();
  ASSERT_TRUE(packed.status.ok()) << packed.status.ToString();
  ASSERT_GT(packed.metrics.node_peak_bytes, 0u);
  EXPECT_GE(static_cast<double>(dense.metrics.node_peak_bytes) /
                static_cast<double>(packed.metrics.node_peak_bytes),
            8.0);
}

}  // namespace
}  // namespace apspark
