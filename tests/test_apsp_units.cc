// Unit tests for the APSP layer: block layout geometry, the MD/PH
// partitioners, and the Table 1 building blocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "apsp/block_layout.h"
#include "apsp/building_blocks.h"
#include "apsp/partitioners.h"
#include "common/rng.h"
#include "linalg/kernels.h"

namespace apspark::apsp {
namespace {

using linalg::BlockRef;
using linalg::DenseBlock;
using linalg::kInf;

DenseBlock RandomSym(std::int64_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  DenseBlock m(n, n, kInf);
  for (std::int64_t i = 0; i < n; ++i) {
    m.Set(i, i, 0.0);
    for (std::int64_t j = i + 1; j < n; ++j) {
      if (rng.NextDouble() < 0.5) {
        const double w = rng.NextDouble(1.0, 9.0);
        m.Set(i, j, w);
        m.Set(j, i, w);
      }
    }
  }
  return m;
}

sparklet::TaskContext MakeTc(const linalg::CostModel* model,
                             sparklet::SharedStorage* storage,
                             const sparklet::ClusterConfig* cfg) {
  return sparklet::TaskContext(model, storage, cfg);
}

struct TcFixture {
  linalg::CostModel model;
  sparklet::SharedStorage storage;
  sparklet::ClusterConfig cfg = sparklet::ClusterConfig::TinyTest();
  sparklet::TaskContext tc = MakeTc(&model, &storage, &cfg);
};

// --- layout -----------------------------------------------------------

TEST(BlockLayout, GeometryWithRemainder) {
  const BlockLayout layout(10, 4);
  EXPECT_EQ(layout.q(), 3);
  EXPECT_EQ(layout.BlockDim(0), 4);
  EXPECT_EQ(layout.BlockDim(2), 2);  // remainder block
  EXPECT_EQ(layout.StoredBlockCount(), 6);
}

TEST(BlockLayout, DirectedStoresFullGrid) {
  const BlockLayout layout(8, 4, /*directed=*/true);
  EXPECT_EQ(layout.StoredBlockCount(), 4);
  EXPECT_TRUE(layout.Stores({1, 0}));
  const BlockLayout undirected(8, 4);
  EXPECT_FALSE(undirected.Stores({1, 0}));
  EXPECT_EQ(undirected.Canonical(1, 0), (BlockKey{0, 1}));
}

TEST(BlockLayout, StoredKeysAreCanonicalAndComplete) {
  const BlockLayout layout(12, 4);
  const auto keys = layout.StoredKeys();
  EXPECT_EQ(static_cast<std::int64_t>(keys.size()),
            layout.StoredBlockCount());
  for (const auto& key : keys) EXPECT_TRUE(layout.Stores(key));
  EXPECT_EQ(std::set<BlockKey>(keys.begin(), keys.end()).size(), keys.size());
}

TEST(BlockLayout, DecomposeAssembleRoundTrip) {
  for (std::int64_t n : {5, 8, 12}) {
    for (std::int64_t b : {2, 3, 8}) {
      const BlockLayout layout(n, b);
      const DenseBlock m = RandomSym(n, static_cast<std::uint64_t>(n * b));
      auto assembled = layout.Assemble(layout.Decompose(m));
      ASSERT_TRUE(assembled.ok()) << "n=" << n << " b=" << b;
      EXPECT_TRUE(assembled->ApproxEquals(m));
    }
  }
}

TEST(BlockLayout, AssembleRejectsMissingAndForeignBlocks) {
  const BlockLayout layout(8, 4);
  auto records = layout.Decompose(RandomSym(8, 3));
  records.pop_back();
  EXPECT_FALSE(layout.Assemble(records).ok());
  records.push_back({{1, 0}, records.front().second});  // non-canonical key
  EXPECT_FALSE(layout.Assemble(records).ok());
}

TEST(BlockLayout, OrientTransposesMirroredPosition) {
  DenseBlock block(2, 3, 0.0);
  block.Set(0, 2, 5.0);
  const BlockKey key{0, 1};
  EXPECT_EQ(BlockLayout::Orient(key, block, 0, 1).At(0, 2), 5.0);
  EXPECT_EQ(BlockLayout::Orient(key, block, 1, 0).At(2, 0), 5.0);
}

TEST(BlockLayout, CrossPredicates) {
  const BlockLayout layout(16, 4);
  EXPECT_TRUE(layout.InCross({1, 2}, 1));
  EXPECT_TRUE(layout.InCross({1, 2}, 2));
  EXPECT_FALSE(layout.InCross({1, 2}, 3));
  const BlockLayout directed(16, 4, /*directed=*/true);
  EXPECT_TRUE(directed.InColumnCross({1, 2}, 2));
  EXPECT_FALSE(directed.InColumnCross({2, 1}, 2));  // row block, not column
  EXPECT_TRUE(directed.InCross({2, 1}, 2));
}

// --- partitioners ------------------------------------------------------

TEST(Partitioners, MultiDiagonalIsPerfectlyBalanced) {
  for (std::int64_t q : {4, 16, 63}) {
    const BlockLayout layout(q * 8, 8);
    for (int parts : {4, 16, 61}) {
      MultiDiagonalPartitioner md(layout, parts);
      auto histogram = PartitionSizeHistogram(layout, md);
      const auto [mn, mx] =
          std::minmax_element(histogram.begin(), histogram.end());
      EXPECT_LE(*mx - *mn, 1)
          << "q=" << q << " parts=" << parts;  // exact round-robin
    }
  }
}

TEST(Partitioners, MultiDiagonalSpreadsRowBlocks) {
  // Blocks sharing a row/column index should scatter across partitions —
  // the property Phases 2/3 of the blocked solvers rely on (§5.3).
  const BlockLayout layout(256, 8);  // q = 32
  MultiDiagonalPartitioner md(layout, 64);
  for (std::int64_t x = 0; x < layout.q(); ++x) {
    std::set<int> partitions;
    for (const auto& key : layout.StoredKeys()) {
      if (layout.InCross(key, x)) partitions.insert(md.PartitionOf(key));
    }
    // The cross of x has q = 32 blocks; they should hit many partitions.
    EXPECT_GE(partitions.size(), 24u) << "cross " << x;
  }
}

TEST(Partitioners, PortableHashInRangeAndDeterministic) {
  const BlockLayout layout(128, 8);
  auto ph = MakeBlockPartitioner(PartitionerKind::kPortableHash, layout, 10);
  for (const auto& key : layout.StoredKeys()) {
    const int p = ph->PartitionOf(key);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 10);
    EXPECT_EQ(p, ph->PartitionOf(key));
  }
}

TEST(Partitioners, PortableHashSkewExceedsMultiDiagonal) {
  // The PH partitioner cannot beat MD's exact balance; on realistic sizes
  // it is strictly worse (the paper's Figure 3, bottom).
  const BlockLayout layout(131072, 1024);  // q = 128, as in Figure 3
  const int parts = 2048;
  auto ph = MakeBlockPartitioner(PartitionerKind::kPortableHash, layout,
                                 parts);
  auto md = MakeBlockPartitioner(PartitionerKind::kMultiDiagonal, layout,
                                 parts);
  auto spread = [&](const sparklet::Partitioner<BlockKey>& p) {
    auto h = PartitionSizeHistogram(layout, p);
    const auto [mn, mx] = std::minmax_element(h.begin(), h.end());
    return *mx - *mn;
  };
  EXPECT_GT(spread(*ph), spread(*md));
  EXPECT_LE(spread(*md), 1);
}

TEST(Partitioners, FactoryAndNames) {
  const BlockLayout layout(64, 8);
  EXPECT_EQ(MakeBlockPartitioner(PartitionerKind::kMultiDiagonal, layout, 4)
                ->name(),
            "MD");
  EXPECT_EQ(MakeBlockPartitioner(PartitionerKind::kPortableHash, layout, 4)
                ->name(),
            "PH");
  EXPECT_STREQ(PartitionerKindName(PartitionerKind::kMultiDiagonal), "MD");
}

// --- building blocks -------------------------------------------------------

TEST(BuildingBlocks, PredicatesFollowSymmetricStorage) {
  const BlockLayout layout(16, 4);
  EXPECT_TRUE(InColumn(layout, {1, 2}, 2));
  EXPECT_TRUE(InColumn(layout, {1, 2}, 1));  // row side counts, symmetric
  EXPECT_FALSE(InColumn(layout, {1, 2}, 0));
  EXPECT_TRUE(OnDiagonal({2, 2}, 2));
  EXPECT_FALSE(OnDiagonal({2, 3}, 2));
  EXPECT_FALSE(OnDiagonal({1, 1}, 2));
}

TEST(BuildingBlocks, KernelWrappersChargeModelTime) {
  TcFixture f;
  auto a = linalg::MakeBlock(RandomSym(8, 1));
  auto b = linalg::MakeBlock(RandomSym(8, 2));
  EXPECT_EQ(f.tc.task_seconds(), 0.0);
  auto prod = MatProd(a, b, f.tc);
  const double after_prod = f.tc.task_seconds();
  EXPECT_NEAR(after_prod, f.model.MinPlusSeconds(8, 8, 8), 1e-12);
  auto mn = MatMin(a, b, f.tc);
  EXPECT_GT(f.tc.task_seconds(), after_prod);
  EXPECT_TRUE(
      mn->ApproxEquals(linalg::ElementMin(*a, *b)));
  EXPECT_TRUE(prod->ApproxEquals(linalg::MinPlusProduct(*a, *b)));
}

TEST(BuildingBlocks, MinPlusIntoBatchMatchesPerRecordChargesAndValues) {
  // One task's batch of 4 identical updates: with the default
  // intra_task_cores = 1 the batch charges exactly 4x the single fused
  // update; on 2 virtual cores the LPT schedule halves it. Values are
  // identical either way.
  TcFixture single;
  auto base = linalg::MakeBlock(RandomSym(8, 11));
  auto l = linalg::MakeBlock(RandomSym(8, 12));
  auto r = linalg::MakeBlock(RandomSym(8, 13));
  auto expected = MinPlusInto(base, l, r, single.tc);
  const double one_charge = single.tc.task_seconds();
  ASSERT_GT(one_charge, 0.0);

  TcFixture f;
  std::vector<FusedTriple> updates(4, FusedTriple{base, l, r});
  auto out = MinPlusIntoBatch(std::move(updates), f.tc);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& block : out) {
    EXPECT_TRUE(block->ApproxEquals(*expected, 0.0));
  }
  EXPECT_NEAR(f.tc.task_seconds(), 4 * one_charge, 1e-15);

  f.model.intra_task_cores = 2;
  f.tc.ResetForTask();
  std::vector<FusedTriple> again(4, FusedTriple{base, l, r});
  MinPlusIntoBatch(std::move(again), f.tc);
  EXPECT_NEAR(f.tc.task_seconds(), 2 * one_charge, 1e-15);
}

TEST(BuildingBlocks, MinPlusIsProductThenMin) {
  TcFixture f;
  auto a = linalg::MakeBlock(RandomSym(6, 3));
  auto b = linalg::MakeBlock(RandomSym(6, 4));
  auto mp = MinPlus(a, b, f.tc);
  auto expected =
      linalg::ElementMin(*a, linalg::MinPlusProduct(*a, *b));
  EXPECT_TRUE(mp->ApproxEquals(expected));
}

TEST(BuildingBlocks, FloydWarshallClosesBlock) {
  TcFixture f;
  DenseBlock block(3, 3, kInf);
  for (int i = 0; i < 3; ++i) block.Set(i, i, 0.0);
  block.Set(0, 1, 1.0);
  block.Set(1, 0, 1.0);
  block.Set(1, 2, 1.0);
  block.Set(2, 1, 1.0);
  auto closed = FloydWarshall(linalg::MakeBlock(std::move(block)), f.tc);
  EXPECT_EQ(closed->At(0, 2), 2.0);
  EXPECT_GT(f.tc.task_seconds(), 0.0);
}

TEST(BuildingBlocks, ExtractColSegmentBothOrientations) {
  const BlockLayout layout(8, 4);
  const DenseBlock m = RandomSym(8, 7);
  auto records = layout.Decompose(m);
  TcFixture f;
  const std::int64_t k = 5;  // lives in column-block 1, local index 1
  for (const auto& rec : records) {
    if (!InColumn(layout, rec.first, k / layout.block_size())) continue;
    auto [row_block, segment] = ExtractColSegment(layout, rec, k, f.tc);
    for (std::int64_t r = 0; r < segment->rows(); ++r) {
      EXPECT_EQ(segment->At(r, 0),
                m.At(row_block * layout.block_size() + r, k))
          << "block " << rec.first.ToString();
    }
  }
}

TEST(BuildingBlocks, FloydWarshallUpdateMatchesScalarRelaxation) {
  const BlockLayout layout(8, 4);
  const DenseBlock m = RandomSym(8, 8);
  auto records = layout.Decompose(m);
  TcFixture f;
  const std::int64_t k = 2;
  // Build the broadcast column.
  std::vector<BlockRef> column(static_cast<std::size_t>(layout.q()));
  for (const auto& rec : records) {
    if (!InColumn(layout, rec.first, k / layout.block_size())) continue;
    auto [row_block, segment] = ExtractColSegment(layout, rec, k, f.tc);
    column[static_cast<std::size_t>(row_block)] = segment;
  }
  for (const auto& rec : records) {
    auto [key, updated] = FloydWarshallUpdate(layout, rec, column, f.tc);
    for (std::int64_t r = 0; r < updated->rows(); ++r) {
      for (std::int64_t c = 0; c < updated->cols(); ++c) {
        const std::int64_t gi = key.I * layout.block_size() + r;
        const std::int64_t gj = key.J * layout.block_size() + c;
        EXPECT_EQ(updated->At(r, c),
                  std::min(m.At(gi, gj), m.At(gi, k) + m.At(k, gj)));
      }
    }
  }
}

TEST(BuildingBlocks, CopyDiagTargetsWholeCross) {
  const BlockLayout layout(16, 4);
  auto diag = linalg::MakeBlock(RandomSym(4, 9));
  std::vector<TaggedRecord> out;
  CopyDiag(layout, 1, diag, out);
  EXPECT_EQ(out.size(), 4u);  // q copies, including (1,1) itself
  std::set<BlockKey> targets;
  for (const auto& [key, tagged] : out) {
    EXPECT_EQ(tagged.role, BlockRole::kDiag);
    EXPECT_TRUE(layout.InCross(key, 1));
    targets.insert(key);
  }
  EXPECT_EQ(targets.size(), 4u);
}

TEST(BuildingBlocks, CopyColCoversEveryStoredKeyExactlyOnce) {
  const BlockLayout layout(24, 4);  // q = 6
  const std::int64_t i = 2;
  const DenseBlock m = RandomSym(24, 10);
  auto records = layout.Decompose(m);
  TcFixture f;
  // Collect emissions from every cross block of iteration i.
  std::map<BlockKey, std::map<BlockRole, int>> received;
  for (const auto& rec : records) {
    if (!layout.InCross(rec.first, i)) continue;
    std::vector<TaggedRecord> out;
    CopyCol(layout, i, rec, out, f.tc);
    for (const auto& [key, tagged] : out) {
      EXPECT_TRUE(layout.Stores(key)) << key.ToString();
      received[key][tagged.role] += 1;
    }
  }
  for (const auto& key : layout.StoredKeys()) {
    const auto& roles = received[key];
    if (layout.InCross(key, i)) {
      // Cross keys re-enter A as themselves only.
      EXPECT_EQ(roles.count(BlockRole::kOriginal), 1u) << key.ToString();
      EXPECT_EQ(roles.count(BlockRole::kRow), 0u) << key.ToString();
    } else {
      // Every other key receives exactly one row and one column factor.
      EXPECT_EQ(roles.at(BlockRole::kRow), 1) << key.ToString();
      EXPECT_EQ(roles.at(BlockRole::kCol), 1) << key.ToString();
    }
  }
}

TEST(BuildingBlocks, Phase2And3UnpackReproduceBlockedFwIteration) {
  // One full blocked-FW iteration via the building blocks must equal the
  // direct tile computation.
  const std::int64_t n = 12, b = 4, i = 1;
  const BlockLayout layout(n, b);
  const DenseBlock m = RandomSym(n, 11);
  auto records = layout.Decompose(m);
  TcFixture f;

  // Reference: one iteration of the 3-phase update on the dense matrix.
  DenseBlock ref = m;
  {
    double* base = ref.mutable_data();
    linalg::FloydWarshallRaw(b, base + i * b * n + i * b, n);
    for (std::int64_t j = 0; j < layout.q(); ++j) {
      if (j == i) continue;
      linalg::MinPlusAccumulateRaw(b, b, b, base + i * b * n + i * b, n,
                                   base + i * b * n + j * b, n,
                                   base + i * b * n + j * b, n);
      linalg::MinPlusAccumulateRaw(b, b, b, base + j * b * n + i * b, n,
                                   base + i * b * n + i * b, n,
                                   base + j * b * n + i * b, n);
    }
    for (std::int64_t r = 0; r < layout.q(); ++r) {
      for (std::int64_t c = 0; c < layout.q(); ++c) {
        if (r == i || c == i) continue;
        linalg::MinPlusAccumulateRaw(b, b, b, base + r * b * n + i * b, n,
                                     base + i * b * n + c * b, n,
                                     base + r * b * n + c * b, n);
      }
    }
  }

  // Engine-style: Phase 1 + CopyDiag + Phase2Unpack + CopyCol + Phase3Unpack.
  BlockRef closed;
  for (const auto& rec : records) {
    if (OnDiagonal(rec.first, i)) closed = FloydWarshall(rec.second, f.tc);
  }
  std::vector<TaggedRecord> diag_copies;
  CopyDiag(layout, i, closed, diag_copies);
  std::map<BlockKey, TaggedList> phase2_lists;
  for (const auto& rec : records) {
    if (layout.InCross(rec.first, i)) {
      phase2_lists[rec.first].push_back({BlockRole::kOriginal, rec.second});
    }
  }
  for (auto& [key, tagged] : diag_copies) {
    phase2_lists[key].push_back(tagged);
  }
  std::vector<BlockRecord> cross_updated;
  for (const auto& [key, list] : phase2_lists) {
    cross_updated.push_back(Phase2Unpack(layout, i, {key, list}, f.tc));
  }
  std::map<BlockKey, TaggedList> phase3_lists;
  for (const auto& rec : records) {
    if (!layout.InCross(rec.first, i)) {
      phase3_lists[rec.first].push_back({BlockRole::kOriginal, rec.second});
    }
  }
  for (const auto& rec : cross_updated) {
    std::vector<TaggedRecord> copies;
    CopyCol(layout, i, rec, copies, f.tc);
    for (auto& [key, tagged] : copies) phase3_lists[key].push_back(tagged);
  }
  std::vector<BlockRecord> new_a;
  for (const auto& [key, list] : phase3_lists) {
    new_a.push_back(Phase3Unpack(layout, i, {key, list}, f.tc));
  }
  auto assembled = layout.Assemble(new_a);
  ASSERT_TRUE(assembled.ok());
  EXPECT_TRUE(assembled->ApproxEquals(ref, 1e-9))
      << "max diff " << assembled->MaxAbsDiff(ref);
}

}  // namespace
}  // namespace apspark::apsp
