// Tests for graph containers, generators and the exact shortest-path
// baselines (Dijkstra, Bellman-Ford, Johnson, sequential Floyd-Warshall).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/shortest_paths.h"
#include "linalg/kernels.h"

namespace apspark::graph {
namespace {

using linalg::kInf;

TEST(Graph, AddEdgeValidates) {
  Graph g(3);
  EXPECT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 3, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(-1, 0, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 1, std::nan("")).ok());
}

TEST(Graph, DenseAdjacencyUndirected) {
  Graph g(3);
  g.AddEdge(0, 1, 2.5).CheckOk();
  g.AddEdge(0, 1, 4.0).CheckOk();  // parallel edge, heavier
  auto a = g.ToDenseAdjacency();
  EXPECT_EQ(a.At(0, 0), 0.0);
  EXPECT_EQ(a.At(0, 1), 2.5);  // min weight wins
  EXPECT_EQ(a.At(1, 0), 2.5);  // symmetric
  EXPECT_EQ(a.At(0, 2), kInf);
}

TEST(Graph, DenseAdjacencyDirected) {
  Graph g(2, /*directed=*/true);
  g.AddEdge(0, 1, 1.0).CheckOk();
  auto a = g.ToDenseAdjacency();
  EXPECT_EQ(a.At(0, 1), 1.0);
  EXPECT_EQ(a.At(1, 0), kInf);
}

TEST(Generators, PaperEdgeProbability) {
  // p_e = (1 + 0.1) ln(n) / n.
  EXPECT_NEAR(PaperEdgeProbability(1024), 1.1 * std::log(1024.0) / 1024.0,
              1e-12);
  EXPECT_EQ(PaperEdgeProbability(1), 0.0);
}

TEST(Generators, ErdosRenyiDeterministicInSeed) {
  const Graph a = PaperErdosRenyi(200, 5);
  const Graph b = PaperErdosRenyi(200, 5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
  const Graph c = PaperErdosRenyi(200, 6);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
  const VertexId n = 2000;
  const double p = 0.01;
  double total = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    total += static_cast<double>(
        ErdosRenyi(n, p, {1, 2}, seed).num_edges());
  }
  const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
  EXPECT_NEAR(total / 8.0, expected, expected * 0.05);
}

TEST(Generators, ErdosRenyiEdgesAreValidAndUnique) {
  const Graph g = ErdosRenyi(300, 0.05, {1, 2}, 9);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.u, 0);
    EXPECT_LT(e.u, 300);
    EXPECT_LT(e.u, e.v);  // generator emits u < v
    EXPECT_TRUE(seen.insert({e.u, e.v}).second) << "duplicate edge";
  }
}

TEST(Generators, ErdosRenyiDirectedCoversBothOrientations) {
  const Graph g = ErdosRenyi(100, 0.2, {1, 2}, 10, /*directed=*/true);
  bool up = false, down = false;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.u, e.v);
    (e.u < e.v ? up : down) = true;
  }
  EXPECT_TRUE(up);
  EXPECT_TRUE(down);
}

TEST(Generators, StructuredFamilies) {
  EXPECT_EQ(PathGraph(5).num_edges(), 4u);
  EXPECT_EQ(CycleGraph(5).num_edges(), 5u);
  EXPECT_EQ(StarGraph(5).num_edges(), 4u);
  EXPECT_EQ(CompleteGraph(5, {1, 2}, 1).num_edges(), 10u);
  EXPECT_EQ(GridGraph(3, 4).num_edges(),
            static_cast<std::size_t>(3 * 3 + 2 * 4));
}

TEST(Csr, NeighborsMatchEdges) {
  Graph g(4);
  g.AddEdge(0, 1, 1.0).CheckOk();
  g.AddEdge(1, 2, 2.0).CheckOk();
  const Csr csr(g);
  EXPECT_EQ(csr.num_arcs(), 4u);  // undirected: both directions
  EXPECT_EQ(csr.Degree(1), 2u);
  EXPECT_EQ(csr.Degree(3), 0u);
}

TEST(ShortestPaths, DijkstraOnPath) {
  const Csr csr(PathGraph(5, 2.0));
  const auto dist = Dijkstra(csr, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[static_cast<std::size_t>(i)], 2.0 * i);
}

TEST(ShortestPaths, DijkstraUnreachableIsInf) {
  Graph g(3);
  g.AddEdge(0, 1, 1.0).CheckOk();
  const auto dist = Dijkstra(Csr(g), 0);
  EXPECT_TRUE(std::isinf(dist[2]));
}

TEST(ShortestPaths, FloydWarshallMatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = PaperErdosRenyi(80, seed);
    EXPECT_TRUE(FloydWarshallAllPairs(g, 16).ApproxEquals(
        DijkstraAllPairs(g), 1e-9));
  }
}

TEST(ShortestPaths, JohnsonMatchesDijkstraNonNegative) {
  const Graph g = PaperErdosRenyi(60, 3);
  auto johnson = JohnsonAllPairs(g);
  ASSERT_TRUE(johnson.ok());
  EXPECT_TRUE(johnson->ApproxEquals(DijkstraAllPairs(g), 1e-9));
}

TEST(ShortestPaths, JohnsonHandlesNegativeEdgesInDigraph) {
  Graph g(4, /*directed=*/true);
  g.AddEdge(0, 1, 2.0).CheckOk();
  g.AddEdge(1, 2, -1.0).CheckOk();
  g.AddEdge(0, 2, 5.0).CheckOk();
  g.AddEdge(2, 3, 1.0).CheckOk();
  auto johnson = JohnsonAllPairs(g);
  ASSERT_TRUE(johnson.ok());
  EXPECT_EQ(johnson->At(0, 2), 1.0);  // 0 -> 1 -> 2
  EXPECT_EQ(johnson->At(0, 3), 2.0);
  // Validate against Floyd-Warshall, which also tolerates negative edges.
  EXPECT_TRUE(johnson->ApproxEquals(FloydWarshallAllPairs(g), 1e-9));
}

TEST(ShortestPaths, BellmanFordDetectsNegativeCycle) {
  Graph g(3, /*directed=*/true);
  g.AddEdge(0, 1, 1.0).CheckOk();
  g.AddEdge(1, 2, -3.0).CheckOk();
  g.AddEdge(2, 1, 1.0).CheckOk();
  EXPECT_EQ(BellmanFord(g, 0).status().code(), StatusCode::kAborted);
  auto johnson = JohnsonAllPairs(g);
  EXPECT_FALSE(johnson.ok());
}

TEST(ShortestPaths, DistancesFormAMetricOnConnectedGraph) {
  const Graph g = CompleteGraph(20, {1.0, 10.0}, 17);
  const auto d = DijkstraAllPairs(g);
  for (VertexId i = 0; i < 20; ++i) {
    EXPECT_EQ(d.At(i, i), 0.0);
    for (VertexId j = 0; j < 20; ++j) {
      // Dijkstra from different sources accumulates FP sums in different
      // orders; symmetry holds to rounding.
      EXPECT_NEAR(d.At(i, j), d.At(j, i), 1e-12);  // symmetry
      for (VertexId k = 0; k < 20; ++k) {
        EXPECT_LE(d.At(i, j), d.At(i, k) + d.At(k, j) + 1e-9);  // triangle
      }
    }
  }
}

TEST(Generators, SwissRollAndKnnGraphConnectivity) {
  const auto points = SwissRoll(150, 23);
  EXPECT_EQ(points.size(), 150u);
  const Graph g = KnnGraph(points, 8);
  EXPECT_GT(g.num_edges(), 150u * 4);  // >= kn/2 and deduplicated
  // Every vertex has at least k neighbours (symmetrized kNN).
  const Csr csr(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(csr.Degree(v), 8u);
  }
}

}  // namespace
}  // namespace apspark::graph
