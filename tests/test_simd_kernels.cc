// Bitwise-equivalence suite for the SIMD micro-kernel engine
// (linalg/simd.h) and the cache-aware auto-tuner (linalg/autotune.h).
//
// The contract under test: for in-domain operands every ISA backend
// (scalar / avx2 / avx512) of the tiled and panel kernels produces
// bitwise-identical output under all four semirings, across ragged shapes,
// single-row/column blocks, all-annihilator guards and aliasing-heavy
// blocked Floyd-Warshall runs. "In-domain" matches the existing
// tiled-vs-naive contract: no -inf entries under min-plus, canonical {0,1}
// under boolean — the annihilator-skip fold is only bitwise-neutral there.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "linalg/autotune.h"
#include "linalg/dense_block.h"
#include "linalg/kernel_registry.h"
#include "linalg/kernels.h"
#include "linalg/semiring.h"

namespace apspark::linalg {
namespace {

constexpr SemiringId kAllSemirings[] = {
    SemiringId::kMinPlus, SemiringId::kBoolean, SemiringId::kMaxMin,
    SemiringId::kMaxTimes};

/// ISAs executable on this host (kScalar always; SIMD when compiled in and
/// the CPU supports it). On a non-x86 host the suite degrades to checking
/// scalar-vs-scalar, which keeps it green rather than vacuously skipped.
std::vector<SimdIsa> AvailableIsas() {
  std::vector<SimdIsa> isas = {SimdIsa::kScalar};
  if (SimdIsaAvailable(SimdIsa::kAvx2)) isas.push_back(SimdIsa::kAvx2);
  if (SimdIsaAvailable(SimdIsa::kAvx512)) isas.push_back(SimdIsa::kAvx512);
  return isas;
}

/// In-domain random fill for a semiring: finite candidates from the
/// semiring's natural value range plus a sprinkle of *its own* annihilator
/// (so the hoisted IsZero guard and the branchless SIMD path both see
/// Zero entries, which must fold identically).
void FillInDomain(SemiringId id, double* data, std::int64_t count,
                  std::uint64_t seed, double zero_fraction = 0.15) {
  Xoshiro256 rng(seed);
  for (std::int64_t i = 0; i < count; ++i) {
    const bool zero = rng.NextDouble() < zero_fraction;
    switch (id) {
      case SemiringId::kMinPlus:
        data[i] = zero ? kInf : rng.NextDouble(0.0, 50.0);
        break;
      case SemiringId::kBoolean:
        data[i] = zero ? 0.0 : 1.0;
        break;
      case SemiringId::kMaxMin:
        data[i] = zero ? -kInf : rng.NextDouble(0.0, 50.0);
        break;
      case SemiringId::kMaxTimes:
        data[i] = zero ? 0.0 : rng.NextDouble(0.001, 1.0);
        break;
    }
  }
}

DenseBlock InDomainBlock(SemiringId id, std::int64_t rows, std::int64_t cols,
                         std::uint64_t seed, double zero_fraction = 0.15) {
  DenseBlock b(rows, cols, 0.0);
  FillInDomain(id, b.mutable_data(), b.size(), seed, zero_fraction);
  return b;
}

bool BitwiseEqual(const DenseBlock& x, const DenseBlock& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(),
                     static_cast<std::size_t>(x.size()) * sizeof(double)) == 0;
}

struct Shape {
  std::int64_t m, n, k;
};

// Ragged tails (odd m/n/k), exact vector widths, single row/column, a 1x1
// degenerate, and shapes wider than one 4-vector micro-strip.
constexpr Shape kShapes[] = {{7, 13, 9},  {33, 65, 17}, {2, 8, 3},
                             {1, 64, 64}, {64, 1, 64},  {64, 64, 1},
                             {1, 1, 1},   {5, 37, 41},  {48, 48, 48},
                             {3, 129, 5}};

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(SimdIsaAvailable(SimdIsa::kScalar));
  EXPECT_EQ(ResolveSimdIsa(SimdIsa::kScalar), SimdIsa::kScalar);
}

TEST(SimdDispatch, ResolveClampsToHost) {
  // Whatever the host, resolving any request must land on an available ISA.
  for (const SimdIsa request :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    EXPECT_TRUE(SimdIsaAvailable(ResolveSimdIsa(request)));
  }
  // The detected best resolves to itself.
  EXPECT_EQ(ResolveSimdIsa(DetectSimdIsa()), DetectSimdIsa());
}

TEST(SimdDispatch, ParseNamesRoundTrip) {
  EXPECT_EQ(ParseSimdIsa("scalar"), SimdIsa::kScalar);
  EXPECT_EQ(ParseSimdIsa("none"), SimdIsa::kScalar);
  EXPECT_EQ(ParseSimdIsa("avx2"), SimdIsa::kAvx2);
  EXPECT_EQ(ParseSimdIsa("avx512"), SimdIsa::kAvx512);
  EXPECT_EQ(ParseSimdIsa("avx512f"), SimdIsa::kAvx512);
  EXPECT_FALSE(ParseSimdIsa("sse9").has_value());
  for (const SimdIsa isa :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    EXPECT_EQ(ParseSimdIsa(SimdIsaName(isa)), isa);
  }
}

TEST(SimdDispatch, ScopedSimdIsaRestoresTuning) {
  const KernelTuning before = GetKernelTuning();
  {
    ScopedSimdIsa pin(SimdIsa::kScalar);
    EXPECT_EQ(GetKernelTuning().isa, SimdIsa::kScalar);
  }
  EXPECT_EQ(GetKernelTuning(), before);
}

TEST(SimdDispatch, DescribeKernelTuningMentionsIsaAndTiles) {
  KernelTuning tuning;
  tuning.isa = SimdIsa::kScalar;
  const std::string text = DescribeKernelTuning(tuning);
  EXPECT_NE(text.find("isa=scalar"), std::string::npos);
  EXPECT_NE(text.find("tiles j="), std::string::npos);
  EXPECT_NE(text.find("[default]"), std::string::npos);
  tuning.auto_tuned = true;
  EXPECT_NE(DescribeKernelTuning(tuning).find("[auto-tuned]"),
            std::string::npos);
}

/// Runs MinPlusAccumulateRawTiled on copies of (a, b, c0) under `isa` and
/// returns the accumulated C.
DenseBlock RunTiled(SimdIsa isa, const DenseBlock& a, const DenseBlock& b,
                    const DenseBlock& c0, bool parallel = false) {
  ScopedSimdIsa pin(isa);
  DenseBlock c = c0;
  MinPlusAccumulateRawTiled(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                            b.data(), b.cols(), c.mutable_data(), c.cols(),
                            parallel);
  return c;
}

DenseBlock RunPanel(SimdIsa isa, const DenseBlock& a, const DenseBlock& b,
                    const DenseBlock& c0) {
  ScopedSimdIsa pin(isa);
  DenseBlock c = c0;
  MinPlusPanelRawTiled(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                       b.data(), b.cols(), c.mutable_data(), c.cols());
  return c;
}

TEST(SimdKernels, TiledBitwiseAcrossIsasAllSemiringsAllShapes) {
  const auto isas = AvailableIsas();
  std::uint64_t seed = 100;
  for (const SemiringId id : kAllSemirings) {
    ScopedSemiring ring(id);
    for (const Shape& s : kShapes) {
      const DenseBlock a = InDomainBlock(id, s.m, s.k, ++seed);
      const DenseBlock b = InDomainBlock(id, s.k, s.n, ++seed);
      const DenseBlock c0 = InDomainBlock(id, s.m, s.n, ++seed);

      // Scalar tiled is itself locked to the per-semiring oracle.
      DenseBlock oracle = c0;
      WithSemiring(id, [&](auto ring_tag) {
        using S = decltype(ring_tag);
        SemiringProductAccumulate<S>(a, b, oracle);
      });
      const DenseBlock scalar = RunTiled(SimdIsa::kScalar, a, b, c0);
      ASSERT_TRUE(BitwiseEqual(scalar, oracle))
          << "scalar tiled vs oracle, semiring=" << SemiringName(id)
          << " shape=" << s.m << "x" << s.n << "x" << s.k;

      for (const SimdIsa isa : isas) {
        const DenseBlock got = RunTiled(isa, a, b, c0);
        ASSERT_TRUE(BitwiseEqual(got, scalar))
            << "isa=" << SimdIsaName(isa) << " semiring=" << SemiringName(id)
            << " shape=" << s.m << "x" << s.n << "x" << s.k;
      }
    }
  }
}

TEST(SimdKernels, TiledBitwiseWithStridedLeadingDimensions) {
  // Padded leading dimensions (ld > logical cols) exercise the strided
  // loads/stores and the masked tail without touching the pad lanes.
  const auto isas = AvailableIsas();
  const std::int64_t m = 19, n = 21, k = 15;
  const std::int64_t lda = k + 5, ldb = n + 3, ldc = n + 7;
  std::uint64_t seed = 500;
  for (const SemiringId id : kAllSemirings) {
    ScopedSemiring ring(id);
    std::vector<double> a(static_cast<std::size_t>(m * lda));
    std::vector<double> b(static_cast<std::size_t>(k * ldb));
    std::vector<double> c0(static_cast<std::size_t>(m * ldc));
    FillInDomain(id, a.data(), static_cast<std::int64_t>(a.size()), ++seed);
    FillInDomain(id, b.data(), static_cast<std::int64_t>(b.size()), ++seed);
    FillInDomain(id, c0.data(), static_cast<std::int64_t>(c0.size()), ++seed);

    std::vector<double> scalar = c0;
    {
      ScopedSimdIsa pin(SimdIsa::kScalar);
      MinPlusAccumulateRawTiled(m, n, k, a.data(), lda, b.data(), ldb,
                                scalar.data(), ldc);
    }
    for (const SimdIsa isa : isas) {
      std::vector<double> c = c0;
      {
        ScopedSimdIsa pin(isa);
        MinPlusAccumulateRawTiled(m, n, k, a.data(), lda, b.data(), ldb,
                                  c.data(), ldc);
      }
      ASSERT_EQ(std::memcmp(c.data(), scalar.data(),
                            c.size() * sizeof(double)),
                0)
          << "isa=" << SimdIsaName(isa) << " semiring=" << SemiringName(id)
          << " (pad lanes must be untouched)";
    }
  }
}

TEST(SimdKernels, PanelBitwiseAcrossIsas) {
  const auto isas = AvailableIsas();
  std::uint64_t seed = 900;
  for (const SemiringId id : kAllSemirings) {
    ScopedSemiring ring(id);
    for (const std::int64_t n : {1, 3, 8, 17, 31}) {
      for (const std::int64_t m : {1, 33, 64}) {
        const std::int64_t k = 47;
        const DenseBlock a = InDomainBlock(id, m, k, ++seed);
        const DenseBlock b = InDomainBlock(id, k, n, ++seed);
        const DenseBlock c0 = InDomainBlock(id, m, n, ++seed);
        const DenseBlock scalar = RunPanel(SimdIsa::kScalar, a, b, c0);
        for (const SimdIsa isa : isas) {
          const DenseBlock got = RunPanel(isa, a, b, c0);
          ASSERT_TRUE(BitwiseEqual(got, scalar))
              << "isa=" << SimdIsaName(isa)
              << " semiring=" << SemiringName(id) << " panel m=" << m
              << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdKernels, AllAnnihilatorOperandsLeaveCUnchanged) {
  // A (or B) entirely Zero: the scalar kernel skips quads via the hoisted
  // IsZero guard; the branchless SIMD path must fold the same candidates to
  // the same no-op, leaving C bitwise untouched.
  const auto isas = AvailableIsas();
  std::uint64_t seed = 1500;
  for (const SemiringId id : kAllSemirings) {
    ScopedSemiring ring(id);
    const double zero = SemiringZeroValue(id);
    const std::int64_t m = 13, n = 29, k = 11;
    const DenseBlock live_a = InDomainBlock(id, m, k, ++seed, 0.0);
    const DenseBlock live_b = InDomainBlock(id, k, n, ++seed, 0.0);
    const DenseBlock dead_a(m, k, zero);
    const DenseBlock dead_b(k, n, zero);
    const DenseBlock c0 = InDomainBlock(id, m, n, ++seed, 0.0);
    for (const SimdIsa isa : isas) {
      ASSERT_TRUE(BitwiseEqual(RunTiled(isa, dead_a, live_b, c0), c0))
          << "dead A, isa=" << SimdIsaName(isa)
          << " semiring=" << SemiringName(id);
      ASSERT_TRUE(BitwiseEqual(RunTiled(isa, live_a, dead_b, c0), c0))
          << "dead B, isa=" << SimdIsaName(isa)
          << " semiring=" << SemiringName(id);
      ASSERT_TRUE(BitwiseEqual(RunPanel(isa, dead_a, live_b, c0), c0))
          << "panel dead A, isa=" << SimdIsaName(isa)
          << " semiring=" << SemiringName(id);
    }
  }
}

TEST(SimdKernels, ParallelStripingBitwiseAcrossIsas) {
  const auto isas = AvailableIsas();
  ScopedSemiring ring(SemiringId::kMinPlus);
  const DenseBlock a = InDomainBlock(SemiringId::kMinPlus, 200, 170, 21);
  const DenseBlock b = InDomainBlock(SemiringId::kMinPlus, 170, 190, 22);
  const DenseBlock c0 = InDomainBlock(SemiringId::kMinPlus, 200, 190, 23);
  const DenseBlock serial_scalar =
      RunTiled(SimdIsa::kScalar, a, b, c0, /*parallel=*/false);
  for (const SimdIsa isa : isas) {
    ASSERT_TRUE(BitwiseEqual(RunTiled(isa, a, b, c0, /*parallel=*/true),
                             serial_scalar))
        << "parallel stripes, isa=" << SimdIsaName(isa);
  }
}

TEST(SimdKernels, PackedBooleanDoesNotRouteThroughSimd) {
  // Bit-packed boolean blocks use the word-parallel or/and kernels, which
  // must be unaffected by the ISA knob and agree with the dense result.
  const auto isas = AvailableIsas();
  ScopedSemiring ring(SemiringId::kBoolean);
  const std::int64_t m = 37, n = 130, k = 66;  // non-multiple-of-64 words
  const DenseBlock dense_a = InDomainBlock(SemiringId::kBoolean, m, k, 31);
  const DenseBlock dense_b = InDomainBlock(SemiringId::kBoolean, k, n, 32);
  DenseBlock packed_a = DenseBlock::PackedBoolean(m, k, 0.0);
  DenseBlock packed_b = DenseBlock::PackedBoolean(k, n, 0.0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < k; ++j) packed_a.Set(i, j, dense_a.At(i, j));
  }
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < n; ++j) packed_b.Set(i, j, dense_b.At(i, j));
  }

  const DenseBlock dense_ref = [&] {
    ScopedSimdIsa pin(SimdIsa::kScalar);
    return MinPlusProduct(dense_a, dense_b);
  }();
  for (const SimdIsa isa : isas) {
    ScopedSimdIsa pin(isa);
    const DenseBlock packed = MinPlusProduct(packed_a, packed_b);
    ASSERT_TRUE(packed.is_packed());
    const DenseBlock unpacked = packed.Unpacked();
    ASSERT_TRUE(BitwiseEqual(unpacked, dense_ref))
        << "packed boolean, isa=" << SimdIsaName(isa);
    const DenseBlock dense = MinPlusProduct(dense_a, dense_b);
    ASSERT_TRUE(BitwiseEqual(dense, dense_ref))
        << "dense boolean, isa=" << SimdIsaName(isa);
  }
}

TEST(SimdKernels, BlockedFloydWarshallBitwiseAcrossIsas) {
  // The blocked FW phases alias C with A/B (phase 2) and hand out
  // element-disjoint sub-blocks of one matrix (phase 3) — the aliasing
  // demotion must keep every ISA bitwise-locked to the *scalar* tiled run.
  // (The blocked decomposition itself is only ApproxEquals to the plain
  // k-i-j reference — it reorders float additions — matching the contract
  // the existing BlockedFwSweep suite asserts.)
  const auto isas = AvailableIsas();
  ScopedSemiring ring(SemiringId::kMinPlus);
  for (const std::int64_t n : {96, 97}) {  // block-divisible and ragged
    DenseBlock init = InDomainBlock(SemiringId::kMinPlus, n, n, 41, 0.3);
    for (std::int64_t i = 0; i < n; ++i) init.Set(i, i, 0.0);

    DenseBlock ref = init;
    ReferenceFloydWarshall(ref);

    DenseBlock blocked_scalar = init;
    DenseBlock in_place_scalar = init;
    {
      ScopedSimdIsa pin(SimdIsa::kScalar);
      BlockedFloydWarshall(blocked_scalar, 32);
      FloydWarshallInPlace(in_place_scalar);
    }
    EXPECT_TRUE(blocked_scalar.ApproxEquals(ref, 1e-9)) << "n=" << n;
    EXPECT_TRUE(in_place_scalar.ApproxEquals(ref, 1e-9)) << "n=" << n;

    for (const SimdIsa isa : isas) {
      ScopedSimdIsa pin(isa);
      DenseBlock blocked = init;
      BlockedFloydWarshall(blocked, 32);
      ASSERT_TRUE(BitwiseEqual(blocked, blocked_scalar))
          << "blocked FW n=" << n << " isa=" << SimdIsaName(isa);
      DenseBlock in_place = init;
      FloydWarshallInPlace(in_place);
      ASSERT_TRUE(BitwiseEqual(in_place, in_place_scalar))
          << "FW in-place n=" << n << " isa=" << SimdIsaName(isa);
    }
  }
}

// ------------------------------------------------------------ auto-tuning

TEST(AutoTune, DeriveReproducesStaticDefaultsOnReferenceMachine) {
  // The static defaults document a 48 KiB L1d / 2 MiB L2 machine; feeding
  // those sizes back through the derivation must return the same geometry.
  CacheHierarchy ref;
  ref.l1d_bytes = 48 * 1024;
  ref.l2_bytes = 2 * 1024 * 1024;
  ref.l3_bytes = 32 * 1024 * 1024;
  KernelTuning base;
  base.variant = KernelVariant::kTiledParallel;
  base.semiring = SemiringId::kMaxMin;
  base.isa = SimdIsa::kScalar;
  const KernelTuning derived = DeriveKernelTuning(ref, base);
  EXPECT_EQ(derived.tile_j, 1024);
  EXPECT_EQ(derived.tile_k, 128);
  EXPECT_EQ(derived.fw_block, 128);
  EXPECT_TRUE(derived.auto_tuned);
  // Non-geometry fields ride through unchanged.
  EXPECT_EQ(derived.variant, KernelVariant::kTiledParallel);
  EXPECT_EQ(derived.semiring, SemiringId::kMaxMin);
  EXPECT_EQ(derived.isa, SimdIsa::kScalar);
}

TEST(AutoTune, DeriveStaysInBoundsAcrossCacheConfigs) {
  const auto is_pow2 = [](std::int64_t v) { return (v & (v - 1)) == 0; };
  const std::int64_t kib = 1024;
  const CacheHierarchy configs[] = {
      {16 * kib, 256 * kib, 4 * 1024 * kib, false},   // tiny embedded-ish
      {32 * kib, 512 * kib, 8 * 1024 * kib, true},    // laptop
      {48 * kib, 2048 * kib, 32 * 1024 * kib, true},  // reference
      {64 * kib, 4096 * kib, 0, true},                // no L3 reported
      {1024 * kib, 64 * 1024 * kib, 512 * 1024 * kib, false},  // huge
  };
  for (const CacheHierarchy& caches : configs) {
    const KernelTuning t = DeriveKernelTuning(caches, KernelTuning{});
    EXPECT_GE(t.tile_j, 128);
    EXPECT_LE(t.tile_j, 8192);
    EXPECT_TRUE(is_pow2(t.tile_j));
    EXPECT_GE(t.tile_k, 16);
    EXPECT_LE(t.tile_k, 1024);
    EXPECT_TRUE(is_pow2(t.tile_k));
    EXPECT_GE(t.fw_block, 64);
    EXPECT_LE(t.fw_block, 512);
    EXPECT_TRUE(is_pow2(t.fw_block));
    // Identical input, identical output (pure function).
    const KernelTuning again = DeriveKernelTuning(caches, KernelTuning{});
    EXPECT_EQ(t, again);
  }
}

TEST(AutoTune, DetectCacheHierarchyReportsPositiveSizes) {
  const CacheHierarchy caches = DetectCacheHierarchy(/*seed=*/42);
  EXPECT_GT(caches.l1d_bytes, 0);
  EXPECT_GT(caches.l2_bytes, 0);
  EXPECT_GT(caches.l3_bytes, 0);
  EXPECT_GE(caches.l2_bytes, caches.l1d_bytes);
}

TEST(AutoTune, DeterministicGivenSeedWithoutRace) {
  ResetAutoTuneMemoForTest();
  const KernelTuning first = KernelTuning::AutoTune(7, /*confirm_race=*/false);
  ResetAutoTuneMemoForTest();
  const KernelTuning second = KernelTuning::AutoTune(7, /*confirm_race=*/false);
  EXPECT_EQ(first.tile_j, second.tile_j);
  EXPECT_EQ(first.tile_k, second.tile_k);
  EXPECT_EQ(first.fw_block, second.fw_block);
  EXPECT_TRUE(first.auto_tuned);
  ResetAutoTuneMemoForTest();
}

TEST(AutoTune, MemoizesPerSeed) {
  ResetAutoTuneMemoForTest();
  const KernelTuning first = KernelTuning::AutoTune(9, /*confirm_race=*/false);
  // Same (seed, race) without a reset: served from the memo, so necessarily
  // the same geometry even if timing noise would have differed.
  const KernelTuning again = KernelTuning::AutoTune(9, /*confirm_race=*/false);
  EXPECT_EQ(first.tile_j, again.tile_j);
  EXPECT_EQ(first.tile_k, again.tile_k);
  EXPECT_EQ(first.fw_block, again.fw_block);
  ResetAutoTuneMemoForTest();
}

TEST(AutoTune, PreservesCallerVariantSemiringIsa) {
  ResetAutoTuneMemoForTest();
  ScopedSemiring ring(SemiringId::kMaxTimes);
  ScopedSimdIsa pin(SimdIsa::kScalar);
  SetKernelVariant(KernelVariant::kNaive);
  const KernelTuning tuned = KernelTuning::AutoTune(11, /*confirm_race=*/false);
  EXPECT_EQ(tuned.variant, KernelVariant::kNaive);
  EXPECT_EQ(tuned.semiring, SemiringId::kMaxTimes);
  EXPECT_EQ(tuned.isa, SimdIsa::kScalar);
  ResetAutoTuneMemoForTest();
}

TEST(AutoTune, RacedGeometryKeepsBitwiseLock) {
  // The full pipeline including the confirm race: whatever geometry wins,
  // the tiled kernel under it must still reproduce the scalar oracle
  // bitwise on all four semirings (the race itself verifies candidates; this
  // re-checks the winner end to end from the caller's side).
  ResetAutoTuneMemoForTest();
  const KernelTuning tuned = KernelTuning::AutoTune(42, /*confirm_race=*/true);
  const KernelTuning saved = GetKernelTuning();
  KernelTuning active = saved;
  active.tile_j = tuned.tile_j;
  active.tile_k = tuned.tile_k;
  active.fw_block = tuned.fw_block;
  SetKernelTuning(active);

  std::uint64_t seed = 7000;
  for (const SemiringId id : kAllSemirings) {
    ScopedSemiring ring(id);
    const DenseBlock a = InDomainBlock(id, 61, 83, ++seed);
    const DenseBlock b = InDomainBlock(id, 83, 77, ++seed);
    const DenseBlock c0 = InDomainBlock(id, 61, 77, ++seed);
    DenseBlock oracle = c0;
    WithSemiring(id, [&](auto ring_tag) {
      using S = decltype(ring_tag);
      SemiringProductAccumulate<S>(a, b, oracle);
    });
    for (const SimdIsa isa : AvailableIsas()) {
      ASSERT_TRUE(BitwiseEqual(RunTiled(isa, a, b, c0), oracle))
          << "tuned geometry, isa=" << SimdIsaName(isa)
          << " semiring=" << SemiringName(id);
    }
  }
  SetKernelTuning(saved);
  ResetAutoTuneMemoForTest();
}

}  // namespace
}  // namespace apspark::linalg
