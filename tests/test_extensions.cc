// Tests for the extension modules: the Pregel/GraphX-style baseline, the
// block-size autotuner, graph I/O, and Blocked-CB checkpoint/resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "apsp/checkpoint.h"
#include "apsp/solver.h"
#include "apsp/tuner.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/shortest_paths.h"
#include "pregel/pregel_sssp.h"

namespace apspark {
namespace {

sparklet::ClusterConfig TestCluster() {
  auto cfg = sparklet::ClusterConfig::TinyTest();
  cfg.local_storage_bytes = 16ULL * kGiB;
  return cfg;
}

// --- Pregel / GraphX baseline -------------------------------------------

TEST(Pregel, LandmarkDistancesMatchDijkstra) {
  const graph::Graph g = graph::PaperErdosRenyi(80, 31);
  const std::vector<graph::VertexId> landmarks = {0, 17, 42};
  pregel::PregelOptions options;
  auto result = pregel::ShortestPaths(g, landmarks, options, TestCluster());
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_TRUE(result.distances.has_value());
  const auto truth = graph::DijkstraAllPairs(g);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::size_t l = 0; l < landmarks.size(); ++l) {
      EXPECT_NEAR(result.distances->At(v, static_cast<std::int64_t>(l)),
                  truth.At(v, landmarks[l]), 1e-9)
          << "v=" << v << " landmark=" << landmarks[l];
    }
  }
}

TEST(Pregel, AllPairsMatchesDijkstra) {
  const graph::Graph g = graph::PaperErdosRenyi(48, 32);
  pregel::PregelOptions options;
  auto result = pregel::AllPairs(g, options, TestCluster());
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(
      result.distances->ApproxEquals(graph::DijkstraAllPairs(g), 1e-9));
}

TEST(Pregel, ConvergesInHopBoundedSupersteps) {
  // On a path graph, shortest paths have up to n-1 hops; with unit source 0
  // the loop must stop once nothing improves (plus the final quiet step).
  const graph::Graph g = graph::PathGraph(12, 1.0);
  auto result = pregel::ShortestPaths(g, {0}, {}, TestCluster());
  ASSERT_TRUE(result.status.ok());
  EXPECT_GE(result.supersteps, 11);
  EXPECT_LE(result.supersteps, 12);
  EXPECT_EQ(result.distances->At(11, 0), 11.0);
}

TEST(Pregel, RequiresLandmarks) {
  const graph::Graph g = graph::PathGraph(4, 1.0);
  auto result = pregel::ShortestPaths(g, {}, {}, TestCluster());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST(Pregel, MessageVolumeScalesWithLandmarks) {
  // The §2 story: the per-superstep shuffle grows linearly with the number
  // of landmarks, so landmarks = V costs O(n^2) per superstep.
  const graph::Graph g = graph::PaperErdosRenyi(64, 33);
  auto one = pregel::ShortestPaths(g, {0}, {}, TestCluster());
  std::vector<graph::VertexId> many;
  for (graph::VertexId v = 0; v < 32; ++v) many.push_back(v);
  auto thirty_two = pregel::ShortestPaths(g, many, {}, TestCluster());
  ASSERT_TRUE(one.status.ok());
  ASSERT_TRUE(thirty_two.status.ok());
  EXPECT_GT(thirty_two.metrics.shuffle_bytes,
            one.metrics.shuffle_bytes * 16);
}

TEST(Pregel, ModelSuperstepQuadraticInN) {
  const auto cluster = sparklet::ClusterConfig::Paper();
  const linalg::CostModel model;
  const double t1 = pregel::ModelSuperstepSeconds(65536, 12.0, cluster, model);
  const double t2 =
      pregel::ModelSuperstepSeconds(131072, 12.0, cluster, model);
  EXPECT_NEAR(t2 / t1, 4.0, 0.4);
}

// --- tuner ----------------------------------------------------------------

TEST(Tuner, RecommendsFeasibleConfiguration) {
  apsp::TuneRequest request;
  request.n = 131072;
  request.cluster = sparklet::ClusterConfig::Paper();
  auto choice = apsp::TuneConfiguration(request);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_TRUE(choice->feasible);
  // The paper's conclusion: Blocked-CB with MD at a mid-size block wins.
  EXPECT_EQ(choice->solver, apsp::SolverKind::kBlockedCollectBroadcast);
  EXPECT_GE(choice->block_size, 1024);
  EXPECT_LE(choice->block_size, 3072);
}

TEST(Tuner, FaultToleranceConstraintSelectsPureSolver) {
  apsp::TuneRequest request;
  request.n = 65536;
  request.cluster = sparklet::ClusterConfig::Paper();
  request.require_fault_tolerance = true;
  auto choice = apsp::TuneConfiguration(request);
  ASSERT_TRUE(choice.ok());
  EXPECT_TRUE(apsp::MakeSolver(choice->solver)->pure());
}

TEST(Tuner, SweepMarksStorageInfeasibleEntries) {
  apsp::TuneRequest request;
  request.n = 131072;
  request.cluster = sparklet::ClusterConfig::Paper();
  request.block_sizes = {512, 2048};
  request.solvers = {apsp::SolverKind::kBlockedInMemory};
  const auto entries = apsp::SweepConfigurations(request);
  ASSERT_EQ(entries.size(), 4u);  // 2 block sizes x 2 partitioners
  bool found_infeasible = false, found_feasible = false;
  for (const auto& entry : entries) {
    if (entry.block_size == 512) {
      EXPECT_FALSE(entry.feasible);  // the Figure 3 storage cliff
      found_infeasible = true;
    }
    if (entry.block_size == 2048 && entry.feasible) found_feasible = true;
  }
  EXPECT_TRUE(found_infeasible);
  EXPECT_TRUE(found_feasible);
  // Best-first ordering: feasible entries come first.
  EXPECT_TRUE(entries.front().feasible);
  EXPECT_FALSE(entries.back().feasible);
}

TEST(Tuner, RejectsDegenerateN) {
  apsp::TuneRequest request;
  request.n = 1;
  EXPECT_FALSE(apsp::TuneConfiguration(request).ok());
}

// --- graph I/O ------------------------------------------------------------

TEST(GraphIo, TextRoundTrip) {
  const graph::Graph g = graph::PaperErdosRenyi(64, 40);
  std::stringstream stream;
  graph::WriteEdgeListText(g, stream);
  auto loaded = graph::ReadEdgeListText(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded->edges(), g.edges());
  EXPECT_EQ(loaded->directed(), g.directed());
}

TEST(GraphIo, TextRejectsMalformedInput) {
  {
    std::stringstream s("1 2 3.0\n");  // no header
    EXPECT_FALSE(graph::ReadEdgeListText(s).ok());
  }
  {
    std::stringstream s("apsp 4 0\n1 2\n");  // missing weight
    EXPECT_FALSE(graph::ReadEdgeListText(s).ok());
  }
  {
    std::stringstream s("apsp 4 0\n1 9 1.0\n");  // endpoint out of range
    EXPECT_FALSE(graph::ReadEdgeListText(s).ok());
  }
}

TEST(GraphIo, TextToleratesCommentsAndBlankLines) {
  std::stringstream s("# hello\n\napsp 3 1\n# edge below\n0 2 1.5\n");
  auto g = graph::ReadEdgeListText(s);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->directed());
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_EQ(g->edges()[0].weight, 1.5);
}

TEST(GraphIo, BinaryRoundTrip) {
  const graph::Graph g =
      graph::ErdosRenyi(128, 0.1, {0.5, 2.0}, 41, /*directed=*/true);
  auto loaded = graph::DeserializeGraph(graph::SerializeGraph(g));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->edges(), g.edges());
  EXPECT_TRUE(loaded->directed());
}

TEST(GraphIo, BinaryRejectsCorruption) {
  auto bytes = graph::SerializeGraph(graph::PathGraph(5));
  auto truncated = bytes;
  truncated.resize(truncated.size() - 4);
  EXPECT_FALSE(graph::DeserializeGraph(truncated).ok());
  bytes[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(graph::DeserializeGraph(bytes).ok());
}

TEST(GraphIo, FileRoundTrip) {
  const graph::Graph g = graph::CycleGraph(10, 2.5);
  const std::string text_path = "/tmp/apspark_io_test.txt";
  const std::string bin_path = "/tmp/apspark_io_test.bin";
  ASSERT_TRUE(graph::WriteEdgeListTextFile(g, text_path).ok());
  ASSERT_TRUE(graph::WriteGraphBinaryFile(g, bin_path).ok());
  auto text = graph::ReadEdgeListTextFile(text_path);
  auto bin = graph::ReadGraphBinaryFile(bin_path);
  ASSERT_TRUE(text.ok());
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(text->edges(), g.edges());
  EXPECT_EQ(bin->edges(), g.edges());
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  EXPECT_FALSE(graph::ReadEdgeListTextFile("/tmp/apspark_nope").ok());
}

// --- checkpoint / resume ----------------------------------------------

TEST(Checkpoint, SaveLoadRoundTrip) {
  const graph::Graph g = graph::PaperErdosRenyi(32, 50);
  const apsp::BlockLayout layout(32, 8);
  sparklet::SparkletContext ctx(TestCluster());
  auto records = layout.Decompose(g.ToDenseAdjacency());
  EXPECT_FALSE(apsp::HasCheckpoint(ctx));
  apsp::SaveCheckpoint(ctx, layout, records, 2);
  EXPECT_TRUE(apsp::HasCheckpoint(ctx));
  auto loaded = apsp::LoadCheckpoint(ctx, layout);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->next_round, 2);
  auto original = layout.Assemble(records);
  auto restored = layout.Assemble(loaded->blocks);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->ApproxEquals(*original));
  // Layout mismatch is rejected.
  const apsp::BlockLayout other(32, 16);
  EXPECT_FALSE(apsp::LoadCheckpoint(ctx, other).ok());
}

TEST(Checkpoint, ResumeProducesSameResultAsUninterruptedRun) {
  const graph::Graph g = graph::PaperErdosRenyi(48, 51);
  const apsp::BlockLayout layout(48, 12);  // q = 4 rounds
  const auto truth = graph::DijkstraAllPairs(g);
  auto solver = apsp::MakeSolver(apsp::SolverKind::kBlockedCollectBroadcast);

  // Phase 1: run with checkpointing but "crash" after 2 of 4 rounds.
  sparklet::SparkletContext ctx(TestCluster());
  apsp::ApspOptions options;
  options.block_size = 12;
  options.checkpoint_every = 1;
  options.max_rounds = 2;
  auto partial = solver->Solve(ctx, layout,
                               layout.Decompose(g.ToDenseAdjacency()),
                               options);
  ASSERT_TRUE(partial.status.ok());
  EXPECT_FALSE(partial.distances.has_value());  // not finished

  // Phase 2: a fresh job loads the checkpoint and resumes.
  auto checkpoint = apsp::LoadCheckpoint(ctx, layout);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  EXPECT_EQ(checkpoint->next_round, 2);
  apsp::ApspOptions resume;
  resume.block_size = 12;
  resume.start_round = checkpoint->next_round;
  auto finished = solver->Solve(ctx, layout, checkpoint->blocks, resume);
  ASSERT_TRUE(finished.status.ok());
  ASSERT_TRUE(finished.distances.has_value());
  EXPECT_TRUE(finished.distances->ApproxEquals(truth, 1e-9))
      << "max diff " << finished.distances->MaxAbsDiff(truth);
}

TEST(Checkpoint, ChargesSharedFsTime) {
  const graph::Graph g = graph::PaperErdosRenyi(32, 52);
  const apsp::BlockLayout layout(32, 8);
  auto solver = apsp::MakeSolver(apsp::SolverKind::kBlockedCollectBroadcast);
  apsp::ApspOptions with;
  with.block_size = 8;
  with.checkpoint_every = 1;
  apsp::ApspOptions without;
  without.block_size = 8;
  auto a = solver->SolveGraph(g, with, TestCluster());
  auto b = solver->SolveGraph(g, without, TestCluster());
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_GT(a.metrics.shared_fs_written_bytes,
            b.metrics.shared_fs_written_bytes);
  EXPECT_GT(a.sim_seconds, b.sim_seconds);  // durability costs time
  EXPECT_TRUE(a.distances->ApproxEquals(*b.distances, 1e-9));
}

}  // namespace
}  // namespace apspark
