// Unit and property tests for the dense-block kernels: min-plus algebra,
// Floyd-Warshall variants, phantom propagation, serialization, cost model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "linalg/cost_model.h"
#include "linalg/dense_block.h"
#include "linalg/kernels.h"

namespace apspark::linalg {
namespace {

DenseBlock RandomBlock(std::int64_t rows, std::int64_t cols,
                       std::uint64_t seed, double inf_fraction = 0.2) {
  Xoshiro256 rng(seed);
  DenseBlock b(rows, cols, 0.0);
  for (std::int64_t i = 0; i < b.size(); ++i) {
    b.mutable_data()[i] =
        rng.NextDouble() < inf_fraction ? kInf : rng.NextDouble(0.0, 50.0);
  }
  return b;
}

/// Reference min-plus product, no tricks.
DenseBlock NaiveMinPlus(const DenseBlock& a, const DenseBlock& b) {
  DenseBlock c(a.rows(), b.cols(), kInf);
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      double best = kInf;
      for (std::int64_t k = 0; k < a.cols(); ++k) {
        best = std::min(best, a.At(i, k) + b.At(k, j));
      }
      c.Set(i, j, best);
    }
  }
  return c;
}

TEST(DenseBlock, ConstructionAndAccess) {
  DenseBlock b(3, 4, 1.5);
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 4);
  EXPECT_EQ(b.size(), 12);
  EXPECT_EQ(b.At(2, 3), 1.5);
  b.Set(1, 2, -3.0);
  EXPECT_EQ(b.At(1, 2), -3.0);
}

TEST(DenseBlock, DataConstructorValidatesShape) {
  EXPECT_THROW(DenseBlock(2, 2, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(DenseBlock, TransposeRoundTrip) {
  const DenseBlock b = RandomBlock(5, 9, 1);
  EXPECT_TRUE(b.Transposed().Transposed().ApproxEquals(b));
  const DenseBlock t = b.Transposed();
  for (std::int64_t r = 0; r < b.rows(); ++r) {
    for (std::int64_t c = 0; c < b.cols(); ++c) {
      EXPECT_EQ(b.At(r, c), t.At(c, r));
    }
  }
}

TEST(DenseBlock, ColumnAndRowExtraction) {
  const DenseBlock b = RandomBlock(4, 6, 2);
  const DenseBlock col = b.Column(3);
  EXPECT_EQ(col.rows(), 4);
  EXPECT_EQ(col.cols(), 1);
  for (std::int64_t r = 0; r < 4; ++r) EXPECT_EQ(col.At(r, 0), b.At(r, 3));
  const DenseBlock row = b.RowBlock(2);
  EXPECT_EQ(row.rows(), 1);
  for (std::int64_t c = 0; c < 6; ++c) EXPECT_EQ(row.At(0, c), b.At(2, c));
}

TEST(DenseBlock, SubBlock) {
  const DenseBlock b = RandomBlock(6, 6, 3);
  const DenseBlock sub = b.SubBlock(1, 2, 3, 4);
  EXPECT_EQ(sub.rows(), 3);
  EXPECT_EQ(sub.cols(), 4);
  EXPECT_EQ(sub.At(0, 0), b.At(1, 2));
  EXPECT_EQ(sub.At(2, 3), b.At(3, 5));
}

TEST(DenseBlock, SerializeRoundTrip) {
  const DenseBlock b = RandomBlock(7, 5, 4);
  BinaryWriter w;
  b.Serialize(w);
  EXPECT_EQ(w.size(), b.SerializedBytes());
  BinaryReader r(w.buffer());
  auto copy = DenseBlock::Deserialize(r);
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(copy->ApproxEquals(b));
}

TEST(DenseBlock, PhantomSerializeKeepsShapeAndLogicalSize) {
  const DenseBlock p = DenseBlock::Phantom(100, 200);
  EXPECT_TRUE(p.is_phantom());
  // Accounted size equals what a real block would occupy...
  EXPECT_EQ(p.SerializedBytes(), DenseBlock(1, 1).SerializedBytes() -
                                     sizeof(double) +
                                     100 * 200 * sizeof(double));
  // ...but the actual encoding is just the header.
  BinaryWriter w;
  p.Serialize(w);
  EXPECT_LT(w.size(), 64u);
  BinaryReader r(w.buffer());
  auto copy = DenseBlock::Deserialize(r);
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(copy->is_phantom());
  EXPECT_EQ(copy->rows(), 100);
  EXPECT_EQ(copy->cols(), 200);
}

TEST(DenseBlock, MaxAbsDiffDetectsInfinityMismatch) {
  DenseBlock a(2, 2, 1.0);
  DenseBlock b = a;
  b.Set(0, 1, kInf);
  EXPECT_EQ(a.MaxAbsDiff(b), kInf);
}

TEST(Kernels, MinPlusMatchesNaive) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const DenseBlock a = RandomBlock(9, 7, seed * 3 + 1);
    const DenseBlock b = RandomBlock(7, 11, seed * 3 + 2);
    EXPECT_TRUE(MinPlusProduct(a, b).ApproxEquals(NaiveMinPlus(a, b)));
  }
}

TEST(Kernels, MinPlusShapeMismatchThrows) {
  const DenseBlock a = RandomBlock(3, 4, 1);
  const DenseBlock b = RandomBlock(5, 3, 2);
  EXPECT_THROW(MinPlusProduct(a, b), std::invalid_argument);
}

TEST(Kernels, MinPlusWithIdentityIsNoWorse) {
  // Identity of the (min,+) semiring: 0 on diagonal, inf elsewhere.
  const DenseBlock a = RandomBlock(8, 8, 5);
  DenseBlock id(8, 8, kInf);
  for (int i = 0; i < 8; ++i) id.Set(i, i, 0.0);
  EXPECT_TRUE(MinPlusProduct(a, id).ApproxEquals(a));
  EXPECT_TRUE(MinPlusProduct(id, a).ApproxEquals(a));
}

TEST(Kernels, MinPlusUpdateOnlyImproves) {
  const DenseBlock a = RandomBlock(6, 6, 6);
  const DenseBlock b = RandomBlock(6, 6, 7);
  DenseBlock c = RandomBlock(6, 6, 8);
  const DenseBlock before = c;
  MinPlusUpdate(a, b, c);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_LE(c.data()[i], before.data()[i]);
  }
}

TEST(Kernels, ElementMin) {
  const DenseBlock a = RandomBlock(5, 5, 9);
  const DenseBlock b = RandomBlock(5, 5, 10);
  const DenseBlock m = ElementMin(a, b);
  for (std::int64_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.data()[i], std::min(a.data()[i], b.data()[i]));
  }
}

TEST(Kernels, OuterSumMinUpdate) {
  DenseBlock a = RandomBlock(4, 6, 11, /*inf_fraction=*/0.0);
  const DenseBlock u = RandomBlock(4, 1, 12, 0.3);
  const DenseBlock v = RandomBlock(6, 1, 13, 0.3);
  const DenseBlock before = a;
  OuterSumMinUpdate(a, u, v);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      EXPECT_EQ(a.At(i, j),
                std::min(before.At(i, j), u.At(i, 0) + v.At(j, 0)));
    }
  }
}

class BlockedFwSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(BlockedFwSweep, MatchesPlainFloydWarshall) {
  const auto [n, tile] = GetParam();
  DenseBlock adj = RandomBlock(n, n, 100 + static_cast<std::uint64_t>(n),
                               /*inf_fraction=*/0.6);
  for (std::int64_t i = 0; i < n; ++i) adj.Set(i, i, 0.0);
  // Symmetrize, matching the paper's undirected setting.
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) adj.Set(j, i, adj.At(i, j));
  }
  DenseBlock plain = adj;
  FloydWarshallInPlace(plain);
  DenseBlock blocked = adj;
  BlockedFloydWarshall(blocked, tile);
  EXPECT_TRUE(blocked.ApproxEquals(plain, 1e-9))
      << "n=" << n << " tile=" << tile;
}

INSTANTIATE_TEST_SUITE_P(
    TileSizes, BlockedFwSweep,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{1, 1},
                      std::pair<std::int64_t, std::int64_t>{7, 3},
                      std::pair<std::int64_t, std::int64_t>{16, 4},
                      std::pair<std::int64_t, std::int64_t>{33, 8},
                      std::pair<std::int64_t, std::int64_t>{64, 16},
                      std::pair<std::int64_t, std::int64_t>{50, 64},
                      std::pair<std::int64_t, std::int64_t>{48, 48}));

TEST(Kernels, FloydWarshallRequiresSquare) {
  DenseBlock rect(3, 4, 1.0);
  EXPECT_THROW(FloydWarshallInPlace(rect), std::invalid_argument);
  EXPECT_THROW(ReferenceFloydWarshall(rect), std::invalid_argument);
}

// --- kernel variant properties ------------------------------------------
//
// Every registry variant must agree with the fixed scalar reference. The
// min-plus kernels must agree *bitwise*: tiling and striping only reorder
// the (min) reduction, candidates a_ik + b_kj are computed identically.

// Pins a kernel variant for one test, restoring the previous tuning
// afterwards so test order cannot leak configuration.
using ScopedVariant = ScopedKernelVariant;

const KernelVariant kAllVariants[] = {KernelVariant::kNaive,
                                      KernelVariant::kTiled,
                                      KernelVariant::kTiledParallel};

bool BitwiseEqual(const DenseBlock& a, const DenseBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const double x = a.data()[i];
    const double y = b.data()[i];
    if (std::isinf(x) || std::isinf(y)) {
      if (x != y) return false;
    } else if (std::memcmp(&x, &y, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(KernelVariants, MinPlusUpdateBitwiseEqualAcrossVariants) {
  // Rectangular shapes, including dims that do not divide the tile sizes.
  const struct {
    std::int64_t m, n, k;
  } shapes[] = {{1, 1, 1},   {5, 3, 9},    {64, 64, 64},
                {63, 65, 31}, {130, 70, 33}, {97, 201, 129}};
  for (const auto& s : shapes) {
    for (double inf_fraction : {0.0, 0.3, 0.95}) {
      const DenseBlock a =
          RandomBlock(s.m, s.k, 1000 + static_cast<std::uint64_t>(s.m),
                      inf_fraction);
      const DenseBlock b =
          RandomBlock(s.k, s.n, 2000 + static_cast<std::uint64_t>(s.n),
                      inf_fraction);
      const DenseBlock c0 =
          RandomBlock(s.m, s.n, 3000 + static_cast<std::uint64_t>(s.k),
                      inf_fraction);
      DenseBlock expected = c0;
      MinPlusAccumulateRawNaive(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                                expected.mutable_data(), s.n);
      for (KernelVariant v : kAllVariants) {
        ScopedVariant scope(v);
        DenseBlock c = c0;
        MinPlusUpdate(a, b, c);
        EXPECT_TRUE(BitwiseEqual(c, expected))
            << KernelVariantName(v) << " m=" << s.m << " n=" << s.n
            << " k=" << s.k << " inf=" << inf_fraction;
      }
    }
  }
}

TEST(KernelVariants, MinPlusProductBitwiseEqualAcrossVariants) {
  const DenseBlock a = RandomBlock(150, 90, 41, 0.25);
  const DenseBlock b = RandomBlock(90, 170, 42, 0.25);
  const DenseBlock expected = [&] {
    ScopedVariant scope(KernelVariant::kNaive);
    return MinPlusProduct(a, b);
  }();
  EXPECT_TRUE(expected.ApproxEquals(NaiveMinPlus(a, b)));
  for (KernelVariant v : kAllVariants) {
    ScopedVariant scope(v);
    EXPECT_TRUE(BitwiseEqual(MinPlusProduct(a, b), expected))
        << KernelVariantName(v);
  }
}

TEST(KernelVariants, TinyTileSizesStayCorrect) {
  // Degenerate tiling parameters must not change results.
  KernelTuning tuning;
  tuning.variant = KernelVariant::kTiled;
  tuning.tile_j = 1;
  tuning.tile_k = 1;
  tuning.fw_block = 1;
  const KernelTuning saved = GetKernelTuning();
  SetKernelTuning(tuning);
  const DenseBlock a = RandomBlock(17, 13, 51, 0.2);
  const DenseBlock b = RandomBlock(13, 19, 52, 0.2);
  DenseBlock c = RandomBlock(17, 19, 53, 0.2);
  DenseBlock expected = c;
  MinPlusAccumulateRawNaive(17, 19, 13, a.data(), 13, b.data(), 19,
                            expected.mutable_data(), 19);
  MinPlusUpdate(a, b, c);
  SetKernelTuning(saved);
  EXPECT_TRUE(BitwiseEqual(c, expected));
}

DenseBlock RandomGraphMatrix(std::int64_t n, std::uint64_t seed, bool directed,
                             double inf_fraction) {
  DenseBlock adj = RandomBlock(n, n, seed, inf_fraction);
  for (std::int64_t i = 0; i < n; ++i) adj.Set(i, i, 0.0);
  if (!directed) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) adj.Set(j, i, adj.At(i, j));
    }
  }
  return adj;
}

TEST(KernelVariants, FloydWarshallMatchesReferenceOracle) {
  for (bool directed : {false, true}) {
    for (double inf_fraction : {0.3, 0.7}) {
      // n chosen to not divide the fw tile below.
      const DenseBlock adj = RandomGraphMatrix(
          101, directed ? 61u : 62u, directed, inf_fraction);
      DenseBlock expected = adj;
      ReferenceFloydWarshall(expected);
      KernelTuning tuning;
      tuning.fw_block = 16;  // force multiple ragged tiles
      for (KernelVariant v : kAllVariants) {
        const KernelTuning saved = GetKernelTuning();
        tuning.variant = v;
        SetKernelTuning(tuning);
        DenseBlock fw = adj;
        FloydWarshallInPlace(fw);
        SetKernelTuning(saved);
        EXPECT_TRUE(fw.ApproxEquals(expected, 1e-9))
            << KernelVariantName(v) << " directed=" << directed
            << " inf=" << inf_fraction;
      }
    }
  }
}

TEST(KernelVariants, BlockedFloydWarshallAllVariantsAllTiles) {
  const DenseBlock adj = RandomGraphMatrix(53, 77, /*directed=*/true, 0.5);
  DenseBlock expected = adj;
  ReferenceFloydWarshall(expected);
  for (KernelVariant v : kAllVariants) {
    for (std::int64_t tile : {1, 7, 16, 53, 64}) {
      ScopedVariant scope(v);
      DenseBlock blocked = adj;
      BlockedFloydWarshall(blocked, tile);
      EXPECT_TRUE(blocked.ApproxEquals(expected, 1e-9))
          << KernelVariantName(v) << " tile=" << tile;
    }
  }
}

TEST(KernelVariants, PhantomPropagationIndependentOfVariant) {
  for (KernelVariant v : kAllVariants) {
    ScopedVariant scope(v);
    DenseBlock c = DenseBlock::Phantom(4, 6);
    MinPlusUpdate(DenseBlock::Phantom(4, 5), DenseBlock::Phantom(5, 6), c);
    EXPECT_TRUE(c.is_phantom());
    DenseBlock fw = DenseBlock::Phantom(32, 32);
    FloydWarshallInPlace(fw);
    EXPECT_TRUE(fw.is_phantom());
  }
}

TEST(KernelVariants, ParseAndNameRoundTrip) {
  for (KernelVariant v : kAllVariants) {
    const auto parsed = ParseKernelVariant(KernelVariantName(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
  EXPECT_FALSE(ParseKernelVariant("gpu").has_value());
}

// --- phantom propagation -----------------------------------------------

TEST(Phantom, ProductOfPhantomsIsPhantom) {
  const DenseBlock a = DenseBlock::Phantom(4, 5);
  const DenseBlock b = DenseBlock::Phantom(5, 6);
  const DenseBlock c = MinPlusProduct(a, b);
  EXPECT_TRUE(c.is_phantom());
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 6);
}

TEST(Phantom, MixedOperandsYieldPhantom) {
  const DenseBlock real = RandomBlock(4, 4, 20);
  const DenseBlock ph = DenseBlock::Phantom(4, 4);
  EXPECT_TRUE(MinPlusProduct(real, ph).is_phantom());
  EXPECT_TRUE(ElementMin(ph, real).is_phantom());
  DenseBlock target = real;
  ElementMinInPlace(target, ph);
  EXPECT_TRUE(target.is_phantom());
}

TEST(Phantom, FloydWarshallKeepsPhantom) {
  DenseBlock ph = DenseBlock::Phantom(8, 8);
  FloydWarshallInPlace(ph);
  EXPECT_TRUE(ph.is_phantom());
  BlockedFloydWarshall(ph, 4);
  EXPECT_TRUE(ph.is_phantom());
}

TEST(Phantom, ExtractionsKeepShape) {
  const DenseBlock ph = DenseBlock::Phantom(6, 9);
  EXPECT_EQ(ph.Column(2).rows(), 6);
  EXPECT_TRUE(ph.Column(2).is_phantom());
  EXPECT_EQ(ph.Transposed().rows(), 9);
  EXPECT_TRUE(ph.SubBlock(0, 0, 2, 3).is_phantom());
}

// --- cost model ---------------------------------------------------------

TEST(CostModel, MatchesPaperT1) {
  const CostModel m;
  // T1 = 0.022 s for n = 256 => 0.762 Gops (paper §5.4).
  EXPECT_NEAR(m.FloydWarshallSeconds(256), 0.022, 0.001);
  EXPECT_NEAR(m.SequentialGops(256), 0.762, 0.01);
}

TEST(CostModel, CubicGrowthWithCacheKnee) {
  const CostModel m;
  const double t1k = m.FloydWarshallSeconds(1000);
  const double t2k = m.FloydWarshallSeconds(2000);
  // Pure b^3 would give 8x; the knee makes it strictly worse.
  EXPECT_GT(t2k / t1k, 8.0);
  EXPECT_LT(t2k / t1k, 8.0 * m.cache_penalty * 1.01);
}

TEST(CostModel, CacheFactorRampIsMonotonic) {
  const CostModel m;
  double prev = 0;
  for (double e = 1e5; e < 1e8; e *= 2) {
    const double f = m.CacheFactor(e);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 1.0);
    EXPECT_LE(f, m.cache_penalty);
    prev = f;
  }
}

TEST(CostModel, CalibrateProducesPositiveConstants) {
  const CostModel m = CostModel::Calibrate(64);
  EXPECT_GT(m.fw_op_seconds, 0);
  EXPECT_GT(m.minplus_op_seconds, 0);
  EXPECT_GT(m.elementwise_op_seconds, 0);
}

}  // namespace
}  // namespace apspark::linalg
