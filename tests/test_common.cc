// Unit tests for the common utilities: RNG, formatting, serialization,
// status/result, thread pool + work-stealing scheduler, arithmetic helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <set>
#include <string>
#include <thread>

#include "common/bytes.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "test_support.h"

namespace apspark {
namespace {

// --- RNG -------------------------------------------------------------

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, DoubleRangeRespectsBounds) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(3.0, 5.5);
    EXPECT_GE(d, 3.0);
    EXPECT_LT(d, 5.5);
  }
}

TEST(Xoshiro, BoundedIsUnbiasedEnough) {
  Xoshiro256 rng(9);
  std::vector<int> counts(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 10, kSamples / 100);  // within 10% relative
  }
}

TEST(Xoshiro, BoundedZeroReturnsZero) {
  Xoshiro256 rng(10);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Xoshiro, GeometricMeanMatchesDistribution) {
  Xoshiro256 rng(11);
  const double p = 0.2;
  double sum = 0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.NextGeometric(p));
  }
  // E[failures before success] = (1-p)/p = 4.
  EXPECT_NEAR(sum / kSamples, 4.0, 0.1);
}

TEST(Xoshiro, GeometricWithPOneIsZero) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextGeometric(1.0), 0u);
}

TEST(Xoshiro, GaussianMoments) {
  Xoshiro256 rng(13);
  double sum = 0, sum2 = 0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kSamples, 1.0, 0.03);
}

TEST(Xoshiro, JumpCreatesDisjointStream) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.Jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a.Next());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) collisions += first.count(b.Next());
  EXPECT_EQ(collisions, 0);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

// --- formatting --------------------------------------------------------

TEST(FormatDuration, PaperStyle) {
  EXPECT_EQ(FormatDuration(0.022), "22ms");
  EXPECT_EQ(FormatDuration(45), "45s");
  EXPECT_EQ(FormatDuration(143), "2m23s");
  EXPECT_EQ(FormatDuration(4500), "1h15m");
  EXPECT_EQ(FormatDuration(836400), "9d16h");
  EXPECT_EQ(FormatDuration(std::numeric_limits<double>::infinity()), "inf");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(4 * kKiB), "4.0KiB");
  EXPECT_EQ(FormatBytes(kGiB + kGiB / 2), "1.5GiB");
  EXPECT_EQ(FormatBytes(kTiB), "1.0TiB");
}

TEST(FormatRate, Units) { EXPECT_EQ(FormatRate(125.0e6), "119.2MiB/s"); }

// --- serialization ------------------------------------------------------

TEST(Serial, RoundTripScalars) {
  BinaryWriter w;
  w.Write<std::int64_t>(-7);
  w.Write<double>(3.25);
  w.WriteString("hello");
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.Read<std::int64_t>(), -7);
  EXPECT_EQ(*r.Read<double>(), 3.25);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serial, RoundTripVector) {
  BinaryWriter w;
  w.WriteVector(std::vector<double>{1.0, 2.0, 3.0});
  BinaryReader r(w.buffer());
  auto v = r.ReadVector<double>();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Serial, ReadPastEndFails) {
  BinaryWriter w;
  w.Write<std::int32_t>(1);
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.Read<std::int64_t>().status().code() ==
              StatusCode::kOutOfRange);
}

TEST(Serial, TruncatedStringFails) {
  BinaryWriter w;
  w.Write<std::uint64_t>(100);  // claims 100 bytes, provides none
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.ReadString().ok());
}

// --- status / result ------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = ResourceExhaustedError("disk full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: disk full");
  EXPECT_THROW(s.CheckOk(), std::runtime_error);
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> bad(NotFoundError("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(bad.value(), std::runtime_error);
}

// --- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(4,
                                [](std::size_t i) {
                                  if (i == 2) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

// --- work-stealing scheduler ----------------------------------------------

TEST(WorkStealing, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelForTasks(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkStealing, NestedParallelForInsideStolenTasks) {
  // Each outer task — wherever it was stolen to — fans out again; the
  // nested calls schedule through the executing thread's own deque instead
  // of running inline.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.ParallelForTasks(8, [&](std::size_t) {
    pool.ParallelFor(16, [&](std::size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 8 * 16);
}

TEST(WorkStealing, ThreeLevelNestingOnSmallPool) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  pool.ParallelForTasks(4, [&](std::size_t) {
    pool.ParallelForTasks(4, [&](std::size_t) {
      pool.ParallelForTasks(4, [&](std::size_t) { ++leaves; });
    });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(WorkStealing, OversubscriptionManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  constexpr std::int64_t kCount = 5000;
  std::atomic<std::int64_t> sum{0};
  pool.ParallelForTasks(static_cast<std::size_t>(kCount),
                        [&](std::size_t i) {
                          sum += static_cast<std::int64_t>(i);
                        });
  EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
}

TEST(WorkStealing, ConcurrentExternalSubmitters) {
  // Two driver-side threads race batches through the injection queue; each
  // joiner helps with whatever tasks it can take, including the other's.
  ThreadPool pool(4);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread t1([&] { pool.ParallelForTasks(300, [&](std::size_t) { ++a; }); });
  std::thread t2([&] { pool.ParallelForTasks(300, [&](std::size_t) { ++b; }); });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 300);
  EXPECT_EQ(b.load(), 300);
}

TEST(WorkStealing, ExceptionFirstOneWinsAndPoolSurvives) {
  // The thread_pool.h contract: exceptions are rethrown, first one wins;
  // tasks of the same call that have not started are skipped.
  ThreadPool pool(4);
  std::atomic<int> started{0};
  try {
    pool.ParallelForTasks(64, [&](std::size_t i) {
      ++started;
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).substr(0, 5), "task ");
  }
  EXPECT_GE(started.load(), 1);
  // The pool stays fully usable after a failed batch.
  std::atomic<int> counter{0};
  pool.ParallelForTasks(100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(WorkStealing, NestedExceptionPropagatesThroughOuterJoin) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelForTasks(8,
                                     [&](std::size_t) {
                                       pool.ParallelFor(8, [](std::size_t j) {
                                         if (j == 3) {
                                           throw std::logic_error("inner");
                                         }
                                       });
                                     }),
               std::logic_error);
}

namespace taskgraph {

/// Sequential shadow of SpawnGraph: the expected leaf count of the random
/// task graph rooted at (depth, seed).
std::int64_t CountLeaves(int depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto fanout = static_cast<std::int64_t>(1 + rng.NextBounded(5));
  if (depth == 0) return fanout;
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < fanout; ++i) {
    total += CountLeaves(depth - 1,
                         Mix64(seed ^ static_cast<std::uint64_t>(i + 1)));
  }
  return total;
}

/// Spawns the same random task graph on the pool: every node fans out into
/// 1..5 stealable tasks, children derive their shape from Mix64'd seeds.
void SpawnGraph(ThreadPool& pool, std::atomic<std::int64_t>& leaves,
                int depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto fanout = static_cast<std::size_t>(1 + rng.NextBounded(5));
  if (depth == 0) {
    leaves.fetch_add(static_cast<std::int64_t>(fanout));
    return;
  }
  pool.ParallelForTasks(fanout, [&, depth, seed](std::size_t i) {
    SpawnGraph(pool, leaves, depth - 1,
               Mix64(seed ^ static_cast<std::uint64_t>(i + 1)));
  });
}

}  // namespace taskgraph

TEST(WorkStealing, SeededRandomTaskGraphShapes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 rng(seed);
    ThreadPool pool(2 + rng.NextBounded(4));
    const int depth = static_cast<int>(1 + rng.NextBounded(3));
    const std::uint64_t shape_seed = Mix64(seed * 977);
    std::atomic<std::int64_t> leaves{0};
    taskgraph::SpawnGraph(pool, leaves, depth, shape_seed);
    EXPECT_EQ(leaves.load(), taskgraph::CountLeaves(depth, shape_seed));
  }
}

// --- math ------------------------------------------------------------------

TEST(MathUtils, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(1, 100), 1);
}

TEST(MathUtils, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(256), 8);
  EXPECT_EQ(CeilLog2(262144), 18);  // the paper's largest n
}

TEST(MathUtils, UpperTriangularCount) {
  EXPECT_EQ(UpperTriangularCount(1), 1);
  EXPECT_EQ(UpperTriangularCount(4), 10);
  EXPECT_EQ(UpperTriangularCount(1024), 524800);
}

TEST(MathUtils, LptMakespan) {
  // One machine: the ordered sum (the sequential-charging degenerate case).
  EXPECT_DOUBLE_EQ(LptMakespan({0.1, 0.2, 0.3}, 1), 0.1 + 0.2 + 0.3);
  EXPECT_DOUBLE_EQ(LptMakespan({1, 1, 1, 1}, 2), 2.0);
  EXPECT_DOUBLE_EQ(LptMakespan({2, 3, 2}, 2), 4.0);
  EXPECT_DOUBLE_EQ(LptMakespan({10, 0.1, 0.1}, 8), 10.0);
  EXPECT_DOUBLE_EQ(LptMakespan({}, 4), 0.0);
}

}  // namespace
}  // namespace apspark
