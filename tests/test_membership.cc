// Elastic cluster membership: the BlockManager placement map, rack-scoped
// correlated failures, node joins with data migration, and the multi-tenant
// fair scheduler built on stage traces.
//
// The load-bearing invariant: placement only decides accounting and modelled
// time — record processing is real and runs in the driver thread — so NO
// membership schedule may change a solver's numeric output. The acceptance
// tests at the bottom drive a rack loss plus a replacement join through all
// four APSP solvers and both KSSP data planes and require bitwise equality
// with the scalar oracle and the no-failure run, a placement map with no
// partition on a dead node, and a consistent memory ledger.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "apsp/solver.h"
#include "apsp/solvers/ksource_blocked.h"
#include "graph/generators.h"
#include "linalg/kernels.h"
#include "sparklet/block_manager.h"
#include "sparklet/fair_scheduler.h"
#include "sparklet/rdd.h"
#include "test_support.h"

namespace apspark {
namespace {

using apsp::ApspOptions;
using apsp::BlockLayout;
using apsp::KsourceBlockedSolver;
using apsp::KsourceOptions;
using apsp::KsourceVariant;
using apsp::MakeSolver;
using apsp::SolverKind;
using apsp::SolverKindName;
using graph::Graph;
using graph::VertexId;
using linalg::DenseBlock;
using sparklet::BlockManager;
using sparklet::ClusterConfig;
using sparklet::FairScheduler;
using sparklet::SparkletContext;
using sparklet::StageKind;
using sparklet::StageRecord;
using sparklet::TenantJob;
using test::ExpectBitwiseEqual;
using test::TestCluster;

std::vector<std::int64_t> Iota(std::int64_t n) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// ---------------------------------------------------------------------------
// BlockManager unit behavior
// ---------------------------------------------------------------------------

TEST(BlockManagerTest, UnchangedClusterReproducesRoundRobin) {
  // Least-loaded with lowest-id tie-break must hand out fresh slots exactly
  // like the historical `p % nodes` — that equivalence is what keeps every
  // no-failure run bitwise- and metrics-identical to the pre-elastic engine.
  const BlockManager bm(4, 1);
  for (std::int64_t p = 0; p < 40; ++p) {
    EXPECT_EQ(bm.NodeOf(p), static_cast<int>(p % 4)) << "partition " << p;
  }
  for (int n = 0; n < 4; ++n) EXPECT_EQ(bm.OwnedSlots(n), 10);
}

TEST(BlockManagerTest, NegativePartitionIdIsRejected) {
  // Regression: the old signed modulo silently returned a negative node
  // index for a negative partition id, poisoning every downstream ledger
  // lookup. The placement map refuses instead.
  const BlockManager bm(2, 1);
  EXPECT_THROW(bm.NodeOf(-1), std::logic_error);
  EXPECT_THROW(bm.NodeOf(-1000), std::logic_error);

  sparklet::VirtualCluster cluster(TestCluster());
  EXPECT_THROW(cluster.NodeOfPartition(-3), std::logic_error);
}

TEST(BlockManagerTest, RemoveNodeSpreadsSlotsAcrossSurvivors) {
  BlockManager bm(3, 1);
  for (std::int64_t p = 0; p < 9; ++p) bm.NodeOf(p);  // 3 slots each
  const auto moves = bm.RemoveNode(1);
  ASSERT_EQ(moves.size(), 3u);
  for (const auto& move : moves) EXPECT_EQ(move.from, 1);
  EXPECT_FALSE(bm.alive(1));
  EXPECT_EQ(bm.live_nodes(), 2);
  EXPECT_EQ(bm.OwnedSlots(1), 0);
  // Deterministic spread: 1 -> 0, 4 -> 2, 7 -> 0 (least-loaded, lowest id),
  // leaving a 5/4 split.
  EXPECT_EQ(bm.OwnedSlots(0) + bm.OwnedSlots(2), 9);
  EXPECT_LE(std::abs(bm.OwnedSlots(0) - bm.OwnedSlots(2)), 1);
  for (std::int64_t p = 0; p < 9; ++p) {
    EXPECT_NE(bm.NodeOf(p), 1) << "partition " << p << " on the dead node";
  }
}

TEST(BlockManagerTest, RemoveNodeRefusesCorpsesAndLastSurvivor) {
  BlockManager bm(2, 1);
  bm.RemoveNode(0);
  EXPECT_THROW(bm.RemoveNode(0), std::logic_error);  // already dead
  EXPECT_THROW(bm.RemoveNode(1), std::logic_error);  // last live node
  EXPECT_EQ(bm.live_nodes(), 1);
}

TEST(BlockManagerTest, AddNodeStealsFromMostLoadedUntilBalanced) {
  BlockManager bm(2, 1);
  for (std::int64_t p = 0; p < 8; ++p) bm.NodeOf(p);  // 4 slots each
  const auto join = bm.AddNode();
  EXPECT_EQ(join.node, 2);
  EXPECT_EQ(bm.live_nodes(), 3);
  // Greedy steal of the donors' highest-numbered slots until within one
  // slot: 8 slots over 3 nodes settles at 3/3/2.
  ASSERT_EQ(join.moves.size(), 2u);
  EXPECT_EQ(bm.OwnedSlots(2), 2);
  EXPECT_EQ(bm.OwnedSlots(0), 3);
  EXPECT_EQ(bm.OwnedSlots(1), 3);
  for (const auto& move : join.moves) {
    EXPECT_EQ(move.to, 2);
    EXPECT_EQ(bm.NodeOf(move.partition), 2);
  }
  // Determinism: the same history replays to the same placement.
  BlockManager replay(2, 1);
  for (std::int64_t p = 0; p < 8; ++p) replay.NodeOf(p);
  const auto join2 = replay.AddNode();
  ASSERT_EQ(join2.moves.size(), join.moves.size());
  for (std::size_t i = 0; i < join.moves.size(); ++i) {
    EXPECT_EQ(join2.moves[i].partition, join.moves[i].partition);
    EXPECT_EQ(join2.moves[i].from, join.moves[i].from);
  }
}

TEST(BlockManagerTest, RacksAreContiguousBalancedBlocks) {
  const BlockManager bm(8, 3);
  EXPECT_EQ(bm.num_racks(), 3);
  const std::vector<int> expected = {0, 0, 0, 1, 1, 1, 2, 2};
  for (int n = 0; n < 8; ++n) {
    EXPECT_EQ(bm.rack_of(n), expected[static_cast<std::size_t>(n)])
        << "node " << n;
  }
  EXPECT_EQ(bm.LiveNodesInRack(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(bm.LiveNodesInRack(2), (std::vector<int>{6, 7}));
  EXPECT_THROW(bm.rack_of(8), std::logic_error);
}

TEST(BlockManagerTest, JoinerLandsInLeastPopulatedRack) {
  BlockManager bm(8, 3);  // racks 0/1 have 3 nodes, rack 2 has 2
  const auto join = bm.AddNode();
  EXPECT_EQ(bm.rack_of(join.node), 2);
  // Rack count clamps to the node count; a degenerate config stays sane.
  const BlockManager tiny(2, 5);
  EXPECT_EQ(tiny.num_racks(), 2);
}

// ---------------------------------------------------------------------------
// Engine-level membership events
// ---------------------------------------------------------------------------

TEST(Membership, RackLossKillsEveryLiveNodeOfTheRack) {
  auto cfg = TestCluster();
  cfg.nodes = 4;
  cfg.racks = 2;  // nodes {0,1} in rack 0, {2,3} in rack 1
  SparkletContext ctx(cfg);
  auto rdd = ctx.Parallelize("data", Iota(40), 8)->Persist();
  rdd->EnsureMaterialized();
  const auto before = rdd->Collect();

  ctx.fault_injector().FailRack(0, ctx.metrics().stages);
  ctx.cluster().RunStage({0.0}, "tick");
  EXPECT_EQ(ctx.metrics().executor_failures, 2u);
  EXPECT_FALSE(ctx.cluster().placement().alive(0));
  EXPECT_FALSE(ctx.cluster().placement().alive(1));
  EXPECT_EQ(ctx.cluster().live_nodes(), 2);
  EXPECT_EQ(ctx.cluster().accountant().node_live_bytes(0), 0u);
  EXPECT_EQ(ctx.cluster().accountant().node_live_bytes(1), 0u);

  // Lineage rebuilds the rack's partitions on the surviving rack, bitwise.
  EXPECT_EQ(rdd->Collect(), before);
  EXPECT_GE(ctx.metrics().recomputed_tasks, 4u);
  for (std::int64_t p = 0; p < 8; ++p) {
    EXPECT_GE(ctx.cluster().NodeOfPartition(p), 2) << "partition " << p;
  }
}

TEST(Membership, JoinMigratesResidentBytesAndConservesTheLedger) {
  SparkletContext ctx(TestCluster());  // 2 nodes
  auto rdd = ctx.Parallelize("data", Iota(40), 8)->Persist();
  rdd->EnsureMaterialized();
  const auto& acct = ctx.cluster().accountant();
  const auto bytes0 = acct.node_live_bytes(0);
  const auto bytes1 = acct.node_live_bytes(1);
  ASSERT_GT(bytes0, 0u);
  const double clock_before = ctx.now_seconds();

  ctx.fault_injector().AddNode(ctx.metrics().stages);
  ctx.cluster().RunStage({0.0}, "tick");
  EXPECT_EQ(ctx.cluster().live_nodes(), 3);
  EXPECT_EQ(ctx.metrics().node_joins, 1u);
  EXPECT_GT(ctx.metrics().migrated_partitions, 0u);
  // Stolen slots carried their cached partitions: the newcomer holds real
  // bytes, the migration was charged through the network model, and the
  // cluster-wide ledger total is conserved (migration moves, never mints).
  EXPECT_GT(acct.node_live_bytes(2), 0u);
  EXPECT_GT(ctx.metrics().migration_bytes, 0u);
  EXPECT_GT(ctx.metrics().rebalance_seconds, 0.0);
  EXPECT_GT(ctx.now_seconds(), clock_before);
  EXPECT_EQ(acct.node_live_bytes(0) + acct.node_live_bytes(1) +
                acct.node_live_bytes(2),
            bytes0 + bytes1);

  // The data is still the data.
  EXPECT_EQ(rdd->Collect(), Iota(40));
}

TEST(Membership, KillingTheLastLiveNodeIsRefused) {
  SparkletContext ctx(TestCluster());  // 2 nodes
  auto rdd = ctx.Parallelize("data", Iota(20), 4)->Persist();
  rdd->EnsureMaterialized();
  const auto s = static_cast<std::int64_t>(ctx.metrics().stages);
  ctx.fault_injector().FailNode(0, s);
  ctx.fault_injector().FailNode(1, s + 1);
  ctx.cluster().RunStage({0.0}, "tick");
  EXPECT_EQ(ctx.metrics().executor_failures, 1u);
  ctx.cluster().RunStage({0.0}, "tick");  // would kill the last survivor
  EXPECT_EQ(ctx.metrics().executor_failures, 1u);
  EXPECT_EQ(ctx.cluster().live_nodes(), 1);
  EXPECT_TRUE(ctx.cluster().placement().alive(1));
  EXPECT_EQ(rdd->Collect(), Iota(20));
}

TEST(Membership, MembershipSurvivesReset) {
  // Reset() rewinds the clock, metrics and storage for a fresh job on the
  // SAME cluster — nodes lost or joined stay lost or joined, exactly like a
  // long-lived Spark cluster running job after job.
  auto cfg = TestCluster();
  cfg.nodes = 3;
  SparkletContext ctx(cfg);
  ctx.fault_injector().FailNode(0, 0);
  ctx.cluster().RunStage({0.0}, "tick");
  ASSERT_EQ(ctx.cluster().live_nodes(), 2);
  ctx.cluster().Reset();
  EXPECT_EQ(ctx.cluster().live_nodes(), 2);
  EXPECT_FALSE(ctx.cluster().placement().alive(0));
  EXPECT_EQ(ctx.metrics().executor_failures, 0u);  // metrics did reset
}

TEST(Membership, LiveTaskSlotsTrackMembership) {
  auto cfg = TestCluster();
  cfg.nodes = 3;  // 2 cores each
  SparkletContext ctx(cfg);
  EXPECT_EQ(ctx.cluster().live_task_slots(), 6);
  ctx.fault_injector().FailNode(2, 0);
  ctx.cluster().RunStage({0.0}, "tick");
  EXPECT_EQ(ctx.cluster().live_task_slots(), 4);
  ctx.fault_injector().AddNode(ctx.metrics().stages);
  ctx.cluster().RunStage({0.0}, "tick");
  EXPECT_EQ(ctx.cluster().live_task_slots(), 6);
}

// ---------------------------------------------------------------------------
// FairScheduler: fair sharing + memory admission over stage traces
// ---------------------------------------------------------------------------

StageRecord MakeStage(const std::string& name, int tasks, double cost,
                      std::uint64_t peak_bytes) {
  StageRecord stage;
  stage.name = name;
  stage.task_seconds.assign(static_cast<std::size_t>(tasks), cost);
  stage.node_peak_bytes = peak_bytes;
  return stage;
}

TEST(FairSchedulerTest, SplitsSlotsEvenlyAcrossActiveTenants) {
  auto cfg = TestCluster();  // 2 nodes x 2 cores = 4 slots
  FairScheduler scheduler(cfg);
  TenantJob a{"a", {MakeStage("a0", 8, 1.0, 0)}};
  TenantJob b{"b", {MakeStage("b0", 8, 1.0, 0)}};
  const auto report = scheduler.Run({a, b});
  // Both admitted immediately, each on half the slots: 8 tasks x 1s on 2
  // slots = 4s, concurrently.
  EXPECT_DOUBLE_EQ(report.makespan_seconds, 4.0);
  EXPECT_DOUBLE_EQ(report.admission_wait_seconds, 0.0);
  EXPECT_EQ(report.spilled_bytes, 0u);
  ASSERT_EQ(report.job_min_slots.size(), 2u);
  EXPECT_EQ(report.job_min_slots[0], 2);
  EXPECT_EQ(report.job_min_slots[1], 2);
  // Work conservation: perfectly divisible identical jobs tie the serial
  // baseline (8+8 tasks on 4 slots = 4s either way).
  EXPECT_DOUBLE_EQ(report.serial_seconds, 4.0);
}

TEST(FairSchedulerTest, MemoryAdmissionMakesTheSecondTenantWait) {
  auto cfg = TestCluster();
  cfg.executor_memory_bytes = 100;
  FairScheduler scheduler(cfg);
  // Each stage demands 60% of the budget: they cannot overlap.
  TenantJob a{"a", {MakeStage("a0", 4, 1.0, 60)}};
  TenantJob b{"b", {MakeStage("b0", 4, 1.0, 60)}};
  const auto report = scheduler.Run({a, b});
  // Job a runs alone on all 4 slots (1s), then b does the same.
  EXPECT_DOUBLE_EQ(report.makespan_seconds, 2.0);
  EXPECT_DOUBLE_EQ(report.job_admission_wait_seconds[0], 0.0);
  EXPECT_DOUBLE_EQ(report.job_admission_wait_seconds[1], 1.0);
  EXPECT_DOUBLE_EQ(report.admission_wait_seconds, 1.0);
  EXPECT_EQ(report.spilled_bytes, 0u);
  EXPECT_LT(report.job_finish_seconds[0], report.job_finish_seconds[1]);
  // Solo each job gets all 4 slots even under admission.
  EXPECT_EQ(report.job_min_slots[0], 4);
  EXPECT_EQ(report.job_min_slots[1], 4);
}

TEST(FairSchedulerTest, OversizedTenantForceAdmittedWithSpill) {
  auto cfg = TestCluster();
  cfg.executor_memory_bytes = 100;
  cfg.local_storage_bandwidth_bytes_per_sec = 50.0;
  FairScheduler scheduler(cfg);
  // A lone tenant larger than the whole budget must degrade, not deadlock:
  // force-admitted, overflow spilled at storage bandwidth.
  TenantJob big{"big", {MakeStage("b0", 4, 1.0, 250)}};
  sparklet::SimMetrics metrics;
  const auto report = scheduler.Run({big}, &metrics);
  EXPECT_EQ(report.spilled_bytes, 150u);
  // 4 tasks x 1s on 4 slots = 1s, plus 150 bytes / 50 B/s of spill.
  EXPECT_DOUBLE_EQ(report.makespan_seconds, 4.0);
  EXPECT_EQ(metrics.spilled_bytes, 150u);
  EXPECT_DOUBLE_EQ(metrics.admission_wait_seconds, 0.0);
}

TEST(FairSchedulerTest, ReplayedSoloTraceMatchesTheSoloRun) {
  // A single tenant replayed through the scheduler must reproduce the solo
  // run's stage clock exactly: trace in, same virtual seconds out.
  auto cfg = TestCluster();
  sparklet::VirtualCluster cluster(cfg);
  cluster.EnableStageTrace();
  cluster.RunStage(std::vector<double>(8, 0.5), "s0");
  cluster.RunStage(std::vector<double>(4, 1.0), "s1");
  const double solo_seconds = cluster.now_seconds();
  TenantJob job{"solo", cluster.stage_trace()};
  FairScheduler scheduler(cfg);
  const auto report = scheduler.Run({job});
  EXPECT_DOUBLE_EQ(report.makespan_seconds, solo_seconds);
  EXPECT_DOUBLE_EQ(report.serial_seconds, solo_seconds);
}

// ---------------------------------------------------------------------------
// Acceptance: a rack loss plus a replacement join is bitwise-invisible
// ---------------------------------------------------------------------------

Graph IntegerGraph(std::uint64_t seed) {
  const Graph g = graph::PaperErdosRenyi(40, seed);
  Graph gi(g.num_vertices(), g.directed());
  for (const auto& e : g.edges()) {
    gi.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  return gi;
}

DenseBlock Oracle(const Graph& g) {
  DenseBlock d = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(d);
  return d;
}

struct MembershipRun {
  apsp::ApspRunResult result;
  sparklet::SimMetrics metrics;
  bool placement_live = true;   // no partition maps to a dead node
  bool dead_ledgers_empty = true;  // dead nodes hold zero accounted bytes
};

MembershipRun RunApspWithMembership(
    SolverKind kind, const Graph& g, std::int64_t block,
    const std::vector<sparklet::RackFailurePlan>& fail_racks,
    const std::vector<std::int64_t>& add_nodes, std::int64_t checkpoint_every) {
  const BlockLayout layout(g.num_vertices(), block, g.directed());
  auto cfg = TestCluster();
  cfg.nodes = 4;
  cfg.racks = 2;
  SparkletContext ctx(cfg);
  ApspOptions opts;
  opts.block_size = block;
  opts.directed = g.directed();
  opts.checkpoint_every = checkpoint_every;
  opts.fail_racks = fail_racks;
  opts.add_nodes = add_nodes;
  MembershipRun run;
  run.result = MakeSolver(kind)->Solve(
      ctx, layout, layout.Decompose(g.ToDenseAdjacency()), opts);
  run.metrics = ctx.metrics();
  const auto& placement = ctx.cluster().placement();
  for (std::int64_t p = 0; p < placement.known_partitions(); ++p) {
    run.placement_live &= placement.alive(placement.NodeOf(p));
  }
  for (int n = 0; n < placement.num_nodes(); ++n) {
    if (!placement.alive(n)) {
      run.dead_ledgers_empty &=
          ctx.cluster().accountant().node_live_bytes(n) == 0;
    }
  }
  return run;
}

TEST(MembershipEndToEnd, RackLossAndJoinAllApspSolversBitwise) {
  const Graph gi = IntegerGraph(31);
  const DenseBlock oracle = Oracle(gi);
  const std::vector<sparklet::RackFailurePlan> rack_loss = {{0, 10}};
  const std::vector<std::int64_t> joins = {14};
  for (SolverKind kind : apsp::AllSolverKinds()) {
    const bool pure = MakeSolver(kind)->pure();
    auto clean = RunApspWithMembership(kind, gi, 10, {}, {}, 0);
    ASSERT_TRUE(clean.result.status.ok()) << SolverKindName(kind);
    auto faulty = RunApspWithMembership(kind, gi, 10, rack_loss, joins,
                                        /*checkpoint_every=*/pure ? 0 : 1);
    ASSERT_TRUE(faulty.result.status.ok())
        << SolverKindName(kind) << ": " << faulty.result.status.ToString();
    ASSERT_TRUE(faulty.result.distances.has_value());
    ExpectBitwiseEqual(*faulty.result.distances, oracle,
                       std::string(SolverKindName(kind)) + " vs oracle");
    ExpectBitwiseEqual(*faulty.result.distances, *clean.result.distances,
                       std::string(SolverKindName(kind)) + " vs clean run");
    EXPECT_EQ(faulty.metrics.executor_failures, 2u) << SolverKindName(kind);
    EXPECT_EQ(faulty.metrics.node_joins, 1u) << SolverKindName(kind);
    EXPECT_GT(faulty.metrics.migrated_partitions, 0u) << SolverKindName(kind);
    EXPECT_TRUE(faulty.placement_live)
        << SolverKindName(kind) << ": partition mapped to a dead node";
    EXPECT_TRUE(faulty.dead_ledgers_empty)
        << SolverKindName(kind) << ": dead node still holds accounted bytes";
    if (pure) {
      EXPECT_EQ(faulty.metrics.job_restarts, 0u) << SolverKindName(kind);
    }
  }
}

DenseBlock KsourceOracle(const Graph& g, const std::vector<VertexId>& sources) {
  DenseBlock d = Oracle(g);
  DenseBlock out(g.num_vertices(), static_cast<std::int64_t>(sources.size()),
                 linalg::kInf);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    for (std::size_t j = 0; j < sources.size(); ++j) {
      out.Set(v, static_cast<std::int64_t>(j), d.At(sources[j], v));
    }
  }
  return out;
}

TEST(MembershipEndToEnd, RackLossAndJoinBothKsourcePlanesBitwise) {
  const Graph gi = IntegerGraph(37);
  const std::vector<VertexId> sources = {0, 9, 21, 33};
  const DenseBlock oracle = KsourceOracle(gi, sources);
  auto cfg = TestCluster();
  cfg.nodes = 4;
  cfg.racks = 2;
  for (const KsourceVariant variant : {KsourceVariant::kStagedStorage,
                                       KsourceVariant::kShuffleReplicated}) {
    KsourceOptions opts;
    opts.block_size = 10;
    opts.fail_racks = {{1, 16}};
    opts.add_nodes = {20};
    if (!KsourceBlockedSolver::Pure(variant)) opts.checkpoint_every = 2;
    opts.variant = variant;
    KsourceBlockedSolver solver;
    auto result = solver.SolveGraph(gi, sources, opts, cfg);
    ASSERT_TRUE(result.status.ok())
        << apsp::KsourceVariantName(variant) << ": "
        << result.status.ToString();
    ASSERT_TRUE(result.distances.has_value());
    ExpectBitwiseEqual(*result.distances, oracle,
                       apsp::KsourceVariantName(variant));
    EXPECT_EQ(result.metrics.executor_failures, 2u);
    EXPECT_EQ(result.metrics.node_joins, 1u);
    if (KsourceBlockedSolver::Pure(variant)) {
      EXPECT_EQ(result.metrics.job_restarts, 0u);
    }
  }
}

}  // namespace
}  // namespace apspark
