// Observability layer: histogram bucket math, registry thread-safety,
// trace JSON well-formedness, virtual-span determinism, and the core
// guarantee that tracing never changes a solve.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "apsp/api.h"
#include "common/thread_pool.h"
#include "graph/generators.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "test_support.h"

namespace apspark {
namespace {

using obs::Histogram;

// ---------------------------------------------------------------- histogram

TEST(ObsHistogram, BucketBoundsContainEveryValue) {
  // Every tick must land in a bucket whose [lower, upper) range holds it,
  // over the exact linear range, the log range, and the saturating tail.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 70; ++v) probes.push_back(v);
  for (int p = 7; p < 63; ++p) {
    const std::uint64_t base = 1ull << p;
    probes.insert(probes.end(),
                  {base - 1, base, base + 1, base + (base >> 2),
                   base + (base >> 1), base + (base >> 1) + (base >> 2)});
  }
  probes.push_back(~0ull);
  for (const std::uint64_t v : probes) {
    const std::size_t b = Histogram::BucketOf(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << "tick " << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << "tick " << v;
    if (b + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(v, Histogram::BucketUpperBound(b)) << "tick " << v;
    }
  }
}

TEST(ObsHistogram, BucketsAreOrderedAndTight) {
  // Bounds tile the axis: bucket b ends exactly where b+1 begins, and the
  // log buckets keep width <= 25% of their lower bound (4 sub-buckets per
  // octave), which is what bounds the midpoint quantile error at 12.5%.
  for (std::size_t b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBound(b),
              Histogram::BucketLowerBound(b + 1))
        << "bucket " << b;
    const std::uint64_t lo = Histogram::BucketLowerBound(b);
    const std::uint64_t hi = Histogram::BucketUpperBound(b);
    ASSERT_LT(lo, hi) << "bucket " << b;
    if (b >= Histogram::kLinearBuckets) {
      EXPECT_LE(static_cast<double>(hi - lo), 0.25 * static_cast<double>(lo))
          << "bucket " << b;
    }
  }
}

TEST(ObsHistogram, QuantilesBracketTheTrueOrderStatistic) {
  Histogram h;
  // 1000 samples: 900 around 1000 ticks, 90 around 50000, 10 around 2^20.
  for (int i = 0; i < 900; ++i) h.Record(1000 + (i % 7));
  for (int i = 0; i < 90; ++i) h.Record(50000 + (i % 11));
  for (int i = 0; i < 10; ++i) h.Record((1ull << 20) + i);
  ASSERT_EQ(h.count(), 1000u);

  // Each quantile estimate must land in the bucket of the true order
  // statistic — that is the histogram's whole accuracy contract.
  const struct {
    double q;
    std::uint64_t truth;
  } cases[] = {{0.5, 1003}, {0.95, 50004}, {0.99, 50010}, {0.999, 1ull << 20}};
  for (const auto& c : cases) {
    const std::size_t b = Histogram::BucketOf(c.truth);
    const double est = h.Quantile(c.q);
    EXPECT_GE(est, static_cast<double>(Histogram::BucketLowerBound(b)))
        << "q = " << c.q;
    EXPECT_LE(est, static_cast<double>(Histogram::BucketUpperBound(b)))
        << "q = " << c.q;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), h.QuantileSeconds(0.5) * 1e9);
}

TEST(ObsHistogram, EmptyAndResetBehave) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 42u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// ----------------------------------------------------------------- registry

TEST(ObsRegistry, SameNameAndLabelsReturnsSameMetric) {
  obs::Registry registry;
  obs::Counter& a = registry.GetCounter("test_total", "k=\"v\"");
  obs::Counter& b = registry.GetCounter("test_total", "k=\"v\"");
  obs::Counter& other = registry.GetCounter("test_total", "k=\"w\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(ObsRegistry, ThreadSafeUnderParallelForTasks) {
  // The contention pattern the sharding exists for: every pool task hammers
  // the same counter and histogram, some racing registration of fresh
  // metrics at the same time. Totals must be exact.
  obs::Registry registry;
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 512;
  constexpr std::uint64_t kAddsPerTask = 200;
  obs::Counter& hot = registry.GetCounter("obs_test_hot_total");
  obs::Histogram& lat = registry.GetHistogram("obs_test_latency_ns");
  pool.ParallelForTasks(kTasks, [&](std::size_t i) {
    for (std::uint64_t k = 0; k < kAddsPerTask; ++k) {
      hot.Add();
      lat.Record(i * 1000 + k);
    }
    // Racing registration: a handful of distinct names created from many
    // threads at once.
    registry.GetCounter("obs_test_racing_total",
                        "slot=\"" + std::to_string(i % 5) + "\"")
        .Add();
  });
  EXPECT_EQ(hot.value(), kTasks * kAddsPerTask);
  EXPECT_EQ(lat.count(), kTasks * kAddsPerTask);
  std::uint64_t racing = 0;
  for (int s = 0; s < 5; ++s) {
    racing += registry
                  .GetCounter("obs_test_racing_total",
                              "slot=\"" + std::to_string(s) + "\"")
                  .value();
  }
  EXPECT_EQ(racing, kTasks);
}

TEST(ObsRegistry, ExportersRenderEveryMetric) {
  obs::Registry registry;
  registry.GetCounter("exp_total", "kind=\"a\"").Add(7);
  registry.GetGauge("exp_bytes").Set(1234.5);
  obs::Histogram& h = registry.GetHistogram("exp_latency_ns");
  for (int i = 0; i < 100; ++i) h.Record(500);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"exp_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"exp_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"exp_latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("exp_total{kind=\"a\"} 7"), std::string::npos);
  EXPECT_NE(prom.find("exp_latency_ns_count 100"), std::string::npos);
}

// -------------------------------------------------------------------- trace

/// Splits the traceEvents array of a Chrome trace JSON document into its
/// top-level event objects by brace depth (args objects nest one deeper).
std::vector<std::string> SplitEvents(const std::string& json) {
  const auto open = json.find('[');
  const auto close = json.rfind(']');
  EXPECT_NE(open, std::string::npos);
  EXPECT_NE(close, std::string::npos);
  std::vector<std::string> events;
  int depth = 0;
  std::string current;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = json[i];
    if (c == '{') ++depth;
    if (depth > 0) current.push_back(c);
    if (c == '}') {
      --depth;
      EXPECT_GE(depth, 0);
      if (depth == 0) {
        events.push_back(current);
        current.clear();
      }
    }
  }
  EXPECT_EQ(depth, 0);
  return events;
}

/// A traced chaos solve on the tiny cluster; returns the trace JSON.
std::string TracedChaosSolve(std::uint64_t* checksum = nullptr) {
  const graph::Graph g = graph::PaperErdosRenyi(96, 5);
  apsp::SolveRequest request;
  request.solver = apsp::SolverKind::kBlockedInMemory;  // pure: lineage path
  request.options.block_size = 24;
  request.cluster = test::TestCluster();
  request.options.fail_nodes.push_back({1, 2});
  obs::Tracer::Get().Start();
  {
    // A deterministic wall-clock span so every capture has pid-1 content
    // regardless of how small the solve is.
    obs::RealSpanScope real("test-chaos-solve");
    const auto report = apsp::Solve(g, request);
    if (report.ok() && checksum != nullptr) {
      std::uint64_t h = 1469598103934665603ull;
      const auto& d = *report.distances();
      for (std::int64_t i = 0; i < d.rows(); ++i) {
        for (std::int64_t j = 0; j < d.cols(); ++j) {
          h ^= std::bit_cast<std::uint64_t>(d.At(i, j));
          h *= 1099511628211ull;
        }
      }
      *checksum = h;
    }
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  }
  obs::Tracer::Get().Stop();
  return obs::Tracer::Get().ToChromeJson();
}

TEST(ObsTrace, ChromeJsonIsWellFormedAndCarriesTheSchema) {
  const std::string json = TracedChaosSolve();
  ASSERT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.rfind("]}"), std::string::npos);  // trailing newline allowed

  const std::vector<std::string> events = SplitEvents(json);
  ASSERT_GT(events.size(), 10u);
  bool saw_virtual = false, saw_real = false, saw_process_meta = false;
  bool saw_node_lane = false, saw_driver_lane = false, saw_loss = false;
  for (const std::string& e : events) {
    // Required fields on every event (metadata events may omit tid/ts).
    EXPECT_NE(e.find("\"name\":"), std::string::npos) << e;
    EXPECT_NE(e.find("\"ph\":"), std::string::npos) << e;
    EXPECT_NE(e.find("\"pid\":"), std::string::npos) << e;
    const bool meta = e.find("\"ph\":\"M\"") != std::string::npos;
    if (!meta) {
      EXPECT_NE(e.find("\"tid\":"), std::string::npos) << e;
      EXPECT_NE(e.find("\"ts\":"), std::string::npos) << e;
    }
    // Complete events need a duration.
    if (e.find("\"ph\":\"X\"") != std::string::npos) {
      EXPECT_NE(e.find("\"dur\":"), std::string::npos) << e;
    }
    saw_virtual |= !meta && e.find("\"pid\":2") != std::string::npos;
    saw_real |= !meta && e.find("\"pid\":1") != std::string::npos;
    saw_process_meta |= e.find("process_name") != std::string::npos;
    saw_node_lane |= e.find("node 1 / slot") != std::string::npos;
    saw_driver_lane |= e.find("driver / network") != std::string::npos;
    saw_loss |= e.find("\"node-loss\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_virtual);
  EXPECT_TRUE(saw_real);
  EXPECT_TRUE(saw_process_meta);
  EXPECT_TRUE(saw_node_lane);
  EXPECT_TRUE(saw_driver_lane);
  EXPECT_TRUE(saw_loss);

  // The chaos run must draw its recovery replay: recovery-kind stage spans
  // and recovery tasks on node lanes.
  EXPECT_NE(json.find("\"recovery-task\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"recovery\""), std::string::npos);
}

TEST(ObsTrace, VirtualSpansAreDeterministicAcrossRuns) {
  // The sim clock is deterministic, so two identical solves must produce
  // identical virtual (pid 2) event sets — only wall-clock spans may vary.
  const std::string first = TracedChaosSolve();
  const std::string second = TracedChaosSolve();
  auto virtual_events = [](const std::string& json) {
    std::vector<std::string> out;
    for (std::string& e : SplitEvents(json)) {
      if (e.find("\"pid\":2") != std::string::npos) out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(virtual_events(first), virtual_events(second));
}

TEST(ObsTrace, TracingIsBitwiseNeutral) {
  // The same solve with tracing off must produce bit-identical distances.
  std::uint64_t traced = 0;
  (void)TracedChaosSolve(&traced);

  const graph::Graph g = graph::PaperErdosRenyi(96, 5);
  apsp::SolveRequest request;
  request.solver = apsp::SolverKind::kBlockedInMemory;
  request.options.block_size = 24;
  request.cluster = test::TestCluster();
  request.options.fail_nodes.push_back({1, 2});
  ASSERT_FALSE(obs::TraceEnabled());
  const auto report = apsp::Solve(g, request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::uint64_t plain = 1469598103934665603ull;
  const auto& d = *report.distances();
  for (std::int64_t i = 0; i < d.rows(); ++i) {
    for (std::int64_t j = 0; j < d.cols(); ++j) {
      plain ^= std::bit_cast<std::uint64_t>(d.At(i, j));
      plain *= 1099511628211ull;
    }
  }
  EXPECT_EQ(traced, plain);
}

TEST(ObsTrace, StartClearsPriorCapture) {
  auto& tracer = obs::Tracer::Get();
  tracer.Start();
  tracer.VirtualSpan("probe", obs::kDriverLane, 0.0, 1.0);
  tracer.Stop();
  EXPECT_GE(tracer.EventCount(), 1u);
  tracer.Start();
  EXPECT_EQ(tracer.EventCount(), 0u);
  tracer.Stop();
}

}  // namespace
}  // namespace apspark
