// Small-block scaling property suite for the work-stealing block-task
// scheduler: every kernel variant must stay bitwise-equal to the scalar
// oracle on exactly the layouts the scheduler exists for — many small blocks
// (b in {64, 128}, q >= 8) — at the kernel level, as a raw task batch, and
// end-to-end through the solvers on the directed / disconnected graphs from
// test_support.h. Integer weights make every path sum exact in double
// precision, so bitwise equality is the oracle (see test_support.h).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apsp/building_blocks.h"
#include "apsp/solver.h"
#include "apsp/solvers/ksource_blocked.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "linalg/dense_block.h"
#include "linalg/kernel_registry.h"
#include "linalg/kernels.h"
#include "test_support.h"

namespace apspark {
namespace {

using apsp::ApspOptions;
using apsp::MakeSolver;
using apsp::SolverKind;
using linalg::DenseBlock;
using linalg::KernelVariant;
using linalg::ScopedKernelVariant;

constexpr KernelVariant kAllVariants[] = {
    KernelVariant::kNaive, KernelVariant::kTiled,
    KernelVariant::kTiledParallel};

/// Block sizes the suite sweeps: both ISSUE sizes in optimized builds, the
/// smaller one only under unoptimized/sanitized builds (the b = 128 oracle
/// is a 1024^3 scalar Floyd-Warshall).
std::vector<std::int64_t> SmallBlockSizes() {
#ifdef NDEBUG
  return {64, 128};
#else
  return {64};
#endif
}

/// Random integer-weight matrix: zero diagonal, weights in [1, 10],
/// `inf_density` missing edges. Integer path sums are exact, so every
/// relaxation order yields bitwise-identical minima.
DenseBlock RandomIntMatrix(std::int64_t n, std::uint64_t seed,
                           double inf_density) {
  Xoshiro256 rng(seed);
  DenseBlock m(n, n, 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      m.Set(i, j, rng.NextDouble() < inf_density
                      ? linalg::kInf
                      : 1.0 + std::floor(rng.NextDouble() * 10.0));
    }
  }
  return m;
}

/// Same graph with weights floored to integers (the bitwise-oracle regime).
graph::Graph IntegerWeights(const graph::Graph& g) {
  graph::Graph gi(g.num_vertices(), g.directed());
  for (const auto& e : g.edges()) {
    gi.AddEdge(e.u, e.v, std::floor(e.weight)).CheckOk();
  }
  return gi;
}

/// Pins the Floyd-Warshall tile size for the current scope's variant.
void UseFwBlock(std::int64_t b) {
  auto tuning = linalg::GetKernelTuning();
  tuning.fw_block = b;
  linalg::SetKernelTuning(tuning);
}

// --- kernel level -----------------------------------------------------------

TEST(SchedulerScaling, BlockedFloydWarshallBitwiseAtSmallBlocks) {
  for (std::int64_t b : SmallBlockSizes()) {
    const std::int64_t n = 8 * b;  // q = 8 blocked tiles
    APSPARK_SEEDED_CASE(1234 + b);
    const DenseBlock m = RandomIntMatrix(n, 1234 + static_cast<std::uint64_t>(b),
                                         /*inf_density=*/0.25);
    DenseBlock oracle = m;
    linalg::ReferenceFloydWarshall(oracle);
    for (KernelVariant v : kAllVariants) {
      ScopedKernelVariant scope(v);
      UseFwBlock(b);
      DenseBlock out = m;
      linalg::FloydWarshallInPlace(out);
      test::ExpectBitwiseEqual(out, oracle,
                               std::string("fw b=") + std::to_string(b) +
                                   " variant=" + linalg::KernelVariantName(v));
    }
  }
}

// --- task-batch level -------------------------------------------------------

TEST(SchedulerScaling, IndependentBlockUpdateBatchBitwise) {
  // One sparklet task batch's worth of independent block updates
  // C_ij = min(C_ij, A_i (min,+) B_j) — the unit the scheduler decomposes —
  // executed as q^2 stealable tasks and compared against the sequential
  // scalar loop.
  const std::int64_t q = 8;
  for (std::int64_t b : SmallBlockSizes()) {
    APSPARK_SEEDED_CASE(b);
    std::vector<DenseBlock> lhs;
    std::vector<DenseBlock> rhs;
    std::vector<DenseBlock> base;
    for (std::int64_t i = 0; i < q; ++i) {
      lhs.push_back(RandomIntMatrix(b, 100 + static_cast<std::uint64_t>(i),
                                    0.3));
      rhs.push_back(RandomIntMatrix(b, 200 + static_cast<std::uint64_t>(i),
                                    0.3));
    }
    for (std::int64_t u = 0; u < q * q; ++u) {
      base.push_back(RandomIntMatrix(b, 300 + static_cast<std::uint64_t>(u),
                                     0.3));
    }

    // Oracle: the fixed scalar kernel, sequentially.
    std::vector<DenseBlock> expected = base;
    for (std::int64_t u = 0; u < q * q; ++u) {
      const DenseBlock& a = lhs[static_cast<std::size_t>(u / q)];
      const DenseBlock& p = rhs[static_cast<std::size_t>(u % q)];
      linalg::MinPlusAccumulateRawNaive(
          b, b, b, a.data(), b, p.data(), b,
          expected[static_cast<std::size_t>(u)].mutable_data(), b);
    }

    for (KernelVariant v : kAllVariants) {
      ScopedKernelVariant scope(v);
      std::vector<DenseBlock> out = base;
      auto run_one = [&](std::size_t u) {
        const DenseBlock& a = lhs[u / static_cast<std::size_t>(q)];
        const DenseBlock& p = rhs[u % static_cast<std::size_t>(q)];
        linalg::MinPlusUpdate(a, p, out[u]);
      };
      if (v == KernelVariant::kTiledParallel) {
        linalg::KernelThreadPool().ParallelForTasks(
            static_cast<std::size_t>(q * q), run_one);
      } else {
        for (std::size_t u = 0; u < static_cast<std::size_t>(q * q); ++u) {
          run_one(u);
        }
      }
      for (std::size_t u = 0; u < static_cast<std::size_t>(q * q); ++u) {
        test::ExpectBitwiseEqual(
            out[u], expected[u],
            std::string("batch b=") + std::to_string(b) + " update " +
                std::to_string(u) + " variant=" +
                linalg::KernelVariantName(v));
      }
    }
  }
}

// --- adaptive task granularity ----------------------------------------------

TEST(SchedulerScaling, TinyBlockBatchMergesGrainsAndStaysBitwise) {
  // At b = 8 a fused update's modelled cost (~1 µs) sits far below the
  // dispatch-overhead floor, so the batch decomposition merges many updates
  // into each stealable task. Results must stay bitwise-identical to the
  // unmerged decomposition AND to the sequential scalar loop.
  const std::int64_t q = 12;
  const std::int64_t b = 8;
  std::vector<apsp::FusedTriple> updates;
  std::vector<DenseBlock> expected;
  for (std::int64_t u = 0; u < q * q; ++u) {
    DenseBlock base = RandomIntMatrix(b, 900 + static_cast<std::uint64_t>(u),
                                      0.3);
    DenseBlock lhs = RandomIntMatrix(b, 910 + static_cast<std::uint64_t>(u),
                                     0.3);
    DenseBlock rhs = RandomIntMatrix(b, 920 + static_cast<std::uint64_t>(u),
                                     0.3);
    DenseBlock oracle = base;
    linalg::MinPlusAccumulateRawNaive(b, b, b, lhs.data(), b, rhs.data(), b,
                                      oracle.mutable_data(), b);
    expected.push_back(std::move(oracle));
    updates.push_back({linalg::MakeRef(std::move(base)),
                       linalg::MakeRef(std::move(lhs)),
                       linalg::MakeRef(std::move(rhs))});
  }

  sparklet::SparkletContext ctx(test::TestCluster());
  for (KernelVariant v : kAllVariants) {
    ScopedKernelVariant scope(v);
    // Sanity: the floor is live for this layout (each 8^3 update is cheap).
    ASSERT_GT(linalg::GetKernelTuning().task_grain_floor_seconds, 0.0);
    auto tc = ctx.MakeTaskContext();
    auto batch_updates = updates;  // refs: copying the batch is free
    auto out = apsp::MinPlusIntoBatch(std::move(batch_updates), tc);
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t u = 0; u < out.size(); ++u) {
      test::ExpectBitwiseEqual(
          *out[u], expected[u],
          std::string("tiny-b batch update ") + std::to_string(u) +
              " variant=" + linalg::KernelVariantName(v));
    }
  }
}

TEST(SchedulerScaling, SolversTinyBlocksUnderGrainMerging) {
  // End-to-end at b = 4 (q = 16 on n = 64): every per-pivot batch is far
  // below the grain floor, so whole batches run as few merged tasks; the
  // stealing path with merged grains must stay bitwise on all solvers.
  const graph::Graph g = IntegerWeights(
      graph::ErdosRenyi(64, 0.15, {1.0, 10.0}, /*seed=*/5150));
  DenseBlock oracle = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(oracle);
  for (KernelVariant v : kAllVariants) {
    auto cluster = test::TestCluster();
    cluster.kernel_variant = v;
    for (SolverKind kind :
         {SolverKind::kBlockedInMemory, SolverKind::kBlockedCollectBroadcast}) {
      ApspOptions opts;
      opts.block_size = 4;
      auto result = MakeSolver(kind)->SolveGraph(g, opts, cluster);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      test::ExpectBitwiseEqual(*result.distances, oracle,
                               std::string("tiny-b ") +
                                   apsp::SolverKindName(kind) + " variant=" +
                                   linalg::KernelVariantName(v));
    }
  }
}

// --- solver level -----------------------------------------------------------

/// Solves `g` at block size 8 (q >= 8 for every n >= 64 here) under each
/// kernel variant and checks the distance matrix bitwise against the scalar
/// oracle.
void ExpectSolversMatchOracle(const graph::Graph& g, const std::string& label) {
  DenseBlock oracle = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(oracle);
  for (KernelVariant v : kAllVariants) {
    auto cluster = test::TestCluster();
    cluster.kernel_variant = v;
    for (SolverKind kind :
         {SolverKind::kBlockedInMemory, SolverKind::kBlockedCollectBroadcast}) {
      ApspOptions opts;
      opts.block_size = 8;
      auto result = MakeSolver(kind)->SolveGraph(g, opts, cluster);
      ASSERT_TRUE(result.status.ok())
          << label << ": " << result.status.ToString();
      ASSERT_TRUE(result.distances.has_value()) << label;
      test::ExpectBitwiseEqual(*result.distances, oracle,
                               label + " " + apsp::SolverKindName(kind) +
                                   " variant=" +
                                   linalg::KernelVariantName(v));
    }
  }
}

TEST(SchedulerScaling, SolversSmallBlocksRandomGraphs) {
  Xoshiro256 rng(2026);
  for (int c = 0; c < 4; ++c) {
    const std::uint64_t seed = rng.Next();
    APSPARK_SEEDED_CASE(seed);
    Xoshiro256 crng(seed);
    test::RandomGraphOptions gopts;
    gopts.min_vertices = 64;
    gopts.max_vertices = 96;
    gopts.integer_weights = true;
    const graph::Graph g = test::RandomTestGraph(crng, gopts);
    ExpectSolversMatchOracle(g, "random case " + std::to_string(c));
  }
}

TEST(SchedulerScaling, SolversSmallBlocksDisconnectedGraph) {
  // Two components, no inter-component edges: the +inf cut must survive a
  // q = 10 small-block layout under the stealing path.
  const graph::Graph g = IntegerWeights(test::TwoComponentGraph(40, 11, 22));
  ExpectSolversMatchOracle(g, "two-component");
}

TEST(SchedulerScaling, SolversSmallBlocksDirectedGraph) {
  const graph::Graph g = IntegerWeights(
      graph::ErdosRenyi(72, 0.12, {1.0, 10.0}, /*seed=*/77, /*directed=*/true));
  ASSERT_TRUE(g.directed());
  ExpectSolversMatchOracle(g, "directed");
}

TEST(SchedulerScaling, KsourceSmallBlocksMatchesOracleColumns) {
  const graph::Graph g = IntegerWeights(test::TwoComponentGraph(40, 3, 4));
  const std::int64_t n = g.num_vertices();
  const std::vector<graph::VertexId> sources = {0, 17, 45, 79};
  DenseBlock oracle = g.ToDenseAdjacency();
  linalg::ReferenceFloydWarshall(oracle);
  DenseBlock expected(n, static_cast<std::int64_t>(sources.size()),
                      linalg::kInf);
  for (std::int64_t v = 0; v < n; ++v) {
    for (std::size_t j = 0; j < sources.size(); ++j) {
      expected.Set(v, static_cast<std::int64_t>(j),
                   oracle.At(sources[j], v));
    }
  }
  for (KernelVariant variant : kAllVariants) {
    auto cluster = test::TestCluster();
    cluster.kernel_variant = variant;
    apsp::KsourceOptions opts;
    opts.block_size = 8;  // q = 10
    apsp::KsourceBlockedSolver solver;
    auto result = solver.SolveGraph(g, sources, opts, cluster);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    ASSERT_TRUE(result.distances.has_value());
    test::ExpectBitwiseEqual(*result.distances, expected,
                             std::string("ksource variant=") +
                                 linalg::KernelVariantName(variant));
  }
}

}  // namespace
}  // namespace apspark
