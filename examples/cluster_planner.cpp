// Capacity/configuration planner: before renting 1,024 cores, sweep solver,
// block size and partitioner on the virtual cluster (phantom blocks — no
// graph data needed) and print a recommendation. This automates the paper's
// §5.2-§5.3 tuning discussion: "the block size should be selected
// carefully" and "programmer should not depend on default options".
//
// Usage: cluster_planner [n] [cores]   (defaults: n = 131072, cores = 1024)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apsp/solver.h"
#include "common/time_utils.h"

int main(int argc, char** argv) {
  using namespace apspark;
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 131072;
  const int cores = argc > 2 ? std::atoi(argv[2]) : 1024;
  auto cluster = sparklet::ClusterConfig::PaperWithCores(cores);
  std::printf("planning APSP of n = %lld on: %s\n", static_cast<long long>(n),
              cluster.Summary().c_str());
  std::printf("%-14s %-6s %-4s %12s %14s %12s\n", "solver", "b", "part",
              "per-round", "projected", "spill/node");

  struct Best {
    double seconds = std::numeric_limits<double>::infinity();
    std::string description;
  } best;

  for (auto kind : {apsp::SolverKind::kBlockedInMemory,
                    apsp::SolverKind::kBlockedCollectBroadcast}) {
    auto solver = apsp::MakeSolver(kind);
    for (std::int64_t b : {512LL, 1024LL, 1536LL, 2048LL, 3072LL}) {
      if (b >= n) continue;
      for (auto part : {apsp::PartitionerKind::kMultiDiagonal,
                        apsp::PartitionerKind::kPortableHash}) {
        apsp::ApspOptions options;
        options.block_size = b;
        options.partitioner = part;
        options.max_rounds = 1;  // one simulated round, then project
        auto result = solver->SolveModel(n, options, cluster);
        std::string projected;
        if (!result.status.ok() || result.projected_storage_exceeded) {
          projected = "infeasible";
        } else {
          projected = FormatDuration(result.projected_seconds);
          if (result.projected_seconds < best.seconds) {
            best.seconds = result.projected_seconds;
            best.description = solver->name() + ", b = " + std::to_string(b) +
                               ", " + apsp::PartitionerKindName(part) +
                               " partitioner" +
                               (solver->pure() ? " (fault-tolerant)"
                                               : " (NOT fault-tolerant)");
          }
        }
        std::printf("%-14s %-6lld %-4s %12s %14s %12s\n",
                    solver->name().c_str(), static_cast<long long>(b),
                    apsp::PartitionerKindName(part),
                    FormatDuration(result.SecondsPerRound()).c_str(),
                    projected.c_str(),
                    FormatBytes(static_cast<std::uint64_t>(
                                    result.projected_spill_bytes))
                        .c_str());
      }
    }
  }
  if (best.seconds < std::numeric_limits<double>::infinity()) {
    std::printf("\nrecommendation: %s — estimated %s\n",
                best.description.c_str(),
                FormatDuration(best.seconds).c_str());
  } else {
    std::printf("\nno feasible configuration found — add nodes or storage\n");
  }
  return 0;
}
