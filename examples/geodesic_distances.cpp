// Manifold-learning scenario from the paper's introduction: shortest paths
// over a neighbourhood graph approximate geodesic distances on the
// underlying manifold (Isomap / MDS pipelines, [3, 21] in the paper).
//
// We sample a Swiss roll, build a symmetric kNN graph, solve APSP with the
// Blocked In-Memory solver, and show how graph distances (geodesics) keep
// the manifold structure that straight-line Euclidean distances destroy:
// points on opposite sheets of the roll are Euclidean-close but
// geodesically far.
#include <array>
#include <cmath>
#include <cstdio>

#include "apsp/solver.h"
#include "graph/generators.h"

int main() {
  using namespace apspark;

  const std::int64_t n = 400;
  const auto points = graph::SwissRoll(n, /*seed=*/7);
  const graph::Graph knn = graph::KnnGraph(points, /*k=*/10);
  std::printf("kNN graph: %s\n", knn.Summary().c_str());

  apsp::ApspOptions options;
  options.block_size = 100;
  auto cluster = sparklet::ClusterConfig::TinyTest();
  cluster.local_storage_bytes = 16ULL * kGiB;
  auto solver = apsp::MakeSolver(apsp::SolverKind::kBlockedInMemory);
  auto result = solver->SolveGraph(knn, options, cluster);
  if (!result.status.ok()) {
    std::printf("solve failed: %s\n", result.status.ToString().c_str());
    return 1;
  }
  const auto& geo = *result.distances;

  auto euclid = [&](std::int64_t a, std::int64_t b) {
    double s = 0;
    for (int d = 0; d < 3; ++d) {
      const double diff = points[static_cast<std::size_t>(a)][static_cast<std::size_t>(d)] -
                          points[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)];
      s += diff * diff;
    }
    return std::sqrt(s);
  };

  // Geodesic distance can never undercut Euclidean (edges are Euclidean
  // lengths); the interesting pairs are where it is much larger.
  double max_ratio = 0;
  std::int64_t max_a = 0, max_b = 0;
  double mean_ratio = 0;
  std::int64_t pairs = 0;
  for (std::int64_t a = 0; a < n; ++a) {
    for (std::int64_t b = a + 1; b < n; ++b) {
      if (std::isinf(geo.At(a, b))) continue;
      const double ratio = geo.At(a, b) / std::max(1e-9, euclid(a, b));
      mean_ratio += ratio;
      ++pairs;
      if (ratio > max_ratio) {
        max_ratio = ratio;
        max_a = a;
        max_b = b;
      }
    }
  }
  mean_ratio /= static_cast<double>(pairs);
  std::printf("geodesic/Euclidean ratio: mean %.2f, max %.2f\n", mean_ratio,
              max_ratio);
  std::printf(
      "most 'folded' pair: %lld <-> %lld, Euclidean %.2f vs geodesic %.2f\n",
      static_cast<long long>(max_a), static_cast<long long>(max_b),
      euclid(max_a, max_b), geo.At(max_a, max_b));
  if (max_ratio > 2.0) {
    std::printf("the roll is folded: Isomap-style embeddings need these "
                "graph distances, i.e. an APSP solve, exactly as the paper "
                "motivates.\n");
  }
  return 0;
}
