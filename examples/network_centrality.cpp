// Network-analysis scenario: closeness centrality (and weighted
// eccentricity) of every vertex needs the full distance matrix — one of the
// "APSP as a building block" workloads the paper's introduction cites
// (network classification, information retrieval).
//
// Uses the 2D Floyd-Warshall solver — the pure, fault-tolerant choice — and
// demonstrates it survives injected task failures via lineage recomputation.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "apsp/solver.h"
#include "graph/generators.h"

int main() {
  using namespace apspark;

  const std::int64_t n = 200;
  const graph::Graph g = graph::PaperErdosRenyi(n, /*seed=*/99);
  std::printf("input: %s\n", g.Summary().c_str());

  const apsp::BlockLayout layout(n, /*block_size=*/50);
  auto cluster = sparklet::ClusterConfig::TinyTest();
  cluster.local_storage_bytes = 16ULL * kGiB;
  sparklet::SparkletContext ctx(cluster);
  // Make it interesting: kill a few tasks mid-run. The solver is pure, so
  // the engine recomputes from lineage and the result is unaffected.
  ctx.fault_injector().FailTask("fw2d-update", 1, 2);
  ctx.fault_injector().FailTask("fw2d-extract", 0, 1);

  apsp::ApspOptions options;
  options.block_size = 50;
  auto solver = apsp::MakeSolver(apsp::SolverKind::kFloydWarshall2d);
  auto result = solver->Solve(ctx, layout,
                              layout.Decompose(g.ToDenseAdjacency()), options);
  if (!result.status.ok()) {
    std::printf("solve failed: %s\n", result.status.ToString().c_str());
    return 1;
  }
  std::printf("survived %llu injected task failures (pure solver, lineage "
              "recomputation)\n",
              static_cast<unsigned long long>(ctx.metrics().task_failures));

  const auto& d = *result.distances;
  struct Row {
    std::int64_t vertex;
    double closeness;
    double eccentricity;
  };
  std::vector<Row> rows;
  for (std::int64_t v = 0; v < n; ++v) {
    double sum = 0, ecc = 0;
    std::int64_t reachable = 0;
    for (std::int64_t u = 0; u < n; ++u) {
      if (u == v || std::isinf(d.At(v, u))) continue;
      sum += d.At(v, u);
      ecc = std::max(ecc, d.At(v, u));
      ++reachable;
    }
    const double closeness = sum > 0 ? static_cast<double>(reachable) / sum : 0;
    rows.push_back({v, closeness, ecc});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.closeness > b.closeness; });
  std::printf("\ntop-5 closeness centrality:\n");
  std::printf("%8s %12s %14s\n", "vertex", "closeness", "eccentricity");
  for (std::size_t i = 0; i < 5 && i < rows.size(); ++i) {
    std::printf("%8lld %12.4f %14.2f\n",
                static_cast<long long>(rows[i].vertex), rows[i].closeness,
                rows[i].eccentricity);
  }
  return 0;
}
