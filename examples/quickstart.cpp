// Quickstart: solve APSP on a random graph with the paper's best solver
// (Blocked Collect/Broadcast) and inspect distances + engine metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "apsp/solver.h"
#include "common/time_utils.h"
#include "graph/generators.h"

int main() {
  using namespace apspark;

  // 1. An Erdős–Rényi graph with the paper's edge density (§5.1).
  const std::int64_t n = 256;
  const graph::Graph g = graph::PaperErdosRenyi(n, /*seed=*/2024);
  std::printf("input: %s\n", g.Summary().c_str());

  // 2. Configure the solver: block size b, partitioner, over-decomposition.
  apsp::ApspOptions options;
  options.block_size = 64;  // q = ceil(n/b) = 4 blocks per dimension
  options.partitioner = apsp::PartitionerKind::kMultiDiagonal;
  options.partitions_per_core = 2;

  // 3. Pick a virtual cluster to model. TinyTest() is enough for a demo;
  //    ClusterConfig::Paper() models the 32-node/1024-core testbed.
  auto cluster = sparklet::ClusterConfig::TinyTest();
  cluster.local_storage_bytes = 16ULL * kGiB;

  // 4. Solve.
  auto solver = apsp::MakeSolver(apsp::SolverKind::kBlockedCollectBroadcast);
  auto result = solver->SolveGraph(g, options, cluster);
  if (!result.status.ok()) {
    std::printf("solve failed: %s\n", result.status.ToString().c_str());
    return 1;
  }

  // 5. Use the distances.
  const auto& d = *result.distances;
  std::printf("d(0, %lld) = %.3f\n", static_cast<long long>(n - 1),
              d.At(0, n - 1));
  double max_finite = 0, sum = 0;
  std::int64_t finite_pairs = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      if (std::isinf(d.At(i, j))) continue;
      max_finite = std::max(max_finite, d.At(i, j));
      sum += d.At(i, j);
      ++finite_pairs;
    }
  }
  std::printf("graph diameter (weighted): %.3f, mean distance %.3f over %lld"
              " reachable pairs\n",
              max_finite, sum / static_cast<double>(finite_pairs),
              static_cast<long long>(finite_pairs));

  // 6. What the virtual cluster saw.
  std::printf("solver: %s (%s)\n", solver->name().c_str(),
              solver->pure() ? "pure" : "impure");
  std::printf("rounds: %lld, simulated time %s\n",
              static_cast<long long>(result.rounds_executed),
              FormatDuration(result.sim_seconds).c_str());
  std::printf("engine: %s\n", result.metrics.Summary().c_str());
  return 0;
}
