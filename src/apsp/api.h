// Consolidated public solve surface.
//
// The library grew four solver classes, two run modes and a k-source solver,
// each taking its own options bag plus a cluster and a cost model as loose
// positional arguments. This header is the redesigned front door:
//
//   SolveRequest — everything one APSP solve needs: which solver, the
//     workload options (ApspOptions, which it wraps), the cluster and the
//     cost model. The shared durability/fault/membership knobs live in
//     options' RunPlan base (apsp/run_plan.h) so one plan configures any
//     workload.
//   SolveReport — the result plus the identity of the solver that produced
//     it, wrapping today's ApspRunResult.
//
//   Solve(graph, request)   — full-fidelity run on real data.
//   SolveModel(n, request)  — paper-scale phantom run.
//
// Migration note: ApspOptions/ApspRunResult and the ApspSolver member
// functions remain as the compatibility layer underneath — existing callers
// compile unchanged — but they are deprecated in documentation; new code
// should construct a SolveRequest. (No [[deprecated]] attribute: the
// compatibility surface is still exercised by the repository's own tests
// under -Werror.)
#pragma once

#include <string>

#include "apsp/solver.h"
#include "graph/graph.h"
#include "linalg/cost_model.h"
#include "sparklet/config.h"

namespace apspark::apsp {

struct SolveRequest {
  SolverKind solver = SolverKind::kBlockedCollectBroadcast;
  /// Workload options. The RunPlan base carries the checkpoint cadence and
  /// the armed failure/membership schedule; assign a shared plan with
  /// `static_cast<RunPlan&>(request.options) = plan`.
  ApspOptions options;
  sparklet::ClusterConfig cluster = sparklet::ClusterConfig::TinyTest();
  linalg::CostModel cost_model;
};

struct SolveReport {
  /// Name of the solver that ran (e.g. "Blocked Collect/Broadcast").
  std::string solver_name;
  /// Whether the solver relies only on fault-tolerant Spark functionality.
  bool pure = false;
  /// The full run payload (status, distances, metrics, projections).
  ApspRunResult run;

  bool ok() const noexcept { return run.status.ok(); }
  const Status& status() const noexcept { return run.status; }
  const sparklet::SimMetrics& metrics() const noexcept { return run.metrics; }
  /// Distance matrix of a completed real-data run (empty for model runs).
  const std::optional<linalg::DenseBlock>& distances() const noexcept {
    return run.distances;
  }
};

/// Full-fidelity solve of `graph` per `request`.
SolveReport Solve(const graph::Graph& graph, const SolveRequest& request);

/// Paper-scale model run on phantom blocks (no numeric payload).
SolveReport SolveModel(std::int64_t n, const SolveRequest& request);

}  // namespace apspark::apsp
