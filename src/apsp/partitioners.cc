#include "apsp/partitioners.h"

#include <stdexcept>

namespace apspark::apsp {

const char* PartitionerKindName(PartitionerKind kind) noexcept {
  switch (kind) {
    case PartitionerKind::kMultiDiagonal:
      return "MD";
    case PartitionerKind::kPortableHash:
      return "PH";
  }
  return "?";
}

MultiDiagonalPartitioner::MultiDiagonalPartitioner(const BlockLayout& layout,
                                                   int num_partitions)
    : num_partitions_(num_partitions),
      q_(layout.q()),
      directed_(layout.directed()) {
  if (num_partitions <= 0) {
    throw std::invalid_argument("MultiDiagonalPartitioner: partitions <= 0");
  }
  // Running offset: diagonal d starts where diagonal d-1 left off, so the
  // global assignment is an exact round-robin over all stored keys.
  offset_.resize(static_cast<std::size_t>(q_) + 1, 0);
  for (std::int64_t d = 0; d < q_; ++d) {
    const std::int64_t len = directed_ ? q_ : (q_ - d);
    offset_[static_cast<std::size_t>(d) + 1] =
        (offset_[static_cast<std::size_t>(d)] + len) % num_partitions_;
  }
}

int MultiDiagonalPartitioner::PartitionOf(const BlockKey& key) const {
  // Diagonal index: J - I for upper-triangular storage. Directed layouts
  // wrap (J - I) mod q so every key still maps to a diagonal.
  std::int64_t d = key.J - key.I;
  if (d < 0) d += q_;
  std::int64_t along = key.I;  // position along the diagonal
  const std::int64_t base = offset_[static_cast<std::size_t>(d)];
  return static_cast<int>((base + along) % num_partitions_);
}

sparklet::PartitionerPtr<BlockKey> MakeBlockPartitioner(
    PartitionerKind kind, const BlockLayout& layout, int num_partitions) {
  switch (kind) {
    case PartitionerKind::kMultiDiagonal:
      return std::make_shared<MultiDiagonalPartitioner>(layout,
                                                        num_partitions);
    case PartitionerKind::kPortableHash:
      return sparklet::MakePortableHash<BlockKey>(num_partitions);
  }
  throw std::invalid_argument("unknown partitioner kind");
}

std::vector<std::int64_t> PartitionSizeHistogram(
    const BlockLayout& layout, const sparklet::Partitioner<BlockKey>& part) {
  std::vector<std::int64_t> histogram(
      static_cast<std::size_t>(part.num_partitions()), 0);
  for (const BlockKey& key : layout.StoredKeys()) {
    ++histogram[static_cast<std::size_t>(part.PartitionOf(key))];
  }
  return histogram;
}

}  // namespace apspark::apsp
