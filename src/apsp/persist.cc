#include "apsp/persist.h"

#include <utility>

#include "graph/path_reconstruction.h"

namespace apspark::apsp {

Status PersistSolve(const std::string& dir,
                    const linalg::DenseBlock& distances,
                    const graph::Graph* graph, bool directed,
                    linalg::SemiringId semiring,
                    const PersistOptions& options) {
  const std::int64_t n = distances.rows();
  if (n <= 0 || distances.cols() != n) {
    return InvalidArgumentError("PersistSolve needs a square n x n matrix");
  }
  if (distances.is_phantom()) {
    return FailedPreconditionError(
        "model runs carry no payload to persist; run on real data");
  }
  const bool with_paths = options.with_paths && graph != nullptr &&
                          semiring == linalg::SemiringId::kMinPlus;

  store::StoreManifest manifest;
  manifest.n = n;
  manifest.block_size = options.block_size;
  manifest.directed = directed;
  manifest.semiring = semiring;
  manifest.has_paths = with_paths;

  auto created = store::BlockStore::Create(dir, manifest,
                                           options.store_options);
  if (!created.ok()) return created.status();
  store::BlockStore& bs = **created;

  // Distance plane: the layout's canonical storage (upper triangle when
  // undirected, all q^2 blocks when directed).
  BlockLayout layout(n, options.block_size, directed);
  for (const auto& [key, block] : layout.Decompose(distances)) {
    auto status = bs.Put(store::Plane::kDistance, key.I, key.J, *block);
    if (!status.ok()) return status;
  }

  if (with_paths) {
    // Successors are not symmetric, so the next plane is always full q^2:
    // decompose through a directed layout regardless of graph orientation.
    linalg::DenseBlock next =
        graph::SuccessorsFromDistances(*graph, distances);
    BlockLayout next_layout(n, options.block_size, /*directed=*/true);
    for (const auto& [key, block] : next_layout.Decompose(next)) {
      auto status = bs.Put(store::Plane::kNext, key.I, key.J, *block);
      if (!status.ok()) return status;
    }
  }

  return bs.Seal();
}

}  // namespace apspark::apsp
