#include "apsp/solver.h"

#include <stdexcept>

#include "apsp/solvers/blocked_collect_broadcast.h"
#include "apsp/solvers/blocked_inmemory.h"
#include "apsp/solvers/floyd_warshall_2d.h"
#include "apsp/solvers/repeated_squaring.h"

namespace apspark::apsp {

ApspRunResult ApspSolver::SolveGraph(const graph::Graph& graph,
                                     const ApspOptions& opts,
                                     const sparklet::ClusterConfig& cluster,
                                     const linalg::CostModel& model) {
  const BlockLayout layout(graph.num_vertices(), opts.block_size,
                           opts.directed || graph.directed());
  const linalg::DenseBlock adjacency = graph.ToDenseAdjacency();
  sparklet::SparkletContext ctx(cluster, model);
  return Solve(ctx, layout, layout.Decompose(adjacency), opts);
}

ApspRunResult ApspSolver::SolveModel(std::int64_t n, const ApspOptions& opts,
                                     const sparklet::ClusterConfig& cluster,
                                     const linalg::CostModel& model) {
  const BlockLayout layout(n, opts.block_size, opts.directed);
  sparklet::SparkletContext ctx(cluster, model);
  return Solve(ctx, layout, layout.DecomposePhantom(), opts);
}

ApspRunResult ApspSolver::Solve(sparklet::SparkletContext& ctx,
                                const BlockLayout& layout,
                                const std::vector<BlockRecord>& blocks,
                                const ApspOptions& opts) {
  // Select the host kernel implementation for this run (restored on return
  // so one run's config cannot leak into other work in the process). This
  // only affects how fast real blocks are processed on this machine;
  // modelled cluster time comes from the cost model either way.
  linalg::ScopedKernelVariant kernel_scope(ctx.config().kernel_variant);
  ApspRunResult result;
  result.rounds_total = TotalRounds(layout);
  const std::int64_t rounds_remaining =
      std::max<std::int64_t>(0, result.rounds_total - opts.start_round);
  const std::int64_t rounds_to_run =
      opts.max_rounds > 0 ? std::min(opts.max_rounds, rounds_remaining)
                          : rounds_remaining;

  const int num_partitions =
      std::max(1, opts.partitions_per_core * ctx.config().total_cores());
  auto partitioner =
      MakeBlockPartitioner(opts.partitioner, layout, num_partitions);

  auto a = ctx.ParallelizePartitioned("A", blocks, partitioner);
  // The paper disregards the cost of populating the RDD (§5.1).
  ctx.cluster().Reset();

  sparklet::RddPtr<BlockRecord> final_rdd;
  try {
    final_rdd = RunRounds(ctx, layout, a, partitioner, opts, rounds_to_run);
    result.rounds_executed = rounds_to_run;
    result.status = Status::Ok();
  } catch (const sparklet::SparkletAbort& abort) {
    result.status = abort.status();
  }

  result.sim_seconds = ctx.now_seconds();
  result.metrics = ctx.metrics();
  result.spill_peak_bytes = ctx.cluster().MaxLocalStorageUsed();
  if (result.rounds_executed > 0) {
    const double scale = static_cast<double>(result.rounds_total) /
                         static_cast<double>(result.rounds_executed);
    result.projected_seconds = result.sim_seconds * scale;
    result.projected_spill_bytes =
        static_cast<double>(result.spill_peak_bytes) * scale;
    result.projected_storage_exceeded =
        result.projected_spill_bytes >
        static_cast<double>(ctx.config().local_storage_bytes);
  }

  // Assemble the distance matrix for completed real-data runs (the collect
  // is excluded from the reported solve time, like the paper's timings).
  const bool full_run =
      result.status.ok() &&
      opts.start_round + result.rounds_executed == result.rounds_total &&
      final_rdd != nullptr;
  if (full_run) {
    const bool phantom =
        !blocks.empty() && blocks.front().second->is_phantom();
    if (!phantom) {
      try {
        auto records = final_rdd->Collect();
        auto matrix = layout.Assemble(records);
        if (matrix.ok()) {
          result.distances = std::move(matrix).value();
        } else {
          result.status = matrix.status();
        }
      } catch (const sparklet::SparkletAbort& abort) {
        result.status = abort.status();
      }
    }
  }
  return result;
}

std::unique_ptr<ApspSolver> MakeSolver(SolverKind kind) {
  switch (kind) {
    case SolverKind::kRepeatedSquaring:
      return std::make_unique<RepeatedSquaringSolver>();
    case SolverKind::kFloydWarshall2d:
      return std::make_unique<FloydWarshall2dSolver>();
    case SolverKind::kBlockedInMemory:
      return std::make_unique<BlockedInMemorySolver>();
    case SolverKind::kBlockedCollectBroadcast:
      return std::make_unique<BlockedCollectBroadcastSolver>();
  }
  throw std::invalid_argument("unknown solver kind");
}

const char* SolverKindName(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::kRepeatedSquaring:
      return "Repeated Squaring";
    case SolverKind::kFloydWarshall2d:
      return "2D Floyd-Warshall";
    case SolverKind::kBlockedInMemory:
      return "Blocked-IM";
    case SolverKind::kBlockedCollectBroadcast:
      return "Blocked-CB";
  }
  return "?";
}

std::vector<SolverKind> AllSolverKinds() {
  return {SolverKind::kRepeatedSquaring, SolverKind::kFloydWarshall2d,
          SolverKind::kBlockedInMemory, SolverKind::kBlockedCollectBroadcast};
}

}  // namespace apspark::apsp
