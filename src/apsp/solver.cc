#include "apsp/solver.h"

#include <stdexcept>

#include "apsp/checkpoint.h"
#include "apsp/solvers/blocked_collect_broadcast.h"
#include "apsp/solvers/blocked_inmemory.h"
#include "apsp/solvers/floyd_warshall_2d.h"
#include "apsp/solvers/repeated_squaring.h"
#include "linalg/semiring.h"

namespace apspark::apsp {

ApspRunResult ApspSolver::SolveGraph(const graph::Graph& graph,
                                     const ApspOptions& opts,
                                     const sparklet::ClusterConfig& cluster,
                                     const linalg::CostModel& model) {
  const BlockLayout layout(graph.num_vertices(), opts.block_size,
                           opts.directed || graph.directed());
  // Ingest into the requested algebra: the graph's canonical min-plus
  // adjacency becomes the semiring's matrix (bit-packed for boolean).
  const linalg::DenseBlock adjacency = linalg::SemiringAdjacency(
      graph.ToDenseAdjacency(), opts.semiring,
      opts.semiring == linalg::SemiringId::kBoolean && opts.bitpack_boolean);
  sparklet::SparkletContext ctx(cluster, model);
  return Solve(ctx, layout, layout.Decompose(adjacency), opts);
}

ApspRunResult ApspSolver::SolveModel(std::int64_t n, const ApspOptions& opts,
                                     const sparklet::ClusterConfig& cluster,
                                     const linalg::CostModel& model) {
  const BlockLayout layout(n, opts.block_size, opts.directed);
  sparklet::SparkletContext ctx(cluster, model);
  const bool packed =
      opts.semiring == linalg::SemiringId::kBoolean && opts.bitpack_boolean;
  return Solve(ctx, layout, layout.DecomposePhantom(packed), opts);
}

ApspRunResult ApspSolver::Solve(sparklet::SparkletContext& ctx,
                                const BlockLayout& layout,
                                const std::vector<BlockRecord>& blocks,
                                const ApspOptions& opts) {
  // Select the host kernel implementation for this run (restored on return
  // so one run's config cannot leak into other work in the process). This
  // only affects how fast real blocks are processed on this machine;
  // modelled cluster time comes from the cost model either way.
  linalg::ScopedKernelVariant kernel_scope(ctx.config().kernel_variant);
  // Pin the run's algebra: every kernel entry point this solve reaches —
  // fused updates, closures, element-wise folds — evaluates opts.semiring.
  linalg::ScopedSemiring semiring_scope(opts.semiring);
  ApspRunResult result;
  result.rounds_total = TotalRounds(layout);
  const std::int64_t rounds_remaining =
      std::max<std::int64_t>(0, result.rounds_total - opts.start_round);
  const std::int64_t rounds_to_run =
      opts.max_rounds > 0 ? std::min(opts.max_rounds, rounds_remaining)
                          : rounds_remaining;
  const std::int64_t end_round = opts.start_round + rounds_to_run;

  const int num_partitions =
      std::max(1, opts.partitions_per_core * ctx.config().total_cores());
  auto partitioner =
      MakeBlockPartitioner(opts.partitioner, layout, num_partitions);

  auto a = ctx.ParallelizePartitioned("A", blocks, partitioner);
  // The paper disregards the cost of populating the RDD (§5.1).
  ctx.cluster().Reset();
  // Arm injected executor losses; stage ordinals count from this Reset.
  for (const auto& plan : opts.fail_nodes) {
    ctx.fault_injector().FailNode(plan.node, plan.at_stage);
  }
  for (const auto& plan : opts.fail_racks) {
    ctx.fault_injector().FailRack(plan.rack, plan.at_stage);
  }
  for (const std::int64_t at_stage : opts.add_nodes) {
    ctx.fault_injector().AddNode(at_stage);
  }
  // The job start is durable (the input RDD recomputes from stable data):
  // a restart without a checkpoint redoes everything from here, and the
  // recovery accounting measures exactly that.
  ctx.cluster().NoteDurableMark();

  // Whether the run ends with a driver-side assembly collect (completed
  // real-data runs only). The collect runs inside the attempt loop so an
  // executor loss firing during assembly goes through the same recovery.
  const bool phantom = !blocks.empty() && blocks.front().second->is_phantom();
  const bool want_assembly = !phantom && end_round == result.rounds_total;

  sparklet::RddPtr<BlockRecord> final_rdd;
  std::vector<BlockRecord> assembled;
  std::int64_t start = opts.start_round;
  int restarts = 0;
  for (;;) {
    try {
      ApspOptions attempt_opts = opts;
      attempt_opts.start_round = start;
      final_rdd = RunRounds(ctx, layout, a, partitioner, attempt_opts,
                            end_round - start);
      result.rounds_executed = rounds_to_run;
      // The assembly collect is excluded from the reported solve time and
      // metrics, like the paper's timings (both captured before the collect
      // below runs; the collect still goes through this try block so an
      // executor loss firing during assembly recovers like any other).
      // Failure/recovery evidence accrued *during* assembly is folded back
      // in — a loss that fires there must still show in the report.
      result.sim_seconds = ctx.now_seconds();
      result.metrics = ctx.metrics();
      if (want_assembly) {
        assembled = final_rdd->Collect();
        FoldRecoveryMetrics(ctx.metrics(), result.metrics);
      }
      result.status = Status::Ok();
      break;
    } catch (const sparklet::SparkletAbort& abort) {
      // DATA_LOSS marks the one recoverable abort: an executor loss
      // destroyed state whose lineage contains out-of-lineage side effects
      // (the impure solvers). Pure solvers never raise it — they recover in
      // place through lineage recomputation and never reach this handler.
      if (abort.status().code() != StatusCode::kDataLoss ||
          restarts >= opts.max_restarts) {
        result.status = abort.status();
        break;
      }
      ++restarts;
      final_rdd.reset();
      const std::string restart_tag = "#restart" + std::to_string(restarts);
      auto resume = RestartFromCheckpoint(
          ctx, layout, /*fallback_round=*/opts.start_round,
          [&](const CheckpointInfo* info) {
            a = ctx.ParallelizePartitioned(
                "A" + restart_tag, info != nullptr ? info->blocks : blocks,
                partitioner);
          });
      if (!resume.ok()) {
        result.status = resume.status();
        break;
      }
      start = *resume;
    }
  }

  if (!result.status.ok()) {
    result.sim_seconds = ctx.now_seconds();
    result.metrics = ctx.metrics();
  }
  result.spill_peak_bytes = ctx.cluster().MaxLocalStorageUsed();
  if (result.rounds_executed > 0) {
    const double scale = static_cast<double>(result.rounds_total) /
                         static_cast<double>(result.rounds_executed);
    result.projected_seconds = result.sim_seconds * scale;
    result.projected_spill_bytes =
        static_cast<double>(result.spill_peak_bytes) * scale;
    result.projected_storage_exceeded =
        result.projected_spill_bytes >
        static_cast<double>(ctx.config().local_storage_bytes);
  }

  if (result.status.ok() && want_assembly) {
    auto matrix = layout.Assemble(assembled);
    if (matrix.ok()) {
      result.distances = std::move(matrix).value();
    } else {
      result.status = matrix.status();
    }
  }
  return result;
}

std::unique_ptr<ApspSolver> MakeSolver(SolverKind kind) {
  switch (kind) {
    case SolverKind::kRepeatedSquaring:
      return std::make_unique<RepeatedSquaringSolver>();
    case SolverKind::kFloydWarshall2d:
      return std::make_unique<FloydWarshall2dSolver>();
    case SolverKind::kBlockedInMemory:
      return std::make_unique<BlockedInMemorySolver>();
    case SolverKind::kBlockedCollectBroadcast:
      return std::make_unique<BlockedCollectBroadcastSolver>();
  }
  throw std::invalid_argument("unknown solver kind");
}

const char* SolverKindName(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::kRepeatedSquaring:
      return "Repeated Squaring";
    case SolverKind::kFloydWarshall2d:
      return "2D Floyd-Warshall";
    case SolverKind::kBlockedInMemory:
      return "Blocked-IM";
    case SolverKind::kBlockedCollectBroadcast:
      return "Blocked-CB";
  }
  return "?";
}

std::vector<SolverKind> AllSolverKinds() {
  return {SolverKind::kRepeatedSquaring, SolverKind::kFloydWarshall2d,
          SolverKind::kBlockedInMemory, SolverKind::kBlockedCollectBroadcast};
}

}  // namespace apspark::apsp
