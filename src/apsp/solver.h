// APSP solver interface: the public entry point of this library.
//
// Four solvers implement the paper's algorithms (§4):
//   RepeatedSquaringSolver      — Alg. 1 (impure: shared-FS column staging)
//   FloydWarshall2dSolver       — Alg. 2 (pure)
//   BlockedInMemorySolver       — Alg. 3 (pure)
//   BlockedCollectBroadcastSolver — Alg. 4 (impure)
//
// Two run modes:
//   SolveGraph — full run on real data; returns the distance matrix,
//     validated in tests against Dijkstra/Johnson.
//   SolveModel — paper-scale run on phantom blocks; executes the complete
//     engine control path (partitioning, shuffles, storage accounting) and
//     reports modelled time. With options.max_rounds > 0 only the first
//     rounds run and the total is projected, exactly the methodology of the
//     paper's Table 2 ("Single" vs "Projected").
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apsp/block_key.h"
#include "apsp/block_layout.h"
#include "apsp/partitioners.h"
#include "apsp/run_plan.h"
#include "graph/graph.h"
#include "linalg/cost_model.h"
#include "linalg/kernel_registry.h"
#include "obs/trace.h"
#include "sparklet/rdd.h"

namespace apspark::apsp {

/// RAII sim-clock span around one solver round: records a "round" span on
/// the virtual driver lane covering every stage and transfer the round's
/// body charges to the cluster. A no-op (two relaxed loads) without an
/// active trace capture; purely observational either way.
class RoundSpanScope {
 public:
  RoundSpanScope(sparklet::VirtualCluster& cluster, std::int64_t round)
      : cluster_(cluster),
        round_(round),
        start_(cluster.now_seconds()),
        active_(obs::TraceEnabled()) {}
  ~RoundSpanScope() {
    if (active_ && obs::TraceEnabled()) {
      obs::Tracer::Get().VirtualSpan("round", obs::kDriverLane, start_,
                                     cluster_.now_seconds(),
                                     "\"round\":" + std::to_string(round_));
    }
  }
  RoundSpanScope(const RoundSpanScope&) = delete;
  RoundSpanScope& operator=(const RoundSpanScope&) = delete;

 private:
  sparklet::VirtualCluster& cluster_;
  std::int64_t round_;
  double start_;
  bool active_;
};

/// The durability/fault/membership knobs live in the RunPlan base (shared
/// with KsourceOptions — see apsp/run_plan.h); the fields here are the
/// APSP-specific decomposition and execution parameters. New callers should
/// prefer the SolveRequest/SolveReport surface in apsp/api.h; this struct
/// remains as the compatibility layer it wraps.
struct ApspOptions : RunPlan {
  /// Decomposition parameter b; q = ceil(n/b).
  std::int64_t block_size = 256;
  /// Semiring the solve evaluates (see linalg/semiring.h). SolveGraph
  /// converts the canonical min-plus adjacency into this algebra's matrix
  /// (boolean reachability, max-min capacities, max-times reliabilities via
  /// 2^-w); the result matrix is in the semiring's value domain.
  linalg::SemiringId semiring = linalg::SemiringId::kMinPlus;
  /// Boolean solves use the bit-packed block plane (64 vertices per word)
  /// unless disabled. Ignored for the other semirings.
  bool bitpack_boolean = true;
  PartitionerKind partitioner = PartitionerKind::kMultiDiagonal;
  /// Spark's over-decomposition factor B: RDD partitions per core (§5.3).
  int partitions_per_core = 2;
  /// 0 = run to completion. Otherwise simulate this many rounds and project
  /// (a "round" is one column sweep for Repeated Squaring, one k step for 2D
  /// Floyd-Warshall, one diagonal iteration for the blocked methods).
  std::int64_t max_rounds = 0;
  bool directed = false;
  /// Resume support: skip rounds [0, start_round) — the caller provides the
  /// matching checkpointed blocks via Solve().
  std::int64_t start_round = 0;
};

struct ApspRunResult {
  Status status;  // OK, or why the run stopped (e.g. storage exhausted)

  /// Full distance matrix (only for completed real-data runs).
  std::optional<linalg::DenseBlock> distances;

  sparklet::SimMetrics metrics;
  double sim_seconds = 0;  // modelled time of the executed rounds
  std::int64_t rounds_executed = 0;
  std::int64_t rounds_total = 0;
  /// sim_seconds scaled to all rounds (equals sim_seconds for full runs).
  double projected_seconds = 0;

  std::uint64_t spill_peak_bytes = 0;  // per-node local-storage high water
  double projected_spill_bytes = 0;    // extrapolated over all rounds
  /// True when the extrapolated spill exceeds per-node capacity: the solver
  /// would die before finishing (paper Table 3: Blocked-IM at p = 1024).
  bool projected_storage_exceeded = false;

  double SecondsPerRound() const noexcept {
    return rounds_executed > 0
               ? sim_seconds / static_cast<double>(rounds_executed)
               : 0.0;
  }
};

class ApspSolver {
 public:
  virtual ~ApspSolver() = default;

  virtual std::string name() const = 0;
  /// Pure solvers rely only on fault-tolerant Spark functionality; impure
  /// ones stage data in shared persistent storage (§3).
  virtual bool pure() const noexcept = 0;
  /// Rounds a full run takes for this layout.
  virtual std::int64_t TotalRounds(const BlockLayout& layout) const = 0;

  /// Full-fidelity run on real data.
  ApspRunResult SolveGraph(const graph::Graph& graph, const ApspOptions& opts,
                           const sparklet::ClusterConfig& cluster,
                           const linalg::CostModel& model = {});

  /// Paper-scale model run on phantom blocks (no numeric payload).
  ApspRunResult SolveModel(std::int64_t n, const ApspOptions& opts,
                           const sparklet::ClusterConfig& cluster,
                           const linalg::CostModel& model = {});

  /// Core loop on a caller-owned context (exposed for engine-level tests,
  /// e.g. fault injection through ctx.fault_injector()).
  ApspRunResult Solve(sparklet::SparkletContext& ctx,
                      const BlockLayout& layout,
                      const std::vector<BlockRecord>& blocks,
                      const ApspOptions& opts);

 protected:
  /// Runs `rounds_to_run` rounds of the algorithm starting from RDD `a`
  /// and returns the final block RDD. Throws SparkletAbort on modelled
  /// failures.
  virtual sparklet::RddPtr<BlockRecord> RunRounds(
      sparklet::SparkletContext& ctx, const BlockLayout& layout,
      sparklet::RddPtr<BlockRecord> a,
      sparklet::PartitionerPtr<BlockKey> partitioner, const ApspOptions& opts,
      std::int64_t rounds_to_run) = 0;
};

/// Factory over all four solvers (handy for sweeps and tests).
enum class SolverKind {
  kRepeatedSquaring,
  kFloydWarshall2d,
  kBlockedInMemory,
  kBlockedCollectBroadcast,
};

std::unique_ptr<ApspSolver> MakeSolver(SolverKind kind);
const char* SolverKindName(SolverKind kind) noexcept;
std::vector<SolverKind> AllSolverKinds();

}  // namespace apspark::apsp
