// Bridge from a completed solve to the disk-backed serving layer: takes the
// collected distance matrix of a real-data run, decomposes it through the
// same BlockLayout geometry the solvers use, optionally derives a successor
// plane for path reconstruction, and writes everything into a sealed
// store::BlockStore that store::DistanceService can answer queries from.
#pragma once

#include <memory>
#include <string>

#include "apsp/block_layout.h"
#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense_block.h"
#include "linalg/kernel_registry.h"
#include "store/block_store.h"

namespace apspark::apsp {

struct PersistOptions {
  /// Decomposition parameter b of the persisted layout (need not match the
  /// solve's block size; the store re-blocks the collected matrix).
  std::int64_t block_size = 256;
  /// Derive and persist the successor plane. Requires the graph and only
  /// makes sense for min-plus solves; PersistSolve clears it otherwise.
  bool with_paths = true;
  store::BlockStore::Options store_options;
};

/// Decomposes `distances` (an n x n solved matrix) into `dir` as a sealed
/// block store. Undirected layouts persist the canonical upper triangle of
/// the distance plane; the successor plane — derived from `graph` via
/// graph::SuccessorsFromDistances — is always stored full q^2, because
/// successors are not symmetric. Pass graph = nullptr to skip paths (model
/// runs, or non-min-plus semirings where first-hop has no meaning).
Status PersistSolve(const std::string& dir,
                    const linalg::DenseBlock& distances,
                    const graph::Graph* graph, bool directed,
                    linalg::SemiringId semiring,
                    const PersistOptions& options = {});

}  // namespace apspark::apsp
