#include "apsp/checkpoint.h"

#include "common/serial.h"

namespace apspark::apsp {

namespace {
constexpr const char* kManifestKey = "ckpt/manifest";

std::string BlockKeyName(const BlockKey& key) {
  return "ckpt/block/" + std::to_string(key.I) + "_" + std::to_string(key.J);
}

std::string PanelKeyName(std::int64_t index) {
  return "ckpt/panel/" + std::to_string(index);
}
}  // namespace

void SaveCheckpoint(sparklet::SparkletContext& ctx, const BlockLayout& layout,
                    const std::vector<BlockRecord>& records,
                    std::int64_t completed_rounds,
                    const std::vector<PanelRecord>& panels) {
  ctx.shared_storage().ErasePrefix("ckpt/");
  for (const auto& [key, block] : records) {
    BinaryWriter writer;
    block->Serialize(writer);
    ctx.DriverWriteShared(BlockKeyName(key), std::move(writer).TakeBuffer(),
                          block->SerializedBytes());
  }
  for (const auto& [index, panel] : panels) {
    BinaryWriter writer;
    panel->Serialize(writer);
    ctx.DriverWriteShared(PanelKeyName(index), std::move(writer).TakeBuffer(),
                          panel->SerializedBytes());
  }
  BinaryWriter manifest;
  manifest.Write(completed_rounds);
  manifest.Write(layout.n());
  manifest.Write(layout.block_size());
  manifest.Write(static_cast<std::uint8_t>(layout.directed() ? 1 : 0));
  manifest.Write(static_cast<std::int64_t>(records.size()));
  manifest.Write(static_cast<std::int64_t>(panels.size()));
  // Capture the size before the buffer moves out: argument evaluation
  // order is unspecified, and a left-to-right compiler would otherwise
  // charge a 0-byte write.
  const std::uint64_t manifest_bytes = manifest.size();
  ctx.DriverWriteShared(kManifestKey, std::move(manifest).TakeBuffer(),
                        manifest_bytes);
  // Progress up to this checkpoint is durable: a later restart only redoes
  // (and attributes to recovery) what came after this point.
  ctx.cluster().NoteDurableMark();
}

bool HasCheckpoint(sparklet::SparkletContext& ctx) {
  return ctx.shared_storage().Contains(kManifestKey);
}

Result<CheckpointInfo> LoadCheckpoint(sparklet::SparkletContext& ctx,
                                      const BlockLayout& layout) {
  auto manifest_obj = ctx.shared_storage().Get(kManifestKey);
  if (!manifest_obj.ok()) return NotFoundError("no checkpoint manifest");
  BinaryReader manifest(*manifest_obj->payload);
  auto rounds = manifest.Read<std::int64_t>();
  auto n = manifest.Read<std::int64_t>();
  auto b = manifest.Read<std::int64_t>();
  auto directed = manifest.Read<std::uint8_t>();
  auto count = manifest.Read<std::int64_t>();
  auto panel_count = manifest.Read<std::int64_t>();
  if (!rounds.ok() || !n.ok() || !b.ok() || !directed.ok() || !count.ok() ||
      !panel_count.ok()) {
    return InvalidArgumentError("corrupt checkpoint manifest");
  }
  if (*n != layout.n() || *b != layout.block_size() ||
      (*directed != 0) != layout.directed()) {
    return FailedPreconditionError(
        "checkpoint does not match the requested layout");
  }
  CheckpointInfo info;
  info.next_round = *rounds;
  // Checkpoints are the durability path: blocks really serialize on save, so
  // the load below re-materializes payloads from bytes. That duplication is
  // deliberate (restart-from-disk semantics) — sanction it for the zero-copy
  // accounting.
  linalg::CowScope durable_rematerialization;
  for (const BlockKey& key : layout.StoredKeys()) {
    auto obj = ctx.shared_storage().Get(BlockKeyName(key));
    if (!obj.ok()) {
      return FailedPreconditionError("checkpoint missing block " +
                                     key.ToString());
    }
    BinaryReader reader(*obj->payload);
    auto block = linalg::DenseBlock::Deserialize(reader);
    if (!block.ok()) return block.status();
    info.blocks.emplace_back(key, linalg::MakeBlock(std::move(block).value()));
  }
  if (static_cast<std::int64_t>(info.blocks.size()) != *count) {
    return FailedPreconditionError("checkpoint block count mismatch");
  }
  for (std::int64_t i = 0; i < *panel_count; ++i) {
    auto obj = ctx.shared_storage().Get(PanelKeyName(i));
    if (!obj.ok()) {
      return FailedPreconditionError("checkpoint missing panel " +
                                     std::to_string(i));
    }
    BinaryReader reader(*obj->payload);
    auto panel = linalg::DenseBlock::Deserialize(reader);
    if (!panel.ok()) return panel.status();
    info.panels.emplace_back(i, linalg::MakeBlock(std::move(panel).value()));
  }
  // The restart really reads the checkpoint back from the shared FS; charge
  // the driver-side transfer so resuming is not modelled as free.
  std::uint64_t read_bytes = 0;
  for (const auto& [key, block] : info.blocks) {
    read_bytes += block->SerializedBytes();
  }
  for (const auto& [index, panel] : info.panels) {
    read_bytes += panel->SerializedBytes();
  }
  ctx.cluster().ChargeSharedFsRead(
      read_bytes,
      static_cast<std::int64_t>(info.blocks.size() + info.panels.size()));
  return info;
}

Result<std::int64_t> RestartFromCheckpoint(
    sparklet::SparkletContext& ctx, const BlockLayout& layout,
    std::int64_t fallback_round,
    const std::function<void(const CheckpointInfo*)>& rebuild) {
  // Progress since the last durable point is destroyed; account it, then
  // resume from the latest checkpoint epoch (or, with none, from the
  // stable inputs — a restart from scratch). The reload itself (checkpoint
  // read, re-population) is recovery work too.
  ctx.cluster().ChargeRestartRecovery();
  const double reload_clock = ctx.now_seconds();
  const std::uint64_t reload_tasks = ctx.metrics().tasks;
  std::int64_t next_round = fallback_round;
  if (HasCheckpoint(ctx)) {
    auto info = LoadCheckpoint(ctx, layout);
    if (!info.ok()) return info.status();
    next_round = info->next_round;
    rebuild(&*info);
  } else {
    rebuild(nullptr);
  }
  auto& metrics = ctx.cluster().mutable_metrics();
  metrics.recovery_seconds += ctx.now_seconds() - reload_clock;
  metrics.recomputed_tasks += ctx.metrics().tasks - reload_tasks;
  ctx.cluster().NoteDurableMark();
  return next_round;
}

void FoldRecoveryMetrics(const sparklet::SimMetrics& live,
                         sparklet::SimMetrics& reported) {
  reported.recovery_seconds = live.recovery_seconds;
  reported.recomputed_tasks = live.recomputed_tasks;
  reported.executor_failures = live.executor_failures;
  reported.job_restarts = live.job_restarts;
  reported.task_failures = live.task_failures;
  reported.task_retries = live.task_retries;
  reported.speculative_tasks = live.speculative_tasks;
  reported.rebalance_seconds = live.rebalance_seconds;
  reported.migrated_partitions = live.migrated_partitions;
  reported.migration_bytes = live.migration_bytes;
  reported.node_joins = live.node_joins;
}

}  // namespace apspark::apsp
