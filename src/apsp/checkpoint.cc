#include "apsp/checkpoint.h"

#include "common/serial.h"

namespace apspark::apsp {

namespace {
constexpr const char* kManifestKey = "ckpt/manifest";

std::string BlockKeyName(const BlockKey& key) {
  return "ckpt/block/" + std::to_string(key.I) + "_" + std::to_string(key.J);
}
}  // namespace

void SaveCheckpoint(sparklet::SparkletContext& ctx, const BlockLayout& layout,
                    const std::vector<BlockRecord>& records,
                    std::int64_t completed_rounds) {
  ctx.shared_storage().ErasePrefix("ckpt/");
  for (const auto& [key, block] : records) {
    BinaryWriter writer;
    block->Serialize(writer);
    ctx.DriverWriteShared(BlockKeyName(key), std::move(writer).TakeBuffer(),
                          block->SerializedBytes());
  }
  BinaryWriter manifest;
  manifest.Write(completed_rounds);
  manifest.Write(layout.n());
  manifest.Write(layout.block_size());
  manifest.Write(static_cast<std::uint8_t>(layout.directed() ? 1 : 0));
  manifest.Write(static_cast<std::int64_t>(records.size()));
  ctx.DriverWriteShared(kManifestKey, std::move(manifest).TakeBuffer(),
                        manifest.size());
}

bool HasCheckpoint(sparklet::SparkletContext& ctx) {
  return ctx.shared_storage().Contains(kManifestKey);
}

Result<CheckpointInfo> LoadCheckpoint(sparklet::SparkletContext& ctx,
                                      const BlockLayout& layout) {
  auto manifest_obj = ctx.shared_storage().Get(kManifestKey);
  if (!manifest_obj.ok()) return NotFoundError("no checkpoint manifest");
  BinaryReader manifest(*manifest_obj->payload);
  auto rounds = manifest.Read<std::int64_t>();
  auto n = manifest.Read<std::int64_t>();
  auto b = manifest.Read<std::int64_t>();
  auto directed = manifest.Read<std::uint8_t>();
  auto count = manifest.Read<std::int64_t>();
  if (!rounds.ok() || !n.ok() || !b.ok() || !directed.ok() || !count.ok()) {
    return InvalidArgumentError("corrupt checkpoint manifest");
  }
  if (*n != layout.n() || *b != layout.block_size() ||
      (*directed != 0) != layout.directed()) {
    return FailedPreconditionError(
        "checkpoint does not match the requested layout");
  }
  CheckpointInfo info;
  info.next_round = *rounds;
  // Checkpoints are the durability path: blocks really serialize on save, so
  // the load below re-materializes payloads from bytes. That duplication is
  // deliberate (restart-from-disk semantics) — sanction it for the zero-copy
  // accounting.
  linalg::CowScope durable_rematerialization;
  for (const BlockKey& key : layout.StoredKeys()) {
    auto obj = ctx.shared_storage().Get(BlockKeyName(key));
    if (!obj.ok()) {
      return FailedPreconditionError("checkpoint missing block " +
                                     key.ToString());
    }
    BinaryReader reader(*obj->payload);
    auto block = linalg::DenseBlock::Deserialize(reader);
    if (!block.ok()) return block.status();
    info.blocks.emplace_back(key, linalg::MakeBlock(std::move(block).value()));
  }
  if (static_cast<std::int64_t>(info.blocks.size()) != *count) {
    return FailedPreconditionError("checkpoint block count mismatch");
  }
  return info;
}

}  // namespace apspark::apsp
