// RunPlan: the durability / fault / membership knobs shared by every solve.
//
// Historically ApspOptions and KsourceOptions each carried their own copy of
// the checkpoint cadence, the armed failure plans, the elastic-join schedule
// and the restart budget. The public-API redesign hoists them into this one
// reusable struct: both option types now derive from RunPlan, so a caller
// can configure one plan and assign it into any workload's options
// (`static_cast<RunPlan&>(opts) = plan`), and the CLI's membership
// validation operates on the plan alone. Field access through the derived
// structs (`opts.checkpoint_every`, `opts.fail_nodes`, ...) is unchanged —
// existing code compiles as before.
#pragma once

#include <cstdint>
#include <vector>

#include "sparklet/fault.h"

namespace apspark::apsp {

struct RunPlan {
  /// Durability extension: checkpoint solver state to shared storage every
  /// this many rounds/pivots (0 = off); see apsp/checkpoint.h. Honored by
  /// the impure solvers; pure ones recover through lineage and ignore it.
  std::int64_t checkpoint_every = 0;
  /// Fault injection: executor losses to arm before the run (fired by the
  /// engine at stage boundaries; see sparklet::FaultInjector::FailNode).
  std::vector<sparklet::NodeFailurePlan> fail_nodes;
  /// Correlated failures: whole racks lost at a stage boundary (expanded to
  /// per-node losses by the engine; see sparklet::FaultInjector::FailRack).
  std::vector<sparklet::RackFailurePlan> fail_racks;
  /// Elastic membership: replacement nodes joining at these stage
  /// boundaries (see sparklet::FaultInjector::AddNode).
  std::vector<std::int64_t> add_nodes;
  /// How many checkpoint restarts an impure solver may attempt after
  /// executor losses before giving up and surfacing DATA_LOSS.
  int max_restarts = 3;
};

}  // namespace apspark::apsp
