// Block coordinates and record types for the 2-D decomposed adjacency matrix.
//
// The paper stores matrix A as key-value tuples ((I, J), A_IJ) in an RDD
// (§4). Only the upper triangle is kept for undirected graphs; an executor
// holding A_IJ serves A_JI by transposition.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "linalg/block_ref.h"
#include "linalg/dense_block.h"
#include "sparklet/partitioner.h"
#include "sparklet/serde.h"

namespace apspark::apsp {

struct BlockKey {
  std::int64_t I = 0;
  std::int64_t J = 0;

  friend bool operator==(const BlockKey&, const BlockKey&) = default;
  friend auto operator<=>(const BlockKey&, const BlockKey&) = default;

  /// pySpark would hash the Python tuple (I, J); this replicates it so the
  /// PH partitioner exhibits the same collision pattern the paper analyses.
  std::int64_t PortableHash() const noexcept {
    return sparklet::PortableHashTuple2(I, J);
  }

  std::string ToString() const {
    return "(" + std::to_string(I) + "," + std::to_string(J) + ")";
  }
};

/// Plain matrix-block record: ((I,J), A_IJ). The payload is an immutable
/// ref (see linalg/block_ref.h): records copied through shuffle buckets,
/// partition caches, and driver collects share one block allocation.
using BlockRecord = std::pair<BlockKey, linalg::BlockRef>;

/// Frontier panel record of a batched k-source solve: (row-block index I,
/// b_I x k panel of the resident n x k frontier).
using PanelRecord = std::pair<std::int64_t, linalg::BlockRef>;

/// Role of a block travelling through the Blocked In-Memory combine steps.
enum class BlockRole : std::uint8_t {
  kOriginal = 0,  // the resident A_IJ
  kDiag = 1,      // a CopyDiag replica of the closed diagonal block
  kRow = 2,       // a CopyCol replica providing the row-side factor A_Ui
  kCol = 3,       // a CopyCol replica providing the column-side factor A_iV
};

struct TaggedBlock {
  BlockRole role = BlockRole::kOriginal;
  linalg::BlockRef block;
};

using TaggedRecord = std::pair<BlockKey, TaggedBlock>;
using TaggedList = std::vector<TaggedBlock>;
using ListRecord = std::pair<BlockKey, TaggedList>;

/// Tagged frontier-panel records of the pure shuffle-replicated KSSP
/// variant: pivot factors and panel replicas keyed by target row-block
/// index, gathered per panel with the same ListAppend combine the Blocked
/// In-Memory solver uses for matrix blocks.
using TaggedPanelRecord = std::pair<std::int64_t, TaggedBlock>;
using PanelListRecord = std::pair<std::int64_t, TaggedList>;

}  // namespace apspark::apsp

namespace std {
template <>
struct hash<apspark::apsp::BlockKey> {
  std::size_t operator()(const apspark::apsp::BlockKey& k) const noexcept {
    // Engine-internal hash (shuffle tables); quality matters here, unlike
    // the deliberately faithful PortableHash above.
    std::uint64_t x = static_cast<std::uint64_t>(k.I) * 0x9e3779b97f4a7c15ULL;
    x ^= static_cast<std::uint64_t>(k.J) + 0x9e3779b97f4a7c15ULL +
         (x << 6) + (x >> 2);
    return static_cast<std::size_t>(x);
  }
};
}  // namespace std

namespace apspark::sparklet {

template <>
struct Serde<apspark::linalg::BlockPtr> {
  static std::uint64_t SizeOf(const apspark::linalg::BlockPtr& b) noexcept {
    return b ? b->SerializedBytes() : 0;
  }
};

template <>
struct Serde<apspark::linalg::BlockRef> {
  static std::uint64_t SizeOf(const apspark::linalg::BlockRef& b) noexcept {
    return b.serialized_bytes();  // cached at wrap time, never re-derived
  }
};

template <>
struct Serde<apspark::apsp::BlockKey> {
  static std::uint64_t SizeOf(const apspark::apsp::BlockKey&) noexcept {
    return 16;
  }
};

template <>
struct Serde<apspark::apsp::TaggedBlock> {
  static std::uint64_t SizeOf(const apspark::apsp::TaggedBlock& t) noexcept {
    return 1 + t.block.serialized_bytes();
  }
};

}  // namespace apspark::sparklet
