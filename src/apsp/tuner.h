// Block-size / solver / partitioner autotuner.
//
// §4 of the paper says b is "a user-provided (or auto-tuned) decomposition
// parameter"; §5.2-5.3 spend two sections on how to choose it. This module
// automates that choice: it sweeps candidate configurations in phantom mode
// on the virtual cluster (one simulated round each, projected — seconds of
// wall time), discards configurations whose projected shuffle spill would
// overflow local storage, and returns the fastest remaining one.
#pragma once

#include <vector>

#include "apsp/solver.h"
#include "apsp/solvers/ksource_blocked.h"

namespace apspark::apsp {

struct TuneRequest {
  std::int64_t n = 0;
  sparklet::ClusterConfig cluster;
  /// Candidates; empty selects a geometric sweep 512..4096 clipped to n.
  std::vector<std::int64_t> block_sizes;
  /// Solvers to consider; empty = the two blocked methods (the only ones
  /// the paper finds viable at scale).
  std::vector<SolverKind> solvers;
  /// Restrict to pure (fault-tolerant) solvers.
  bool require_fault_tolerance = false;
  bool directed = false;
};

struct TuneEntry {
  SolverKind solver;
  std::int64_t block_size = 0;
  PartitionerKind partitioner = PartitionerKind::kMultiDiagonal;
  double projected_seconds = 0;
  double projected_spill_bytes = 0;
  bool feasible = false;  // storage fits and the simulated round succeeded
};

/// All swept configurations, best-first (infeasible entries last).
std::vector<TuneEntry> SweepConfigurations(const TuneRequest& request);

/// The recommended configuration, or NOT_FOUND if nothing is feasible.
Result<TuneEntry> TuneConfiguration(const TuneRequest& request);

/// Applies a tuning choice to solver options.
ApspOptions ToOptions(const TuneEntry& entry, bool directed = false);

// ---------------------------------------------------------------------------
// Adaptive KSSP variant chooser
// ---------------------------------------------------------------------------
//
// The k-source sweep has two data planes (see apsp/solvers/ksource_blocked.h):
// staged shared-storage (impure; cost dominated by shared-FS bandwidth and
// per-file overhead) and shuffle-replicated (pure; cost dominated by network
// shuffle volume). Which wins depends on the modelled cluster — a fat GPFS
// favors staging, a slow one (or a fast fabric) favors the shuffle. The
// chooser runs one phantom pivot per variant on the virtual cluster and
// picks the smaller projected sweep time, the same methodology as the
// block-size tuner above.

struct KsourceTuneRequest {
  std::int64_t n = 0;
  std::int64_t num_sources = 0;
  std::int64_t block_size = 1024;
  sparklet::ClusterConfig cluster;
  bool directed = false;
  /// Restrict to pure (fault-tolerant) data planes: always picks shuffle.
  bool require_fault_tolerance = false;
};

struct KsourceTuneEntry {
  KsourceVariant variant = KsourceVariant::kStagedStorage;
  double projected_seconds = 0;
  bool feasible = false;
};

/// Both variants' modelled sweeps, best-first (infeasible entries last).
std::vector<KsourceTuneEntry> SweepKsourceVariants(
    const KsourceTuneRequest& request);

/// The recommended data plane, or an error when nothing is feasible.
Result<KsourceVariant> ChooseKsourceVariant(const KsourceTuneRequest& request);

}  // namespace apspark::apsp
