// BlockLayout: geometry of the q x q decomposition of an n x n matrix
// (q = ceil(n/b)), plus decomposition/assembly between dense matrices and
// RDD block records.
//
// Undirected graphs store only the canonical upper triangle (I <= J); the
// block for any (I, J) is obtained from the canonical record by transposing
// when needed, "with no measurable overheads" (§4). Directed graphs store
// all q^2 blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "apsp/block_key.h"
#include "graph/graph.h"
#include "linalg/dense_block.h"

namespace apspark::apsp {

class BlockLayout {
 public:
  BlockLayout(std::int64_t n, std::int64_t block_size, bool directed = false);

  std::int64_t n() const noexcept { return n_; }
  std::int64_t block_size() const noexcept { return b_; }
  std::int64_t q() const noexcept { return q_; }
  bool directed() const noexcept { return directed_; }

  /// Rows in block-row I (== b except possibly the last).
  std::int64_t BlockDim(std::int64_t index) const noexcept;

  /// Number of stored blocks: q(q+1)/2 upper-triangular, or q^2 directed.
  std::int64_t StoredBlockCount() const noexcept;

  /// True if (I, J) is a key this layout stores canonically.
  bool Stores(const BlockKey& key) const noexcept;

  /// Canonical key covering logical position (I, J).
  BlockKey Canonical(std::int64_t i_block, std::int64_t j_block) const noexcept;

  /// All stored keys, row-major.
  std::vector<BlockKey> StoredKeys() const;

  /// True if the stored block `key` carries data of logical column-block x
  /// or (for undirected storage) row-block x — the paper's InColumn
  /// predicate applied to symmetric storage.
  bool InColumnCross(const BlockKey& key, std::int64_t x) const noexcept;

  /// True if the stored block lies in the row-or-column cross of index x —
  /// what the blocked algorithms' Phase 2 updates (identical to
  /// InColumnCross for undirected storage).
  bool InCross(const BlockKey& key, std::int64_t x) const noexcept;

  /// Decomposes a dense n x n matrix into stored block records.
  std::vector<BlockRecord> Decompose(const linalg::DenseBlock& matrix) const;

  /// Shape-only records for paper-scale model runs. With `packed` the
  /// phantoms account as bit-packed boolean blocks (packed serialized
  /// bytes), so a boolean model run charges the packed plane's footprint.
  std::vector<BlockRecord> DecomposePhantom(bool packed = false) const;

  /// Reassembles a full n x n matrix from stored records (mirrors the upper
  /// triangle for undirected layouts). Missing blocks are an error.
  Result<linalg::DenseBlock> Assemble(
      const std::vector<BlockRecord>& records) const;

  /// Logical block at (I, J) given the canonical record's payload:
  /// transposes when (I, J) is the mirrored position.
  static linalg::DenseBlock Orient(const BlockKey& canonical,
                                   const linalg::DenseBlock& payload,
                                   std::int64_t i_block, std::int64_t j_block);

 private:
  std::int64_t n_;
  std::int64_t b_;
  std::int64_t q_;
  bool directed_;
};

}  // namespace apspark::apsp
