// RDD partitioners over block keys: the paper's multi-diagonal partitioner
// (MD, §5.3 / Figure 4) and the pySpark default portable-hash partitioner
// (PH), plus helpers to build either by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apsp/block_key.h"
#include "apsp/block_layout.h"
#include "sparklet/partitioner.h"

namespace apspark::apsp {

enum class PartitionerKind { kMultiDiagonal, kPortableHash };

const char* PartitionerKindName(PartitionerKind kind) noexcept;

/// Multi-diagonal partitioner (paper §5.3, Figure 4).
///
/// Stored (upper-triangular) keys are walked diagonal-major — diagonal d
/// holds keys (I, I+d) — and assigned round-robin with a running offset that
/// carries across diagonals. This (a) balances partition sizes to within one
/// block by construction, and (b) scatters each row- and column-block across
/// many partitions, which is what Phases 2/3 of the blocked algorithms need
/// to avoid hot partitions.
class MultiDiagonalPartitioner final
    : public sparklet::Partitioner<BlockKey> {
 public:
  MultiDiagonalPartitioner(const BlockLayout& layout, int num_partitions);

  int num_partitions() const noexcept override { return num_partitions_; }
  int PartitionOf(const BlockKey& key) const override;
  std::string name() const override { return "MD"; }

 private:
  int num_partitions_;
  std::int64_t q_;
  bool directed_;
  /// offset_[d]: partition index of the first key of diagonal d.
  std::vector<std::int64_t> offset_;
};

/// Builds the requested partitioner with `num_partitions` partitions.
sparklet::PartitionerPtr<BlockKey> MakeBlockPartitioner(
    PartitionerKind kind, const BlockLayout& layout, int num_partitions);

/// Histogram of stored-block counts per partition — the quantity plotted in
/// the bottom panel of the paper's Figure 3.
std::vector<std::int64_t> PartitionSizeHistogram(
    const BlockLayout& layout, const sparklet::Partitioner<BlockKey>& part);

}  // namespace apspark::apsp
