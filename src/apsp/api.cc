#include "apsp/api.h"

namespace apspark::apsp {

SolveReport Solve(const graph::Graph& graph, const SolveRequest& request) {
  auto solver = MakeSolver(request.solver);
  SolveReport report;
  report.solver_name = solver->name();
  report.pure = solver->pure();
  report.run = solver->SolveGraph(graph, request.options, request.cluster,
                                  request.cost_model);
  return report;
}

SolveReport SolveModel(std::int64_t n, const SolveRequest& request) {
  auto solver = MakeSolver(request.solver);
  SolveReport report;
  report.solver_name = solver->name();
  report.pure = solver->pure();
  report.run = solver->SolveModel(n, request.options, request.cluster,
                                  request.cost_model);
  return report;
}

}  // namespace apspark::apsp
