#include "apsp/building_blocks.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "linalg/kernel_registry.h"
#include "linalg/kernels.h"

namespace apspark::apsp {

using linalg::BlockRef;
using linalg::DenseBlock;

bool InColumn(const BlockLayout& layout, const BlockKey& key, std::int64_t x) {
  return layout.InColumnCross(key, x);
}

bool OnDiagonal(const BlockKey& key, std::int64_t x) {
  return key.I == x && key.J == x;
}

BlockRef MatProd(const BlockRef& a, const BlockRef& b,
                 sparklet::TaskContext& tc) {
  tc.ChargeCompute(
      tc.cost_model().MinPlusSeconds(a->rows(), b->cols(), a->cols()) *
      tc.cost_model().BitpackScale(a->is_packed()));
  return linalg::MakeBlock(linalg::MinPlusProduct(*a, *b));
}

BlockRef MatMin(const BlockRef& a, const BlockRef& b,
                sparklet::TaskContext& tc) {
  tc.ChargeCompute(tc.cost_model().ElementwiseSeconds(a->size()) *
                   tc.cost_model().BitpackScale(a->is_packed()));
  return linalg::MakeBlock(linalg::ElementMin(*a, *b));
}

namespace {

/// One fused min-plus update c = min(base, left ⊗ right): the planning /
/// charging / numeric-execution split lets the batch unpackers charge the
/// cost model sequentially while fanning the arithmetic out on the pool.
struct FusedUpdate {
  BlockKey key;
  BlockRef base;
  BlockRef left;
  BlockRef right;
};

/// Modelled seconds of one fused update: exactly what the unfused MatProd +
/// MatMin pair charged, so the modelled cluster time is unchanged by fusion.
double FusedChargeSeconds(const FusedUpdate& u, sparklet::TaskContext& tc) {
  return (tc.cost_model().MinPlusSeconds(u.left->rows(), u.right->cols(),
                                         u.left->cols()) +
          tc.cost_model().ElementwiseSeconds(u.base->size())) *
         tc.cost_model().BitpackScale(u.base->is_packed());
}

void ChargeFused(const FusedUpdate& u, sparklet::TaskContext& tc) {
  tc.ChargeCompute(FusedChargeSeconds(u, tc));
}

/// Charges one task's independent kernel pieces: the ordered sequential sum
/// when intra_task_cores == 1 (bitwise identical to the historical
/// per-update charging), the LPT intra-task makespan otherwise.
void ChargeIntraTask(std::vector<double>&& pieces, sparklet::TaskContext& tc) {
  if (tc.cost_model().intra_task_cores <= 1) {
    for (double piece : pieces) tc.ChargeCompute(piece);
    return;
  }
  tc.ChargeCompute(tc.cost_model().IntraTaskSpan(std::move(pieces)));
}

/// Pure numeric part (no TaskContext): safe to run on any host thread. The
/// base copy is the data plane's sanctioned copy-on-write mutation site.
BlockRef RunFused(const FusedUpdate& u) {
  DenseBlock out = u.base.MutableCopy();
  linalg::MinPlusUpdate(*u.left, *u.right, out);
  return linalg::MakeBlock(std::move(out));
}

/// Runs `count` independent numeric updates: as stealable block tasks on the
/// host pool under kTiledParallel, sequentially otherwise (naive / tiled are
/// single-threaded baselines by contract: their solver-level timings must
/// not be silently multithreaded).
void RunStealableTasks(std::size_t count,
                       const std::function<void(std::size_t)>& run_one) {
  if (linalg::GetKernelVariant() == linalg::KernelVariant::kTiledParallel) {
    linalg::KernelThreadPool().ParallelForTasks(count, run_one);
  } else {
    for (std::size_t i = 0; i < count; ++i) run_one(i);
  }
}

/// Adaptive task granularity: partitions [0, costs.size()) into contiguous
/// groups whose summed modelled kernel cost reaches the dispatch-overhead
/// floor, so tiny-b updates share one stealable task instead of paying one
/// dispatch each. Order within a group (and across groups, per update) is
/// the input order, so results are bitwise identical to one-task-per-update.
std::vector<std::pair<std::size_t, std::size_t>> GrainGroups(
    const std::vector<double>& costs) {
  const double floor_seconds =
      linalg::GetKernelTuning().task_grain_floor_seconds;
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  std::size_t begin = 0;
  double acc = 0;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    acc += costs[i];
    if (acc >= floor_seconds) {
      groups.emplace_back(begin, i + 1);
      begin = i + 1;
      acc = 0;
    }
  }
  if (begin < costs.size()) {
    // Trailing underweight run: fold into the previous group rather than
    // paying a dispatch for leftovers below the floor.
    if (groups.empty()) {
      groups.emplace_back(begin, costs.size());
    } else {
      groups.back().second = costs.size();
    }
  }
  return groups;
}

/// RunStealableTasks with the per-update modelled costs known: merges
/// below-floor updates into shared stealable tasks (see GrainGroups).
void RunStealableTasksAdaptive(
    const std::vector<double>& costs,
    const std::function<void(std::size_t)>& run_one) {
  if (linalg::GetKernelVariant() != linalg::KernelVariant::kTiledParallel) {
    RunStealableTasks(costs.size(), run_one);
    return;
  }
  const auto groups = GrainGroups(costs);
  if (groups.size() == costs.size()) {  // nothing merged: skip indirection
    RunStealableTasks(costs.size(), run_one);
    return;
  }
  RunStealableTasks(groups.size(), [&](std::size_t g) {
    for (std::size_t i = groups[g].first; i < groups[g].second; ++i) {
      run_one(i);
    }
  });
}

}  // namespace

BlockRef MinPlusInto(const BlockRef& base, const BlockRef& a,
                     const BlockRef& b, sparklet::TaskContext& tc) {
  FusedUpdate update{BlockKey{}, base, a, b};
  ChargeFused(update, tc);
  return RunFused(update);
}

BlockRef MinPlus(const BlockRef& a, const BlockRef& b,
                 sparklet::TaskContext& tc) {
  return MinPlusInto(a, a, b, tc);
}

BlockRef MinPlusRect(const BlockRef& base, const BlockRef& a,
                     const BlockRef& panel, sparklet::TaskContext& tc) {
  tc.ChargeCompute(
      (tc.cost_model().MinPlusSeconds(a->rows(), panel->cols(), a->cols()) +
       tc.cost_model().ElementwiseSeconds(base->size())) *
      tc.cost_model().BitpackScale(base->is_packed()));
  DenseBlock out = base.MutableCopy();
  linalg::MinPlusUpdateRect(*a, *panel, out);
  return linalg::MakeBlock(std::move(out));
}

namespace {

/// Shared body of the fused-triple batches: charge every update through the
/// intra-task schedule (the same formula as FusedChargeSeconds), then run
/// `kernel(left, right, c)` per triple as stealable tasks.
std::vector<BlockRef> RunTripleBatch(
    std::vector<FusedTriple>&& updates, sparklet::TaskContext& tc,
    void (*kernel)(const DenseBlock&, const DenseBlock&, DenseBlock&)) {
  std::vector<double> pieces;
  pieces.reserve(updates.size());
  for (const FusedTriple& u : updates) {
    pieces.push_back(
        FusedChargeSeconds(FusedUpdate{BlockKey{}, u.base, u.left, u.right},
                           tc));
  }
  ChargeIntraTask(std::vector<double>(pieces), tc);
  std::vector<BlockRef> out(updates.size());
  RunStealableTasksAdaptive(pieces, [&](std::size_t i) {
    DenseBlock c = updates[i].base.MutableCopy();
    kernel(*updates[i].left, *updates[i].right, c);
    out[i] = linalg::MakeBlock(std::move(c));
  });
  return out;
}

}  // namespace

std::vector<BlockRef> MinPlusIntoBatch(std::vector<FusedTriple>&& updates,
                                       sparklet::TaskContext& tc) {
  return RunTripleBatch(std::move(updates), tc, linalg::MinPlusUpdate);
}

std::vector<BlockRef> MinPlusRectBatch(std::vector<FusedTriple>&& updates,
                                       sparklet::TaskContext& tc) {
  return RunTripleBatch(std::move(updates), tc, linalg::MinPlusUpdateRect);
}

BlockRef FloydWarshall(const BlockRef& a, sparklet::TaskContext& tc) {
  tc.ChargeCompute(tc.cost_model().FloydWarshallSeconds(a->rows()) *
                   tc.cost_model().BitpackScale(a->is_packed()));
  DenseBlock closed = a.MutableCopy();
  linalg::FloydWarshallInPlace(closed);
  return linalg::MakeBlock(std::move(closed));
}

BlockRef Transpose(const BlockRef& a, sparklet::TaskContext& tc) {
  tc.ChargeCompute(tc.cost_model().ElementwiseSeconds(a->size()) *
                   tc.cost_model().BitpackScale(a->is_packed()));
  return linalg::MakeBlock(a->Transposed());
}

std::pair<std::int64_t, BlockRef> ExtractColSegment(
    const BlockLayout& layout, const BlockRecord& record, std::int64_t k,
    sparklet::TaskContext& tc) {
  const std::int64_t big_k = k / layout.block_size();
  const std::int64_t k_loc = k % layout.block_size();
  const auto& [key, block] = record;
  tc.ChargeCompute(
      tc.cost_model().ElementwiseSeconds(
          std::max(block->rows(), block->cols())) *
      tc.cost_model().BitpackScale(block->is_packed()));
  if (key.J == big_k) {
    // Stored block provides rows of column k for row-block I.
    return {key.I, linalg::MakeBlock(block->Column(k_loc))};
  }
  if (key.I != big_k) {
    throw std::invalid_argument("ExtractColSegment: block not in column " +
                                std::to_string(big_k));
  }
  // Transposed view: row k_loc of A_(K,J) is column k of row-block J.
  return {key.J,
          linalg::MakeBlock(block->RowBlock(k_loc).Transposed())};
}

std::pair<std::int64_t, BlockRef> ExtractRowSegment(
    const BlockLayout& layout, const BlockRecord& record, std::int64_t k,
    sparklet::TaskContext& tc) {
  const std::int64_t big_k = k / layout.block_size();
  const std::int64_t k_loc = k % layout.block_size();
  const auto& [key, block] = record;
  if (key.I != big_k) {
    throw std::invalid_argument("ExtractRowSegment: block not in row " +
                                std::to_string(big_k));
  }
  tc.ChargeCompute(tc.cost_model().ElementwiseSeconds(block->cols()) *
                   tc.cost_model().BitpackScale(block->is_packed()));
  return {key.J, linalg::MakeBlock(block->RowBlock(k_loc).Transposed())};
}

BlockRecord FloydWarshallUpdate(
    const BlockLayout& layout, const BlockRecord& record,
    const std::vector<linalg::BlockRef>& column_segments,
    const std::vector<linalg::BlockRef>& row_segments,
    sparklet::TaskContext& tc) {
  (void)layout;
  const auto& [key, block] = record;
  const BlockRef& u = column_segments[static_cast<std::size_t>(key.I)];
  const BlockRef& v = row_segments[static_cast<std::size_t>(key.J)];
  tc.ChargeCompute(tc.cost_model().ElementwiseSeconds(block->size()) *
                   tc.cost_model().BitpackScale(block->is_packed()));
  DenseBlock updated = block.MutableCopy();
  linalg::OuterSumMinUpdate(updated, *u, *v);
  return {key, linalg::MakeBlock(std::move(updated))};
}

BlockRecord FloydWarshallUpdate(
    const BlockLayout& layout, const BlockRecord& record,
    const std::vector<linalg::BlockRef>& column_segments,
    sparklet::TaskContext& tc) {
  return FloydWarshallUpdate(layout, record, column_segments, column_segments,
                             tc);
}

std::vector<BlockRecord> FloydWarshallUpdateBatch(
    std::vector<BlockRecord>&& records,
    const std::vector<linalg::BlockRef>& column_segments,
    const std::vector<linalg::BlockRef>& row_segments,
    sparklet::TaskContext& tc) {
  std::vector<double> pieces;
  pieces.reserve(records.size());
  for (const auto& [key, block] : records) {
    pieces.push_back(tc.cost_model().ElementwiseSeconds(block->size()) *
                     tc.cost_model().BitpackScale(block->is_packed()));
  }
  ChargeIntraTask(std::vector<double>(pieces), tc);
  std::vector<BlockRecord> out(records.size());
  RunStealableTasksAdaptive(pieces, [&](std::size_t r) {
    const auto& [key, block] = records[r];
    const BlockRef& u = column_segments[static_cast<std::size_t>(key.I)];
    const BlockRef& v = row_segments[static_cast<std::size_t>(key.J)];
    DenseBlock updated = block.MutableCopy();
    linalg::OuterSumMinUpdate(updated, *u, *v);
    out[r] = {key, linalg::MakeBlock(std::move(updated))};
  });
  return out;
}

void CopyDiag(const BlockLayout& layout, std::int64_t i,
              const linalg::BlockRef& diag, std::vector<TaggedRecord>& out) {
  // One copy per cross key, *including* (i, i) itself: the Phase-2 update
  // min(A_ii, A_ii (min,+) D) equals D exactly (the diagonal of A_ii is 0),
  // which is how the closed diagonal block re-enters A.
  for (std::int64_t k = 0; k < layout.q(); ++k) {
    out.push_back({layout.Canonical(k, i), {BlockRole::kDiag, diag}});
    if (layout.directed() && k != i) {
      out.push_back({BlockKey{i, k}, {BlockRole::kDiag, diag}});
    }
  }
}

const linalg::BlockRef* FindRole(const TaggedList& list, BlockRole role) {
  const linalg::BlockRef* found = nullptr;
  for (const TaggedBlock& t : list) {
    if (t.role == role) {
      if (found != nullptr) {
        throw std::logic_error("duplicate role in combine list");
      }
      found = &t.block;
    }
  }
  return found;
}

namespace {

/// Plans one Phase-2 record: either a passthrough result or a fused update.
/// Throws exactly like the original per-record unpack on malformed lists.
std::optional<FusedUpdate> PlanPhase2(std::int64_t i, const ListRecord& record,
                                      BlockRecord& passthrough) {
  const auto& [key, list] = record;
  const linalg::BlockRef* original = FindRole(list, BlockRole::kOriginal);
  const linalg::BlockRef* diag = FindRole(list, BlockRole::kDiag);
  if (original == nullptr || diag == nullptr) {
    throw std::logic_error("Phase2Unpack: expected original + diagonal copy");
  }
  if (OnDiagonal(key, i)) {
    // min(A_ii, A_ii (min,+) D) equals D exactly in the semiring (the
    // diagonal of A_ii is 0); returning D directly avoids floating-point
    // re-rounding of path sums that would break exact symmetry.
    passthrough = {key, *diag};
    return std::nullopt;
  }
  // Orientation matters in the (min,+) semiring: stored (X, i) holds the
  // column-side factor A_Xi and is updated as min(A_Xi, A_Xi (min,+) D);
  // stored (i, X) holds the row-side A_iX, updated as min(A_iX, D (min,+) A_iX).
  if (key.J == i) return FusedUpdate{key, *original, *original, *diag};
  return FusedUpdate{key, *original, *diag, *original};
}

/// Plans one Phase-3 record (same contract as PlanPhase2; `i` is unused but
/// keeps the planner signatures interchangeable for UnpackBatch).
std::optional<FusedUpdate> PlanPhase3(std::int64_t /*i*/,
                                      const ListRecord& record,
                                      BlockRecord& passthrough) {
  const auto& [key, list] = record;
  const linalg::BlockRef* original = FindRole(list, BlockRole::kOriginal);
  if (original == nullptr) {
    throw std::logic_error("Phase3Unpack: missing original block at " +
                           key.ToString());
  }
  const linalg::BlockRef* row = FindRole(list, BlockRole::kRow);
  const linalg::BlockRef* col = FindRole(list, BlockRole::kCol);
  if (row == nullptr && col == nullptr) {
    // Cross blocks were fully updated in Phase 2 and travel alone.
    passthrough = {key, *original};
    return std::nullopt;
  }
  if (row == nullptr || col == nullptr) {
    throw std::logic_error("Phase3Unpack: expected both factors at " +
                           key.ToString());
  }
  // A_UV = min(A_UV, A_Ui (min,+) A_iV).
  return FusedUpdate{key, *original, *row, *col};
}

using PlanFn = std::optional<FusedUpdate> (*)(std::int64_t, const ListRecord&,
                                              BlockRecord&);

/// Shared batch driver: plan sequentially, charge through the intra-task
/// schedule (TaskContext is not thread-safe, so all charging stays on the
/// calling thread), then run the fused numeric updates as stealable tasks.
std::vector<BlockRecord> UnpackBatch(std::vector<ListRecord>&& records,
                                     sparklet::TaskContext& tc,
                                     PlanFn plan, std::int64_t i) {
  std::vector<BlockRecord> out(records.size());
  std::vector<std::pair<std::size_t, FusedUpdate>> pending;
  pending.reserve(records.size());
  std::vector<double> pieces;
  pieces.reserve(records.size());
  for (std::size_t r = 0; r < records.size(); ++r) {
    if (auto update = plan(i, records[r], out[r])) {
      pieces.push_back(FusedChargeSeconds(*update, tc));
      pending.emplace_back(r, std::move(*update));
    }
  }
  ChargeIntraTask(std::vector<double>(pieces), tc);
  RunStealableTasksAdaptive(pieces, [&](std::size_t p) {
    out[pending[p].first] = {pending[p].second.key,
                             RunFused(pending[p].second)};
  });
  return out;
}

}  // namespace

BlockRecord Phase2Unpack(const BlockLayout& layout, std::int64_t i,
                         const ListRecord& record, sparklet::TaskContext& tc) {
  (void)layout;
  BlockRecord passthrough;
  if (auto update = PlanPhase2(i, record, passthrough)) {
    ChargeFused(*update, tc);
    return {update->key, RunFused(*update)};
  }
  return passthrough;
}

std::vector<BlockRecord> Phase2UnpackBatch(const BlockLayout& layout,
                                           std::int64_t i,
                                           std::vector<ListRecord>&& records,
                                           sparklet::TaskContext& tc) {
  (void)layout;
  return UnpackBatch(std::move(records), tc, PlanPhase2, i);
}

void CopyCol(const BlockLayout& layout, std::int64_t i,
             const BlockRecord& record, std::vector<TaggedRecord>& out,
             sparklet::TaskContext& tc) {
  const auto& [key, block] = record;
  // X = the non-i index of this cross block.
  const std::int64_t x = key.I == i ? key.J : key.I;
  if (x == i) {
    // The diagonal block: Phase 3 never multiplies through it, so it only
    // re-enters A as itself.
    out.push_back({key, {BlockRole::kOriginal, block}});
    return;
  }
  if (layout.directed()) {
    // Full storage: column block (X, i) provides the left factor A_Xi for
    // every target in row X; row block (i, X) provides the right factor
    // A_iX for every target in column X.
    out.push_back({key, {BlockRole::kOriginal, block}});
    for (std::int64_t v = 0; v < layout.q(); ++v) {
      if (v == i) continue;
      if (key.J == i) {
        out.push_back({BlockKey{x, v}, {BlockRole::kRow, block}});
      } else {
        out.push_back({BlockKey{v, x}, {BlockRole::kCol, block}});
      }
    }
    return;
  }
  // Oriented factors. Stored payload is A_key.I,key.J; derive A_Xi / A_iX.
  const BlockRef col_side =  // A_Xi
      key.J == i ? block : Transpose(block, tc);
  const BlockRef row_side =  // A_iX
      key.I == i ? block : Transpose(block, tc);

  // The updated cross block itself stays in A.
  out.push_back({key, {BlockRole::kOriginal, block}});

  for (std::int64_t v = 0; v < layout.q(); ++v) {
    if (v == i) continue;  // own key already emitted above
    const BlockKey target = layout.Canonical(x, v);
    if (OnDiagonal(target, x)) {
      // Diagonal target needs both factors, both provided by this block.
      out.push_back({target, {BlockRole::kRow, col_side}});
      out.push_back({target, {BlockRole::kCol, row_side}});
      continue;
    }
    if (target.I == x) {
      out.push_back({target, {BlockRole::kRow, col_side}});  // A_Xi
    } else {
      out.push_back({target, {BlockRole::kCol, row_side}});  // A_iX
    }
  }
}

BlockRecord Phase3Unpack(const BlockLayout& layout, std::int64_t i,
                         const ListRecord& record, sparklet::TaskContext& tc) {
  (void)layout;
  BlockRecord passthrough;
  if (auto update = PlanPhase3(i, record, passthrough)) {
    ChargeFused(*update, tc);
    return {update->key, RunFused(*update)};
  }
  return passthrough;
}

std::vector<BlockRecord> Phase3UnpackBatch(const BlockLayout& layout,
                                           std::int64_t i,
                                           std::vector<ListRecord>&& records,
                                           sparklet::TaskContext& tc) {
  (void)layout;
  return UnpackBatch(std::move(records), tc, PlanPhase3, i);
}

}  // namespace apspark::apsp
