// Shared combine-step wiring of the shuffle-based solvers.
//
// Blocked In-Memory (matrix-block keys) and the shuffle-replicated KSSP
// variant (frontier-panel keys) both gather tagged replicas per target key
// with the same combineByKey(ListAppend) pattern and both tag resident
// records for it. This header is the single home of that wiring so the two
// solvers cannot drift apart (same rationale as solvers/staging.h for the
// staged protocol).
#pragma once

#include <string>
#include <utility>

#include "apsp/block_key.h"
#include "sparklet/rdd.h"

namespace apspark::apsp {

/// combineByKey(ListAppend): gathers the tagged blocks destined for one key
/// (the paper's ListAppend combiner pattern). K is the target key type:
/// BlockKey for matrix combine steps, std::int64_t for frontier panels.
template <typename K>
sparklet::RddPtr<std::pair<K, TaggedList>> GatherLists(
    sparklet::RddPtr<std::pair<K, TaggedBlock>> rdd,
    sparklet::PartitionerPtr<K> partitioner, std::string op_name) {
  return sparklet::CombineByKey<K, TaggedBlock, TaggedList>(
      std::move(rdd), std::move(partitioner), std::move(op_name),
      [](TaggedBlock&& t) {
        TaggedList list;
        list.push_back(std::move(t));
        return list;
      },
      [](TaggedList& list, TaggedBlock&& t, sparklet::TaskContext&) {
        list.push_back(std::move(t));
      },
      [](TaggedList& list, TaggedList&& other, sparklet::TaskContext&) {
        for (auto& t : other) list.push_back(std::move(t));
      });
}

/// Tags resident A blocks for the combine steps.
inline sparklet::RddPtr<TaggedRecord> TagOriginals(
    sparklet::RddPtr<BlockRecord> rdd, std::string op_name) {
  return rdd->Map(std::move(op_name),
                  [](const BlockRecord& rec,
                     sparklet::TaskContext&) -> TaggedRecord {
                    return {rec.first, {BlockRole::kOriginal, rec.second}};
                  });
}

}  // namespace apspark::apsp
