#include "apsp/solvers/ksource_blocked.h"

#include <utility>

#include "apsp/building_blocks.h"
#include "apsp/solvers/staging.h"
#include "linalg/kernel_registry.h"

namespace apspark::apsp {

using linalg::BlockPtr;
using linalg::DenseBlock;
using sparklet::RddPtr;
using sparklet::SparkletAbort;
using sparklet::TaskContext;
using staging::BlockCache;
using staging::ReadPhase3Factors;
using staging::ReadStagedBlock;
using staging::StagingKeys;

std::vector<PanelRecord> DecomposeFrontier(const BlockLayout& layout,
                                           const linalg::DenseBlock& frontier) {
  std::vector<PanelRecord> panels;
  panels.reserve(static_cast<std::size_t>(layout.q()));
  for (std::int64_t i = 0; i < layout.q(); ++i) {
    const std::int64_t r0 = i * layout.block_size();
    panels.push_back(
        {i, linalg::MakeBlock(frontier.RowPanel(r0, layout.BlockDim(i)))});
  }
  return panels;
}

KsourceResult KsourceBlockedSolver::SolveGraph(
    const graph::Graph& graph, const std::vector<graph::VertexId>& sources,
    const KsourceOptions& opts, const sparklet::ClusterConfig& cluster,
    const linalg::CostModel& model) {
  KsourceResult result;
  const std::int64_t n = graph.num_vertices();
  if (sources.empty()) {
    result.status = InvalidArgumentError("ksource: no sources given");
    return result;
  }
  for (graph::VertexId s : sources) {
    if (s < 0 || s >= n) {
      result.status = InvalidArgumentError("ksource: source " +
                                           std::to_string(s) +
                                           " out of range");
      return result;
    }
  }
  const bool directed = opts.directed || graph.directed();
  DenseBlock adjacency = graph.ToDenseAdjacency();
  // The sweep computes F = A* (min,+) F_0, i.e. distances *to* the frontier
  // columns; sweeping the reversed graph roots them at the sources instead.
  if (directed) adjacency = adjacency.Transposed();
  KsourceOptions run_opts = opts;
  run_opts.directed = directed;
  const BlockLayout layout(n, opts.block_size, directed);
  const DenseBlock frontier = linalg::FrontierPanel(
      n, std::vector<std::int64_t>(sources.begin(), sources.end()));
  sparklet::SparkletContext ctx(cluster, model);
  return Solve(ctx, layout, layout.Decompose(adjacency),
               DecomposeFrontier(layout, frontier), run_opts);
}

KsourceResult KsourceBlockedSolver::SolveModel(
    std::int64_t n, std::int64_t num_sources, const KsourceOptions& opts,
    const sparklet::ClusterConfig& cluster, const linalg::CostModel& model) {
  KsourceResult result;
  if (num_sources <= 0) {
    result.status = InvalidArgumentError("ksource: no sources given");
    return result;
  }
  const BlockLayout layout(n, opts.block_size, opts.directed);
  std::vector<PanelRecord> panels;
  panels.reserve(static_cast<std::size_t>(layout.q()));
  for (std::int64_t i = 0; i < layout.q(); ++i) {
    panels.push_back({i, linalg::MakeBlock(DenseBlock::Phantom(
                             layout.BlockDim(i), num_sources))});
  }
  sparklet::SparkletContext ctx(cluster, model);
  return Solve(ctx, layout, layout.DecomposePhantom(), panels, opts);
}

KsourceResult KsourceBlockedSolver::Solve(
    sparklet::SparkletContext& ctx, const BlockLayout& layout,
    const std::vector<BlockRecord>& blocks,
    const std::vector<PanelRecord>& frontier, const KsourceOptions& opts) {
  // Host kernel selection for this run, exactly like ApspSolver::Solve.
  linalg::ScopedKernelVariant kernel_scope(ctx.config().kernel_variant);
  KsourceResult result;
  const std::int64_t q = layout.q();
  result.rounds_total = q;
  const std::int64_t rounds_to_run =
      opts.max_rounds > 0 ? std::min(opts.max_rounds, q) : q;
  const bool directed = layout.directed();

  const int num_partitions =
      std::max(1, opts.partitions_per_core * ctx.config().total_cores());
  auto block_part =
      MakeBlockPartitioner(opts.partitioner, layout, num_partitions);
  auto panel_part = sparklet::MakePortableHash<std::int64_t>(
      std::min<int>(num_partitions, static_cast<int>(q)));

  auto a = ctx.ParallelizePartitioned("ksA", blocks, block_part);
  auto f = ctx.ParallelizePartitioned("ksF", frontier, panel_part);
  // Populating the RDDs is free, consistent with the APSP solvers.
  ctx.cluster().Reset();
  const StagingKeys keys("ks");

  try {
    for (std::int64_t t = 0; t < rounds_to_run; ++t) {
      // --- Phase 1: close the pivot diagonal and stage it.
      auto diag = a->Filter("ks-diag",
                            [t](const BlockRecord& rec) {
                              return OnDiagonal(rec.first, t);
                            })
                      ->Map("ks-fw",
                            [](const BlockRecord& rec, TaskContext& tc) {
                              return BlockRecord{rec.first,
                                                 FloydWarshall(rec.second, tc)};
                            });
      for (const auto& [key, block] : diag->Collect()) {
        staging::StageBlock(ctx, keys.Diag(t), *block);
      }

      // --- Pivot panel: P_t = min(F_t, A*_tt (min,+) F_t), staged for the
      // frontier sweep below.
      auto pivot_panel =
          f->Filter("ks-pivot",
                    [t](const PanelRecord& rec) { return rec.first == t; })
              ->Map("ks-pivot-update",
                    [t, keys](const PanelRecord& rec, TaskContext& tc) {
                      BlockCache cache;
                      BlockPtr d = ReadStagedBlock(cache, keys.Diag(t), tc);
                      return PanelRecord{
                          rec.first, MinPlusRect(rec.second, d, rec.second, tc)};
                    });
      for (const auto& [idx, panel] : pivot_panel->Collect()) {
        staging::StageBlock(ctx, keys.Panel(t), *panel);
      }

      // --- Phase 2: update the column/row cross of the matrix against the
      // staged diagonal and stage the oriented factors (Alg. 4 lines 5-7).
      auto rowcol =
          a->Filter("ks-rowcol",
                    [&layout, t](const BlockRecord& rec) {
                      return layout.InCross(rec.first, t) &&
                             !OnDiagonal(rec.first, t);
                    })
              ->MapPartitions<BlockRecord>(
                  "ks-phase2",
                  [t, keys](std::vector<BlockRecord>&& part, TaskContext& tc) {
                    // Staged reads and charges stay sequential (TaskContext
                    // is driver-thread state); the independent block updates
                    // then run as one stealable intra-task batch.
                    BlockCache cache;
                    std::vector<FusedTriple> updates;
                    updates.reserve(part.size());
                    for (const auto& [key, block] : part) {
                      BlockPtr d = ReadStagedBlock(cache, keys.Diag(t), tc);
                      updates.push_back(key.J == t
                                            ? FusedTriple{block, block, d}
                                            : FusedTriple{block, d, block});
                    }
                    auto blocks = MinPlusIntoBatch(std::move(updates), tc);
                    std::vector<BlockRecord> out;
                    out.reserve(part.size());
                    for (std::size_t r = 0; r < part.size(); ++r) {
                      out.push_back({part[r].first, std::move(blocks[r])});
                    }
                    return out;
                  });
      staging::StageCrossFactors(ctx, keys, t, rowcol->Collect(), directed);

      // --- Phase 3: remaining matrix blocks through the staged factors.
      auto offcol =
          a->Filter("ks-offcol",
                    [&layout, t](const BlockRecord& rec) {
                      return !layout.InCross(rec.first, t);
                    })
              ->MapPartitions<BlockRecord>(
                  "ks-phase3",
                  [t, directed, keys](std::vector<BlockRecord>&& part,
                                      TaskContext& tc) {
                    BlockCache cache;
                    std::vector<FusedTriple> updates;
                    updates.reserve(part.size());
                    for (const auto& [key, block] : part) {
                      auto [left, right] = ReadPhase3Factors(
                          keys, cache, t, key, directed, tc);
                      updates.push_back({block, left, right});
                    }
                    auto blocks = MinPlusIntoBatch(std::move(updates), tc);
                    std::vector<BlockRecord> out;
                    out.reserve(part.size());
                    for (std::size_t r = 0; r < part.size(); ++r) {
                      out.push_back({part[r].first, std::move(blocks[r])});
                    }
                    return out;
                  });

      // --- Frontier sweep: every panel through the pivot's column factors.
      // F_I = min(F_I, A_It (min,+) P_t); the pivot panel becomes P_t.
      auto f_prev = f;
      f = f->MapPartitions<PanelRecord>(
               "ks-frontier",
               [t, keys](std::vector<PanelRecord>&& part, TaskContext& tc) {
                 BlockCache cache;
                 std::vector<PanelRecord> out(part.size());
                 std::vector<FusedTriple> updates;
                 std::vector<std::size_t> slots;
                 updates.reserve(part.size());
                 slots.reserve(part.size());
                 for (std::size_t r = 0; r < part.size(); ++r) {
                   const auto& [idx, panel] = part[r];
                   if (idx == t) {
                     out[r] = {idx,
                               ReadStagedBlock(cache, keys.Panel(t), tc)};
                     continue;
                   }
                   BlockPtr left =
                       ReadStagedBlock(cache, keys.Left(t, idx), tc);
                   BlockPtr pivot =
                       ReadStagedBlock(cache, keys.Panel(t), tc);
                   updates.push_back({panel, left, pivot});
                   slots.push_back(r);
                 }
                 auto panels = MinPlusRectBatch(std::move(updates), tc);
                 for (std::size_t p = 0; p < slots.size(); ++p) {
                   out[slots[p]] = {part[slots[p]].first,
                                    std::move(panels[p])};
                 }
                 return out;
               })
              ->Persist();
      f->EnsureMaterialized();
      f_prev->Unpersist();

      // --- Rebuild A for the next pivot (Alg. 4 lines 11-12).
      auto a_prev = a;
      a = sparklet::PartitionBy(
              ctx.Union("ks-union", {diag, rowcol, offcol}), block_part,
              "ks-repartition")
              ->Persist();
      a->EnsureMaterialized();
      a_prev->Unpersist();
      result.rounds_executed = t + 1;
    }
    result.status = Status::Ok();
  } catch (const SparkletAbort& abort) {
    result.status = abort.status();
  }

  result.sim_seconds = ctx.now_seconds();
  result.metrics = ctx.metrics();
  if (result.rounds_executed > 0) {
    result.projected_seconds =
        result.sim_seconds * static_cast<double>(q) /
        static_cast<double>(result.rounds_executed);
  }

  if (result.status.ok() && result.rounds_executed == q) {
    const bool phantom =
        !frontier.empty() && frontier.front().second->is_phantom();
    if (!phantom) {
      try {
        const auto panels = f->Collect();
        const std::int64_t k =
            panels.empty() ? 0 : panels.front().second->cols();
        DenseBlock out(layout.n(), k, linalg::kInf);
        for (const auto& [idx, panel] : panels) {
          out.PasteRowPanel(idx * layout.block_size(), *panel);
        }
        result.distances = std::move(out);
      } catch (const SparkletAbort& abort) {
        result.status = abort.status();
      }
    }
  }
  return result;
}

}  // namespace apspark::apsp
