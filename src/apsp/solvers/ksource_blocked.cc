#include "apsp/solvers/ksource_blocked.h"

#include <stdexcept>
#include <utility>

#include "apsp/building_blocks.h"
#include "apsp/checkpoint.h"
#include "apsp/combine_steps.h"
#include "apsp/solver.h"
#include "apsp/solvers/staging.h"
#include "linalg/kernel_registry.h"
#include "linalg/semiring.h"

namespace apspark::apsp {

using linalg::BlockRef;
using linalg::DenseBlock;
using sparklet::RddPtr;
using sparklet::SparkletAbort;
using sparklet::TaskContext;
using staging::BlockCache;
using staging::ReadPhase3Factors;
using staging::ReadStagedBlock;
using staging::StagingKeys;

const char* KsourceVariantName(KsourceVariant variant) noexcept {
  switch (variant) {
    case KsourceVariant::kStagedStorage:
      return "staged";
    case KsourceVariant::kShuffleReplicated:
      return "shuffle";
  }
  return "?";
}

std::optional<KsourceVariant> ParseKsourceVariant(std::string_view name) {
  if (name == "staged") return KsourceVariant::kStagedStorage;
  if (name == "shuffle") return KsourceVariant::kShuffleReplicated;
  return std::nullopt;
}

std::vector<PanelRecord> DecomposeFrontier(const BlockLayout& layout,
                                           const linalg::DenseBlock& frontier) {
  std::vector<PanelRecord> panels;
  panels.reserve(static_cast<std::size_t>(layout.q()));
  for (std::int64_t i = 0; i < layout.q(); ++i) {
    const std::int64_t r0 = i * layout.block_size();
    panels.push_back(
        {i, linalg::MakeBlock(frontier.RowPanel(r0, layout.BlockDim(i)))});
  }
  return panels;
}

KsourceResult KsourceBlockedSolver::SolveGraph(
    const graph::Graph& graph, const std::vector<graph::VertexId>& sources,
    const KsourceOptions& opts, const sparklet::ClusterConfig& cluster,
    const linalg::CostModel& model) {
  KsourceResult result;
  const std::int64_t n = graph.num_vertices();
  if (sources.empty()) {
    result.status = InvalidArgumentError("ksource: no sources given");
    return result;
  }
  for (graph::VertexId s : sources) {
    if (s < 0 || s >= n) {
      result.status = InvalidArgumentError("ksource: source " +
                                           std::to_string(s) +
                                           " out of range");
      return result;
    }
  }
  const bool directed = opts.directed || graph.directed();
  DenseBlock adjacency = graph.ToDenseAdjacency();
  // The sweep computes F = A* ⊗ F_0, i.e. distances *to* the frontier
  // columns; sweeping the reversed graph roots them at the sources instead.
  if (directed) adjacency = adjacency.Transposed();
  // Ingest into the requested algebra (panels stay dense; see KsourceOptions).
  adjacency = linalg::SemiringAdjacency(std::move(adjacency), opts.semiring,
                                        /*bitpack=*/false);
  KsourceOptions run_opts = opts;
  run_opts.directed = directed;
  const BlockLayout layout(n, opts.block_size, directed);
  const DenseBlock frontier = linalg::FrontierPanel(
      n, std::vector<std::int64_t>(sources.begin(), sources.end()),
      linalg::SemiringZeroValue(opts.semiring),
      linalg::SemiringOneValue(opts.semiring));
  sparklet::SparkletContext ctx(cluster, model);
  return Solve(ctx, layout, layout.Decompose(adjacency),
               DecomposeFrontier(layout, frontier), run_opts);
}

KsourceResult KsourceBlockedSolver::SolveModel(
    std::int64_t n, std::int64_t num_sources, const KsourceOptions& opts,
    const sparklet::ClusterConfig& cluster, const linalg::CostModel& model) {
  KsourceResult result;
  if (num_sources <= 0) {
    result.status = InvalidArgumentError("ksource: no sources given");
    return result;
  }
  const BlockLayout layout(n, opts.block_size, opts.directed);
  std::vector<PanelRecord> panels;
  panels.reserve(static_cast<std::size_t>(layout.q()));
  for (std::int64_t i = 0; i < layout.q(); ++i) {
    panels.push_back({i, linalg::MakeBlock(DenseBlock::Phantom(
                             layout.BlockDim(i), num_sources))});
  }
  sparklet::SparkletContext ctx(cluster, model);
  return Solve(ctx, layout, layout.DecomposePhantom(), panels, opts);
}

namespace {

/// Early-exit detection: true when every stored off-diagonal cross block of
/// pivot t is entirely the semiring's annihilator (all-infinite under
/// (min, +)), i.e. block row/column t carries no path in or out and phases
/// 2/3 plus the frontier factor sweep are provably no-ops. The scan charges
/// like the element-wise kernel it is and runs identically on phantom blocks
/// (whose BlockAllZero() is false, so a phantom run charges the same
/// detection time but never skips). Routing through the semiring's IsZero —
/// instead of the historical hardwired isinf test — is what makes the skip
/// sound for boolean/max-times runs, whose annihilator is 0.0, not +inf: an
/// isinf scan there would claim a cross full of unreachable-0 entries is
/// live and silently forfeit every skip (or worse, skip on the wrong
/// predicate if the matrix were re-encoded).
bool PivotCrossAllZero(RddPtr<BlockRecord>& a, const BlockLayout& layout,
                       std::int64_t t, linalg::SemiringId semiring) {
  auto flags =
      a->Filter("ks-infscan-cross",
                [&layout, t](const BlockRecord& rec) {
                  return layout.InCross(rec.first, t) &&
                         !OnDiagonal(rec.first, t);
                })
          ->Map("ks-infscan",
                [semiring](const BlockRecord& rec,
                           TaskContext& tc) -> std::int64_t {
                  tc.ChargeCompute(
                      tc.cost_model().ElementwiseSeconds(rec.second->size()));
                  return linalg::BlockAllZero(*rec.second, semiring) ? 1 : 0;
                })
          ->Collect();
  for (const std::int64_t all_zero : flags) {
    if (all_zero == 0) return false;
  }
  return true;
}

/// Rebuilds A after a skipped pivot: only the closed diagonal changed.
RddPtr<BlockRecord> RebuildSkipped(sparklet::SparkletContext& ctx,
                                   RddPtr<BlockRecord> a,
                                   RddPtr<BlockRecord> diag,
                                   sparklet::PartitionerPtr<BlockKey> part,
                                   std::int64_t t, const std::string& prefix) {
  auto rest = a->Filter(prefix + "-rest",
                        [t](const BlockRecord& rec) {
                          return !OnDiagonal(rec.first, t);
                        });
  auto rebuilt = sparklet::PartitionBy(
                     ctx.Union(prefix + "-skip-union", {diag, rest}), part,
                     prefix + "-skip-repartition")
                     ->Persist();
  rebuilt->EnsureMaterialized();
  a->Unpersist();
  return rebuilt;
}

/// One pivot of the staged-storage (impure) sweep. `skip` = early exit.
void RunStagedPivot(sparklet::SparkletContext& ctx, const BlockLayout& layout,
                    std::int64_t t, const StagingKeys& keys,
                    sparklet::PartitionerPtr<BlockKey> block_part,
                    RddPtr<BlockRecord>& a, RddPtr<PanelRecord>& f,
                    bool skip) {
  const bool directed = layout.directed();

  // --- Phase 1: close the pivot diagonal and stage it.
  auto diag = a->Filter("ks-diag",
                        [t](const BlockRecord& rec) {
                          return OnDiagonal(rec.first, t);
                        })
                  ->Map("ks-fw",
                        [](const BlockRecord& rec, TaskContext& tc) {
                          return BlockRecord{rec.first,
                                             FloydWarshall(rec.second, tc)};
                        });
  for (const auto& [key, block] : diag->Collect()) {
    staging::StageBlock(ctx, keys.Diag(t), block);
  }

  // --- Pivot panel: P_t = min(F_t, A*_tt (min,+) F_t), staged for the
  // frontier sweep below.
  auto pivot_panel =
      f->Filter("ks-pivot",
                [t](const PanelRecord& rec) { return rec.first == t; })
          ->Map("ks-pivot-update",
                [t, keys](const PanelRecord& rec, TaskContext& tc) {
                  BlockCache cache;
                  BlockRef d = ReadStagedBlock(cache, keys.Diag(t), tc);
                  return PanelRecord{
                      rec.first, MinPlusRect(rec.second, d, rec.second, tc)};
                });
  for (const auto& [idx, panel] : pivot_panel->Collect()) {
    staging::StageBlock(ctx, keys.Panel(t), panel);
  }

  if (skip) {
    // Early exit: the cross is all-infinite, so phases 2/3 and the frontier
    // factor sweep are no-ops. Only panel t changed (through the closed
    // diagonal) and only the diagonal block of A changed.
    auto f_prev = f;
    f = f->Map("ks-frontier-skip",
               [t, keys](const PanelRecord& rec, TaskContext& tc) {
                 if (rec.first != t) return rec;
                 BlockCache cache;
                 return PanelRecord{
                     t, ReadStagedBlock(cache, keys.Panel(t), tc)};
               })
            ->Persist();
    f->EnsureMaterialized();
    f_prev->Unpersist();
    a = RebuildSkipped(ctx, a, diag, block_part, t, "ks");
    return;
  }

  // --- Phase 2: update the column/row cross of the matrix against the
  // staged diagonal and stage the oriented factors (Alg. 4 lines 5-7).
  auto rowcol =
      a->Filter("ks-rowcol",
                [&layout, t](const BlockRecord& rec) {
                  return layout.InCross(rec.first, t) &&
                         !OnDiagonal(rec.first, t);
                })
          ->MapPartitions<BlockRecord>(
              "ks-phase2",
              [t, keys](std::vector<BlockRecord>&& part, TaskContext& tc) {
                // Staged reads and charges stay sequential (TaskContext
                // is driver-thread state); the independent block updates
                // then run as one stealable intra-task batch.
                BlockCache cache;
                std::vector<FusedTriple> updates;
                updates.reserve(part.size());
                for (const auto& [key, block] : part) {
                  BlockRef d = ReadStagedBlock(cache, keys.Diag(t), tc);
                  updates.push_back(key.J == t
                                        ? FusedTriple{block, block, d}
                                        : FusedTriple{block, d, block});
                }
                auto blocks = MinPlusIntoBatch(std::move(updates), tc);
                std::vector<BlockRecord> out;
                out.reserve(part.size());
                for (std::size_t r = 0; r < part.size(); ++r) {
                  out.push_back({part[r].first, std::move(blocks[r])});
                }
                return out;
              });
  staging::StageCrossFactors(ctx, keys, t, rowcol->Collect(), directed);

  // --- Phase 3: remaining matrix blocks through the staged factors.
  auto offcol =
      a->Filter("ks-offcol",
                [&layout, t](const BlockRecord& rec) {
                  return !layout.InCross(rec.first, t);
                })
          ->MapPartitions<BlockRecord>(
              "ks-phase3",
              [t, directed, keys](std::vector<BlockRecord>&& part,
                                  TaskContext& tc) {
                BlockCache cache;
                std::vector<FusedTriple> updates;
                updates.reserve(part.size());
                for (const auto& [key, block] : part) {
                  auto [left, right] = ReadPhase3Factors(
                      keys, cache, t, key, directed, tc);
                  updates.push_back({block, left, right});
                }
                auto blocks = MinPlusIntoBatch(std::move(updates), tc);
                std::vector<BlockRecord> out;
                out.reserve(part.size());
                for (std::size_t r = 0; r < part.size(); ++r) {
                  out.push_back({part[r].first, std::move(blocks[r])});
                }
                return out;
              });

  // --- Frontier sweep: every panel through the pivot's column factors.
  // F_I = min(F_I, A_It (min,+) P_t); the pivot panel becomes P_t.
  auto f_prev = f;
  f = f->MapPartitions<PanelRecord>(
           "ks-frontier",
           [t, keys](std::vector<PanelRecord>&& part, TaskContext& tc) {
             BlockCache cache;
             std::vector<PanelRecord> out(part.size());
             std::vector<FusedTriple> updates;
             std::vector<std::size_t> slots;
             updates.reserve(part.size());
             slots.reserve(part.size());
             for (std::size_t r = 0; r < part.size(); ++r) {
               const auto& [idx, panel] = part[r];
               if (idx == t) {
                 out[r] = {idx,
                           ReadStagedBlock(cache, keys.Panel(t), tc)};
                 continue;
               }
               BlockRef left =
                   ReadStagedBlock(cache, keys.Left(t, idx), tc);
               BlockRef pivot =
                   ReadStagedBlock(cache, keys.Panel(t), tc);
               updates.push_back({panel, left, pivot});
               slots.push_back(r);
             }
             auto panels = MinPlusRectBatch(std::move(updates), tc);
             for (std::size_t p = 0; p < slots.size(); ++p) {
               out[slots[p]] = {part[slots[p]].first,
                                std::move(panels[p])};
             }
             return out;
           })
          ->Persist();
  f->EnsureMaterialized();
  f_prev->Unpersist();

  // --- Rebuild A for the next pivot (Alg. 4 lines 11-12).
  auto a_prev = a;
  a = sparklet::PartitionBy(
          ctx.Union("ks-union", {diag, rowcol, offcol}), block_part,
          "ks-repartition")
          ->Persist();
  a->EnsureMaterialized();
  a_prev->Unpersist();
}

/// One pivot of the pure shuffle-replicated sweep: the matrix phases run the
/// Blocked In-Memory combine steps, and the frontier factors replicate
/// through the shuffle (no shared-storage side channel). `skip` = early exit.
void RunShufflePivot(sparklet::SparkletContext& ctx, const BlockLayout& layout,
                     std::int64_t t,
                     sparklet::PartitionerPtr<BlockKey> block_part,
                     sparklet::PartitionerPtr<std::int64_t> panel_part,
                     RddPtr<BlockRecord>& a, RddPtr<PanelRecord>& f,
                     bool skip) {
  const std::int64_t q = layout.q();

  // --- Phase 1: close the pivot diagonal (narrow map; stays in lineage).
  auto diag = a->Filter("ksp-diag",
                        [t](const BlockRecord& rec) {
                          return OnDiagonal(rec.first, t);
                        })
                  ->Map("ksp-fw",
                        [](const BlockRecord& rec, TaskContext& tc) {
                          return BlockRecord{rec.first,
                                             FloydWarshall(rec.second, tc)};
                        });

  // --- Frontier round A: pair the closed diagonal with panel t through the
  // shuffle and form the pivot panel P_t = min(F_t, A*_tt (min,+) F_t).
  auto diag_to_panel = diag->Map(
      "ksp-diag-to-panel",
      [t](const BlockRecord& rec, TaskContext&) -> TaggedPanelRecord {
        return {t, {BlockRole::kDiag, rec.second}};
      });
  auto f_tagged =
      f->Map("ksp-f-tag",
             [](const PanelRecord& rec, TaskContext&) -> TaggedPanelRecord {
               return {rec.first, {BlockRole::kOriginal, rec.second}};
             });
  auto round_a = GatherLists(
      ctx.Union("ksp-round-a-union", {diag_to_panel, f_tagged}), panel_part,
      "ksp-round-a-combine");
  auto f_a = round_a
                 ->MapPartitions<PanelRecord>(
                     "ksp-pivot-update",
                     [](std::vector<PanelListRecord>&& part, TaskContext& tc) {
                       std::vector<PanelRecord> out;
                       out.reserve(part.size());
                       for (auto& [idx, list] : part) {
                         const BlockRef* panel =
                             FindRole(list, BlockRole::kOriginal);
                         if (panel == nullptr) {
                           throw std::logic_error(
                               "ksp round A: missing frontier panel");
                         }
                         const BlockRef* d = FindRole(list, BlockRole::kDiag);
                         out.push_back(
                             {idx, d == nullptr
                                       ? *panel
                                       : MinPlusRect(*panel, *d, *panel, tc)});
                       }
                       return out;
                     })
                 ->Persist();
  f_a->EnsureMaterialized();

  if (skip) {
    auto f_prev = f;
    f = f_a;
    f_prev->Unpersist();
    a = RebuildSkipped(ctx, a, diag, block_part, t, "ksp");
    return;
  }

  // --- Matrix phase 2 (Alg. 3 lines 6-10): diagonal copies meet the cross.
  auto diag_copies = diag->FlatMap<TaggedRecord>(
      "ksp-copydiag",
      [&layout, t](const BlockRecord& rec, TaskContext&,
                   std::vector<TaggedRecord>& out) {
        CopyDiag(layout, t, rec.second, out);
      });
  auto d0 = sparklet::PartitionBy(diag_copies, block_part, "ksp-copydiag-by");
  auto rowcol = TagOriginals(
      a->Filter("ksp-rowcol",
                [&layout, t](const BlockRecord& rec) {
                  return layout.InCross(rec.first, t);
                }),
      "ksp-rowcol-tag");
  auto paired = GatherLists(ctx.Union("ksp-phase2-union", {d0, rowcol}),
                                 block_part, "ksp-phase2-combine");
  auto updated_cross =
      paired
          ->MapPartitions<BlockRecord>(
              "ksp-phase2-unpack",
              [&layout, t](std::vector<ListRecord>&& part, TaskContext& tc) {
                return Phase2UnpackBatch(layout, t, std::move(part), tc);
              })
          ->Persist();  // consumed by CopyCol *and* the frontier factors
  updated_cross->EnsureMaterialized();

  // --- Matrix phase 3 (lines 12-15).
  auto cross_copies = updated_cross->FlatMap<TaggedRecord>(
      "ksp-copycol",
      [&layout, t](const BlockRecord& rec, TaskContext& tc,
                   std::vector<TaggedRecord>& out) {
        CopyCol(layout, t, rec, out, tc);
      });
  auto d = sparklet::PartitionBy(cross_copies, block_part, "ksp-copycol-by");
  auto rest = TagOriginals(
      a->Filter("ksp-offcol",
                [&layout, t](const BlockRecord& rec) {
                  return !layout.InCross(rec.first, t);
                }),
      "ksp-offcol-tag");
  auto phase3 = GatherLists(ctx.Union("ksp-phase3-union", {rest, d}),
                                 block_part, "ksp-phase3-combine");
  auto updated = phase3->MapPartitions<BlockRecord>(
      "ksp-phase3-unpack",
      [&layout, t](std::vector<ListRecord>&& part, TaskContext& tc) {
        return Phase3UnpackBatch(layout, t, std::move(part), tc);
      });

  // --- Frontier round B: replicate the per-panel left factors A_It (from
  // the phase-2-updated cross) and the pivot panel P_t to every panel, then
  // fold: F_I = min(F_I, A_It (min,+) P_t). All replicas are refs — the
  // shuffle moves modelled bytes, never payload copies.
  auto factor_copies = updated_cross->FlatMap<TaggedPanelRecord>(
      "ksp-factor-copies",
      [&layout, t](const BlockRecord& rec, TaskContext& tc,
                   std::vector<TaggedPanelRecord>& out) {
        const auto& [key, block] = rec;
        if (OnDiagonal(key, t)) return;  // panel t was handled in round A
        if (key.J == t) {
          out.push_back({key.I, {BlockRole::kRow, block}});  // A_xt stored
        } else if (!layout.directed()) {
          // Canonical (t, x) serves A_xt by transposition (executor-side,
          // like the paper's on-demand A_JI).
          out.push_back({key.J, {BlockRole::kRow, Transpose(block, tc)}});
        }
        // Directed row blocks (t, x) are right factors only; the frontier
        // needs just the left side.
      });
  auto pivot_copies =
      f_a->Filter("ksp-pivot-sel",
                  [t](const PanelRecord& rec) { return rec.first == t; })
          ->FlatMap<TaggedPanelRecord>(
              "ksp-pivot-bcast",
              [q, t](const PanelRecord& rec, TaskContext&,
                     std::vector<TaggedPanelRecord>& out) {
                for (std::int64_t i = 0; i < q; ++i) {
                  if (i == t) continue;
                  out.push_back({i, {BlockRole::kCol, rec.second}});
                }
              });
  auto fa_tagged = f_a->Map(
      "ksp-fa-tag",
      [](const PanelRecord& rec, TaskContext&) -> TaggedPanelRecord {
        return {rec.first, {BlockRole::kOriginal, rec.second}};
      });
  auto round_b = GatherLists(
      ctx.Union("ksp-round-b-union", {fa_tagged, pivot_copies, factor_copies}),
      panel_part, "ksp-round-b-combine");
  auto f_b =
      round_b
          ->MapPartitions<PanelRecord>(
              "ksp-frontier-update",
              [t](std::vector<PanelListRecord>&& part, TaskContext& tc) {
                std::vector<PanelRecord> out(part.size());
                std::vector<FusedTriple> updates;
                std::vector<std::size_t> slots;
                updates.reserve(part.size());
                slots.reserve(part.size());
                for (std::size_t r = 0; r < part.size(); ++r) {
                  auto& [idx, list] = part[r];
                  const BlockRef* panel =
                      FindRole(list, BlockRole::kOriginal);
                  if (panel == nullptr) {
                    throw std::logic_error(
                        "ksp round B: missing frontier panel");
                  }
                  if (idx == t) {
                    out[r] = {idx, *panel};  // P_t passes through unchanged
                    continue;
                  }
                  const BlockRef* left = FindRole(list, BlockRole::kRow);
                  const BlockRef* pivot = FindRole(list, BlockRole::kCol);
                  if (left == nullptr || pivot == nullptr) {
                    // Every non-pivot panel receives exactly one A_It and
                    // one P_t replica by construction; a silent passthrough
                    // here would return wrong distances with status OK.
                    throw std::logic_error(
                        "ksp round B: missing factor for panel " +
                        std::to_string(idx));
                  }
                  updates.push_back({*panel, *left, *pivot});
                  slots.push_back(r);
                }
                auto panels = MinPlusRectBatch(std::move(updates), tc);
                for (std::size_t p = 0; p < slots.size(); ++p) {
                  out[slots[p]] = {part[slots[p]].first,
                                   std::move(panels[p])};
                }
                return out;
              })
          ->Persist();
  f_b->EnsureMaterialized();
  auto f_prev = f;
  f = f_b;
  f_prev->Unpersist();
  f_a->Unpersist();

  // --- Rebuild A for the next pivot (line 15's explicit partitionBy).
  auto a_prev = a;
  a = sparklet::PartitionBy(updated, block_part, "ksp-repartition")
          ->Persist();
  a->EnsureMaterialized();
  a_prev->Unpersist();
  updated_cross->Unpersist();
}

}  // namespace

KsourceResult KsourceBlockedSolver::Solve(
    sparklet::SparkletContext& ctx, const BlockLayout& layout,
    const std::vector<BlockRecord>& blocks,
    const std::vector<PanelRecord>& frontier, const KsourceOptions& opts) {
  // Host kernel selection for this run, exactly like ApspSolver::Solve.
  linalg::ScopedKernelVariant kernel_scope(ctx.config().kernel_variant);
  // Pin the run's algebra: the fused rectangular updates and closures this
  // sweep reaches all evaluate opts.semiring.
  linalg::ScopedSemiring semiring_scope(opts.semiring);
  KsourceResult result;
  const std::int64_t q = layout.q();
  result.rounds_total = q;
  const std::int64_t rounds_to_run =
      opts.max_rounds > 0 ? std::min(opts.max_rounds, q) : q;

  const int num_partitions =
      std::max(1, opts.partitions_per_core * ctx.config().total_cores());
  auto block_part =
      MakeBlockPartitioner(opts.partitioner, layout, num_partitions);
  auto panel_part = sparklet::MakePortableHash<std::int64_t>(
      std::min<int>(num_partitions, static_cast<int>(q)));

  auto a = ctx.ParallelizePartitioned("ksA", blocks, block_part);
  auto f = ctx.ParallelizePartitioned("ksF", frontier, panel_part);
  // Populating the RDDs is free, consistent with the APSP solvers.
  ctx.cluster().Reset();
  // Arm injected executor losses; stage ordinals count from this Reset.
  for (const auto& plan : opts.fail_nodes) {
    ctx.fault_injector().FailNode(plan.node, plan.at_stage);
  }
  for (const auto& plan : opts.fail_racks) {
    ctx.fault_injector().FailRack(plan.rack, plan.at_stage);
  }
  for (const std::int64_t at_stage : opts.add_nodes) {
    ctx.fault_injector().AddNode(at_stage);
  }
  ctx.cluster().NoteDurableMark();
  const StagingKeys keys("ks");

  // Real-data full sweeps end with the driver assembling the n x k panel;
  // the collect runs inside the attempt loop so an executor loss firing
  // during assembly goes through the same recovery as one mid-sweep.
  const bool phantom =
      !frontier.empty() && frontier.front().second->is_phantom();
  const bool want_assembly = !phantom && rounds_to_run == q;

  std::vector<PanelRecord> assembled;
  std::int64_t first = 0;
  int restarts = 0;
  for (;;) {
    try {
      for (std::int64_t t = first; t < rounds_to_run; ++t) {
        RoundSpanScope round_span(ctx.cluster(), t);
        const bool skip = opts.early_exit_infinite &&
                          PivotCrossAllZero(a, layout, t, opts.semiring);
        if (opts.variant == KsourceVariant::kShuffleReplicated) {
          RunShufflePivot(ctx, layout, t, block_part, panel_part, a, f, skip);
        } else {
          RunStagedPivot(ctx, layout, t, keys, block_part, a, f, skip);
        }
        result.rounds_executed = t + 1;
        if (opts.checkpoint_every > 0 &&
            (t + 1) % opts.checkpoint_every == 0) {
          SaveCheckpoint(ctx, layout, a->Collect(), t + 1, f->Collect());
        }
      }
      // Timing and metrics stay pivots-only (the projection methodology);
      // the assembly collect below is excluded — except its memory high
      // water (the pure variant's only driver-resident spike) and any
      // failure/recovery evidence, both folded in after the collect. The
      // collect still runs in this try block so an executor loss firing
      // during assembly recovers like any other.
      result.sim_seconds = ctx.now_seconds();
      result.metrics = ctx.metrics();
      if (want_assembly) {
        assembled = f->Collect();
        result.metrics.driver_peak_bytes = ctx.metrics().driver_peak_bytes;
        result.metrics.node_peak_bytes = ctx.metrics().node_peak_bytes;
        FoldRecoveryMetrics(ctx.metrics(), result.metrics);
      }
      result.status = Status::Ok();
      break;
    } catch (const SparkletAbort& abort) {
      // DATA_LOSS: an executor loss destroyed state the staged (impure)
      // plane cannot replay through lineage. Restart from the latest
      // checkpoint epoch (or from the stable inputs), accounting the lost
      // progress as recovery. The pure shuffle variant recovers in place
      // and never raises it.
      if (abort.status().code() != StatusCode::kDataLoss ||
          restarts >= opts.max_restarts) {
        result.status = abort.status();
        break;
      }
      ++restarts;
      const std::string tag = "#restart" + std::to_string(restarts);
      auto resume = RestartFromCheckpoint(
          ctx, layout, /*fallback_round=*/0,
          [&](const CheckpointInfo* info) {
            a = ctx.ParallelizePartitioned(
                "ksA" + tag, info != nullptr ? info->blocks : blocks,
                block_part);
            f = ctx.ParallelizePartitioned(
                "ksF" + tag, info != nullptr ? info->panels : frontier,
                panel_part);
          });
      if (!resume.ok()) {
        result.status = resume.status();
        break;
      }
      first = *resume;
    }
  }

  if (!result.status.ok()) {
    result.sim_seconds = ctx.now_seconds();
    result.metrics = ctx.metrics();
  }
  if (result.rounds_executed > 0) {
    result.projected_seconds =
        result.sim_seconds * static_cast<double>(q) /
        static_cast<double>(result.rounds_executed);
  }

  if (result.status.ok() && want_assembly) {
    const std::int64_t k =
        assembled.empty() ? 0 : assembled.front().second->cols();
    // Every row is pasted below; fill with the semiring Zero anyway so a
    // would-be gap reads as "unreachable", not as a min-plus artifact.
    DenseBlock out(layout.n(), k, linalg::SemiringZeroValue(opts.semiring));
    for (const auto& [idx, panel] : assembled) {
      out.PasteRowPanel(idx * layout.block_size(), *panel);
    }
    result.distances = std::move(out);
  }
  return result;
}

}  // namespace apspark::apsp
