#include "apsp/solvers/blocked_inmemory.h"

#include "apsp/building_blocks.h"
#include "apsp/combine_steps.h"

namespace apspark::apsp {

using sparklet::RddPtr;
using sparklet::TaskContext;

RddPtr<BlockRecord> BlockedInMemorySolver::RunRounds(
    sparklet::SparkletContext& ctx, const BlockLayout& layout,
    RddPtr<BlockRecord> a, sparklet::PartitionerPtr<BlockKey> partitioner,
    const ApspOptions& opts, std::int64_t rounds_to_run) {
  RddPtr<BlockRecord> current = std::move(a);
  const std::int64_t first = opts.start_round;

  for (std::int64_t i = first; i < first + rounds_to_run; ++i) {
    RoundSpanScope round_span(ctx.cluster(), i);
    // --- Phase 1 (Alg. 3 lines 2-4): close the diagonal block and scatter
    // copies of it to the column/row cross via a custom-partitioned shuffle.
    auto diag = current
                    ->Filter("im-diag",
                             [i](const BlockRecord& rec) {
                               return OnDiagonal(rec.first, i);
                             })
                    ->Map("im-fw", [](const BlockRecord& rec, TaskContext& tc) {
                      return BlockRecord{rec.first,
                                         FloydWarshall(rec.second, tc)};
                    });
    auto diag_copies = diag->FlatMap<TaggedRecord>(
        "im-copydiag",
        [&layout, i](const BlockRecord& rec, TaskContext&,
                     std::vector<TaggedRecord>& out) {
          CopyDiag(layout, i, rec.second, out);
        });
    auto d0 = sparklet::PartitionBy(diag_copies, partitioner, "im-copydiag-by");

    // --- Phase 2 (lines 6-10): pair cross blocks with the diagonal copy,
    // update them, then scatter the CopyCol replicas for Phase 3.
    auto rowcol = TagOriginals(
        current->Filter("im-rowcol",
                        [&layout, i](const BlockRecord& rec) {
                          return layout.InCross(rec.first, i);
                        }),
        "im-rowcol-tag");
    auto paired = GatherLists(
        ctx.Union("im-phase2-union", {d0, rowcol}), partitioner,
        "im-phase2-combine");
    // Partition-at-a-time unpack: the fused per-block updates fan out on the
    // host thread pool (modelled task time is charged identically).
    auto updated_cross = paired->MapPartitions<BlockRecord>(
        "im-phase2-unpack",
        [&layout, i](std::vector<ListRecord>&& part, TaskContext& tc) {
          return Phase2UnpackBatch(layout, i, std::move(part), tc);
        });
    auto cross_copies = updated_cross->FlatMap<TaggedRecord>(
        "im-copycol",
        [&layout, i](const BlockRecord& rec, TaskContext& tc,
                     std::vector<TaggedRecord>& out) {
          CopyCol(layout, i, rec, out, tc);
        });
    auto d = sparklet::PartitionBy(cross_copies, partitioner, "im-copycol-by");

    // --- Phase 3 (lines 12-15): update all remaining blocks and rebuild A.
    auto rest = TagOriginals(
        current->Filter("im-offcol",
                        [&layout, i](const BlockRecord& rec) {
                          return !layout.InCross(rec.first, i);
                        }),
        "im-offcol-tag");
    auto phase3 = GatherLists(ctx.Union("im-phase3-union", {rest, d}),
                              partitioner, "im-phase3-combine");
    auto updated = phase3->MapPartitions<BlockRecord>(
        "im-phase3-unpack",
        [&layout, i](std::vector<ListRecord>&& part, TaskContext& tc) {
          return Phase3UnpackBatch(layout, i, std::move(part), tc);
        });
    // Line 15's explicit partitionBy: pySpark cannot recognise the fresh
    // partitioner object as equal to the previous one, so this repartition
    // always shuffles — the cost the paper attributes the storage blow-up
    // to (§5.2).
    auto prev = current;
    current = sparklet::PartitionBy(updated, partitioner, "im-repartition")
                  ->Persist();
    current->EnsureMaterialized();
    prev->Unpersist();
  }
  return current;
}

}  // namespace apspark::apsp
