// Shared staging machinery of the impure solvers.
//
// Blocked Collect/Broadcast (Alg. 4) and the batched k-source solver move
// pivot data between stages through shared persistent storage rather than
// the shuffle: the driver collects and stages the closed diagonal block and
// the updated cross factors of each pivot, and executors read them back
// inside map tasks (with per-task caching, the way the paper's executors
// cache deserialized column blocks). This header is the single home of that
// protocol — key scheme, driver-side writes, executor-side cached reads, and
// the oriented factor staging with its undirected-transpose derivation — so
// the two solvers cannot drift apart.
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apsp/block_key.h"
#include "apsp/building_blocks.h"
#include "common/serial.h"
#include "sparklet/rdd.h"

namespace apspark::apsp::staging {

/// Shared-storage key scheme of one solver's pivot staging. The per-solver
/// prefix ("cb", "ks", ...) keeps two staged solves in one context apart.
class StagingKeys {
 public:
  explicit StagingKeys(std::string prefix) : prefix_(std::move(prefix)) {}

  std::string Diag(std::int64_t t) const {
    return prefix_ + "/" + std::to_string(t) + "/diag";
  }
  /// Left factor A_xt of pivot t (the row side of a phase-3 update).
  std::string Left(std::int64_t t, std::int64_t x) const {
    return prefix_ + "/" + std::to_string(t) + "/L/" + std::to_string(x);
  }
  /// Right factor A_tx of pivot t (the column side).
  std::string Right(std::int64_t t, std::int64_t x) const {
    return prefix_ + "/" + std::to_string(t) + "/R/" + std::to_string(x);
  }
  /// K-source pivot frontier panel P_t.
  std::string Panel(std::int64_t t) const {
    return prefix_ + "/" + std::to_string(t) + "/panel";
  }

 private:
  std::string prefix_;
};

/// Driver-side write of a block ref to shared persistent storage: charges
/// shared-FS time for the full logical bytes, but stores the immutable ref
/// itself — the zero-copy path (no host-side serialization; phantom blocks
/// carry no payload yet still account full size).
inline void StageBlock(sparklet::SparkletContext& ctx, const std::string& key,
                       linalg::BlockRef block) {
  ctx.DriverWriteSharedBlock(key, std::move(block));
}

/// Per-task cache of staged block refs (models the paper's executors
/// caching deserialized column blocks; here the cache saves the modelled
/// re-read charge, not a host-side copy).
using BlockCache = std::unordered_map<std::string, linalg::BlockRef>;

/// Executor-side read with caching; aborts the task when the key is missing
/// (a lost side channel — the impurity the paper flags). Returns the shared
/// immutable ref; no deserialization copy is made.
inline linalg::BlockRef ReadStagedBlock(BlockCache& cache,
                                        const std::string& key,
                                        sparklet::TaskContext& tc) {
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  auto block = tc.ReadSharedBlock(key);
  if (!block.ok()) throw sparklet::SparkletAbort(block.status());
  cache.emplace(key, *block);
  return *block;
}

/// Stages the oriented phase-3 factors of pivot t from the collected,
/// phase-2-updated cross blocks (diagonal excluded): stored (x, t) provides
/// the left factor A_xt, stored (t, x) the right factor A_tx. Undirected
/// storage keeps only the canonical block, so the missing left side is
/// derived by transposition (driver-side, like the paper's on-demand A_JI).
inline void StageCrossFactors(sparklet::SparkletContext& ctx,
                              const StagingKeys& keys, std::int64_t t,
                              const std::vector<BlockRecord>& cross,
                              bool directed) {
  for (const auto& [key, block] : cross) {
    const std::int64_t x = key.I == t ? key.J : key.I;
    if (key.J == t) {
      StageBlock(ctx, keys.Left(t, x), block);
      if (!directed) continue;
    } else {
      StageBlock(ctx, keys.Right(t, x), block);
      if (!directed) {
        StageBlock(ctx, keys.Left(t, x), block->Transposed());
      }
    }
  }
}

/// Reads the (left, right) = (A_Ut, A_tV) factor pair a phase-3 update of
/// target `key` needs. Undirected layouts stage only left factors beyond
/// the canonical cross, so the right side is reconstructed by transposing
/// the left factor of key.J (cached under the right key, charged like any
/// transpose).
inline std::pair<linalg::BlockRef, linalg::BlockRef> ReadPhase3Factors(
    const StagingKeys& keys, BlockCache& cache, std::int64_t t,
    const BlockKey& key, bool directed, sparklet::TaskContext& tc) {
  linalg::BlockRef left = ReadStagedBlock(cache, keys.Left(t, key.I), tc);
  if (directed) {
    return {left, ReadStagedBlock(cache, keys.Right(t, key.J), tc)};
  }
  const std::string tkey = keys.Right(t, key.J);
  auto it = cache.find(tkey);
  if (it != cache.end()) return {left, it->second};
  linalg::BlockRef right =
      Transpose(ReadStagedBlock(cache, keys.Left(t, key.J), tc), tc);
  cache.emplace(tkey, right);
  return {left, right};
}

}  // namespace apspark::apsp::staging
