#include "apsp/solvers/floyd_warshall_2d.h"

#include <memory>

#include "apsp/building_blocks.h"

namespace apspark::apsp {

using linalg::BlockRef;
using sparklet::RddPtr;
using sparklet::TaskContext;

RddPtr<BlockRecord> FloydWarshall2dSolver::RunRounds(
    sparklet::SparkletContext& ctx, const BlockLayout& layout,
    RddPtr<BlockRecord> a, sparklet::PartitionerPtr<BlockKey> partitioner,
    const ApspOptions& opts, std::int64_t rounds_to_run) {
  (void)partitioner;
  RddPtr<BlockRecord> current = std::move(a);
  const auto q = static_cast<std::size_t>(layout.q());
  const std::int64_t first = opts.start_round;

  for (std::int64_t k = first; k < first + rounds_to_run; ++k) {
    RoundSpanScope round_span(ctx.cluster(), k);
    const std::int64_t big_k = k / layout.block_size();

    // Lines 5-6: identify the blocks holding column k, extract the column
    // segments, and aggregate them on the driver.
    auto segments =
        current
            ->Filter("fw2d-col",
                     [&layout, big_k](const BlockRecord& rec) {
                       return InColumn(layout, rec.first, big_k);
                     })
            ->Map("fw2d-extract",
                  [&layout, k](const BlockRecord& rec, TaskContext& tc) {
                    return ExtractColSegment(layout, rec, k, tc);
                  })
            ->Collect();

    // Line 8: broadcast column k ("the memory footprint of a column is very
    // small, the operation can be performed without persistent storage").
    auto column = std::make_shared<std::vector<BlockRef>>(q);
    for (auto& [row_block, segment] : segments) {
      (*column)[static_cast<std::size_t>(row_block)] = segment;
    }
    ctx.Broadcast(static_cast<std::uint64_t>(layout.n()) * sizeof(double));

    // Directed graphs cannot exploit symmetry: extract and broadcast global
    // row k as well (the paper's §4 note on adapting to digraphs).
    auto row = column;
    if (layout.directed()) {
      auto row_segments =
          current
              ->Filter("fw2d-row",
                       [big_k](const BlockRecord& rec) {
                         return rec.first.I == big_k;
                       })
              ->Map("fw2d-extract-row",
                    [&layout, k](const BlockRecord& rec, TaskContext& tc) {
                      return ExtractRowSegment(layout, rec, k, tc);
                    })
              ->Collect();
      row = std::make_shared<std::vector<BlockRef>>(q);
      for (auto& [col_block, segment] : row_segments) {
        (*row)[static_cast<std::size_t>(col_block)] = segment;
      }
      ctx.Broadcast(static_cast<std::uint64_t>(layout.n()) * sizeof(double));
    }

    // Line 10: the Floyd-Warshall update phase — a pure narrow map, executed
    // partition-at-a-time so one task's independent outer-sum updates are
    // charged through the intra-task schedule and fanned out as stealable
    // tasks on the host pool.
    current =
        current
            ->MapPartitions<BlockRecord>(
                "fw2d-update",
                [column, row](std::vector<BlockRecord>&& part,
                              TaskContext& tc) {
                  return FloydWarshallUpdateBatch(std::move(part), *column,
                                                 *row, tc);
                })
            ->Persist();
    current->EnsureMaterialized();
  }
  return current;
}

}  // namespace apspark::apsp
