// Batched k-source shortest paths (KSSP) on the kernel registry.
//
// The paper's building blocks solve APSP; the same blocked min-plus algebra
// solves the far more common k-source problem as a rectangular n x k
// frontier F, F(v, j) = dist(sources[j] -> v). The solver sweeps the blocked
// Floyd-Warshall pivots of A exactly like Algorithm 4 (collect/broadcast)
// and, per pivot t, folds the pivot's column factors into a *resident*
// frontier with two rectangular updates:
//
//   P_t  = min(F_t, A*_tt (min,+) F_t)        (pivot panel through the
//                                              closed diagonal)
//   F_I  = min(F_I, A_It  (min,+) P_t)        (every panel through the
//                                              phase-2-updated column cross)
//
// Invariant (same induction as blocked FW): after pivot t, F(v, j) is the
// shortest v -> sources[j] distance using intermediates from block rows
// 0..t; after the last pivot F = A* (min,+) F_0 exactly. Directed inputs
// are swept on the transposed adjacency so columns come out source-rooted.
//
// Two data-movement variants implement the sweep:
//
//   kStagedStorage (default) — like Blocked-CB, impure: pivot blocks, column
//   factors, and the pivot panel travel through shared persistent storage.
//
//   kShuffleReplicated — *pure*: no shared-storage side channel at all. The
//   matrix phases run the Blocked In-Memory combine steps (CopyDiag /
//   Phase2 / CopyCol / Phase3 through custom-partitioned shuffles), and the
//   frontier factors replicate through the shuffle too: round A pairs the
//   closed diagonal with panel t to form P_t, round B scatters P_t plus the
//   per-panel left factors A_It to every panel and folds them in with one
//   rectangular update. Fault-tolerant by construction (everything stays in
//   the RDD lineage) at the price of shuffling the replicas — with the
//   zero-copy record plane, the replicas are refs, so the driver's live-byte
//   high water stays at the final panel collect instead of a full cross per
//   pivot (see MemoryAccountant).
//
// Early-exit pivot sweep: when a pivot's cross (every stored off-diagonal
// block of block row/column t) is entirely the semiring's annihilator —
// all-infinite under (min, +), routine for disconnected or inf-heavy graphs
// — phases 2/3 and the frontier factor sweep are provably no-ops and are
// skipped; only the diagonal closure and the pivot-panel update run.
// Detection scans the cross blocks through the semiring's IsZero (charged
// like the element-wise kernel it is) and never fires for phantom blocks,
// whose structure is unknown.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apsp/block_key.h"
#include "apsp/block_layout.h"
#include "apsp/partitioners.h"
#include "apsp/run_plan.h"
#include "graph/graph.h"
#include "linalg/cost_model.h"
#include "linalg/kernel_registry.h"
#include "sparklet/rdd.h"

namespace apspark::apsp {

/// How pivot data moves between stages of the KSSP sweep (see file comment).
enum class KsourceVariant {
  kStagedStorage,
  kShuffleReplicated,
};

const char* KsourceVariantName(KsourceVariant variant) noexcept;
std::optional<KsourceVariant> ParseKsourceVariant(std::string_view name);

/// The durability/fault/membership knobs live in the RunPlan base (shared
/// with ApspOptions — see apsp/run_plan.h).
struct KsourceOptions : RunPlan {
  /// Decomposition parameter b; q = ceil(n/b).
  std::int64_t block_size = 256;
  /// Semiring the sweep evaluates (see linalg/semiring.h). SolveGraph
  /// converts the canonical min-plus adjacency into this algebra's matrix
  /// and builds the frontier from the semiring's Zero/One. KSSP panels stay
  /// dense even for boolean (the rectangular frontier mixes with matrix
  /// blocks every pivot; bit-packing is the square solvers' plane).
  linalg::SemiringId semiring = linalg::SemiringId::kMinPlus;
  PartitionerKind partitioner = PartitionerKind::kMultiDiagonal;
  /// Spark's over-decomposition factor B: RDD partitions per core.
  int partitions_per_core = 2;
  /// 0 = sweep all q pivots. Otherwise run this many pivots and project the
  /// total (paper-scale model runs, same methodology as ApspOptions).
  std::int64_t max_rounds = 0;
  bool directed = false;
  /// Data-movement variant (CLI: --ksource-variant staged|shuffle).
  KsourceVariant variant = KsourceVariant::kStagedStorage;
  /// Early-exit pivot sweep for annihilator-heavy graphs (see file
  /// comment); the test is the semiring's IsZero, not a hardwired isinf.
  /// The detection scan charges identically on real and phantom runs; only
  /// real runs can actually skip, so disable this when comparing a
  /// disconnected real run against its phantom projection
  /// second-for-second.
  bool early_exit_infinite = true;
};

struct KsourceResult {
  Status status;

  /// n x k distance panel (real-data runs only): distances->At(v, j) is the
  /// length of the shortest path from sources[j] to vertex v (+inf if
  /// unreachable).
  std::optional<linalg::DenseBlock> distances;

  sparklet::SimMetrics metrics;
  double sim_seconds = 0;  // modelled cluster time of the executed pivots
  std::int64_t rounds_executed = 0;
  std::int64_t rounds_total = 0;  // == q
  /// sim_seconds scaled to all pivots (equals sim_seconds for full sweeps).
  double projected_seconds = 0;
};

/// Blocked k-source solver over the sparklet engine. Reuses the registry
/// kernel variant selected by ClusterConfig::kernel_variant, so the same
/// naive / tiled / tiled_parallel selection that drives APSP drives KSSP.
class KsourceBlockedSolver {
 public:
  std::string name() const { return "Ksource-Blocked"; }
  /// Whether a variant relies only on fault-tolerant Spark functionality.
  /// kStagedStorage stages pivot data outside the RDD lineage (impure, like
  /// Blocked Collect/Broadcast); kShuffleReplicated keeps everything in it.
  static bool Pure(KsourceVariant variant) noexcept {
    return variant == KsourceVariant::kShuffleReplicated;
  }
  /// The default variant's purity (kStagedStorage: impure).
  bool pure() const noexcept { return Pure(KsourceVariant::kStagedStorage); }

  /// Full-fidelity run on real data. `sources` must be non-empty vertex ids
  /// of `graph`; duplicates are allowed (k may exceed n).
  KsourceResult SolveGraph(const graph::Graph& graph,
                           const std::vector<graph::VertexId>& sources,
                           const KsourceOptions& opts,
                           const sparklet::ClusterConfig& cluster,
                           const linalg::CostModel& model = {});

  /// Paper-scale model run on phantom blocks and panels: executes the whole
  /// control path (staging, shuffles, storage accounting) without payloads.
  KsourceResult SolveModel(std::int64_t n, std::int64_t num_sources,
                           const KsourceOptions& opts,
                           const sparklet::ClusterConfig& cluster,
                           const linalg::CostModel& model = {});

  /// Core loop on a caller-owned context (exposed for engine-level tests).
  /// `frontier` holds one PanelRecord per block row of `layout`.
  KsourceResult Solve(sparklet::SparkletContext& ctx,
                      const BlockLayout& layout,
                      const std::vector<BlockRecord>& blocks,
                      const std::vector<PanelRecord>& frontier,
                      const KsourceOptions& opts);
};

/// Decomposes a full n x k frontier into per-block-row panel records for
/// `layout` (the inverse of the assembly KsourceResult performs).
std::vector<PanelRecord> DecomposeFrontier(const BlockLayout& layout,
                                           const linalg::DenseBlock& frontier);

}  // namespace apspark::apsp
