// Batched k-source shortest paths (KSSP) on the kernel registry.
//
// The paper's building blocks solve APSP; the same blocked min-plus algebra
// solves the far more common k-source problem as a rectangular n x k
// frontier F, F(v, j) = dist(sources[j] -> v). The solver sweeps the blocked
// Floyd-Warshall pivots of A exactly like Algorithm 4 (collect/broadcast)
// and, per pivot t, folds the pivot's column factors into a *resident*
// frontier with two rectangular updates:
//
//   P_t  = min(F_t, A*_tt (min,+) F_t)        (pivot panel through the
//                                              closed diagonal)
//   F_I  = min(F_I, A_It  (min,+) P_t)        (every panel through the
//                                              phase-2-updated column cross)
//
// Invariant (same induction as blocked FW): after pivot t, F(v, j) is the
// shortest v -> sources[j] distance using intermediates from block rows
// 0..t; after the last pivot F = A* (min,+) F_0 exactly. Directed inputs
// are swept on the transposed adjacency so columns come out source-rooted.
//
// Like Blocked-CB the solver is impure: pivot blocks, column factors, and
// the pivot panel travel through shared persistent storage, and every
// kernel/transfer charges the calibrated cost model.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apsp/block_key.h"
#include "apsp/block_layout.h"
#include "apsp/partitioners.h"
#include "graph/graph.h"
#include "linalg/cost_model.h"
#include "sparklet/rdd.h"

namespace apspark::apsp {

struct KsourceOptions {
  /// Decomposition parameter b; q = ceil(n/b).
  std::int64_t block_size = 256;
  PartitionerKind partitioner = PartitionerKind::kMultiDiagonal;
  /// Spark's over-decomposition factor B: RDD partitions per core.
  int partitions_per_core = 2;
  /// 0 = sweep all q pivots. Otherwise run this many pivots and project the
  /// total (paper-scale model runs, same methodology as ApspOptions).
  std::int64_t max_rounds = 0;
  bool directed = false;
};

struct KsourceResult {
  Status status;

  /// n x k distance panel (real-data runs only): distances->At(v, j) is the
  /// length of the shortest path from sources[j] to vertex v (+inf if
  /// unreachable).
  std::optional<linalg::DenseBlock> distances;

  sparklet::SimMetrics metrics;
  double sim_seconds = 0;  // modelled cluster time of the executed pivots
  std::int64_t rounds_executed = 0;
  std::int64_t rounds_total = 0;  // == q
  /// sim_seconds scaled to all pivots (equals sim_seconds for full sweeps).
  double projected_seconds = 0;
};

/// Blocked k-source solver over the sparklet engine. Reuses the registry
/// kernel variant selected by ClusterConfig::kernel_variant, so the same
/// naive / tiled / tiled_parallel selection that drives APSP drives KSSP.
class KsourceBlockedSolver {
 public:
  std::string name() const { return "Ksource-Blocked"; }
  /// Impure in the paper's sense: stages pivot data in shared persistent
  /// storage outside the RDD lineage, like Blocked Collect/Broadcast.
  bool pure() const noexcept { return false; }

  /// Full-fidelity run on real data. `sources` must be non-empty vertex ids
  /// of `graph`; duplicates are allowed (k may exceed n).
  KsourceResult SolveGraph(const graph::Graph& graph,
                           const std::vector<graph::VertexId>& sources,
                           const KsourceOptions& opts,
                           const sparklet::ClusterConfig& cluster,
                           const linalg::CostModel& model = {});

  /// Paper-scale model run on phantom blocks and panels: executes the whole
  /// control path (staging, shuffles, storage accounting) without payloads.
  KsourceResult SolveModel(std::int64_t n, std::int64_t num_sources,
                           const KsourceOptions& opts,
                           const sparklet::ClusterConfig& cluster,
                           const linalg::CostModel& model = {});

  /// Core loop on a caller-owned context (exposed for engine-level tests).
  /// `frontier` holds one PanelRecord per block row of `layout`.
  KsourceResult Solve(sparklet::SparkletContext& ctx,
                      const BlockLayout& layout,
                      const std::vector<BlockRecord>& blocks,
                      const std::vector<PanelRecord>& frontier,
                      const KsourceOptions& opts);
};

/// Decomposes a full n x k frontier into per-block-row panel records for
/// `layout` (the inverse of the assembly KsourceResult performs).
std::vector<PanelRecord> DecomposeFrontier(const BlockLayout& layout,
                                           const linalg::DenseBlock& frontier);

}  // namespace apspark::apsp
