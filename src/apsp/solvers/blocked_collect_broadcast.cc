#include "apsp/solvers/blocked_collect_broadcast.h"

#include "apsp/building_blocks.h"
#include "apsp/checkpoint.h"
#include "apsp/solvers/staging.h"

namespace apspark::apsp {

using linalg::BlockRef;
using sparklet::RddPtr;
using sparklet::TaskContext;
using staging::BlockCache;
using staging::ReadPhase3Factors;
using staging::ReadStagedBlock;
using staging::StagingKeys;

RddPtr<BlockRecord> BlockedCollectBroadcastSolver::RunRounds(
    sparklet::SparkletContext& ctx, const BlockLayout& layout,
    RddPtr<BlockRecord> a, sparklet::PartitionerPtr<BlockKey> partitioner,
    const ApspOptions& opts, std::int64_t rounds_to_run) {
  RddPtr<BlockRecord> current = std::move(a);
  const bool directed = layout.directed();
  const std::int64_t first = opts.start_round;
  const StagingKeys keys("cb");

  for (std::int64_t i = first; i < first + rounds_to_run; ++i) {
    RoundSpanScope round_span(ctx.cluster(), i);
    // --- Phase 1 (Alg. 4 lines 2-3): close the diagonal block, bring it to
    // the driver, and redistribute via shared persistent storage.
    auto diag = current
                    ->Filter("cb-diag",
                             [i](const BlockRecord& rec) {
                               return OnDiagonal(rec.first, i);
                             })
                    ->Map("cb-fw", [](const BlockRecord& rec, TaskContext& tc) {
                      return BlockRecord{rec.first,
                                         FloydWarshall(rec.second, tc)};
                    });
    for (const auto& [key, block] : diag->Collect()) {
      staging::StageBlock(ctx, keys.Diag(i), block);
    }

    // --- Phase 2 (line 5): update the cross blocks against the staged
    // diagonal (MinPlus with the second argument from Spark storage).
    auto rowcol = current
                      ->Filter("cb-rowcol",
                               [&layout, i](const BlockRecord& rec) {
                                 return layout.InCross(rec.first, i) &&
                                        !OnDiagonal(rec.first, i);
                               })
                      ->MapPartitions<BlockRecord>(
                          "cb-phase2",
                          [i, keys](std::vector<BlockRecord>&& part,
                                    TaskContext& tc) {
                            // One task's independent cross updates become one
                            // stealable batch; the fused form charges exactly
                            // the MatProd + MatMin pair it replaces.
                            BlockCache cache;
                            std::vector<FusedTriple> updates;
                            updates.reserve(part.size());
                            for (const auto& [key, block] : part) {
                              BlockRef d =
                                  ReadStagedBlock(cache, keys.Diag(i), tc);
                              updates.push_back(
                                  key.J == i ? FusedTriple{block, block, d}
                                             : FusedTriple{block, d, block});
                            }
                            auto blocks =
                                MinPlusIntoBatch(std::move(updates), tc);
                            std::vector<BlockRecord> out;
                            out.reserve(part.size());
                            for (std::size_t r = 0; r < part.size(); ++r) {
                              out.push_back(
                                  {part[r].first, std::move(blocks[r])});
                            }
                            return out;
                          });

    // Lines 6-7: collect the updated cross and stage the oriented factors.
    staging::StageCrossFactors(ctx, keys, i, rowcol->Collect(), directed);

    // --- Phase 3 (line 9): update every remaining block against the staged
    // factors: A_UV = min(A_UV, A_Ui (min,+) A_iV).
    auto offcol =
        current
            ->Filter("cb-offcol",
                     [&layout, i](const BlockRecord& rec) {
                       return !layout.InCross(rec.first, i);
                     })
            ->MapPartitions<BlockRecord>(
                "cb-phase3",
                [i, directed, keys](std::vector<BlockRecord>&& part,
                                    TaskContext& tc) {
                  BlockCache cache;
                  std::vector<FusedTriple> updates;
                  updates.reserve(part.size());
                  for (const auto& [key, block] : part) {
                    auto [left, right] = ReadPhase3Factors(
                        keys, cache, i, key, directed, tc);
                    updates.push_back({block, left, right});
                  }
                  auto blocks = MinPlusIntoBatch(std::move(updates), tc);
                  std::vector<BlockRecord> out;
                  out.reserve(part.size());
                  for (std::size_t r = 0; r < part.size(); ++r) {
                    out.push_back({part[r].first, std::move(blocks[r])});
                  }
                  return out;
                });

    // Lines 11-12: rebuild A and repartition to the intended layout.
    auto prev = current;
    current = sparklet::PartitionBy(
                  ctx.Union("cb-union", {diag, rowcol, offcol}), partitioner,
                  "cb-repartition")
                  ->Persist();
    current->EnsureMaterialized();
    prev->Unpersist();

    // Optional durability extension (see apsp/checkpoint.h): stage A so a
    // restarted job resumes here instead of from scratch.
    if (opts.checkpoint_every > 0 && (i + 1) % opts.checkpoint_every == 0) {
      SaveCheckpoint(ctx, layout, current->Collect(), i + 1);
    }
  }
  return current;
}

}  // namespace apspark::apsp
