#include "apsp/solvers/blocked_collect_broadcast.h"

#include <unordered_map>

#include "apsp/building_blocks.h"
#include "apsp/checkpoint.h"
#include "common/serial.h"

namespace apspark::apsp {

using linalg::BlockPtr;
using linalg::DenseBlock;
using sparklet::RddPtr;
using sparklet::SparkletAbort;
using sparklet::TaskContext;

namespace {

std::string DiagKey(std::int64_t i) {
  return "cb/" + std::to_string(i) + "/diag";
}

std::string LeftKey(std::int64_t i, std::int64_t x) {
  return "cb/" + std::to_string(i) + "/L/" + std::to_string(x);
}

std::string RightKey(std::int64_t i, std::int64_t x) {
  return "cb/" + std::to_string(i) + "/R/" + std::to_string(x);
}

void StageBlock(sparklet::SparkletContext& ctx, const std::string& key,
                const DenseBlock& block) {
  BinaryWriter writer;
  block.Serialize(writer);
  ctx.DriverWriteShared(key, std::move(writer).TakeBuffer(),
                        block.SerializedBytes());
}

BlockPtr ReadBlock(std::unordered_map<std::string, BlockPtr>& cache,
                   const std::string& key, TaskContext& tc) {
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  auto obj = tc.ReadShared(key);
  if (!obj.ok()) throw SparkletAbort(obj.status());
  BinaryReader reader(*obj->payload);
  auto block = DenseBlock::Deserialize(reader);
  if (!block.ok()) throw SparkletAbort(block.status());
  BlockPtr ptr = linalg::MakeBlock(std::move(block).value());
  cache.emplace(key, ptr);
  return ptr;
}

}  // namespace

RddPtr<BlockRecord> BlockedCollectBroadcastSolver::RunRounds(
    sparklet::SparkletContext& ctx, const BlockLayout& layout,
    RddPtr<BlockRecord> a, sparklet::PartitionerPtr<BlockKey> partitioner,
    const ApspOptions& opts, std::int64_t rounds_to_run) {
  RddPtr<BlockRecord> current = std::move(a);
  const bool directed = layout.directed();
  const std::int64_t first = opts.start_round;

  for (std::int64_t i = first; i < first + rounds_to_run; ++i) {
    // --- Phase 1 (Alg. 4 lines 2-3): close the diagonal block, bring it to
    // the driver, and redistribute via shared persistent storage.
    auto diag = current
                    ->Filter("cb-diag",
                             [i](const BlockRecord& rec) {
                               return OnDiagonal(rec.first, i);
                             })
                    ->Map("cb-fw", [](const BlockRecord& rec, TaskContext& tc) {
                      return BlockRecord{rec.first,
                                         FloydWarshall(rec.second, tc)};
                    });
    for (const auto& [key, block] : diag->Collect()) {
      StageBlock(ctx, DiagKey(i), *block);
    }

    // --- Phase 2 (line 5): update the cross blocks against the staged
    // diagonal (MinPlus with the second argument from Spark storage).
    auto rowcol = current
                      ->Filter("cb-rowcol",
                               [&layout, i](const BlockRecord& rec) {
                                 return layout.InCross(rec.first, i) &&
                                        !OnDiagonal(rec.first, i);
                               })
                      ->MapPartitions<BlockRecord>(
                          "cb-phase2",
                          [i](std::vector<BlockRecord>&& part,
                              TaskContext& tc) {
                            std::unordered_map<std::string, BlockPtr> cache;
                            std::vector<BlockRecord> out;
                            out.reserve(part.size());
                            for (const auto& [key, block] : part) {
                              BlockPtr d = ReadBlock(cache, DiagKey(i), tc);
                              BlockPtr prod = key.J == i
                                                  ? MatProd(block, d, tc)
                                                  : MatProd(d, block, tc);
                              out.push_back({key, MatMin(block, prod, tc)});
                            }
                            return out;
                          });

    // Lines 6-7: collect the updated cross and stage the oriented factors.
    for (const auto& [key, block] : rowcol->Collect()) {
      const std::int64_t x = key.I == i ? key.J : key.I;
      if (key.J == i) {
        StageBlock(ctx, LeftKey(i, x), *block);  // A_xi (left factor)
        if (!directed) continue;
      } else {
        StageBlock(ctx, RightKey(i, x), *block);  // A_ix (right factor)
        if (!directed) {
          // Symmetric storage keeps (i, x): its transpose is the left factor.
          StageBlock(ctx, LeftKey(i, x), block->Transposed());
        }
      }
    }

    // --- Phase 3 (line 9): update every remaining block against the staged
    // factors: A_UV = min(A_UV, A_Ui (min,+) A_iV).
    auto offcol =
        current
            ->Filter("cb-offcol",
                     [&layout, i](const BlockRecord& rec) {
                       return !layout.InCross(rec.first, i);
                     })
            ->MapPartitions<BlockRecord>(
                "cb-phase3",
                [i, directed](std::vector<BlockRecord>&& part,
                              TaskContext& tc) {
                  std::unordered_map<std::string, BlockPtr> cache;
                  std::vector<BlockRecord> out;
                  out.reserve(part.size());
                  for (const auto& [key, block] : part) {
                    BlockPtr left = ReadBlock(cache, LeftKey(i, key.I), tc);
                    BlockPtr right;
                    if (directed) {
                      right = ReadBlock(cache, RightKey(i, key.J), tc);
                    } else {
                      // A_iV = (A_Vi)^T; cache the transpose too.
                      const std::string tkey = RightKey(i, key.J);
                      auto it = cache.find(tkey);
                      if (it != cache.end()) {
                        right = it->second;
                      } else {
                        right = Transpose(
                            ReadBlock(cache, LeftKey(i, key.J), tc), tc);
                        cache.emplace(tkey, right);
                      }
                    }
                    BlockPtr prod = MatProd(left, right, tc);
                    out.push_back({key, MatMin(block, prod, tc)});
                  }
                  return out;
                });

    // Lines 11-12: rebuild A and repartition to the intended layout.
    auto prev = current;
    current = sparklet::PartitionBy(
                  ctx.Union("cb-union", {diag, rowcol, offcol}), partitioner,
                  "cb-repartition")
                  ->Persist();
    current->EnsureMaterialized();
    prev->Unpersist();

    // Optional durability extension (see apsp/checkpoint.h): stage A so a
    // restarted job resumes here instead of from scratch.
    if (opts.checkpoint_every > 0 && (i + 1) % opts.checkpoint_every == 0) {
      SaveCheckpoint(ctx, layout, current->Collect(), i + 1);
    }
  }
  return current;
}

}  // namespace apspark::apsp
