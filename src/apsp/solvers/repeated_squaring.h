// Repeated Squaring APSP (paper Algorithm 1).
//
// Computes A^n over the (min,+) semiring by repeated squaring. The naive
// cartesian-based product shuffles all-to-all and "easily stalls even on
// small problems" (§4.2), so — like the paper — the matrix-matrix product is
// rewritten as a sequence of per-column-block matrix-vector products: for
// each column block J, the column is collected on the driver, staged in
// shared persistent storage, and executors multiply their resident blocks
// against the staged segments; reduceByKey(MatMin) finishes the product.
//
// Impure: column staging through the shared file system is a side effect
// outside the RDD lineage.
//
// One "round" (for projection purposes) is one column sweep; a full run is
// ceil(log2(n)) squarings x q sweeps, matching the iteration counts the
// paper reports in Table 2.
#pragma once

#include "apsp/solver.h"

namespace apspark::apsp {

class RepeatedSquaringSolver final : public ApspSolver {
 public:
  std::string name() const override { return "Repeated Squaring"; }
  bool pure() const noexcept override { return false; }
  std::int64_t TotalRounds(const BlockLayout& layout) const override;

 protected:
  sparklet::RddPtr<BlockRecord> RunRounds(
      sparklet::SparkletContext& ctx, const BlockLayout& layout,
      sparklet::RddPtr<BlockRecord> a,
      sparklet::PartitionerPtr<BlockKey> partitioner, const ApspOptions& opts,
      std::int64_t rounds_to_run) override;
};

}  // namespace apspark::apsp
