#include "apsp/solvers/repeated_squaring.h"

#include <unordered_map>

#include "apsp/building_blocks.h"
#include "apsp/checkpoint.h"
#include "common/math_utils.h"
#include "linalg/kernels.h"

namespace apspark::apsp {

using linalg::BlockRef;
using linalg::DenseBlock;
using sparklet::RddPtr;
using sparklet::SparkletAbort;
using sparklet::TaskContext;

namespace {

std::string ColumnKey(std::int64_t squaring, std::int64_t j,
                      std::int64_t k) {
  return "rs/" + std::to_string(squaring) + "/" + std::to_string(j) + "/" +
         std::to_string(k);
}

/// Reads a staged column segment B_KJ, caching per task (the paper's
/// executors deserialize each needed block once; here the ref is shared, so
/// the cache saves the modelled re-read charge only).
BlockRef FetchSegment(std::unordered_map<std::int64_t, BlockRef>& cache,
                      std::int64_t squaring, std::int64_t j, std::int64_t k,
                      TaskContext& tc) {
  auto it = cache.find(k);
  if (it != cache.end()) return it->second;
  auto block = tc.ReadSharedBlock(ColumnKey(squaring, j, k));
  if (!block.ok()) throw SparkletAbort(block.status());
  cache.emplace(k, *block);
  return *block;
}

}  // namespace

std::int64_t RepeatedSquaringSolver::TotalRounds(
    const BlockLayout& layout) const {
  return static_cast<std::int64_t>(CeilLog2(layout.n())) * layout.q();
}

RddPtr<BlockRecord> RepeatedSquaringSolver::RunRounds(
    sparklet::SparkletContext& ctx, const BlockLayout& layout,
    RddPtr<BlockRecord> a, sparklet::PartitionerPtr<BlockKey> partitioner,
    const ApspOptions& opts, std::int64_t rounds_to_run) {
  const std::int64_t q = layout.q();
  const int squarings = CeilLog2(layout.n());
  std::int64_t executed = 0;
  RddPtr<BlockRecord> current = std::move(a);

  // Resume snaps to squaring boundaries: a round is one column sweep, but
  // the matrix is only consistent between squarings, which is where the
  // checkpoints below are written (start_round is always a multiple of q on
  // the engine's own restart path).
  const int start_squaring =
      q > 0 ? static_cast<int>(opts.start_round / q) : 0;

  for (int squaring = start_squaring;
       squaring < squarings && executed < rounds_to_run; ++squaring) {
    std::vector<RddPtr<BlockRecord>> products;
    bool complete = true;
    for (std::int64_t j = 0; j < q; ++j) {
      if (executed >= rounds_to_run) {
        complete = false;
        break;
      }
      ++executed;
      RoundSpanScope round_span(ctx.cluster(),
                                static_cast<std::int64_t>(squaring) * q + j);

      // Alg. 1 line 3: gather column block J on the driver...
      auto column =
          current
              ->Filter("rs-col-filter",
                       [&layout, j](const BlockRecord& rec) {
                         return InColumn(layout, rec.first, j);
                       })
              ->Collect();
      // ...line 4: and stage its (oriented) segments in shared storage —
      // zero-copy refs, full logical bytes charged (see staging.h).
      for (const auto& [key, block] : column) {
        const std::int64_t k = key.J == j ? key.I : key.J;
        ctx.DriverWriteSharedBlock(
            ColumnKey(squaring, j, k),
            BlockLayout::Orient(key, *block, k, j));
      }

      // Line 5: T[J] = A.map(MatProd).reduceByKey(MatMin) — a matrix-vector
      // product against the staged column. Contributions that share an
      // output row-block fold into one fused accumulator (c = min(c, A ⊗ B))
      // instead of materializing one product block each: this is the
      // map-side combine reduceByKey performs anyway, done without the
      // intermediate blocks. The first contribution per key charges MatProd
      // alone (a product into a fresh +inf accumulator *is* the product);
      // later ones add the MatMin the unfused combine charged, so modelled
      // time and shuffle bytes are unchanged.
      const bool directed = layout.directed();
      auto partial = current->MapPartitions<BlockRecord>(
          "rs-matprod",
          [squaring, j, directed](std::vector<BlockRecord>&& part,
                                  TaskContext& tc) {
            std::unordered_map<std::int64_t, BlockRef> cache;
            std::unordered_map<std::int64_t, DenseBlock> acc;
            std::vector<std::int64_t> order;  // deterministic output order
            auto contribute = [&](std::int64_t row, const BlockRef& lhs,
                                  const BlockRef& seg) {
              auto it = acc.find(row);
              if (it == acc.end()) {
                tc.ChargeCompute(tc.cost_model().MinPlusSeconds(
                    lhs->rows(), seg->cols(), lhs->cols()));
                acc.emplace(row, linalg::MinPlusProduct(*lhs, *seg));
                order.push_back(row);
                return;
              }
              tc.ChargeCompute(tc.cost_model().MinPlusSeconds(
                                   lhs->rows(), seg->cols(), lhs->cols()) +
                               tc.cost_model().ElementwiseSeconds(
                                   it->second.size()));
              linalg::MinPlusUpdate(*lhs, *seg, it->second);
            };
            for (const auto& [key, block] : part) {
              if (directed) {
                // A_XY (min,+) B_YJ contributes to (X, J).
                contribute(key.I,
                           block, FetchSegment(cache, squaring, j, key.J, tc));
                continue;
              }
              // Upper-triangular storage: the stored block serves both
              // A_XY and (for X != Y) its transpose A_YX.
              if (key.I <= j) {
                contribute(key.I,
                           block, FetchSegment(cache, squaring, j, key.J, tc));
              }
              if (key.I != key.J && key.J <= j) {
                contribute(key.J, Transpose(block, tc),
                           FetchSegment(cache, squaring, j, key.I, tc));
              }
            }
            std::vector<BlockRecord> out;
            out.reserve(order.size());
            for (const std::int64_t row : order) {
              out.push_back({BlockKey{row, j},
                             linalg::MakeBlock(std::move(acc.at(row)))});
            }
            return out;
          });
      auto tj = sparklet::ReduceByKey(
          partial, partitioner, "rs-matmin",
          [](const BlockRef& x, const BlockRef& y, TaskContext& tc) {
            return MatMin(x, y, tc);
          });
      // Drive the column product now: one "iteration" of the paper's
      // Table 2 is exactly this sweep's collect + staging + map + reduce.
      tj->EnsureMaterialized();
      products.push_back(std::move(tj));
    }
    if (!complete) break;  // projection run: stop mid-squaring
    // Line 6: A = sc.union(T) — faithfully *without* repartitioning, so the
    // partition count grows, as discussed in §5.2 / §6.1.
    current = ctx.Union("rs-union", std::move(products));
    current->Persist();
    current->EnsureMaterialized();
    // Durability extension: the matrix is consistent here (a completed
    // squaring), so this is where Repeated Squaring can checkpoint — the
    // shared-FS column staging makes it impure, and an executor loss sends
    // it through the restart path in ApspSolver::Solve. checkpoint_every
    // counts rounds (column sweeps) but snaps to squaring boundaries: a
    // checkpoint is written when this squaring crossed a multiple of it.
    const std::int64_t completed =
        static_cast<std::int64_t>(squaring + 1) * q;
    if (opts.checkpoint_every > 0 && squaring + 1 < squarings &&
        completed % opts.checkpoint_every < q) {
      SaveCheckpoint(ctx, layout, current->Collect(), completed);
    }
  }
  return current;
}

}  // namespace apspark::apsp
