// 2D Floyd-Warshall (paper Algorithm 2).
//
// The textbook parallel Floyd-Warshall on a 2-D block decomposition: in
// iteration k, global column k is extracted from the blocks of column-block
// K = k / b, aggregated on the driver via collect, broadcast to all
// executors, and every block applies the FloydWarshallUpdate outer-sum.
//
// Pure: only collect + broadcast + narrow maps — no shuffles, no side
// effects. But n iterations of per-iteration O(b^2) work give the poor
// computation-to-overhead balance the paper reports (Table 2: per-iteration
// time is nearly independent of b; projected totals are in days).
#pragma once

#include "apsp/solver.h"

namespace apspark::apsp {

class FloydWarshall2dSolver final : public ApspSolver {
 public:
  std::string name() const override { return "2D Floyd-Warshall"; }
  bool pure() const noexcept override { return true; }
  std::int64_t TotalRounds(const BlockLayout& layout) const override {
    return layout.n();
  }

 protected:
  sparklet::RddPtr<BlockRecord> RunRounds(
      sparklet::SparkletContext& ctx, const BlockLayout& layout,
      sparklet::RddPtr<BlockRecord> a,
      sparklet::PartitionerPtr<BlockKey> partitioner, const ApspOptions& opts,
      std::int64_t rounds_to_run) override;
};

}  // namespace apspark::apsp
