// Blocked Collect/Broadcast APSP (paper Algorithm 4).
//
// A redesign of Blocked In-Memory that bypasses the CopyDiag/CopyCol data
// shuffling: the closed diagonal block and the updated column/row cross
// blocks are collected on the driver and redistributed to executors through
// shared persistent storage; Phase 2 and Phase 3 become narrow MinPlus maps
// whose second operand is read (and cached per task) from that storage.
//
// Impure — the storage side channel is not covered by lineage — but it is
// the paper's best-performing solver: per iteration, only the final
// union + partitionBy shuffles data, so local-storage spill stays within
// bounds where Blocked In-Memory overflows.
#pragma once

#include "apsp/solver.h"

namespace apspark::apsp {

class BlockedCollectBroadcastSolver final : public ApspSolver {
 public:
  std::string name() const override { return "Blocked-CB"; }
  bool pure() const noexcept override { return false; }
  std::int64_t TotalRounds(const BlockLayout& layout) const override {
    return layout.q();
  }

 protected:
  sparklet::RddPtr<BlockRecord> RunRounds(
      sparklet::SparkletContext& ctx, const BlockLayout& layout,
      sparklet::RddPtr<BlockRecord> a,
      sparklet::PartitionerPtr<BlockKey> partitioner, const ApspOptions& opts,
      std::int64_t rounds_to_run) override;
};

}  // namespace apspark::apsp
