// Blocked In-Memory APSP (paper Algorithm 3).
//
// The 3-phase blocked Floyd-Warshall of Venkataraman et al., expressed in
// pure Spark operations: the closed diagonal block and the updated
// column/row cross blocks are *replicated through the shuffle* (CopyDiag /
// CopyCol + partitionBy with a custom partitioner), then paired with their
// targets via combineByKey(ListAppend) + ListUnpack + MatMin.
//
// Pure and fault-tolerant, but data-intensive: every iteration shuffles
// O(q^2) block copies plus the repartitioned matrix, and since Spark
// preserves shuffle spill for fault tolerance, per-node local storage grows
// linearly with the iteration count — the failure the paper hits for small
// b (Figure 3) and at p = 1024 (Table 3).
#pragma once

#include "apsp/solver.h"

namespace apspark::apsp {

class BlockedInMemorySolver final : public ApspSolver {
 public:
  std::string name() const override { return "Blocked-IM"; }
  bool pure() const noexcept override { return true; }
  std::int64_t TotalRounds(const BlockLayout& layout) const override {
    return layout.q();
  }

 protected:
  sparklet::RddPtr<BlockRecord> RunRounds(
      sparklet::SparkletContext& ctx, const BlockLayout& layout,
      sparklet::RddPtr<BlockRecord> a,
      sparklet::PartitionerPtr<BlockKey> partitioner, const ApspOptions& opts,
      std::int64_t rounds_to_run) override;
};

}  // namespace apspark::apsp
