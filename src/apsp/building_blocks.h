// The paper's functional building blocks (Table 1).
//
// Each function acts on matrix-block records and charges the calibrated cost
// model through the TaskContext — mirroring how the pySpark implementation
// dispatches the numeric work to bare metal (NumPy/SciPy/Numba) while Spark
// handles distribution. Kernels execute for materialized blocks and
// short-circuit for phantom ones; the charged time is identical.
#pragma once

#include <cstdint>
#include <vector>

#include "apsp/block_key.h"
#include "apsp/block_layout.h"
#include "sparklet/task_context.h"

namespace apspark::apsp {

// --- predicates --------------------------------------------------------

/// InColumn[((I,J), A_IJ), x] on symmetric storage: the stored block carries
/// data of column-block x (or row-block x, served by transposition).
bool InColumn(const BlockLayout& layout, const BlockKey& key, std::int64_t x);

/// OnDiagonal[((I,J), A_IJ), x].
bool OnDiagonal(const BlockKey& key, std::int64_t x);

// --- kernel wrappers (charge cost model, propagate phantoms) ------------

/// MatProd: min-plus product A (min,+) B.
linalg::BlockRef MatProd(const linalg::BlockRef& a, const linalg::BlockRef& b,
                         sparklet::TaskContext& tc);

/// MatMin: element-wise minimum.
linalg::BlockRef MatMin(const linalg::BlockRef& a, const linalg::BlockRef& b,
                        sparklet::TaskContext& tc);

/// MinPlus: min(A (min,+) B, A) — Table 1's fused form, computed in one
/// fused pass (no intermediate product block is materialized). Charges the
/// same modelled time as MatProd followed by MatMin.
linalg::BlockRef MinPlus(const linalg::BlockRef& a, const linalg::BlockRef& b,
                         sparklet::TaskContext& tc);

/// Fused three-operand form: min(base, A (min,+) B) in one pass. The hot
/// kernel of the blocked solvers' phase-2/phase-3 updates.
linalg::BlockRef MinPlusInto(const linalg::BlockRef& base,
                             const linalg::BlockRef& a,
                             const linalg::BlockRef& b,
                             sparklet::TaskContext& tc);

/// MinPlusRect: panel' = min(base, A (min,+) panel) in one fused pass via
/// the rectangular panel kernel (linalg::MinPlusUpdateRect) — the hot kernel
/// of the batched k-source frontier sweep. Charges the same modelled time as
/// MatProd followed by MatMin on the panel shape.
linalg::BlockRef MinPlusRect(const linalg::BlockRef& base,
                             const linalg::BlockRef& a,
                             const linalg::BlockRef& panel,
                             sparklet::TaskContext& tc);

/// One planned fused block update min(base, left ⊗ right) — the unit the
/// batch entry points below decompose a sparklet task into. Holds refs: the
/// only payload duplication is the copy-on-write base copy each kernel makes
/// before updating it in place.
struct FusedTriple {
  linalg::BlockRef base;
  linalg::BlockRef left;
  linalg::BlockRef right;
};

/// Batched fused updates: charges each update's modelled kernel time into
/// the task through the cost model's intra-task schedule
/// (CostModel::IntraTaskSpan — the ordered sum when intra_task_cores == 1),
/// then runs the independent numeric updates as stealable block tasks on the
/// host pool under kTiledParallel (sequentially under naive/tiled, whose
/// solver-level timings stay single-threaded by contract). Updates whose
/// modelled kernel cost sits below KernelTuning::task_grain_floor_seconds
/// are merged into one stealable task (adaptive granularity: at tiny b the
/// dispatch overhead would otherwise dominate). Returns the updated blocks
/// in input order.
std::vector<linalg::BlockRef> MinPlusIntoBatch(
    std::vector<FusedTriple>&& updates, sparklet::TaskContext& tc);

/// Rect-kernel batch: min(base, left ⊗ right-panel) per item via
/// linalg::MinPlusUpdateRect, with the same charge/execute split as
/// MinPlusIntoBatch. The hot path of the k-source frontier sweep.
std::vector<linalg::BlockRef> MinPlusRectBatch(
    std::vector<FusedTriple>&& updates, sparklet::TaskContext& tc);

/// FloydWarshall: closes a diagonal block with the sequential solver.
linalg::BlockRef FloydWarshall(const linalg::BlockRef& a,
                               sparklet::TaskContext& tc);

/// Transposition of a stored payload (the on-demand A_JI from A_IJ).
linalg::BlockRef Transpose(const linalg::BlockRef& a,
                           sparklet::TaskContext& tc);

// --- 2D Floyd-Warshall helpers ------------------------------------------

/// ExtractCol: from a stored block in the column-cross of K = k / b, extract
/// the segment of global column k belonging to the block's *other* index.
/// Returns (row_block_index, b x 1 segment).
std::pair<std::int64_t, linalg::BlockRef> ExtractColSegment(
    const BlockLayout& layout, const BlockRecord& record, std::int64_t k,
    sparklet::TaskContext& tc);

/// ExtractRow (directed layouts): from a stored block with I == k / b,
/// extract the segment of global row k belonging to column-block J, stored
/// as a b x 1 vector. Returns (col_block_index, segment).
std::pair<std::int64_t, linalg::BlockRef> ExtractRowSegment(
    const BlockLayout& layout, const BlockRecord& record, std::int64_t k,
    sparklet::TaskContext& tc);

/// FloydWarshallUpdate: A_IJ = min(A_IJ, B_Ik 1^T + 1 B_kJ) where
/// `column_segments[X]` is the b x 1 slice of global column k for row-block
/// X and `row_segments[Y]` the slice of global row k for column-block Y
/// (equal to column_segments for undirected graphs — the symmetry the paper
/// exploits).
BlockRecord FloydWarshallUpdate(
    const BlockLayout& layout, const BlockRecord& record,
    const std::vector<linalg::BlockRef>& column_segments,
    const std::vector<linalg::BlockRef>& row_segments,
    sparklet::TaskContext& tc);

/// Undirected convenience overload (row == column by symmetry).
BlockRecord FloydWarshallUpdate(
    const BlockLayout& layout, const BlockRecord& record,
    const std::vector<linalg::BlockRef>& column_segments,
    sparklet::TaskContext& tc);

/// Partition-at-a-time FloydWarshallUpdate: identical records and identical
/// virtual-cluster charges (modulo the intra-task schedule) as mapping the
/// per-record form, with the independent outer-sum updates fanned out as
/// stealable tasks under kTiledParallel.
std::vector<BlockRecord> FloydWarshallUpdateBatch(
    std::vector<BlockRecord>&& records,
    const std::vector<linalg::BlockRef>& column_segments,
    const std::vector<linalg::BlockRef>& row_segments,
    sparklet::TaskContext& tc);

// --- Blocked In-Memory combine-step helpers ------------------------------

/// Finds the unique list entry with the given role, or nullptr; throws
/// std::logic_error on duplicates. Shared by the combine-step unpackers and
/// the shuffle-replicated KSSP frontier update.
const linalg::BlockRef* FindRole(const TaggedList& list, BlockRole role);

/// CopyDiag: replicates the closed diagonal block D_ii to every stored key
/// in the column/row cross of i (q-1 copies, tagged kDiag).
void CopyDiag(const BlockLayout& layout, std::int64_t i,
              const linalg::BlockRef& diag, std::vector<TaggedRecord>& out);

/// Phase-2 unpack: list = {original cross block, diagonal copy}; returns the
/// cross block updated through the diagonal (correctly oriented min-plus).
BlockRecord Phase2Unpack(const BlockLayout& layout, std::int64_t i,
                         const ListRecord& record, sparklet::TaskContext& tc);

/// CopyCol: from an updated cross block of iteration i, emit the block
/// itself (kOriginal) plus, for every stored target key, the row-side
/// (A_Xi, kRow) or column-side (A_iX, kCol) factor needed by Phase 3.
/// Diagonal targets receive both factors. (Table 1's CopyCol.)
void CopyCol(const BlockLayout& layout, std::int64_t i,
             const BlockRecord& record, std::vector<TaggedRecord>& out,
             sparklet::TaskContext& tc);

/// Phase-3 unpack: list = {original} for cross blocks (already updated), or
/// {original, kRow, kCol} for the rest: min(A_UV, A_Ui (min,+) A_iV).
BlockRecord Phase3Unpack(const BlockLayout& layout, std::int64_t i,
                         const ListRecord& record, sparklet::TaskContext& tc);

/// Partition-at-a-time unpackers: same records and identical virtual-cluster
/// charges as mapping Phase2Unpack / Phase3Unpack record by record, but the
/// numeric block updates fan out on the host ThreadPool (host threads speed
/// up real compute only; modelled time is untouched).
std::vector<BlockRecord> Phase2UnpackBatch(const BlockLayout& layout,
                                           std::int64_t i,
                                           std::vector<ListRecord>&& records,
                                           sparklet::TaskContext& tc);
std::vector<BlockRecord> Phase3UnpackBatch(const BlockLayout& layout,
                                           std::int64_t i,
                                           std::vector<ListRecord>&& records,
                                           sparklet::TaskContext& tc);

}  // namespace apspark::apsp
