#include "apsp/block_layout.h"

#include <algorithm>
#include <stdexcept>

#include "common/math_utils.h"

namespace apspark::apsp {

BlockLayout::BlockLayout(std::int64_t n, std::int64_t block_size,
                         bool directed)
    : n_(n), b_(block_size), q_(CeilDiv(n, block_size)), directed_(directed) {
  if (n <= 0 || block_size <= 0) {
    throw std::invalid_argument("BlockLayout: n and block size must be > 0");
  }
}

std::int64_t BlockLayout::BlockDim(std::int64_t index) const noexcept {
  return std::min(b_, n_ - index * b_);
}

std::int64_t BlockLayout::StoredBlockCount() const noexcept {
  return directed_ ? q_ * q_ : q_ * (q_ + 1) / 2;
}

bool BlockLayout::Stores(const BlockKey& key) const noexcept {
  if (key.I < 0 || key.J < 0 || key.I >= q_ || key.J >= q_) return false;
  return directed_ || key.I <= key.J;
}

BlockKey BlockLayout::Canonical(std::int64_t i_block,
                                std::int64_t j_block) const noexcept {
  if (directed_ || i_block <= j_block) return {i_block, j_block};
  return {j_block, i_block};
}

std::vector<BlockKey> BlockLayout::StoredKeys() const {
  std::vector<BlockKey> keys;
  keys.reserve(static_cast<std::size_t>(StoredBlockCount()));
  for (std::int64_t i = 0; i < q_; ++i) {
    for (std::int64_t j = directed_ ? 0 : i; j < q_; ++j) {
      keys.push_back({i, j});
    }
  }
  return keys;
}

bool BlockLayout::InColumnCross(const BlockKey& key,
                                std::int64_t x) const noexcept {
  // Undirected storage: the upper-triangular block carries data of column x
  // whenever either index is x (the mirrored half is served by transpose).
  // Directed (full) storage: column x is exactly the keys with J == x.
  if (directed_) return key.J == x;
  return key.I == x || key.J == x;
}

bool BlockLayout::InCross(const BlockKey& key, std::int64_t x) const noexcept {
  return key.I == x || key.J == x;
}

std::vector<BlockRecord> BlockLayout::Decompose(
    const linalg::DenseBlock& matrix) const {
  if (matrix.rows() != n_ || matrix.cols() != n_) {
    throw std::invalid_argument("Decompose: matrix shape does not match layout");
  }
  std::vector<BlockRecord> records;
  records.reserve(static_cast<std::size_t>(StoredBlockCount()));
  for (const BlockKey& key : StoredKeys()) {
    if (matrix.is_phantom()) {
      records.emplace_back(
          key, linalg::MakeBlock(
                   matrix.is_packed()
                       ? linalg::DenseBlock::PackedPhantom(BlockDim(key.I),
                                                           BlockDim(key.J))
                       : linalg::DenseBlock::Phantom(BlockDim(key.I),
                                                     BlockDim(key.J))));
    } else {
      records.emplace_back(
          key, linalg::MakeBlock(matrix.SubBlock(key.I * b_, key.J * b_,
                                                 BlockDim(key.I),
                                                 BlockDim(key.J))));
    }
  }
  return records;
}

std::vector<BlockRecord> BlockLayout::DecomposePhantom(bool packed) const {
  std::vector<BlockRecord> records;
  records.reserve(static_cast<std::size_t>(StoredBlockCount()));
  for (const BlockKey& key : StoredKeys()) {
    records.emplace_back(
        key, linalg::MakeBlock(
                 packed ? linalg::DenseBlock::PackedPhantom(BlockDim(key.I),
                                                            BlockDim(key.J))
                        : linalg::DenseBlock::Phantom(BlockDim(key.I),
                                                      BlockDim(key.J))));
  }
  return records;
}

Result<linalg::DenseBlock> BlockLayout::Assemble(
    const std::vector<BlockRecord>& records) const {
  // A bit-packed solve assembles into a bit-packed matrix (n = 65536 packed
  // reachability is 512 MiB; the dense-double image would be 32 GiB). Every
  // cell is Set below, so the initial fill never survives either way.
  const bool packed = !records.empty() && records.front().second &&
                      records.front().second->is_packed();
  linalg::DenseBlock out =
      packed ? linalg::DenseBlock::PackedBoolean(n_, n_)
             : linalg::DenseBlock(n_, n_, linalg::kInf);
  std::int64_t placed = 0;
  for (const auto& [key, block] : records) {
    if (!Stores(key)) {
      return InvalidArgumentError("Assemble: non-canonical key " +
                                  key.ToString());
    }
    if (!block || block->is_phantom()) {
      return FailedPreconditionError(
          "Assemble: phantom or missing payload at " + key.ToString());
    }
    const std::int64_t r0 = key.I * b_;
    const std::int64_t c0 = key.J * b_;
    for (std::int64_t r = 0; r < block->rows(); ++r) {
      for (std::int64_t c = 0; c < block->cols(); ++c) {
        out.Set(r0 + r, c0 + c, block->At(r, c));
        if (!directed_ && key.I != key.J) {
          out.Set(c0 + c, r0 + r, block->At(r, c));
        }
      }
    }
    ++placed;
  }
  if (placed != StoredBlockCount()) {
    return FailedPreconditionError(
        "Assemble: expected " + std::to_string(StoredBlockCount()) +
        " blocks, got " + std::to_string(placed));
  }
  return out;
}

linalg::DenseBlock BlockLayout::Orient(const BlockKey& canonical,
                                       const linalg::DenseBlock& payload,
                                       std::int64_t i_block,
                                       std::int64_t j_block) {
  if (canonical.I == i_block && canonical.J == j_block) return payload;
  return payload.Transposed();
}

}  // namespace apspark::apsp
