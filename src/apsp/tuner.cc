#include "apsp/tuner.h"

#include <algorithm>

namespace apspark::apsp {

std::vector<TuneEntry> SweepConfigurations(const TuneRequest& request) {
  std::vector<std::int64_t> block_sizes = request.block_sizes;
  if (block_sizes.empty()) {
    for (std::int64_t b = 512; b <= 4096; b *= 2) block_sizes.push_back(b);
    block_sizes.push_back(1536);
    block_sizes.push_back(3072);
  }
  std::sort(block_sizes.begin(), block_sizes.end());
  block_sizes.erase(std::unique(block_sizes.begin(), block_sizes.end()),
                    block_sizes.end());

  std::vector<SolverKind> solvers = request.solvers;
  if (solvers.empty()) {
    solvers = {SolverKind::kBlockedInMemory,
               SolverKind::kBlockedCollectBroadcast};
  }

  std::vector<TuneEntry> entries;
  for (SolverKind kind : solvers) {
    auto solver = MakeSolver(kind);
    if (request.require_fault_tolerance && !solver->pure()) continue;
    for (std::int64_t b : block_sizes) {
      if (b <= 0 || b >= request.n) continue;
      for (PartitionerKind part : {PartitionerKind::kMultiDiagonal,
                                   PartitionerKind::kPortableHash}) {
        ApspOptions options;
        options.block_size = b;
        options.partitioner = part;
        options.max_rounds = 1;
        options.directed = request.directed;
        auto run = solver->SolveModel(request.n, options, request.cluster);
        TuneEntry entry;
        entry.solver = kind;
        entry.block_size = b;
        entry.partitioner = part;
        entry.projected_seconds = run.projected_seconds;
        entry.projected_spill_bytes = run.projected_spill_bytes;
        entry.feasible =
            run.status.ok() && !run.projected_storage_exceeded;
        entries.push_back(entry);
      }
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const TuneEntry& a, const TuneEntry& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     return a.projected_seconds < b.projected_seconds;
                   });
  return entries;
}

Result<TuneEntry> TuneConfiguration(const TuneRequest& request) {
  if (request.n <= 1) {
    return InvalidArgumentError("tuner: n must be > 1");
  }
  const auto entries = SweepConfigurations(request);
  for (const TuneEntry& entry : entries) {
    if (entry.feasible) return entry;
  }
  return NotFoundError(
      "no feasible configuration: every candidate exhausts local storage");
}

ApspOptions ToOptions(const TuneEntry& entry, bool directed) {
  ApspOptions options;
  options.block_size = entry.block_size;
  options.partitioner = entry.partitioner;
  options.directed = directed;
  return options;
}

std::vector<KsourceTuneEntry> SweepKsourceVariants(
    const KsourceTuneRequest& request) {
  std::vector<KsourceVariant> variants;
  if (!request.require_fault_tolerance) {
    variants.push_back(KsourceVariant::kStagedStorage);
  }
  variants.push_back(KsourceVariant::kShuffleReplicated);

  std::vector<KsourceTuneEntry> entries;
  for (const KsourceVariant variant : variants) {
    KsourceOptions options;
    options.block_size = request.block_size;
    options.variant = variant;
    options.max_rounds = 1;  // one phantom pivot, projected to the sweep
    options.directed = request.directed;
    KsourceBlockedSolver solver;
    auto run = solver.SolveModel(request.n, request.num_sources, options,
                                 request.cluster);
    KsourceTuneEntry entry;
    entry.variant = variant;
    entry.projected_seconds = run.projected_seconds;
    entry.feasible = run.status.ok();
    entries.push_back(entry);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const KsourceTuneEntry& a, const KsourceTuneEntry& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     return a.projected_seconds < b.projected_seconds;
                   });
  return entries;
}

Result<KsourceVariant> ChooseKsourceVariant(const KsourceTuneRequest& request) {
  if (request.n <= 1) {
    return InvalidArgumentError("ksource tuner: n must be > 1");
  }
  if (request.num_sources <= 0) {
    return InvalidArgumentError("ksource tuner: num_sources must be > 0");
  }
  if (request.block_size <= 0 || request.block_size > request.n) {
    return InvalidArgumentError(
        "ksource tuner: block_size must be in (0, n]");
  }
  const auto entries = SweepKsourceVariants(request);
  for (const KsourceTuneEntry& entry : entries) {
    if (entry.feasible) return entry.variant;
  }
  return NotFoundError("ksource tuner: no feasible data plane");
}

}  // namespace apspark::apsp
