// Checkpointing for the impure solvers.
//
// The paper's conclusion flags the impure solvers' main weakness: they rely
// on shared persistent storage outside the RDD lineage and "thus [are] not
// fault-tolerant" (§6). The standard remedy — which this module implements
// as an extension — is coarse-grained checkpointing: every k rounds the
// current matrix A (and, for the k-source workload, the frontier panels F)
// is staged to the same shared storage, and after an executor loss the
// restart path in ApspSolver::Solve / KsourceBlockedSolver::Solve resumes
// from the latest checkpoint epoch instead of from scratch. The staging cost
// is charged to the virtual cluster like any other shared-FS traffic, so its
// overhead is measurable; SaveCheckpoint also marks the durable-progress
// point the recovery accounting (SimMetrics::recovery_seconds) measures
// wasted work against.
#pragma once

#include <functional>
#include <vector>

#include "apsp/block_key.h"
#include "apsp/block_layout.h"
#include "common/status.h"
#include "sparklet/rdd.h"

namespace apspark::apsp {

struct CheckpointInfo {
  /// First round that still needs to run.
  std::int64_t next_round = 0;
  std::vector<BlockRecord> blocks;
  /// Frontier panels of a k-source checkpoint (empty for plain APSP).
  std::vector<PanelRecord> panels;
};

/// Stages `records` (the full matrix A after `completed_rounds` rounds) to
/// shared storage, replacing any older checkpoint. K-source solvers also
/// pass the frontier `panels`; plain APSP leaves them empty.
void SaveCheckpoint(sparklet::SparkletContext& ctx, const BlockLayout& layout,
                    const std::vector<BlockRecord>& records,
                    std::int64_t completed_rounds,
                    const std::vector<PanelRecord>& panels = {});

/// Loads the most recent checkpoint, verifying it matches `layout`.
Result<CheckpointInfo> LoadCheckpoint(sparklet::SparkletContext& ctx,
                                      const BlockLayout& layout);

/// True if a checkpoint exists in this context's shared storage.
bool HasCheckpoint(sparklet::SparkletContext& ctx);

/// One checkpoint-restart step of the DATA_LOSS recovery policy shared by
/// the impure solvers (ApspSolver::Solve, KsourceBlockedSolver::Solve):
/// accounts the progress the failure destroyed (since the last durable
/// mark), loads the latest checkpoint when one exists, invokes `rebuild` to
/// re-populate the solver's RDDs — with the loaded CheckpointInfo, or
/// nullptr when restarting from the stable inputs — attributes the reload
/// itself to recovery, and re-marks durable progress. Returns the round to
/// resume from (`fallback_round` when no checkpoint exists).
Result<std::int64_t> RestartFromCheckpoint(
    sparklet::SparkletContext& ctx, const BlockLayout& layout,
    std::int64_t fallback_round,
    const std::function<void(const CheckpointInfo*)>& rebuild);

/// Copies the failure/recovery counters from `live` into `reported`. Used
/// by solvers whose reported metrics snapshot excludes the final assembly
/// collect: evidence of losses that fire *during* assembly must still reach
/// the report.
void FoldRecoveryMetrics(const sparklet::SimMetrics& live,
                         sparklet::SimMetrics& reported);

}  // namespace apspark::apsp
