// Checkpointing for the impure solvers.
//
// The paper's conclusion flags Blocked Collect/Broadcast's main weakness:
// it relies on shared persistent storage outside the RDD lineage and "thus
// is not fault-tolerant" (§6). The standard remedy — which this module
// implements as an extension — is coarse-grained checkpointing: every k
// iterations the current matrix A is staged to the same shared storage, and
// a failed job can resume from the latest checkpoint instead of restarting.
// The staging cost is charged to the virtual cluster like any other
// shared-FS traffic, so its overhead is measurable.
#pragma once

#include <vector>

#include "apsp/block_key.h"
#include "apsp/block_layout.h"
#include "common/status.h"
#include "sparklet/rdd.h"

namespace apspark::apsp {

struct CheckpointInfo {
  /// First round that still needs to run.
  std::int64_t next_round = 0;
  std::vector<BlockRecord> blocks;
};

/// Stages `records` (the full matrix A after `completed_rounds` rounds) to
/// shared storage, replacing any older checkpoint.
void SaveCheckpoint(sparklet::SparkletContext& ctx, const BlockLayout& layout,
                    const std::vector<BlockRecord>& records,
                    std::int64_t completed_rounds);

/// Loads the most recent checkpoint, verifying it matches `layout`.
Result<CheckpointInfo> LoadCheckpoint(sparklet::SparkletContext& ctx,
                                      const BlockLayout& layout);

/// True if a checkpoint exists in this context's shared storage.
bool HasCheckpoint(sparklet::SparkletContext& ctx);

}  // namespace apspark::apsp
