#include "store/block_store.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "common/serial.h"
#include "obs/trace.h"

namespace apspark::store {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kBlockMagic = 0x41505350424c4b31ULL;     // "APSPBLK1"
constexpr std::uint64_t kManifestMagic = 0x415053504d414e31ULL;  // "APSPMAN1"
constexpr std::uint32_t kManifestVersion = 1;
constexpr char kManifestFile[] = "MANIFEST.bin";

Result<std::vector<std::uint8_t>> ReadFileBytes(const fs::path& path) {
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    return NotFoundError("no such file: " + path.string());
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return StoreCorruptError("cannot open " + path.string());
  }
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(size);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()),
               static_cast<std::streamsize>(size))) {
    return StoreCorruptError("short read of " + path.string());
  }
  return bytes;
}

Status WriteFileBytes(const fs::path& path,
                      const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InternalError("cannot create " + path.string());
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return InternalError("short write to " + path.string());
  }
  return Status::Ok();
}

std::string EntryDescription(const StoreManifest::Entry& meta) {
  return std::string(PlaneName(meta.plane)) + " block (" +
         std::to_string(meta.I) + "," + std::to_string(meta.J) + ")";
}

}  // namespace

const char* PlaneName(Plane plane) noexcept {
  switch (plane) {
    case Plane::kDistance:
      return "distance";
    case Plane::kNext:
      return "next";
  }
  return "unknown";
}

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

BlockStore::BlockStore(std::string dir, StoreManifest manifest,
                       Options options, bool writable)
    : dir_(std::move(dir)),
      manifest_(std::move(manifest)),
      options_(options),
      writable_(writable) {
  for (const auto& meta : manifest_.entries) {
    CacheEntry entry;
    entry.meta = meta;
    entry.lru_pos = lru_.end();
    cache_.emplace(CacheKey{meta.plane, meta.I, meta.J}, std::move(entry));
  }
}

BlockStore::~BlockStore() {
  // Release every still-resident block from the accountant ledger so a
  // serving process's live-byte accounting balances at shutdown.
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.accountant != nullptr) {
    for (auto& [key, entry] : cache_) {
      if (entry.state == EntryState::kResident) {
        options_.accountant->ReleaseDriver(entry.meta.payload_bytes);
      }
    }
  }
}

std::string BlockStore::BlockPath(const StoreManifest::Entry& meta) const {
  const char* prefix = meta.plane == Plane::kDistance ? "d" : "p";
  return (fs::path(dir_) / (std::string(prefix) + "_" +
                            std::to_string(meta.I) + "_" +
                            std::to_string(meta.J) + ".blk"))
      .string();
}

// ---------------------------------------------------------------- writer

Result<std::unique_ptr<BlockStore>> BlockStore::Create(
    const std::string& dir, const StoreManifest& manifest,
    const Options& options) {
  if (manifest.n <= 0 || manifest.block_size <= 0) {
    return InvalidArgumentError("store manifest needs n > 0 and b > 0");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create store directory " + dir + ": " +
                         ec.message());
  }
  if (fs::exists(fs::path(dir) / kManifestFile)) {
    return FailedPreconditionError("store directory " + dir +
                                   " already holds a sealed store");
  }
  StoreManifest fresh = manifest;
  fresh.entries.clear();
  return std::unique_ptr<BlockStore>(
      new BlockStore(dir, std::move(fresh), options, /*writable=*/true));
}

Status BlockStore::Put(Plane plane, std::int64_t I, std::int64_t J,
                       const linalg::DenseBlock& block) {
  if (!writable_ || sealed_) {
    return FailedPreconditionError("Put on a sealed or read-only store");
  }
  if (block.is_phantom()) {
    return FailedPreconditionError(
        "phantom blocks carry no payload to persist");
  }
  const std::int64_t q = manifest_.q();
  if (I < 0 || J < 0 || I >= q || J >= q) {
    return OutOfRangeError("block (" + std::to_string(I) + "," +
                           std::to_string(J) + ") outside a " +
                           std::to_string(q) + "x" + std::to_string(q) +
                           " layout");
  }
  if (Contains(plane, I, J)) {
    return FailedPreconditionError(EntryDescription({plane, I, J, 0, 0}) +
                                   " already persisted");
  }

  BinaryWriter payload;
  block.Serialize(payload);

  StoreManifest::Entry meta;
  meta.plane = plane;
  meta.I = I;
  meta.J = J;
  meta.payload_bytes = payload.size();
  meta.checksum = Fnv1a(payload.buffer().data(), payload.size());

  BinaryWriter file;
  file.Write(kBlockMagic);
  file.Write(static_cast<std::uint8_t>(plane));
  file.Write(I);
  file.Write(J);
  file.Write(static_cast<std::uint64_t>(payload.size()));
  file.WriteRaw(payload.buffer().data(), payload.size());
  file.Write(meta.checksum);

  auto status = WriteFileBytes(BlockPath(meta), file.buffer());
  if (!status.ok()) return status;

  manifest_.entries.push_back(meta);
  CacheEntry entry;
  entry.meta = meta;
  entry.lru_pos = lru_.end();
  cache_.emplace(CacheKey{plane, I, J}, std::move(entry));
  return Status::Ok();
}

Status BlockStore::Seal() {
  if (!writable_ || sealed_) {
    return FailedPreconditionError("Seal on a sealed or read-only store");
  }
  BinaryWriter body;
  body.Write(kManifestMagic);
  body.Write(kManifestVersion);
  body.Write(manifest_.n);
  body.Write(manifest_.block_size);
  body.Write(static_cast<std::uint8_t>(manifest_.directed ? 1 : 0));
  body.Write(static_cast<std::uint8_t>(manifest_.semiring));
  body.Write(static_cast<std::uint8_t>(manifest_.has_paths ? 1 : 0));
  body.Write(static_cast<std::uint64_t>(manifest_.entries.size()));
  for (const auto& e : manifest_.entries) {
    body.Write(static_cast<std::uint8_t>(e.plane));
    body.Write(e.I);
    body.Write(e.J);
    body.Write(e.payload_bytes);
    body.Write(e.checksum);
  }
  const std::uint64_t checksum = Fnv1a(body.buffer().data(), body.size());
  body.Write(checksum);
  auto status =
      WriteFileBytes(fs::path(dir_) / kManifestFile, body.buffer());
  if (!status.ok()) return status;
  sealed_ = true;
  return Status::Ok();
}

// ---------------------------------------------------------------- reader

Result<std::unique_ptr<BlockStore>> BlockStore::Open(const std::string& dir,
                                                     const Options& options) {
  auto bytes = ReadFileBytes(fs::path(dir) / kManifestFile);
  if (!bytes.ok()) return bytes.status();
  // Trailing checksum covers the whole body: any byte flip or truncation of
  // the manifest is caught before a single field is trusted.
  if (bytes->size() < sizeof(std::uint64_t)) {
    return StoreCorruptError("manifest truncated in " + dir);
  }
  const std::size_t body_size = bytes->size() - sizeof(std::uint64_t);
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes->data() + body_size,
              sizeof(std::uint64_t));
  if (Fnv1a(bytes->data(), body_size) != stored_checksum) {
    return StoreCorruptError("manifest checksum mismatch in " + dir);
  }

  BinaryReader reader(bytes->data(), body_size);
  auto magic = reader.Read<std::uint64_t>();
  if (!magic.ok() || *magic != kManifestMagic) {
    return StoreCorruptError("bad manifest magic in " + dir);
  }
  auto version = reader.Read<std::uint32_t>();
  if (!version.ok() || *version != kManifestVersion) {
    return StoreCorruptError("unsupported manifest version in " + dir);
  }
  StoreManifest manifest;
  auto n = reader.Read<std::int64_t>();
  auto b = reader.Read<std::int64_t>();
  auto directed = reader.Read<std::uint8_t>();
  auto semiring = reader.Read<std::uint8_t>();
  auto has_paths = reader.Read<std::uint8_t>();
  auto count = reader.Read<std::uint64_t>();
  if (!n.ok() || !b.ok() || !directed.ok() || !semiring.ok() ||
      !has_paths.ok() || !count.ok()) {
    return StoreCorruptError("manifest header truncated in " + dir);
  }
  manifest.n = *n;
  manifest.block_size = *b;
  manifest.directed = *directed != 0;
  manifest.semiring = static_cast<linalg::SemiringId>(*semiring);
  manifest.has_paths = *has_paths != 0;
  if (manifest.n <= 0 || manifest.block_size <= 0) {
    return StoreCorruptError("manifest geometry invalid in " + dir);
  }
  manifest.entries.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    StoreManifest::Entry e;
    auto plane = reader.Read<std::uint8_t>();
    auto bi = reader.Read<std::int64_t>();
    auto bj = reader.Read<std::int64_t>();
    auto payload = reader.Read<std::uint64_t>();
    auto checksum = reader.Read<std::uint64_t>();
    if (!plane.ok() || !bi.ok() || !bj.ok() || !payload.ok() ||
        !checksum.ok()) {
      return StoreCorruptError("manifest index truncated in " + dir);
    }
    if (*plane > static_cast<std::uint8_t>(Plane::kNext)) {
      return StoreCorruptError("manifest entry has unknown plane in " + dir);
    }
    e.plane = static_cast<Plane>(*plane);
    e.I = *bi;
    e.J = *bj;
    e.payload_bytes = *payload;
    e.checksum = *checksum;
    manifest.entries.push_back(e);
  }
  return std::unique_ptr<BlockStore>(new BlockStore(
      dir, std::move(manifest), options, /*writable=*/false));
}

Result<linalg::DenseBlock> BlockStore::LoadBlockFile(
    const StoreManifest::Entry& meta) const {
  auto bytes = ReadFileBytes(BlockPath(meta));
  if (!bytes.ok()) return bytes.status();

  // Fixed header + declared payload + trailing checksum must account for
  // the exact file size — a truncated or padded file never parses.
  constexpr std::size_t kHeaderBytes =
      sizeof(std::uint64_t) + sizeof(std::uint8_t) + 2 * sizeof(std::int64_t) +
      sizeof(std::uint64_t);
  const std::size_t expected =
      kHeaderBytes + static_cast<std::size_t>(meta.payload_bytes) +
      sizeof(std::uint64_t);
  if (bytes->size() != expected) {
    return StoreCorruptError(EntryDescription(meta) + ": file is " +
                             std::to_string(bytes->size()) + " bytes, want " +
                             std::to_string(expected));
  }

  BinaryReader reader(*bytes);
  auto magic = reader.Read<std::uint64_t>();
  if (!magic.ok() || *magic != kBlockMagic) {
    return StoreCorruptError(EntryDescription(meta) + ": bad magic");
  }
  auto plane = reader.Read<std::uint8_t>();
  auto bi = reader.Read<std::int64_t>();
  auto bj = reader.Read<std::int64_t>();
  auto payload_bytes = reader.Read<std::uint64_t>();
  if (!plane.ok() || !bi.ok() || !bj.ok() || !payload_bytes.ok()) {
    return StoreCorruptError(EntryDescription(meta) + ": header truncated");
  }
  if (*plane != static_cast<std::uint8_t>(meta.plane) || *bi != meta.I ||
      *bj != meta.J || *payload_bytes != meta.payload_bytes) {
    return StoreCorruptError(EntryDescription(meta) +
                             ": header disagrees with manifest");
  }
  const std::uint8_t* payload =
      bytes->data() + kHeaderBytes;
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum,
              payload + static_cast<std::size_t>(meta.payload_bytes),
              sizeof(std::uint64_t));
  if (Fnv1a(payload, static_cast<std::size_t>(meta.payload_bytes)) !=
      stored_checksum) {
    return StoreCorruptError(EntryDescription(meta) + ": checksum mismatch");
  }

  BinaryReader payload_reader(payload,
                              static_cast<std::size_t>(meta.payload_bytes));
  // Materializing from durable bytes is a sanctioned copy, exactly like the
  // checkpoint reload path (the zero-copy audit tracks hot-path copies).
  linalg::CowScope cow;
  auto block = linalg::DenseBlock::Deserialize(payload_reader);
  if (!block.ok()) {
    return StoreCorruptError(EntryDescription(meta) + ": payload malformed (" +
                             block.status().message() + ")");
  }
  if (block->is_phantom()) {
    return StoreCorruptError(EntryDescription(meta) +
                             ": persisted block is phantom");
  }
  return std::move(*block);
}

bool BlockStore::Contains(Plane plane, std::int64_t I, std::int64_t J) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.find(CacheKey{plane, I, J}) != cache_.end();
}

Result<BlockStore::Pin> BlockStore::Fetch(Plane plane, std::int64_t I,
                                          std::int64_t J) {
  if (writable_) {
    return FailedPreconditionError(
        "Fetch on a writer store: Seal it and Open for reading");
  }
  std::unique_lock<std::mutex> lock(mu_);
  auto it = cache_.find(CacheKey{plane, I, J});
  if (it == cache_.end()) {
    return NotFoundError(EntryDescription({plane, I, J, 0, 0}) +
                         " not in store manifest");
  }
  CacheEntry& entry = it->second;

  for (;;) {
    if (entry.state == EntryState::kResident) {
      ++stats_.hits;
      if (entry.pins == 0 && entry.lru_pos != lru_.end()) {
        lru_.erase(entry.lru_pos);
        entry.lru_pos = lru_.end();
      }
      ++entry.pins;
      return Pin(this, &entry, entry.block);
    }
    if (entry.state == EntryState::kLoading) {
      // Another thread is materializing this block; wait for it rather
      // than reading the file twice.
      load_cv_.wait(lock, [&entry] {
        return entry.state != EntryState::kLoading;
      });
      if (!entry.load_error.ok()) {
        return entry.load_error;
      }
      continue;
    }

    // Cold: this thread drives the load with the lock released.
    entry.state = EntryState::kLoading;
    entry.load_error = Status::Ok();
    ++stats_.misses;
    lock.unlock();
    Result<linalg::DenseBlock> loaded = [&] {
      obs::RealSpanScope span(
          "store-load",
          obs::TraceEnabled()
              ? "\"plane\":" +
                    std::to_string(static_cast<int>(entry.meta.plane)) +
                    ",\"I\":" + std::to_string(entry.meta.I) +
                    ",\"J\":" + std::to_string(entry.meta.J) +
                    ",\"bytes\":" + std::to_string(entry.meta.payload_bytes)
              : std::string());
      return LoadBlockFile(entry.meta);
    }();
    lock.lock();
    if (!loaded.ok()) {
      entry.state = EntryState::kCold;
      entry.load_error = loaded.status();
      load_cv_.notify_all();
      return loaded.status();
    }
    entry.block = linalg::MakeBlock(std::move(*loaded));
    entry.state = EntryState::kResident;
    stats_.bytes_loaded += entry.meta.payload_bytes;
    stats_.resident_bytes += entry.meta.payload_bytes;
    if (stats_.resident_bytes > stats_.peak_resident_bytes) {
      stats_.peak_resident_bytes = stats_.resident_bytes;
    }
    if (options_.accountant != nullptr) {
      options_.accountant->ChargeDriver(entry.meta.payload_bytes);
    }
    EvictToFit();
    load_cv_.notify_all();
    ++entry.pins;
    return Pin(this, &entry, entry.block);
  }
}

void BlockStore::EvictToFit() {
  while (stats_.resident_bytes > options_.cache_capacity_bytes &&
         !lru_.empty()) {
    const CacheKey victim_key = lru_.front();
    lru_.pop_front();
    auto it = cache_.find(victim_key);
    CacheEntry& victim = it->second;
    victim.lru_pos = lru_.end();
    victim.block.reset();
    victim.state = EntryState::kCold;
    stats_.resident_bytes -= victim.meta.payload_bytes;
    ++stats_.evictions;
    if (options_.accountant != nullptr) {
      options_.accountant->ReleaseDriver(victim.meta.payload_bytes);
    }
  }
}

void BlockStore::Unpin(void* entry_handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = *static_cast<CacheEntry*>(entry_handle);
  --entry.pins;
  if (entry.pins == 0 && entry.state == EntryState::kResident) {
    lru_.push_back(CacheKey{entry.meta.plane, entry.meta.I, entry.meta.J});
    entry.lru_pos = std::prev(lru_.end());
    // Pinned bytes may have pushed residency past the cap; trim back now
    // that this block is evictable again.
    EvictToFit();
  }
}

BlockStore::Pin& BlockStore::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Release();
    store_ = other.store_;
    entry_ = other.entry_;
    block_ = std::move(other.block_);
    other.store_ = nullptr;
    other.entry_ = nullptr;
    other.block_.reset();
  }
  return *this;
}

void BlockStore::Pin::Release() {
  if (store_ != nullptr && entry_ != nullptr) {
    store_->Unpin(entry_);
  }
  store_ = nullptr;
  entry_ = nullptr;
  block_.reset();
}

BlockStore::Stats BlockStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t BlockStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.resident_bytes;
}

std::uint64_t BlockStore::total_payload_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& e : manifest_.entries) total += e.payload_bytes;
  return total;
}

}  // namespace apspark::store
