#include "store/distance_service.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

#include "graph/path_reconstruction.h"

namespace apspark::store {

namespace {

/// Monotonic nanoseconds for the serve-path latency histograms.
std::uint64_t NowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Result<std::unique_ptr<DistanceService>> DistanceService::Open(
    const std::string& dir, const Options& options) {
  auto store = BlockStore::Open(dir, options.store_options);
  if (!store.ok()) return store.status();
  return std::unique_ptr<DistanceService>(
      new DistanceService(std::move(*store), options.num_threads));
}

Result<const linalg::DenseBlock*> DistanceService::FetchVia(
    PinMemo& memo, Plane plane, std::int64_t I, std::int64_t J) {
  if (memo.pin.valid() && memo.plane == plane && memo.I == I && memo.J == J) {
    return &memo.pin.block();
  }
  auto pin = store_->Fetch(plane, I, J);
  if (!pin.ok()) return pin.status();
  memo.plane = plane;
  memo.I = I;
  memo.J = J;
  memo.pin = std::move(*pin);
  return &memo.pin.block();
}

Result<double> DistanceService::DistanceVia(PinMemo& memo, graph::VertexId s,
                                            graph::VertexId t) {
  const std::int64_t nn = n();
  if (s < 0 || t < 0 || s >= nn || t >= nn) {
    return InvalidArgumentError("query (" + std::to_string(s) + ", " +
                                std::to_string(t) + ") outside [0, " +
                                std::to_string(nn) + ")");
  }
  const std::int64_t b = store_->manifest().block_size;
  std::int64_t I = s / b;
  std::int64_t J = t / b;
  std::int64_t li = s % b;
  std::int64_t lj = t % b;
  if (!store_->manifest().directed && I > J) {
    // Undirected storage holds the canonical upper triangle; distances are
    // symmetric, so read the mirrored element of the mirrored block.
    std::swap(I, J);
    std::swap(li, lj);
  }
  auto block = FetchVia(memo, Plane::kDistance, I, J);
  if (!block.ok()) return block.status();
  return (*block)->At(li, lj);
}

Result<double> DistanceService::Distance(graph::VertexId s,
                                         graph::VertexId t) {
  const std::uint64_t t0 = NowNs();
  PinMemo memo;
  auto d = DistanceVia(memo, s, t);
  point_latency_->Record(NowNs() - t0);
  return d;
}

Result<std::vector<double>> DistanceService::DistanceBatch(
    const std::vector<Query>& queries) {
  std::vector<double> answers(queries.size());
  if (queries.empty()) return answers;
  const std::uint64_t batch_t0 = NowNs();

  // Contiguous chunks, a few per worker so stealing can level the load; each
  // chunk carries its own pin memo, so a hot block is fetched once per chunk.
  const std::size_t num_chunks =
      std::min(queries.size(),
               4 * std::max<std::size_t>(pool_.num_threads(), 1));
  const std::size_t chunk = (queries.size() + num_chunks - 1) / num_chunks;

  std::mutex err_mu;
  Status first_error;
  pool_.ParallelForTasks(num_chunks, [&](std::size_t c) {
    PinMemo memo;
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(queries.size(), begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint64_t t0 = NowNs();
      auto d = DistanceVia(memo, queries[i].s, queries[i].t);
      point_latency_->Record(NowNs() - t0);
      if (!d.ok()) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.ok()) first_error = d.status();
        return;
      }
      answers[i] = *d;
    }
  });
  batch_latency_->Record(NowNs() - batch_t0);
  if (!first_error.ok()) return first_error;
  return answers;
}

Result<std::vector<graph::VertexId>> DistanceService::Path(
    graph::VertexId s, graph::VertexId t) {
  if (!has_paths()) {
    return FailedPreconditionError(
        "store was persisted without a successor plane (--no-paths?)");
  }
  const std::int64_t b = store_->manifest().block_size;
  PinMemo memo;
  Status walk_error;
  // The successor plane is always full q^2, so no mirroring here.
  auto next_of = [&](graph::VertexId i,
                     graph::VertexId target) -> std::int64_t {
    auto block = FetchVia(memo, Plane::kNext, i / b, target / b);
    if (!block.ok()) {
      if (walk_error.ok()) walk_error = block.status();
      return -1;
    }
    return static_cast<std::int64_t>((*block)->At(i % b, target % b));
  };
  const std::uint64_t t0 = NowNs();
  auto path = graph::ExtractPathWithLookup(n(), s, t, next_of);
  path_latency_->Record(NowNs() - t0);
  if (!walk_error.ok()) return walk_error;
  return path;
}

}  // namespace apspark::store
