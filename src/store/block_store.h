// Disk-backed, ref-counted block store: the persistence layer under the
// distance-serving subsystem.
//
// A solve currently ends at a collected matrix that must fit in RAM. The
// store turns that result into something a service can answer queries
// against: each block of the solved layout is written to its own
// checksummed file under a store directory, a MANIFEST records the layout
// geometry and the block index, and readers materialize blocks lazily into
// an in-memory cache with LRU eviction of cold blocks under a configurable
// byte cap. (The shape follows aomdd's FunctionTableBlock pattern — lazily
// materialized, reference-counted, file-backed table blocks — adapted to
// this repository's DenseBlock serialization.)
//
// On-disk layout:
//   <dir>/MANIFEST.bin        header + block index + trailing checksum
//   <dir>/d_<I>_<J>.blk       distance-plane block (I, J)
//   <dir>/p_<I>_<J>.blk       successor-plane ("paths") block (I, J)
// Each block file: magic, plane, I, J, payload byte count, the payload
// (DenseBlock::Serialize — the same packed-boolean-aware encoding the
// sparklet data plane sizes through sparklet/serde.h, so a bit-packed
// boolean solve persists its 64-per-word footprint), then an FNV-1a
// checksum of the payload.
//
// Caching and ref counting:
//   Fetch() returns a Pin — a lease on the materialized block. While any
//   Pin is live the block cannot be evicted; when the last Pin drops the
//   block becomes LRU-evictable. Eviction keeps resident payload bytes
//   under Options::cache_capacity_bytes (pinned bytes may transiently
//   exceed the cap; the store trims back under it as pins release).
//   Resident bytes charge/release the driver ledger of an optional
//   MemoryAccountant, so a serving process's high water is measured the
//   same way the solvers' is.
//
// Error model: every failure routes through Status — kNotFound for a
// missing directory/manifest/block, kStoreCorrupt for anything that fails
// validation (bad magic, size mismatch, checksum mismatch, truncated or
// malformed payload). The store never throws for I/O-shaped failures.
//
// Thread safety: all reader methods are safe to call concurrently; a miss
// loads the file outside the store mutex and concurrent requests for the
// same block wait instead of loading twice. The writer protocol
// (Create/Put/Seal) is single-threaded.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/dense_block.h"
#include "linalg/kernel_registry.h"
#include "sparklet/memory_accountant.h"

namespace apspark::store {

/// Which logical matrix a block belongs to.
enum class Plane : std::uint8_t {
  kDistance = 0,  // solved distances (canonical triangle when undirected)
  kNext = 1,      // successor matrix for path reconstruction (always q^2)
};

const char* PlaneName(Plane plane) noexcept;

/// Store-wide metadata persisted in the MANIFEST.
struct StoreManifest {
  std::int64_t n = 0;           // matrix dimension
  std::int64_t block_size = 0;  // decomposition parameter b
  bool directed = false;        // distance plane stores q^2 blocks if true
  linalg::SemiringId semiring = linalg::SemiringId::kMinPlus;
  bool has_paths = false;  // successor plane present

  std::int64_t q() const noexcept {
    return block_size > 0 ? (n + block_size - 1) / block_size : 0;
  }

  struct Entry {
    Plane plane = Plane::kDistance;
    std::int64_t I = 0;
    std::int64_t J = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t checksum = 0;
  };
  std::vector<Entry> entries;
};

class BlockStore {
 public:
  struct Options {
    /// Resident-payload cap the LRU eviction maintains. Pinned blocks may
    /// transiently push residency above it.
    std::uint64_t cache_capacity_bytes = 256ULL << 20;
    /// Optional byte mirror: resident blocks charge the driver ledger.
    sparklet::MemoryAccountant* accountant = nullptr;
  };

  /// Cache behavior counters (cumulative since Open).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes_loaded = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t peak_resident_bytes = 0;
  };

  ~BlockStore();
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  // -- writer protocol ----------------------------------------------------

  /// Creates `dir` (and parents) and starts a fresh store described by
  /// `manifest` (its `entries` are ignored; Put fills them). Refuses a
  /// directory that already holds a manifest.
  static Result<std::unique_ptr<BlockStore>> Create(
      const std::string& dir, const StoreManifest& manifest,
      const Options& options);
  static Result<std::unique_ptr<BlockStore>> Create(
      const std::string& dir, const StoreManifest& manifest) {
    return Create(dir, manifest, Options{});
  }

  /// Writes one block file and records it in the manifest index. Phantom
  /// blocks are rejected (kFailedPrecondition): a store persists payloads.
  Status Put(Plane plane, std::int64_t I, std::int64_t J,
             const linalg::DenseBlock& block);

  /// Writes the MANIFEST; the store is complete and ready to Open.
  Status Seal();

  // -- reader protocol ----------------------------------------------------

  static Result<std::unique_ptr<BlockStore>> Open(const std::string& dir,
                                                  const Options& options);
  static Result<std::unique_ptr<BlockStore>> Open(const std::string& dir) {
    return Open(dir, Options{});
  }

  /// Lease on a materialized block: while live, the block is pinned
  /// resident. Move-only; dropping it makes the block evictable again.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    bool valid() const noexcept { return entry_ != nullptr; }
    const linalg::DenseBlock& block() const noexcept { return *block_; }
    /// The underlying shared payload (outlives the Pin if copied out, but
    /// then no longer counts toward the store's pinned set).
    const linalg::BlockPtr& payload() const noexcept { return block_; }

    void Release();

   private:
    friend class BlockStore;
    Pin(BlockStore* store, void* entry, linalg::BlockPtr block) noexcept
        : store_(store), entry_(entry), block_(std::move(block)) {}

    BlockStore* store_ = nullptr;
    void* entry_ = nullptr;
    linalg::BlockPtr block_;
  };

  /// Materializes (or finds resident) block (I, J) of `plane` and pins it.
  /// kNotFound if the manifest has no such block; kStoreCorrupt if the
  /// file fails validation.
  Result<Pin> Fetch(Plane plane, std::int64_t I, std::int64_t J);

  /// True if the manifest indexes block (I, J) of `plane`.
  bool Contains(Plane plane, std::int64_t I, std::int64_t J) const;

  const StoreManifest& manifest() const noexcept { return manifest_; }
  const std::string& directory() const noexcept { return dir_; }
  Stats stats() const;
  std::uint64_t resident_bytes() const;
  /// Total persisted payload bytes across all planes (from the manifest).
  std::uint64_t total_payload_bytes() const noexcept;

 private:
  struct CacheKey {
    Plane plane;
    std::int64_t I;
    std::int64_t J;
    friend auto operator<=>(const CacheKey&, const CacheKey&) = default;
  };

  enum class EntryState { kCold, kLoading, kResident };

  struct CacheEntry {
    StoreManifest::Entry meta;
    EntryState state = EntryState::kCold;
    linalg::BlockPtr block;
    int pins = 0;
    /// Position in lru_ when resident and unpinned; lru_.end() otherwise.
    std::list<CacheKey>::iterator lru_pos;
    /// Set when a concurrent load failed so waiters re-drive the load.
    Status load_error;
  };

  BlockStore(std::string dir, StoreManifest manifest, Options options,
             bool writable);

  std::string BlockPath(const StoreManifest::Entry& meta) const;
  /// Reads + validates one block file (no lock held).
  Result<linalg::DenseBlock> LoadBlockFile(
      const StoreManifest::Entry& meta) const;
  /// Evicts cold LRU entries until residency fits the cap (lock held).
  void EvictToFit();
  void Unpin(void* entry_handle);

  const std::string dir_;
  StoreManifest manifest_;
  const Options options_;
  bool writable_ = false;
  bool sealed_ = false;

  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  std::map<CacheKey, CacheEntry> cache_;
  /// Evictable (resident, unpinned) keys, least recently used first.
  std::list<CacheKey> lru_;
  Stats stats_;
};

/// FNV-1a over a byte range — the block-file payload checksum.
std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size) noexcept;

}  // namespace apspark::store
