// Distance-serving front end over a sealed BlockStore.
//
// A solve ends; serving begins: the service answers point-to-point distance
// queries and reconstructs shortest-path vertex sequences against the
// block-resident planes, fetching (and pinning) only the blocks a query
// touches. Batched lookups fan out across a work-stealing thread pool; each
// chunk keeps a one-entry pin memo, so a skewed (hot-vertex) workload
// resolves most queries without touching the store mutex at all.
//
// Geometry: a distance query (s, t) maps to block (s/b, t/b) and local
// offsets (s%b, t%b). Undirected stores hold only the canonical upper
// triangle, so when s/b > t/b the service fetches the mirrored block and
// reads the transposed element — element-level transposition, never a block
// copy. The successor plane is always full q^2 (first hops are not
// symmetric), and a path walk fetches along next(i, t) until it lands on t.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "obs/metrics_registry.h"
#include "store/block_store.h"

namespace apspark::store {

class DistanceService {
 public:
  struct Options {
    /// Lookup worker threads for DistanceBatch (0 = hardware concurrency).
    std::size_t num_threads = 0;
    /// Forwarded to BlockStore::Open (cache cap, accountant).
    BlockStore::Options store_options;
  };

  /// One point-to-point distance question.
  struct Query {
    graph::VertexId s = 0;
    graph::VertexId t = 0;
  };

  static Result<std::unique_ptr<DistanceService>> Open(const std::string& dir,
                                                       const Options& options);
  static Result<std::unique_ptr<DistanceService>> Open(
      const std::string& dir) {
    return Open(dir, Options{});
  }

  /// dist(s, t); +inf when t is unreachable from s.
  Result<double> Distance(graph::VertexId s, graph::VertexId t);

  /// Answers every query (answers[i] is queries[i]'s distance), fanning the
  /// batch out across the service's thread pool. Fails as a whole on the
  /// first invalid query or store error.
  Result<std::vector<double>> DistanceBatch(const std::vector<Query>& queries);

  /// The vertex sequence of a shortest s->t path (endpoints inclusive).
  /// kNotFound when unreachable; kFailedPrecondition when the store was
  /// persisted without a successor plane.
  Result<std::vector<graph::VertexId>> Path(graph::VertexId s,
                                            graph::VertexId t);

  std::int64_t n() const noexcept { return store_->manifest().n; }
  bool has_paths() const noexcept { return store_->manifest().has_paths; }
  const BlockStore& store() const noexcept { return *store_; }

  /// Quantiles of one always-on serve-path latency histogram, in seconds.
  /// Derived from the service's log-bucketed histograms (<= 12.5% bucket
  /// error), not from bench-side sampling — what a production scrape reads.
  struct LatencySnapshot {
    std::uint64_t count = 0;
    double p50_seconds = 0;
    double p95_seconds = 0;
    double p99_seconds = 0;
    double p999_seconds = 0;
  };
  /// Per-query latency, every query answered (single-shot and batched).
  LatencySnapshot PointLatency() const { return Snapshot(*point_latency_); }
  /// Whole-batch latency, one sample per DistanceBatch call.
  LatencySnapshot BatchLatency() const { return Snapshot(*batch_latency_); }
  /// Per-call Path() reconstruction latency.
  LatencySnapshot PathLatency() const { return Snapshot(*path_latency_); }

 private:
  DistanceService(std::unique_ptr<BlockStore> store, std::size_t num_threads)
      : store_(std::move(store)),
        pool_(num_threads),
        point_latency_(
            &obs::Registry::Global().GetHistogram("serve_point_latency_ns")),
        batch_latency_(
            &obs::Registry::Global().GetHistogram("serve_batch_latency_ns")),
        path_latency_(
            &obs::Registry::Global().GetHistogram("serve_path_latency_ns")) {}

  static LatencySnapshot Snapshot(const obs::Histogram& h) {
    LatencySnapshot s;
    s.count = h.count();
    s.p50_seconds = h.QuantileSeconds(0.50);
    s.p95_seconds = h.QuantileSeconds(0.95);
    s.p99_seconds = h.QuantileSeconds(0.99);
    s.p999_seconds = h.QuantileSeconds(0.999);
    return s;
  }

  /// Cached last fetch so consecutive lookups into one block skip the store.
  struct PinMemo {
    Plane plane = Plane::kDistance;
    std::int64_t I = -1;
    std::int64_t J = -1;
    BlockStore::Pin pin;
  };

  /// Pins (or reuses from `memo`) the block covering (I, J) of `plane`.
  Result<const linalg::DenseBlock*> FetchVia(PinMemo& memo, Plane plane,
                                             std::int64_t I, std::int64_t J);
  Result<double> DistanceVia(PinMemo& memo, graph::VertexId s,
                             graph::VertexId t);

  std::unique_ptr<BlockStore> store_;
  ThreadPool pool_;
  // Always-on serve-path latency histograms, shared with the global
  // registry (stable pointers; the registry never deletes metrics).
  obs::Histogram* point_latency_;
  obs::Histogram* batch_latency_;
  obs::Histogram* path_latency_;
};

}  // namespace apspark::store
