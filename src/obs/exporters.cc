#include "obs/exporters.h"

namespace apspark::obs {

void ExportSimMetrics(const sparklet::SimMetrics& m, const std::string& labels,
                      Registry& registry) {
  auto gauge = [&](const char* name, double value) {
    registry.GetGauge(name, labels).Set(value);
  };
  auto gauge_u = [&](const char* name, std::uint64_t value) {
    gauge(name, static_cast<double>(value));
  };
  gauge("sim_seconds", m.sim_seconds());
  gauge("sim_compute_seconds", m.compute_seconds);
  gauge("sim_shuffle_seconds", m.shuffle_seconds);
  gauge("sim_collect_seconds", m.collect_seconds);
  gauge("sim_broadcast_seconds", m.broadcast_seconds);
  gauge("sim_shared_fs_seconds", m.shared_fs_seconds);
  gauge("sim_scheduling_seconds", m.scheduling_seconds);
  gauge("sim_rebalance_seconds", m.rebalance_seconds);
  gauge("sim_recovery_seconds", m.recovery_seconds);
  gauge("sim_admission_wait_seconds", m.admission_wait_seconds);
  gauge_u("sim_shuffle_bytes", m.shuffle_bytes);
  gauge_u("sim_collect_bytes", m.collect_bytes);
  gauge_u("sim_broadcast_bytes", m.broadcast_bytes);
  gauge_u("sim_shared_fs_written_bytes", m.shared_fs_written_bytes);
  gauge_u("sim_shared_fs_read_bytes", m.shared_fs_read_bytes);
  gauge_u("sim_spilled_bytes", m.spilled_bytes);
  gauge_u("sim_migration_bytes", m.migration_bytes);
  gauge_u("sim_stages", m.stages);
  gauge_u("sim_tasks", m.tasks);
  gauge_u("sim_task_failures", m.task_failures);
  gauge_u("sim_task_retries", m.task_retries);
  gauge_u("sim_recomputed_tasks", m.recomputed_tasks);
  gauge_u("sim_executor_failures", m.executor_failures);
  gauge_u("sim_job_restarts", m.job_restarts);
  gauge_u("sim_speculative_tasks", m.speculative_tasks);
  gauge_u("sim_migrated_partitions", m.migrated_partitions);
  gauge_u("sim_node_joins", m.node_joins);
  gauge_u("sim_local_storage_peak_bytes", m.local_storage_peak_bytes);
  gauge_u("sim_driver_peak_bytes", m.driver_peak_bytes);
  gauge_u("sim_node_peak_bytes", m.node_peak_bytes);
}

void ExportStoreStats(const store::BlockStore::Stats& s, Registry& registry) {
  auto gauge = [&](const char* name, std::uint64_t value) {
    registry.GetGauge(name).Set(static_cast<double>(value));
  };
  gauge("store_cache_hits", s.hits);
  gauge("store_cache_misses", s.misses);
  gauge("store_cache_evictions", s.evictions);
  gauge("store_bytes_loaded", s.bytes_loaded);
  gauge("store_resident_bytes", s.resident_bytes);
  gauge("store_peak_resident_bytes", s.peak_resident_bytes);
}

}  // namespace apspark::obs
