// Bridges from the repo's ad-hoc metric structs into the typed registry.
//
// The registry itself depends only on std; these adapters know the
// subsystem structs (SimMetrics, BlockStore::Stats) and publish them as
// named gauges so one `--metrics-out` scrape covers the whole process:
// simulation cost categories + volumes, accountant peaks, store cache
// state, the live kernel-invocation counters, and the serve histograms.
//
// Exports are snapshot-style: call immediately before rendering
// (Registry::ToJson / ToPrometheus); repeated calls overwrite the gauges.
#pragma once

#include <string>

#include "obs/metrics_registry.h"
#include "sparklet/metrics.h"
#include "store/block_store.h"

namespace apspark::obs {

/// Publishes every SimMetrics field (cost-category seconds, byte volumes,
/// stage/task/fault counters, accountant peaks) as `sim_*` gauges, with an
/// optional label body (e.g. `job="solve"`) on every series.
void ExportSimMetrics(const sparklet::SimMetrics& m,
                      const std::string& labels = {},
                      Registry& registry = Registry::Global());

/// Publishes a BlockStore cache snapshot as `store_*` gauges.
void ExportStoreStats(const store::BlockStore::Stats& s,
                      Registry& registry = Registry::Global());

}  // namespace apspark::obs
