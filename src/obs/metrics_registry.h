// Typed metrics registry: the repo-wide counter/gauge/histogram surface.
//
// The repository grew one ad-hoc metrics struct per subsystem — SimMetrics
// for the virtual cluster, MemoryAccountant peaks for the data plane,
// BlockStore::Stats for the serving cache, kernel-invocation tallies nowhere
// at all. This registry unifies them behind one named-metric surface with
// two exporters (JSON lines and Prometheus text), so a solve, a bench, or a
// long-lived serve process can be scraped the same way.
//
// Metric types:
//   Counter   — monotonically increasing u64. Add() is per-thread sharded
//               (kShards cache-line-padded atomic cells, each thread pinned
//               to one cell), so ParallelForTasks-scale contention never
//               serializes on one cache line; value() aggregates at read.
//   Gauge     — last-set double (atomic store/load); for scraped snapshots
//               of external state (peaks, residency, config).
//   Histogram — log-bucketed u64 distribution (sub-power-of-two buckets,
//               <= 12.5% relative bucket width), per-thread sharded like
//               Counter. Quantile() derives p50/p95/p99/p99.9 from the
//               buckets — no sample retention, O(1) memory, always-on cheap.
//
// Threading: all mutation paths are lock-free atomics; registration takes a
// mutex once per metric name. Lookups return stable references (metrics are
// never destroyed before process exit).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace apspark::obs {

/// Threads hash onto this many independent atomic cells per sharded metric.
inline constexpr std::size_t kMetricShards = 16;

/// Stable per-thread shard index in [0, kMetricShards).
std::size_t ThreadMetricShard() noexcept;

namespace internal {
/// One cache line per atomic cell so concurrent writers on different shards
/// never false-share.
struct alignas(64) PaddedAtomicU64 {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace internal

class Counter {
 public:
  void Add(std::uint64_t delta = 1) noexcept {
    shards_[ThreadMetricShard()].v.fetch_add(delta,
                                             std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<internal::PaddedAtomicU64, kMetricShards> shards_;
};

class Gauge {
 public:
  void Set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { Set(0); }

 private:
  std::atomic<double> value_{0};
};

/// Log-bucketed histogram over non-negative integer ticks (latencies record
/// nanoseconds; byte-sized metrics record bytes).
///
/// Bucket layout: ticks < kLinearBuckets get one exact bucket each; larger
/// values split each power of two into 4 sub-buckets (top two mantissa
/// bits), so every bucket's width is at most 1/8 of its lower bound. A
/// quantile estimate is therefore within 12.5% of the true order statistic.
class Histogram {
 public:
  static constexpr std::size_t kLinearBuckets = 16;  // exact ticks 0..15
  static constexpr std::size_t kNumBuckets = 256;

  /// Bucket index of a tick value (exposed for tests).
  static std::size_t BucketOf(std::uint64_t ticks) noexcept;
  /// Inclusive lower bound of bucket `b` in ticks.
  static std::uint64_t BucketLowerBound(std::size_t b) noexcept;
  /// Exclusive upper bound of bucket `b` in ticks.
  static std::uint64_t BucketUpperBound(std::size_t b) noexcept;

  void Record(std::uint64_t ticks) noexcept {
    auto& shard = shards_[ThreadMetricShard()];
    shard.counts[BucketOf(ticks)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(ticks, std::memory_order_relaxed);
  }

  /// Records a duration in seconds as nanosecond ticks.
  void RecordSeconds(double seconds) noexcept {
    if (seconds < 0) seconds = 0;
    Record(static_cast<std::uint64_t>(seconds * 1e9));
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;

  /// The q-th quantile (q in [0, 1]) estimated from the buckets: the
  /// midpoint of the bucket holding the order statistic, so the estimate is
  /// always inside [BucketLowerBound, BucketUpperBound) of the true value's
  /// bucket. Returns 0 on an empty histogram.
  double Quantile(double q) const noexcept;
  /// Quantile of a nanosecond-tick histogram, in seconds.
  double QuantileSeconds(double q) const noexcept {
    return Quantile(q) * 1e-9;
  }

  /// Aggregated per-bucket counts (tests and exporters).
  std::vector<std::uint64_t> BucketCounts() const;

  void Reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> counts{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Named-metric registry. Names follow Prometheus conventions
/// (`subsystem_metric_unit`); an optional pre-rendered label string
/// (`key="value",key2="value2"`) distinguishes instances of one metric.
class Registry {
 public:
  /// Process-wide default registry (what the CLI exports).
  static Registry& Global();

  Counter& GetCounter(const std::string& name,
                      const std::string& labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& labels = {});
  Histogram& GetHistogram(const std::string& name,
                          const std::string& labels = {});

  /// One JSON object per metric on its own line, wrapped in a top-level
  /// {"metrics": [...]} object. Histograms export count/sum/p50/p95/p99/p999.
  std::string ToJson() const;

  /// Prometheus text exposition format (histograms as summary-style
  /// quantile series plus _count/_sum).
  std::string ToPrometheus() const;

  /// Zeroes every registered metric (tests; the registry itself persists).
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;    // base metric name
    std::string labels;  // pre-rendered label body, may be empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& FindOrCreate(Kind kind, const std::string& name,
                      const std::string& labels);

  mutable std::mutex mu_;
  // Key: name + "{" + labels + "}" — deterministic export order.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace apspark::obs
