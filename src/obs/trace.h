// Dual-clock span tracer exporting Chrome trace-event JSON.
//
// The repo runs in two time domains at once: real wall-clock time (the
// driver thread, thread-pool workers, block-store disk loads) and the
// virtual sim clock (`VirtualCluster::clock_seconds()` — stages, tasks,
// interstage transfers, recovery replays). This tracer records spans from
// both and exports them as one Chrome trace-event file loadable in Perfetto
// or chrome://tracing:
//
//   pid 1 ("host (wall clock)")   — real spans, tid = OS-thread lane
//   pid 2 ("cluster (sim clock)") — virtual spans, tid = cluster lane
//
// Virtual lanes are laid out so a stage timeline reads like a cluster
// gantt chart: lane 0 is the driver (stage-level spans, interstage
// shuffle/collect/broadcast/shared-FS transfers, rebalance migrations),
// lanes 1.. are node/slot execution lanes (one per task slot, grouped by
// node), and `kTenantLaneBase`+j are FairScheduler tenant lanes (stage
// execution + admission-wait spans).
//
// Cost discipline: tracing is off by default. The *only* work on the
// disabled path is one relaxed atomic load (`TraceEnabled()`), inlined at
// every call site — gated ≤1% end-to-end by bench_obs_overhead. Enabled-
// path recording appends to per-thread buffers (one mutex each, never
// contended except at export) and is gated ≤5%. Tracing never feeds back
// into simulation state, so solves are bitwise-identical with it on or off
// (locked by tests/test_obs.cc).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace apspark::obs {

/// Virtual lane ids (tid within the sim-clock process).
inline constexpr std::int64_t kDriverLane = 0;
/// FairScheduler tenants get lanes kTenantLaneBase + job index.
inline constexpr std::int64_t kTenantLaneBase = 1 << 20;

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True iff a trace capture is active. This is the disabled-path cost:
/// one relaxed load, no call.
inline bool TraceEnabled() noexcept {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

class Tracer {
 public:
  static Tracer& Get();

  /// Starts a capture: clears prior events and flips the enabled flag.
  void Start();
  /// Stops recording (buffers retained until the next Start()).
  void Stop();

  /// Records a completed span in the virtual (sim-clock) process.
  /// Times are sim seconds; `args_json` is either empty or a rendered JSON
  /// object body (`"k":"v","n":3`) appended to the event's args.
  void VirtualSpan(const char* name, std::int64_t lane, double start_seconds,
                   double end_seconds, std::string args_json = {});

  /// Records an instant event (`ph:"i"`) in the virtual process — node
  /// losses, rack failures, membership joins.
  void VirtualInstant(const char* name, std::int64_t lane, double at_seconds,
                      std::string args_json = {});

  /// Records a completed span in the real (wall-clock) process on the
  /// calling OS thread's lane. Times come from RealNowNs().
  void RealSpan(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                std::string args_json = {});

  /// Nanoseconds since the process-wide steady epoch.
  static std::uint64_t RealNowNs() noexcept;

  /// Names a virtual lane (shows as the track name in Perfetto). Idempotent.
  void SetLaneName(std::int64_t lane, const std::string& name);

  /// Serializes everything recorded since Start() as a Chrome trace-event
  /// JSON document ({"traceEvents":[...]}); events are sorted by timestamp.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  /// Number of events recorded (tests).
  std::size_t EventCount() const;

 private:
  Tracer() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII wall-clock span: records [construction, destruction) on the calling
/// thread's real lane when tracing is enabled, and is two branch-predicted
/// loads when it isn't.
class RealSpanScope {
 public:
  explicit RealSpanScope(const char* name, std::string args_json = {})
      : name_(name) {
    if (TraceEnabled()) {
      start_ns_ = Tracer::RealNowNs();
      args_ = std::move(args_json);
      active_ = true;
    }
  }
  ~RealSpanScope() {
    if (active_ && TraceEnabled()) {
      Tracer::Get().RealSpan(name_, start_ns_, Tracer::RealNowNs(),
                             std::move(args_));
    }
  }
  RealSpanScope(const RealSpanScope&) = delete;
  RealSpanScope& operator=(const RealSpanScope&) = delete;

 private:
  const char* name_;
  std::string args_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace apspark::obs
