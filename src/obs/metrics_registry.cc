#include "obs/metrics_registry.h"

#include <bit>
#include <cmath>
#include <sstream>

namespace apspark::obs {

std::size_t ThreadMetricShard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

// ---------------------------------------------------------------- Histogram

std::size_t Histogram::BucketOf(std::uint64_t ticks) noexcept {
  if (ticks < kLinearBuckets) return static_cast<std::size_t>(ticks);
  // msb >= 4 here. Top two bits below the msb pick the sub-bucket.
  const int msb = 63 - std::countl_zero(ticks);
  const std::size_t sub = (ticks >> (msb - 2)) & 3u;
  const std::size_t idx =
      kLinearBuckets + static_cast<std::size_t>(msb - 4) * 4 + sub;
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

std::uint64_t Histogram::BucketLowerBound(std::size_t b) noexcept {
  if (b < kLinearBuckets) return b;
  const std::size_t rel = b - kLinearBuckets;
  const int msb = static_cast<int>(rel / 4) + 4;
  const std::uint64_t sub = rel % 4;
  return (std::uint64_t{4} + sub) << (msb - 2);
}

std::uint64_t Histogram::BucketUpperBound(std::size_t b) noexcept {
  if (b < kLinearBuckets) return b + 1;
  if (b >= kNumBuckets - 1) return ~std::uint64_t{0};
  return BucketLowerBound(b + 1);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    for (const auto& c : shard.counts)
      total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    total += shard.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(kNumBuckets, 0);
  for (const auto& shard : shards_)
    for (std::size_t b = 0; b < kNumBuckets; ++b)
      out[b] += shard.counts[b].load(std::memory_order_relaxed);
  return out;
}

double Histogram::Quantile(double q) const noexcept {
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  std::array<std::uint64_t, kNumBuckets> counts{};
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      const std::uint64_t c = shard.counts[b].load(std::memory_order_relaxed);
      counts[b] += c;
      total += c;
    }
  if (total == 0) return 0.0;
  // Rank of the order statistic (1-based, nearest-rank method).
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      const double lo = static_cast<double>(BucketLowerBound(b));
      const double hi = b >= kNumBuckets - 1
                            ? lo * 1.125
                            : static_cast<double>(BucketUpperBound(b));
      return (lo + hi) * 0.5;
    }
  }
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1));
}

void Histogram::Reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------------- Registry

Registry& Registry::Global() {
  static Registry* g = new Registry();  // leaked: threads may touch at exit
  return *g;
}

Registry::Entry& Registry::FindOrCreate(Kind kind, const std::string& name,
                                        const std::string& labels) {
  const std::string key =
      labels.empty() ? name : name + "{" + labels + "}";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->kind = kind;
    entry->name = name;
    entry->labels = labels;
    switch (kind) {
      case Kind::kCounter:
        entry->counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry->gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry->histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(key, std::move(entry)).first;
  }
  return *it->second;
}

Counter& Registry::GetCounter(const std::string& name,
                              const std::string& labels) {
  return *FindOrCreate(Kind::kCounter, name, labels).counter;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& labels) {
  return *FindOrCreate(Kind::kGauge, name, labels).gauge;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& labels) {
  return *FindOrCreate(Kind::kHistogram, name, labels).histogram;
}

namespace {

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  const std::string s = os.str();
  // JSON forbids bare inf/nan; clamp to null-safe sentinels.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

}  // namespace

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":[\n";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, entry->name);
    out += "\"";
    if (!entry->labels.empty()) {
      out += ",\"labels\":\"";
      AppendJsonEscaped(out, entry->labels);
      out += "\"";
    }
    switch (entry->kind) {
      case Kind::kCounter:
        out += ",\"type\":\"counter\",\"value\":" +
               std::to_string(entry->counter->value());
        break;
      case Kind::kGauge:
        out += ",\"type\":\"gauge\",\"value\":" +
               FormatDouble(entry->gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        out += ",\"type\":\"histogram\",\"count\":" +
               std::to_string(h.count()) +
               ",\"sum\":" + std::to_string(h.sum()) +
               ",\"p50\":" + FormatDouble(h.Quantile(0.50)) +
               ",\"p95\":" + FormatDouble(h.Quantile(0.95)) +
               ",\"p99\":" + FormatDouble(h.Quantile(0.99)) +
               ",\"p999\":" + FormatDouble(h.Quantile(0.999));
        break;
      }
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string Registry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [key, entry] : entries_) {
    const std::string series =
        entry->labels.empty() ? entry->name
                              : entry->name + "{" + entry->labels + "}";
    switch (entry->kind) {
      case Kind::kCounter:
        out += "# TYPE " + entry->name + " counter\n";
        out += series + " " + std::to_string(entry->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + entry->name + " gauge\n";
        out += series + " " + FormatDouble(entry->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        out += "# TYPE " + entry->name + " summary\n";
        const char* qs[] = {"0.5", "0.95", "0.99", "0.999"};
        const double qv[] = {0.50, 0.95, 0.99, 0.999};
        for (int i = 0; i < 4; ++i) {
          std::string lbl = entry->labels;
          if (!lbl.empty()) lbl += ",";
          lbl += std::string("quantile=\"") + qs[i] + "\"";
          out += entry->name + "{" + lbl + "} " +
                 FormatDouble(h.Quantile(qv[i])) + "\n";
        }
        const std::string suffix_labels =
            entry->labels.empty() ? "" : "{" + entry->labels + "}";
        out += entry->name + "_sum" + suffix_labels + " " +
               std::to_string(h.sum()) + "\n";
        out += entry->name + "_count" + suffix_labels + " " +
               std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        entry->counter->Reset();
        break;
      case Kind::kGauge:
        entry->gauge->Reset();
        break;
      case Kind::kHistogram:
        entry->histogram->Reset();
        break;
    }
  }
}

}  // namespace apspark::obs
