#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace apspark::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

// Chrome trace-event pids: one fake "process" per clock domain.
constexpr int kRealPid = 1;
constexpr int kVirtualPid = 2;

struct Event {
  std::string name;
  char phase;         // 'X' complete, 'i' instant
  int pid;
  std::int64_t tid;
  std::uint64_t ts_us;   // microseconds
  std::uint64_t dur_us;  // 'X' only
  std::string args_json; // rendered object body, may be empty
};

// Per-thread event buffer. Owned via shared_ptr so the tracer can still
// read buffers of threads that have exited.
struct EventBuffer {
  std::mutex mu;
  std::vector<Event> events;
};

std::uint64_t SimSecondsToUs(double seconds) {
  if (seconds < 0) seconds = 0;
  return static_cast<std::uint64_t>(seconds * 1e6);
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

struct Tracer::Impl {
  std::mutex mu;  // guards buffers list + lane names + generation
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  std::map<std::int64_t, std::string> lane_names;  // virtual lanes
  std::uint64_t generation = 0;

  EventBuffer& ThreadBuffer() {
    thread_local std::shared_ptr<EventBuffer> tl_buffer;
    thread_local Impl* tl_owner = nullptr;
    if (!tl_buffer || tl_owner != this) {
      tl_buffer = std::make_shared<EventBuffer>();
      tl_owner = this;
      std::lock_guard<std::mutex> lock(mu);
      buffers.push_back(tl_buffer);
    }
    return *tl_buffer;
  }

  void Append(Event ev) {
    EventBuffer& buf = ThreadBuffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.events.push_back(std::move(ev));
  }
};

Tracer& Tracer::Get() {
  static Tracer* g = new Tracer();  // leaked: worker threads touch at exit
  return *g;
}

Tracer::Impl& Tracer::impl() const {
  static Impl* g = new Impl();
  return *g;
}

void Tracer::Start() {
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& buf : im.buffers) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      buf->events.clear();
    }
    im.lane_names.clear();
    ++im.generation;
  }
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t Tracer::RealNowNs() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

void Tracer::VirtualSpan(const char* name, std::int64_t lane,
                         double start_seconds, double end_seconds,
                         std::string args_json) {
  if (!TraceEnabled()) return;
  if (end_seconds < start_seconds) end_seconds = start_seconds;
  Event ev;
  ev.name = name;
  ev.phase = 'X';
  ev.pid = kVirtualPid;
  ev.tid = lane;
  ev.ts_us = SimSecondsToUs(start_seconds);
  ev.dur_us = SimSecondsToUs(end_seconds) - ev.ts_us;
  // Perfetto drops zero-duration complete events from some views; clamp to
  // 1us so instantaneous model stages stay visible.
  if (ev.dur_us == 0) ev.dur_us = 1;
  ev.args_json = std::move(args_json);
  impl().Append(std::move(ev));
}

void Tracer::VirtualInstant(const char* name, std::int64_t lane,
                            double at_seconds, std::string args_json) {
  if (!TraceEnabled()) return;
  Event ev;
  ev.name = name;
  ev.phase = 'i';
  ev.pid = kVirtualPid;
  ev.tid = lane;
  ev.ts_us = SimSecondsToUs(at_seconds);
  ev.dur_us = 0;
  ev.args_json = std::move(args_json);
  impl().Append(std::move(ev));
}

void Tracer::RealSpan(const char* name, std::uint64_t start_ns,
                      std::uint64_t end_ns, std::string args_json) {
  if (!TraceEnabled()) return;
  if (end_ns < start_ns) end_ns = start_ns;
  static std::atomic<std::int64_t> next_real_lane{0};
  thread_local const std::int64_t real_lane =
      next_real_lane.fetch_add(1, std::memory_order_relaxed);
  Event ev;
  ev.name = name;
  ev.phase = 'X';
  ev.pid = kRealPid;
  ev.tid = real_lane;
  ev.ts_us = start_ns / 1000;
  ev.dur_us = (end_ns - start_ns) / 1000;
  if (ev.dur_us == 0) ev.dur_us = 1;
  ev.args_json = std::move(args_json);
  impl().Append(std::move(ev));
}

void Tracer::SetLaneName(std::int64_t lane, const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.lane_names.emplace(lane, name);  // first name wins
}

std::size_t Tracer::EventCount() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::size_t n = 0;
  for (auto& buf : im.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::string Tracer::ToChromeJson() const {
  Impl& im = impl();
  std::vector<Event> events;
  std::map<std::int64_t, std::string> lane_names;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& buf : im.buffers) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
    lane_names = im.lane_names;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     // Nest longer spans outside shorter ones.
                     return a.dur_us > b.dur_us;
                   });

  std::string out = "{\"traceEvents\":[\n";
  auto meta = [&out](int pid, std::int64_t tid, const char* what,
                     const std::string& name, bool first) {
    if (!first) out += ",\n";
    out += "{\"name\":\"";
    out += what;
    out += "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid);
    if (tid >= 0) out += ",\"tid\":" + std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    AppendEscaped(out, name);
    out += "\"}}";
  };
  meta(kRealPid, -1, "process_name", "host (wall clock)", true);
  meta(kVirtualPid, -1, "process_name", "cluster (sim clock)", false);
  meta(kVirtualPid, kDriverLane, "thread_name", "driver / network", false);
  for (const auto& [lane, name] : lane_names) {
    if (lane == kDriverLane) continue;
    meta(kVirtualPid, lane, "thread_name", name, false);
  }
  for (const Event& ev : events) {
    out += ",\n{\"name\":\"";
    AppendEscaped(out, ev.name);
    out += "\",\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":" + std::to_string(ev.pid);
    out += ",\"tid\":" + std::to_string(ev.tid);
    out += ",\"ts\":" + std::to_string(ev.ts_us);
    if (ev.phase == 'X') out += ",\"dur\":" + std::to_string(ev.dur_us);
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    if (!ev.args_json.empty()) out += ",\"args\":{" + ev.args_json + "}";
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string json = ToChromeJson();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

}  // namespace apspark::obs
