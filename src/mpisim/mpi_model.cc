#include "mpisim/mpi_model.h"

#include <algorithm>
#include <cmath>

namespace apspark::mpisim {

double MpiTuning::BroadcastSeconds(std::uint64_t bytes,
                                   int ranks) const noexcept {
  const double rounds =
      std::max(1.0, std::ceil(std::log2(static_cast<double>(
                        std::max(2, ranks)))));
  return rounds * (latency_seconds +
                   static_cast<double>(bytes) / bandwidth_bytes_per_sec);
}

}  // namespace apspark::mpisim
