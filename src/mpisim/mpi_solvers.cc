#include "mpisim/mpi_solvers.h"

#include <cmath>

#include "linalg/kernels.h"

namespace apspark::mpisim {

using linalg::DenseBlock;

bool IsSquareProcessCount(int p) noexcept {
  if (p <= 0) return false;
  const int r = static_cast<int>(std::lround(std::sqrt(p)));
  return r * r == p;
}

namespace {

Status CheckInput(std::int64_t n, int p) {
  if (!IsSquareProcessCount(p)) {
    return InvalidArgumentError(
        "MPI solvers require a square process grid, got p = " +
        std::to_string(p));
  }
  if (n <= 0) return InvalidArgumentError("n must be positive");
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// FW-2D-GbE
// ---------------------------------------------------------------------------

MpiMetrics Fw2dMpiSolver::ChargeRun(std::int64_t n, int p) const {
  MpiMetrics m;
  const int grid = static_cast<int>(std::lround(std::sqrt(p)));
  const double tile_elems =
      static_cast<double>(n) / grid * (static_cast<double>(n) / grid);
  const auto seg_bytes =
      static_cast<std::uint64_t>(n / grid) * sizeof(double);
  // Per iteration: the owner column broadcasts its row segment along each
  // grid row, the owner row broadcasts its column segment along each grid
  // column (both of length n/grid), then every rank updates its tile.
  const double bcast = 2.0 * tuning_.BroadcastSeconds(seg_bytes, grid);
  const double update = tile_elems * tuning_.fw2d_update_op_seconds;
  m.comm_seconds = bcast * static_cast<double>(n);
  m.comm_bytes = 2ULL * seg_bytes * static_cast<std::uint64_t>(n) *
                 static_cast<std::uint64_t>(grid);
  m.compute_seconds = update * static_cast<double>(n);
  m.supersteps = n;
  return m;
}

MpiRunResult Fw2dMpiSolver::Solve(const DenseBlock& adjacency, int p) const {
  MpiRunResult result;
  result.status = CheckInput(adjacency.rows(), p);
  if (!result.status.ok()) return result;
  DenseBlock a = adjacency;
  // The real algorithm: mathematically the 2-D decomposition performs the
  // same k-step relaxations as sequential Floyd-Warshall; the decomposition
  // changes *where* work runs, which the cost model accounts for.
  linalg::FloydWarshallInPlace(a);
  result.distances = std::move(a);
  result.metrics = ChargeRun(adjacency.rows(), p);
  result.seconds = result.metrics.total_seconds();
  return result;
}

MpiRunResult Fw2dMpiSolver::Model(std::int64_t n, int p) const {
  MpiRunResult result;
  result.status = CheckInput(n, p);
  if (!result.status.ok()) return result;
  result.metrics = ChargeRun(n, p);
  result.seconds = result.metrics.total_seconds();
  return result;
}

// ---------------------------------------------------------------------------
// DC-GbE
// ---------------------------------------------------------------------------

namespace {

/// In-place Kleene recursion on the sub-matrix A[r0..r0+m) x [r0..r0+m)
/// of an n x n matrix with leading dimension ld, using scratch views into
/// the same matrix (the 2x2 block scheme keeps everything in place).
void KleeneRecurse(double* base, std::int64_t ld, std::int64_t r0,
                   std::int64_t m) {
  constexpr std::int64_t kBaseCase = 32;
  if (m <= kBaseCase) {
    linalg::FloydWarshallRaw(m, base + r0 * ld + r0, ld);
    return;
  }
  const std::int64_t h = m / 2;       // first half
  const std::int64_t rest = m - h;    // second half
  double* a11 = base + r0 * ld + r0;
  double* a12 = a11 + h;
  double* a21 = a11 + h * ld;
  double* a22 = a21 + h;

  // 1. Close A11.
  KleeneRecurse(base, ld, r0, h);
  // 2. A12 = A11* (min,+) A12 ; A21 = A21 (min,+) A11*.
  linalg::MinPlusAccumulateRaw(h, rest, h, a11, ld, a12, ld, a12, ld);
  linalg::MinPlusAccumulateRaw(rest, h, h, a21, ld, a11, ld, a21, ld);
  // 3. A22 = min(A22, A21 (min,+) A12).
  linalg::MinPlusAccumulateRaw(rest, rest, h, a21, ld, a12, ld, a22, ld);
  // 4. Close A22.
  KleeneRecurse(base, ld, r0 + h, rest);
  // 5. A21 = A22* (min,+) A21 ; A12 = A12 (min,+) A22*.
  linalg::MinPlusAccumulateRaw(rest, h, rest, a22, ld, a21, ld, a21, ld);
  linalg::MinPlusAccumulateRaw(h, rest, rest, a12, ld, a22, ld, a12, ld);
  // 6. A11 = min(A11, A12 (min,+) A21).
  linalg::MinPlusAccumulateRaw(h, h, rest, a12, ld, a21, ld, a11, ld);
}

}  // namespace

void DcMpiSolver::KleeneApsp(DenseBlock& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Kleene APSP: matrix must be square");
  }
  if (a.is_phantom()) return;
  KleeneRecurse(a.mutable_data(), a.cols(), 0, a.rows());
}

MpiMetrics DcMpiSolver::ChargeRun(std::int64_t n, int p) const {
  MpiMetrics m;
  const double nd = static_cast<double>(n);
  const int grid = static_cast<int>(std::lround(std::sqrt(p)));
  // Compute: the recursion performs ~n^3 semiring operations, perfectly
  // parallelizable across p ranks with blocked kernels.
  m.compute_seconds = nd * nd * nd / p * tuning_.dc_op_seconds;
  // Communication: the communication-avoiding schedule moves O(n^2/sqrt(p))
  // words per rank across O(log p) recursion levels.
  const double levels = std::max(1.0, std::log2(nd / 32.0));
  const double words_per_rank = nd * nd / grid / p;  // n^2/p^1.5 per level pair
  m.comm_bytes = static_cast<std::uint64_t>(nd * nd / grid) * sizeof(double);
  m.comm_seconds =
      levels * (words_per_rank * sizeof(double) /
                    tuning_.bandwidth_bytes_per_sec * grid +
                tuning_.latency_seconds * grid);
  m.supersteps = static_cast<std::int64_t>(levels);
  return m;
}

MpiRunResult DcMpiSolver::Solve(const DenseBlock& adjacency, int p) const {
  MpiRunResult result;
  result.status = CheckInput(adjacency.rows(), p);
  if (!result.status.ok()) return result;
  DenseBlock a = adjacency;
  KleeneApsp(a);
  result.distances = std::move(a);
  result.metrics = ChargeRun(adjacency.rows(), p);
  result.seconds = result.metrics.total_seconds();
  return result;
}

MpiRunResult DcMpiSolver::Model(std::int64_t n, int p) const {
  MpiRunResult result;
  result.status = CheckInput(n, p);
  if (!result.status.ok()) return result;
  result.metrics = ChargeRun(n, p);
  result.seconds = result.metrics.total_seconds();
  return result;
}

}  // namespace apspark::mpisim
