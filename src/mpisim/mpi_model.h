// Cost model for the MPI reference solvers (paper §5.5).
//
// The paper contrasts Spark against two C++/MPI solvers on the same cluster
// and GbE interconnect:
//   FW-2D-GbE — the textbook 2-D block-decomposed Floyd-Warshall [8]:
//     n iterations, each with a row- and column-segment broadcast along the
//     process grid and an O(n^2/p) local update.
//   DC-GbE — Solomonik et al.'s communication-avoiding divide-and-conquer
//     solver [19]: O(n^3/p) compute with blocked, highly optimized kernels
//     and O(n^2/sqrt(p)) words of communication.
//
// Since no MPI runtime exists in this environment, both solvers execute
// their real algorithms in-process (results are validated against ground
// truth) while a LogP-flavoured model charges virtual time. The tuning
// constants below are documented fits to the paper's Table 3 shape; see
// EXPERIMENTS.md.
#pragma once

#include <cstdint>

namespace apspark::mpisim {

struct MpiTuning {
  /// Naive scalar Floyd-Warshall update cost per element (the paper calls
  /// FW-2D "relatively straightforward", i.e. unblocked and unvectorized).
  double fw2d_update_op_seconds = 2.2e-9;
  /// Effective per-op cost of DC's optimized blocked semiring kernels.
  double dc_op_seconds = 0.7e-9;
  /// GbE point-to-point bandwidth and per-message latency.
  double bandwidth_bytes_per_sec = 125.0e6;
  double latency_seconds = 0.25e-3;

  /// Time for a binomial-tree broadcast of `bytes` among `ranks` processes.
  double BroadcastSeconds(std::uint64_t bytes, int ranks) const noexcept;
};

/// Per-run accounting mirroring sparklet::SimMetrics at a smaller scale.
struct MpiMetrics {
  double compute_seconds = 0;
  double comm_seconds = 0;
  std::uint64_t comm_bytes = 0;
  std::int64_t supersteps = 0;

  double total_seconds() const noexcept {
    return compute_seconds + comm_seconds;
  }
};

}  // namespace apspark::mpisim
