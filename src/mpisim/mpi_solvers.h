// MPI reference APSP solvers (paper §5.5), executed in-process against the
// MpiTuning cost model. Both assume a square process grid (p in {64, 256,
// 1024, ...}), as the paper's MPI solvers do.
#pragma once

#include <optional>

#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense_block.h"
#include "mpisim/mpi_model.h"

namespace apspark::mpisim {

struct MpiRunResult {
  Status status;
  /// Distances (real-data runs only).
  std::optional<linalg::DenseBlock> distances;
  MpiMetrics metrics;
  double seconds = 0;
};

/// FW-2D-GbE: textbook 2-D block-decomposed parallel Floyd-Warshall.
/// Per iteration k: broadcast the owning row/column segments along the
/// process grid, then update the local (n/sqrt(p))^2 tile.
class Fw2dMpiSolver {
 public:
  explicit Fw2dMpiSolver(MpiTuning tuning = {}) : tuning_(tuning) {}

  /// Real run on an adjacency matrix (validated in tests).
  MpiRunResult Solve(const linalg::DenseBlock& adjacency, int p) const;

  /// Paper-scale model run (no data).
  MpiRunResult Model(std::int64_t n, int p) const;

 private:
  MpiMetrics ChargeRun(std::int64_t n, int p) const;
  MpiTuning tuning_;
};

/// DC-GbE: divide-and-conquer (Kleene) APSP in the style of Solomonik et
/// al. [19]: recursive 2x2 block elimination with (min,+) products.
class DcMpiSolver {
 public:
  explicit DcMpiSolver(MpiTuning tuning = {}) : tuning_(tuning) {}

  MpiRunResult Solve(const linalg::DenseBlock& adjacency, int p) const;
  MpiRunResult Model(std::int64_t n, int p) const;

  /// The real recursive Kleene algorithm, exposed for direct testing.
  static void KleeneApsp(linalg::DenseBlock& a);

 private:
  MpiMetrics ChargeRun(std::int64_t n, int p) const;
  MpiTuning tuning_;
};

/// True if p has an integer square root (required by both solvers).
bool IsSquareProcessCount(int p) noexcept;

}  // namespace apspark::mpisim
