#include "common/thread_pool.h"

#include <exception>

namespace apspark {
namespace {

// Which pool (if any) the current thread belongs to. Lets ParallelFor detect
// re-entrant use from a worker and degrade to inline execution.
thread_local const ThreadPool* g_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1 || OnWorkerThread()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::OnWorkerThread() const noexcept {
  return g_current_pool == this;
}

void ThreadPool::WorkerLoop() {
  g_current_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions propagate through the packaged_task future
  }
}

}  // namespace apspark
