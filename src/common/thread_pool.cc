#include "common/thread_pool.h"

#include <chrono>
#include <exception>

#include "obs/trace.h"

namespace apspark {
namespace {

// Which pool (if any) the current thread belongs to, and its worker index.
// Lets ParallelForTasks route nested submissions through the caller's own
// deque and TakeTask skip the caller's deque during steal sweeps.
thread_local const ThreadPool* g_current_pool = nullptr;
thread_local std::size_t g_worker_index = 0;

}  // namespace

namespace internal {

/// Join state of one ParallelForTasks call. Lives on the joining thread's
/// stack; tasks hold pointers into `tasks`, which stay valid because the
/// joiner does not return until `remaining` hits zero, and no finisher
/// touches the group after its decrement.
class TaskGroup {
 public:
  const std::function<void(std::size_t)>* fn = nullptr;
  std::vector<RawTask> tasks;
  std::atomic<std::ptrdiff_t> remaining{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;  // guards error
  std::exception_ptr error;
};

StealDeque::Buffer::Buffer(std::size_t cap)
    : capacity(cap), mask(cap - 1), cells(cap) {}

StealDeque::StealDeque() {
  auto initial = std::make_unique<Buffer>(64);
  buffer_.store(initial.get(), std::memory_order_relaxed);
  buffers_.push_back(std::move(initial));
}

StealDeque::~StealDeque() = default;

void StealDeque::Push(RawTask* task) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
    buf = Grow(buf, b, t);
  }
  buf->cells[static_cast<std::size_t>(b) & buf->mask].store(
      task, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_relaxed);
}

StealDeque::Buffer* StealDeque::Grow(Buffer* old, std::int64_t bottom,
                                     std::int64_t top) {
  auto grown = std::make_unique<Buffer>(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) {
    grown->cells[static_cast<std::size_t>(i) & grown->mask].store(
        old->cells[static_cast<std::size_t>(i) & old->mask].load(
            std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  Buffer* raw = grown.get();
  buffer_.store(raw, std::memory_order_release);
  buffers_.push_back(std::move(grown));
  return raw;
}

RawTask* StealDeque::Pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  RawTask* result = nullptr;
  if (t <= b) {
    result = buf->cells[static_cast<std::size_t>(b) & buf->mask].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        result = nullptr;  // a thief got it first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return result;
}

RawTask* StealDeque::Steal() {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return nullptr;
  Buffer* buf = buffer_.load(std::memory_order_acquire);
  RawTask* result = buf->cells[static_cast<std::size_t>(t) & buf->mask].load(
      std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the race; the caller moves on
  }
  return result;
}

}  // namespace internal

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  deques_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    deques_.push_back(std::make_unique<internal::StealDeque>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  ParallelForTasks(count, fn);
}

void ThreadPool::ParallelForTasks(std::size_t count,
                                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // One wall-clock span per batch (not per task — per-task events would
  // dominate small tasks and blow the enabled-path overhead budget).
  obs::RealSpanScope obs_span(
      "parallel_for", obs::TraceEnabled()
                          ? "\"tasks\":" + std::to_string(count)
                          : std::string());
  if (count == 1 || workers_.size() == 1) {
    // Degenerate case: a single worker would only duplicate this thread, so
    // there is nothing to steal — run inline (the single-core host path).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  internal::TaskGroup group;
  group.fn = &fn;
  group.tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    group.tasks.push_back(internal::RawTask{&group, i});
  }
  group.remaining.store(static_cast<std::ptrdiff_t>(count),
                        std::memory_order_relaxed);

  if (OnWorkerThread()) {
    // Nested submission: LIFO onto the caller's own deque. The caller works
    // the batch from the bottom while idle workers steal the oldest tasks
    // from the top.
    internal::StealDeque& own = *deques_[g_worker_index];
    for (internal::RawTask& task : group.tasks) own.Push(&task);
  } else {
    // Driver submission: the caller owns no deque, so the batch goes through
    // the shared injection queue, FIFO for every worker.
    std::lock_guard<std::mutex> lock(mutex_);
    for (internal::RawTask& task : group.tasks) injected_.push_back(&task);
  }
  pending_.fetch_add(static_cast<std::int64_t>(count),
                     std::memory_order_release);
  NotifyWorkers(count);
  JoinGroup(group);

  if (group.failed.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(group.error_mutex);
    std::rethrow_exception(group.error);
  }
}

bool ThreadPool::OnWorkerThread() const noexcept {
  return g_current_pool == this;
}

void ThreadPool::RunTask(internal::RawTask* task) {
  internal::TaskGroup* group = task->group;
  // First thrown exception wins; once a group has failed, tasks that have
  // not started yet are skipped (their bookkeeping still runs).
  if (!group->failed.load(std::memory_order_acquire)) {
    try {
      (*group->fn)(task->index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(group->error_mutex);
      if (!group->failed.exchange(true, std::memory_order_acq_rel)) {
        group->error = std::current_exception();
      }
    }
  }
  // After this decrement the group may be destroyed by the joiner at any
  // moment — it must not be touched again.
  group->remaining.fetch_sub(1, std::memory_order_acq_rel);
}

internal::RawTask* ThreadPool::TakeTask() {
  // Own deque first: LIFO keeps the caller on the warmest data.
  if (g_current_pool == this) {
    if (internal::RawTask* task = deques_[g_worker_index]->Pop()) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  if (pending_.load(std::memory_order_acquire) <= 0) return nullptr;
  // Driver-injected batches, FIFO.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!injected_.empty()) {
      internal::RawTask* task = injected_.front();
      injected_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  // Steal sweep over the worker deques, FIFO from each victim.
  const std::size_t n = deques_.size();
  const std::size_t self = g_current_pool == this ? g_worker_index : 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (self + 1 + k) % n;
    if (g_current_pool == this && victim == g_worker_index) continue;
    if (internal::RawTask* task = deques_[victim]->Steal()) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::JoinGroup(internal::TaskGroup& group) {
  int idle_rounds = 0;
  while (group.remaining.load(std::memory_order_acquire) > 0) {
    if (internal::RawTask* task = TakeTask()) {
      // Any runnable task helps: one of ours, or an unrelated group's whose
      // completion unblocks another joiner (this is what makes nested joins
      // on a saturated pool deadlock-free).
      RunTask(task);
      idle_rounds = 0;
      continue;
    }
    // Our remaining tasks are in flight on other threads. Don't park on a
    // condition variable the finishers would have to signal after their
    // decrement (the group dies when the counter drains, so finishers must
    // not touch it); the in-flight tail is at most one block kernel long.
    if (++idle_rounds < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void ThreadPool::NotifyWorkers(std::size_t tasks_added) {
  // The empty critical section orders this notify after any parked worker's
  // predicate check, closing the missed-wakeup window for lock-free pushes.
  { std::lock_guard<std::mutex> lock(mutex_); }
  if (tasks_added == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  g_current_pool = this;
  g_worker_index = worker_index;
  int failed_takes = 0;
  for (;;) {
    if (internal::RawTask* task = TakeTask()) {
      failed_takes = 0;
      RunTask(task);
      continue;
    }
    std::packaged_task<void()> task;
    bool should_exit = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else if (shutting_down_ && injected_.empty() &&
                 pending_.load(std::memory_order_relaxed) <= 0) {
        should_exit = true;
      } else if (pending_.load(std::memory_order_relaxed) <= 0 ||
                 ++failed_takes > 8) {
        // Park. The timeout is the backstop for any wakeup lost to a racing
        // lock-free push; the failed_takes bound keeps a worker that is
        // repeatedly losing steal races from spinning hot.
        cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
          return shutting_down_ || !queue_.empty() || !injected_.empty() ||
                 pending_.load(std::memory_order_relaxed) > 0;
        });
        failed_takes = 0;
      }
    }
    if (should_exit) return;
    if (task.valid()) {
      failed_takes = 0;
      task();  // exceptions propagate through the packaged_task future
    }
  }
}

}  // namespace apspark
