// Deterministic, fast pseudo-random number generation.
//
// All experiment inputs (Erdős–Rényi graphs, random weights, synthetic point
// clouds) derive from these generators so that every test and benchmark is
// reproducible bit-for-bit across runs, independent of the standard library's
// distribution implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace apspark {

/// SplitMix64: used for seeding and cheap hashing. Public-domain algorithm
/// (Steele, Lea, Flood), the recommended seeder for xoshiro generators.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix, usable as a hash finalizer.
std::uint64_t Mix64(std::uint64_t x) noexcept;

/// xoshiro256**: the library's general-purpose generator. Satisfies
/// UniformRandomBitGenerator so it can also drive <random> if ever needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return Next(); }
  std::uint64_t Next() noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) noexcept;

  /// Unbiased uniform integer in [0, bound) via Lemire rejection.
  std::uint64_t NextBounded(std::uint64_t bound) noexcept;

  /// Geometric(p): number of failures before the first success; used by the
  /// Erdős–Rényi edge-skipping generator. Requires 0 < p <= 1.
  std::uint64_t NextGeometric(double p) noexcept;

  /// Standard normal via Box–Muller (used by synthetic point clouds).
  double NextGaussian() noexcept;

  /// Jump-ahead: creates an independent stream (2^128 steps).
  void Jump() noexcept;

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf-distributed integers in [0, n): P(k) proportional to 1/(k+1)^theta.
/// Models the hot-vertex skew of real query traffic (a few landmark vertices
/// absorb most lookups) for serving-layer benchmarks. Sampling inverts the
/// precomputed CDF by binary search; O(n) setup, O(log n) per draw,
/// deterministic for a given generator stream.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t Sample(Xoshiro256& rng) const noexcept;

  std::uint64_t n() const noexcept { return cdf_.size(); }
  double theta() const noexcept { return theta_; }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(value <= k), cdf_.back() == 1
  double theta_;
};

}  // namespace apspark
