// Fixed-size worker pool for real (host) parallel execution of engine tasks.
//
// Note the distinction maintained throughout this repository: the *virtual*
// cluster time reported by benchmarks comes from the discrete-event model in
// sparklet/, not from host wall time. The thread pool only accelerates actual
// computation on hosts that have spare cores; on a single-core host it
// degrades gracefully to sequential execution.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace apspark {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means "hardware concurrency".
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  /// Exceptions from tasks are rethrown (first one wins). Safe to call from
  /// inside one of this pool's own tasks: nested calls run inline instead of
  /// deadlocking on a saturated queue.
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const noexcept;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace apspark
