// Work-stealing worker pool for real (host) parallel execution of engine
// tasks.
//
// Note the distinction maintained throughout this repository: the *virtual*
// cluster time reported by benchmarks comes from the discrete-event model in
// sparklet/, not from host wall time. The thread pool only accelerates actual
// computation on hosts that have spare cores; on a single-core host it
// degrades gracefully to sequential execution.
//
// Scheduling model: every worker owns a lock-free Chase-Lev deque. Task
// batches submitted through ParallelForTasks become individually stealable
// tasks: the submitting thread pushes them to its own deque (worker) or the
// shared injection queue (driver), works them LIFO from the bottom, and idle
// workers steal FIFO from the top — LIFO-local for cache locality, FIFO-steal
// so thieves take the oldest (largest-remaining) work. Nested submissions
// from inside a running task go through the caller's own deque, so a stolen
// block update can fan its row stripes out and have them stolen in turn
// instead of running them inline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace apspark {

namespace internal {

class TaskGroup;

/// One schedulable unit: index `index` of `group`'s ParallelForTasks body.
/// Lives in the group's contiguous task array until the group completes.
struct RawTask {
  TaskGroup* group;
  std::size_t index;
};

/// Chase-Lev work-stealing deque (Lê et al., "Correct and Efficient
/// Work-Stealing for Weak Memory Models"). The owner pushes and pops at the
/// bottom (LIFO); any other thread steals from the top (FIFO). Cells hold
/// atomic pointers, so concurrent push/steal never races on non-atomic
/// memory; grown buffers are retired (not freed) until the deque dies, so a
/// stealer holding a stale buffer pointer always reads live memory.
class StealDeque {
 public:
  StealDeque();
  ~StealDeque();

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only: pushes a task at the bottom.
  void Push(RawTask* task);
  /// Owner only: pops the most recently pushed task, or nullptr.
  RawTask* Pop();
  /// Any thread: steals the oldest task; nullptr when empty or on a lost
  /// race (the caller may simply retry or move to the next victim).
  RawTask* Steal();

 private:
  struct Buffer {
    explicit Buffer(std::size_t capacity);
    std::size_t capacity;
    std::size_t mask;
    std::vector<std::atomic<RawTask*>> cells;
  };

  Buffer* Grow(Buffer* old, std::int64_t bottom, std::int64_t top);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  // Owner-only list of every buffer ever allocated (retired on growth);
  // keeps concurrently read old buffers alive until destruction.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace internal

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means "hardware concurrency".
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  /// Exceptions from tasks are rethrown (first one wins; once a task has
  /// thrown, tasks of the same call that have not started yet are skipped).
  /// Safe to call from inside one of this pool's own tasks: nested calls
  /// schedule through the caller's own deque and are stealable by idle
  /// workers instead of running inline.
  ///
  /// This is the degenerate (index-body) case of ParallelForTasks and simply
  /// forwards to it.
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Schedules `count` independent tasks — fn(0) .. fn(count-1) — as
  /// stealable units and waits for all of them. The calling thread
  /// participates: it works its own tasks LIFO and steals from workers while
  /// waiting, so a saturated pool can never deadlock a nested call. Same
  /// exception contract as ParallelFor.
  void ParallelForTasks(std::size_t count,
                        const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const noexcept;

 private:
  void WorkerLoop(std::size_t worker_index);
  /// Runs one task and settles its group bookkeeping.
  void RunTask(internal::RawTask* task);
  /// Takes one stealable task: the caller's own deque first (workers), then
  /// the injection queue, then a steal sweep over all worker deques.
  internal::RawTask* TakeTask();
  /// Blocks the joining thread on `group` completion, helping with any
  /// runnable work first.
  void JoinGroup(internal::TaskGroup& group);
  /// Makes a wakeup visible to workers parked in WorkerLoop.
  void NotifyWorkers(std::size_t tasks_added);

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<internal::StealDeque>> deques_;

  // Stealable tasks submitted from threads that own no deque (the driver).
  std::deque<internal::RawTask*> injected_;
  // Legacy one-off submissions (Submit futures).
  std::deque<std::packaged_task<void()>> queue_;

  // Count of stealable tasks sitting in deques or the injection queue; lets
  // parked workers decide whether a steal sweep is worth waking up for.
  std::atomic<std::int64_t> pending_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace apspark
