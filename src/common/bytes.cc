#include "common/bytes.h"

#include <cstdio>

namespace apspark {
namespace {

struct Unit {
  double divisor;
  const char* suffix;
};

constexpr Unit kUnits[] = {
    {static_cast<double>(kTiB), "TiB"},
    {static_cast<double>(kGiB), "GiB"},
    {static_cast<double>(kMiB), "MiB"},
    {static_cast<double>(kKiB), "KiB"},
};

std::string FormatScaled(double value, const char* rate_suffix) {
  char buf[64];
  for (const Unit& u : kUnits) {
    if (value >= u.divisor) {
      std::snprintf(buf, sizeof(buf), "%.1f%s%s", value / u.divisor, u.suffix,
                    rate_suffix);
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "%.0fB%s", value, rate_suffix);
  return buf;
}

}  // namespace

std::string FormatBytes(std::uint64_t bytes) {
  return FormatScaled(static_cast<double>(bytes), "");
}

std::string FormatRate(double bytes_per_second) {
  return FormatScaled(bytes_per_second, "/s");
}

}  // namespace apspark
