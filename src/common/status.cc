#include "common/status.h"

namespace apspark {

const char* StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kStoreCorrupt:
      return "STORE_CORRUPT";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::CheckOk() const {
  if (!ok()) throw std::runtime_error(ToString());
}

}  // namespace apspark
