#include "common/serial.h"

// Header-only templates; this translation unit anchors the library target.
namespace apspark {
namespace internal {
// Intentionally empty.
}  // namespace internal
}  // namespace apspark
