#include "common/time_utils.h"

#include <cmath>
#include <cstdio>

namespace apspark {

std::string FormatDuration(double seconds) {
  char buf[64];
  if (!(seconds >= 0.0) || std::isinf(seconds)) return "inf";
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1e3);
    return buf;
  }
  const auto total = static_cast<std::uint64_t>(seconds + 0.5);
  const std::uint64_t days = total / 86400;
  const std::uint64_t hours = (total % 86400) / 3600;
  const std::uint64_t mins = (total % 3600) / 60;
  const std::uint64_t secs = total % 60;
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%llud%lluh",
                  static_cast<unsigned long long>(days),
                  static_cast<unsigned long long>(hours));
  } else if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%lluh%llum",
                  static_cast<unsigned long long>(hours),
                  static_cast<unsigned long long>(mins));
  } else if (mins > 0) {
    std::snprintf(buf, sizeof(buf), "%llum%llus",
                  static_cast<unsigned long long>(mins),
                  static_cast<unsigned long long>(secs));
  } else {
    std::snprintf(buf, sizeof(buf), "%llus",
                  static_cast<unsigned long long>(secs));
  }
  return buf;
}

std::string FormatSeconds(double seconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fs", precision, seconds);
  return buf;
}

}  // namespace apspark
