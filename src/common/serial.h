// Binary serialization used by the sparklet shuffle service and the shared
// persistent storage side channel. Data written through a BinaryWriter is a
// flat little-endian byte stream; this is what the virtual cluster charges
// against local-disk and network budgets, so serialized sizes must be exact.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace apspark {

class BinaryWriter {
 public:
  BinaryWriter() = default;

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void Write(const T& value) {
    const auto* src = reinterpret_cast<const std::uint8_t*>(&value);
    buffer_.insert(buffer_.end(), src, src + sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write(static_cast<std::uint64_t>(s.size()));
    const auto* src = reinterpret_cast<const std::uint8_t*>(s.data());
    buffer_.insert(buffer_.end(), src, src + s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void WriteVector(const std::vector<T>& v) {
    Write(static_cast<std::uint64_t>(v.size()));
    const auto* src = reinterpret_cast<const std::uint8_t*>(v.data());
    buffer_.insert(buffer_.end(), src, src + v.size() * sizeof(T));
  }

  void WriteRaw(const void* data, std::size_t size) {
    const auto* src = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), src, src + size);
  }

  std::size_t size() const noexcept { return buffer_.size(); }
  const std::vector<std::uint8_t>& buffer() const noexcept { return buffer_; }
  std::vector<std::uint8_t> TakeBuffer() && { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<std::uint8_t>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Result<T> Read() {
    if (pos_ + sizeof(T) > size_) {
      return OutOfRangeError("BinaryReader: read past end of buffer");
    }
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  Result<std::string> ReadString() {
    auto len = Read<std::uint64_t>();
    if (!len.ok()) return len.status();
    if (pos_ + *len > size_) {
      return OutOfRangeError("BinaryReader: string past end of buffer");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(*len));
    pos_ += static_cast<std::size_t>(*len);
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Result<std::vector<T>> ReadVector() {
    auto len = Read<std::uint64_t>();
    if (!len.ok()) return len.status();
    const std::size_t bytes = static_cast<std::size_t>(*len) * sizeof(T);
    if (pos_ + bytes > size_) {
      return OutOfRangeError("BinaryReader: vector past end of buffer");
    }
    std::vector<T> v(static_cast<std::size_t>(*len));
    std::memcpy(v.data(), data_ + pos_, bytes);
    pos_ += bytes;
    return v;
  }

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool AtEnd() const noexcept { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace apspark
