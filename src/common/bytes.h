// Byte-count helpers: human-readable formatting and size literals used by the
// virtual cluster's storage/network accounting.
#pragma once

#include <cstdint>
#include <string>

namespace apspark {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;
inline constexpr std::uint64_t kTiB = 1024ULL * kGiB;

/// "512B", "4.0KiB", "264.1GiB", "1.0TiB".
std::string FormatBytes(std::uint64_t bytes);

/// Same, for rates ("125.0MiB/s").
std::string FormatRate(double bytes_per_second);

}  // namespace apspark
