// Minimal leveled logger. Single-threaded writers are the common case; a
// mutex guards the sink so engine worker threads may log safely.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace apspark {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

/// Writes a single formatted log line to stderr (thread-safe).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style one-shot builder: emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace apspark

#define APSPARK_LOG(level)                                     \
  if (static_cast<int>(level) < static_cast<int>(::apspark::GetLogLevel())) \
    ;                                                          \
  else                                                         \
    ::apspark::internal::LogLine(level)

#define LOG_DEBUG APSPARK_LOG(::apspark::LogLevel::kDebug)
#define LOG_INFO APSPARK_LOG(::apspark::LogLevel::kInfo)
#define LOG_WARN APSPARK_LOG(::apspark::LogLevel::kWarn)
#define LOG_ERROR APSPARK_LOG(::apspark::LogLevel::kError)
