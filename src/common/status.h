// Lightweight status / result types used across the library.
//
// We deliberately avoid exceptions on hot paths (per C++ Core Guidelines E.x
// advice for performance-critical code with recoverable conditions): engine
// operations that can fail for *modelled* reasons (e.g. a virtual node running
// out of local storage, which the paper observes for the Blocked In-Memory
// solver) return Status/Result values that callers must consume.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace apspark {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,  // e.g. virtual local storage overflow
  kNotFound,
  kInternal,
  kUnimplemented,
  kAborted,   // e.g. injected task failure that exhausted retries
  kDataLoss,  // executor loss destroyed state the lineage cannot replay
  kStoreCorrupt,  // persisted block store failed validation (bad magic,
                  // checksum mismatch, truncated file, malformed manifest)
};

/// Human-readable name of a status code ("RESOURCE_EXHAUSTED", ...).
const char* StatusCodeName(StatusCode code) noexcept;

/// A success-or-error value. Cheap to copy on the success path.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Formats as "OK" or "CODE: message".
  std::string ToString() const;

  /// Throws std::runtime_error if not ok. For call sites where failure is a
  /// programming error rather than a modelled condition.
  void CheckOk() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status OutOfRangeError(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status FailedPreconditionError(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status ResourceExhaustedError(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status NotFoundError(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status InternalError(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status UnimplementedError(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status AbortedError(std::string msg) {
  return {StatusCode::kAborted, std::move(msg)};
}
inline Status DataLossError(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status StoreCorruptError(std::string msg) {
  return {StatusCode::kStoreCorrupt, std::move(msg)};
}

/// Result<T>: either a value or an error Status (never both).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      data_ = Status(StatusCode::kInternal,
                     "Result constructed from OK status without a value");
    }
  }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    EnsureOk();
    return std::get<T>(data_);
  }
  const T& value() const& {
    EnsureOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      throw std::runtime_error("Result accessed with error: " +
                               std::get<Status>(data_).ToString());
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace apspark
