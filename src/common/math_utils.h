// Small arithmetic helpers shared across modules.
#pragma once

#include <cstdint>

namespace apspark {

/// ceil(a / b) for positive integers.
constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Number of q*q upper-triangular (including diagonal) block keys.
constexpr std::int64_t UpperTriangularCount(std::int64_t q) noexcept {
  return q * (q + 1) / 2;
}

/// ceil(log2(n)) for n >= 1; 0 for n <= 1. Number of repeated-squaring
/// iterations required so that (min,+) A^(2^k) covers all paths of length n.
constexpr int CeilLog2(std::int64_t n) noexcept {
  int k = 0;
  std::int64_t reach = 1;
  while (reach < n) {
    reach *= 2;
    ++k;
  }
  return k;
}

}  // namespace apspark
