// Small arithmetic helpers shared across modules.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace apspark {

/// ceil(a / b) for positive integers.
constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Number of q*q upper-triangular (including diagonal) block keys.
constexpr std::int64_t UpperTriangularCount(std::int64_t q) noexcept {
  return q * (q + 1) / 2;
}

/// ceil(log2(n)) for n >= 1; 0 for n <= 1. Number of repeated-squaring
/// iterations required so that (min,+) A^(2^k) covers all paths of length n.
constexpr int CeilLog2(std::int64_t n) noexcept {
  int k = 0;
  std::int64_t reach = 1;
  while (reach < n) {
    reach *= 2;
    ++k;
  }
  return k;
}

/// Longest-processing-time list scheduling of `piece_seconds` onto `machines`
/// identical machines; returns the makespan. With machines <= 1 the pieces
/// are summed in their given order (so a sequential charge loop and a
/// one-machine schedule produce bitwise-identical totals). Used both by the
/// virtual cluster's stage scheduler and by the cost model's intra-task
/// parallelism dimension.
inline double LptMakespan(std::vector<double> piece_seconds, int machines) {
  if (piece_seconds.empty()) return 0.0;
  if (machines <= 1) {
    double total = 0;
    for (double t : piece_seconds) total += t;
    return total;
  }
  std::sort(piece_seconds.begin(), piece_seconds.end(), std::greater<>());
  // Min-heap of machine finish times.
  std::priority_queue<double, std::vector<double>, std::greater<>> finish;
  for (int m = 0; m < machines; ++m) finish.push(0.0);
  double makespan = 0.0;
  for (double t : piece_seconds) {
    const double start = finish.top();
    finish.pop();
    const double end = start + t;
    finish.push(end);
    makespan = std::max(makespan, end);
  }
  return makespan;
}

/// Where one piece landed in an LPT schedule: which machine ran it and its
/// [start, end) window in schedule-relative seconds.
struct LptPlacement {
  int machine = 0;
  double start = 0;
  double end = 0;
};

/// The full per-piece assignment behind LptMakespan: same descending-order
/// list scheduling, same tie-breaking (equal finish times pick the
/// lowest-numbered machine), so max(end) over the result equals
/// LptMakespan(piece_seconds, machines) exactly. The observability layer
/// uses this to draw task spans on node/slot lanes; the clock-advancing path
/// keeps calling LptMakespan, so tracing cannot perturb the simulation.
inline std::vector<LptPlacement> LptSchedule(
    const std::vector<double>& piece_seconds, int machines) {
  std::vector<LptPlacement> placed(piece_seconds.size());
  if (piece_seconds.empty()) return placed;
  if (machines <= 1) {
    double at = 0;
    for (std::size_t i = 0; i < piece_seconds.size(); ++i) {
      placed[i] = {0, at, at + piece_seconds[i]};
      at += piece_seconds[i];
    }
    return placed;
  }
  std::vector<std::size_t> order(piece_seconds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return piece_seconds[a] > piece_seconds[b];
                   });
  using Slot = std::pair<double, int>;  // (finish time, machine id)
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> finish;
  for (int m = 0; m < machines; ++m) finish.emplace(0.0, m);
  for (const std::size_t i : order) {
    const auto [start, machine] = finish.top();
    finish.pop();
    const double end = start + piece_seconds[i];
    placed[i] = {machine, start, end};
    finish.emplace(end, machine);
  }
  return placed;
}

}  // namespace apspark
