#include "common/rng.h"

#include <cmath>

namespace apspark {
namespace {

constexpr std::uint64_t RotL(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t Mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

std::uint64_t Xoshiro256::Next() noexcept {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Xoshiro256::NextDouble() noexcept {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::NextDouble(double lo, double hi) noexcept {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Xoshiro256::NextBounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = Next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Xoshiro256::NextGeometric(double p) noexcept {
  if (p >= 1.0) return 0;
  // Inverse transform: floor(log(U) / log(1-p)).
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Xoshiro256::NextGaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

void Xoshiro256::Jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : theta_(theta) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail short of 1
}

std::uint64_t ZipfSampler::Sample(Xoshiro256& rng) const noexcept {
  const double u = rng.NextDouble();
  // First k with cdf_[k] > u.
  std::uint64_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace apspark
