#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace apspark {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* LevelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace apspark
