// Wall-clock timing and duration formatting.
//
// FormatDuration renders times the way the paper's Table 2 does
// ("45s", "2m23s", "9d16h", "1h15m"), which lets our benchmark output be
// compared side by side with the published tables.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace apspark {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in seconds using the paper's compact two-unit style:
///   0.022  -> "22ms"        45     -> "45s"
///   143    -> "2m23s"       4500   -> "1h15m"
///   836#k  -> "9d16h"
std::string FormatDuration(double seconds);

/// Formats seconds with fixed precision, e.g. "12.34s".
std::string FormatSeconds(double seconds, int precision = 2);

}  // namespace apspark
