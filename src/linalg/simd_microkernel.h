// Register-blocked SIMD micro-tile shared by the AVX2 and AVX-512 backends.
//
// This header is included ONLY by kernels_simd_avx2.cc / kernels_simd_avx512.cc
// (which are compiled with per-file ISA flags); it must never leak into the
// baseline-ISA translation units. The two backends instantiate the same
// template with a vector-op wrapper V providing:
//
//   using Vec;  using Mask;  static constexpr std::int64_t kWidth;
//   Load / Store            unaligned full-vector access
//   TailMask(cnt)           mask selecting the first cnt lanes (0 <= cnt <=
//                           kWidth; 0 = no lanes, kWidth = all lanes)
//   MaskLoad / MaskStore    masked access (masked-out lanes read as 0.0 and
//                           are never written)
//   Broadcast(x)            splat a scalar
//   Min(x, y) / Max(x, y)   lane-wise x<y?x:y / x>y?x:y that return y when
//                           the compare is false OR unordered — the x86
//                           min/maxpd rule. With (candidate, accumulator)
//                           operand order this reproduces the scalar
//                           semirings' keep-on-tie, keep-on-NaN Add exactly.
//   AddPd / MulPd           IEEE double add / mul (no FMA: contraction would
//                           change results vs the scalar kernels)
//   BoolOr / BoolAnd        lane-wise (x!=0 || y!=0) ? 1.0 : 0.0 and the &&
//                           twin, built from NEQ_UQ compare masks so NaN
//                           counts as "true" exactly like scalar x != 0.0
//
// Shape: a 2x4 (rows x vectors) register micro-tile — eight accumulators
// live in registers across each k chunk, so C traffic is one load + one
// store per strip per chunk and every B load is amortized over two C rows.
//
// B is repacked per (j0, k0) tile into contiguous per-strip micro-panels
// (GEMM-style): walking a 4-vector column strip down k in the natural
// row-major layout strides by 8 KiB per step at tile_j = 1024, which defeats
// the hardware prefetcher and leaves the micro-tile latency-bound on L2.
// The packed layout makes the inner k loop a sequential read of a
// kn x (4 kWidth) panel, and the pack cost (one pass over the tile) is
// amortized over every row pair of the block. Ragged strip tails are
// zero-padded in the pack so the k loop needs no masked B loads; the dead
// lanes compute garbage that masked C stores never write back.
//
// Bitwise contract (vs the scalar TiledRows in kernels.cc): for each output
// element, candidates S::Multiply(a_ik, b_kj) are folded in ascending-k
// order with keep-on-tie Add, identical per-lane arithmetic, no reassociation
// of Multiply, no FMA. The scalar path's all-annihilator quad skip is
// dropped rather than masked: an annihilator a_ik makes Multiply(a_ik, b)
// another annihilator (or a NaN candidate losing every Add) in all four
// semirings' domains, so folding it is the identity — same function, no
// branch. Aliasing of C with A/B is the caller's problem (kernels.cc routes
// aliased calls to the scalar path).

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "linalg/semiring.h"

namespace apspark::linalg::simd_detail {

/// Lane-wise semiring ops over a vector wrapper V: the vector twin of the
/// scalar structs in semiring.h, with operand orders chosen so min/maxpd
/// tie/NaN behaviour matches the scalar branches bit for bit.
template <typename V, typename S>
struct VecAlgebra;

template <typename V>
struct VecAlgebra<V, MinPlusSemiring> {
  using Vec = typename V::Vec;
  // scalar: cand < acc ? cand : acc  — minpd(cand, acc) keeps acc on
  // tie/NaN, the same selection.
  static Vec Add(Vec acc, Vec cand) { return V::Min(cand, acc); }
  static Vec Multiply(Vec a, Vec b) { return V::AddPd(a, b); }
};

template <typename V>
struct VecAlgebra<V, BooleanSemiring> {
  using Vec = typename V::Vec;
  static Vec Add(Vec acc, Vec cand) { return V::BoolOr(acc, cand); }
  static Vec Multiply(Vec a, Vec b) { return V::BoolAnd(a, b); }
};

template <typename V>
struct VecAlgebra<V, MaxMinSemiring> {
  using Vec = typename V::Vec;
  static Vec Add(Vec acc, Vec cand) { return V::Max(cand, acc); }
  // scalar: b < a ? b : a  — minpd(b, a) returns a on tie/NaN, same branch.
  static Vec Multiply(Vec a, Vec b) { return V::Min(b, a); }
};

template <typename V>
struct VecAlgebra<V, MaxTimesSemiring> {
  using Vec = typename V::Vec;
  static Vec Add(Vec acc, Vec cand) { return V::Max(cand, acc); }
  static Vec Multiply(Vec a, Vec b) { return V::MulPd(a, b); }
};

/// One packed 4-vector column strip of one or two C rows: the 2x4 register
/// micro-tile. `bp` points at the strip's packed micro-panel (kn rows of
/// 4*kWidth contiguous doubles). When kMasked, `live` < 4*kWidth columns are
/// real; the per-vector masks gate only the C loads/stores — B reads come
/// from the zero-padded pack at full width, and dead lanes are never written.
template <typename V, typename S, int kRows, bool kMasked>
inline void MicroStrip(std::int64_t kn, std::int64_t live, const double* ap0,
                       const double* ap1, const double* bp, double* cp0,
                       double* cp1) {
  static_assert(kRows == 1 || kRows == 2);
  using A = VecAlgebra<V, S>;
  using Vec = typename V::Vec;
  using Mask = typename V::Mask;
  constexpr std::int64_t W = V::kWidth;
  Mask m0{}, m1{}, m2{}, m3{};
  Vec c00, c01, c02, c03;
  if constexpr (kMasked) {
    m0 = V::TailMask(std::clamp<std::int64_t>(live - 0 * W, 0, W));
    m1 = V::TailMask(std::clamp<std::int64_t>(live - 1 * W, 0, W));
    m2 = V::TailMask(std::clamp<std::int64_t>(live - 2 * W, 0, W));
    m3 = V::TailMask(std::clamp<std::int64_t>(live - 3 * W, 0, W));
    c00 = V::MaskLoad(cp0 + 0 * W, m0);
    c01 = V::MaskLoad(cp0 + 1 * W, m1);
    c02 = V::MaskLoad(cp0 + 2 * W, m2);
    c03 = V::MaskLoad(cp0 + 3 * W, m3);
  } else {
    c00 = V::Load(cp0 + 0 * W);
    c01 = V::Load(cp0 + 1 * W);
    c02 = V::Load(cp0 + 2 * W);
    c03 = V::Load(cp0 + 3 * W);
  }
  Vec c10 = c00, c11 = c01, c12 = c02, c13 = c03;
  if constexpr (kRows == 2) {
    if constexpr (kMasked) {
      c10 = V::MaskLoad(cp1 + 0 * W, m0);
      c11 = V::MaskLoad(cp1 + 1 * W, m1);
      c12 = V::MaskLoad(cp1 + 2 * W, m2);
      c13 = V::MaskLoad(cp1 + 3 * W, m3);
    } else {
      c10 = V::Load(cp1 + 0 * W);
      c11 = V::Load(cp1 + 1 * W);
      c12 = V::Load(cp1 + 2 * W);
      c13 = V::Load(cp1 + 3 * W);
    }
  }
  for (std::int64_t kk = 0; kk < kn; ++kk) {
    const double* bk = bp + kk * 4 * W;
    const Vec b0 = V::Load(bk + 0 * W);
    const Vec b1 = V::Load(bk + 1 * W);
    const Vec b2 = V::Load(bk + 2 * W);
    const Vec b3 = V::Load(bk + 3 * W);
    const Vec a0 = V::Broadcast(ap0[kk]);
    c00 = A::Add(c00, A::Multiply(a0, b0));
    c01 = A::Add(c01, A::Multiply(a0, b1));
    c02 = A::Add(c02, A::Multiply(a0, b2));
    c03 = A::Add(c03, A::Multiply(a0, b3));
    if constexpr (kRows == 2) {
      const Vec a1 = V::Broadcast(ap1[kk]);
      c10 = A::Add(c10, A::Multiply(a1, b0));
      c11 = A::Add(c11, A::Multiply(a1, b1));
      c12 = A::Add(c12, A::Multiply(a1, b2));
      c13 = A::Add(c13, A::Multiply(a1, b3));
    }
  }
  if constexpr (kMasked) {
    V::MaskStore(cp0 + 0 * W, m0, c00);
    V::MaskStore(cp0 + 1 * W, m1, c01);
    V::MaskStore(cp0 + 2 * W, m2, c02);
    V::MaskStore(cp0 + 3 * W, m3, c03);
    if constexpr (kRows == 2) {
      V::MaskStore(cp1 + 0 * W, m0, c10);
      V::MaskStore(cp1 + 1 * W, m1, c11);
      V::MaskStore(cp1 + 2 * W, m2, c12);
      V::MaskStore(cp1 + 3 * W, m3, c13);
    }
  } else {
    V::Store(cp0 + 0 * W, c00);
    V::Store(cp0 + 1 * W, c01);
    V::Store(cp0 + 2 * W, c02);
    V::Store(cp0 + 3 * W, c03);
    if constexpr (kRows == 2) {
      V::Store(cp1 + 0 * W, c10);
      V::Store(cp1 + 1 * W, c11);
      V::Store(cp1 + 2 * W, c12);
      V::Store(cp1 + 3 * W, c13);
    }
  }
}

/// Packed strips of one row pair (or a final single row) over the current
/// (j0, k0) tile: full micro-tiles, then one masked tail strip.
template <typename V, typename S, int kRows>
inline void MicroRowStrips(std::int64_t i, std::int64_t j0, std::int64_t jn,
                           std::int64_t k0, std::int64_t kn, const double* a,
                           std::int64_t lda, const double* pack, double* c,
                           std::int64_t ldc) {
  constexpr std::int64_t SW = 4 * V::kWidth;
  const double* ap0 = a + i * lda + k0;
  const double* ap1 = kRows == 2 ? ap0 + lda : ap0;
  double* cp0 = c + i * ldc + j0;
  double* cp1 = kRows == 2 ? cp0 + ldc : cp0;
  const std::int64_t sn = (jn + SW - 1) / SW;
  for (std::int64_t s = 0; s < sn; ++s) {
    const double* bp = pack + s * kn * SW;
    const std::int64_t live = jn - s * SW;
    if (live >= SW) {
      MicroStrip<V, S, kRows, false>(kn, SW, ap0, ap1, bp, cp0 + s * SW,
                                     cp1 + s * SW);
    } else {
      MicroStrip<V, S, kRows, true>(kn, live, ap0, ap1, bp, cp0 + s * SW,
                                    cp1 + s * SW);
    }
  }
}

/// SIMD body of the tiled accumulate over C rows [i0, i1): same tile_j /
/// tile_k blocking and ascending-k candidate order as the scalar TiledRows,
/// with the k loop of every column strip register-resident and B repacked
/// per tile into sequential micro-panels. Degenerates to the panel kernel's
/// whole-reduction-in-registers shape when tile_j >= n and tile_k >= k.
template <typename V, typename S>
void SimdTiledRowsImpl(std::int64_t i0, std::int64_t i1, std::int64_t n,
                       std::int64_t k, const double* a, std::int64_t lda,
                       const double* b, std::int64_t ldb, double* c,
                       std::int64_t ldc, std::int64_t tile_j,
                       std::int64_t tile_k) {
  constexpr std::int64_t SW = 4 * V::kWidth;
  const std::int64_t tj = std::max<std::int64_t>(SW, tile_j);
  const std::int64_t tk = std::max<std::int64_t>(1, tile_k);
  const std::int64_t sn_max = (std::min(tj, n) + SW - 1) / SW;
  const std::int64_t kn_max = std::min(tk, k);
  std::vector<double> pack(static_cast<std::size_t>(sn_max * kn_max * SW));
  for (std::int64_t j0 = 0; j0 < n; j0 += tj) {
    const std::int64_t jn = std::min(tj, n - j0);
    const std::int64_t sn = (jn + SW - 1) / SW;
    for (std::int64_t k0 = 0; k0 < k; k0 += tk) {
      const std::int64_t kn = std::min(tk, k - k0);
      // Pack the B tile strip-major: pack[(s*kn + kk)*SW ..] holds B row
      // k0+kk, columns j0+s*SW .. +SW, zero-padded past jn. Reads are
      // contiguous B rows; writes land in the L2-resident pack.
      for (std::int64_t kk = 0; kk < kn; ++kk) {
        const double* brow = b + (k0 + kk) * ldb + j0;
        for (std::int64_t s = 0; s < sn; ++s) {
          double* dst = pack.data() + (s * kn + kk) * SW;
          const std::int64_t cols = std::min<std::int64_t>(SW, jn - s * SW);
          std::int64_t t = 0;
          for (; t < cols; ++t) dst[t] = brow[s * SW + t];
          for (; t < SW; ++t) dst[t] = 0.0;
        }
      }
      std::int64_t i = i0;
      for (; i + 2 <= i1; i += 2) {
        MicroRowStrips<V, S, 2>(i, j0, jn, k0, kn, a, lda, pack.data(), c,
                                ldc);
      }
      if (i < i1) {
        MicroRowStrips<V, S, 1>(i, j0, jn, k0, kn, a, lda, pack.data(), c,
                                ldc);
      }
    }
  }
}

}  // namespace apspark::linalg::simd_detail
