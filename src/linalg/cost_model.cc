#include "linalg/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "common/time_utils.h"
#include "linalg/dense_block.h"
#include "linalg/kernels.h"

namespace apspark::linalg {

double CostModel::CacheFactor(double elems) const noexcept {
  if (elems <= cache_knee_elems) return 1.0;
  // Ramp linearly in log2(elems) over one octave past the knee.
  const double octaves = std::log2(elems / cache_knee_elems);
  const double t = std::min(1.0, octaves);
  return 1.0 + t * (cache_penalty - 1.0);
}

double CostModel::FloydWarshallSeconds(std::int64_t b) const noexcept {
  const double bd = static_cast<double>(b);
  return fw_op_seconds * bd * bd * bd * CacheFactor(bd * bd);
}

double CostModel::MinPlusSeconds(std::int64_t m, std::int64_t n,
                                 std::int64_t k) const noexcept {
  const double ops = static_cast<double>(m) * static_cast<double>(n) *
                     static_cast<double>(k);
  // Working set ~ the larger operand/result footprint.
  const double elems =
      std::max({static_cast<double>(m) * k, static_cast<double>(k) * n,
                static_cast<double>(m) * n});
  return minplus_op_seconds * ops * CacheFactor(elems);
}

double CostModel::ElementwiseSeconds(std::int64_t elems) const noexcept {
  return elementwise_op_seconds * static_cast<double>(elems);
}

double CostModel::SequentialGops(std::int64_t n) const noexcept {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / FloydWarshallSeconds(n) / 1e9;
}

double CostModel::IntraTaskSpan(std::vector<double> piece_seconds) const {
  return apspark::LptMakespan(std::move(piece_seconds), intra_task_cores);
}

namespace {

DenseBlock RandomBlock(std::int64_t rows, std::int64_t cols,
                       std::uint64_t seed) {
  apspark::Xoshiro256 rng(seed);
  DenseBlock b(rows, cols, 0.0);
  for (std::int64_t i = 0; i < b.size(); ++i) {
    b.mutable_data()[i] = rng.NextDouble(0.0, 100.0);
  }
  return b;
}

}  // namespace

CostModel CostModel::Calibrate(std::int64_t b, std::uint64_t seed) {
  CostModel model;  // start from paper defaults (keeps cache parameters)
  const double ops = static_cast<double>(b) * b * b;

  DenseBlock fw = RandomBlock(b, b, seed);
  apspark::WallTimer timer;
  FloydWarshallInPlace(fw);
  model.fw_op_seconds = std::max(1e-12, timer.ElapsedSeconds() / ops);

  const DenseBlock lhs = RandomBlock(b, b, seed + 1);
  const DenseBlock rhs = RandomBlock(b, b, seed + 2);
  timer.Reset();
  DenseBlock prod = MinPlusProduct(lhs, rhs);
  model.minplus_op_seconds = std::max(1e-12, timer.ElapsedSeconds() / ops);

  timer.Reset();
  ElementMinInPlace(prod, lhs);
  model.elementwise_op_seconds = std::max(
      1e-13, timer.ElapsedSeconds() / (static_cast<double>(b) * b));
  return model;
}

}  // namespace apspark::linalg
