// AVX2 backend of the SIMD micro-kernel (see simd.h / simd_microkernel.h).
//
// Compiled with a per-file -mavx2 flag (CMakeLists.txt) so the rest of the
// library keeps its baseline ISA; when the compiler/target cannot accept the
// flag the entry points degrade to "not compiled" stubs and runtime dispatch
// never selects this backend.

#include "linalg/simd.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "linalg/simd_microkernel.h"

namespace apspark::linalg {
namespace {

/// 4-lane __m256d vector ops. Min/Max wrap vminpd/vmaxpd, whose
/// "return src2 when the compare is false or unordered" rule is what the
/// micro-kernel's operand orders rely on for scalar-bitwise ties/NaN.
struct Avx2Ops {
  using Vec = __m256d;
  using Mask = __m256i;
  static constexpr std::int64_t kWidth = 4;

  static Vec Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, Vec v) { _mm256_storeu_pd(p, v); }
  static Mask TailMask(std::int64_t cnt) {
    return _mm256_set_epi64x(cnt > 3 ? -1 : 0, cnt > 2 ? -1 : 0,
                             cnt > 1 ? -1 : 0, cnt > 0 ? -1 : 0);
  }
  static Vec MaskLoad(const double* p, Mask m) {
    return _mm256_maskload_pd(p, m);
  }
  static void MaskStore(double* p, Mask m, Vec v) {
    _mm256_maskstore_pd(p, m, v);
  }
  static Vec Broadcast(double x) { return _mm256_set1_pd(x); }
  static Vec Min(Vec x, Vec y) { return _mm256_min_pd(x, y); }
  static Vec Max(Vec x, Vec y) { return _mm256_max_pd(x, y); }
  static Vec AddPd(Vec x, Vec y) { return _mm256_add_pd(x, y); }
  static Vec MulPd(Vec x, Vec y) { return _mm256_mul_pd(x, y); }
  static Vec BoolOr(Vec x, Vec y) {
    const Vec z = _mm256_setzero_pd();
    const Vec m = _mm256_or_pd(_mm256_cmp_pd(x, z, _CMP_NEQ_UQ),
                               _mm256_cmp_pd(y, z, _CMP_NEQ_UQ));
    return _mm256_and_pd(m, _mm256_set1_pd(1.0));
  }
  static Vec BoolAnd(Vec x, Vec y) {
    const Vec z = _mm256_setzero_pd();
    const Vec m = _mm256_and_pd(_mm256_cmp_pd(x, z, _CMP_NEQ_UQ),
                                _mm256_cmp_pd(y, z, _CMP_NEQ_UQ));
    return _mm256_and_pd(m, _mm256_set1_pd(1.0));
  }
};

}  // namespace

bool SimdCompiledAvx2() noexcept { return true; }

void SimdTiledRowsAvx2(SemiringId id, std::int64_t i0, std::int64_t i1,
                       std::int64_t n, std::int64_t k, const double* a,
                       std::int64_t lda, const double* b, std::int64_t ldb,
                       double* c, std::int64_t ldc, std::int64_t tile_j,
                       std::int64_t tile_k) {
  WithSemiring(id, [&](auto s) {
    using S = decltype(s);
    simd_detail::SimdTiledRowsImpl<Avx2Ops, S>(i0, i1, n, k, a, lda, b, ldb,
                                               c, ldc, tile_j, tile_k);
  });
}

}  // namespace apspark::linalg

#else  // stub: flag rejected or non-x86 target

#include <cstdlib>

namespace apspark::linalg {

bool SimdCompiledAvx2() noexcept { return false; }

void SimdTiledRowsAvx2(SemiringId, std::int64_t, std::int64_t, std::int64_t,
                       std::int64_t, const double*, std::int64_t,
                       const double*, std::int64_t, double*, std::int64_t,
                       std::int64_t, std::int64_t) {
  std::abort();  // dispatch never routes here when the backend is absent
}

}  // namespace apspark::linalg

#endif
