#include "linalg/kernel_registry.h"

#include <memory>

#include "common/thread_pool.h"

namespace apspark::linalg {
namespace {

KernelTuning& MutableTuning() {
  static KernelTuning tuning;
  return tuning;
}

ThreadPool*& OverridePool() {
  static ThreadPool* pool = nullptr;
  return pool;
}

}  // namespace

const KernelTuning& GetKernelTuning() noexcept { return MutableTuning(); }

void SetKernelTuning(const KernelTuning& tuning) noexcept {
  MutableTuning() = tuning;
}

void SetKernelVariant(KernelVariant variant) noexcept {
  MutableTuning().variant = variant;
}

KernelVariant GetKernelVariant() noexcept { return MutableTuning().variant; }

void SetActiveSemiring(SemiringId semiring) noexcept {
  MutableTuning().semiring = semiring;
}

SemiringId GetActiveSemiring() noexcept { return MutableTuning().semiring; }

void SetKernelThreadPool(ThreadPool* pool) noexcept { OverridePool() = pool; }

ThreadPool& KernelThreadPool() {
  if (OverridePool() != nullptr) return *OverridePool();
  static std::unique_ptr<ThreadPool> default_pool =
      std::make_unique<ThreadPool>(0);
  return *default_pool;
}

const char* KernelVariantName(KernelVariant variant) noexcept {
  switch (variant) {
    case KernelVariant::kNaive:
      return "naive";
    case KernelVariant::kTiled:
      return "tiled";
    case KernelVariant::kTiledParallel:
      return "tiled_parallel";
  }
  return "?";
}

std::optional<KernelVariant> ParseKernelVariant(std::string_view name) {
  if (name == "naive") return KernelVariant::kNaive;
  if (name == "tiled") return KernelVariant::kTiled;
  if (name == "tiled_parallel" || name == "parallel") {
    return KernelVariant::kTiledParallel;
  }
  return std::nullopt;
}

const char* SemiringName(SemiringId semiring) noexcept {
  switch (semiring) {
    case SemiringId::kMinPlus:
      return "minplus";
    case SemiringId::kBoolean:
      return "boolean";
    case SemiringId::kMaxMin:
      return "maxmin";
    case SemiringId::kMaxTimes:
      return "maxtimes";
  }
  return "?";
}

std::optional<SemiringId> ParseSemiring(std::string_view name) {
  if (name == "minplus" || name == "min-plus") return SemiringId::kMinPlus;
  if (name == "boolean" || name == "or-and") return SemiringId::kBoolean;
  if (name == "maxmin" || name == "max-min") return SemiringId::kMaxMin;
  if (name == "maxtimes" || name == "max-times") return SemiringId::kMaxTimes;
  return std::nullopt;
}

}  // namespace apspark::linalg
