#include "linalg/kernel_registry.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/thread_pool.h"
#include "linalg/simd.h"

namespace apspark::linalg {
namespace {

/// CPUID feature probe. __builtin_cpu_supports is a GCC/clang builtin that
/// is only meaningful on x86; every other target runs scalar.
bool CpuSupports(SimdIsa isa) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdIsa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return isa == SimdIsa::kScalar;
#endif
}

KernelTuning& MutableTuning() {
  static KernelTuning tuning;
  return tuning;
}

ThreadPool*& OverridePool() {
  static ThreadPool* pool = nullptr;
  return pool;
}

}  // namespace

bool SimdIsaAvailable(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
      return SimdCompiledAvx2() && CpuSupports(SimdIsa::kAvx2);
    case SimdIsa::kAvx512:
      return SimdCompiledAvx512() && CpuSupports(SimdIsa::kAvx512);
  }
  return false;
}

SimdIsa DetectSimdIsa() noexcept {
  static const SimdIsa best = [] {
    if (SimdIsaAvailable(SimdIsa::kAvx512)) return SimdIsa::kAvx512;
    if (SimdIsaAvailable(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
    return SimdIsa::kScalar;
  }();
  return best;
}

SimdIsa ResolveSimdIsa(SimdIsa requested) noexcept {
  // Fall back down the width ladder: a request the host cannot execute runs
  // the next-widest available backend instead of crashing or going scalar
  // outright (an avx512 tuning carried onto an AVX2 host should still
  // vectorize).
  if (requested == SimdIsa::kAvx512 && !SimdIsaAvailable(SimdIsa::kAvx512)) {
    requested = SimdIsa::kAvx2;
  }
  if (requested == SimdIsa::kAvx2 && !SimdIsaAvailable(SimdIsa::kAvx2)) {
    requested = SimdIsa::kScalar;
  }
  return requested;
}

SimdIsa DefaultSimdIsa() noexcept {
  static const SimdIsa def = [] {
    if (const char* forced = std::getenv("APSPARK_FORCE_ISA")) {
      if (const auto parsed = ParseSimdIsa(forced)) {
        return ResolveSimdIsa(*parsed);
      }
      std::fprintf(stderr,
                   "apspark: ignoring unknown APSPARK_FORCE_ISA='%s' "
                   "(want scalar|avx2|avx512)\n",
                   forced);
    }
    return DetectSimdIsa();
  }();
  return def;
}

const char* SimdIsaName(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<SimdIsa> ParseSimdIsa(std::string_view name) {
  if (name == "scalar" || name == "none") return SimdIsa::kScalar;
  if (name == "avx2") return SimdIsa::kAvx2;
  if (name == "avx512" || name == "avx512f") return SimdIsa::kAvx512;
  if (name == "auto") return DefaultSimdIsa();
  return std::nullopt;
}

std::string DescribeKernelTuning(const KernelTuning& tuning) {
  const SimdIsa resolved = ResolveSimdIsa(tuning.isa);
  std::string out = "variant=";
  out += KernelVariantName(tuning.variant);
  out += " semiring=";
  out += SemiringName(tuning.semiring);
  out += " isa=";
  out += SimdIsaName(resolved);
  out += " (requested ";
  out += SimdIsaName(tuning.isa);
  out += ", host best ";
  out += SimdIsaName(DetectSimdIsa());
  out += ") tiles j=";
  out += std::to_string(tuning.tile_j);
  out += " k=";
  out += std::to_string(tuning.tile_k);
  out += " fw=";
  out += std::to_string(tuning.fw_block);
  out += tuning.auto_tuned ? " [auto-tuned]" : " [default]";
  return out;
}

const KernelTuning& GetKernelTuning() noexcept { return MutableTuning(); }

void SetKernelTuning(const KernelTuning& tuning) noexcept {
  MutableTuning() = tuning;
}

void SetKernelVariant(KernelVariant variant) noexcept {
  MutableTuning().variant = variant;
}

KernelVariant GetKernelVariant() noexcept { return MutableTuning().variant; }

void SetActiveSemiring(SemiringId semiring) noexcept {
  MutableTuning().semiring = semiring;
}

SemiringId GetActiveSemiring() noexcept { return MutableTuning().semiring; }

void SetKernelThreadPool(ThreadPool* pool) noexcept { OverridePool() = pool; }

ThreadPool& KernelThreadPool() {
  if (OverridePool() != nullptr) return *OverridePool();
  static std::unique_ptr<ThreadPool> default_pool =
      std::make_unique<ThreadPool>(0);
  return *default_pool;
}

const char* KernelVariantName(KernelVariant variant) noexcept {
  switch (variant) {
    case KernelVariant::kNaive:
      return "naive";
    case KernelVariant::kTiled:
      return "tiled";
    case KernelVariant::kTiledParallel:
      return "tiled_parallel";
  }
  return "?";
}

std::optional<KernelVariant> ParseKernelVariant(std::string_view name) {
  if (name == "naive") return KernelVariant::kNaive;
  if (name == "tiled") return KernelVariant::kTiled;
  if (name == "tiled_parallel" || name == "parallel") {
    return KernelVariant::kTiledParallel;
  }
  return std::nullopt;
}

const char* SemiringName(SemiringId semiring) noexcept {
  switch (semiring) {
    case SemiringId::kMinPlus:
      return "minplus";
    case SemiringId::kBoolean:
      return "boolean";
    case SemiringId::kMaxMin:
      return "maxmin";
    case SemiringId::kMaxTimes:
      return "maxtimes";
  }
  return "?";
}

std::optional<SemiringId> ParseSemiring(std::string_view name) {
  if (name == "minplus" || name == "min-plus") return SemiringId::kMinPlus;
  if (name == "boolean" || name == "or-and") return SemiringId::kBoolean;
  if (name == "maxmin" || name == "max-min") return SemiringId::kMaxMin;
  if (name == "maxtimes" || name == "max-times") return SemiringId::kMaxTimes;
  return std::nullopt;
}

}  // namespace apspark::linalg
