// Explicit-SIMD micro-kernel backends with runtime ISA dispatch.
//
// The tiled and panel kernels in kernels.cc route their inner loops through
// one of three backends, chosen per call from KernelTuning::isa (clamped by
// ResolveSimdIsa in kernel_registry.h):
//
//   scalar  — the portable tiled loops in kernels.cc (always available).
//   avx2    — 4-lane __m256d micro-tile, kernels_simd_avx2.cc.
//   avx512  — 8-lane __m512d micro-tile, kernels_simd_avx512.cc.
//
// Both SIMD translation units compile the same register-blocked 2x4
// (rows x vectors) micro-tile template (simd_microkernel.h) — they differ
// only in the vector-op wrapper they instantiate it with, and they are built
// with per-file -mavx2 / -mavx512f flags so the rest of the library keeps
// its baseline ISA. On compilers/targets without those flags the entry
// points below still link but report "not compiled"; runtime dispatch then
// never selects them, so non-x86 builds run the scalar path unchanged.
//
// Bitwise contract: for every semiring and every input (including NaN and
// out-of-domain values), the SIMD backends produce results bitwise identical
// to the scalar tiled kernel. min/max lane selection uses the (candidate,
// accumulator) operand order whose NaN/tie behaviour matches the scalar
// `cand < acc ? cand : acc` exactly, the boolean semiring uses compare-mask
// arithmetic (never min/max), and no FMA contraction is permitted. The
// scalar kernel's hoisted all-annihilator quad skip needs no vector
// counterpart: an annihilator candidate folds to a no-op under Add in all
// four semirings' domains, so the branchless form is the same function.
#pragma once

#include <cstdint>

#include "linalg/kernel_registry.h"

namespace apspark::linalg {

/// True when the translation unit for the backend was compiled with real
/// vector code (the compiler accepted -mavx2 / -mavx512f on an x86 target).
bool SimdCompiledAvx2() noexcept;
bool SimdCompiledAvx512() noexcept;

/// SIMD twin of the scalar TiledRows body in kernels.cc: processes C rows
/// [i0, i1) of C = C (+) A (x) B over the semiring named by `id`, blocking
/// columns by tile_j and the reduction by tile_k, with the k loop of each
/// column strip register-resident in a 2x4 (rows x vectors) micro-tile and
/// masked tails for non-divisible widths. Candidates are applied in
/// ascending-k order with keep-on-tie Add — bitwise equal to the scalar
/// tiled kernel (and, for the product, to the scalar oracle).
///
/// Passing tile_j >= n and tile_k >= k degenerates into the panel kernel's
/// shape: the whole reduction folds into the register accumulator, which is
/// how the rect/panel path reuses this entry point.
///
/// Callers must not pass operands that alias C (the in-place blocked-FW
/// phase updates): the scalar kernel re-reads B between quads while the
/// micro-tile holds C in registers across a whole k chunk, so aliasing
/// would change (only) the aliased schedule. kernels.cc keeps aliased calls
/// on the scalar path. Must only run when the matching SimdIsaAvailable()
/// holds; calling an unavailable backend aborts.
void SimdTiledRowsAvx2(SemiringId id, std::int64_t i0, std::int64_t i1,
                       std::int64_t n, std::int64_t k, const double* a,
                       std::int64_t lda, const double* b, std::int64_t ldb,
                       double* c, std::int64_t ldc, std::int64_t tile_j,
                       std::int64_t tile_k);
void SimdTiledRowsAvx512(SemiringId id, std::int64_t i0, std::int64_t i1,
                         std::int64_t n, std::int64_t k, const double* a,
                         std::int64_t lda, const double* b, std::int64_t ldb,
                         double* c, std::int64_t ldc, std::int64_t tile_j,
                         std::int64_t tile_k);

}  // namespace apspark::linalg
