// DenseBlock: a dense, row-major matrix of path lengths.
//
// This is the unit of data the paper stores per RDD record ("we will store
// each block A_IJ as a dense matrix", §4). Missing edges are +infinity.
//
// Phantom blocks
// --------------
// A DenseBlock may be *phantom*: it knows its shape and exact serialized size
// but carries no numeric payload. Phantom blocks let paper-scale experiments
// (n = 262,144 would need ~512 GiB of block data) run the full engine control
// path — partitioning, shuffle and storage byte accounting, scheduling —
// while kernels charge the calibrated cost model instead of executing.
// Any kernel that touches a phantom operand yields a phantom result.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/serial.h"
#include "common/status.h"

namespace apspark::linalg {

/// Path length of a missing edge / unreached pair.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

class DenseBlock;
using BlockPtr = std::shared_ptr<const DenseBlock>;

// ---------------------------------------------------------------------------
// Deep-copy accounting (the zero-copy data plane's debug instrument)
// ---------------------------------------------------------------------------
//
// Every duplication of a materialized block payload — copy construction,
// copy assignment, or a Deserialize() materialization — increments a
// process-wide counter. Copies made under a CowScope are *sanctioned*: the
// explicit copy-on-write mutation sites (a kernel taking a private copy of
// its base block before updating it in place, a checkpoint re-materializing
// durable bytes). The data-plane regression tests assert that the
// unsanctioned count stays at zero across whole solves: shuffle buckets,
// cached partitions, staged reads, and driver collects move refs, never
// payloads. Counting is two relaxed atomic increments per O(b^2) copy, so it
// stays enabled in release builds too.

struct BlockCopyStats {
  /// Deep copies of materialized payloads since process start / Reset().
  static std::uint64_t TotalCopies() noexcept;
  /// Copies made under a CowScope (explicit copy-on-write mutation sites).
  static std::uint64_t SanctionedCopies() noexcept;
  /// TotalCopies() - SanctionedCopies(): must stay flat across a solve.
  static std::uint64_t UnsanctionedCopies() noexcept;
  /// Test hook: zeroes both counters.
  static void Reset() noexcept;
};

/// RAII marker: block copies on *this thread* inside the scope are explicit
/// copy-on-write mutation sites. Nests. Kernel workers open one around their
/// base-block copy, so pool-thread copies are attributed correctly.
class CowScope {
 public:
  CowScope() noexcept;
  ~CowScope();
  CowScope(const CowScope&) = delete;
  CowScope& operator=(const CowScope&) = delete;
};

class DenseBlock {
 public:
  /// An empty 0x0 block.
  DenseBlock() = default;

  /// Materialized block filled with `fill`.
  DenseBlock(std::int64_t rows, std::int64_t cols, double fill = kInf);

  /// Materialized block adopting `data` (size must be rows*cols).
  DenseBlock(std::int64_t rows, std::int64_t cols, std::vector<double> data);

  /// Shape-only phantom block (see file comment).
  static DenseBlock Phantom(std::int64_t rows, std::int64_t cols);

  // Copies of materialized payloads are counted (see BlockCopyStats above);
  // moves stay free. Defined out of line so the accounting lives in one
  // place.
  DenseBlock(const DenseBlock& other);
  DenseBlock& operator=(const DenseBlock& other);
  DenseBlock(DenseBlock&&) noexcept = default;
  DenseBlock& operator=(DenseBlock&&) noexcept = default;
  ~DenseBlock() = default;

  std::int64_t rows() const noexcept { return rows_; }
  std::int64_t cols() const noexcept { return cols_; }
  std::int64_t size() const noexcept { return rows_ * cols_; }
  bool is_phantom() const noexcept { return phantom_; }

  /// Element access (materialized blocks only).
  double At(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  void Set(std::int64_t r, std::int64_t c, double v) {
    data_[static_cast<std::size_t>(r * cols_ + c)] = v;
  }

  const double* data() const noexcept { return data_.data(); }
  double* mutable_data() noexcept { return data_.data(); }
  double* begin() noexcept { return data_.data(); }
  const double* begin() const noexcept { return data_.data(); }
  const double* end() const noexcept { return data_.data() + data_.size(); }

  /// Row pointer (materialized blocks only).
  const double* Row(std::int64_t r) const noexcept {
    return data_.data() + static_cast<std::size_t>(r * cols_);
  }
  double* MutableRow(std::int64_t r) noexcept {
    return data_.data() + static_cast<std::size_t>(r * cols_);
  }

  /// Exact number of bytes Serialize() would produce. Identical for phantom
  /// and materialized blocks of the same shape: the virtual cluster charges
  /// the bytes the *real* block would occupy on disk or on the wire.
  std::uint64_t SerializedBytes() const noexcept;

  /// Flat binary encoding: header (rows, cols, phantom flag) + payload.
  /// Phantom blocks encode the header only but report full SerializedBytes()
  /// for accounting; PayloadElided() distinguishes the two cases.
  void Serialize(BinaryWriter& writer) const;
  static Result<DenseBlock> Deserialize(BinaryReader& reader);

  /// Extracts column `c` as a rows x 1 block (paper's ExtractCol).
  DenseBlock Column(std::int64_t c) const;

  /// Extracts row `r` as a 1 x cols block.
  DenseBlock RowBlock(std::int64_t r) const;

  /// Transposed copy (paper generates A_JI from A_IJ on demand).
  DenseBlock Transposed() const;

  /// Square sub-matrix copy [r0, r0+h) x [c0, c0+w).
  DenseBlock SubBlock(std::int64_t r0, std::int64_t c0, std::int64_t h,
                      std::int64_t w) const;

  /// Horizontal panel copy: rows [r0, r0+h) at full width — the unit a
  /// blocked k-source frontier is decomposed into (one panel per block row).
  DenseBlock RowPanel(std::int64_t r0, std::int64_t h) const;

  /// Writes `panel` (h x cols()) back over rows [r0, r0+h): reassembles a
  /// full frontier from its per-block-row panels. Materialized blocks only.
  void PasteRowPanel(std::int64_t r0, const DenseBlock& panel);

  /// True when every entry is +inf — the "this block carries no path at all"
  /// predicate behind the KSSP early-exit pivot sweep. Phantom blocks return
  /// false: their structure is unknown, so callers must not skip work.
  bool AllInfinite() const noexcept;

  /// True if every finite entry matches `other` within `tol` and the
  /// infinity patterns agree. Phantom blocks compare by shape only.
  bool ApproxEquals(const DenseBlock& other, double tol = 1e-9) const;

  /// Maximum absolute difference over matching finite entries; kInf if the
  /// shapes or infinity patterns differ.
  double MaxAbsDiff(const DenseBlock& other) const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  bool phantom_ = false;
  std::vector<double> data_;
};

/// Convenience: shared-pointer wrapper used throughout the engine.
inline BlockPtr MakeBlock(DenseBlock block) {
  return std::make_shared<const DenseBlock>(std::move(block));
}

/// n x k source frontier for batched k-source sweeps: column j carries the
/// semiring one (0) at row unit_rows[j] and +inf everywhere else — the
/// identity columns selecting the sources. Duplicate rows are allowed (the
/// same source may be asked for more than once, e.g. when k > n).
DenseBlock FrontierPanel(std::int64_t rows,
                         const std::vector<std::int64_t>& unit_rows);

}  // namespace apspark::linalg
