// DenseBlock: a dense, row-major matrix of path lengths.
//
// This is the unit of data the paper stores per RDD record ("we will store
// each block A_IJ as a dense matrix", §4). Missing edges are +infinity.
//
// Phantom blocks
// --------------
// A DenseBlock may be *phantom*: it knows its shape and exact serialized size
// but carries no numeric payload. Phantom blocks let paper-scale experiments
// (n = 262,144 would need ~512 GiB of block data) run the full engine control
// path — partitioning, shuffle and storage byte accounting, scheduling —
// while kernels charge the calibrated cost model instead of executing.
// Any kernel that touches a phantom operand yields a phantom result.
//
// Bit-packed blocks
// -----------------
// A DenseBlock may be *bit-packed*: a boolean-semiring block stored as one
// bit per entry (64 vertices per 64-bit word, row-major words, column c at
// bit c % 64 of word c / 64, LSB first) instead of one double. That is the
// 64x representation that makes n = 65536 reachability feasible where dense
// doubles never were: the word rows feed word-parallel or/and kernels, and
// SerializedBytes() / the MemoryAccountant charge the packed footprint.
// At()/Set() remain valid on packed blocks (reading 1.0/0.0, writing any
// nonzero as 1), so slicing, assembly and tests work transparently; the raw
// Row()/data() double pointers are dense-only. A phantom block can also be
// packed (PackedPhantom): model runs then charge packed bytes, keeping real
// and phantom accounting identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/serial.h"
#include "common/status.h"

namespace apspark::linalg {

/// Path length of a missing edge / unreached pair.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

class DenseBlock;
using BlockPtr = std::shared_ptr<const DenseBlock>;

// ---------------------------------------------------------------------------
// Deep-copy accounting (the zero-copy data plane's debug instrument)
// ---------------------------------------------------------------------------
//
// Every duplication of a materialized block payload — copy construction,
// copy assignment, or a Deserialize() materialization — increments a
// process-wide counter. Copies made under a CowScope are *sanctioned*: the
// explicit copy-on-write mutation sites (a kernel taking a private copy of
// its base block before updating it in place, a checkpoint re-materializing
// durable bytes). The data-plane regression tests assert that the
// unsanctioned count stays at zero across whole solves: shuffle buckets,
// cached partitions, staged reads, and driver collects move refs, never
// payloads. Counting is two relaxed atomic increments per O(b^2) copy, so it
// stays enabled in release builds too.

struct BlockCopyStats {
  /// Deep copies of materialized payloads since process start / Reset().
  static std::uint64_t TotalCopies() noexcept;
  /// Copies made under a CowScope (explicit copy-on-write mutation sites).
  static std::uint64_t SanctionedCopies() noexcept;
  /// TotalCopies() - SanctionedCopies(): must stay flat across a solve.
  static std::uint64_t UnsanctionedCopies() noexcept;
  /// Test hook: zeroes both counters.
  static void Reset() noexcept;
};

/// RAII marker: block copies on *this thread* inside the scope are explicit
/// copy-on-write mutation sites. Nests. Kernel workers open one around their
/// base-block copy, so pool-thread copies are attributed correctly.
class CowScope {
 public:
  CowScope() noexcept;
  ~CowScope();
  CowScope(const CowScope&) = delete;
  CowScope& operator=(const CowScope&) = delete;
};

class DenseBlock {
 public:
  /// An empty 0x0 block.
  DenseBlock() = default;

  /// Materialized block filled with `fill`.
  DenseBlock(std::int64_t rows, std::int64_t cols, double fill = kInf);

  /// Materialized block adopting `data` (size must be rows*cols).
  DenseBlock(std::int64_t rows, std::int64_t cols, std::vector<double> data);

  /// Shape-only phantom block (see file comment).
  static DenseBlock Phantom(std::int64_t rows, std::int64_t cols);

  /// Bit-packed boolean block, all bits = `fill` (must be 0.0 or 1.0).
  static DenseBlock PackedBoolean(std::int64_t rows, std::int64_t cols,
                                  double fill = 0.0);

  /// Shape-only phantom that *accounts* as bit-packed: SerializedBytes()
  /// reports the packed footprint, so model runs charge what the real
  /// packed plane would.
  static DenseBlock PackedPhantom(std::int64_t rows, std::int64_t cols);

  // Copies of materialized payloads are counted (see BlockCopyStats above);
  // moves stay free. Defined out of line so the accounting lives in one
  // place.
  DenseBlock(const DenseBlock& other);
  DenseBlock& operator=(const DenseBlock& other);
  DenseBlock(DenseBlock&&) noexcept = default;
  DenseBlock& operator=(DenseBlock&&) noexcept = default;
  ~DenseBlock() = default;

  std::int64_t rows() const noexcept { return rows_; }
  std::int64_t cols() const noexcept { return cols_; }
  std::int64_t size() const noexcept { return rows_ * cols_; }
  bool is_phantom() const noexcept { return phantom_; }
  bool is_packed() const noexcept { return packed_; }

  /// Element access (materialized blocks only; transparently packed-aware).
  double At(std::int64_t r, std::int64_t c) const {
    if (packed_) return GetBit(r, c) ? 1.0 : 0.0;
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  void Set(std::int64_t r, std::int64_t c, double v) {
    if (packed_) {
      SetBit(r, c, v != 0.0);
      return;
    }
    data_[static_cast<std::size_t>(r * cols_ + c)] = v;
  }

  const double* data() const noexcept { return data_.data(); }
  double* mutable_data() noexcept { return data_.data(); }
  double* begin() noexcept { return data_.data(); }
  const double* begin() const noexcept { return data_.data(); }
  const double* end() const noexcept { return data_.data() + data_.size(); }

  /// Row pointer (materialized dense blocks only).
  const double* Row(std::int64_t r) const noexcept {
    return data_.data() + static_cast<std::size_t>(r * cols_);
  }
  double* MutableRow(std::int64_t r) noexcept {
    return data_.data() + static_cast<std::size_t>(r * cols_);
  }

  // --- bit-packed plane (materialized packed blocks only) ---

  /// 64-bit words per packed row: ceil(cols / 64).
  std::int64_t words_per_row() const noexcept { return words_per_row_; }
  const std::uint64_t* WordRow(std::int64_t r) const noexcept {
    return words_.data() + static_cast<std::size_t>(r * words_per_row_);
  }
  std::uint64_t* MutableWordRow(std::int64_t r) noexcept {
    return words_.data() + static_cast<std::size_t>(r * words_per_row_);
  }
  bool GetBit(std::int64_t r, std::int64_t c) const noexcept {
    return (WordRow(r)[c >> 6] >> (c & 63)) & 1u;
  }
  void SetBit(std::int64_t r, std::int64_t c, bool v) noexcept {
    std::uint64_t& w = MutableWordRow(r)[c >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (c & 63);
    w = v ? (w | mask) : (w & ~mask);
  }

  /// Dense 0/1 copy of a packed block (phantom packed -> plain phantom).
  DenseBlock Unpacked() const;
  /// Packed copy of a dense boolean block: entries must already be 0/1-valued
  /// under `nonzero is 1` (any nonzero packs as 1). Phantom -> PackedPhantom.
  DenseBlock BitPacked() const;

  /// Exact number of bytes Serialize() would produce. Identical for phantom
  /// and materialized blocks of the same shape *and representation*: the
  /// virtual cluster charges the bytes the real block would occupy on disk
  /// or on the wire — packed blocks charge their word payload (~1/64 of the
  /// dense doubles).
  std::uint64_t SerializedBytes() const noexcept;

  /// Flat binary encoding: header (rows, cols, flags byte: bit 0 = phantom,
  /// bit 1 = packed) + payload (doubles, or packed words). Phantom blocks
  /// encode the header only but report full SerializedBytes() for
  /// accounting.
  void Serialize(BinaryWriter& writer) const;
  static Result<DenseBlock> Deserialize(BinaryReader& reader);

  /// Extracts column `c` as a rows x 1 block (paper's ExtractCol).
  DenseBlock Column(std::int64_t c) const;

  /// Extracts row `r` as a 1 x cols block.
  DenseBlock RowBlock(std::int64_t r) const;

  /// Transposed copy (paper generates A_JI from A_IJ on demand).
  DenseBlock Transposed() const;

  /// Square sub-matrix copy [r0, r0+h) x [c0, c0+w).
  DenseBlock SubBlock(std::int64_t r0, std::int64_t c0, std::int64_t h,
                      std::int64_t w) const;

  /// Horizontal panel copy: rows [r0, r0+h) at full width — the unit a
  /// blocked k-source frontier is decomposed into (one panel per block row).
  DenseBlock RowPanel(std::int64_t r0, std::int64_t h) const;

  /// Writes `panel` (h x cols()) back over rows [r0, r0+h): reassembles a
  /// full frontier from its per-block-row panels. Materialized blocks only;
  /// representations must match (both packed or both dense).
  void PasteRowPanel(std::int64_t r0, const DenseBlock& panel);

  /// True when every entry is +inf — the "this block carries no path at all"
  /// predicate behind the KSSP early-exit pivot sweep under min-plus (see
  /// linalg::BlockAllZero for the semiring-generic form). Phantom blocks
  /// return false: their structure is unknown, so callers must not skip
  /// work. Packed blocks hold booleans, never +inf, so they return false.
  bool AllInfinite() const noexcept;

  /// True if every finite entry matches `other` within `tol` and the
  /// infinity patterns agree. Phantom blocks compare by shape only; packed
  /// and dense blocks compare by value (a packed block equals its dense 0/1
  /// image).
  bool ApproxEquals(const DenseBlock& other, double tol = 1e-9) const;

  /// Maximum absolute difference over matching finite entries; kInf if the
  /// shapes or infinity patterns differ.
  double MaxAbsDiff(const DenseBlock& other) const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t words_per_row_ = 0;
  bool phantom_ = false;
  bool packed_ = false;
  std::vector<double> data_;
  std::vector<std::uint64_t> words_;
};

/// Convenience: shared-pointer wrapper used throughout the engine.
inline BlockPtr MakeBlock(DenseBlock block) {
  return std::make_shared<const DenseBlock>(std::move(block));
}

/// n x k source frontier for batched k-source sweeps: column j carries the
/// semiring one (`one`, default min-plus 0) at row unit_rows[j] and the
/// semiring zero (`zero`, default +inf) everywhere else — the identity
/// columns selecting the sources. Duplicate rows are allowed (the same
/// source may be asked for more than once, e.g. when k > n).
DenseBlock FrontierPanel(std::int64_t rows,
                         const std::vector<std::int64_t>& unit_rows,
                         double zero = kInf, double one = 0.0);

}  // namespace apspark::linalg
