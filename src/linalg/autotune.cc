#include "linalg/autotune.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_utils.h"
#include "linalg/dense_block.h"
#include "linalg/kernels.h"
#include "linalg/semiring.h"

namespace apspark::linalg {
namespace {

/// Reference machine of the static KernelTuning defaults — what unknown
/// cache levels fall back to, so "no probe at all" reproduces the defaults.
constexpr std::int64_t kFallbackL1 = 48 * 1024;
constexpr std::int64_t kFallbackL2 = 2 * 1024 * 1024;
constexpr std::int64_t kFallbackL3 = 32 * 1024 * 1024;

std::int64_t FloorPow2(std::int64_t x) {
  std::int64_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

/// Parses a sysfs cache size string ("48K", "2048K", "1M", "36864K").
std::int64_t ParseSysfsSize(const std::string& text) {
  std::size_t pos = 0;
  long long value = 0;
  try {
    value = std::stoll(text, &pos);
  } catch (...) {
    return 0;
  }
  if (value <= 0) return 0;
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  if (pos < text.size()) {
    if (text[pos] == 'K' || text[pos] == 'k') value *= 1024;
    if (text[pos] == 'M' || text[pos] == 'm') value *= 1024 * 1024;
    if (text[pos] == 'G' || text[pos] == 'g') value *= 1024LL * 1024 * 1024;
  }
  return static_cast<std::int64_t>(value);
}

std::optional<std::string> ReadFirstLine(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  return line;
}

}  // namespace

CacheHierarchy ReadSysfsCacheHierarchy() {
  CacheHierarchy caches;
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int index = 0; index < 8; ++index) {
    const std::string dir = base + std::to_string(index) + "/";
    const auto level = ReadFirstLine(dir + "level");
    const auto type = ReadFirstLine(dir + "type");
    const auto size = ReadFirstLine(dir + "size");
    if (!level || !type || !size) continue;  // index holes end the listing
    if (*type != "Data" && *type != "Unified") continue;  // skip Instruction
    const std::int64_t bytes = ParseSysfsSize(*size);
    if (bytes <= 0) continue;
    if (*level == "1" && caches.l1d_bytes == 0) caches.l1d_bytes = bytes;
    if (*level == "2" && caches.l2_bytes == 0) caches.l2_bytes = bytes;
    if (*level == "3" && caches.l3_bytes == 0) caches.l3_bytes = bytes;
  }
  caches.from_sysfs =
      caches.l1d_bytes > 0 || caches.l2_bytes > 0 || caches.l3_bytes > 0;
  return caches;
}

CacheHierarchy MeasureCacheHierarchy(std::uint64_t seed) {
  // Dependent-load pointer chase over a seeded cyclic permutation: per-access
  // latency is flat while the working set fits a level and jumps at each
  // capacity boundary. The detected size is the last sweep point before a
  // jump — quantized to the sweep grid, which is all the derivation needs.
  constexpr std::int64_t kMinBytes = 16 * 1024;
  constexpr std::int64_t kMaxBytes = 64 * 1024 * 1024;
  constexpr std::int64_t kChases = 1 << 18;
  std::vector<std::int64_t> sizes;
  for (std::int64_t s = kMinBytes; s <= kMaxBytes; s *= 2) sizes.push_back(s);

  std::vector<double> latency;
  latency.reserve(sizes.size());
  for (const std::int64_t bytes : sizes) {
    const std::size_t slots = static_cast<std::size_t>(bytes) / sizeof(void*);
    std::vector<std::size_t> next(slots);
    // Sattolo's algorithm: one full cycle, so the chase visits every slot.
    std::vector<std::size_t> order(slots);
    std::iota(order.begin(), order.end(), std::size_t{0});
    Xoshiro256 rng(seed ^ static_cast<std::uint64_t>(bytes));
    for (std::size_t i = slots - 1; i > 0; --i) {
      const std::size_t j =
          static_cast<std::size_t>(rng.NextBounded(static_cast<std::uint64_t>(i)));
      std::swap(order[i], order[j]);
    }
    for (std::size_t i = 0; i < slots; ++i) {
      next[order[i]] = order[(i + 1) % slots];
    }
    std::size_t p = 0;
    WallTimer timer;
    for (std::int64_t c = 0; c < kChases; ++c) p = next[p];
    const double secs = timer.ElapsedSeconds();
    // Keep the chase variable alive past the timer read.
    if (p == static_cast<std::size_t>(-1)) return CacheHierarchy{};
    latency.push_back(secs / static_cast<double>(kChases));
  }

  // Latency knees: a >= 1.4x jump between adjacent sweep points marks a
  // capacity boundary; the first three mark L1/L2/L3.
  CacheHierarchy caches;
  int knees = 0;
  for (std::size_t i = 0; i + 1 < sizes.size() && knees < 3; ++i) {
    if (latency[i + 1] > latency[i] * 1.4) {
      if (knees == 0) caches.l1d_bytes = sizes[i];
      if (knees == 1) caches.l2_bytes = sizes[i];
      if (knees == 2) caches.l3_bytes = sizes[i];
      ++knees;
    }
  }
  return caches;
}

CacheHierarchy DetectCacheHierarchy(std::uint64_t seed) {
  CacheHierarchy caches = ReadSysfsCacheHierarchy();
  if (!caches.from_sysfs) caches = MeasureCacheHierarchy(seed);
  if (caches.l1d_bytes <= 0) caches.l1d_bytes = kFallbackL1;
  if (caches.l2_bytes <= 0) caches.l2_bytes = kFallbackL2;
  if (caches.l3_bytes <= 0) caches.l3_bytes = kFallbackL3;
  return caches;
}

KernelTuning DeriveKernelTuning(const CacheHierarchy& caches,
                                const KernelTuning& base) {
  KernelTuning tuning = base;
  const std::int64_t l1 = std::max<std::int64_t>(caches.l1d_bytes, 4 * 1024);
  const std::int64_t l2 = std::max<std::int64_t>(caches.l2_bytes, l1);
  const std::int64_t l3 = std::max<std::int64_t>(caches.l3_bytes, l2);

  // One C-row strip + one B-row strip of tile_j doubles must stay
  // L1d-resident with a third strip of slack for A broadcasts — and all
  // three are budgeted into *half* of L1d, leaving the other half for the
  // second micro-tile row, prefetch streams and stack:
  // 3 * tile_j * 8 <= L1d / 2. 48 KiB -> 1024, the static default.
  tuning.tile_j = std::clamp<std::int64_t>(
      FloorPow2(l1 / (2 * 3 * 8)), 128, 8192);
  // The B panel reused across a row block — tile_k rows of tile_j doubles —
  // should occupy at most half of L2 so C/A traffic does not evict it:
  // tile_k * tile_j * 8 <= L2 / 2. 2 MiB @ tile_j=1024 -> 128, the default.
  tuning.tile_k = std::clamp<std::int64_t>(
      FloorPow2(l2 / (2 * 8 * tuning.tile_j)), 16, 1024);
  // Blocked-FW phase-3 updates touch three fw_block^2 tiles at once; keep
  // that working set in half of L2 (capped by a quarter of L3 for
  // small-outer-cache machines): 3 * fw_block^2 * 8 <= min(L2/2, L3/4).
  const std::int64_t fw_budget = std::min(l2 / 2, l3 / 4);
  std::int64_t fw = 64;
  while (3 * (2 * fw) * (2 * fw) * 8 <= fw_budget && fw < 512) fw *= 2;
  tuning.fw_block = fw;

  tuning.auto_tuned = true;
  return tuning;
}

namespace {

/// Bitwise lock check for a candidate geometry: under every semiring, the
/// tiled kernel with this geometry (and the caller's ISA) must reproduce the
/// scalar i-k-j oracle exactly on a seeded odd-shaped problem. A geometry
/// that fails (there is none by construction, but the tuner must not trust
/// construction) is rejected from the race.
bool GeometryKeepsBitwiseLock(const KernelTuning& candidate,
                              std::uint64_t seed) {
  constexpr std::int64_t kM = 67, kN = 93, kK = 81;
  const SemiringId rings[] = {SemiringId::kMinPlus, SemiringId::kBoolean,
                              SemiringId::kMaxMin, SemiringId::kMaxTimes};
  const KernelTuning saved = GetKernelTuning();
  bool ok = true;
  for (const SemiringId ring : rings) {
    // Seeded in-domain operands: finite weights with a sprinkle of
    // annihilators, canonicalized per semiring by SemiringAdjacency-style
    // mapping (inline here to keep shapes rectangular).
    Xoshiro256 rng(seed ^ static_cast<std::uint64_t>(ring));
    auto fill = [&](DenseBlock& block) {
      for (std::int64_t i = 0; i < block.size(); ++i) {
        const double u = rng.NextDouble();
        double v;
        switch (ring) {
          case SemiringId::kMinPlus:
            v = u < 0.2 ? kInf : rng.NextDouble(0.0, 50.0);
            break;
          case SemiringId::kBoolean:
            v = u < 0.5 ? 0.0 : 1.0;
            break;
          case SemiringId::kMaxMin:
            v = u < 0.2 ? -kInf : rng.NextDouble(0.0, 50.0);
            break;
          case SemiringId::kMaxTimes:
          default:
            v = u < 0.2 ? 0.0 : rng.NextDouble();
            break;
        }
        block.mutable_data()[i] = v;
      }
    };
    DenseBlock a(kM, kK, 0.0), b(kK, kN, 0.0), c(kM, kN, 0.0);
    fill(a);
    fill(b);
    fill(c);
    DenseBlock oracle = c;

    KernelTuning tuning = candidate;
    tuning.semiring = ring;
    SetKernelTuning(tuning);
    MinPlusAccumulateRawTiled(kM, kN, kK, a.data(), kK, b.data(), kN,
                              c.mutable_data(), kN, /*parallel=*/false);
    SetKernelTuning(saved);

    WithSemiring(ring, [&](auto s) {
      using S = decltype(s);
      SemiringProductAccumulate<S>(a, b, oracle);
    });
    if (std::memcmp(c.data(), oracle.data(),
                    static_cast<std::size_t>(c.size()) * sizeof(double)) !=
        0) {
      ok = false;
      break;
    }
  }
  SetKernelTuning(saved);
  return ok;
}

/// Best-of-three wall time of a b=512 fused min-plus update under the
/// candidate geometry.
double RaceGeometry(const KernelTuning& candidate, std::uint64_t seed) {
  constexpr std::int64_t kB = 512;
  Xoshiro256 rng(seed);
  DenseBlock a(kB, kB, 0.0), b(kB, kB, 0.0);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    a.mutable_data()[i] = rng.NextDouble(0.0, 100.0);
    b.mutable_data()[i] = rng.NextDouble(0.0, 100.0);
  }
  const KernelTuning saved = GetKernelTuning();
  KernelTuning tuning = candidate;
  tuning.semiring = SemiringId::kMinPlus;
  SetKernelTuning(tuning);
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    DenseBlock c(kB, kB, kInf);
    WallTimer timer;
    MinPlusAccumulateRawTiled(kB, kB, kB, a.data(), kB, b.data(), kB,
                              c.mutable_data(), kB, /*parallel=*/false);
    best = std::min(best, timer.ElapsedSeconds());
  }
  SetKernelTuning(saved);
  return best;
}

struct AutoTuneMemo {
  std::uint64_t seed = 0;
  bool confirm_race = false;
  std::int64_t tile_j = 0;
  std::int64_t tile_k = 0;
  std::int64_t fw_block = 0;
  bool valid = false;
};

std::mutex g_autotune_mutex;
AutoTuneMemo g_autotune_memo;

}  // namespace

void ResetAutoTuneMemoForTest() {
  std::lock_guard<std::mutex> lock(g_autotune_mutex);
  g_autotune_memo = AutoTuneMemo{};
}

KernelTuning KernelTuning::AutoTune(std::uint64_t seed, bool confirm_race) {
  std::lock_guard<std::mutex> lock(g_autotune_mutex);
  KernelTuning result = GetKernelTuning();
  if (g_autotune_memo.valid && g_autotune_memo.seed == seed &&
      g_autotune_memo.confirm_race == confirm_race) {
    result.tile_j = g_autotune_memo.tile_j;
    result.tile_k = g_autotune_memo.tile_k;
    result.fw_block = g_autotune_memo.fw_block;
    result.auto_tuned = true;
    return result;
  }

  const CacheHierarchy caches = DetectCacheHierarchy(seed);
  KernelTuning derived = DeriveKernelTuning(caches, result);

  if (confirm_race) {
    // Neighbourhood race: the derived geometry against its halved/doubled
    // tile variants. Every candidate must keep the bitwise lock before it
    // may run; the derived geometry breaks ties (candidates are raced in
    // deterministic order and a strictly faster time is required to
    // dethrone an earlier one).
    std::vector<KernelTuning> candidates;
    auto push = [&](std::int64_t tj, std::int64_t tk) {
      KernelTuning c = derived;
      c.tile_j = std::clamp<std::int64_t>(tj, 128, 8192);
      c.tile_k = std::clamp<std::int64_t>(tk, 16, 1024);
      for (const KernelTuning& seen : candidates) {
        if (seen.tile_j == c.tile_j && seen.tile_k == c.tile_k) return;
      }
      candidates.push_back(c);
    };
    push(derived.tile_j, derived.tile_k);
    push(derived.tile_j / 2, derived.tile_k);
    push(derived.tile_j * 2, derived.tile_k);
    push(derived.tile_j, derived.tile_k / 2);
    push(derived.tile_j, derived.tile_k * 2);

    double best_time = std::numeric_limits<double>::infinity();
    KernelTuning best = derived;
    bool have_best = false;
    for (const KernelTuning& candidate : candidates) {
      if (!GeometryKeepsBitwiseLock(candidate, seed)) continue;
      const double t = RaceGeometry(candidate, seed);
      if (!have_best || t < best_time) {
        best_time = t;
        best = candidate;
        have_best = true;
      }
    }
    derived = best;  // all-rejected (impossible) keeps the derived geometry
  }

  g_autotune_memo = AutoTuneMemo{seed, confirm_race, derived.tile_j,
                                 derived.tile_k, derived.fw_block, true};
  result.tile_j = derived.tile_j;
  result.tile_k = derived.tile_k;
  result.fw_block = derived.fw_block;
  result.auto_tuned = true;
  return result;
}

}  // namespace apspark::linalg
