// Semiring-generalized block kernels.
//
// §2 of the paper notes that "APSP is one of several graph primitives that
// can be directly posed as a linear algebra problem, and solved using matrix
// operations over the semi-ring (min,+)", and that the blocked algorithms
// trace back to transitive closure (Ullman & Yannakakis). This header makes
// that formulation explicit: the kernels in kernels.h are the
// MinPlusSemiring instantiation of a generic semiring matrix product, and
// BooleanSemiring yields transitive closure / reachability.
#pragma once

#include <cstdint>

#include "linalg/dense_block.h"

namespace apspark::linalg {

/// The tropical (min,+) semiring: APSP path lengths.
struct MinPlusSemiring {
  static constexpr double Zero() noexcept { return kInf; }  // additive id
  static constexpr double One() noexcept { return 0.0; }    // multiplicative id
  static double Add(double a, double b) noexcept { return a < b ? a : b; }
  static double Multiply(double a, double b) noexcept { return a + b; }
};

/// The boolean (or, and) semiring over {0, 1}: transitive closure.
struct BooleanSemiring {
  static constexpr double Zero() noexcept { return 0.0; }
  static constexpr double One() noexcept { return 1.0; }
  static double Add(double a, double b) noexcept {
    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  static double Multiply(double a, double b) noexcept {
    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
};

/// C = C (+) A (x) B over semiring S.
template <typename S>
void SemiringProductAccumulate(const DenseBlock& a, const DenseBlock& b,
                               DenseBlock& c) {
  if (a.is_phantom() || b.is_phantom() || c.is_phantom()) {
    c = DenseBlock::Phantom(a.rows(), b.cols());
    return;
  }
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    double* ci = c.MutableRow(i);
    const double* ai = a.Row(i);
    for (std::int64_t k = 0; k < a.cols(); ++k) {
      const double aik = ai[k];
      if (aik == S::Zero()) continue;  // annihilator: no contribution
      const double* bk = b.Row(k);
      for (std::int64_t j = 0; j < b.cols(); ++j) {
        ci[j] = S::Add(ci[j], S::Multiply(aik, bk[j]));
      }
    }
  }
}

/// C = A (x) B over semiring S.
template <typename S>
DenseBlock SemiringProduct(const DenseBlock& a, const DenseBlock& b) {
  DenseBlock c(a.rows(), b.cols(), S::Zero());
  SemiringProductAccumulate<S>(a, b, c);
  return c;
}

/// In-place Floyd-Warshall-style closure over semiring S:
/// a_ij = a_ij (+) a_ik (x) a_kj for every k.
template <typename S>
void SemiringClosure(DenseBlock& a) {
  if (a.is_phantom()) return;
  const std::int64_t n = a.rows();
  for (std::int64_t k = 0; k < n; ++k) {
    const double* ak = a.Row(k);
    for (std::int64_t i = 0; i < n; ++i) {
      double* ai = a.MutableRow(i);
      const double aik = ai[k];
      if (aik == S::Zero()) continue;
      for (std::int64_t j = 0; j < n; ++j) {
        ai[j] = S::Add(ai[j], S::Multiply(aik, ak[j]));
      }
    }
  }
}

/// Boolean reachability matrix of an adjacency matrix (entries 1 where an
/// edge or self-loop exists): the transitive-closure ancestor of the
/// paper's algorithms.
DenseBlock TransitiveClosure(const DenseBlock& adjacency);

}  // namespace apspark::linalg
