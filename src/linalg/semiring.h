// Semiring-generalized block kernels.
//
// §2 of the paper notes that "APSP is one of several graph primitives that
// can be directly posed as a linear algebra problem, and solved using matrix
// operations over the semi-ring (min,+)", and that the blocked algorithms
// trace back to transitive closure (Ullman & Yannakakis). This header makes
// that formulation explicit. Four closed, idempotent semirings over double
// share one algebraic interface:
//
//   id        ⊕ (Add)  ⊗ (Multiply)  Zero    One     solves
//   minplus   min      +             +inf    0       shortest paths (APSP)
//   boolean   or       and           0       1       transitive closure
//   maxmin    max      min           -inf    +inf    bottleneck capacity
//   maxtimes  max      *             0       1       widest / most-reliable
//                                                    path over [0, 1]
//
// The engine kernels in kernels.{h,cc} are templates over these structs and
// dispatch on the registry's active SemiringId; the scalar loops here are the
// *oracles* the property suites lock every instantiation against, bitwise.
//
// Contracts the bitwise locks rely on:
//  - Add is a *selection* (min / max / or): it returns one of its operands
//    unchanged, never a rounded combination, and keeps the accumulator on
//    ties — `Add(acc, candidate)` everywhere, oracle and fused paths alike.
//  - IsZero(x) is the annihilator test the fused kernels hoist out of their
//    inner loops. For min-plus it is std::isinf (matching the kernels'
//    historical guard), NOT `x == Zero()`: NaN compares false under == but
//    must not be silently skipped differently in the two paths, and -inf
//    (outside the valid weight domain, which is non-negative) annihilates
//    under isinf in both paths instead of diverging.
//  - kIdempotentAdd: Add(x, x) == x. The in-place closure updates pivot row
//    k while later rows still read it — correct exactly because a second
//    application of an already-applied candidate is a no-op. Non-idempotent
//    semirings (e.g. path counting over (+, x)) are statically rejected.
//  - maxtimes operates on [0, 1] (edge reliabilities); Zero = 0 requires
//    finite operands so 0 * x never produces NaN.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "linalg/dense_block.h"
#include "linalg/kernel_registry.h"

namespace apspark::linalg {

/// The tropical (min,+) semiring: APSP path lengths.
struct MinPlusSemiring {
  static constexpr SemiringId kId = SemiringId::kMinPlus;
  static constexpr bool kIdempotentAdd = true;
  static constexpr double Zero() noexcept { return kInf; }  // additive id
  static constexpr double One() noexcept { return 0.0; }    // multiplicative id
  /// Keep-accumulator-on-tie selection: Add(acc, candidate) replaces acc only
  /// when the candidate is strictly better — the fused kernels' exact branch.
  static double Add(double acc, double candidate) noexcept {
    return candidate < acc ? candidate : acc;
  }
  static double Multiply(double a, double b) noexcept { return a + b; }
  /// The fused kernels' annihilator guard (see file comment): isinf, not ==.
  static bool IsZero(double x) noexcept { return std::isinf(x); }
};

/// The boolean (or, and) semiring over {0, 1}: transitive closure.
struct BooleanSemiring {
  static constexpr SemiringId kId = SemiringId::kBoolean;
  static constexpr bool kIdempotentAdd = true;
  static constexpr double Zero() noexcept { return 0.0; }
  static constexpr double One() noexcept { return 1.0; }
  static double Add(double a, double b) noexcept {
    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  static double Multiply(double a, double b) noexcept {
    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
  static bool IsZero(double x) noexcept { return x == 0.0; }
};

/// The bottleneck (max, min) semiring: maximum-capacity paths.
struct MaxMinSemiring {
  static constexpr SemiringId kId = SemiringId::kMaxMin;
  static constexpr bool kIdempotentAdd = true;
  static constexpr double Zero() noexcept {
    return -std::numeric_limits<double>::infinity();
  }
  static constexpr double One() noexcept { return kInf; }
  static double Add(double acc, double candidate) noexcept {
    return candidate > acc ? candidate : acc;
  }
  static double Multiply(double a, double b) noexcept {
    return b < a ? b : a;  // path capacity = weakest edge
  }
  static bool IsZero(double x) noexcept { return x == Zero(); }
};

/// The (max, x) semiring over [0, 1]: widest / most-reliable paths. The
/// canonical graph ingestion maps an integer min-plus weight w to 2^-w, so
/// products stay exact in doubles and widest-path locks bitwise against the
/// same oracles as shortest-path (see SemiringAdjacency).
struct MaxTimesSemiring {
  static constexpr SemiringId kId = SemiringId::kMaxTimes;
  static constexpr bool kIdempotentAdd = true;
  static constexpr double Zero() noexcept { return 0.0; }
  static constexpr double One() noexcept { return 1.0; }
  static double Add(double acc, double candidate) noexcept {
    return candidate > acc ? candidate : acc;
  }
  static double Multiply(double a, double b) noexcept { return a * b; }
  static bool IsZero(double x) noexcept { return x == 0.0; }
};

/// C = C (+) A (x) B over semiring S — the scalar oracle of the fused
/// engine kernels, with the same shape contract: mismatched dimensions throw
/// (before the phantom branch, exactly like kernels.cc), and any phantom
/// operand yields a phantom result of the product shape.
template <typename S>
void SemiringProductAccumulate(const DenseBlock& a, const DenseBlock& b,
                               DenseBlock& c) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument(
        "semiring product: inner dimensions differ");
  }
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument(
        "semiring product: output shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom() || c.is_phantom()) {
    c = DenseBlock::Phantom(a.rows(), b.cols());
    return;
  }
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    double* ci = c.MutableRow(i);
    const double* ai = a.Row(i);
    for (std::int64_t k = 0; k < a.cols(); ++k) {
      const double aik = ai[k];
      if (S::IsZero(aik)) continue;  // annihilator: no contribution
      const double* bk = b.Row(k);
      for (std::int64_t j = 0; j < b.cols(); ++j) {
        ci[j] = S::Add(ci[j], S::Multiply(aik, bk[j]));
      }
    }
  }
}

/// C = A (x) B over semiring S.
template <typename S>
DenseBlock SemiringProduct(const DenseBlock& a, const DenseBlock& b) {
  DenseBlock c(a.rows(), b.cols(), S::Zero());
  SemiringProductAccumulate<S>(a, b, c);
  return c;
}

/// In-place Floyd-Warshall-style closure over semiring S:
/// a_ij = a_ij (+) a_ik (x) a_kj for every k.
///
/// Pivot row k is updated in place while later i iterations read it through
/// `ak` — sound only when Add is idempotent (re-applying an already-folded
/// candidate is a no-op), which the static_assert enforces. Non-idempotent
/// semirings would need a pivot-row snapshot and are rejected at compile
/// time rather than silently double-counted.
template <typename S>
void SemiringClosure(DenseBlock& a) {
  static_assert(S::kIdempotentAdd,
                "SemiringClosure updates the pivot row in place; only "
                "idempotent-Add semirings are supported");
  if (a.is_phantom()) return;
  const std::int64_t n = a.rows();
  for (std::int64_t k = 0; k < n; ++k) {
    const double* ak = a.Row(k);
    for (std::int64_t i = 0; i < n; ++i) {
      double* ai = a.MutableRow(i);
      const double aik = ai[k];
      if (S::IsZero(aik)) continue;
      for (std::int64_t j = 0; j < n; ++j) {
        ai[j] = S::Add(ai[j], S::Multiply(aik, ak[j]));
      }
    }
  }
}

// --- runtime dispatch helpers -------------------------------------------

/// Calls fn with the semiring struct named by `id` as its argument:
/// `WithSemiring(id, [&](auto s) { using S = decltype(s); ... })`.
template <typename Fn>
decltype(auto) WithSemiring(SemiringId id, Fn&& fn) {
  switch (id) {
    case SemiringId::kMinPlus:
      return fn(MinPlusSemiring{});
    case SemiringId::kBoolean:
      return fn(BooleanSemiring{});
    case SemiringId::kMaxMin:
      return fn(MaxMinSemiring{});
    case SemiringId::kMaxTimes:
      return fn(MaxTimesSemiring{});
  }
  throw std::invalid_argument("unknown semiring id");
}

double SemiringZeroValue(SemiringId id);
double SemiringOneValue(SemiringId id);
bool SemiringIsZeroValue(SemiringId id, double x);

/// True when every entry of a materialized block is the semiring's
/// annihilator — the "this block carries no path at all" predicate behind
/// the KSSP early-exit pivot sweep, routed through S::IsZero so it is
/// correct under every semiring (AllInfinite hardwired the min-plus one).
/// Phantom blocks return false: their structure is unknown, so callers must
/// not skip work. Packed boolean blocks test their words directly.
bool BlockAllZero(const DenseBlock& block, SemiringId id);

/// Scalar-oracle closure under the named semiring (SemiringClosure<S>).
void SemiringClosureDispatch(SemiringId id, DenseBlock& a);

/// Converts the canonical min-plus adjacency matrix (0 diagonal, finite edge
/// weights, +inf missing) into the named semiring's matrix, diagonal = One:
///   minplus  — unchanged
///   boolean  — 1 where reachable in one hop (edge or diagonal), 0 elsewhere
///   maxmin   — edge weight as capacity, -inf missing, +inf diagonal
///   maxtimes — 2^-w reliability per edge, 0 missing, 1 diagonal (exact in
///              doubles for integer w, monotone for all w: widest path under
///              the image ranks exactly like shortest path under w)
/// With `bitpack` (boolean only) the result uses the bit-packed block
/// representation (64 vertices per word). Takes the input by value: the
/// min-plus identity path moves it straight through without a payload copy
/// (the data plane's copy accounting audits this).
DenseBlock SemiringAdjacency(DenseBlock minplus_adjacency, SemiringId id,
                             bool bitpack = false);

/// Boolean reachability matrix of an adjacency matrix (entries 1 where an
/// edge or self-loop exists): the transitive-closure ancestor of the
/// paper's algorithms.
DenseBlock TransitiveClosure(const DenseBlock& adjacency);

}  // namespace apspark::linalg
