#include "linalg/semiring.h"

#include <cmath>

namespace apspark::linalg {

double SemiringZeroValue(SemiringId id) {
  return WithSemiring(id, [](auto s) {
    using S = decltype(s);
    return S::Zero();
  });
}

double SemiringOneValue(SemiringId id) {
  return WithSemiring(id, [](auto s) {
    using S = decltype(s);
    return S::One();
  });
}

bool SemiringIsZeroValue(SemiringId id, double x) {
  return WithSemiring(id, [x](auto s) {
    using S = decltype(s);
    return S::IsZero(x);
  });
}

bool BlockAllZero(const DenseBlock& block, SemiringId id) {
  if (block.is_phantom()) return false;  // unknown structure: never skip
  if (block.is_packed()) {
    // Packed blocks hold booleans; the annihilator is bit 0 regardless of
    // which algebra asked (only the boolean semiring produces packed
    // blocks), so the test is a word sweep.
    for (std::int64_t r = 0; r < block.rows(); ++r) {
      const std::uint64_t* row = block.WordRow(r);
      for (std::int64_t w = 0; w < block.words_per_row(); ++w) {
        if (row[w] != 0) return false;
      }
    }
    return true;
  }
  return WithSemiring(id, [&block](auto s) {
    using S = decltype(s);
    const double* p = block.data();
    const double* end = p + block.size();
    for (; p != end; ++p) {
      if (!S::IsZero(*p)) return false;
    }
    return true;
  });
}

void SemiringClosureDispatch(SemiringId id, DenseBlock& a) {
  WithSemiring(id, [&a](auto s) {
    using S = decltype(s);
    SemiringClosure<S>(a);
  });
}

DenseBlock SemiringAdjacency(DenseBlock minplus_adjacency, SemiringId id,
                             bool bitpack) {
  if (bitpack && id != SemiringId::kBoolean) {
    throw std::invalid_argument(
        "SemiringAdjacency: bit-packing is boolean-only");
  }
  const std::int64_t n_rows = minplus_adjacency.rows();
  const std::int64_t n_cols = minplus_adjacency.cols();
  if (minplus_adjacency.is_phantom()) {
    return bitpack ? DenseBlock::PackedPhantom(n_rows, n_cols)
                   : DenseBlock::Phantom(n_rows, n_cols);
  }
  switch (id) {
    case SemiringId::kMinPlus:
      return minplus_adjacency;  // NRVO-ineligible param: moves, no copy
    case SemiringId::kBoolean: {
      DenseBlock out = bitpack ? DenseBlock::PackedBoolean(n_rows, n_cols)
                               : DenseBlock(n_rows, n_cols, 0.0);
      for (std::int64_t i = 0; i < n_rows; ++i) {
        for (std::int64_t j = 0; j < n_cols; ++j) {
          if (!std::isinf(minplus_adjacency.At(i, j))) out.Set(i, j, 1.0);
        }
      }
      return out;
    }
    case SemiringId::kMaxMin: {
      DenseBlock out(n_rows, n_cols, MaxMinSemiring::Zero());
      for (std::int64_t i = 0; i < n_rows; ++i) {
        for (std::int64_t j = 0; j < n_cols; ++j) {
          const double w = minplus_adjacency.At(i, j);
          if (i == j) {
            out.Set(i, j, MaxMinSemiring::One());
          } else if (!std::isinf(w)) {
            out.Set(i, j, w);  // edge weight reinterpreted as capacity
          }
        }
      }
      return out;
    }
    case SemiringId::kMaxTimes: {
      DenseBlock out(n_rows, n_cols, MaxTimesSemiring::Zero());
      for (std::int64_t i = 0; i < n_rows; ++i) {
        for (std::int64_t j = 0; j < n_cols; ++j) {
          const double w = minplus_adjacency.At(i, j);
          // 2^-w maps length to reliability exactly (dyadic for integer w)
          // and monotonically: widest path under the image ranks exactly
          // like shortest path under w. The 0-weight diagonal maps to One.
          if (!std::isinf(w)) out.Set(i, j, std::exp2(-w));
        }
      }
      return out;
    }
  }
  throw std::invalid_argument("unknown semiring id");
}

DenseBlock TransitiveClosure(const DenseBlock& adjacency) {
  DenseBlock reach(adjacency.rows(), adjacency.cols(), 0.0);
  for (std::int64_t i = 0; i < adjacency.rows(); ++i) {
    reach.Set(i, i, 1.0);
    for (std::int64_t j = 0; j < adjacency.cols(); ++j) {
      if (!std::isinf(adjacency.At(i, j))) reach.Set(i, j, 1.0);
    }
  }
  SemiringClosure<BooleanSemiring>(reach);
  return reach;
}

}  // namespace apspark::linalg
