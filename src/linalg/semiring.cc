#include "linalg/semiring.h"

#include <cmath>

namespace apspark::linalg {

DenseBlock TransitiveClosure(const DenseBlock& adjacency) {
  DenseBlock reach(adjacency.rows(), adjacency.cols(), 0.0);
  for (std::int64_t i = 0; i < adjacency.rows(); ++i) {
    reach.Set(i, i, 1.0);
    for (std::int64_t j = 0; j < adjacency.cols(); ++j) {
      if (!std::isinf(adjacency.At(i, j))) reach.Set(i, j, 1.0);
    }
  }
  SemiringClosure<BooleanSemiring>(reach);
  return reach;
}

}  // namespace apspark::linalg
