// Cache-aware self-tuning of the kernel tile geometry.
//
// KernelTuning::AutoTune() (declared in kernel_registry.h, implemented here)
// extends CostModel::Calibrate's "measure the machine we actually run on"
// idea from cost constants to tile geometry:
//
//   1. probe the host cache hierarchy — sysfs
//      (/sys/devices/system/cpu/cpu0/cache) when present, a seeded
//      pointer-chase latency sweep as the measured fallback;
//   2. derive tile_j / tile_k / fw_block from the cache sizes with the same
//      residency arguments the static defaults encode (pure + deterministic,
//      unit-tested directly);
//   3. optionally confirm with a short seeded race among neighbouring
//      geometries, where every candidate must first reproduce the scalar
//      oracle bitwise under all four semirings before it may win;
//   4. memoize per (seed, race) so repeated solves pay the probe once and
//      always agree within a process.
//
// The pieces are exposed individually so tests can cover the deterministic
// core without timing noise.
#pragma once

#include <cstdint>

#include "linalg/kernel_registry.h"

namespace apspark::linalg {

/// Detected data-cache capacities in bytes; 0 = unknown at that level.
struct CacheHierarchy {
  std::int64_t l1d_bytes = 0;
  std::int64_t l2_bytes = 0;
  std::int64_t l3_bytes = 0;
  /// True when the numbers came from sysfs (authoritative) rather than the
  /// measured sweep (coarse: quantized to the sweep's power-of-two sizes).
  bool from_sysfs = false;

  bool operator==(const CacheHierarchy&) const = default;
};

/// Parses /sys/devices/system/cpu/cpu0/cache/index*/{level,type,size}.
/// Missing files leave the corresponding level at 0.
CacheHierarchy ReadSysfsCacheHierarchy();

/// Measured fallback: times a seeded random-cyclic pointer chase over
/// power-of-two working sets and reads cache capacities off the latency
/// knees. Coarse by design (quantized, timing-sensitive) — only consulted
/// when sysfs is absent.
CacheHierarchy MeasureCacheHierarchy(std::uint64_t seed);

/// sysfs first, measured sweep second; any level still unknown falls back to
/// the static defaults' reference machine (48 KiB / 2 MiB / 32 MiB).
CacheHierarchy DetectCacheHierarchy(std::uint64_t seed);

/// Pure, deterministic geometry derivation — the core of AutoTune:
///   tile_j   largest power of two with three tile_j-double row segments
///            (C strip, B strip, slack) resident in half of L1d;
///   tile_k   largest power of two keeping the tile_k x tile_j B panel in
///            half of L2;
///   fw_block largest power of two keeping the three-tile working set of a
///            blocked-FW phase-3 update in half of min(L2, L3/4).
/// All other fields (variant, semiring, isa, parallel thresholds) are copied
/// from `base` unchanged; auto_tuned is set.
KernelTuning DeriveKernelTuning(const CacheHierarchy& caches,
                                const KernelTuning& base);

/// Drops the AutoTune memo so tests can exercise the full path repeatedly.
void ResetAutoTuneMemoForTest();

}  // namespace apspark::linalg
