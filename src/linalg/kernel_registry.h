// Kernel variant registry.
//
// The linalg layer ships three interchangeable implementations of every hot
// kernel (min-plus product/update, Floyd-Warshall):
//
//   kNaive         — the scalar triple loops the seed shipped with; kept as
//                    a measured baseline and as the dispatch target when a
//                    caller wants zero tiling machinery.
//   kTiled         — cache-tiled, fused, vectorizable loops (the default).
//   kTiledParallel — kTiled with independent block updates scheduled as
//                    stealable tasks on the host ThreadPool's work-stealing
//                    deques (row stripes nest through the same scheduler).
//                    Only host wall time changes: virtual cluster accounting
//                    always charges the calibrated cost model, never host
//                    threads.
//
// The active variant and its tuning parameters are process-global: the
// engine executes all record processing from the driver thread (see
// sparklet/rdd.h), so a plain global is race-free as long as callers select
// the variant before kicking off a solve — which is what
// apsp::ApspSolver::Solve does from sparklet::ClusterConfig::kernel_variant.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace apspark {
class ThreadPool;
}  // namespace apspark

namespace apspark::linalg {

enum class KernelVariant {
  kNaive,
  kTiled,
  kTiledParallel,
};

/// Instruction set the tiled/panel micro-kernels dispatch to at run time.
///
/// The SIMD backends (linalg/simd.h) are compiled unconditionally into their
/// own translation units with per-file ISA flags; which one actually runs is
/// decided per kernel call from `KernelTuning::isa`, clamped to what the
/// host CPU supports (ResolveSimdIsa). kScalar is always available and is
/// bitwise-identical to the SIMD paths by contract — pin it (`--isa scalar`
/// or APSPARK_FORCE_ISA=scalar) when bisecting a kernel bug.
enum class SimdIsa {
  kScalar,  // portable C++ loops (the pre-SIMD tiled kernels)
  kAvx2,    // 4-lane __m256d micro-tile (requires AVX2)
  kAvx512,  // 8-lane __m512d micro-tile (requires AVX-512F)
};

/// Best ISA the host CPU supports among the compiled backends, probed once
/// via CPUID and memoized. Non-x86 builds always return kScalar.
SimdIsa DetectSimdIsa() noexcept;

/// True when the host can execute `isa` AND the backend was compiled in.
bool SimdIsaAvailable(SimdIsa isa) noexcept;

/// Clamps a requested ISA to something executable on this host: a request
/// the CPU cannot run falls back to the next-widest available backend
/// (avx512 -> avx2 -> scalar). kScalar always resolves to itself.
SimdIsa ResolveSimdIsa(SimdIsa requested) noexcept;

/// Process-default ISA: APSPARK_FORCE_ISA (scalar|avx2|avx512) when set and
/// resolvable, otherwise DetectSimdIsa(). Read once and memoized — this is
/// what a default-constructed KernelTuning carries.
SimdIsa DefaultSimdIsa() noexcept;

const char* SimdIsaName(SimdIsa isa) noexcept;
std::optional<SimdIsa> ParseSimdIsa(std::string_view name);

/// The semiring the engine's kernels evaluate (see linalg/semiring.h for the
/// algebraic definitions). One tiled/work-stealing/zero-copy engine serves
/// all four: the kernels are templates over the semiring struct, and the
/// block-level entry points dispatch on this registry id.
enum class SemiringId {
  kMinPlus,   // (min, +): APSP path lengths — the paper's default
  kBoolean,   // (or, and): transitive closure / reachability
  kMaxMin,    // (max, min): bottleneck (maximum-capacity) paths
  kMaxTimes,  // (max, x): widest / most-reliable paths over [0, 1]
};

/// Tiling / parallelism parameters of the tiled kernels. Defaults target a
/// 48 KiB L1d + 2 MiB L2 AVX machine; all values are safe for any shape
/// (ragged edges are handled by the kernels).
struct KernelTuning {
  KernelVariant variant = KernelVariant::kTiled;
  /// Semiring the kernels evaluate. Part of the tuning so ScopedKernelVariant
  /// / ScopedSemiring restore it together with the variant: one run's algebra
  /// cannot leak into unrelated work in the same process.
  SemiringId semiring = SemiringId::kMinPlus;
  /// Micro-kernel instruction set. Defaults to the CPUID-detected best (or
  /// APSPARK_FORCE_ISA); clamped per call by ResolveSimdIsa, so carrying
  /// kAvx512 on an AVX2 host silently runs the AVX2 backend. All ISAs are
  /// bitwise-identical on every semiring — this knob trades speed only.
  SimdIsa isa = DefaultSimdIsa();

  /// Columns of B/C processed per tile: one C-row segment plus one B-row
  /// segment of this width must stay L1-resident (2 x 8 KiB at 1024).
  std::int64_t tile_j = 1024;
  /// Rows of B held hot per panel: tile_k x tile_j doubles should fit L2
  /// (128 x 1024 x 8 B = 1 MiB).
  std::int64_t tile_k = 128;
  /// Diagonal-tile size of the tiled Floyd-Warshall decomposition.
  std::int64_t fw_block = 128;

  /// Minimum rows per stripe when fanning a kernel out on the pool.
  std::int64_t parallel_grain_rows = 64;
  /// Blocks smaller than this many output elements never fan out (the
  /// dispatch overhead would dominate).
  std::int64_t parallel_min_elems = 128 * 128;
  /// Adaptive task granularity of the batch decomposition (apsp building
  /// blocks): block updates whose modelled kernel cost is below this floor
  /// are merged with their neighbours into one stealable task, so a q^2
  /// batch of tiny-b updates does not pay q^2 dispatches. ~40 µs of modelled
  /// kernel time corresponds to a b ≈ 32..48 fused update; real updates at
  /// b >= 64 stay individually stealable. 0 disables merging.
  double task_grain_floor_seconds = 4.0e-5;

  /// True when this tuning came out of AutoTune() rather than the static
  /// defaults — surfaced by the CLI banner so bench JSONs and CI logs record
  /// what actually ran.
  bool auto_tuned = false;

  bool operator==(const KernelTuning&) const = default;

  /// Cache-aware self-tuning (linalg/autotune.cc): probes the host L1/L2/L3
  /// sizes (sysfs, with a measured pointer-chase fallback), derives
  /// tile_j/tile_k/fw_block from them, optionally confirms the choice with a
  /// short seeded race among neighbouring geometries (every candidate is
  /// verified bitwise against the scalar oracle before it may win), and
  /// memoizes the result per seed. Deterministic given a seed when the race
  /// is disabled; with the race, the memo pins the first outcome for the
  /// rest of the process. variant/semiring/isa of the current tuning are
  /// preserved. Callers publish it via the existing SetKernelTuning path.
  static KernelTuning AutoTune(std::uint64_t seed = 42,
                               bool confirm_race = true);
};

const KernelTuning& GetKernelTuning() noexcept;
void SetKernelTuning(const KernelTuning& tuning) noexcept;

/// Convenience: swaps only the variant, keeping the tuning parameters.
void SetKernelVariant(KernelVariant variant) noexcept;
KernelVariant GetKernelVariant() noexcept;

/// Pool used by kTiledParallel. Passing nullptr restores the lazily created
/// default pool (hardware concurrency). The pool must outlive any kernel
/// calls that use it.
void SetKernelThreadPool(ThreadPool* pool) noexcept;
ThreadPool& KernelThreadPool();

/// Convenience: swaps only the semiring, keeping the tuning parameters.
void SetActiveSemiring(SemiringId semiring) noexcept;
SemiringId GetActiveSemiring() noexcept;

const char* KernelVariantName(KernelVariant variant) noexcept;
std::optional<KernelVariant> ParseKernelVariant(std::string_view name);

const char* SemiringName(SemiringId semiring) noexcept;
std::optional<SemiringId> ParseSemiring(std::string_view name);

/// RAII: pins a kernel variant for a scope, restoring the full previous
/// tuning on destruction. Used by solvers, benchmarks, and tests so one
/// caller's selection cannot leak into unrelated work in the same process.
class ScopedKernelVariant {
 public:
  explicit ScopedKernelVariant(KernelVariant variant)
      : saved_(GetKernelTuning()) {
    SetKernelVariant(variant);
  }
  ~ScopedKernelVariant() { SetKernelTuning(saved_); }
  ScopedKernelVariant(const ScopedKernelVariant&) = delete;
  ScopedKernelVariant& operator=(const ScopedKernelVariant&) = delete;

 private:
  KernelTuning saved_;
};

/// RAII: pins the active semiring for a scope, restoring the full previous
/// tuning on destruction — the semiring twin of ScopedKernelVariant.
class ScopedSemiring {
 public:
  explicit ScopedSemiring(SemiringId semiring) : saved_(GetKernelTuning()) {
    SetActiveSemiring(semiring);
  }
  ~ScopedSemiring() { SetKernelTuning(saved_); }
  ScopedSemiring(const ScopedSemiring&) = delete;
  ScopedSemiring& operator=(const ScopedSemiring&) = delete;

 private:
  KernelTuning saved_;
};

/// RAII: pins the micro-kernel ISA for a scope, restoring the full previous
/// tuning on destruction. Benches and the bitwise-equivalence suites use it
/// to race/compare forced-scalar against forced-SIMD dispatch.
class ScopedSimdIsa {
 public:
  explicit ScopedSimdIsa(SimdIsa isa) : saved_(GetKernelTuning()) {
    KernelTuning tuning = saved_;
    tuning.isa = isa;
    SetKernelTuning(tuning);
  }
  ~ScopedSimdIsa() { SetKernelTuning(saved_); }
  ScopedSimdIsa(const ScopedSimdIsa&) = delete;
  ScopedSimdIsa& operator=(const ScopedSimdIsa&) = delete;

 private:
  KernelTuning saved_;
};

/// One-line human-readable rendering of a tuning, e.g.
///   "variant=tiled semiring=minplus isa=avx512 (requested avx512, host best
///    avx512) tiles j=1024 k=128 fw=128 [auto-tuned]"
/// — what `apspark_cli plan` and the solve banner print so logs record the
/// geometry and ISA that actually ran.
std::string DescribeKernelTuning(const KernelTuning& tuning);

}  // namespace apspark::linalg
