// AVX-512 backend of the SIMD micro-kernel (see simd.h / simd_microkernel.h).
//
// Compiled with a per-file -mavx512f flag (CMakeLists.txt); only AVX-512F
// instructions are used (loads/stores, min/max/add/mul, compare-to-mask,
// maskz moves), so runtime dispatch gates on the avx512f CPUID bit alone.

#include "linalg/simd.h"

#if defined(__AVX512F__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "linalg/simd_microkernel.h"

namespace apspark::linalg {
namespace {

/// 8-lane __m512d vector ops with native k-register tail masks. Min/Max wrap
/// vminpd/vmaxpd — same src2-on-tie/NaN rule as the AVX2 backend.
struct Avx512Ops {
  using Vec = __m512d;
  using Mask = __mmask8;
  static constexpr std::int64_t kWidth = 8;

  static Vec Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, Vec v) { _mm512_storeu_pd(p, v); }
  static Mask TailMask(std::int64_t cnt) {
    return static_cast<Mask>((1u << cnt) - 1u);
  }
  static Vec MaskLoad(const double* p, Mask m) {
    return _mm512_maskz_loadu_pd(m, p);
  }
  static void MaskStore(double* p, Mask m, Vec v) {
    _mm512_mask_storeu_pd(p, m, v);
  }
  static Vec Broadcast(double x) { return _mm512_set1_pd(x); }
  static Vec Min(Vec x, Vec y) { return _mm512_min_pd(x, y); }
  static Vec Max(Vec x, Vec y) { return _mm512_max_pd(x, y); }
  static Vec AddPd(Vec x, Vec y) { return _mm512_add_pd(x, y); }
  static Vec MulPd(Vec x, Vec y) { return _mm512_mul_pd(x, y); }
  static Vec BoolOr(Vec x, Vec y) {
    const Vec z = _mm512_setzero_pd();
    const Mask m = static_cast<Mask>(_mm512_cmp_pd_mask(x, z, _CMP_NEQ_UQ) |
                                     _mm512_cmp_pd_mask(y, z, _CMP_NEQ_UQ));
    return _mm512_maskz_mov_pd(m, _mm512_set1_pd(1.0));
  }
  static Vec BoolAnd(Vec x, Vec y) {
    const Vec z = _mm512_setzero_pd();
    const Mask m = static_cast<Mask>(_mm512_cmp_pd_mask(x, z, _CMP_NEQ_UQ) &
                                     _mm512_cmp_pd_mask(y, z, _CMP_NEQ_UQ));
    return _mm512_maskz_mov_pd(m, _mm512_set1_pd(1.0));
  }
};

}  // namespace

bool SimdCompiledAvx512() noexcept { return true; }

void SimdTiledRowsAvx512(SemiringId id, std::int64_t i0, std::int64_t i1,
                         std::int64_t n, std::int64_t k, const double* a,
                         std::int64_t lda, const double* b, std::int64_t ldb,
                         double* c, std::int64_t ldc, std::int64_t tile_j,
                         std::int64_t tile_k) {
  WithSemiring(id, [&](auto s) {
    using S = decltype(s);
    simd_detail::SimdTiledRowsImpl<Avx512Ops, S>(i0, i1, n, k, a, lda, b, ldb,
                                                 c, ldc, tile_j, tile_k);
  });
}

}  // namespace apspark::linalg

#else  // stub: flag rejected or non-x86 target

#include <cstdlib>

namespace apspark::linalg {

bool SimdCompiledAvx512() noexcept { return false; }

void SimdTiledRowsAvx512(SemiringId, std::int64_t, std::int64_t, std::int64_t,
                         std::int64_t, const double*, std::int64_t,
                         const double*, std::int64_t, double*, std::int64_t,
                         std::int64_t, std::int64_t) {
  std::abort();  // dispatch never routes here when the backend is absent
}

}  // namespace apspark::linalg

#endif
