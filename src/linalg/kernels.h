// Dense min-plus kernels — the compute core of the engine.
//
// These are the C++ equivalents of the operations the paper offloads from
// pySpark to NumPy/SciPy (Intel MKL) and Numba: min-plus matrix product,
// element-wise minimum, in-place Floyd-Warshall, the rank-1 outer-sum update
// used by 2D Floyd-Warshall, and the cache-blocked sequential Floyd-Warshall
// of Venkataraman et al. used both as the diagonal-block solver and as the
// single-core reference (T1) for weak-scaling efficiency.
//
// Every entry point dispatches through the process-global kernel registry
// (linalg/kernel_registry.h): the naive scalar loops, the cache-tiled fused
// loops, or the tiled loops fanned out on the host ThreadPool. The tiled
// kernels reorder only the (min, +) reduction — candidates a_ik + b_kj are
// computed identically — so every variant produces bitwise-identical
// min-plus products. ReferenceFloydWarshall / MinPlusAccumulateRawNaive are
// fixed scalar implementations that never dispatch; tests use them as
// oracles.
//
// All kernels propagate phantom blocks: if any operand is phantom, the result
// is a phantom of the correct shape and no arithmetic is performed (cost
// accounting happens at the building-block layer, see apsp/building_blocks.h).
#pragma once

#include <cstdint>

#include "linalg/dense_block.h"
#include "linalg/kernel_registry.h"

namespace apspark::linalg {

/// C = A (min,+) B. Requires a.cols() == b.rows().
DenseBlock MinPlusProduct(const DenseBlock& a, const DenseBlock& b);

/// Fused update: c = min(c, A (min,+) B) element-wise, in place — the hot
/// path of every blocked solver. One pass, no intermediate product block.
/// Requires c.rows() == a.rows(), c.cols() == b.cols(), a.cols() == b.rows().
void MinPlusUpdate(const DenseBlock& a, const DenseBlock& b, DenseBlock& c);

/// Element-wise minimum (the paper's MatMin).
DenseBlock ElementMin(const DenseBlock& a, const DenseBlock& b);
void ElementMinInPlace(DenseBlock& a, const DenseBlock& b);

/// In-place Floyd-Warshall over a square block: closes paths through the
/// block's own vertices (the paper's FloydWarshall building block). Tiled
/// variants run the 3-phase blocked decomposition at tuning.fw_block.
void FloydWarshallInPlace(DenseBlock& a);

/// a_ij = min(a_ij, u_i + v_j) where u is a rows x 1 and v a cols x 1 vector
/// (the paper's FloydWarshallUpdate: C = B_Ik 1^T + 1 B_Jk^T, then MatMin).
void OuterSumMinUpdate(DenseBlock& a, const DenseBlock& u, const DenseBlock& v);

/// Sequential cache-blocked Floyd-Warshall (Venkataraman et al. [23]) over a
/// full n x n matrix, tile size `block_size`. This is the "efficient
/// sequential Floyd-Warshall as implemented in SciPy" used for T1. Under
/// kTiledParallel the phase-2/phase-3 tile updates fan out on the host pool.
void BlockedFloydWarshall(DenseBlock& a, std::int64_t block_size);

/// Plain textbook k-i-j Floyd-Warshall. Never dispatches through the
/// registry — this is the fixed scalar oracle tests compare against.
void ReferenceFloydWarshall(DenseBlock& a);

// --- Raw strided kernels (used by the blocked solvers; exposed for tests) --

/// C[mxn] = min(C, A[mxk] (min,+) B[kxn]) with leading dimensions
/// lda/ldb/ldc. Dispatches on the registry variant. In-place aliasing of C
/// with A or B rows is supported (the blocked Floyd-Warshall phases rely on
/// it).
void MinPlusAccumulateRaw(std::int64_t m, std::int64_t n, std::int64_t k,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double* c, std::int64_t ldc);

/// Fixed scalar i-k-j implementation (the seed's original loop): baseline
/// for benchmarks and oracle for tests.
void MinPlusAccumulateRawNaive(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc);

/// Register/cache-tiled micro-kernel: k and j are tiled so one B panel stays
/// L2-resident and one C/B row segment L1-resident; the isinf guard is
/// hoisted out of the vectorizable inner loop. `parallel` additionally
/// splits the m rows into stripes on the host pool.
void MinPlusAccumulateRawTiled(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc, bool parallel = false);

/// In-place FW on an n x n tile with leading dimension lda (dispatches).
void FloydWarshallRaw(std::int64_t n, double* a, std::int64_t lda);

}  // namespace apspark::linalg
