// Dense semiring kernels — the compute core of the engine.
//
// These are the C++ equivalents of the operations the paper offloads from
// pySpark to NumPy/SciPy (Intel MKL) and Numba: semiring matrix product,
// element-wise semiring Add, in-place Floyd-Warshall closure, the rank-1
// outer update used by 2D Floyd-Warshall, and the cache-blocked sequential
// Floyd-Warshall of Venkataraman et al. used both as the diagonal-block
// solver and as the single-core reference (T1) for weak-scaling efficiency.
//
// Every entry point dispatches through the process-global kernel registry
// (linalg/kernel_registry.h) twice over: on the kernel *variant* — the naive
// scalar loops, the cache-tiled fused loops, or the tiled loops fanned out
// on the host ThreadPool — and on the active *semiring* (SemiringId). The
// entry points keep their historical min-plus names (MinPlusProduct,
// MinPlusUpdate, ...) from when the engine was hardwired to (min, +); under
// ScopedSemiring the same functions evaluate (or, and), (max, min) or
// (max, x) — see linalg/semiring.h for the algebra structs and the scalar
// oracles. The tiled variants reorder only the (+) reduction — candidates
// S::Multiply(a_ik, b_kj) are computed identically, Add is a keep-on-tie
// selection applied in ascending-k order — so every variant produces
// bitwise-identical products under every semiring. ReferenceFloydWarshall
// is a fixed scalar min-plus implementation that never dispatches; the
// per-semiring oracles are SemiringClosure / SemiringProductAccumulate.
//
// Bit-packed boolean blocks (DenseBlock::PackedBoolean) route to dedicated
// word-parallel or/and kernels: a product walks the set bits of A's rows
// and ors 64-column words of B into C. Packed operands require the boolean
// semiring to be active and may not mix with dense operands in one call.
//
// All kernels propagate phantom blocks: if any operand is phantom, the result
// is a phantom of the correct shape — preserving bit-packedness when all
// operands carry it — and no arithmetic is performed (cost accounting happens
// at the building-block layer, see apsp/building_blocks.h).
#pragma once

#include <cstdint>

#include "linalg/dense_block.h"
#include "linalg/kernel_registry.h"

namespace apspark::linalg {

/// C = A (x) B under the active semiring (historically min-plus — the name
/// predates the semiring registry). Requires a.cols() == b.rows(). The
/// result is filled with the semiring Zero before accumulation.
DenseBlock MinPlusProduct(const DenseBlock& a, const DenseBlock& b);

/// Fused update: c = c (+) (A (x) B) element-wise, in place — the hot
/// path of every blocked solver. One pass, no intermediate product block.
/// Requires c.rows() == a.rows(), c.cols() == b.cols(), a.cols() == b.rows().
void MinPlusUpdate(const DenseBlock& a, const DenseBlock& b, DenseBlock& c);

/// Rectangular frontier update: c[m x w] = min(c, A[m x k] (min,+) P[k x w])
/// where w — the panel width, i.e. the source count of a batched k-source
/// solve — is typically far smaller than the block size. Dispatches through
/// the registry like MinPlusUpdate; the tiled variants switch to a panel
/// micro-kernel that keeps each C row segment register-resident across the
/// whole (min, +) reduction when the panel is narrow. All variants apply
/// candidates in the same ascending-k order, so results are bitwise
/// identical across the registry — provided c does not alias a or p: the
/// panel kernel defers C-row writes to an accumulator, so an in-place
/// c == p call would observe different intermediate values per variant
/// (compute into a copy instead, as apsp::MinPlusRect does).
void MinPlusUpdateRect(const DenseBlock& a, const DenseBlock& p, DenseBlock& c);

/// Element-wise semiring Add (the paper's MatMin under min-plus).
DenseBlock ElementMin(const DenseBlock& a, const DenseBlock& b);
void ElementMinInPlace(DenseBlock& a, const DenseBlock& b);

/// In-place Floyd-Warshall over a square block: closes paths through the
/// block's own vertices (the paper's FloydWarshall building block). Tiled
/// variants run the 3-phase blocked decomposition at tuning.fw_block.
void FloydWarshallInPlace(DenseBlock& a);

/// a_ij = a_ij (+) (u_i (x) v_j) where u is a rows x 1 and v a cols x 1
/// vector (the paper's FloydWarshallUpdate: C = B_Ik 1^T + 1 B_Jk^T, then
/// MatMin, under min-plus).
void OuterSumMinUpdate(DenseBlock& a, const DenseBlock& u, const DenseBlock& v);

/// Sequential cache-blocked Floyd-Warshall (Venkataraman et al. [23]) over a
/// full n x n matrix, tile size `block_size`. This is the "efficient
/// sequential Floyd-Warshall as implemented in SciPy" used for T1. Under
/// kTiledParallel the phase-2/phase-3 tile updates fan out on the host pool.
void BlockedFloydWarshall(DenseBlock& a, std::int64_t block_size);

/// Plain textbook k-i-j Floyd-Warshall, always (min, +). Never dispatches
/// through the registry — this is the fixed scalar oracle tests compare
/// against. The per-semiring oracle is linalg::SemiringClosureDispatch.
void ReferenceFloydWarshall(DenseBlock& a);

// --- Raw strided kernels (used by the blocked solvers; exposed for tests) --

/// C[mxn] = C (+) (A[mxk] (x) B[kxn]) with leading dimensions lda/ldb/ldc,
/// under the active semiring. Dispatches on the registry variant. In-place
/// aliasing of C with A or B rows is supported (the blocked Floyd-Warshall
/// phases rely on it). Raw kernels take dense double payloads only.
void MinPlusAccumulateRaw(std::int64_t m, std::int64_t n, std::int64_t k,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double* c, std::int64_t ldc);

/// Scalar i-k-j implementation (the seed's original loop shape): baseline
/// for benchmarks. Fixed in variant (never reads the registry variant) but
/// honors the active semiring.
void MinPlusAccumulateRawNaive(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc);

/// Register/cache-tiled micro-kernel: k and j are tiled so one B panel stays
/// L2-resident and one C/B row segment L1-resident; the annihilator guard
/// (S::IsZero) is hoisted out of the vectorizable inner loop. `parallel`
/// additionally splits the m rows into stripes on the host pool.
void MinPlusAccumulateRawTiled(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc, bool parallel = false);

/// Panel kernel behind MinPlusUpdateRect: C[m x n] = min(C, A (min,+) B)
/// where n is a narrow panel width. Each C row segment is held in a local
/// accumulator across the entire k reduction (one load + one store of C per
/// row instead of one per k tile), and the k x n B panel stays cache-hot.
/// Falls back to the square-tiled kernel when n is wide. `parallel` stripes
/// the m rows over the host pool.
void MinPlusPanelRawTiled(std::int64_t m, std::int64_t n, std::int64_t k,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double* c, std::int64_t ldc,
                          bool parallel = false);

/// In-place FW on an n x n tile with leading dimension lda (dispatches).
void FloydWarshallRaw(std::int64_t n, double* a, std::int64_t lda);

}  // namespace apspark::linalg
