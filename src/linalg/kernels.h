// Sequential "bare-metal" kernels.
//
// These are the C++ equivalents of the operations the paper offloads from
// pySpark to NumPy/SciPy (Intel MKL) and Numba: min-plus matrix product,
// element-wise minimum, in-place Floyd-Warshall, the rank-1 outer-sum update
// used by 2D Floyd-Warshall, and the cache-blocked sequential Floyd-Warshall
// of Venkataraman et al. used both as the diagonal-block solver and as the
// single-core reference (T1) for weak-scaling efficiency.
//
// All kernels propagate phantom blocks: if any operand is phantom, the result
// is a phantom of the correct shape and no arithmetic is performed (cost
// accounting happens at the building-block layer, see apsp/building_blocks.h).
#pragma once

#include <cstdint>

#include "linalg/dense_block.h"

namespace apspark::linalg {

/// C = A (min,+) B. Requires a.cols() == b.rows().
DenseBlock MinPlusProduct(const DenseBlock& a, const DenseBlock& b);

/// c = min(c, A (min,+) B) element-wise, in place.
/// Requires c.rows() == a.rows(), c.cols() == b.cols(), a.cols() == b.rows().
void MinPlusAccumulate(const DenseBlock& a, const DenseBlock& b, DenseBlock& c);

/// Element-wise minimum (the paper's MatMin).
DenseBlock ElementMin(const DenseBlock& a, const DenseBlock& b);
void ElementMinInPlace(DenseBlock& a, const DenseBlock& b);

/// In-place Floyd-Warshall over a square block: closes paths through the
/// block's own vertices (the paper's FloydWarshall building block).
void FloydWarshallInPlace(DenseBlock& a);

/// a_ij = min(a_ij, u_i + v_j) where u is a rows x 1 and v a cols x 1 vector
/// (the paper's FloydWarshallUpdate: C = B_Ik 1^T + 1 B_Jk^T, then MatMin).
void OuterSumMinUpdate(DenseBlock& a, const DenseBlock& u, const DenseBlock& v);

/// Sequential cache-blocked Floyd-Warshall (Venkataraman et al. [23]) over a
/// full n x n matrix, tile size `block_size`. This is the "efficient
/// sequential Floyd-Warshall as implemented in SciPy" used for T1.
void BlockedFloydWarshall(DenseBlock& a, std::int64_t block_size);

/// Plain textbook k-i-j Floyd-Warshall (reference for tests).
void NaiveFloydWarshall(DenseBlock& a);

// --- Raw strided kernels (used by the blocked solver; exposed for tests) ---

/// C[mxn] = min(C, A[mxk] (min,+) B[kxn]) with leading dimensions lda/ldb/ldc.
void MinPlusAccumulateRaw(std::int64_t m, std::int64_t n, std::int64_t k,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double* c, std::int64_t ldc);

/// In-place FW on an n x n tile with leading dimension lda.
void FloydWarshallRaw(std::int64_t n, double* a, std::int64_t lda);

}  // namespace apspark::linalg
