// BlockRef: the immutable, ref-counted handle the data plane moves around.
//
// Every record travelling through the sparklet engine — shuffle buckets,
// cached RDD partitions, shared-storage staging, driver collects — holds a
// BlockRef instead of a block copy: a shared_ptr<const DenseBlock> plus the
// serialized-size metadata byte accounting needs, captured once at wrap time
// so size queries never re-derive it on the hot path. Copying a BlockRef is
// a ref-count bump; the payload is shared and immutable.
//
// Mutation is explicit: solvers that update a block in place take a
// copy-on-write copy through MutableCopy(), which is the *only* sanctioned
// way block data is duplicated inside the engine (see the copy accounting in
// dense_block.h — the zero-copy tests assert that unsanctioned deep copies
// stay at zero across whole solves).
#pragma once

#include <cstdint>
#include <utility>

#include "linalg/dense_block.h"

namespace apspark::linalg {

class BlockRef {
 public:
  BlockRef() = default;

  /// Wraps an existing shared block (implicit: MakeBlock() call sites build
  /// records directly). Captures the serialized size once.
  BlockRef(BlockPtr block)  // NOLINT(google-explicit-constructor)
      : block_(std::move(block)),
        serialized_bytes_(block_ ? block_->SerializedBytes() : 0) {}

  /// Adopts a freshly produced block (no copy; the block is moved into
  /// shared immutable ownership).
  BlockRef(DenseBlock&& block)  // NOLINT(google-explicit-constructor)
      : BlockRef(MakeBlock(std::move(block))) {}

  const DenseBlock& operator*() const noexcept { return *block_; }
  const DenseBlock* operator->() const noexcept { return block_.get(); }
  explicit operator bool() const noexcept { return block_ != nullptr; }

  const BlockPtr& ptr() const noexcept { return block_; }
  const DenseBlock* get() const noexcept { return block_.get(); }

  /// Exact bytes Serialize() would produce, captured at wrap time — the unit
  /// every shuffle / storage / memory-accounting charge uses.
  std::uint64_t serialized_bytes() const noexcept { return serialized_bytes_; }

  /// How many holders share the payload (tests: proves records share).
  long use_count() const noexcept { return block_.use_count(); }

  /// Copy-on-write escape hatch: a private mutable copy of the payload,
  /// sanctioned through CowScope so the debug copy counter attributes it to
  /// an explicit mutation site. The shared original stays untouched.
  DenseBlock MutableCopy() const {
    CowScope cow;
    return *block_;
  }

  friend bool operator==(const BlockRef& a, const BlockRef& b) noexcept {
    return a.block_ == b.block_;
  }

 private:
  BlockPtr block_;
  std::uint64_t serialized_bytes_ = 0;
};

/// Convenience: wraps a freshly produced block into a record-ready ref.
inline BlockRef MakeRef(DenseBlock block) {
  return BlockRef(MakeBlock(std::move(block)));
}

}  // namespace apspark::linalg
