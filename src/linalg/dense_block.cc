#include "linalg/dense_block.h"

#include <cmath>
#include <cstring>

namespace apspark::linalg {

namespace {

std::atomic<std::uint64_t> g_total_copies{0};
std::atomic<std::uint64_t> g_sanctioned_copies{0};
thread_local int g_cow_depth = 0;

/// Counts one deep copy of a materialized payload (phantom and empty blocks
/// carry nothing, so duplicating them is free and uncounted).
void CountCopy(bool phantom, std::size_t payload_elems) noexcept {
  if (phantom || payload_elems == 0) return;
  g_total_copies.fetch_add(1, std::memory_order_relaxed);
  if (g_cow_depth > 0) {
    g_sanctioned_copies.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

std::uint64_t BlockCopyStats::TotalCopies() noexcept {
  return g_total_copies.load(std::memory_order_relaxed);
}

std::uint64_t BlockCopyStats::SanctionedCopies() noexcept {
  return g_sanctioned_copies.load(std::memory_order_relaxed);
}

std::uint64_t BlockCopyStats::UnsanctionedCopies() noexcept {
  return TotalCopies() - SanctionedCopies();
}

void BlockCopyStats::Reset() noexcept {
  g_total_copies.store(0, std::memory_order_relaxed);
  g_sanctioned_copies.store(0, std::memory_order_relaxed);
}

CowScope::CowScope() noexcept { ++g_cow_depth; }
CowScope::~CowScope() { --g_cow_depth; }

DenseBlock::DenseBlock(const DenseBlock& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      phantom_(other.phantom_),
      data_(other.data_) {
  CountCopy(phantom_, data_.size());
}

DenseBlock& DenseBlock::operator=(const DenseBlock& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  phantom_ = other.phantom_;
  data_ = other.data_;
  CountCopy(phantom_, data_.size());
  return *this;
}

DenseBlock::DenseBlock(std::int64_t rows, std::int64_t cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), fill) {}

DenseBlock::DenseBlock(std::int64_t rows, std::int64_t cols,
                       std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != static_cast<std::size_t>(rows * cols)) {
    throw std::invalid_argument("DenseBlock: data size does not match shape");
  }
}

DenseBlock DenseBlock::Phantom(std::int64_t rows, std::int64_t cols) {
  DenseBlock b;
  b.rows_ = rows;
  b.cols_ = cols;
  b.phantom_ = true;
  return b;
}

namespace {
// Serialized layout: rows (8) + cols (8) + phantom flag (1) + payload.
constexpr std::uint64_t kHeaderBytes = 8 + 8 + 1;
}  // namespace

std::uint64_t DenseBlock::SerializedBytes() const noexcept {
  return kHeaderBytes +
         static_cast<std::uint64_t>(rows_ * cols_) * sizeof(double);
}

void DenseBlock::Serialize(BinaryWriter& writer) const {
  writer.Write(rows_);
  writer.Write(cols_);
  writer.Write(static_cast<std::uint8_t>(phantom_ ? 1 : 0));
  if (!phantom_) {
    writer.WriteRaw(data_.data(), data_.size() * sizeof(double));
  }
}

Result<DenseBlock> DenseBlock::Deserialize(BinaryReader& reader) {
  auto rows = reader.Read<std::int64_t>();
  if (!rows.ok()) return rows.status();
  auto cols = reader.Read<std::int64_t>();
  if (!cols.ok()) return cols.status();
  auto phantom = reader.Read<std::uint8_t>();
  if (!phantom.ok()) return phantom.status();
  if (*rows < 0 || *cols < 0) {
    return InvalidArgumentError("DenseBlock: negative shape");
  }
  if (*phantom != 0) return Phantom(*rows, *cols);
  const std::size_t count = static_cast<std::size_t>(*rows * *cols);
  if (reader.remaining() < count * sizeof(double)) {
    return OutOfRangeError("DenseBlock: truncated payload");
  }
  std::vector<double> data(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto v = reader.Read<double>();
    if (!v.ok()) return v.status();
    data[i] = *v;
  }
  // Materializing a payload from bytes duplicates block data just like a
  // copy constructor would — the zero-copy data plane must not do it on hot
  // paths, so it counts (durability paths sanction it with a CowScope).
  CountCopy(/*phantom=*/false, count);
  return DenseBlock(*rows, *cols, std::move(data));
}

DenseBlock DenseBlock::Column(std::int64_t c) const {
  if (phantom_) return Phantom(rows_, 1);
  DenseBlock out(rows_, 1, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) out.Set(r, 0, At(r, c));
  return out;
}

DenseBlock DenseBlock::RowBlock(std::int64_t r) const {
  if (phantom_) return Phantom(1, cols_);
  DenseBlock out(1, cols_, 0.0);
  std::memcpy(out.mutable_data(), Row(r),
              static_cast<std::size_t>(cols_) * sizeof(double));
  return out;
}

DenseBlock DenseBlock::Transposed() const {
  if (phantom_) return Phantom(cols_, rows_);
  DenseBlock out(cols_, rows_, 0.0);
  // Simple tiled transpose to stay cache-friendly for large blocks.
  constexpr std::int64_t kTile = 64;
  for (std::int64_t r0 = 0; r0 < rows_; r0 += kTile) {
    for (std::int64_t c0 = 0; c0 < cols_; c0 += kTile) {
      const std::int64_t r1 = std::min(rows_, r0 + kTile);
      const std::int64_t c1 = std::min(cols_, c0 + kTile);
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          out.Set(c, r, At(r, c));
        }
      }
    }
  }
  return out;
}

DenseBlock DenseBlock::SubBlock(std::int64_t r0, std::int64_t c0,
                                std::int64_t h, std::int64_t w) const {
  if (phantom_) return Phantom(h, w);
  DenseBlock out(h, w, 0.0);
  for (std::int64_t r = 0; r < h; ++r) {
    std::memcpy(out.MutableRow(r), Row(r0 + r) + c0,
                static_cast<std::size_t>(w) * sizeof(double));
  }
  return out;
}

DenseBlock DenseBlock::RowPanel(std::int64_t r0, std::int64_t h) const {
  if (r0 < 0 || h < 0 || r0 + h > rows_) {
    throw std::invalid_argument("RowPanel: row range out of bounds");
  }
  if (phantom_) return Phantom(h, cols_);
  DenseBlock out(h, cols_, 0.0);
  std::memcpy(out.mutable_data(), Row(r0),
              static_cast<std::size_t>(h * cols_) * sizeof(double));
  return out;
}

void DenseBlock::PasteRowPanel(std::int64_t r0, const DenseBlock& panel) {
  if (panel.cols() != cols_ || r0 < 0 || r0 + panel.rows() > rows_) {
    throw std::invalid_argument("PasteRowPanel: panel does not fit");
  }
  if (phantom_ || panel.is_phantom()) {
    throw std::invalid_argument("PasteRowPanel: phantom operand");
  }
  std::memcpy(MutableRow(r0), panel.data(),
              static_cast<std::size_t>(panel.size()) * sizeof(double));
}

bool DenseBlock::AllInfinite() const noexcept {
  if (phantom_) return false;  // unknown structure: never licenses a skip
  for (const double v : data_) {
    if (!std::isinf(v)) return false;
  }
  return true;
}

bool DenseBlock::ApproxEquals(const DenseBlock& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  if (phantom_ || other.phantom_) return phantom_ == other.phantom_;
  return MaxAbsDiff(other) <= tol;
}

double DenseBlock::MaxAbsDiff(const DenseBlock& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return kInf;
  if (phantom_ || other.phantom_) return phantom_ == other.phantom_ ? 0 : kInf;
  double max_diff = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double a = data_[i];
    const double b = other.data_[i];
    const bool a_inf = std::isinf(a);
    const bool b_inf = std::isinf(b);
    if (a_inf != b_inf) return kInf;
    if (a_inf) continue;
    max_diff = std::max(max_diff, std::fabs(a - b));
  }
  return max_diff;
}

DenseBlock FrontierPanel(std::int64_t rows,
                         const std::vector<std::int64_t>& unit_rows) {
  DenseBlock out(rows, static_cast<std::int64_t>(unit_rows.size()), kInf);
  for (std::size_t j = 0; j < unit_rows.size(); ++j) {
    const std::int64_t r = unit_rows[j];
    if (r < 0 || r >= rows) {
      throw std::invalid_argument("FrontierPanel: unit row out of range");
    }
    out.Set(r, static_cast<std::int64_t>(j), 0.0);
  }
  return out;
}

}  // namespace apspark::linalg
